//===- examples/quickstart.cpp - libdragon4 in five minutes -----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-page tour: shortest output, fixed-format output with # marks,
/// alternate bases, and the round-trip guarantee.
///
///   cmake --build build && ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <cstdio>

using namespace dragon4;

int main() {
  std::printf("== Free format: the shortest string that reads back ==\n");
  std::printf("  0.3                -> %s\n", toShortest(0.3).c_str());
  std::printf("  1.0/3.0            -> %s\n", toShortest(1.0 / 3.0).c_str());
  std::printf("  1e23               -> %s   (unbiased-rounding aware)\n",
              toShortest(1e23).c_str());
  std::printf("  5e-324 (denormal)  -> %s\n", toShortest(5e-324).c_str());

  std::printf("\n== The round-trip guarantee ==\n");
  double Value = 0.1 + 0.2;
  std::string Text = toShortest(Value);
  double Back = *readFloat<double>(Text);
  std::printf("  0.1 + 0.2 prints as %s and reads back %s\n", Text.c_str(),
              Back == Value ? "identically" : "WRONG");

  std::printf("\n== Fixed format: correctly rounded, honest about "
              "precision ==\n");
  std::printf("  toFixed(1/3, 10)       -> %s\n",
              toFixed(1.0 / 3.0, 10).c_str());
  std::printf("  toFixed(100, 20)       -> %s\n", toFixed(100.0, 20).c_str());
  std::printf("  toPrecision(123.456,4) -> %s\n",
              toPrecision(123.456, 4).c_str());
  std::printf("  toExponential(1e23, 3) -> %s\n",
              toExponential(1e23, 3).c_str());
  std::printf("  float 1/3 to 10 places -> %s   ('#' = insignificant)\n",
              toFixed(1.0f / 3.0f, 10).c_str());

  std::printf("\n== Any base from 2 to 36 ==\n");
  PrintOptions Hex;
  Hex.Base = 16;
  Hex.ExponentMarker = '^';
  PrintOptions Bin = Hex;
  Bin.Base = 2;
  std::printf("  255.0 in hex       -> %s\n", toShortest(255.0, Hex).c_str());
  std::printf("  0.3 in hex         -> %s\n", toShortest(0.3, Hex).c_str());
  std::printf("  5.0 in binary      -> %s\n", toShortest(5.0, Bin).c_str());

  std::printf("\n== Down at the digit level ==\n");
  DigitString D = shortestDigits(0.3);
  std::printf("  shortestDigits(0.3): digits \"%s\", K=%d  (0.%s x 10^%d)\n",
              D.digitsAsText().c_str(), D.K, D.digitsAsText().c_str(), D.K);
  return 0;
}
