//===- examples/float_inspector.cpp - Inspect a floating-point value --------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A REPL-style inspector in the spirit of the Scheme systems that
/// motivated the paper: for each number given on the command line, show
/// its exact decomposition, its neighbours, the rounding range, and its
/// rendering under every output mode the library supports.
///
///   ./build/examples/float_inspector 0.1 1e23 5e-324
///
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <cmath>
#include <cstdio>

using namespace dragon4;

namespace {

void inspect(const char *Arg) {
  auto Parsed = readFloat<double>(Arg);
  if (!Parsed) {
    std::printf("'%s' is not a floating-point literal\n\n", Arg);
    return;
  }
  double V = *Parsed;
  std::printf("%s\n", Arg);
  std::printf("  shortest        : %s\n", toShortest(V).c_str());

  FpClass Class = classify(V);
  if (Class == FpClass::Zero || Class == FpClass::Infinity ||
      Class == FpClass::NaN) {
    std::printf("  class           : special\n\n");
    return;
  }

  Decomposed D = decompose(V);
  std::printf("  class           : %s\n",
              Class == FpClass::Normal ? "normal" : "subnormal (denormal)");
  std::printf("  decomposition   : %llu * 2^%d%s\n",
              static_cast<unsigned long long>(D.F), D.E,
              signBit(V) ? "  (negative)" : "");

  // Neighbours and the rounding range, printed exactly via rationals.
  Rational Exact = Rational::scaledPow(BigInt(D.F), 2, D.E);
  Rational Ulp = Rational::scaledPow(BigInt(uint64_t(1)), 2, D.E);
  std::printf("  exact value     : %s\n", Exact.toString().c_str());
  std::printf("  gap to next     : %s\n", Ulp.toString().c_str());

  std::printf("  17 digits       : %s\n",
              renderScientific(straightforwardDigits(std::abs(V), 17),
                               signBit(V))
                  .c_str());
  std::printf("  toPrecision(8)  : %s\n", toPrecision(V, 8).c_str());
  std::printf("  toFixed(6)      : %s\n", toFixed(V, 6).c_str());

  PrintOptions Hex;
  Hex.Base = 16;
  Hex.ExponentMarker = '^';
  PrintOptions Bin = Hex;
  Bin.Base = 2;
  std::printf("  hex shortest    : %s\n", toShortest(V, Hex).c_str());
  std::printf("  binary shortest : %s\n", toShortest(V, Bin).c_str());

  // What Steele & White would have printed (no rounding-mode awareness).
  DigitString SW = steeleWhiteDigits(std::abs(V));
  std::printf("  Steele-White    : %s\n",
              renderAuto(SW, signBit(V)).c_str());
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::printf("usage: %s NUMBER...\n", Argv[0]);
    std::printf("example: %s 0.1 1e23 5e-324 -3.14159\n", Argv[0]);
    return 1;
  }
  for (int I = 1; I < Argc; ++I)
    inspect(Argv[I]);
  return 0;
}
