//===- examples/precision_ladder.cpp - One constant, five formats -------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reads the same decimal constant into every floating-point format the
/// library supports -- binary16, binary32, binary64, the x87 80-bit
/// extended, and binary128 -- then prints each value's shortest
/// round-tripping form and a wide fixed-format rendering whose '#' marks
/// show exactly where each format's information runs out.  One picture of
/// the whole paper: shortest output adapts to the format's precision, and
/// fixed-format output never fabricates digits.
///
///   ./build/examples/precision_ladder [decimal-constant]
///
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <cstdio>

using namespace dragon4;

namespace {

constexpr const char *DefaultConstant =
    "3.14159265358979323846264338327950288419716939937510";

void showRow(const char *Format, const std::string &Shortest,
             const std::string &Wide) {
  std::printf("%-10s %-38s %s\n", Format, Shortest.c_str(), Wide.c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Constant = Argc > 1 ? Argv[1] : DefaultConstant;
  std::printf("reading %s\n", Constant);
  std::printf("into every supported format:\n\n");
  std::printf("%-10s %-38s %s\n", "format", "shortest (round-trips)",
              "toPrecision(., 40)  ('#' = beyond the format's precision)");

  auto Half = readFloat<Binary16>(Constant);
  auto Single = readFloat<float>(Constant);
  auto Double = readFloat<double>(Constant);
  auto Extended = readFloat<long double>(Constant);
  auto Quad = readFloat<Binary128>(Constant);
  if (!Half || !Single || !Double || !Extended || !Quad) {
    std::printf("'%s' is not a floating-point literal\n", Constant);
    return 1;
  }

  showRow("binary16", toShortest(*Half), toPrecision(*Half, 40));
  showRow("binary32", toShortest(*Single), toPrecision(*Single, 40));
  showRow("binary64", toShortest(*Double), toPrecision(*Double, 40));
  showRow("extended80", toShortest(*Extended), toPrecision(*Extended, 40));
  showRow("binary128", toShortest(*Quad), toPrecision(*Quad, 40));

  std::printf("\nshortest-output digit budget per format (worst case):\n");
  std::printf("  binary16: 5   binary32: 9   binary64: 17   extended80: 21"
              "   binary128: 36\n");

  std::printf("\nand the round-trip check, end to end:\n");
  bool Ok = *readFloat<Binary16>(toShortest(*Half)) == *Half &&
            *readFloat<float>(toShortest(*Single)) == *Single &&
            *readFloat<double>(toShortest(*Double)) == *Double &&
            *readFloat<long double>(toShortest(*Extended)) == *Extended &&
            *readFloat<Binary128>(toShortest(*Quad)) == *Quad;
  std::printf("  every format reads its shortest form back %s\n",
              Ok ? "bit-for-bit: OK" : "WRONG");
  return Ok ? 0 : 1;
}
