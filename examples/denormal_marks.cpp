//===- examples/denormal_marks.cpp - # marks and denormal numbers ------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating scenario for fixed-format # marks: denormalized
/// numbers "may have only a few digits of precision", and printing them to
/// a fixed width should not fabricate digits.  This example walks down
/// into the binary16 and binary64 subnormal ranges and prints each value
/// at a fixed precision, showing how the significant-digit count decays
/// to almost nothing -- and how the '#' marks track exactly the point
/// where information runs out.
///
///   ./build/examples/denormal_marks
///
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <cstdio>

using namespace dragon4;

namespace {

void showHalfLadder() {
  std::printf("binary16: dividing 1.0 by 8 down into the subnormals\n");
  std::printf("%-14s %-22s %s\n", "shortest", "toExponential(.,7)",
              "significant digits");
  Binary16 H = Binary16::fromDouble(1.0 / 1024.0);
  for (int Step = 0; Step < 10; ++Step) {
    std::string Short = toShortest(H);
    std::string Fixed = toExponential(H, 7);
    DigitString D = fixedDigitsRelative(H, 8);
    std::printf("%-14s %-22s %d of 8\n", Short.c_str(), Fixed.c_str(),
                static_cast<int>(D.Digits.size()));
    H = Binary16::fromDouble(H.toDouble() / 8.0);
    if (H.bits() == 0)
      break;
  }
}

void showDoubleLadder() {
  std::printf("\nbinary64: the last few representable magnitudes\n");
  std::printf("%-12s %s\n", "shortest", "toExponential(., 20)");
  for (double V = 5e-324; V < 2e-322; V *= 4) {
    std::printf("%-12s %s\n", toShortest(V).c_str(),
                toExponential(V, 20).c_str());
  }
}

void showWidePrinting() {
  std::printf("\nprinting past the precision of ordinary values\n");
  for (double V : {100.0, 1.0 / 3.0, 0.1}) {
    std::printf("  %-20s -> %s\n", toShortest(V).c_str(),
                toFixed(V, 25).c_str());
  }
  std::printf("\nsame, rendered with zeros for printf-style consumers\n");
  PrintOptions Zeros;
  Zeros.Marks = MarkStyle::Zeros;
  for (double V : {100.0, 1.0 / 3.0, 0.1}) {
    std::printf("  %-20s -> %s\n", toShortest(V).c_str(),
                toFixed(V, 25, Zeros).c_str());
  }
}

} // namespace

int main() {
  showHalfLadder();
  showDoubleLadder();
  showWidePrinting();
  return 0;
}
