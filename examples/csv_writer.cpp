//===- examples/csv_writer.cpp - Compact lossless data export ----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload the paper's introduction motivates: run-time systems and
/// data tools that must print floating-point values both *losslessly* and
/// *compactly*.  This example serializes a synthetic sensor table three
/// ways -- %.17e (lossless but verbose), %g (compact but lossy), and
/// free-format (lossless *and* compact) -- then verifies losslessness by
/// reading every cell back and reports the byte counts.
///
///   ./build/examples/csv_writer [rows]
///
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace dragon4;

namespace {

struct Row {
  double Timestamp;
  double Temperature;
  double Pressure;
};

/// Synthesizes measurement-like data: accumulated sums and products, the
/// kind of values that pick up long decimal tails.
std::vector<Row> makeRows(size_t Count) {
  std::vector<Row> Rows;
  Rows.reserve(Count);
  double T = 1700000000.0;
  SplitMix64 Rng(2024);
  for (size_t I = 0; I < Count; ++I) {
    T += 0.1; // Classic accumulating-error pattern.
    double Temp = 20.0 + static_cast<double>(Rng.below(1000)) / 97.0;
    double Pressure = 101.325 * (1.0 + static_cast<double>(Rng.below(100)) /
                                           1013.0);
    Rows.push_back(Row{T, Temp, Pressure});
  }
  return Rows;
}

size_t serialize(const std::vector<Row> &Rows,
                 std::string (*Format)(double), std::string &Out) {
  Out.clear();
  for (const Row &R : Rows) {
    Out += Format(R.Timestamp);
    Out += ',';
    Out += Format(R.Temperature);
    Out += ',';
    Out += Format(R.Pressure);
    Out += '\n';
  }
  return Out.size();
}

std::string viaPrintf17(double V) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.17e", V);
  return Buffer;
}

std::string viaPrintfG(double V) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%g", V);
  return Buffer;
}

std::string viaShortest(double V) { return toShortest(V); }

/// Counts cells that fail to read back bit-for-bit.
size_t countLossyCells(const std::string &Csv,
                       const std::vector<Row> &Rows) {
  size_t Lossy = 0;
  size_t Pos = 0;
  auto NextCell = [&]() -> std::string {
    size_t End = Csv.find_first_of(",\n", Pos);
    std::string Cell = Csv.substr(Pos, End - Pos);
    Pos = End + 1;
    return Cell;
  };
  for (const Row &R : Rows) {
    double Expected[3] = {R.Timestamp, R.Temperature, R.Pressure};
    for (double Value : Expected) {
      auto Back = readFloat<double>(NextCell());
      if (!Back || *Back != Value)
        ++Lossy;
    }
  }
  return Lossy;
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Count = Argc > 1 ? static_cast<size_t>(std::atoi(Argv[1])) : 10000;
  std::vector<Row> Rows = makeRows(Count);
  std::string Csv;

  struct Scheme {
    const char *Name;
    std::string (*Format)(double);
  } Schemes[] = {
      {"printf %.17e (lossless, verbose)", viaPrintf17},
      {"printf %g    (compact, lossy)", viaPrintfG},
      {"free-format  (lossless, compact)", viaShortest},
  };

  std::printf("serializing %zu rows x 3 doubles\n\n", Rows.size());
  std::printf("%-36s %12s %12s\n", "scheme", "bytes", "lossy cells");
  for (const Scheme &S : Schemes) {
    size_t Bytes = serialize(Rows, S.Format, Csv);
    size_t Lossy = countLossyCells(Csv, Rows);
    std::printf("%-36s %12zu %12zu\n", S.Name, Bytes, Lossy);
  }

  std::printf("\nsample row, each way:\n");
  for (const Scheme &S : Schemes) {
    std::printf("  %-36s %s,%s,%s\n", S.Name,
                S.Format(Rows[0].Timestamp).c_str(),
                S.Format(Rows[0].Temperature).c_str(),
                S.Format(Rows[0].Pressure).c_str());
  }
  return 0;
}
