//===- tests/svc/svc_telemetry_test.cpp --------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// TelemetryService end-to-end over real sockets: scrape freshness (two
// consecutive /metrics scrapes of a moving source show advancing
// counters), the windowed deriveds, SLO gauges flipping on breach, the
// profiler endpoint, and /stats.json parsing back through the repo's own
// JSON reader.  Window time is driven deterministically with tickNow().
//
//===----------------------------------------------------------------------===//

#include "svc/telemetry.h"

#include "obs/export.h"
#include "obs/registry.h"
#include "support/json_mini.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

using namespace dragon4;
using namespace dragon4::obs;
using namespace dragon4::svc;
using dragon4::support::parseJson;

namespace {

/// A source whose counter advances on every read and whose latency
/// histogram can be switched between fast and slow regimes.
struct MovingSource {
  std::atomic<uint64_t> Reads{0};
  std::atomic<uint64_t> LatencyNs{100};

  Snapshot operator()() {
    uint64_t N = Reads.fetch_add(1) + 1;
    Snapshot Snap;
    Snap.addCounter("dragon4_conversions_total", N * 1000);
    Snap.addCounter("dragon4_batch_values_total", N * 1000);
    Snap.addCounter("dragon4_batch_nanos_total", N * 500000);
    Log2Histogram H;
    for (uint64_t I = 0; I < N * 10; ++I)
      H.record(LatencyNs.load() + I % 7);
    Snap.Histograms.push_back(
        summarize("dragon4_latency_ns", H,
                  {{"format", "binary64"}, {"path", "ryu"}}));
    return Snap;
  }
};

uint64_t scrapeCounter(const std::string &Metrics, const std::string &Name) {
  size_t Pos = Metrics.find("\n" + Name + " ");
  if (Pos == std::string::npos)
    return 0;
  return std::strtoull(Metrics.c_str() + Pos + 1 + Name.size() + 1, nullptr,
                       10);
}

TEST(TelemetryService, CountersAdvanceBetweenScrapes) {
  auto Src = std::make_shared<MovingSource>();
  TelemetryConfig Cfg;
  Cfg.TickNanos = 3600ull * 1000000000; // Ticker effectively off.
  TelemetryService Service(Cfg, [Src] { return (*Src)(); });
  std::string Err;
  ASSERT_TRUE(Service.start(&Err)) << Err;
  ASSERT_NE(Service.port(), 0);

  std::string First, Second;
  ASSERT_EQ(httpGet("127.0.0.1", Service.port(), "/metrics", First), 200);
  ASSERT_EQ(httpGet("127.0.0.1", Service.port(), "/metrics", Second), 200);
  uint64_t C1 = scrapeCounter(First, "dragon4_conversions_total");
  uint64_t C2 = scrapeCounter(Second, "dragon4_conversions_total");
  ASSERT_GT(C1, 0u);
  // liveSnapshot() reads the source fresh per scrape -- the acceptance
  // criterion that makes consecutive curl scrapes show progress.
  EXPECT_GT(C2, C1);
  EXPECT_GE(Service.scrapesServed(), 2u);
}

TEST(TelemetryService, WindowDerivedsAppearAfterTwoTicks) {
  auto Src = std::make_shared<MovingSource>();
  TelemetryConfig Cfg;
  Cfg.TickNanos = 3600ull * 1000000000;
  TelemetryService Service(Cfg, [Src] { return (*Src)(); });
  ASSERT_TRUE(Service.start());

  // start() seeds one tick; one more makes the window valid.
  Service.tickNow();
  std::string Metrics;
  ASSERT_EQ(httpGet("127.0.0.1", Service.port(), "/metrics", Metrics), 200);
  EXPECT_NE(Metrics.find("window_conversions_per_second"), std::string::npos);
  EXPECT_NE(Metrics.find("window_span_seconds"), std::string::npos);
  EXPECT_NE(Metrics.find("window_latency_binary64_ryu_p99_ns"),
            std::string::npos);
  EXPECT_NE(Metrics.find("dragon4_window_samples 2"), std::string::npos);
  EXPECT_EQ(Service.windowResets(), 0u);
}

TEST(TelemetryService, SloBreachFlipsTheGauge) {
  auto Src = std::make_shared<MovingSource>();
  TelemetryConfig Cfg;
  Cfg.TickNanos = 3600ull * 1000000000;
  auto Rule = obs::live::SloSet::parse(
      "ryu64:dragon4_latency_ns{format=binary64,path=ryu}:p99:5000");
  ASSERT_TRUE(Rule.has_value());
  Cfg.Slos.push_back(*Rule);
  TelemetryService Service(Cfg, [Src] { return (*Src)(); });
  ASSERT_TRUE(Service.start());

  // Fast regime (~100ns against a 5000ns ceiling): no breach.
  Service.tickNow();
  std::string Metrics;
  ASSERT_EQ(httpGet("127.0.0.1", Service.port(), "/metrics", Metrics), 200);
  EXPECT_NE(Metrics.find("dragon4_slo_breached{slo=\"ryu64\"} 0"),
            std::string::npos);

  // Slow regime: the next window's p99 blows the ceiling and the exported
  // gauge flips.
  Src->LatencyNs = 1000000;
  Service.tickNow();
  ASSERT_EQ(httpGet("127.0.0.1", Service.port(), "/metrics", Metrics), 200);
  EXPECT_NE(Metrics.find("dragon4_slo_breached{slo=\"ryu64\"} 1"),
            std::string::npos);
  ASSERT_EQ(Service.sloStatuses().size(), 1u);
  EXPECT_TRUE(Service.sloStatuses()[0].Breached);
  EXPECT_EQ(Service.sloStatuses()[0].Breaches, 1u);

  // Recovery: back to the fast regime, gauge drops, breach count sticks.
  Src->LatencyNs = 100;
  Service.tickNow();
  ASSERT_EQ(httpGet("127.0.0.1", Service.port(), "/metrics", Metrics), 200);
  EXPECT_NE(Metrics.find("dragon4_slo_breached{slo=\"ryu64\"} 0"),
            std::string::npos);
  EXPECT_NE(Metrics.find("dragon4_slo_breaches_total{slo=\"ryu64\"} 1"),
            std::string::npos);
}

TEST(TelemetryService, StatsJsonParsesBack) {
  auto Src = std::make_shared<MovingSource>();
  TelemetryConfig Cfg;
  Cfg.TickNanos = 3600ull * 1000000000;
  TelemetryService Service(Cfg, [Src] { return (*Src)(); });
  ASSERT_TRUE(Service.start());
  Service.tickNow();

  std::string Body;
  ASSERT_EQ(httpGet("127.0.0.1", Service.port(), "/stats.json", Body), 200);
  auto Doc = parseJson(Body);
  ASSERT_TRUE(Doc.has_value()) << "stats.json is not valid JSON";
  const auto *Schema = Doc->find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->string(), "dragon4.stats.v1");
  const auto *Counters = Doc->find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_GT(Counters->numberOr("dragon4_conversions_total", 0), 0.0);
  const auto *Hists = Doc->find("histograms");
  ASSERT_NE(Hists, nullptr);
  bool SawLatency = false;
  for (const auto &H : Hists->array()) {
    const auto *Name = H.find("name");
    if (Name && Name->isString() && Name->string() == "dragon4_latency_ns") {
      SawLatency = true;
      const auto *Labels = H.find("labels");
      ASSERT_NE(Labels, nullptr);
      const auto *Fmt = Labels->find("format");
      ASSERT_NE(Fmt, nullptr);
      EXPECT_EQ(Fmt->string(), "binary64");
      EXPECT_GT(H.numberOr("p95", 0), 0.0);
    }
  }
  EXPECT_TRUE(SawLatency);
}

TEST(TelemetryService, EndpointsAndShutdown) {
  auto Src = std::make_shared<MovingSource>();
  TelemetryConfig Cfg;
  Cfg.TickNanos = 3600ull * 1000000000;
  TelemetryService Service(Cfg, [Src] { return (*Src)(); });
  ASSERT_TRUE(Service.start());
  uint16_t Port = Service.port();

  std::string Body;
  EXPECT_EQ(httpGet("127.0.0.1", Port, "/healthz", Body), 200);
  EXPECT_EQ(Body.rfind("ok uptime_seconds=", 0), 0u) << Body;
  EXPECT_EQ(httpGet("127.0.0.1", Port, "/", Body), 200);
  EXPECT_NE(Body.find("/metrics"), std::string::npos);
  EXPECT_EQ(httpGet("127.0.0.1", Port, "/nope", Body), 404);
  // Profiler not configured: the endpoint says so rather than 404ing.
  EXPECT_EQ(httpGet("127.0.0.1", Port, "/profile.folded", Body), 200);
  EXPECT_NE(Body.find("profiler off"), std::string::npos);

  Service.stop();
  EXPECT_FALSE(Service.running());
  EXPECT_EQ(httpGet("127.0.0.1", Port, "/healthz", Body, 500), -1);
  Service.stop(); // Idempotent, including via the destructor later.
}

TEST(TelemetryService, ProfileEndpointServesFoldedStacks) {
  auto Src = std::make_shared<MovingSource>();
  TelemetryConfig Cfg;
  Cfg.TickNanos = 3600ull * 1000000000;
  Cfg.ProfileHz = 200;
  TelemetryService Service(Cfg, [Src] { return (*Src)(); });
  ASSERT_TRUE(Service.start());

  // The sampler thread is live; give it a moment to accumulate sweeps of
  // whatever collectors exist (likely all idle -- that is still a line).
  std::string Body;
  for (int Tries = 0; Tries < 50; ++Tries) {
    ASSERT_EQ(httpGet("127.0.0.1", Service.port(), "/profile.folded", Body),
              200);
    if (Body.find(" ") != std::string::npos && Body[0] != '#')
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Every line is "stack count"; with no bound collectors the sampler
  // reports idle-or-nothing, and the endpoint's fallback is "idle 0".
  EXPECT_NE(Body.find(' '), std::string::npos);
  EXPECT_EQ(Body[0] == '#', false) << Body;
  Service.stop();
}

} // namespace
