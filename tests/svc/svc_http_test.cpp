//===- tests/svc/svc_http_test.cpp -------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The embedded HTTP exporter server, exercised end-to-end through real
// loopback sockets: routing, ephemeral-port binding, 404/405 behaviour,
// the request counter, and -- the property a long-running service actually
// depends on -- clean, prompt, idempotent shutdown.
//
//===----------------------------------------------------------------------===//

#include "svc/http.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace dragon4::svc;

namespace {

/// Sends a raw request line (for methods httpGet cannot produce) and
/// returns the status code, or -1 on socket failure.
int rawRequest(uint16_t Port, const std::string &RequestText) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  ::send(Fd, RequestText.data(), RequestText.size(), 0);
  char Buf[512];
  ssize_t N = ::recv(Fd, Buf, sizeof(Buf) - 1, 0);
  ::close(Fd);
  if (N <= 0)
    return -1;
  Buf[N] = '\0';
  // "HTTP/1.1 NNN ..."
  const char *Space = std::strchr(Buf, ' ');
  return Space ? std::atoi(Space + 1) : -1;
}

HttpServer::Handler echoHandler() {
  return [](const HttpRequest &Req) {
    HttpResponse Resp;
    if (Req.Target == "/hello") {
      Resp.Body = "hello " + Req.Method + "\n";
      return Resp;
    }
    if (Req.Target == "/big") {
      Resp.Body.assign(1 << 20, 'x'); // Exercise multi-write sends.
      return Resp;
    }
    Resp.Status = 404;
    Resp.Body = "nope\n";
    return Resp;
  };
}

TEST(HttpServer, EphemeralPortRoundTrip) {
  HttpServer Server;
  std::string Err;
  ASSERT_TRUE(Server.start(0, echoHandler(), &Err)) << Err;
  ASSERT_TRUE(Server.running());
  ASSERT_NE(Server.port(), 0); // Ephemeral port was read back from bind.

  std::string Body;
  EXPECT_EQ(httpGet("127.0.0.1", Server.port(), "/hello", Body), 200);
  EXPECT_EQ(Body, "hello GET\n");
  EXPECT_EQ(httpGet("127.0.0.1", Server.port(), "/missing", Body), 404);
  EXPECT_EQ(Server.requestsServed(), 2u);

  // A 1MB body arrives whole (the server loops over partial writes).
  EXPECT_EQ(httpGet("127.0.0.1", Server.port(), "/big", Body), 200);
  EXPECT_EQ(Body.size(), static_cast<size_t>(1 << 20));
}

TEST(HttpServer, RejectsNonGetMethods) {
  HttpServer Server;
  ASSERT_TRUE(Server.start(0, echoHandler()));
  EXPECT_EQ(rawRequest(Server.port(),
                       "POST /hello HTTP/1.1\r\nHost: x\r\n"
                       "Content-Length: 0\r\n\r\n"),
            405);
  // HEAD is allowed (Prometheus probes use it).
  EXPECT_EQ(rawRequest(Server.port(), "HEAD /hello HTTP/1.1\r\n\r\n"), 200);
}

TEST(HttpServer, StopIsPromptAndIdempotent) {
  HttpServer Server;
  ASSERT_TRUE(Server.start(0, echoHandler()));
  uint16_t Port = Server.port();
  auto Begin = std::chrono::steady_clock::now();
  Server.stop();
  auto Elapsed = std::chrono::steady_clock::now() - Begin;
  // The accept loop polls with a 100ms timeout; stop() must not hang on a
  // connection that is never coming.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(Elapsed)
                .count(),
            2000);
  EXPECT_FALSE(Server.running());
  Server.stop(); // Second stop is a no-op.

  // The socket is really closed: a new connect must fail.
  std::string Body;
  EXPECT_EQ(httpGet("127.0.0.1", Port, "/hello", Body, 500), -1);

  // The port can be rebound by a fresh server (no lingering listener).
  HttpServer Again;
  std::string Err;
  EXPECT_TRUE(Again.start(0, echoHandler(), &Err)) << Err;
}

TEST(HttpServer, StartTwiceFails) {
  HttpServer A;
  ASSERT_TRUE(A.start(0, echoHandler()));
  HttpServer B;
  std::string Err;
  // Binding A's port again must fail and say why.
  EXPECT_FALSE(B.start(A.port(), echoHandler(), &Err));
  EXPECT_FALSE(Err.empty());
}

} // namespace
