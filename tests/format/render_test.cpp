//===- tests/format/render_test.cpp -------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "format/render.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

DigitString makeDigits(std::vector<uint8_t> Digits, int K, int Marks = 0) {
  DigitString D;
  D.Digits = std::move(Digits);
  D.K = K;
  D.TrailingMarks = Marks;
  return D;
}

TEST(RenderPositional, IntegerForms) {
  EXPECT_EQ(renderPositional(makeDigits({1, 2, 3}, 3), false), "123");
  EXPECT_EQ(renderPositional(makeDigits({1, 2, 3}, 3), true), "-123");
  EXPECT_EQ(renderPositional(makeDigits({5}, 1), false), "5");
  EXPECT_EQ(renderPositional(makeDigits({0}, 1), false), "0");
}

TEST(RenderPositional, FractionForms) {
  EXPECT_EQ(renderPositional(makeDigits({3}, 0), false), "0.3");
  EXPECT_EQ(renderPositional(makeDigits({3}, -2), false), "0.003");
  EXPECT_EQ(renderPositional(makeDigits({1, 2, 3, 4}, 2), false), "12.34");
  EXPECT_EQ(renderPositional(makeDigits({1, 2, 3, 4}, 2), true), "-12.34");
}

TEST(RenderPositional, FillerZerosWhenStoppingLeftOfThePoint) {
  // 123 at the hundreds place of a 5-digit number: "12300".
  EXPECT_EQ(renderPositional(makeDigits({1, 2, 3}, 5), false), "12300");
}

TEST(RenderPositional, MarksRenderInTheirPositions) {
  EXPECT_EQ(renderPositional(makeDigits({1, 0, 0}, 3, 2), false), "100.##");
  EXPECT_EQ(renderPositional(makeDigits({3, 3}, 0, 3), false), "0.33###");
  EXPECT_EQ(renderPositional(makeDigits({1}, 3, 2), false), "1##");
  // Zero digits, one mark (the "entirely insignificant" fixed case).
  EXPECT_EQ(renderPositional(makeDigits({}, 1, 1), false), "#");
}

TEST(RenderPositional, MarkCharIsConfigurable) {
  RenderOptions Options;
  Options.MarkChar = '0';
  EXPECT_EQ(renderPositional(makeDigits({1, 0, 0}, 3, 2), false, Options),
            "100.00");
}

TEST(RenderScientific, BasicForms) {
  EXPECT_EQ(renderScientific(makeDigits({1, 2, 3}, 3), false), "1.23e+2");
  EXPECT_EQ(renderScientific(makeDigits({5}, -323), false), "5e-324");
  EXPECT_EQ(renderScientific(makeDigits({1}, 24), false), "1e+23");
  EXPECT_EQ(renderScientific(makeDigits({1, 7}, 309), true),
            "-1.7e+308");
}

TEST(RenderScientific, MarksAndMarker) {
  EXPECT_EQ(renderScientific(makeDigits({3, 3, 3}, 0, 4), false),
            "3.33####e-1");
  RenderOptions Options;
  Options.ExponentMarker = '^';
  EXPECT_EQ(renderScientific(makeDigits({1, 10, 15}, 2, 0), false, Options),
            "1.af^+1");
  Options.UppercaseDigits = true;
  EXPECT_EQ(renderScientific(makeDigits({1, 10, 15}, 2, 0), false, Options),
            "1.AF^+1");
}

TEST(RenderAuto, SwitchesOnMagnitude) {
  RenderOptions Options; // Positional for -5 < K <= 21.
  EXPECT_EQ(renderAuto(makeDigits({1}, 1), false, Options), "1");
  EXPECT_EQ(renderAuto(makeDigits({1}, 21), false, Options),
            "100000000000000000000");
  EXPECT_EQ(renderAuto(makeDigits({1}, 22), false, Options), "1e+21");
  EXPECT_EQ(renderAuto(makeDigits({1}, -4), false, Options), "0.00001");
  EXPECT_EQ(renderAuto(makeDigits({1}, -5), false, Options), "1e-6");
}

} // namespace
