//===- tests/format/scheme_notation_test.cpp -----------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Scheme number syntax layer -- the paper's motivating application.
/// The writer must satisfy the standard's contract: string->number of
/// number->string is the identity on inexact reals, at minimal length,
/// with the inexactness always visible.
///
//===----------------------------------------------------------------------===//

#include "format/scheme_notation.h"

#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace dragon4;

namespace {

TEST(SchemeWrite, MinimalInexactForms) {
  EXPECT_EQ(schemeNumberToString(1.0), "1.");
  EXPECT_EQ(schemeNumberToString(-1.0), "-1.");
  EXPECT_EQ(schemeNumberToString(0.5), "0.5");
  EXPECT_EQ(schemeNumberToString(0.3), "0.3");
  EXPECT_EQ(schemeNumberToString(100.0), "100.");
  EXPECT_EQ(schemeNumberToString(1.0 / 3.0), "0.3333333333333333");
  EXPECT_EQ(schemeNumberToString(0.0), "0.");
  EXPECT_EQ(schemeNumberToString(-0.0), "-0.");
}

TEST(SchemeWrite, ThePaperExample) {
  // "the algorithm prints this number as 1e23 instead of
  //  9.999999999999999e22."
  EXPECT_EQ(schemeNumberToString(1e23), "1e+23");
}

TEST(SchemeWrite, Specials) {
  EXPECT_EQ(schemeNumberToString(std::numeric_limits<double>::infinity()),
            "+inf.0");
  EXPECT_EQ(schemeNumberToString(-std::numeric_limits<double>::infinity()),
            "-inf.0");
  EXPECT_EQ(schemeNumberToString(std::numeric_limits<double>::quiet_NaN()),
            "+nan.0");
}

TEST(SchemeWrite, RadixPrefixes) {
  EXPECT_EQ(schemeNumberToString(5.0, 2), "#b101.");
  EXPECT_EQ(schemeNumberToString(255.0, 16), "#xff.");
  EXPECT_EQ(schemeNumberToString(0.5, 16), "#x0.8");
  EXPECT_EQ(schemeNumberToString(8.0, 8), "#o10.");
}

TEST(SchemeRead, BasicLiterals) {
  EXPECT_EQ(*schemeStringToNumber("1."), 1.0);
  EXPECT_EQ(*schemeStringToNumber("0.5"), 0.5);
  EXPECT_EQ(*schemeStringToNumber("-3.25"), -3.25);
  EXPECT_EQ(*schemeStringToNumber("1e23"), 1e23);
  EXPECT_EQ(*schemeStringToNumber("42"), 42.0);
}

TEST(SchemeRead, ExponentMarkerVariants) {
  // R7RS allows s/f/d/l in place of e (short/single/double/long hints).
  EXPECT_EQ(*schemeStringToNumber("1.5d3"), 1500.0);
  EXPECT_EQ(*schemeStringToNumber("1.5s3"), 1500.0);
  EXPECT_EQ(*schemeStringToNumber("1.5f3"), 1500.0);
  EXPECT_EQ(*schemeStringToNumber("1.5l3"), 1500.0);
}

TEST(SchemeRead, PrefixCombinations) {
  EXPECT_EQ(*schemeStringToNumber("#x10"), 16.0);
  EXPECT_EQ(*schemeStringToNumber("#b101"), 5.0);
  EXPECT_EQ(*schemeStringToNumber("#o17"), 15.0);
  EXPECT_EQ(*schemeStringToNumber("#d17"), 17.0);
  EXPECT_EQ(*schemeStringToNumber("#i1"), 1.0);
  EXPECT_EQ(*schemeStringToNumber("#i#x10"), 16.0);
  EXPECT_EQ(*schemeStringToNumber("#x#i10"), 16.0);
  EXPECT_EQ(*schemeStringToNumber("#e42"), 42.0);
}

TEST(SchemeRead, Specials) {
  EXPECT_TRUE(std::isinf(*schemeStringToNumber("+inf.0")));
  EXPECT_TRUE(std::signbit(*schemeStringToNumber("-inf.0")));
  EXPECT_TRUE(std::isnan(*schemeStringToNumber("+nan.0")));
}

TEST(SchemeRead, Rejections) {
  EXPECT_FALSE(schemeStringToNumber("").has_value());
  EXPECT_FALSE(schemeStringToNumber("#q1").has_value());
  EXPECT_FALSE(schemeStringToNumber("#x#x10").has_value());
  EXPECT_FALSE(schemeStringToNumber("#e0.5").has_value()); // No exact type.
  EXPECT_FALSE(schemeStringToNumber("banana").has_value());
  EXPECT_FALSE(schemeStringToNumber("1..2").has_value());
}

TEST(SchemeRoundTrip, StandardContractOnRandomDoubles) {
  // R7RS 6.2.6: for an inexact z, string->number(number->string(z)) == z.
  for (double V : randomNormalDoubles(500, 777)) {
    auto Back = schemeStringToNumber(schemeNumberToString(V));
    ASSERT_TRUE(Back.has_value()) << schemeNumberToString(V);
    EXPECT_EQ(*Back, V) << schemeNumberToString(V);
  }
  for (double V : randomSubnormalDoubles(100, 778)) {
    auto Back = schemeStringToNumber(schemeNumberToString(V));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, V);
  }
}

TEST(SchemeRoundTrip, NonDecimalRadixes) {
  for (double V : randomNormalDoubles(120, 779)) {
    for (unsigned Radix : {2u, 8u, 16u}) {
      auto Back = schemeStringToNumber(schemeNumberToString(V, Radix));
      ASSERT_TRUE(Back.has_value()) << schemeNumberToString(V, Radix);
      EXPECT_EQ(*Back, V) << schemeNumberToString(V, Radix);
    }
  }
}

} // namespace
