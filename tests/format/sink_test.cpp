//===- tests/format/sink_test.cpp - The Sink concept and its four models ----===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Unit coverage for format/sink.h: the concept itself, the snprintf-like
// overflow contract of BufferSink (count everything, write a prefix,
// report required()), StreamSink's mid-stream relative accounting, and
// cross-sink agreement -- the same renderer driven into all four sinks
// must produce the same bytes and the same written() count.
//
//===----------------------------------------------------------------------===//

#include "format/render_core.h"
#include "format/sink.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace dragon4;

namespace {

// The concept is the compile-time contract every surface builds on; a
// sink losing a member is a build break here, not a drift downstream.
static_assert(Sink<StringSink>);
static_assert(Sink<BufferSink>);
static_assert(Sink<StreamSink>);
static_assert(Sink<CountingSink>);
static_assert(!Sink<int>);
static_assert(!Sink<std::string>);

// sinkOverflowed is the one truncation probe: bounded sinks report,
// unbounded sinks are constant false.
static_assert(!sinkOverflowed(CountingSink{}));

/// Drives one fixed emission script against any sink.
template <typename W> void emitScript(W &Out) {
  Out.put('-');
  Out.literal("12");
  Out.put('.');
  Out.fill(3, '0');
  Out.literal("e+07");
}

constexpr const char *ScriptText = "-12.000e+07";
constexpr size_t ScriptLength = 11;

TEST(Sink, AllFourSinksAgreeOnBytesAndLength) {
  StringSink Str;
  emitScript(Str);
  EXPECT_EQ(Str.Out, ScriptText);
  EXPECT_EQ(Str.written(), ScriptLength);

  char Buf[32] = {};
  BufferSink Bounded(Buf, sizeof(Buf));
  emitScript(Bounded);
  EXPECT_EQ(std::string(Buf, Bounded.written()), ScriptText);
  EXPECT_EQ(Bounded.written(), ScriptLength);
  EXPECT_FALSE(Bounded.overflowed());

  std::vector<char> Store;
  StreamSink Stream(Store);
  emitScript(Stream);
  EXPECT_EQ(std::string(Store.begin(), Store.end()), ScriptText);
  EXPECT_EQ(Stream.written(), ScriptLength);

  CountingSink Counter;
  emitScript(Counter);
  EXPECT_EQ(Counter.written(), ScriptLength);
}

TEST(Sink, BufferSinkWritesExactPrefixOnOverflow) {
  // Every capacity from 0 to the full length: the written prefix must be
  // exactly the first Cap bytes of the full rendering and required()
  // must still be the full length.
  for (size_t Cap = 0; Cap <= ScriptLength + 2; ++Cap) {
    std::vector<char> Buf(Cap + 4, '\x7f'); // Canary past the capacity.
    BufferSink Out(Buf.data(), Cap);
    emitScript(Out);
    EXPECT_EQ(Out.required(), ScriptLength) << "cap " << Cap;
    EXPECT_EQ(Out.overflowed(), Cap < ScriptLength) << "cap " << Cap;
    size_t Written = Cap < ScriptLength ? Cap : ScriptLength;
    EXPECT_EQ(std::string(Buf.data(), Written),
              std::string(ScriptText).substr(0, Written))
        << "cap " << Cap;
    for (size_t I = Written; I < Buf.size(); ++I)
      EXPECT_EQ(Buf[I], '\x7f') << "byte past the write at " << I;
  }
}

TEST(Sink, BufferSinkZeroCapacityIsAPureSizeQuery) {
  BufferSink Out(nullptr, 0);
  emitScript(Out);
  EXPECT_EQ(Out.required(), ScriptLength);
  EXPECT_TRUE(Out.overflowed());
  EXPECT_TRUE(sinkOverflowed(Out));
}

TEST(Sink, StreamSinkCountsRelativeToConstruction) {
  std::vector<char> Store = {'a', 'b', 'c'};
  StreamSink Out(Store);
  EXPECT_EQ(Out.written(), 0u);
  emitScript(Out);
  EXPECT_EQ(Out.written(), ScriptLength);
  EXPECT_EQ(Store.size(), 3 + ScriptLength);
  EXPECT_EQ(std::string(Store.begin(), Store.begin() + 3), "abc");
  EXPECT_FALSE(sinkOverflowed(Out));
}

TEST(Sink, RendererProducesIdenticalBytesThroughEverySink) {
  // The real renderer (not a synthetic script): positional, scientific,
  // and auto forms through render_core against all sinks at once.
  const std::vector<uint8_t> Digits = {1, 7, 9, 7, 6, 9};
  RenderOptions Options;
  const int Ks[] = {-6, -1, 0, 1, 4, 6, 12, 25};
  for (int K : Ks) {
    for (bool Negative : {false, true}) {
      StringSink Str;
      render_detail::renderAutoInto(Str, Digits, K, 0, Negative, Options);

      char Buf[64];
      BufferSink Bounded(Buf, sizeof(Buf));
      render_detail::renderAutoInto(Bounded, Digits, K, 0, Negative, Options);

      std::vector<char> Store;
      StreamSink Stream(Store);
      render_detail::renderAutoInto(Stream, Digits, K, 0, Negative, Options);

      CountingSink Counter;
      render_detail::renderAutoInto(Counter, Digits, K, 0, Negative, Options);

      EXPECT_EQ(std::string(Buf, Bounded.written()), Str.Out)
          << "K " << K << " neg " << Negative;
      EXPECT_EQ(std::string(Store.begin(), Store.end()), Str.Out)
          << "K " << K << " neg " << Negative;
      EXPECT_EQ(Counter.written(), Str.Out.size())
          << "K " << K << " neg " << Negative;
    }
  }
}

TEST(Sink, StoreDecimalDigitsMatchesManualExpansion) {
  std::vector<uint8_t> Digits;
  render_detail::storeDecimalDigits(907060504, 9, Digits);
  ASSERT_EQ(Digits.size(), 9u);
  const uint8_t Expected[] = {9, 0, 7, 0, 6, 0, 5, 0, 4};
  for (int I = 0; I < 9; ++I)
    EXPECT_EQ(Digits[static_cast<size_t>(I)], Expected[I]) << "digit " << I;

  // Leading-zero widths (Ryu emits a fixed Length): zeros are stored.
  render_detail::storeDecimalDigits(42, 4, Digits);
  ASSERT_EQ(Digits.size(), 4u);
  EXPECT_EQ(Digits[0], 0);
  EXPECT_EQ(Digits[1], 0);
  EXPECT_EQ(Digits[2], 4);
  EXPECT_EQ(Digits[3], 2);
}

} // namespace
