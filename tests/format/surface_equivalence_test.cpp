//===- tests/format/surface_equivalence_test.cpp - One core, many surfaces ---===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The tentpole guarantee of the sink refactor: every output surface is an
// instantiation of one writer-generic core, so bytes cannot drift between
// them.  This test proves it the hard way -- the full binary16 encoding
// space and a strided binary32 sweep through all five shortest-form
// surfaces at once:
//
//   toShortest            (StringSink)
//   engine::format        (BufferSink)
//   BatchEngine StringTable slots (BufferSink per slot, worker threads)
//   RecordStream          (StreamSink)
//   dragon4_to_chars      (C ABI over BufferSink)
//
// plus printf's string-vs-buffer pair on a randomized corpus.
//
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace dragon4;
namespace eng = dragon4::engine;

namespace {

/// Runs one value through every shortest-form surface and requires
/// byte-identical output; \p Reference is toShortest's answer.
template <typename T>
void expectAllSurfacesAgree(T Value, const std::string &Reference,
                            eng::Scratch &S, eng::RecordStream &Stream) {
  char Buf[DRAGON4_MAX_CHARS10];
  size_t Len = eng::format(Value, Buf, sizeof(Buf), PrintOptions{}, S);
  ASSERT_LE(Len, sizeof(Buf));
  ASSERT_EQ(std::string(Buf, Len), Reference) << "engine::format drifted";

  Stream.clear();
  size_t StreamLen = Stream.push(Value);
  ASSERT_EQ(std::string(Stream.bytes()), Reference)
      << "RecordStream drifted";
  ASSERT_EQ(StreamLen, Reference.size());

  uint64_t Lo = 0, Hi = 0;
  FormatTraits<T>::encodingBits(Value, Lo, Hi);
  size_t AbiLen = 0;
  ASSERT_EQ(dragon4_to_chars(
                static_cast<dragon4_format>(FormatTraits<T>::Id), Lo, Hi,
                nullptr, Buf, sizeof(Buf), &AbiLen),
            DRAGON4_OK);
  ASSERT_EQ(std::string(Buf, AbiLen), Reference)
      << "dragon4_to_chars drifted";
}

/// The batch surface over a whole corpus at once (its own worker threads
/// and per-worker scratches), then per-value agreement for the rest.
template <typename T>
void sweepSurfaces(const std::vector<T> &Values) {
  eng::BatchEngine<T> Engine(2);
  eng::StringTable Table;
  Engine.convert(std::span<const T>(Values), Table, PrintOptions{});
  ASSERT_EQ(Table.size(), Values.size());

  eng::Scratch S;
  eng::RecordStream Stream(S);
  for (size_t I = 0; I < Values.size(); ++I) {
    std::string Reference = toShortest(Values[I]);
    ASSERT_EQ(std::string(Table.view(I)), Reference)
        << "StringTable slot " << I << " drifted";
    ASSERT_NO_FATAL_FAILURE(
        expectAllSurfacesAgree(Values[I], Reference, S, Stream));
  }
}

TEST(SurfaceEquivalence, FullBinary16Space) {
  // Every one of the 65536 encodings, NaNs and infinities included.
  std::vector<Binary16> Values;
  Values.reserve(1u << 16);
  for (uint32_t Bits = 0; Bits < (1u << 16); ++Bits)
    Values.push_back(Binary16::fromBits(static_cast<uint16_t>(Bits)));
  sweepSurfaces(Values);
}

TEST(SurfaceEquivalence, StridedBinary32) {
  // A prime stride walks every binade and low-byte pattern; ~42k
  // encodings keeps the test inside the tier-1 budget.
  std::vector<float> Values;
  for (uint64_t Bits = 0; Bits < (1ull << 32); Bits += 102261)
    Values.push_back(
        FormatTraits<float>::fromEncoding(static_cast<uint32_t>(Bits), 0));
  sweepSurfaces(Values);
}

TEST(SurfaceEquivalence, RandomizedDoublesAndWideFormats) {
  sweepSurfaces(randomBitsDoubles(4096, 0x5e1f0001));
  {
    SplitMix64 Rng(0x5e1f0002);
    std::vector<long double> Values;
    for (int I = 0; I < 512; ++I)
      Values.push_back(
          std::ldexp(static_cast<long double>(Rng.next() | (1ull << 63)),
                     static_cast<int>(Rng.below(8000)) - 4000 - 63));
    sweepSurfaces(Values);
  }
  {
    SplitMix64 Rng(0x5e1f0003);
    std::vector<Binary128> Values;
    for (int I = 0; I < 512; ++I) {
      uint64_t Hi = (Rng.next() & 0x0000FFFFFFFFFFFFull) |
                    ((1 + Rng.below(0x7FFD)) << 48);
      Values.push_back(Binary128::fromBits(Hi, Rng.next()));
    }
    sweepSurfaces(Values);
  }
}

TEST(SurfaceEquivalence, NonDefaultOptionsStayUnified) {
  // The surfaces must agree under every option mapping, not only the
  // defaults -- base, marks, boundaries, ties, and markers all flow
  // through the same PrintOptions into the same core.
  std::vector<PrintOptions> OptionSets;
  {
    PrintOptions Hex;
    Hex.Base = 16;
    Hex.ExponentMarker = '^';
    Hex.UppercaseDigits = true;
    OptionSets.push_back(Hex);
    PrintOptions Conservative;
    Conservative.Boundaries = BoundaryMode::Conservative;
    OptionSets.push_back(Conservative);
    PrintOptions Zeros;
    Zeros.Marks = MarkStyle::Zeros;
    Zeros.Ties = TieBreak::RoundEven;
    OptionSets.push_back(Zeros);
  }
  std::vector<double> Values = randomBitsDoubles(1024, 0x5e1f0004);
  eng::Scratch S;
  for (const PrintOptions &Options : OptionSets) {
    eng::RecordStream Stream(S, '\n', Options);
    for (double V : Values) {
      std::string Reference = toShortest(V, Options);
      char Buf[128];
      size_t Len = eng::format(V, Buf, sizeof(Buf), Options, S);
      ASSERT_EQ(std::string(Buf, Len), Reference);
      Stream.clear();
      Stream.push(V);
      ASSERT_EQ(std::string(Stream.bytes()), Reference);
    }
  }
}

TEST(SurfaceEquivalence, PrintfStringAndBufferSurfacesAgree) {
  const char *Specs[] = {"%e",      "%f",     "%g",     "%.17e", "%.0f",
                         "%#g",     "%+012e", "%-20.3f", "%15G",  "%.40f"};
  std::vector<double> Values = randomBitsDoubles(512, 0x5e1f0005);
  Values.push_back(0.0);
  Values.push_back(-0.0);
  Values.push_back(1e300);
  Values.push_back(-1e-300);
  for (const char *Spec : Specs) {
    for (double V : Values) {
      std::string Str = formatPrintf(V, Spec);
      // %.40f of a ~1e300 double runs past 350 characters; 512 keeps the
      // "full buffer" half of the check genuinely untruncated.
      char Buf[512];
      size_t Len = formatPrintf(V, Spec, Buf, sizeof(Buf));
      ASSERT_EQ(Len, Str.size()) << Spec;
      ASSERT_EQ(std::string(Buf, Len < sizeof(Buf) ? Len : sizeof(Buf)),
                Str)
          << Spec;

      // And the truncated surface: a short buffer gets the exact prefix
      // and still reports the full length.
      char Short[8];
      size_t ShortLen = formatPrintf(V, Spec, Short, sizeof(Short));
      ASSERT_EQ(ShortLen, Str.size()) << Spec;
      size_t Prefix = ShortLen < sizeof(Short) ? ShortLen : sizeof(Short);
      ASSERT_EQ(std::string(Short, Prefix), Str.substr(0, Prefix)) << Spec;
    }
  }
}

TEST(SurfaceEquivalence, FixedSurfacesAgree) {
  eng::Scratch S;
  std::vector<double> Values = randomNormalDoubles(512, 0x5e1f0006);
  const int Precisions[] = {0, 2, 17};
  for (double V : Values) {
    uint64_t Lo = 0, Hi = 0;
    FormatTraits<double>::encodingBits(V, Lo, Hi);
    for (int P : Precisions) {
      std::string Reference = toFixed(V, P);
      char Buf[512];
      size_t Len = eng::formatFixed(V, P, Buf, sizeof(Buf), PrintOptions{}, S);
      ASSERT_EQ(std::string(Buf, Len), Reference);
      size_t AbiLen = 0;
      ASSERT_EQ(dragon4_to_chars_fixed(DRAGON4_FORMAT_BINARY64, Lo, Hi, P,
                                       nullptr, Buf, sizeof(Buf), &AbiLen),
                DRAGON4_OK);
      ASSERT_EQ(std::string(Buf, AbiLen), Reference);
    }
  }
}

} // namespace
