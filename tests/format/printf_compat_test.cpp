//===- tests/format/printf_compat_test.cpp -------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The printf-compatible formatter, validated byte for byte against the
/// C library (glibc prints correctly rounded decimal output, so equality
/// is the specification): conversions e/E/f/F/g/G across precisions,
/// magnitudes, flags, and widths, plus the special values.
///
//===----------------------------------------------------------------------===//

#include "format/printf_compat.h"

#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

using namespace dragon4;

namespace {

/// The C library's answer for a full specification string.
std::string libc(double Value, const std::string &Spec) {
  char Buffer[512];
  int Written =
      std::snprintf(Buffer, sizeof(Buffer), Spec.c_str(), Value);
  EXPECT_GT(Written, 0);
  EXPECT_LT(Written, static_cast<int>(sizeof(Buffer)));
  return std::string(Buffer, static_cast<size_t>(Written));
}

void expectMatches(double Value, const std::string &Spec) {
  EXPECT_EQ(formatPrintf(Value, Spec.c_str()), libc(Value, Spec))
      << "spec " << Spec << " value " << Value;
}

TEST(PrintfCompat, HandPickedValues) {
  for (const char *Spec :
       {"%e", "%f", "%g", "%.0e", "%.0f", "%.0g", "%.3e", "%.3f", "%.3g",
        "%.17e", "%.17g", "%.20f", "%E", "%G"}) {
    for (double V : {0.0, -0.0, 1.0, -1.0, 0.5, 1.5, 0.1, 123.456,
                     9.9999999, 1e-5, 1e-4, 100000.0, 1e6, 12345678.9,
                     3.141592653589793, 2.2250738585072014e-308, 5e-324,
                     1.7976931348623157e308, 6.02214076e23}) {
      expectMatches(V, Spec);
      expectMatches(-V, Spec);
    }
  }
}

TEST(PrintfCompat, GStyleSwitchBoundaries) {
  // %g switches to scientific at exponent < -4 or >= precision; probe
  // both sides of both boundaries at several precisions.
  for (int Precision : {1, 2, 6, 10}) {
    std::string Spec = "%." + std::to_string(Precision) + "g";
    for (double V : {1e-6, 1e-5, 1.234e-5, 1e-4, 1.2e-4, 1e-3, 0.1, 1.0,
                     9.999, 10.0, 99.99, 1e2, 1e5, 1e6, 1e7, 123456.0,
                     999999.4, 999999.6}) {
      expectMatches(V, Spec);
    }
  }
}

TEST(PrintfCompat, TiesRoundToEvenLikeTheLibrary) {
  // Exact decimal halfway points (representable in binary) must round to
  // even, as glibc does.
  expectMatches(0.125, "%.2f");
  expectMatches(0.375, "%.2f");
  expectMatches(0.625, "%.2f");
  expectMatches(2.5, "%.0f");
  expectMatches(3.5, "%.0f");
  expectMatches(0.5, "%.0f");
  expectMatches(1.25, "%.1e");
  expectMatches(1.75, "%.1e");
  expectMatches(0.125, "%.2g");
}

TEST(PrintfCompat, HighPrecisionPrintsTrueExpansion) {
  // Past the value's information, printf prints the exact binary
  // expansion's digits; ours must match digit for digit.
  expectMatches(0.1, "%.25f");
  expectMatches(0.1, "%.30e");
  expectMatches(1.0 / 3.0, "%.40f");
  expectMatches(5e-324, "%.40e");
  expectMatches(1e22, "%.5f");
  expectMatches(1.7976931348623157e308, "%.2f"); // 300+ digit integer part.
}

TEST(PrintfCompat, FlagsAndWidth) {
  for (const char *Spec :
       {"%+f", "% f", "%+.2e", "%12.3f", "%-12.3f|", "%012.3f", "%+012.4e",
        "%#.0f", "%#g", "%#.3g", "%08.2f", "%1.1e"}) {
    std::string Cleaned = Spec;
    bool Bar = Cleaned.back() == '|';
    if (Bar)
      Cleaned.pop_back();
    for (double V : {3.14159, -3.14159, 0.0, -0.0, 12345.678}) {
      EXPECT_EQ(formatPrintf(V, Cleaned.c_str()), libc(V, Cleaned))
          << Cleaned << " of " << V;
    }
  }
}

TEST(PrintfCompat, SpecialValues) {
  double Inf = std::numeric_limits<double>::infinity();
  double NaN = std::numeric_limits<double>::quiet_NaN();
  for (const char *Spec : {"%f", "%e", "%g", "%E", "%10f", "%-10g"}) {
    expectMatches(Inf, Spec);
    expectMatches(-Inf, Spec);
    expectMatches(NaN, Spec);
  }
}

TEST(PrintfCompat, RandomSweepAgainstLibc) {
  SplitMix64 Rng(424243);
  for (int I = 0; I < 2000; ++I) {
    double V;
    switch (Rng.below(3)) {
    case 0: // Human scale.
      V = static_cast<double>(Rng.below(2000000000)) / 1000.0;
      break;
    case 1: // Full normal range.
      V = randomNormalDoubles(1, Rng.next())[0];
      break;
    default: // Subnormals.
      V = randomSubnormalDoubles(1, Rng.next())[0];
      break;
    }
    if (Rng.below(2))
      V = -V;
    int Precision = static_cast<int>(Rng.below(21));
    char Conversion = "efgEG"[Rng.below(5)];
    std::string Spec =
        "%." + std::to_string(Precision) + std::string(1, Conversion);
    // %.Nf of huge magnitudes produces thousands of characters; printf
    // handles it, and so must we, but cap the test's buffer use.
    if ((Conversion == 'f' || Conversion == 'F') && std::fabs(V) >= 1e100)
      continue;
    expectMatches(V, Spec);
  }
}

TEST(PrintfCompat, DefaultPrecisionIsSix) {
  EXPECT_EQ(formatPrintf(3.14159265, "e"), libc(3.14159265, "%e"));
  EXPECT_EQ(formatPrintf(3.14159265, "f"), libc(3.14159265, "%f"));
  EXPECT_EQ(formatPrintf(3.14159265, "g"), libc(3.14159265, "%g"));
}

TEST(PrintfCompat, StructSpecInterface) {
  PrintfSpec Spec;
  Spec.Conversion = 'f';
  Spec.Precision = 2;
  Spec.Width = 10;
  Spec.ForceSign = true;
  EXPECT_EQ(formatPrintf(3.14159, Spec), "     +3.14");
  Spec.ZeroPad = true;
  EXPECT_EQ(formatPrintf(3.14159, Spec), "+000003.14");
  Spec.LeftJustify = true;
  EXPECT_EQ(formatPrintf(3.14159, Spec), "+3.14     ");
}

} // namespace
