//===- tests/format/dtoa_test.cpp ---------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "format/dtoa.h"

#include "reader/reader.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <limits>

using namespace dragon4;

namespace {

TEST(ToShortest, HeaderExamples) {
  EXPECT_EQ(toShortest(0.3), "0.3");
  EXPECT_EQ(toShortest(1.0 / 3.0), "0.3333333333333333");
  EXPECT_EQ(toShortest(1e23), "1e+23");
  EXPECT_EQ(toShortest(100.0), "100");
  EXPECT_EQ(toShortest(-2.5), "-2.5");
  EXPECT_EQ(toShortest(5e-324), "5e-324");
  EXPECT_EQ(toShortest(1.7976931348623157e308), "1.7976931348623157e+308");
}

TEST(ToShortest, Specials) {
  EXPECT_EQ(toShortest(0.0), "0");
  EXPECT_EQ(toShortest(-0.0), "-0");
  EXPECT_EQ(toShortest(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(toShortest(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(toShortest(std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(ToShortest, FloatUsesItsOwnPrecision) {
  EXPECT_EQ(toShortest(0.3f), "0.3");
  EXPECT_EQ(toShortest(1.0f / 3.0f), "0.33333334");
  EXPECT_EQ(toShortest(3.4028235e38f), "3.4028235e+38");
}

TEST(ToShortest, Binary16) {
  EXPECT_EQ(toShortest(Binary16::fromDouble(1.0)), "1");
  EXPECT_EQ(toShortest(Binary16::fromDouble(0.333251953125)), "0.3333");
  // The max finite half is 65504, but "65500" already reads back to it
  // (the rounding range spans 65488..65520), so shortest wins.
  EXPECT_EQ(toShortest(Binary16::fromDouble(65504.0)), "65500");
}

TEST(ToShortest, RoundTripsThroughTheReader) {
  for (double V : randomNormalDoubles(300, 5150)) {
    std::string Text = toShortest(V);
    EXPECT_EQ(*readFloat<double>(Text), V) << Text;
  }
}

TEST(ToFixed, Basics) {
  EXPECT_EQ(toFixed(1.0 / 3.0, 10), "0.3333333333");
  EXPECT_EQ(toFixed(123.456, 2), "123.46");
  EXPECT_EQ(toFixed(123.456, 0), "123");
  EXPECT_EQ(toFixed(-123.456, 1), "-123.5");
  EXPECT_EQ(toFixed(0.5, 0), "1"); // Tie, default rounds up.
  EXPECT_EQ(toFixed(0.0001, 2), "0.00");
}

TEST(ToFixed, SpecialsAndZeros) {
  EXPECT_EQ(toFixed(0.0, 2), "0.00");
  EXPECT_EQ(toFixed(-0.0, 2), "-0.00");
  EXPECT_EQ(toFixed(0.0, 0), "0");
  EXPECT_EQ(toFixed(std::numeric_limits<double>::infinity(), 2), "inf");
  EXPECT_EQ(toFixed(std::numeric_limits<double>::quiet_NaN(), 2), "nan");
}

TEST(ToFixed, MarksWhenPrecisionRunsOut) {
  std::string Text = toFixed(100.0, 20);
  EXPECT_EQ(Text, "100.000000000000000#####");
  PrintOptions Zeros;
  Zeros.Marks = MarkStyle::Zeros;
  EXPECT_EQ(toFixed(100.0, 20, Zeros), "100.00000000000000000000");
}

TEST(ToPrecision, Basics) {
  EXPECT_EQ(toPrecision(123.456, 4), "123.5");
  EXPECT_EQ(toPrecision(123.456, 2), "120");
  EXPECT_EQ(toPrecision(123.456, 1), "100");
  EXPECT_EQ(toPrecision(0.000123456, 2), "0.00012");
  EXPECT_EQ(toPrecision(9.996, 3), "10.0");
  EXPECT_EQ(toPrecision(0.0, 3), "0.00");
}

TEST(ToPrecision, SwitchesToScientificForExtremes) {
  EXPECT_EQ(toPrecision(1.5e30, 3), "1.50e+30");
  EXPECT_EQ(toPrecision(1.5e-30, 3), "1.50e-30");
}

TEST(ToExponential, Basics) {
  EXPECT_EQ(toExponential(123.456, 3), "1.235e+2");
  EXPECT_EQ(toExponential(123.456, 0), "1e+2");
  EXPECT_EQ(toExponential(0.5, 1), "5.0e-1");
  EXPECT_EQ(toExponential(-0.5, 1), "-5.0e-1");
  EXPECT_EQ(toExponential(0.0, 2), "0.00e+0");
  EXPECT_EQ(toExponential(1e23, 3), "1.000e+23");
}

TEST(ToExponential, MarksForLowPrecisionValues) {
  // A half has ~3-4 decimal digits of precision; asking for 9 shows marks.
  std::string Text = toExponential(Binary16::fromDouble(1.0 / 3.0), 9);
  EXPECT_EQ(Text.substr(0, 2), "3.");
  EXPECT_NE(Text.find('#'), std::string::npos);
}

TEST(PrintOptions, AlternateBase) {
  PrintOptions Hex;
  Hex.Base = 16;
  Hex.ExponentMarker = '^';
  EXPECT_EQ(toShortest(255.0, Hex), "ff");
  EXPECT_EQ(toShortest(0.5, Hex), "0.8");
  EXPECT_EQ(toShortest(65536.0 * 16, Hex), "100000");
}

TEST(PrintOptions, ScalingChoiceDoesNotChangeText) {
  PrintOptions Iter;
  Iter.Scaling = ScalingAlgorithm::Iterative;
  for (double V : randomNormalDoubles(50, 9999))
    EXPECT_EQ(toShortest(V), toShortest(V, Iter)) << V;
}

} // namespace
