//===- tests/core/scaling_test.cpp -------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scaling step: the estimator's "k or k-1, never more" guarantee, the
/// fixup, and agreement of all three strategies (which is the correctness
/// content of Table 2 -- they differ only in cost).
///
//===----------------------------------------------------------------------===//

#include "core/scaling.h"

#include "core/options.h"
#include "fp/binary16.h"
#include "testgen/random_floats.h"
#include "testgen/schryer.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

using namespace dragon4;

namespace {

/// The exact k for comparison, from the slow iterative algorithm.
int exactK(double V, unsigned B, BoundaryFlags Flags) {
  Decomposed D = decompose(V);
  return scaleIterative(makeScaledStart<double>(D), B, Flags).K;
}

TEST(Estimator, KnownDecimalValues) {
  // estimateScale(E, len, 10) must be ceil(log10 v) or one less.
  // v = 1.0: log10 = 0, k (for high slightly above 1) is 1; estimate is 0.
  Decomposed One = decompose(1.0);
  int Est = estimateScale(One.E, 64 - std::countl_zero(One.F), 10);
  EXPECT_EQ(Est, 0);
  // v = 1000.0: estimate 3 or 4 (true k = 4 since high > 1000).
  Decomposed Th = decompose(1000.0);
  int EstTh = estimateScale(Th.E, 64 - std::countl_zero(Th.F), 10);
  EXPECT_TRUE(EstTh == 3 || EstTh == 4);
}

TEST(Estimator, Base2IsExactFloorLog2) {
  for (double V : randomNormalDoubles(200, 31)) {
    Decomposed D = decompose(V);
    int Est = estimateScale(D.E, 64 - std::countl_zero(D.F), 2);
    EXPECT_EQ(Est, static_cast<int>(std::floor(std::log2(V))))
        << V; // For B = 2 the formula is floor(log2 v) exactly.
  }
}

class ScalingBaseTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ScalingBaseTest, EstimateIsKOrKMinusOne) {
  unsigned B = GetParam();
  BoundaryFlags Flags{false, false};
  auto Check = [&](double V) {
    Decomposed D = decompose(V);
    int Est = estimateScale(D.E, 64 - std::countl_zero(D.F), B);
    int K = exactK(V, B, Flags);
    EXPECT_TRUE(Est == K || Est == K - 1)
        << "V=" << V << " base=" << B << " est=" << Est << " k=" << K;
  };
  for (double V : randomNormalDoubles(150, B * 7 + 1))
    Check(V);
  for (double V : randomSubnormalDoubles(50, B * 7 + 2))
    Check(V);
  for (double V : {1.0, 2.0, 0.5, 1e300, 1e-300, 5e-324, 4.9e300,
                   65536.0, 1.7976931348623157e308})
    Check(V);
}

TEST_P(ScalingBaseTest, FloatLogEstimateIsKOrKMinusOne) {
  unsigned B = GetParam();
  BoundaryFlags Flags{false, false};
  for (double V : randomNormalDoubles(150, B * 13 + 5)) {
    Decomposed DV = decompose(V);
    int Est = estimateScaleFloatLog(DV.F, DV.E, B);
    int K = exactK(V, B, Flags);
    EXPECT_TRUE(Est == K || Est == K - 1)
        << "V=" << V << " base=" << B << " est=" << Est << " k=" << K;
  }
}

TEST_P(ScalingBaseTest, AllThreeStrategiesAgree) {
  unsigned B = GetParam();
  auto CheckAll = [&](double V, BoundaryFlags Flags) {
    Decomposed D = decompose(V);
    int BitLen = 64 - std::countl_zero(D.F);
    ScaledState Iter =
        scaleIterative(makeScaledStart<double>(D), B, Flags);
    ScaledState Log =
        scaleFloatLog(makeScaledStart<double>(D), B, Flags, D.F, D.E);
    ScaledState Est =
        scaleEstimate(makeScaledStart<double>(D), B, Flags, D.E, BitLen);
    EXPECT_EQ(Iter.K, Log.K) << V;
    EXPECT_EQ(Iter.K, Est.K) << V;
    // The states may differ by a common factor (the loop is homogeneous);
    // cross-multiplied ratios must match: R1*S2 == R2*S1, etc.
    EXPECT_EQ(Iter.R * Est.S, Est.R * Iter.S) << V;
    EXPECT_EQ(Iter.MPlus * Est.S, Est.MPlus * Iter.S) << V;
    EXPECT_EQ(Iter.MMinus * Est.S, Est.MMinus * Iter.S) << V;
    EXPECT_EQ(Log.R * Est.S, Est.R * Log.S) << V;
    EXPECT_EQ(Log.MPlus * Est.S, Est.MPlus * Log.S) << V;
  };
  for (double V : randomNormalDoubles(60, B * 101 + 9)) {
    CheckAll(V, BoundaryFlags{false, false});
    CheckAll(V, BoundaryFlags{true, true});
  }
  for (double V : randomSubnormalDoubles(20, B * 101 + 10))
    CheckAll(V, BoundaryFlags{false, false});
}

INSTANTIATE_TEST_SUITE_P(Bases, ScalingBaseTest,
                         ::testing::Values(2u, 3u, 8u, 10u, 16u, 36u));

TEST(Scaling, PostConditionHighAtMostBk) {
  // After scaling (pre-multiplied convention), high = (R/B + MPlus/B)/S
  // satisfies high <= B^K, i.e. R + MPlus <= B*S (strict if HighOk).
  for (double V : randomNormalDoubles(200, 77)) {
    for (bool HighOk : {false, true}) {
      BoundaryFlags Flags{HighOk, HighOk};
      Decomposed D = decompose(V);
      int BitLen = 64 - std::countl_zero(D.F);
      ScaledState State =
          scaleEstimate(makeScaledStart<double>(D), 10, Flags, D.E, BitLen);
      BigInt High = State.R + State.MPlus;
      BigInt Bound = State.S;
      Bound.mulSmall(10);
      if (HighOk)
        EXPECT_LT(High, Bound) << V;
      else
        EXPECT_LE(High, Bound) << V;
      // And K is minimal: high > B^(K-1) (or >=).
      if (HighOk)
        EXPECT_GE(High, State.S) << V;
      else
        EXPECT_GT(High, State.S) << V;
    }
  }
}

TEST(Scaling, IterativeSeededFarAwayStillConverges) {
  Decomposed D = decompose(1234.5);
  BoundaryFlags Flags{false, false};
  int KTrue = scaleIterative(makeScaledStart<double>(D), 10, Flags, 0).K;
  EXPECT_EQ(scaleIterative(makeScaledStart<double>(D), 10, Flags, 50).K,
            KTrue);
  EXPECT_EQ(scaleIterative(makeScaledStart<double>(D), 10, Flags, -50).K,
            KTrue);
}

TEST(Scaling, SchryerExtremesAgree) {
  // Spot-check the structured set's extreme-exponent members, where the
  // estimate-vs-exact distinction matters most.
  SchryerParams Params;
  Params.ExponentStride = 600; // Sparse: keep the test fast.
  BoundaryFlags Flags{false, false};
  for (double V : schryerDoubles(Params)) {
    Decomposed D = decompose(V);
    int BitLen = 64 - std::countl_zero(D.F);
    int KEst =
        scaleEstimate(makeScaledStart<double>(D), 10, Flags, D.E, BitLen).K;
    int KIter = scaleIterative(makeScaledStart<double>(D), 10, Flags).K;
    ASSERT_EQ(KEst, KIter) << V;
  }
}

} // namespace
