//===- tests/core/free_format_test.cpp ---------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Free-format conversion: the paper's worked examples, the classic hard
/// doubles, rounding-mode accommodation (the 1e23 case), scaling-strategy
/// independence, and digit validity invariants.
///
//===----------------------------------------------------------------------===//

#include "core/free_format.h"

#include "fp/binary16.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

/// Digits as text plus the scale, e.g. "3 k=0" for 0.3.
std::string shortText(double V, FreeFormatOptions Options = {}) {
  DigitString D = shortestDigits(V, Options);
  return D.digitsAsText() + " k=" + std::to_string(D.K);
}

TEST(FreeFormat, PaperExampleOneThird) {
  // "1/3 would print as 0.3333333333333333" (16 threes for the double
  // nearest 1/3).
  DigitString D = shortestDigits(1.0 / 3.0);
  EXPECT_EQ(D.digitsAsText(), "3333333333333333");
  EXPECT_EQ(D.K, 0);
  EXPECT_EQ(D.TrailingMarks, 0);
}

TEST(FreeFormat, PaperExamplePointThree) {
  // "3/10 would print as 0.3 instead of 0.2999999".
  DigitString D = shortestDigits(0.3);
  EXPECT_EQ(D.digitsAsText(), "3");
  EXPECT_EQ(D.K, 0);
}

TEST(FreeFormat, PaperExampleUnbiasedRounding1e23) {
  // 10^23 falls exactly between two doubles; the nearer-even one (the
  // smaller) wins on input, so with the NearestEven reader model the
  // algorithm may print the bold short form "1e23"...
  DigitString Aware = shortestDigits(1e23, FreeFormatOptions{});
  EXPECT_EQ(Aware.digitsAsText(), "1");
  EXPECT_EQ(Aware.K, 24);
  // ...while the conservative (Steele-White-style) model must print
  // 9.999999999999999e22.
  FreeFormatOptions Conservative;
  Conservative.Boundaries = BoundaryMode::Conservative;
  DigitString Safe = shortestDigits(1e23, Conservative);
  EXPECT_EQ(Safe.digitsAsText(), "9999999999999999");
  EXPECT_EQ(Safe.K, 23);
}

TEST(FreeFormat, ClassicHardValues) {
  EXPECT_EQ(shortText(5e-324), "5 k=-323");        // Smallest subnormal.
  EXPECT_EQ(shortText(2.2250738585072014e-308),
            "22250738585072014 k=-307");            // Smallest normal.
  EXPECT_EQ(shortText(1.7976931348623157e308),
            "17976931348623157 k=309");             // Largest finite.
  EXPECT_EQ(shortText(1.0), "1 k=1");
  EXPECT_EQ(shortText(2.0), "2 k=1");
  EXPECT_EQ(shortText(0.1), "1 k=0");
  EXPECT_EQ(shortText(1e22), "1 k=23");             // Exact power of ten.
  EXPECT_EQ(shortText(9007199254740992.0), "9007199254740992 k=16"); // 2^53.
  EXPECT_EQ(shortText(123.456), "123456 k=3");
}

TEST(FreeFormat, PowersOfTwoAreExact) {
  // Powers of two are exactly representable, so the shortest form is just
  // the decimal expansion trimmed of trailing zeros.
  EXPECT_EQ(shortText(4.0), "4 k=1");
  EXPECT_EQ(shortText(1024.0), "1024 k=4");
  EXPECT_EQ(shortText(0.5), "5 k=0");
  EXPECT_EQ(shortText(0.25), "25 k=0");
  EXPECT_EQ(shortText(0.125), "125 k=0");
}

TEST(FreeFormat, FirstDigitNonZeroAndAllDigitsValid) {
  FreeFormatOptions Options;
  for (unsigned Base : {2u, 7u, 10u, 16u, 36u}) {
    Options.Base = Base;
    for (double V : randomNormalDoubles(100, Base * 3 + 1)) {
      DigitString D = shortestDigits(V, Options);
      ASSERT_FALSE(D.Digits.empty());
      EXPECT_NE(D.Digits.front(), 0u) << V;
      for (uint8_t Digit : D.Digits)
        EXPECT_LT(Digit, Base) << V;
      EXPECT_EQ(D.TrailingMarks, 0);
    }
  }
}

TEST(FreeFormat, ScalingStrategiesProduceIdenticalOutput) {
  FreeFormatOptions Iter, Log, Est;
  Iter.Scaling = ScalingAlgorithm::Iterative;
  Log.Scaling = ScalingAlgorithm::FloatLog;
  Est.Scaling = ScalingAlgorithm::Estimate;
  auto Check = [&](double V) {
    DigitString A = shortestDigits(V, Iter);
    DigitString B = shortestDigits(V, Log);
    DigitString C = shortestDigits(V, Est);
    EXPECT_EQ(A, B) << V;
    EXPECT_EQ(A, C) << V;
  };
  for (double V : randomNormalDoubles(200, 1001))
    Check(V);
  for (double V : randomSubnormalDoubles(50, 1002))
    Check(V);
  for (double V : {1e308, 1e-308, 5e-324, 1.0, 3.141592653589793})
    Check(V);
}

TEST(FreeFormat, BoundaryModesOrderOutputLengths) {
  // Inclusive boundaries can only shorten (or keep) the output.
  for (double V : randomNormalDoubles(200, 555)) {
    FreeFormatOptions Conservative, Inclusive;
    Conservative.Boundaries = BoundaryMode::Conservative;
    Inclusive.Boundaries = BoundaryMode::BothInclusive;
    size_t LenC = shortestDigits(V, Conservative).Digits.size();
    size_t LenI = shortestDigits(V, Inclusive).Digits.size();
    EXPECT_LE(LenI, LenC) << V;
  }
}

TEST(FreeFormat, NearestEvenMatchesConservativeForOddMantissa) {
  for (double V : randomNormalDoubles(300, 666)) {
    Decomposed D = decompose(V);
    if ((D.F & 1) == 0)
      continue;
    FreeFormatOptions Conservative, Even;
    Conservative.Boundaries = BoundaryMode::Conservative;
    Even.Boundaries = BoundaryMode::NearestEven;
    EXPECT_EQ(shortestDigits(V, Conservative), shortestDigits(V, Even)) << V;
  }
}

TEST(FreeFormat, TieBreakStrategiesDifferOnlyInLastDigit) {
  FreeFormatOptions Up, Down;
  Up.Ties = TieBreak::RoundUp;
  Down.Ties = TieBreak::RoundDown;
  for (double V : randomNormalDoubles(300, 91)) {
    DigitString A = shortestDigits(V, Up);
    DigitString B = shortestDigits(V, Down);
    ASSERT_EQ(A.Digits.size(), B.Digits.size()) << V;
    ASSERT_EQ(A.K, B.K) << V;
    for (size_t I = 0; I + 1 < A.Digits.size(); ++I)
      EXPECT_EQ(A.Digits[I], B.Digits[I]) << V;
    int Delta = static_cast<int>(A.Digits.back()) -
                static_cast<int>(B.Digits.back());
    EXPECT_TRUE(Delta == 0 || Delta == 1) << V;
  }
}

TEST(FreeFormat, FloatOutputsAreShorterThanDoubleOutputs) {
  // floats have 24 bits of precision; their shortest decimal form needs at
  // most 9 digits (and the double view of the same value never fewer).
  for (float V : randomNormalFloats(300, 44)) {
    DigitString D = shortestDigits(V);
    EXPECT_LE(D.Digits.size(), 9u) << V;
  }
}

TEST(FreeFormat, DoubleNeedsAtMost17Digits) {
  for (double V : randomNormalDoubles(300, 45)) {
    DigitString D = shortestDigits(V);
    EXPECT_LE(D.Digits.size(), 17u) << V;
  }
}

TEST(FreeFormat, Binary16ExhaustiveDigitBounds) {
  // Every finite positive half: at most 5 significant decimal digits.
  for (uint32_t Bits = 1; Bits < 0x7C00; ++Bits) {
    Binary16 H = Binary16::fromBits(static_cast<uint16_t>(Bits));
    DigitString D = shortestDigits(H);
    EXPECT_LE(D.Digits.size(), 5u) << Bits;
    EXPECT_NE(D.Digits.front(), 0u) << Bits;
  }
}

TEST(FreeFormat, Base2OutputIsTheMantissa) {
  // In base 2 the shortest digits of 5.0 = 101b.
  FreeFormatOptions Options;
  Options.Base = 2;
  DigitString D = shortestDigits(5.0, Options);
  EXPECT_EQ(D.digitsAsText(), "101");
  EXPECT_EQ(D.K, 3);
}

TEST(FreeFormat, Base16KnownValue) {
  FreeFormatOptions Options;
  Options.Base = 16;
  DigitString D = shortestDigits(255.0, Options);
  EXPECT_EQ(D.digitsAsText(), "ff");
  EXPECT_EQ(D.K, 2);
  DigitString E = shortestDigits(0.0625, Options); // 16^-1.
  EXPECT_EQ(E.digitsAsText(), "1");
  EXPECT_EQ(E.K, 0);
}

} // namespace
