//===- tests/core/table1_test.cpp --------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end invariants of the scaled state: after Table 1 initialization
/// and scaling, the digit loop's invariants from the paper's Section 3
/// must hold exactly (verified with rationals).  This is the "Table 1 as
/// code + tests" entry of the experiment index in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#include "core/digit_loop.h"
#include "core/scaling.h"
#include "fp/boundaries.h"
#include "rational/rational.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <bit>

using namespace dragon4;

namespace {

Rational ratio(const BigInt &Num, const BigInt &Den) {
  return Rational(Num, Den);
}

/// After scaling (pre-multiplied convention), the state must satisfy
///   v            = (R/S)  * B^(K-1)
///   high - v     = (M+/S) * B^(K-1)
///   v - low      = (M-/S) * B^(K-1)
/// where low/high are the exact gap midpoints of v = F * 2^E.
void expectScaledInvariants(uint64_t F, int E, int Precision,
                            int MinExponent, unsigned B) {
  Decomposed D{F, E};
  BoundaryFlags Flags{false, false};
  int BitLen = 64 - std::countl_zero(F);
  ScaledState State =
      scaleEstimate(makeScaledStart(F, E, Precision, MinExponent), B, Flags,
                    E, BitLen);

  Rational V = Rational::scaledPow(BigInt(F), 2, E);
  Rational Scale = Rational::scaledPow(BigInt(uint64_t(1)), B, State.K - 1);

  EXPECT_EQ(ratio(State.R, State.S) * Scale, V) << "F=" << F << " E=" << E;

  // Successor gap midpoint distance = ulp / 2.
  Rational HalfUlp = Rational::scaledPow(BigInt(uint64_t(1)), 2, E) *
                     Rational(BigInt(uint64_t(1)), BigInt(uint64_t(2)));
  EXPECT_EQ(ratio(State.MPlus, State.S) * Scale, HalfUlp)
      << "F=" << F << " E=" << E;

  bool Narrow = F == (uint64_t(1) << (Precision - 1)) && E > MinExponent;
  Rational LowGap =
      Narrow ? HalfUlp * Rational(BigInt(uint64_t(1)), BigInt(uint64_t(2)))
             : HalfUlp;
  EXPECT_EQ(ratio(State.MMinus, State.S) * Scale, LowGap)
      << "F=" << F << " E=" << E;

  (void)D;
}

TEST(ScaledInvariants, AllTableOneRowsBase10) {
  expectScaledInvariants((uint64_t(1) << 53) - 1, 10, 53, -1074, 10);
  expectScaledInvariants(uint64_t(1) << 52, 10, 53, -1074, 10);
  expectScaledInvariants((uint64_t(1) << 52) | 0x9999, -60, 53, -1074, 10);
  expectScaledInvariants(uint64_t(1) << 52, -60, 53, -1074, 10);
  expectScaledInvariants(uint64_t(1) << 52, -1074, 53, -1074, 10);
  expectScaledInvariants(1, -1074, 53, -1074, 10);
}

class ScaledInvariantsBaseTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ScaledInvariantsBaseTest, RandomDoubles) {
  unsigned B = GetParam();
  for (double V : randomNormalDoubles(40, B * 3 + 17)) {
    Decomposed D = decompose(V);
    expectScaledInvariants(D.F, D.E, 53, -1074, B);
  }
  for (double V : randomSubnormalDoubles(10, B * 3 + 18)) {
    Decomposed D = decompose(V);
    expectScaledInvariants(D.F, D.E, 53, -1074, B);
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, ScaledInvariantsBaseTest,
                         ::testing::Values(2u, 5u, 10u, 16u, 36u));

TEST(DigitLoop, EmittedValueStaysInsideTheRange) {
  // For every emitted result, low < V_out < high (strictly, with the
  // conservative flags) -- the information-preservation theorem.
  for (double Value : randomNormalDoubles(100, 2718)) {
    Decomposed D = decompose(Value);
    BoundaryFlags Flags{false, false};
    int BitLen = 64 - std::countl_zero(D.F);
    ScaledState State = scaleEstimate(makeScaledStart<double>(D), 10, Flags,
                                      D.E, BitLen);
    int K = State.K;
    DigitLoopResult Loop = runDigitLoop(std::move(State), 10, Flags,
                                        TieBreak::RoundUp);

    Rational V = Rational::scaledPow(BigInt(D.F), 2, D.E);
    Rational HalfUlp = Rational::scaledPow(BigInt(uint64_t(1)), 2, D.E) *
                       Rational(BigInt(uint64_t(1)), BigInt(uint64_t(2)));
    bool Narrow = D.F == (uint64_t(1) << 52);
    Rational Low = V - (Narrow ? HalfUlp * Rational(BigInt(uint64_t(1)),
                                                    BigInt(uint64_t(2)))
                               : HalfUlp);
    Rational High = V + HalfUlp;

    Rational Out;
    Rational Place = Rational::scaledPow(BigInt(uint64_t(1)), 10, K);
    Rational Tenth =
        Rational(BigInt(uint64_t(1)), BigInt(uint64_t(10)));
    for (uint8_t Digit : Loop.Digits) {
      Place *= Tenth;
      Out += Rational(BigInt(uint64_t(Digit))) * Place;
    }
    EXPECT_GT(Out, Low) << Value;
    EXPECT_LT(Out, High) << Value;
    // Correct rounding: |V - Out| <= Place / 2.
    Rational Err = Out < V ? V - Out : Out - V;
    EXPECT_LE(Err, Place * Rational(BigInt(uint64_t(1)),
                                    BigInt(uint64_t(2))))
        << Value;
  }
}

} // namespace
