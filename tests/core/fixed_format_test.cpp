//===- tests/core/fixed_format_test.cpp --------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-format conversion: the paper's worked examples (1/3 to ten
/// places, 100 to twenty places), absolute vs relative positions, the
/// zero-collapse case, ties at half-quantum, and # mark placement.
///
//===----------------------------------------------------------------------===//

#include "core/fixed_format.h"

#include "fp/binary16.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

std::string fixedAbs(double V, int Position, FixedFormatOptions Options = {}) {
  DigitString D = fixedDigitsAbsolute(V, Position, Options);
  return D.digitsAsText() + " k=" + std::to_string(D.K);
}

std::string fixedRel(double V, int NumDigits,
                     FixedFormatOptions Options = {}) {
  DigitString D = fixedDigitsRelative(V, NumDigits, Options);
  return D.digitsAsText() + " k=" + std::to_string(D.K);
}

TEST(FixedFormat, PaperExampleOneThirdTenPlaces) {
  // "the floating-point representation of 1/3 might print as 0.3333333148
  // even though only the first seven digits are significant ... so that
  // 1/3 prints as 0.3333333###."  That was the 1996 single-precision
  // example; float (p=24) gives exactly this.
  float OneThird = 1.0f / 3.0f;
  DigitString D = fixedDigitsAbsolute(OneThird, -10);
  EXPECT_EQ(D.K, 0);
  // First seven fraction digits significant, remainder insignificant.
  EXPECT_EQ(D.digitsAsText().size(), 10u);
  EXPECT_EQ(D.digitsAsText().substr(0, 7), "3333333");
  EXPECT_GT(D.TrailingMarks, 0);
  EXPECT_EQ(D.digitsAsText().substr(10 - D.TrailingMarks),
            std::string(static_cast<size_t>(D.TrailingMarks), '#'));
}

TEST(FixedFormat, PaperExampleHundredToTwentyPlaces) {
  // "when printing 100 in IEEE double-precision to digit position 20, the
  // algorithm prints 100.000000000000000#####."
  DigitString D = fixedDigitsAbsolute(100.0, -20);
  EXPECT_EQ(D.K, 3);
  std::string Text = D.digitsAsText();
  ASSERT_EQ(Text.size(), 23u); // Positions 2..-20.
  EXPECT_EQ(Text.substr(0, 3), "100");
  // 100 = 2^2 * 25 has 55 bits below the leading digit... exactness runs
  // out after enough decimal places; the tail must be marks and the
  // boundary between zeros and marks is where incrementing stays in range.
  EXPECT_EQ(D.TrailingMarks, 5);
  EXPECT_EQ(Text.substr(0, 18), "100000000000000000");
  EXPECT_EQ(Text.substr(18), "#####");
}

TEST(FixedFormat, PaperExampleHundredToPositionZero) {
  // "Suppose 100 were printed to absolute position 0 ... the remaining
  // digit positions are significant and must therefore be zero, not #."
  DigitString D = fixedDigitsAbsolute(100.0, 0);
  EXPECT_EQ(D.digitsAsText(), "100");
  EXPECT_EQ(D.K, 3);
  EXPECT_EQ(D.TrailingMarks, 0);
}

TEST(FixedFormat, RoundsCorrectlyAtRequestedPosition) {
  EXPECT_EQ(fixedAbs(0.6, 0), "1 k=1");    // 0.6 -> 1 at integer precision.
  EXPECT_EQ(fixedAbs(0.4, 0), "0 k=1");    // 0.4 -> 0.
  EXPECT_EQ(fixedAbs(123.456, -2), "12346 k=3"); // Round up at hundredths.
  EXPECT_EQ(fixedAbs(123.454, -2), "12345 k=3"); // Round down.
  EXPECT_EQ(fixedAbs(9.95, 0), "10 k=2");  // Carry into a new position.
}

TEST(FixedFormat, HalfQuantumTies) {
  // 0.5 is exact in binary; at integer precision it is a genuine tie.
  FixedFormatOptions Up, Down, Even;
  Up.Ties = TieBreak::RoundUp;
  Down.Ties = TieBreak::RoundDown;
  Even.Ties = TieBreak::RoundEven;
  EXPECT_EQ(fixedAbs(0.5, 0, Up), "1 k=1");
  EXPECT_EQ(fixedAbs(0.5, 0, Down), "0 k=1");
  EXPECT_EQ(fixedAbs(0.5, 0, Even), "0 k=1");  // 0 is even.
  EXPECT_EQ(fixedAbs(1.5, 0, Even), "2 k=1");  // Ties to even digit.
  EXPECT_EQ(fixedAbs(2.5, 0, Even), "2 k=1");
  EXPECT_EQ(fixedAbs(2.5, 0, Up), "3 k=1");
  // 0.125 at two fraction digits: tie between 0.12 and 0.13.
  EXPECT_EQ(fixedAbs(0.125, -2, Even), "12 k=0");
  EXPECT_EQ(fixedAbs(0.125, -2, Up), "13 k=0");
}

TEST(FixedFormat, ZeroCollapseProducesSignificantZero) {
  // A value far below the requested position rounds to a single zero.
  EXPECT_EQ(fixedAbs(5e-324, 0), "0 k=1");
  EXPECT_EQ(fixedAbs(0.04, 0), "0 k=1");
  EXPECT_EQ(fixedAbs(1e-10, -5), "0 k=-4");
  DigitString D = fixedDigitsAbsolute(5e-324, 0);
  EXPECT_EQ(D.TrailingMarks, 0);
}

TEST(FixedFormat, RelativePositionBasics) {
  EXPECT_EQ(fixedRel(123.456, 4), "1235 k=3");
  EXPECT_EQ(fixedRel(123.456, 2), "12 k=3");
  EXPECT_EQ(fixedRel(123.456, 1), "1 k=3");
  EXPECT_EQ(fixedRel(0.0001234, 2), "12 k=-3");
  EXPECT_EQ(fixedRel(1.0, 3), "100 k=1");
}

TEST(FixedFormat, RelativePositionCarryBumpsScale) {
  // Values that round up past a power of the base need the second round
  // of the scale iteration: the requested digit count stays fixed while
  // the scale grows by one.
  EXPECT_EQ(fixedRel(9.996, 3), "100 k=2"); // 9.996 -> 10.0.
  EXPECT_EQ(fixedRel(9.96, 2), "10 k=2");   // 9.96  -> 10.
  EXPECT_EQ(fixedRel(0.999999, 2), "10 k=1");
  // Just below the carry threshold: no bump (9.995 in binary is
  // 9.99499999..., which rounds down to 9.99).
  EXPECT_EQ(fixedRel(9.995, 3), "999 k=1");
}

TEST(FixedFormat, RelativeMatchesAbsoluteAtDerivedPosition) {
  for (double V : randomNormalDoubles(200, 3131)) {
    for (int NumDigits : {1, 2, 5, 12, 17, 25}) {
      DigitString Rel = fixedDigitsRelative(V, NumDigits);
      int J = Rel.K - NumDigits;
      DigitString Abs = fixedDigitsAbsolute(V, J);
      EXPECT_EQ(Rel, Abs) << V << " digits=" << NumDigits;
      EXPECT_EQ(Rel.width(), NumDigits) << V;
    }
  }
}

TEST(FixedFormat, MarksAppearExactlyWhenPrecisionRunsOut) {
  // With enough requested digits, every double eventually yields marks;
  // the digits+zeros prefix must match the free-format output when the
  // latter is shorter.
  for (double V : randomNormalDoubles(100, 717)) {
    DigitString Wide = fixedDigitsRelative(V, 30);
    EXPECT_EQ(Wide.width(), 30) << V;
    EXPECT_GT(Wide.TrailingMarks, 0) << V; // 30 > 17 max significant.
  }
}

TEST(FixedFormat, SubnormalsShowFewSignificantDigits) {
  // 5e-324 to 30 significant positions: ~1-2 digits then marks, because
  // the rounding range of the last subnormal is gigantic relative to it.
  DigitString D = fixedDigitsRelative(5e-324, 10);
  EXPECT_EQ(D.width(), 10);
  EXPECT_GT(D.TrailingMarks, 6) << D.digitsAsText();
  EXPECT_EQ(D.Digits.front(), 5u);
}

TEST(FixedFormat, Binary16DenormalMarksExhaustive) {
  // The paper motivates # marks with denormalized numbers; sweep all
  // binary16 subnormals at 8 significant positions and check structure.
  for (uint32_t Bits = 1; Bits < 0x400; ++Bits) {
    Binary16 H = Binary16::fromBits(static_cast<uint16_t>(Bits));
    DigitString D = fixedDigitsRelative(H, 8);
    EXPECT_EQ(D.width(), 8) << Bits;
    for (uint8_t Digit : D.Digits)
      EXPECT_LT(Digit, 10u);
    // Subnormal halves have at most ~3-4 meaningful decimal digits.
    EXPECT_GE(D.TrailingMarks, 1) << Bits;
  }
}

TEST(FixedFormat, AbsolutePositiveQuantization) {
  // Rounding to tens / hundreds (position > 0).  12345 at the tens is an
  // exact tie; the default strategy rounds up.
  EXPECT_EQ(fixedAbs(12345.0, 1), "1235 k=5");
  EXPECT_EQ(fixedAbs(12355.0, 2), "124 k=5");
  EXPECT_EQ(fixedAbs(149.0, 2), "1 k=3");
  EXPECT_EQ(fixedAbs(151.0, 2), "2 k=3");
}

TEST(FixedFormat, WidthEqualsKMinusJ) {
  for (double V : randomNormalDoubles(150, 818)) {
    for (int J : {-12, -3, 0, 2, 8}) {
      DigitString D = fixedDigitsAbsolute(V, J);
      if (D.K <= J) {
        EXPECT_EQ(D.width(), 1);
        continue;
      }
      EXPECT_EQ(D.width(), D.K - J) << V << " J=" << J;
      EXPECT_EQ(D.lastPlace(), J) << V << " J=" << J;
    }
  }
}

} // namespace
