//===- tests/core/fixed_conformance_test.cpp -------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conformance suite for fixed-format output (Section 4): '#' marking of
/// insignificant positions, carry propagation when rounding at absolute
/// and relative positions -- including the all-nines carry-out that grows
/// a new leading digit -- and digit-for-digit agreement with the
/// rational-arithmetic reference implementation across a targeted grid.
///
//===----------------------------------------------------------------------===//

#include "core/fixed_format.h"

#include "core/reference.h"
#include "fp/ieee_traits.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

std::string fixedAbs(double V, int Position,
                     const FixedFormatOptions &Options = {}) {
  DigitString D = fixedDigitsAbsolute(V, Position, Options);
  return D.digitsAsText() + "@" + std::to_string(D.K);
}

std::string fixedRel(double V, int NumDigits,
                     const FixedFormatOptions &Options = {}) {
  DigitString D = fixedDigitsRelative(V, NumDigits, Options);
  return D.digitsAsText() + "@" + std::to_string(D.K);
}

// --- '#' insignificant-position marking ---------------------------------

TEST(FixedConformance, MarksInsignificantPositions) {
  // 1/3 to ten significant places: only the digits a reader needs are
  // printed; the rest are marks (the paper's denormal-printing example).
  DigitString Third = fixedDigitsRelative(1.0 / 3.0, 25);
  EXPECT_EQ(Third.width(), 25);
  EXPECT_GT(Third.TrailingMarks, 0);
  // The leading digits are the familiar 0.333... pattern (the double
  // 1.0/3.0 diverges from repeating 3s around digit 17, so check 15).
  ASSERT_GE(Third.Digits.size(), 15u);
  for (size_t I = 0; I < 15; ++I)
    EXPECT_EQ(Third.Digits[I], 3) << "digit " << I;

  // The minimum subnormal has ~one decimal digit of information; asking
  // for many positions must mark, not fabricate, the rest.
  DigitString Tiny = fixedDigitsRelative(5e-324, 10);
  EXPECT_GT(Tiny.TrailingMarks, 0);
  EXPECT_LT(Tiny.Digits.size(), 10u);

  // A value exactly representable at the requested position needs no
  // marks at all.
  DigitString Exact = fixedDigitsAbsolute(0.25, -2);
  EXPECT_EQ(Exact.TrailingMarks, 0);
  EXPECT_EQ(Exact.digitsAsText(), "25");
  EXPECT_EQ(Exact.K, 0);
}

// --- carry propagation at the rounding position -------------------------

TEST(FixedConformance, CarryAtAbsolutePosition) {
  // 0.96 rounded to one place after the point: 0.96 -> 1.0 (carry crosses
  // the radix point and bumps K).
  EXPECT_EQ(fixedAbs(0.96, -1), "10@1");
  // 0.94 stays below the midpoint.
  EXPECT_EQ(fixedAbs(0.94, -1), "9@0");
  // 123.456 to integer precision: carry into the last kept digit only.
  EXPECT_EQ(fixedAbs(123.456, 0), "123@3");
  EXPECT_EQ(fixedAbs(123.654, 0), "124@3");
}

TEST(FixedConformance, CarryAtRelativePosition) {
  // Two significant digits of 194.9999...: the carry stops inside the
  // kept digits.
  EXPECT_EQ(fixedRel(195.0, 2), "20@3");
  EXPECT_EQ(fixedRel(194.0, 2), "19@3");
  // One digit: 0.95 the double is 0.94999... (below the tie), 0.96 is
  // 0.95999... (above it) -- the rounding decision follows the *value*,
  // not the literal.
  EXPECT_EQ(fixedRel(0.95, 1), "9@0");
  EXPECT_EQ(fixedRel(0.96, 1), "1@1");
}

TEST(FixedConformance, AllNinesCarryOut) {
  // Every kept digit is 9 and the dropped tail rounds up: the carry
  // ripples off the top, producing "1" with K bumped by one.  This is the
  // fixup step of Section 4 growing a digit (9.999 -> "10.00"-shaped).
  EXPECT_EQ(fixedRel(9.999, 3), "100@2");
  EXPECT_EQ(fixedAbs(9.999, -1), "100@2");
  EXPECT_EQ(fixedAbs(99.99, 0), "100@3");
  EXPECT_EQ(fixedAbs(0.9999, -2), "100@1");
  // Carry out of a subnormal-adjacent tiny value.
  EXPECT_EQ(fixedRel(9.995e-10, 2), "10@-8");
}

TEST(FixedConformance, PositionBeyondValueYieldsZeroOrMark) {
  // Rounding 0.04 at integer precision: zero digits of output, but the
  // result must still be a well-formed (possibly zero/marked) string.
  DigitString D = fixedDigitsAbsolute(0.04, 0);
  EXPECT_LE(D.Digits.size(), 1u);
  if (!D.Digits.empty()) {
    EXPECT_EQ(D.Digits[0], 0);
  }
}

// --- tie handling at the requested position -----------------------------

TEST(FixedConformance, ExactHalfwayTies) {
  // 0.5 at integer precision is an exact writer-side tie; the default
  // RoundUp policy picks 1, RoundDown picks 0, RoundEven picks 0.  (A
  // zero result still occupies the kept units position, hence K = 1.)
  FixedFormatOptions Up;
  EXPECT_EQ(fixedAbs(0.5, 0, Up), "1@1");
  FixedFormatOptions Down;
  Down.Ties = TieBreak::RoundDown;
  EXPECT_EQ(fixedAbs(0.5, 0, Down), "0@1");
  FixedFormatOptions Even;
  Even.Ties = TieBreak::RoundEven;
  EXPECT_EQ(fixedAbs(0.5, 0, Even), "0@1");
  EXPECT_EQ(fixedAbs(1.5, 0, Even), "2@1");
  EXPECT_EQ(fixedAbs(2.5, 0, Even), "2@1");
}

// --- differential agreement with the rational reference -----------------

TEST(FixedConformance, AgreesWithReferenceOnGrid) {
  SplitMix64 Rng(77);
  std::vector<double> Values = {0.1,    1.0 / 3.0, 9.999,   0.5,
                                123.456, 1e-30,     6.02e23, 5e-324,
                                0.96,   2.5,       1048576.0};
  for (double V : randomNormalDoubles(40, Rng.next()))
    Values.push_back(V);
  for (double V : randomSubnormalDoubles(10, Rng.next()))
    Values.push_back(V);

  FixedFormatOptions Options;
  for (double V : Values) {
    Decomposed D = decompose(V);
    BoundaryFlags Flags =
        BoundaryFlags::resolve(Options.Boundaries, D.F);
    for (int Position : {-20, -10, -2, -1, 0, 1, 5}) {
      DigitString Fast = fixedDigitsAbsolute(V, Position, Options);
      DigitString Ref = referenceFixedFormat(
          D.F, D.E, IeeeTraits<double>::Precision,
          IeeeTraits<double>::MinExponent, Options.Base, Flags,
          Options.Ties, Position);
      EXPECT_EQ(Fast, Ref) << "value " << V << " position " << Position;
    }
  }
}

} // namespace
