//===- tests/engine/engine_batch_test.cpp - Batch conversion ----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// BatchEngine<T> must produce byte-identical output regardless of how many
// threads run the batch: every value owns a fixed-stride slot, so the
// sharding is invisible in the result.  The counters must account for
// every value exactly once.  The typed engines share one BatchPool core,
// so the determinism argument is identical for every format; this file
// proves it for double, float, and Binary16 (the Half sweep is the whole
// encoding space), and for the type-erased AnyBatch mixing all five.
//
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

using namespace dragon4;
namespace eng = dragon4::engine;

namespace {

/// Big enough that a multi-thread engine genuinely shards (several chunks
/// per worker), with specials sprinkled through.
std::vector<double> batchCorpus() {
  std::vector<double> Values = randomBitsDoubles(20000, 0xba7c4001);
  std::vector<double> Sub = randomSubnormalDoubles(2000, 0xba7c4002);
  Values.insert(Values.end(), Sub.begin(), Sub.end());
  for (size_t I = 0; I < Values.size(); I += 997) {
    Values[I] = (I % 3 == 0)   ? std::numeric_limits<double>::quiet_NaN()
                : (I % 3 == 1) ? std::numeric_limits<double>::infinity()
                               : -0.0;
  }
  return Values;
}

/// Same shape for binary32 (specials included the same way).
std::vector<float> batchCorpusFloat() {
  std::vector<float> Values = randomBitsFloats(20000, 0xba7c4005);
  std::vector<float> Sub = randomSubnormalFloats(2000, 0xba7c4006);
  Values.insert(Values.end(), Sub.begin(), Sub.end());
  for (size_t I = 0; I < Values.size(); I += 997) {
    Values[I] = (I % 3 == 0)   ? std::numeric_limits<float>::quiet_NaN()
                : (I % 3 == 1) ? std::numeric_limits<float>::infinity()
                               : -0.0f;
  }
  return Values;
}

/// Every binary16 encoding, in order: normals, subnormals, zeros,
/// infinities, and NaNs -- the entire format.
std::vector<Binary16> fullHalfSpace() {
  std::vector<Binary16> Values;
  Values.reserve(1u << 16);
  for (uint32_t Bits = 0; Bits < (1u << 16); ++Bits)
    Values.push_back(Binary16::fromBits(static_cast<uint16_t>(Bits)));
  return Values;
}

TEST(BatchEngine, SingleThreadMatchesStringApi) {
  std::vector<double> Values = batchCorpus();
  eng::BatchEngine<double> Engine(1);
  EXPECT_EQ(Engine.threads(), 1u);
  eng::StringTable Table;
  Engine.convert(Values, Table, PrintOptions{});
  ASSERT_EQ(Table.size(), Values.size());
  for (size_t I = 0; I < Values.size(); ++I)
    ASSERT_EQ(std::string(Table.view(I)), toShortest(Values[I])) << I;
}

TEST(BatchEngine, MultiThreadIdenticalToSingleThread) {
  std::vector<double> Values = batchCorpus();
  eng::BatchEngine<double> Single(1);
  eng::StringTable Expected;
  Single.convert(Values, Expected, PrintOptions{});
  for (unsigned Threads : {2u, 4u}) {
    eng::BatchEngine<double> Engine(Threads);
    EXPECT_EQ(Engine.threads(), Threads);
    eng::StringTable Table;
    Engine.convert(Values, Table, PrintOptions{});
    ASSERT_EQ(Table.size(), Expected.size());
    for (size_t I = 0; I < Values.size(); ++I)
      ASSERT_EQ(Table.view(I), Expected.view(I))
          << I << " with " << Threads << " threads";
  }
}

TEST(BatchEngine, FloatBatchDeterministicAndMatchesStringApi) {
  std::vector<float> Values = batchCorpusFloat();
  eng::BatchEngine<float> Single(1);
  eng::StringTable Expected;
  Single.convert(Values, Expected, PrintOptions{});
  ASSERT_EQ(Expected.size(), Values.size());
  for (size_t I = 0; I < Values.size(); ++I)
    ASSERT_EQ(std::string(Expected.view(I)), toShortest(Values[I])) << I;
  for (unsigned Threads : {2u, 4u}) {
    eng::BatchEngine<float> Engine(Threads);
    eng::StringTable Table;
    Engine.convert(Values, Table, PrintOptions{});
    for (size_t I = 0; I < Values.size(); ++I)
      ASSERT_EQ(Table.view(I), Expected.view(I))
          << I << " with " << Threads << " threads";
  }
  // binary32 is Ryu-certified: the front line must actually serve the
  // batch, not silently fall back to Grisu or the exact loop.
  EXPECT_GT(Single.stats().RyuHits, 0u);
  EXPECT_EQ(Single.stats().RyuFallbacks, 0u);
  EXPECT_EQ(Single.stats().FastPathIneligibleFormat, 0u);
}

TEST(BatchEngine, HalfBatchDeterministicOverWholeFormat) {
  std::vector<Binary16> Values = fullHalfSpace();
  eng::BatchEngine<Binary16> Single(1);
  eng::StringTable Expected;
  Single.convert(Values, Expected, PrintOptions{});
  eng::BatchEngine<Binary16> Engine(4);
  eng::StringTable Table;
  Engine.convert(Values, Table, PrintOptions{});
  ASSERT_EQ(Table.size(), Expected.size());
  for (size_t I = 0; I < Values.size(); ++I)
    ASSERT_EQ(Table.view(I), Expected.view(I)) << "encoding " << I;
  // binary16 has no certified Grisu table, but Ryu's 128-bit powers cover
  // it: every finite non-zero value must be served by the front line, so
  // neither the Grisu counters nor the format-ineligible tally may move.
  EXPECT_EQ(Single.stats().RyuHits, Single.stats().Conversions);
  EXPECT_EQ(Single.stats().RyuFallbacks, 0u);
  EXPECT_EQ(Single.stats().FastPathHits, 0u);
  EXPECT_EQ(Single.stats().FastPathFails, 0u);
  EXPECT_EQ(Single.stats().FastPathIneligibleFormat, 0u);
  EXPECT_EQ(Single.stats().FormatConversions[int(FormatId::Binary16)],
            Single.stats().Conversions);
}

TEST(AnyBatch, MixedFormatsMatchTypedOutput) {
  // Round-robin across all five formats, specials included.
  std::vector<double> Doubles = randomBitsDoubles(400, 0xba7c4007);
  std::vector<float> Floats = randomBitsFloats(400, 0xba7c4008);
  std::vector<eng::AnyValue> Mixed;
  std::vector<std::string> Expected;
  for (size_t I = 0; I < 400; ++I) {
    switch (I % 5) {
    case 0:
      Mixed.push_back(eng::AnyValue::of(Doubles[I]));
      Expected.push_back(toShortest(Doubles[I]));
      break;
    case 1:
      Mixed.push_back(eng::AnyValue::of(Floats[I]));
      Expected.push_back(toShortest(Floats[I]));
      break;
    case 2: {
      Binary16 H = Binary16::fromBits(static_cast<uint16_t>(I * 163));
      Mixed.push_back(eng::AnyValue::of(H));
      Expected.push_back(toShortest(H));
      break;
    }
    case 3: {
      long double E = static_cast<long double>(Doubles[I]) / 3.0L;
      Mixed.push_back(eng::AnyValue::of(E));
      Expected.push_back(toShortest(E));
      break;
    }
    default: {
      Binary128 Q = Binary128::fromDouble(Floats[I]);
      Mixed.push_back(eng::AnyValue::of(Q));
      Expected.push_back(toShortest(Q));
      break;
    }
    }
  }
  for (unsigned Threads : {1u, 4u}) {
    eng::AnyBatch Any(Threads);
    eng::StringTable Table;
    Any.convert(Mixed, Table, PrintOptions{});
    ASSERT_EQ(Table.size(), Mixed.size());
    ASSERT_EQ(Table.strideBytes(), eng::AnyBatch::slotSize(10));
    for (size_t I = 0; I < Mixed.size(); ++I)
      ASSERT_EQ(std::string(Table.view(I)), Expected[I])
          << I << " with " << Threads << " threads";
    // The per-format dimension sums to the total conversions.
    const eng::EngineStats &Stats = Any.stats();
    uint64_t PerFormat = 0;
    for (uint64_t C : Stats.FormatConversions)
      PerFormat += C;
    EXPECT_EQ(PerFormat, Stats.Conversions);
    for (int F = 0; F < NumFormatIds; ++F)
      EXPECT_GT(Stats.FormatConversions[F], 0u) << formatIdName(FormatId(F));
  }
}

TEST(AnyBatch, RoundTripsEncodingForEveryFormat) {
  EXPECT_EQ(eng::AnyValue::of(1.5).as<double>(), 1.5);
  EXPECT_EQ(eng::AnyValue::of(1.5f).as<float>(), 1.5f);
  EXPECT_EQ(eng::AnyValue::of(1.5L).as<long double>(), 1.5L);
  EXPECT_TRUE(eng::AnyValue::of(Binary16::fromBits(0x3c00))
                  .as<Binary16>() == Binary16::fromBits(0x3c00));
  Binary128 Q = Binary128::fromDouble(0.1);
  EXPECT_TRUE(eng::AnyValue::of(Q).as<Binary128>() == Q);
  // Negative long double keeps its sign through the 80-bit encoding pair.
  EXPECT_EQ(eng::AnyValue::of(-2.75L).as<long double>(), -2.75L);
}

TEST(BatchEngine, StatsCoverEveryValueExactlyOnce) {
  std::vector<double> Values = batchCorpus();
  eng::BatchEngine<double> Engine(4);
  eng::StringTable Table;
  Engine.convert(Values, Table, PrintOptions{});
  const eng::EngineStats &Stats = Engine.stats();
  EXPECT_EQ(Stats.Batches, 1u);
  EXPECT_EQ(Stats.BatchValues, Values.size());
  EXPECT_EQ(Stats.Conversions + Stats.Specials, Values.size());
  EXPECT_GT(Stats.Specials, 0u);
  EXPECT_EQ(Stats.RyuHits + Stats.FastPathHits + Stats.slowPathRuns(),
            Stats.Conversions);
  EXPECT_GT(Stats.RyuHits, 0u);
  EXPECT_EQ(Stats.FormatConversions[int(FormatId::Binary64)],
            Stats.Conversions);
  EXPECT_GT(Stats.BatchNanos, 0u);

  // A second batch accumulates.
  Engine.convert(Values, Table, PrintOptions{});
  EXPECT_EQ(Engine.stats().Batches, 2u);
  EXPECT_EQ(Engine.stats().BatchValues, 2 * Values.size());
  // Arena blocks are reported once, not re-sampled per drain: two batches
  // over warm scratches must not exceed one first block per worker.
  EXPECT_LE(Engine.stats().ArenaBlockAllocs, uint64_t(Engine.threads()));

  Engine.resetStats();
  EXPECT_EQ(Engine.stats().Batches, 0u);
}

TEST(BatchEngine, TableReusedAcrossBatchesAndFormats) {
  eng::BatchEngine<double> Engine(4);
  eng::StringTable Table;
  std::vector<double> Big = randomNormalDoubles(5000, 0xba7c4003);
  Engine.convert(Big, Table, PrintOptions{});
  ASSERT_EQ(Table.size(), Big.size());

  // A tiny follow-up batch (below one chunk) reuses the same table.
  std::vector<double> Small = {0.1, -2.5, 1e300};
  Engine.convert(Small, Table, PrintOptions{});
  ASSERT_EQ(Table.size(), Small.size());
  for (size_t I = 0; I < Small.size(); ++I)
    EXPECT_EQ(std::string(Table.view(I)), toShortest(Small[I]));

  // The table is format-agnostic: a float engine re-strides the same one.
  eng::BatchEngine<float> FloatEngine(1);
  std::vector<float> SmallF = {0.25f, -1e30f, 3.5f};
  FloatEngine.convert(SmallF, Table, PrintOptions{});
  ASSERT_EQ(Table.size(), SmallF.size());
  for (size_t I = 0; I < SmallF.size(); ++I)
    EXPECT_EQ(std::string(Table.view(I)), toShortest(SmallF[I]));
}

TEST(BatchEngine, ZeroThreadsPicksHardwareConcurrency) {
  eng::BatchEngine<double> Engine;
  EXPECT_GE(Engine.threads(), 1u);
}

} // namespace
