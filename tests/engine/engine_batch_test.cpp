//===- tests/engine/engine_batch_test.cpp - Batch conversion ----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// BatchEngine must produce byte-identical output regardless of how many
// threads run the batch: every value owns a fixed-stride slot, so the
// sharding is invisible in the result.  The counters must account for
// every value exactly once.
//
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

using namespace dragon4;
namespace eng = dragon4::engine;

namespace {

/// Big enough that a multi-thread engine genuinely shards (several chunks
/// per worker), with specials sprinkled through.
std::vector<double> batchCorpus() {
  std::vector<double> Values = randomBitsDoubles(20000, 0xba7c4001);
  std::vector<double> Sub = randomSubnormalDoubles(2000, 0xba7c4002);
  Values.insert(Values.end(), Sub.begin(), Sub.end());
  for (size_t I = 0; I < Values.size(); I += 997) {
    Values[I] = (I % 3 == 0)   ? std::numeric_limits<double>::quiet_NaN()
                : (I % 3 == 1) ? std::numeric_limits<double>::infinity()
                               : -0.0;
  }
  return Values;
}

TEST(BatchEngine, SingleThreadMatchesStringApi) {
  std::vector<double> Values = batchCorpus();
  eng::BatchEngine Engine(1);
  EXPECT_EQ(Engine.threads(), 1u);
  eng::StringTable Table;
  Engine.convert(Values, Table, PrintOptions{});
  ASSERT_EQ(Table.size(), Values.size());
  for (size_t I = 0; I < Values.size(); ++I)
    ASSERT_EQ(std::string(Table.view(I)), toShortest(Values[I])) << I;
}

TEST(BatchEngine, MultiThreadIdenticalToSingleThread) {
  std::vector<double> Values = batchCorpus();
  eng::BatchEngine Single(1);
  eng::StringTable Expected;
  Single.convert(Values, Expected, PrintOptions{});
  for (unsigned Threads : {2u, 4u}) {
    eng::BatchEngine Engine(Threads);
    EXPECT_EQ(Engine.threads(), Threads);
    eng::StringTable Table;
    Engine.convert(Values, Table, PrintOptions{});
    ASSERT_EQ(Table.size(), Expected.size());
    for (size_t I = 0; I < Values.size(); ++I)
      ASSERT_EQ(Table.view(I), Expected.view(I))
          << I << " with " << Threads << " threads";
  }
}

TEST(BatchEngine, StatsCoverEveryValueExactlyOnce) {
  std::vector<double> Values = batchCorpus();
  eng::BatchEngine Engine(4);
  eng::StringTable Table;
  Engine.convert(Values, Table, PrintOptions{});
  const eng::EngineStats &Stats = Engine.stats();
  EXPECT_EQ(Stats.Batches, 1u);
  EXPECT_EQ(Stats.BatchValues, Values.size());
  EXPECT_EQ(Stats.Conversions + Stats.Specials, Values.size());
  EXPECT_GT(Stats.Specials, 0u);
  EXPECT_EQ(Stats.FastPathHits + Stats.slowPathRuns(), Stats.Conversions);
  EXPECT_GT(Stats.BatchNanos, 0u);

  // A second batch accumulates.
  Engine.convert(Values, Table, PrintOptions{});
  EXPECT_EQ(Engine.stats().Batches, 2u);
  EXPECT_EQ(Engine.stats().BatchValues, 2 * Values.size());
  // Arena blocks are reported once, not re-sampled per drain: two batches
  // over warm scratches must not exceed one first block per worker.
  EXPECT_LE(Engine.stats().ArenaBlockAllocs, uint64_t(Engine.threads()));

  Engine.resetStats();
  EXPECT_EQ(Engine.stats().Batches, 0u);
}

TEST(BatchEngine, TableReusedAcrossBatchesAndSmallBatchRunsInline) {
  eng::BatchEngine Engine(4);
  eng::StringTable Table;
  std::vector<double> Big = randomNormalDoubles(5000, 0xba7c4003);
  Engine.convert(Big, Table, PrintOptions{});
  ASSERT_EQ(Table.size(), Big.size());

  // A tiny follow-up batch (below one chunk) reuses the same table.
  std::vector<double> Small = {0.1, -2.5, 1e300};
  Engine.convert(Small, Table, PrintOptions{});
  ASSERT_EQ(Table.size(), Small.size());
  for (size_t I = 0; I < Small.size(); ++I)
    EXPECT_EQ(std::string(Table.view(I)), toShortest(Small[I]));
}

TEST(BatchEngine, ZeroThreadsPicksHardwareConcurrency) {
  eng::BatchEngine Engine;
  EXPECT_GE(Engine.threads(), 1u);
}

} // namespace
