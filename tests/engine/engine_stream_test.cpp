//===- tests/engine/engine_stream_test.cpp - Push-style streaming -----------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// RecordStream: each pushed record must be byte-identical to the
// corresponding toShortest output, separators appear between (never
// after) records, the type-erased push dispatches like the typed one,
// and clear() permits reuse without losing the contract.
//
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace dragon4;
namespace eng = dragon4::engine;

namespace {

TEST(RecordStream, RecordsMatchToShortestWithSeparatorsBetween) {
  eng::Scratch S;
  eng::RecordStream Stream(S);
  std::vector<double> Values = randomBitsDoubles(512, 0x57e4a);

  std::string Expected;
  for (size_t I = 0; I < Values.size(); ++I) {
    if (I)
      Expected += '\n';
    std::string One = toShortest(Values[I]);
    size_t Len = Stream.push(Values[I]);
    EXPECT_EQ(Len, One.size()) << "value " << I;
    Expected += One;
  }
  EXPECT_EQ(Stream.records(), Values.size());
  EXPECT_EQ(std::string(Stream.bytes()), Expected);
}

TEST(RecordStream, SingleRecordHasNoSeparator) {
  eng::Scratch S;
  eng::RecordStream Stream(S, ',');
  Stream.push(1.5);
  EXPECT_EQ(std::string(Stream.bytes()), "1.5");
  Stream.push(2.5);
  EXPECT_EQ(std::string(Stream.bytes()), "1.5,2.5");
}

TEST(RecordStream, MixedFormatsStreamThroughOneStore) {
  eng::Scratch S;
  eng::RecordStream Stream(S, ',');
  Stream.push(Binary16::fromBits(0x3c00)); // 1.0
  Stream.push(0.5f);
  Stream.push(0.1);
  Stream.push(2.0L);
  Stream.push(Binary128::fromBits(0x3fff000000000000ull, 0)); // 1.0
  std::string Expected = toShortest(Binary16::fromBits(0x3c00)) + "," +
                         toShortest(0.5f) + "," + toShortest(0.1) + "," +
                         toShortest(2.0L) + "," +
                         toShortest(Binary128::fromBits(0x3fff000000000000ull,
                                                        0));
  EXPECT_EQ(std::string(Stream.bytes()), Expected);
  EXPECT_EQ(Stream.records(), 5u);
}

TEST(RecordStream, TypeErasedPushMatchesTypedPush) {
  eng::Scratch S1, S2;
  eng::RecordStream Typed(S1, ';');
  eng::RecordStream Erased(S2, ';');

  std::vector<eng::AnyValue> Values;
  for (double V : randomBitsDoubles(64, 0xe4a5))
    Values.push_back(eng::AnyValue::of(V));
  for (float V : randomBitsFloats(64, 0xe4a6))
    Values.push_back(eng::AnyValue::of(V));
  for (uint32_t Bits = 0; Bits < 0x10000; Bits += 619)
    Values.push_back(eng::AnyValue::of(
        Binary16::fromBits(static_cast<uint16_t>(Bits))));

  for (const eng::AnyValue &V : Values) {
    size_t Len = Erased.push(V);
    size_t TypedLen = 0;
    switch (V.Id) {
    case FormatId::Binary16:
      TypedLen = Typed.push(V.as<Binary16>());
      break;
    case FormatId::Binary32:
      TypedLen = Typed.push(V.as<float>());
      break;
    case FormatId::Binary64:
      TypedLen = Typed.push(V.as<double>());
      break;
    default:
      FAIL() << "unexpected format in this corpus";
    }
    EXPECT_EQ(Len, TypedLen);
  }
  EXPECT_EQ(std::string(Erased.bytes()), std::string(Typed.bytes()));
}

TEST(RecordStream, ClearRetainsCapacityAndRestartsSeparators) {
  eng::Scratch S;
  eng::RecordStream Stream(S);
  for (double V : randomBitsDoubles(256, 0xc1ea4))
    Stream.push(V);
  std::string FirstPass(Stream.bytes());

  Stream.clear();
  EXPECT_EQ(Stream.records(), 0u);
  EXPECT_TRUE(Stream.bytes().empty());

  // Reuse must restart the separator logic (no leading '\n') and
  // reproduce the identical bytes.
  for (double V : randomBitsDoubles(256, 0xc1ea4))
    Stream.push(V);
  EXPECT_EQ(std::string(Stream.bytes()), FirstPass);
  EXPECT_FALSE(FirstPass.empty());
  EXPECT_NE(FirstPass.front(), '\n');
  EXPECT_NE(FirstPass.back(), '\n');
}

TEST(RecordStream, HonorsPrintOptions) {
  eng::Scratch S;
  PrintOptions Hex;
  Hex.Base = 16;
  Hex.ExponentMarker = '^';
  eng::RecordStream Stream(S, '\n', Hex);
  Stream.push(255.0);
  EXPECT_EQ(std::string(Stream.bytes()), toShortest(255.0, Hex));
}

} // namespace
