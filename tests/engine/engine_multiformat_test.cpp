//===- tests/engine/engine_multiformat_test.cpp - One pipeline, 5 formats ---===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The format-generic engine contract: engine::format<T> is byte-identical
// to toShortest<T> for every supported format -- binary16 exhaustively
// (the whole 65536-encoding space), the others over stratified corpora --
// and the traits-derived buffer bound maxShortestBufferSize<T>(Base) is
// never exceeded, proven by rendering into a buffer of exactly that size
// and asserting no truncation.
//
//===----------------------------------------------------------------------===//

#include "dragon4.h"
#include "verify/domain.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

using namespace dragon4;
namespace eng = dragon4::engine;

namespace {

/// Formats \p Value through a buffer of exactly the format's proven
/// worst-case size; a reported length beyond it is an overflow-bound
/// violation, not just a truncation.
template <typename T>
std::string viaBoundBuffer(T Value, const PrintOptions &Options,
                           eng::Scratch &S) {
  char Buf[eng::maxShortestBufferSize<T>(10)];
  size_t Length = eng::format(Value, Buf, sizeof(Buf), Options, S);
  EXPECT_LE(Length, sizeof(Buf)) << "buffer bound violated";
  return std::string(Buf, Length < sizeof(Buf) ? Length : sizeof(Buf));
}

template <typename T>
void expectMatchesToShortest(const std::vector<T> &Values) {
  eng::Scratch S;
  for (size_t I = 0; I < Values.size(); ++I)
    ASSERT_EQ(viaBoundBuffer(Values[I], PrintOptions{}, S),
              toShortest(Values[I]))
        << "value index " << I;
}

/// Stratified long double corpus: full-width mantissas over a log-uniform
/// exponent sweep, subnormals, both signs, plus the edges.
std::vector<long double> extended80Corpus(size_t Count, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<long double> Values;
  Values.reserve(Count + 8);
  for (size_t I = 0; I < Count; ++I) {
    uint64_t F = Rng.next() | (uint64_t(1) << 63); // Explicit integer bit.
    int E = static_cast<int>(Rng.below(16320 + 16381)) - 16381;
    long double V = std::ldexp(static_cast<long double>(F), E - 63);
    Values.push_back((Rng.next() & 1) ? -V : V);
  }
  Values.push_back(std::numeric_limits<long double>::max());
  Values.push_back(std::numeric_limits<long double>::min());
  Values.push_back(std::numeric_limits<long double>::denorm_min());
  Values.push_back(-std::numeric_limits<long double>::denorm_min());
  Values.push_back(std::numeric_limits<long double>::infinity());
  Values.push_back(std::numeric_limits<long double>::quiet_NaN());
  Values.push_back(0.0L);
  Values.push_back(-0.0L);
  return Values;
}

/// Stratified binary128 corpus through the verify domain (boundaries,
/// Schryer hard cases, seeded random strata -- specials included).
std::vector<Binary128> binary128Corpus(size_t Count, uint64_t Seed) {
  std::vector<Binary128> Values;
  for (const verify::BitPattern &Bits :
       verify::sampledDomain(verify::FloatFormat::Binary128, Count, Seed))
    Values.push_back(Binary128::fromBits(Bits.Hi, Bits.Lo));
  return Values;
}

TEST(EngineMultiFormat, Binary16ExhaustiveMatchesToShortest) {
  eng::Scratch S;
  for (uint32_t Bits = 0; Bits < (1u << 16); ++Bits) {
    Binary16 V = Binary16::fromBits(static_cast<uint16_t>(Bits));
    ASSERT_EQ(viaBoundBuffer(V, PrintOptions{}, S), toShortest(V))
        << "encoding 0x" << std::hex << Bits;
  }
  // The sweep covered finite values and specials; binary16 has no
  // certified Grisu table, but the Ryu front line certifies every
  // conversion, so nothing reaches the exact loop.
  EXPECT_GT(S.stats().Conversions, 0u);
  EXPECT_GT(S.stats().Specials, 0u);
  EXPECT_EQ(S.stats().RyuHits, S.stats().Conversions);
  EXPECT_EQ(S.stats().RyuFallbacks, 0u);
  EXPECT_EQ(S.stats().FastPathHits, 0u);
  EXPECT_EQ(S.stats().FastPathIneligibleFormat, 0u);
}

TEST(EngineMultiFormat, Binary32StratifiedMatchesToShortest) {
  std::vector<float> Values = randomNormalFloats(4000, 0xf04a0001);
  std::vector<float> Sub = randomSubnormalFloats(2000, 0xf04a0002);
  Values.insert(Values.end(), Sub.begin(), Sub.end());
  std::vector<float> Bits = randomBitsFloats(2000, 0xf04a0003);
  Values.insert(Values.end(), Bits.begin(), Bits.end());
  const float Edges[] = {
      0.0f, -0.0f, 1.0f, -1.0f, 0.1f, 0.3f,
      1e-45f,                 // Smallest subnormal.
      1.1754944e-38f,         // Smallest normal.
      3.4028235e38f,          // Largest finite.
      -3.4028235e38f,
      16777216.0f,            // 2^24.
      16777217.0f,            // 2^24 + 1 (rounds).
      std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
  };
  Values.insert(Values.end(), std::begin(Edges), std::end(Edges));
  expectMatchesToShortest(Values);
}

TEST(EngineMultiFormat, Extended80StratifiedMatchesToShortest) {
  expectMatchesToShortest(extended80Corpus(3000, 0xf04a0004));
}

TEST(EngineMultiFormat, Binary128StratifiedMatchesToShortest) {
  // binary128 digits run the wide BigInt loop end to end; a smaller corpus
  // keeps this tier-1 while still crossing every stratum.
  expectMatchesToShortest(binary128Corpus(600, 0xf04a0005));
}

TEST(EngineMultiFormat, FixedMatchesToFixedAcrossFormats) {
  eng::Scratch S;
  char Buf[512];
  for (uint32_t Bits = 0x0001; Bits < 0x7c00; Bits += 37) {
    Binary16 V = Binary16::fromBits(static_cast<uint16_t>(Bits));
    for (int Digits : {0, 2, 6}) {
      size_t Length =
          eng::formatFixed(V, Digits, Buf, sizeof(Buf), PrintOptions{}, S);
      ASSERT_LE(Length, sizeof(Buf));
      ASSERT_EQ(std::string(Buf, Length), toFixed(V, Digits))
          << "encoding 0x" << std::hex << Bits << std::dec << " digits "
          << Digits;
    }
  }
  for (float V : randomNormalFloats(400, 0xf04a0006)) {
    size_t Length =
        eng::formatFixed(V, 9, Buf, sizeof(Buf), PrintOptions{}, S);
    ASSERT_LE(Length, sizeof(Buf));
    ASSERT_EQ(std::string(Buf, Length), toFixed(V, 9)) << V;
  }
  // binary128's fixed forms run to ~4950 bytes at the top of the range
  // (unlike shortest, fixed notation has no traits bound).
  std::vector<char> BigBuf(8192);
  for (const Binary128 &V : binary128Corpus(80, 0xf04a0007)) {
    size_t Length =
        eng::formatFixed(V, 8, BigBuf.data(), BigBuf.size(), PrintOptions{}, S);
    ASSERT_LE(Length, BigBuf.size());
    ASSERT_EQ(std::string(BigBuf.data(), Length), toFixed(V, 8));
  }
}

/// The bound table itself: spot-check the static_assert values stay in
/// sync with the traits (a traits change that widens a format must widen
/// its slot).
TEST(EngineMultiFormat, BufferBoundsOrderedBySignificandWidth) {
  EXPECT_EQ(eng::maxShortestBufferSize<Binary16>(10), 23u);
  EXPECT_EQ(eng::maxShortestBufferSize<float>(10), 23u);
  EXPECT_EQ(eng::maxShortestBufferSize<double>(10), 24u);
  EXPECT_EQ(eng::maxShortestBufferSize<long double>(10), 29u);
  EXPECT_EQ(eng::maxShortestBufferSize<Binary128>(10), 44u);
  EXPECT_EQ(eng::shortestSlotSize<double>(10), 24u);
  EXPECT_EQ(eng::shortestSlotSize<Binary128>(10), 48u);
  // The length-24 witness for double: the largest finite magnitude,
  // negated, renders to exactly the bound.
  EXPECT_EQ(toShortest(-1.7976931348623157e308).size(), 24u);
}

/// Non-decimal bases keep the overflow-impossible property: render into a
/// buffer of exactly the base's bound and assert nothing truncates.
template <typename T, unsigned Base>
void checkBaseBound(const std::vector<T> &Values) {
  eng::Scratch S;
  PrintOptions Options;
  Options.Base = Base;
  if (Base > 14)
    Options.ExponentMarker = '^'; // 'e' is a hex digit.
  char Buf[eng::maxShortestBufferSize<T>(Base)];
  for (const T &V : Values) {
    size_t Length = eng::format(V, Buf, sizeof(Buf), Options, S);
    ASSERT_LE(Length, sizeof(Buf)) << "base " << Base;
  }
}

TEST(EngineMultiFormat, BufferBoundHoldsInBases2And16) {
  std::vector<double> Doubles = randomBitsDoubles(2000, 0xf04a0008);
  Doubles.push_back(-1.7976931348623157e308);
  Doubles.push_back(5e-324);
  checkBaseBound<double, 2>(Doubles);
  checkBaseBound<double, 16>(Doubles);

  std::vector<Binary16> Halves;
  for (uint32_t Bits = 0; Bits < (1u << 16); Bits += 7)
    Halves.push_back(Binary16::fromBits(static_cast<uint16_t>(Bits)));
  checkBaseBound<Binary16, 2>(Halves);
  checkBaseBound<Binary16, 16>(Halves);

  std::vector<Binary128> Quads = binary128Corpus(120, 0xf04a0009);
  checkBaseBound<Binary128, 2>(Quads);
  checkBaseBound<Binary128, 16>(Quads);
}

} // namespace
