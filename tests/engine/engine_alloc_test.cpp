//===- tests/engine/engine_alloc_test.cpp - Zero-allocation guarantee -------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The tentpole guarantee of the engine: after a warm-up pass, conversions
// through a Scratch perform zero heap allocations -- including on the slow
// (exact BigInt) path, where every limb comes from the Scratch's arena.
// This test lives in its own binary because it replaces the global
// operator new with a counting version; the count is measured as a delta
// around the warmed-up loop, so gtest's own allocations don't interfere.
//
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

namespace {
std::atomic<uint64_t> GlobalNewCount{0};
} // namespace

void *operator new(size_t Size) {
  GlobalNewCount.fetch_add(1, std::memory_order_relaxed);
  if (void *Ptr = std::malloc(Size ? Size : 1))
    return Ptr;
  throw std::bad_alloc();
}

void operator delete(void *Ptr) noexcept { std::free(Ptr); }
void operator delete(void *Ptr, size_t) noexcept { std::free(Ptr); }

using namespace dragon4;
namespace eng = dragon4::engine;

namespace {

/// Corpus reused verbatim for warm-up and measurement, so every power of
/// ten, arena block, and digit capacity the measured pass needs is already
/// in place.
std::vector<double> allocCorpus() {
  std::vector<double> Values = randomBitsDoubles(384, 0xa110c001);
  std::vector<double> Sub = randomSubnormalDoubles(128, 0xa110c002);
  Values.insert(Values.end(), Sub.begin(), Sub.end());
  return Values;
}

TEST(EngineAlloc, WarmShortestConversionsAllocateNothing) {
  eng::Scratch S;
  std::vector<double> Values = allocCorpus();
  char Buf[64];
  // Default options ride the Ryu front line; the asymmetric LowInclusive
  // reader model bypasses both fast rungs, so the exact BigInt path is
  // held to the same zero-allocation bar.
  PrintOptions ExactOnly;
  ExactOnly.Boundaries = BoundaryMode::LowInclusive;

  // Warm-up: first pass fills the per-thread power caches, the arena's
  // block, and the reusable digit buffers.
  for (double V : Values) {
    eng::format(V, Buf, sizeof(Buf), PrintOptions{}, S);
    eng::format(V, Buf, sizeof(Buf), ExactOnly, S);
  }

  // Every subsequent pass over the same values must be allocation-free:
  // no global new, no BigInt limbs from the heap.
  for (int Round = 0; Round < 2; ++Round) {
    uint64_t NewBefore = GlobalNewCount.load(std::memory_order_relaxed);
    uint64_t LimbHeapBefore = limbHeapAllocCount();
    for (double V : Values) {
      eng::format(V, Buf, sizeof(Buf), PrintOptions{}, S);
      eng::format(V, Buf, sizeof(Buf), ExactOnly, S);
    }
    EXPECT_EQ(GlobalNewCount.load(std::memory_order_relaxed) - NewBefore, 0u)
        << "round " << Round;
    EXPECT_EQ(limbHeapAllocCount() - LimbHeapBefore, 0u) << "round " << Round;
  }

  // The guarantee is only meaningful if both ends of the ladder actually
  // ran: Ryu for the default pass, the exact BigInt path for the
  // LowInclusive pass.
  EXPECT_GT(S.stats().RyuHits, 0u);
  EXPECT_GT(S.stats().slowPathRuns(), 0u);
  EXPECT_GT(S.stats().ArenaHighWaterBytes, 0u);
}

/// The per-instantiation guarantee: warm conversions of ANY supported
/// format allocate nothing.  One helper, five formats -- the same template
/// the engine itself is built from.
template <typename T>
void checkWarmZeroAlloc(const std::vector<T> &Values) {
  eng::Scratch S;
  char Buf[64];
  for (const T &V : Values)
    eng::format(V, Buf, sizeof(Buf), PrintOptions{}, S);

  uint64_t NewBefore = GlobalNewCount.load(std::memory_order_relaxed);
  uint64_t LimbHeapBefore = limbHeapAllocCount();
  for (const T &V : Values)
    eng::format(V, Buf, sizeof(Buf), PrintOptions{}, S);
  EXPECT_EQ(GlobalNewCount.load(std::memory_order_relaxed) - NewBefore, 0u);
  EXPECT_EQ(limbHeapAllocCount() - LimbHeapBefore, 0u);
  EXPECT_GT(S.stats().Conversions, 0u);
}

TEST(EngineAlloc, WarmFloatConversionsAllocateNothing) {
  std::vector<float> Values = randomBitsFloats(384, 0xa110c011);
  std::vector<float> Sub = randomSubnormalFloats(128, 0xa110c012);
  Values.insert(Values.end(), Sub.begin(), Sub.end());
  checkWarmZeroAlloc(Values);
}

TEST(EngineAlloc, WarmHalfConversionsAllocateNothing) {
  std::vector<Binary16> Values;
  for (uint32_t Bits = 1; Bits < 0x7c00; Bits += 61)
    Values.push_back(Binary16::fromBits(static_cast<uint16_t>(Bits)));
  checkWarmZeroAlloc(Values);
}

TEST(EngineAlloc, WarmExtended80ConversionsAllocateNothing) {
  SplitMix64 Rng(0xa110c013);
  std::vector<long double> Values;
  for (int I = 0; I < 384; ++I) {
    uint64_t F = Rng.next() | (uint64_t(1) << 63);
    int E = static_cast<int>(Rng.below(8000)) - 4000;
    Values.push_back(std::ldexp(static_cast<long double>(F), E - 63));
  }
  checkWarmZeroAlloc(Values);
}

TEST(EngineAlloc, WarmBinary128ConversionsAllocateNothing) {
  // Wide-mantissa decomposition happens inside the conversion scope, so
  // even the 113-bit significand's limbs are arena-backed.
  SplitMix64 Rng(0xa110c014);
  std::vector<Binary128> Values;
  for (int I = 0; I < 128; ++I) {
    uint64_t Hi = (Rng.next() & 0x0000FFFFFFFFFFFFull) |
                  ((1 + Rng.below(0x7FFD)) << 48);
    Values.push_back(Binary128::fromBits(Hi, Rng.next()));
  }
  checkWarmZeroAlloc(Values);
}

TEST(EngineAlloc, ForcedSlowPathAllocatesNothingWhenWarm) {
  eng::Scratch S;
  std::vector<double> Values = allocCorpus();
  char Buf[64];
  // Conservative boundaries with base 16 never touch the fast path.
  PrintOptions Options;
  Options.Base = 16;
  Options.ExponentMarker = '^';

  for (double V : Values)
    eng::format(V, Buf, sizeof(Buf), Options, S);
  ASSERT_EQ(S.stats().FastPathHits, 0u);
  ASSERT_EQ(S.stats().SlowPathDirect, S.stats().Conversions);

  uint64_t NewBefore = GlobalNewCount.load(std::memory_order_relaxed);
  uint64_t LimbHeapBefore = limbHeapAllocCount();
  for (double V : Values)
    eng::format(V, Buf, sizeof(Buf), Options, S);
  EXPECT_EQ(GlobalNewCount.load(std::memory_order_relaxed) - NewBefore, 0u);
  EXPECT_EQ(limbHeapAllocCount() - LimbHeapBefore, 0u);
}

TEST(EngineAlloc, FixedPathKeepsLimbsOnArenaWhenWarm) {
  eng::Scratch S;
  std::vector<double> Values = randomNormalDoubles(256, 0xa110c003);
  char Buf[512];

  for (double V : Values)
    eng::formatFixed(V, 17, Buf, sizeof(Buf), PrintOptions{}, S);

  // The positional result lives in the Scratch (capacity recycled) and
  // the limbs on the arena, so warm fixed conversions are allocation-free
  // end to end, exactly like the shortest path.
  uint64_t NewBefore = GlobalNewCount.load(std::memory_order_relaxed);
  uint64_t LimbHeapBefore = limbHeapAllocCount();
  for (double V : Values)
    eng::formatFixed(V, 17, Buf, sizeof(Buf), PrintOptions{}, S);
  EXPECT_EQ(GlobalNewCount.load(std::memory_order_relaxed) - NewBefore, 0u);
  EXPECT_EQ(limbHeapAllocCount() - LimbHeapBefore, 0u);
}

TEST(EngineAlloc, AbiToCharsAllocatesNothingWhenWarm) {
  // The C ABI's promise: after the thread-local scratch warms up, every
  // entry point is allocation-free -- shortest, fixed, both scratch
  // flavours, across formats and the exact-only option set.
  std::vector<double> Values = allocCorpus();
  char Buf[512];
  size_t Len = 0;
  dragon4_options ExactOnly = DRAGON4_OPTIONS_INIT;
  ExactOnly.boundaries = DRAGON4_BOUNDARIES_LOW_INCLUSIVE;

  auto RunAll = [&] {
    for (double V : Values) {
      uint64_t Lo = 0, Hi = 0;
      FormatTraits<double>::encodingBits(V, Lo, Hi);
      ASSERT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, nullptr,
                                 Buf, sizeof(Buf), &Len),
                DRAGON4_OK);
      ASSERT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, &ExactOnly,
                                 Buf, sizeof(Buf), &Len),
                DRAGON4_OK);
      ASSERT_EQ(dragon4_to_chars_fixed(DRAGON4_FORMAT_BINARY64, Lo, Hi, 17,
                                       nullptr, Buf, sizeof(Buf), &Len),
                DRAGON4_OK);
    }
    // The undersized path must be allocation-free too: ERR_SIZE comes
    // from the sink's counting, not from staging the output anywhere.
    uint64_t Lo = 0, Hi = 0;
    FormatTraits<double>::encodingBits(Values[0], Lo, Hi);
    dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, nullptr, Buf, 1, &Len);
  };

  RunAll(); // Warm-up: thread-local scratch caches and arena blocks.
  uint64_t NewBefore = GlobalNewCount.load(std::memory_order_relaxed);
  uint64_t LimbHeapBefore = limbHeapAllocCount();
  RunAll();
  EXPECT_EQ(GlobalNewCount.load(std::memory_order_relaxed) - NewBefore, 0u);
  EXPECT_EQ(limbHeapAllocCount() - LimbHeapBefore, 0u);
}

TEST(EngineAlloc, AbiCallerScratchAllocatesNothingWhenWarm) {
  dragon4_scratch *Scratch = dragon4_scratch_create();
  ASSERT_NE(Scratch, nullptr);
  std::vector<double> Values = allocCorpus();
  char Buf[64];
  size_t Len = 0;

  auto RunAll = [&] {
    for (double V : Values) {
      uint64_t Lo = 0, Hi = 0;
      FormatTraits<double>::encodingBits(V, Lo, Hi);
      ASSERT_EQ(dragon4_to_chars_scratch(Scratch, DRAGON4_FORMAT_BINARY64,
                                         Lo, Hi, nullptr, Buf, sizeof(Buf),
                                         &Len),
                DRAGON4_OK);
    }
  };
  RunAll();
  uint64_t NewBefore = GlobalNewCount.load(std::memory_order_relaxed);
  uint64_t LimbHeapBefore = limbHeapAllocCount();
  RunAll();
  EXPECT_EQ(GlobalNewCount.load(std::memory_order_relaxed) - NewBefore, 0u);
  EXPECT_EQ(limbHeapAllocCount() - LimbHeapBefore, 0u);
  dragon4_scratch_destroy(Scratch);
}

TEST(EngineAlloc, AbiFromCharsFastPathAllocatesNothing) {
  // The decisive Eisel-Lemire path: short shortest-form literals are
  // always decidable, so parsing them back must allocate nothing.  (The
  // documented exception -- the truncated-literal residue -- goes
  // through the exact reader and may allocate.)
  std::vector<std::string> Texts;
  for (double V : allocCorpus())
    if (V == V) // NaN text parses but its payload is not interesting here.
      Texts.push_back(toShortest(V));
  uint64_t Lo = 0, Hi = 0;
  size_t Consumed = 0;

  for (const std::string &T : Texts) // Warm-up (none expected, but fair).
    dragon4_from_chars(DRAGON4_FORMAT_BINARY64, T.data(), T.size(), &Lo, &Hi,
                       &Consumed);
  uint64_t NewBefore = GlobalNewCount.load(std::memory_order_relaxed);
  uint64_t LimbHeapBefore = limbHeapAllocCount();
  for (const std::string &T : Texts)
    ASSERT_EQ(dragon4_from_chars(DRAGON4_FORMAT_BINARY64, T.data(), T.size(),
                                 &Lo, &Hi, &Consumed),
              DRAGON4_OK);
  EXPECT_EQ(GlobalNewCount.load(std::memory_order_relaxed) - NewBefore, 0u);
  EXPECT_EQ(limbHeapAllocCount() - LimbHeapBefore, 0u);
}

TEST(EngineAlloc, RecordStreamAllocatesNothingWhenWarm) {
  // The StreamSink surface: after one pass (byte-store capacity and
  // scratch both warm), clear() + re-push of the same records must be
  // allocation-free.
  eng::Scratch S;
  eng::RecordStream Stream(S);
  std::vector<double> Values = allocCorpus();

  for (double V : Values)
    Stream.push(V);
  for (int Round = 0; Round < 2; ++Round) {
    uint64_t NewBefore = GlobalNewCount.load(std::memory_order_relaxed);
    uint64_t LimbHeapBefore = limbHeapAllocCount();
    Stream.clear();
    for (double V : Values)
      Stream.push(V);
    EXPECT_EQ(GlobalNewCount.load(std::memory_order_relaxed) - NewBefore, 0u)
        << "round " << Round;
    EXPECT_EQ(limbHeapAllocCount() - LimbHeapBefore, 0u)
        << "round " << Round;
  }
  EXPECT_EQ(Stream.records(), Values.size());
}

TEST(EngineAlloc, BoundedSinksThemselvesNeverAllocate) {
  // BufferSink and CountingSink are the engine's bounded instantiations;
  // driving them directly (no conversion, pure sink traffic) must not
  // touch the heap even cold.
  uint64_t NewBefore = GlobalNewCount.load(std::memory_order_relaxed);
  char Buf[16];
  BufferSink Bounded(Buf, sizeof(Buf));
  CountingSink Counter;
  for (int I = 0; I < 1000; ++I) {
    Bounded.put('x');
    Bounded.fill(3, '0');
    Bounded.literal("e+308");
    Counter.put('x');
    Counter.fill(3, '0');
    Counter.literal("e+308");
  }
  EXPECT_TRUE(Bounded.overflowed());
  EXPECT_EQ(Bounded.required(), Counter.written());
  EXPECT_EQ(GlobalNewCount.load(std::memory_order_relaxed) - NewBefore, 0u);
}

TEST(EngineAlloc, ArenaHighWaterIsBounded) {
  eng::Scratch S;
  char Buf[64];
  for (double V : allocCorpus())
    eng::format(V, Buf, sizeof(Buf), PrintOptions{}, S);
  S.syncArenaStats();
  // A double conversion's whole BigInt state fits comfortably in the
  // default first block; growth would show up as extra block allocations.
  EXPECT_LE(S.stats().ArenaHighWaterBytes, uint64_t(1) << 16);
  EXPECT_LE(S.stats().ArenaBlockAllocs, 1u);
}

} // namespace
