//===- tests/engine/engine_format_test.cpp - Buffer API equivalence ---------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The engine's char-buffer API must be byte-identical to the std::string
// convenience API for every input: same digits, same notation choice, same
// special-value spellings.  These tests sweep pseudo-random corpora
// (normals, subnormals, raw-bit finites) plus hand-picked edge values, and
// pin down the snprintf-like truncation contract.
//
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

using namespace dragon4;
namespace eng = dragon4::engine;

namespace {

/// Mixed corpus: uniform normals, subnormals, raw-bit finites, and the
/// classic edge values (10k values total, deterministic).
std::vector<double> corpus() {
  std::vector<double> Values = randomNormalDoubles(4000, 0xd1a60401);
  std::vector<double> Sub = randomSubnormalDoubles(3000, 0xd1a60402);
  Values.insert(Values.end(), Sub.begin(), Sub.end());
  std::vector<double> Bits = randomBitsDoubles(2960, 0xd1a60403);
  Values.insert(Values.end(), Bits.begin(), Bits.end());
  const double Edges[] = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      0.5,
      0.1,
      0.3,
      2.0 / 3.0,
      1e22,
      1e23,
      -1e23,
      123456.789,
      5e-324,                                  // Smallest subnormal.
      2.2250738585072014e-308,                 // Smallest normal.
      4.9406564584124654e-324,
      1.7976931348623157e308,                  // Largest finite.
      -1.7976931348623157e308,
      9007199254740992.0,                      // 2^53.
      9007199254740993.0,                      // 2^53 + 1 (rounds).
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
  };
  Values.insert(Values.end(), std::begin(Edges), std::end(Edges));
  return Values;
}

std::string viaBuffer(double Value, const PrintOptions &Options,
                      eng::Scratch &S) {
  char Buf[160];
  size_t Length = eng::format(Value, Buf, sizeof(Buf), Options, S);
  EXPECT_LE(Length, sizeof(Buf));
  return std::string(Buf, Length);
}

TEST(EngineFormat, MatchesToShortestDefaultOptions) {
  eng::Scratch S;
  for (double V : corpus())
    EXPECT_EQ(viaBuffer(V, PrintOptions{}, S), toShortest(V)) << V;
}

TEST(EngineFormat, MatchesToShortestAcrossOptionVariants) {
  eng::Scratch S;
  std::vector<double> Values = randomBitsDoubles(1500, 0xd1a60404);
  Values.push_back(0.1);
  Values.push_back(-6.0);
  for (unsigned Base : {2u, 10u, 16u}) {
    for (BoundaryMode Boundaries :
         {BoundaryMode::NearestEven, BoundaryMode::Conservative}) {
      PrintOptions Options;
      Options.Base = Base;
      Options.Boundaries = Boundaries;
      if (Base > 14)
        Options.ExponentMarker = '^'; // 'e' is a hex digit.
      for (double V : Values)
        EXPECT_EQ(viaBuffer(V, Options, S), toShortest(V, Options))
            << V << " base " << Base;
    }
  }
}

TEST(EngineFormat, MatchesToFixed) {
  eng::Scratch S;
  std::vector<double> Values = randomNormalDoubles(1200, 0xd1a60405);
  std::vector<double> Sub = randomSubnormalDoubles(600, 0xd1a60406);
  Values.insert(Values.end(), Sub.begin(), Sub.end());
  Values.push_back(0.0);
  Values.push_back(-0.0);
  Values.push_back(1.0 / 3.0);
  Values.push_back(1e300);
  Values.push_back(std::numeric_limits<double>::infinity());
  Values.push_back(std::numeric_limits<double>::quiet_NaN());
  char Buf[512]; // 1e308 spans ~309 integer digits.
  for (int FractionDigits : {0, 1, 5, 17}) {
    for (double V : Values) {
      size_t Length =
          eng::formatFixed(V, FractionDigits, Buf, sizeof(Buf),
                           PrintOptions{}, S);
      ASSERT_LE(Length, sizeof(Buf));
      EXPECT_EQ(std::string(Buf, Length), toFixed(V, FractionDigits))
          << V << " digits " << FractionDigits;
    }
  }
}

TEST(EngineFormat, TruncationReturnsFullLengthAndExactPrefix) {
  eng::Scratch S;
  const double Values[] = {0.1, -123456.789, 5e-324, 1e23,
                           std::numeric_limits<double>::quiet_NaN()};
  for (double V : Values) {
    char Full[160];
    size_t Length = eng::format(V, Full, sizeof(Full), PrintOptions{}, S);
    ASSERT_LE(Length, sizeof(Full));
    for (size_t Cap : {size_t(0), size_t(1), Length - 1, Length}) {
      char Small[160];
      std::memset(Small, 0x7f, sizeof(Small));
      size_t Reported = eng::format(V, Small, Cap, PrintOptions{}, S);
      EXPECT_EQ(Reported, Length) << V << " cap " << Cap;
      EXPECT_EQ(std::memcmp(Small, Full, std::min(Cap, Length)), 0)
          << V << " cap " << Cap;
      // Bytes past the capacity must be untouched.
      for (size_t I = Cap; I < sizeof(Small); ++I)
        ASSERT_EQ(Small[I], 0x7f) << V << " cap " << Cap << " byte " << I;
    }
  }
}

TEST(EngineFormat, NullBufferWithZeroCapacityMeasuresLength) {
  eng::Scratch S;
  size_t Length = eng::format(0.1, nullptr, 0, PrintOptions{}, S);
  EXPECT_EQ(Length, std::string("0.1").size());
}

TEST(EngineFormat, StatsAccounting) {
  eng::Scratch S;
  char Buf[64];
  eng::format(std::numeric_limits<double>::quiet_NaN(), Buf, sizeof(Buf),
              PrintOptions{}, S);
  eng::format(std::numeric_limits<double>::infinity(), Buf, sizeof(Buf),
              PrintOptions{}, S);
  eng::format(-0.0, Buf, sizeof(Buf), PrintOptions{}, S);
  std::vector<double> Values = randomBitsDoubles(500, 0xd1a60407);
  for (double V : Values)
    eng::format(V, Buf, sizeof(Buf), PrintOptions{}, S);
  // The asymmetric LowInclusive reader model bypasses both fast rungs
  // (Ryu needs symmetric bounds, Grisu needs Conservative/NearestEven),
  // so a second pass populates the exact-path side of the accounting.
  PrintOptions ExactOnly;
  ExactOnly.Boundaries = BoundaryMode::LowInclusive;
  for (double V : Values)
    eng::format(V, Buf, sizeof(Buf), ExactOnly, S);

  const eng::EngineStats &Stats = S.stats();
  EXPECT_EQ(Stats.Specials, 3u);
  EXPECT_EQ(Stats.Conversions, 2 * Values.size());
  EXPECT_EQ(Stats.RyuHits + Stats.FastPathHits + Stats.slowPathRuns(),
            2 * Values.size());
  // Default options all land on the Ryu front line (it certifies every
  // binary64 conversion); the LowInclusive pass all lands on the exact
  // loop, so both sides of the split must be fully populated.
  EXPECT_EQ(Stats.RyuHits, Values.size());
  EXPECT_EQ(Stats.RyuFallbacks, 0u);
  EXPECT_EQ(Stats.SlowPathDirect, Values.size());

  // The histogram covers exactly the slow-path runs.
  uint64_t HistogramTotal = 0;
  for (uint64_t Bucket : Stats.SlowDigitLength)
    HistogramTotal += Bucket;
  EXPECT_EQ(HistogramTotal, Stats.slowPathRuns());

  // Truncation is counted (and only then).
  EXPECT_EQ(Stats.Truncated, 0u);
  eng::format(123456.789, Buf, 3, PrintOptions{}, S);
  EXPECT_EQ(S.stats().Truncated, 1u);

  // takeStats drains.
  eng::EngineStats Taken = S.takeStats();
  EXPECT_EQ(Taken.Specials, 3u);
  EXPECT_EQ(S.stats().Conversions, 0u);
  EXPECT_GT(Taken.ArenaHighWaterBytes, 0u);
}

} // namespace
