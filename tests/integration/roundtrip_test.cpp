//===- tests/integration/roundtrip_test.cpp ------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The information-preservation contract, end to end: the shortest output
/// of the printer, fed through the correctly rounded reader, must return
/// the identical floating-point value -- for every format, base, and
/// matching reader rounding mode.  This is output condition (1) of the
/// paper, verified by running real input code rather than by re-deriving
/// inequalities.
///
//===----------------------------------------------------------------------===//

#include "core/free_format.h"
#include "format/dtoa.h"
#include "format/render.h"
#include "fp/binary16.h"
#include "reader/reader.h"
#include "testgen/random_floats.h"
#include "testgen/schryer.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

/// Prints V's digits in base Base and reads them back with the given mode.
template <typename T>
T printAndRead(T Value, unsigned Base, BoundaryMode Boundaries,
               ReadRounding Mode) {
  FreeFormatOptions Options;
  Options.Base = Base;
  Options.Boundaries = Boundaries;
  DigitString D = shortestDigits(Value, Options);
  RenderOptions Render;
  Render.Base = Base;
  Render.ExponentMarker = '^';
  std::string Text = renderScientific(D, /*Negative=*/false, Render);
  auto Back = readFloat<T>(Text, Base, Mode);
  EXPECT_TRUE(Back.has_value()) << Text;
  return *Back;
}

class RoundTripBaseTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RoundTripBaseTest, RandomDoublesNearestEven) {
  unsigned Base = GetParam();
  for (double V : randomNormalDoubles(300, Base * 31 + 1)) {
    EXPECT_EQ(printAndRead(V, Base, BoundaryMode::NearestEven,
                           ReadRounding::NearestEven),
              V);
  }
  for (double V : randomSubnormalDoubles(60, Base * 31 + 2)) {
    EXPECT_EQ(printAndRead(V, Base, BoundaryMode::NearestEven,
                           ReadRounding::NearestEven),
              V);
  }
}

TEST_P(RoundTripBaseTest, ConservativeOutputSurvivesAnyNearestReader) {
  // With Conservative boundaries the output must read back exactly under
  // *any nearest-type* rounding, whatever its boundary policy -- that is
  // the whole point of the flag.  (Directed modes are out of scope: any
  // value strictly between v- and v truncates to v-, so no finite string
  // can round-trip under truncation unless v is decimal-exact.)
  unsigned Base = GetParam();
  for (double V : randomNormalDoubles(80, Base * 77 + 5)) {
    for (ReadRounding Mode :
         {ReadRounding::NearestEven, ReadRounding::NearestAway}) {
      EXPECT_EQ(printAndRead(V, Base, BoundaryMode::Conservative, Mode), V)
          << "base " << Base;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, RoundTripBaseTest,
                         ::testing::Values(2u, 3u, 10u, 16u, 36u));

TEST(RoundTrip, SchryerSample) {
  // A slice of the paper's workload, end to end in base 10.
  SchryerParams Params;
  Params.ExponentStride = 97;
  std::vector<double> Values = schryerDoubles(Params);
  size_t Step = Values.size() / 4000 + 1;
  for (size_t I = 0; I < Values.size(); I += Step) {
    double V = Values[I];
    std::string Text = toShortest(V);
    ASSERT_EQ(*readFloat<double>(Text), V) << Text;
  }
}

TEST(RoundTrip, AllBinary16ValuesAllBases) {
  // The whole half-precision format is small enough to sweep exhaustively,
  // in several bases.
  for (unsigned Base : {2u, 10u, 36u}) {
    for (uint32_t Bits = 1; Bits < 0x7C00; ++Bits) {
      Binary16 H = Binary16::fromBits(static_cast<uint16_t>(Bits));
      Binary16 Back = printAndRead(H, Base, BoundaryMode::NearestEven,
                                   ReadRounding::NearestEven);
      ASSERT_EQ(Back.bits(), Bits) << "base " << Base << " bits " << Bits;
    }
  }
}

TEST(RoundTrip, AllFloatExponentsSampledMantissas) {
  // Every float binade, a few mantissas each.
  SplitMix64 Rng(321);
  for (uint32_t Biased = 1; Biased <= 254; ++Biased) {
    for (int I = 0; I < 8; ++I) {
      uint32_t Mantissa = static_cast<uint32_t>(Rng.next()) & 0x7FFFFFu;
      float V = IeeeTraits<float>::fromBits((Biased << 23) | Mantissa);
      std::string Text = toShortest(V);
      ASSERT_EQ(*readFloat<float>(Text), V) << Text;
    }
  }
}

TEST(RoundTrip, HardcodedClassics) {
  for (double V :
       {0.1, 0.2, 0.3, 1.0 / 3.0, 2.0 / 3.0, 1e23, 5e-324, 1e308,
        2.2250738585072014e-308, 9007199254740993.0, 123456.789e-300,
        3.141592653589793, 2.718281828459045}) {
    std::string Text = toShortest(V);
    EXPECT_EQ(*readFloat<double>(Text), V) << Text;
  }
}

TEST(RoundTrip, NegativeValuesThroughTheConvenienceApi) {
  for (double V : randomNormalDoubles(100, 606)) {
    double Neg = -V;
    std::string Text = toShortest(Neg);
    EXPECT_EQ(*readFloat<double>(Text), Neg) << Text;
  }
}

} // namespace
