//===- tests/integration/property_sweep_test.cpp --------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Additional cross-layer property sweeps: BigInt's double conversion
/// against the reader and glibc, the reader across every rounding mode and
/// base on structured literals, and the float-format fixed conversion
/// against the rational oracle at a grid of positions.
///
//===----------------------------------------------------------------------===//

#include "bigint/bigint.h"
#include "core/fixed_format.h"
#include "core/reference.h"
#include "reader/reader.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

using namespace dragon4;

namespace {

TEST(BigIntDouble, ToDoubleMatchesStrtodOfToString) {
  // Two independent correctly rounded integer->double paths must agree:
  // BigInt::toDouble (binary truncation + explicit round) and glibc's
  // strtod over the decimal rendering.
  SplitMix64 Rng(0xB16D);
  for (int I = 0; I < 400; ++I) {
    BigInt V(Rng.next());
    V <<= Rng.below(900);
    V += BigInt(Rng.next());
    if (Rng.below(2))
      V.negate();
    double Mine = V.toDouble();
    double Theirs = std::strtod(V.toString().c_str(), nullptr);
    EXPECT_EQ(Mine, Theirs) << V.toString();
  }
}

TEST(BigIntDouble, ToDoubleMatchesReader) {
  SplitMix64 Rng(0xB16E);
  for (int I = 0; I < 200; ++I) {
    BigInt V(Rng.next());
    V <<= Rng.below(400);
    EXPECT_EQ(V.toDouble(), *readFloat<double>(V.toString())) << V.toString();
  }
}

TEST(BigIntDouble, OverflowSaturatesToInfinity) {
  BigInt Huge = BigInt(uint64_t(1)) << 2000;
  EXPECT_TRUE(std::isinf(Huge.toDouble()));
  Huge.negate();
  EXPECT_TRUE(std::isinf(Huge.toDouble()));
  EXPECT_TRUE(std::signbit(Huge.toDouble()));
}

class ReaderModeBaseTest
    : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

ReadRounding modeOf(int Index) {
  switch (Index) {
  case 0:
    return ReadRounding::NearestEven;
  case 1:
    return ReadRounding::NearestAway;
  case 2:
    return ReadRounding::TowardZero;
  case 3:
    return ReadRounding::TowardPositive;
  default:
    return ReadRounding::TowardNegative;
  }
}

TEST_P(ReaderModeBaseTest, OrderingAndExactnessInvariants) {
  auto [Base, ModeIndex] = GetParam();
  ReadRounding Mode = modeOf(ModeIndex);
  SplitMix64 Rng(Base * 37 + static_cast<unsigned>(ModeIndex));

  for (int I = 0; I < 120; ++I) {
    // A random digit string in the base, with a random small exponent.
    std::string Literal;
    int Digits = 1 + static_cast<int>(Rng.below(20));
    static const char Alphabet[] = "0123456789abcdefghijklmnopqrstuvwxyz";
    for (int J = 0; J < Digits; ++J)
      Literal.push_back(Alphabet[Rng.below(Base)]);
    Literal += "^";
    Literal += std::to_string(static_cast<int>(Rng.below(60)) - 30);

    auto Value = readFloat<double>(Literal, Base, Mode);
    ASSERT_TRUE(Value.has_value()) << Literal;
    if (!std::isfinite(*Value))
      continue;

    // Monotonicity: the directed modes bracket the nearest modes.
    double Down = *readFloat<double>(Literal, Base,
                                     ReadRounding::TowardNegative);
    double Up =
        *readFloat<double>(Literal, Base, ReadRounding::TowardPositive);
    EXPECT_LE(Down, *Value) << Literal;
    EXPECT_LE(*Value, Up) << Literal;

    // Exactness: appending a zero digit (value * base) scales exactly
    // when no overflow interferes.
    if (std::fabs(*Value) < 1e300 && std::fabs(*Value) > 1e-300) {
      std::string Shifted = Literal;
      size_t Caret = Shifted.find('^');
      int Exp = std::atoi(Shifted.c_str() + Caret + 1);
      Shifted = Shifted.substr(0, Caret) + "^" + std::to_string(Exp + 1);
      double Scaled = *readFloat<double>(Shifted, Base, Mode);
      // value * base, computed in binary, is exact for base 2 only;
      // for other bases compare against reading with the exponent bumped,
      // which must be >= (or <= for negatives) by monotonicity.
      if (Base == 2)
        EXPECT_EQ(Scaled, *Value * 2) << Literal;
      else
        EXPECT_GE(Scaled, *Value) << Literal;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndBases, ReaderModeBaseTest,
    ::testing::Combine(::testing::Values(2u, 10u, 16u, 36u),
                       ::testing::Values(0, 1, 2, 3, 4)));

TEST(FloatFixedOracle, GridOfPositionsMatchesReference) {
  // The fixed-format oracle at float precision (p = 24): cheap rationals,
  // a meaningful grid of positions, both tie rules.
  SplitMix64 Rng(0xF10A);
  FixedFormatOptions Options;
  for (int I = 0; I < 30; ++I) {
    float V = randomNormalFloats(1, Rng.next())[0];
    Decomposed D = decompose(V);
    for (int J : {-20, -10, -5, -1, 0, 3}) {
      for (TieBreak Ties : {TieBreak::RoundUp, TieBreak::RoundEven}) {
        Options.Ties = Ties;
        DigitString Fast = fixedFormatAbsolute(D.F, D.E, 24, -149, J, Options);
        DigitString Slow = referenceFixedFormat(
            D.F, D.E, 24, -149, 10,
            BoundaryFlags::resolve(Options.Boundaries, D.F), Ties, J);
        ASSERT_EQ(Fast, Slow) << V << " J=" << J;
      }
    }
  }
}

TEST(FloatFixedOracle, SubnormalFloatsAtCoarsePositions) {
  FixedFormatOptions Options;
  for (uint32_t Mantissa : {1u, 2u, 3u, 0x7Fu, 0x7FFFFFu}) {
    float V = IeeeTraits<float>::fromBits(Mantissa);
    Decomposed D = decompose(V);
    for (int J : {-50, -45, -40, 0}) {
      DigitString Fast = fixedFormatAbsolute(D.F, D.E, 24, -149, J, Options);
      DigitString Slow = referenceFixedFormat(
          D.F, D.E, 24, -149, 10,
          BoundaryFlags::resolve(Options.Boundaries, D.F), Options.Ties, J);
      ASSERT_EQ(Fast, Slow) << V << " J=" << J;
    }
  }
}

} // namespace
