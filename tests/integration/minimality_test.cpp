//===- tests/integration/minimality_test.cpp -----------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Output condition "shortest" (Theorem 5): no digit string one shorter
/// than the free-format output reads back as the same value.  Verified by
/// actually constructing the two candidate (n-1)-digit neighbours and
/// running them through the reader.
///
//===----------------------------------------------------------------------===//

#include "core/free_format.h"
#include "format/render.h"
#include "reader/reader.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

/// Renders Digits (a plain digit vector) at scale K in base Base as
/// scientific text the reader accepts.
std::string digitsToText(const std::vector<uint8_t> &Digits, int K,
                         unsigned Base) {
  DigitString D;
  D.Digits = Digits;
  D.K = K;
  RenderOptions Render;
  Render.Base = Base;
  Render.ExponentMarker = '^';
  return renderScientific(D, false, Render);
}

/// True if Text reads back (nearest-even) as exactly Value.
bool readsBackTo(const std::string &Text, double Value, unsigned Base) {
  auto Back = readFloat<double>(Text, Base, ReadRounding::NearestEven);
  return Back.has_value() && *Back == Value;
}

/// Checks that no (n-1)-digit string reads back to Value.  The only two
/// candidates are the truncated prefix and the truncated prefix plus one
/// (with carry); anything else is farther away.
void expectMinimal(double Value, unsigned Base) {
  FreeFormatOptions Options;
  Options.Base = Base;
  DigitString D = shortestDigits(Value, Options);
  ASSERT_FALSE(D.Digits.empty());

  // First: the output itself must read back (sanity, condition (1)).
  EXPECT_TRUE(readsBackTo(digitsToText(D.Digits, D.K, Base), Value, Base));

  if (D.Digits.size() == 1)
    return; // A one-digit output is trivially minimal (reader rejects "").

  std::vector<uint8_t> Truncated(D.Digits.begin(), D.Digits.end() - 1);
  EXPECT_FALSE(readsBackTo(digitsToText(Truncated, D.K, Base), Value, Base))
      << "truncation of " << digitsToText(D.Digits, D.K, Base)
      << " still reads back";

  // Truncated + 1 (propagate carry; a full carry becomes 1 with K+1).
  std::vector<uint8_t> Bumped = Truncated;
  int I = static_cast<int>(Bumped.size()) - 1;
  for (; I >= 0; --I) {
    if (Bumped[static_cast<size_t>(I)] + 1u < Base) {
      ++Bumped[static_cast<size_t>(I)];
      break;
    }
    Bumped[static_cast<size_t>(I)] = 0;
  }
  int BumpedK = D.K;
  if (I < 0) {
    Bumped.assign(1, 1);
    ++BumpedK;
  }
  EXPECT_FALSE(readsBackTo(digitsToText(Bumped, BumpedK, Base), Value, Base))
      << "increment of truncated " << digitsToText(D.Digits, D.K, Base)
      << " still reads back";
}

class MinimalityBaseTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MinimalityBaseTest, RandomDoubles) {
  unsigned Base = GetParam();
  for (double V : randomNormalDoubles(250, Base * 17 + 3))
    expectMinimal(V, Base);
  for (double V : randomSubnormalDoubles(50, Base * 17 + 4))
    expectMinimal(V, Base);
}

INSTANTIATE_TEST_SUITE_P(Bases, MinimalityBaseTest,
                         ::testing::Values(2u, 10u, 16u));

TEST(Minimality, HardcodedShortCases) {
  for (double V : {0.1, 0.3, 1e22, 1e23, 5e-324, 1.5, 0.125})
    expectMinimal(V, 10);
}

TEST(Minimality, AverageDigitCountIsWellBelowSeventeen) {
  // The paper reports 15.2 average digits on its exact Schryer vector; on
  // uniform-mantissa doubles (and on our Schryer substitution) the mean is
  // ~16.4 -- in both cases meaningfully below the 17 the straightforward
  // fixed printer always emits, which is the property Table 3 leans on.
  // EXPERIMENTS.md records the 15.2-vs-16.4 delta.
  double Sum = 0;
  int Count = 0;
  for (double V : randomNormalDoubles(4000, 15151)) {
    Sum += static_cast<double>(shortestDigits(V).Digits.size());
    ++Count;
  }
  double Mean = Sum / Count;
  EXPECT_GT(Mean, 15.5);
  EXPECT_LT(Mean, 16.9);
}

} // namespace
