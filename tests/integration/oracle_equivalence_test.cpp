//===- tests/integration/oracle_equivalence_test.cpp ----------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast integer-arithmetic implementation (Section 3) against the
/// exact rational-arithmetic basic algorithm (Section 2): digit-for-digit
/// agreement across values, bases, boundary modes, and tie strategies.
/// Any divergence here means the common-denominator rewrite broke the
/// algorithm.
///
//===----------------------------------------------------------------------===//

#include "core/fixed_format.h"
#include "core/free_format.h"
#include "core/reference.h"
#include "fp/binary16.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace dragon4;

namespace {

struct ModeCase {
  BoundaryMode Mode;
  TieBreak Ties;
};

class OracleSweepTest
    : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

BoundaryMode modeOf(int Index) {
  switch (Index) {
  case 0:
    return BoundaryMode::Conservative;
  case 1:
    return BoundaryMode::NearestEven;
  case 2:
    return BoundaryMode::BothInclusive;
  case 3:
    return BoundaryMode::LowInclusive;
  default:
    return BoundaryMode::HighInclusive;
  }
}

TEST_P(OracleSweepTest, FreeFormatMatchesReference) {
  auto [Base, ModeIndex] = GetParam();
  BoundaryMode Mode = modeOf(ModeIndex);
  FreeFormatOptions Options;
  Options.Base = Base;
  Options.Boundaries = Mode;

  auto Check = [&](uint64_t F, int E, int P, int MinE) {
    for (TieBreak Ties :
         {TieBreak::RoundUp, TieBreak::RoundEven, TieBreak::RoundDown}) {
      Options.Ties = Ties;
      DigitString Fast =
          freeFormatDigits(F, E, P, MinE, Options);
      DigitString Slow = referenceFreeFormat(
          F, E, P, MinE, Base, BoundaryFlags::resolve(Mode, F), Ties);
      ASSERT_EQ(Fast, Slow)
          << "F=" << F << " E=" << E << " base=" << Base
          << " mode=" << ModeIndex << " ties=" << static_cast<int>(Ties);
    }
  };

  // Doubles: random normals and subnormals.
  for (double V : randomNormalDoubles(40, Base * 1000 + ModeIndex)) {
    Decomposed D = decompose(V);
    Check(D.F, D.E, 53, -1074);
  }
  for (double V : randomSubnormalDoubles(10, Base * 1000 + ModeIndex + 7)) {
    Decomposed D = decompose(V);
    Check(D.F, D.E, 53, -1074);
  }
  // Halves: structured sweep including powers of two (narrow gap).
  SplitMix64 Rng(Base * 31 + ModeIndex);
  for (int I = 0; I < 30; ++I) {
    uint32_t Bits = 1 + static_cast<uint32_t>(Rng.below(0x7BFF));
    Binary16 H = Binary16::fromBits(static_cast<uint16_t>(Bits));
    Decomposed D = decompose(H);
    Check(D.F, D.E, 11, -24);
  }
  Check(uint64_t(1) << 10, -5, 11, -24); // Power-of-two mantissa, narrow gap.
  Check(uint64_t(1) << 10, -24, 11, -24); // ... pinned at min exponent.
  Check(1, -24, 11, -24);                 // Smallest subnormal.
}

INSTANTIATE_TEST_SUITE_P(
    BasesAndModes, OracleSweepTest,
    ::testing::Combine(::testing::Values(2u, 3u, 10u, 16u, 36u),
                       ::testing::Values(0, 1, 2, 3, 4)));

class FixedOracleTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FixedOracleTest, FixedFormatMatchesReference) {
  unsigned Base = GetParam();
  FixedFormatOptions Options;
  Options.Base = Base;
  Options.Boundaries = BoundaryMode::Conservative;

  auto Check = [&](uint64_t F, int E, int P, int MinE, int J) {
    DigitString Fast = fixedFormatAbsolute(F, E, P, MinE, J, Options);
    DigitString Slow =
        referenceFixedFormat(F, E, P, MinE, Base,
                             BoundaryFlags::resolve(Options.Boundaries, F),
                             Options.Ties, J);
    ASSERT_EQ(Fast, Slow) << "F=" << F << " E=" << E << " J=" << J
                          << " base=" << Base;
  };

  // Halves at a grid of absolute positions (oracle rationals stay small).
  SplitMix64 Rng(Base * 991);
  for (int I = 0; I < 40; ++I) {
    uint32_t Bits = 1 + static_cast<uint32_t>(Rng.below(0x7BFF));
    Binary16 H = Binary16::fromBits(static_cast<uint16_t>(Bits));
    Decomposed D = decompose(H);
    for (int J : {-12, -6, -2, 0, 2, 5})
      Check(D.F, D.E, 11, -24, J);
  }
  // A few doubles at coarse positions.
  for (double V : randomNormalDoubles(10, Base * 17)) {
    Decomposed D = decompose(V);
    for (int J : {-20, -3, 0})
      Check(D.F, D.E, 53, -1074, J);
  }
  // The zero-collapse region.
  Check(1, -24, 11, -24, 0);
  Check(1, -24, 11, -24, 3);
  Check(uint64_t(1) << 10, -24, 11, -24, 1);
}

INSTANTIATE_TEST_SUITE_P(Bases, FixedOracleTest,
                         ::testing::Values(2u, 10u, 16u));

TEST(OracleDense, Binary16FreeFormatStridedSweep) {
  // A dense (stride-5) sweep of the half-precision format against the
  // rational oracle in base 10, both common boundary modes.  Together
  // with the random suites above this pins the integer rewrite to the
  // Section 2 specification across an entire format.
  for (int ModeIndex : {0, 1}) {
    BoundaryMode Mode = modeOf(ModeIndex);
    FreeFormatOptions Options;
    Options.Boundaries = Mode;
    for (uint32_t Bits = 1; Bits < 0x7C00; Bits += 5) {
      Binary16 H = Binary16::fromBits(static_cast<uint16_t>(Bits));
      Decomposed D = decompose(H);
      DigitString Fast = freeFormatDigits(D.F, D.E, 11, -24, Options);
      DigitString Slow = referenceFreeFormat(
          D.F, D.E, 11, -24, 10, BoundaryFlags::resolve(Mode, D.F),
          Options.Ties);
      ASSERT_EQ(Fast, Slow) << "bits " << Bits << " mode " << ModeIndex;
    }
  }
}

TEST(OracleDense, Binary16FixedFormatStridedSweep) {
  // The same density for the Section 4 algorithm at a fraction position
  // deep enough that subnormals produce marks.
  FixedFormatOptions Options;
  for (uint32_t Bits = 1; Bits < 0x7C00; Bits += 7) {
    Binary16 H = Binary16::fromBits(static_cast<uint16_t>(Bits));
    Decomposed D = decompose(H);
    DigitString Fast = fixedFormatAbsolute(D.F, D.E, 11, -24, -6, Options);
    DigitString Slow = referenceFixedFormat(
        D.F, D.E, 11, -24, 10,
        BoundaryFlags::resolve(Options.Boundaries, D.F), Options.Ties, -6);
    ASSERT_EQ(Fast, Slow) << "bits " << Bits;
  }
}

} // namespace
