//===- tests/integration/fixed_free_consistency_test.cpp ------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-checks between the two output modes and the baselines:
///  * fixed-format output at high precision = free-format digits + filler;
///  * fixed-format output is the correctly rounded prefix (vs the
///    straightforward printer) wherever the shortest-output tie-breaking
///    cannot interfere;
///  * reading a fixed-format rendering back gives a value within half a
///    quantum.
///
//===----------------------------------------------------------------------===//

#include "baselines/fixed17.h"
#include "core/fixed_format.h"
#include "core/free_format.h"
#include "format/dtoa.h"
#include "reader/reader.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dragon4;

namespace {

TEST(FixedFreeConsistency, FreeDigitsArePrefixOfWideFixed) {
  // Requesting far more digits than the value has precision must
  // reproduce the free-format digits, then zeros, then marks.
  FreeFormatOptions FreeOptions; // NearestEven.
  FixedFormatOptions FixedOptions;
  FixedOptions.Boundaries = BoundaryMode::NearestEven;
  for (double V : randomNormalDoubles(200, 12321)) {
    DigitString Free = shortestDigits(V, FreeOptions);
    DigitString Fixed = fixedDigitsRelative(V, 40, FixedOptions);
    ASSERT_EQ(Fixed.K, Free.K) << V;
    ASSERT_GE(Fixed.Digits.size(), Free.Digits.size()) << V;
    for (size_t I = 0; I < Free.Digits.size(); ++I)
      EXPECT_EQ(Fixed.Digits[I], Free.Digits[I]) << V << " digit " << I;
    // Whatever follows the shortest prefix is zeros (then marks).
    for (size_t I = Free.Digits.size(); I < Fixed.Digits.size(); ++I)
      EXPECT_EQ(Fixed.Digits[I], 0u) << V << " digit " << I;
    EXPECT_GT(Fixed.TrailingMarks, 0) << V;
  }
}

TEST(FixedFreeConsistency, FixedEqualsStraightforwardWhenFullySignificant) {
  // When the requested digit count is below the significance limit, the
  // Section 4 algorithm and the straightforward printer agree: both are
  // "correctly rounded to N digits" and ties (exact decimal halfway
  // points) are broken the same way (RoundUp).
  for (double V : randomNormalDoubles(300, 777)) {
    for (int N : {3, 7, 12}) {
      DigitString Fixed = fixedDigitsRelative(V, N);
      if (Fixed.TrailingMarks > 0)
        continue; // Precision ran out; the straightforward printer lies.
      DigitString Straight = straightforwardDigits(V, N);
      EXPECT_EQ(Fixed.K, Straight.K) << V << " N=" << N;
      EXPECT_EQ(Fixed.Digits, Straight.Digits) << V << " N=" << N;
    }
  }
}

TEST(FixedFreeConsistency, FixedRenderingReadsBackWithinHalfQuantum) {
  for (double V : randomNormalDoubles(200, 31415)) {
    for (int N : {2, 5, 9}) {
      PrintOptions Options;
      Options.Marks = MarkStyle::Zeros; // Reader-friendly rendering.
      std::string Text = toPrecision(V, N, Options);
      auto Back = readFloat<double>(Text);
      ASSERT_TRUE(Back.has_value()) << Text;
      // |read-back - v| <= half of the last printed place, up to the
      // reader's own half-ulp -- bound loosely by one quantum.
      DigitString D = fixedDigitsRelative(V, N);
      double Quantum = std::pow(10.0, D.K - N);
      EXPECT_LE(std::fabs(*Back - V), Quantum) << Text;
    }
  }
}

TEST(FixedFreeConsistency, AbsoluteAndRelativeShareTheScale) {
  for (double V : randomNormalDoubles(200, 999)) {
    DigitString Free = shortestDigits(V);
    // Absolute position derived from the free K, minus 5 positions.  A
    // value within half a quantum of B^K rounds up across the power (K
    // grows by one and the width with it); otherwise the scale is shared.
    DigitString Abs = fixedDigitsAbsolute(V, Free.K - 5);
    if (Abs.K == Free.K) {
      EXPECT_EQ(Abs.width(), 5) << V;
    } else {
      EXPECT_EQ(Abs.K, Free.K + 1) << V;
      EXPECT_EQ(Abs.width(), 6) << V;
    }
  }
}

TEST(FixedFreeConsistency, SeventeenDigitFixedIsLossless) {
  // The Table 3 configuration: 17 significant digits always uniquely
  // determine the double, marks or not.
  for (double V : randomNormalDoubles(300, 171717)) {
    PrintOptions Options;
    Options.Marks = MarkStyle::Zeros;
    std::string Text = toPrecision(V, 17, Options);
    EXPECT_EQ(*readFloat<double>(Text), V) << Text;
  }
}

} // namespace
