//===- tests/integration/cross_validation_test.cpp -----------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-validation against the C library (glibc's conversions are
/// correctly rounded, so agreement is meaningful evidence) and death
/// tests pinning the library's contract-violation behaviour.
///
//===----------------------------------------------------------------------===//

#include "format/dtoa.h"
#include "baselines/fixed17.h"
#include "bigint/bigint.h"
#include "core/fixed_format.h"
#include "core/free_format.h"
#include "reader/reader.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

using namespace dragon4;

namespace {

TEST(CrossValidation, ToFixedMatchesPrintfWhenFullySignificant) {
  // When no marks appear (the requested precision is within the value's
  // information), toFixed with zero-marks must agree with printf "%.Nf"
  // character for character... except at exact decimal ties, where C
  // leaves the direction implementation-defined (glibc rounds to even,
  // our default rounds up); skip those.
  SplitMix64 Rng(20107);
  int Compared = 0;
  for (int I = 0; I < 3000; ++I) {
    // Values in a human range where %.*f stays reasonable.
    double V = static_cast<double>(Rng.below(1000000000)) / 1000.0;
    if (V == 0.0)
      continue;
    int FractionDigits = static_cast<int>(Rng.below(8));
    DigitString Digits = fixedDigitsAbsolute(V, -FractionDigits);
    if (Digits.TrailingMarks > 0)
      continue;
    PrintOptions Options;
    Options.Marks = MarkStyle::Zeros;
    std::string Mine = toFixed(V, FractionDigits, Options);
    char Theirs[64];
    std::snprintf(Theirs, sizeof(Theirs), "%.*f", FractionDigits, V);
    if (Mine != Theirs) {
      // Tolerate a genuine half-way tie (we round up, glibc to even):
      // reconstruct the remainder exactly and skip iff it is a tie.
      FixedFormatOptions Down;
      Down.Ties = TieBreak::RoundDown;
      DigitString Low = fixedDigitsAbsolute(V, -FractionDigits, Down);
      ASSERT_NE(Low, Digits) << "non-tie disagreement: " << Mine << " vs "
                             << Theirs;
      continue;
    }
    ++Compared;
  }
  EXPECT_GT(Compared, 2000); // The sweep must mostly be comparable.
}

TEST(CrossValidation, ToExponentialMatchesPrintfE) {
  SplitMix64 Rng(20108);
  for (int I = 0; I < 2000; ++I) {
    double V = std::ldexp(static_cast<double>(Rng.next() >> 11) + 1, -30);
    int Frac = 1 + static_cast<int>(Rng.below(15));
    DigitString Digits = fixedDigitsRelative(V, Frac + 1);
    if (Digits.TrailingMarks > 0)
      continue;
    PrintOptions Options;
    Options.Marks = MarkStyle::Zeros;
    std::string Mine = toExponential(V, Frac, Options);
    char Theirs[64];
    std::snprintf(Theirs, sizeof(Theirs), "%.*e", Frac, V);
    // printf pads exponents to two digits ("e+07"); normalize ours.
    std::string Normalized = Theirs;
    size_t EPos = Normalized.find('e');
    ASSERT_NE(EPos, std::string::npos);
    // Strip a leading zero in the exponent ("e+07" -> "e+7").
    if (Normalized[EPos + 2] == '0')
      Normalized.erase(EPos + 2, 1);
    if (Mine != Normalized) {
      FixedFormatOptions Down;
      Down.Ties = TieBreak::RoundDown;
      DigitString Low = fixedDigitsRelative(V, Frac + 1, Down);
      ASSERT_NE(Low, Digits) << "non-tie disagreement: " << Mine << " vs "
                             << Normalized;
    }
  }
}

TEST(CrossValidation, ShortestAgreesWithPrintfShortestSearch) {
  // The shortest output must equal the shortest of %.15g/%.16g/%.17g that
  // round-trips via strtod -- the classic pre-shortest-printing recipe.
  for (double V : randomNormalDoubles(400, 20109)) {
    std::string Mine = toShortest(V);
    std::string BestRecipe;
    for (int Precision = 15; Precision <= 17; ++Precision) {
      char Buffer[64];
      std::snprintf(Buffer, sizeof(Buffer), "%.*g", Precision, V);
      if (std::strtod(Buffer, nullptr) == V) {
        BestRecipe = Buffer;
        break;
      }
    }
    ASSERT_FALSE(BestRecipe.empty()) << V;
    // Same significant-digit count (the recipe may pick a different tie
    // digit or exponent style, so compare counts, not text).  %g trims
    // trailing zeros; count its mantissa digits, dropping trailing zeros
    // (significant-trailing-zero cases like 5e22 print as "5e+22").
    size_t RecipeDigits = 0;
    size_t TrailingZeros = 0;
    bool Leading = true;
    for (char C : BestRecipe) {
      if (C == 'e' || C == 'E')
        break;
      if (C < '0' || C > '9')
        continue;
      if (C == '0' && Leading)
        continue;
      Leading = false;
      ++RecipeDigits;
      TrailingZeros = C == '0' ? TrailingZeros + 1 : 0;
    }
    // Positional %g output can end in non-significant zeros only left of
    // the decimal point; the shortest form never needs them.
    EXPECT_LE(shortestDigits(V).Digits.size(), RecipeDigits)
        << V << ": " << Mine << " vs " << BestRecipe;
    EXPECT_GE(shortestDigits(V).Digits.size(), RecipeDigits - TrailingZeros)
        << V << ": " << Mine << " vs " << BestRecipe;
    EXPECT_EQ(*readFloat<double>(Mine), V);
  }
}

// --- Contract-violation death tests (always-on asserts) ---

TEST(ContractDeath, DivisionByZeroAborts) {
  BigInt One(uint64_t(1));
  BigInt Zero;
  EXPECT_DEATH({ BigInt Q = One / Zero; (void)Q; }, "division by zero");
}

TEST(ContractDeath, BaseOutOfRangeAborts) {
  EXPECT_DEATH((void)BigInt(uint64_t(5)).toString(1), "base out of range");
  EXPECT_DEATH((void)BigInt(uint64_t(5)).toString(37), "base out of range");
  FreeFormatOptions Options;
  Options.Base = 1;
  EXPECT_DEATH((void)shortestDigits(1.0, Options), "base out of range");
}

TEST(ContractDeath, DecomposeOfSpecialAborts) {
  EXPECT_DEATH((void)decompose(0.0), "finite non-zero");
  EXPECT_DEATH((void)decompose(std::numeric_limits<double>::infinity()),
               "finite non-zero");
}

TEST(ContractDeath, ZeroMantissaAborts) {
  EXPECT_DEATH((void)freeFormatDigits(0, 0, 53, -1074, FreeFormatOptions{}),
               "positive mantissa");
  EXPECT_DEATH((void)straightforwardFixed(0, 0, 10, 5), "positive mantissa");
}

TEST(ContractDeath, NegativeShiftTargetsAbort) {
  BigInt MinusOne(int64_t(-1));
  EXPECT_DEATH((void)(MinusOne << 3), "negative");
}

} // namespace
