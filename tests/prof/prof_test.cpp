//===- tests/prof/prof_test.cpp ----------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The phase-attribution profiler's contracts:
//
//   * the counter substrate degrades to the steady clock when perf events
//     are denied (forced via the testhook, so this is covered even on
//     hosts where perf_event_open works), and keeps Ticks monotonic;
//   * nested spans attribute self time to the right phase and parent,
//     and the sum of attributed self ticks never exceeds measured gross;
//   * over the paper's Schryer workload the attribution accounts for the
//     overwhelming share of measured conversion time (the acceptance
//     criterion gates 95% through prof_report; the bound here is looser
//     so a noisy CI scheduler cannot flake the tier-1 suite);
//   * the report renderers emit the phases and the folded-stack grammar
//     downstream tooling parses.
//
//===----------------------------------------------------------------------===//

#include "engine/engine.h"
#include "prof/clock.h"
#include "prof/perf.h"
#include "prof/phase.h"
#include "prof/report.h"
#include "support/testhooks.h"
#include "testgen/schryer.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using namespace dragon4;

namespace {

/// Clears the forced-fallback hook on scope exit.
struct FallbackGuard {
  ~FallbackGuard() { testhooks::ForceCounterFallback = false; }
};

TEST(ProfClock, NowNanosIsMonotonic) {
  uint64_t Prev = prof::nowNanos();
  for (int I = 0; I < 1000; ++I) {
    uint64_t Now = prof::nowNanos();
    ASSERT_GE(Now, Prev);
    Prev = Now;
  }
}

TEST(ProfClock, StopWatchMeasuresElapsedTime) {
  prof::StopWatch Watch;
  volatile uint64_t Spin = 0;
  for (int I = 0; I < 100000; ++I)
    Spin = Spin + static_cast<uint64_t>(I);
  uint64_t First = Watch.elapsedNanos();
  EXPECT_GT(First, 0u);
  EXPECT_GE(Watch.elapsedNanos(), First);
  EXPECT_LE(Watch.startNanos(), prof::nowNanos());
}

TEST(ProfPerf, ForcedFallbackDegradesToSteadyClock) {
  FallbackGuard Guard;
  testhooks::ForceCounterFallback = true;

  EXPECT_EQ(prof::backend(), prof::CounterBackend::SteadyClock);
  EXPECT_FALSE(prof::backendIsPerf());
  EXPECT_STREQ(prof::backendName(prof::backend()), "steady_clock");

  // On the fallback, a group read is one clock read: ticks advance
  // monotonically in nanoseconds and the derived counters stay zero.
  prof::PerfGroup Group;
  prof::CounterSample A, B;
  Group.read(A);
  Group.read(B);
  EXPECT_FALSE(Group.usingPerf());
  EXPECT_GE(B.Ticks, A.Ticks);
  EXPECT_GT(A.Ticks, 0u);
  EXPECT_EQ(A.Instructions, 0u);
  EXPECT_EQ(A.BranchMisses, 0u);
  EXPECT_EQ(A.CacheMisses, 0u);
}

TEST(ProfPerf, BackendNamesAreStableExportKeys) {
  EXPECT_STREQ(prof::backendName(prof::CounterBackend::PerfEvent),
               "perf_event");
  EXPECT_STREQ(prof::backendName(prof::CounterBackend::SteadyClock),
               "steady_clock");
}

#if DRAGON4_OBS_ENABLED

TEST(ProfPhase, UnboundCollectorDropsSpans) {
  prof::PhaseCollector C;
  EXPECT_FALSE(C.enter(prof::Phase::Total));
  EXPECT_EQ(C.depth(), 0);
}

TEST(ProfPhase, NestedSpansAttributeSelfToPhaseAndParent) {
  obs::Registry Reg;
  prof::PhaseCollector C;
  C.bind(&Reg);

  ASSERT_TRUE(C.enter(prof::Phase::Total));
  ASSERT_TRUE(C.enter(prof::Phase::DigitLoop));
  volatile uint64_t Spin = 0;
  for (int I = 0; I < 50000; ++I)
    Spin = Spin + static_cast<uint64_t>(I);
  C.exit();
  C.exit();
  EXPECT_EQ(C.depth(), 0);

  const obs::PhaseStats &Total = Reg.phase(prof::Phase::Total);
  const obs::PhaseStats &Loop = Reg.phase(prof::Phase::DigitLoop);
  EXPECT_EQ(Total.Spans, 1u);
  EXPECT_EQ(Loop.Spans, 1u);
  EXPECT_GT(Loop.SelfTicksTotal, 0u);
  EXPECT_GE(Loop.GrossTicksTotal, Loop.SelfTicksTotal);
  EXPECT_GE(Total.GrossTicksTotal, Loop.GrossTicksTotal);

  // The accounting identity: attributed self (Total's glue + the child +
  // explicit measurement overhead) never exceeds Total's measured gross.
  const obs::PhaseStats &Overhead = Reg.phase(prof::Phase::Overhead);
  EXPECT_LE(Total.SelfTicksTotal + Loop.SelfTicksTotal +
                Overhead.SelfTicksTotal,
            Total.GrossTicksTotal);

  // Parent attribution: the digit loop nested under Total, Total at the
  // root -- exactly what folded stacks are reconstructed from.
  EXPECT_EQ(Reg.phaseParentTicks(static_cast<size_t>(prof::Phase::Total),
                                 prof::Phase::DigitLoop),
            Loop.SelfTicksTotal);
  EXPECT_EQ(Reg.phaseParentTicks(prof::PhaseRootIndex, prof::Phase::Total),
            Total.SelfTicksTotal);
  EXPECT_EQ(Reg.phaseParentTicks(prof::PhaseRootIndex,
                                 prof::Phase::DigitLoop),
            0u);
}

TEST(ProfPhase, OverflowingTheSpanStackDropsNotCorrupts) {
  obs::Registry Reg;
  prof::PhaseCollector C;
  C.bind(&Reg);
  for (int I = 0; I < prof::PhaseCollector::MaxDepth; ++I)
    ASSERT_TRUE(C.enter(prof::Phase::Total));
  EXPECT_FALSE(C.enter(prof::Phase::DigitLoop));
  for (int I = 0; I < prof::PhaseCollector::MaxDepth; ++I)
    C.exit();
  EXPECT_EQ(C.depth(), 0);
  EXPECT_EQ(Reg.phase(prof::Phase::Total).Spans,
            static_cast<uint64_t>(prof::PhaseCollector::MaxDepth));
  EXPECT_EQ(Reg.phase(prof::Phase::DigitLoop).Spans, 0u);
}

TEST(ProfPhase, PhaseScopeInstallsAndRestoresTheCollector) {
  prof::PhaseCollector C;
  EXPECT_EQ(prof::activePhaseCollector(), nullptr);
  {
    prof::PhaseScope Outer(&C);
    EXPECT_EQ(prof::activePhaseCollector(), &C);
    {
      prof::PhaseScope Suppress(nullptr);
      EXPECT_EQ(prof::activePhaseCollector(), nullptr);
    }
    EXPECT_EQ(prof::activePhaseCollector(), &C);
  }
  EXPECT_EQ(prof::activePhaseCollector(), nullptr);
}

TEST(ProfPhase, SpanMacroIsANoOpWithoutACollector) {
  // No collector installed: the span must not crash or record anything.
  { D4_PROF_SPAN(DigitLoop); }
  SUCCEED();
}

/// Restores the process-global obs config on scope exit.
struct ConfigGuard {
  obs::Config Saved = obs::config();
  ~ConfigGuard() { obs::config() = Saved; }
};

/// Runs a Schryer subsample through the engine at SampleEvery = 1 and
/// returns the scratch whose registry carries the phase attribution.
/// Each value converts twice -- default options ride the Ryu front line,
/// the asymmetric LowInclusive reader model bypasses both fast rungs --
/// so every phase of the ladder records spans (mirrors prof_report).
void runProfiledWorkload(engine::Scratch &S) {
  char Buf[64];
  PrintOptions ExactOnly;
  ExactOnly.Boundaries = BoundaryMode::LowInclusive;
  std::vector<double> Values = schryerDoubles();
  for (size_t I = 0; I < Values.size(); I += 8) {
    engine::format(Values[I], Buf, sizeof(Buf), PrintOptions{}, S);
    engine::format(Values[I], Buf, sizeof(Buf), ExactOnly, S);
  }
}

TEST(ProfReport, AttributionCoversTheSchryerWorkload) {
  ConfigGuard Guard;
  obs::config().SampleEvery = 1;
  obs::config().Trace = false;

  engine::Scratch S;
  runProfiledWorkload(S);
  const obs::Registry &Reg = S.obsState().Reg;

  ASSERT_GT(Reg.phase(prof::Phase::Total).Spans, 0u);
  // The acceptance criterion is 95% on the full workload (gated by
  // prof_report --check-coverage); a slightly looser bound keeps tier-1
  // robust against scheduler noise on loaded CI machines.
  double Coverage = prof::attributionCoverage(Reg);
  EXPECT_GE(Coverage, 0.90) << "unattributed conversion time";
  EXPECT_LE(Coverage, 1.0);

  // The pipeline phases the paper's cost model names must all appear,
  // plus the Ryu front line that now serves the default reader model.
  for (prof::Phase P :
       {prof::Phase::DigitLoop, prof::Phase::ScaleSetup,
        prof::Phase::BigIntDivMod, prof::Phase::Render,
        prof::Phase::RyuPath})
    EXPECT_GT(Reg.phase(P).Spans, 0u)
        << "phase " << prof::phaseName(P) << " never recorded";
}

TEST(ProfReport, CostReportNamesPhasesBackendAndCoverage) {
  ConfigGuard Guard;
  obs::config().SampleEvery = 1;

  engine::Scratch S;
  runProfiledWorkload(S);
  std::string Report = prof::renderCostReport(S.obsState().Reg);

  EXPECT_NE(Report.find(prof::backendName(prof::backend())),
            std::string::npos);
  EXPECT_NE(Report.find("coverage"), std::string::npos);
  for (prof::Phase P :
       {prof::Phase::DigitLoop, prof::Phase::ScaleSetup,
        prof::Phase::BigIntDivMod, prof::Phase::Render,
        prof::Phase::RyuPath, prof::Phase::Overhead})
    EXPECT_NE(Report.find(prof::phaseLabel(P)), std::string::npos)
        << prof::phaseLabel(P);
}

TEST(ProfReport, FoldedStacksParseAndNestUnderTotal) {
  ConfigGuard Guard;
  obs::config().SampleEvery = 1;

  engine::Scratch S;
  runProfiledWorkload(S);
  std::string Folded = prof::renderFoldedStacks(S.obsState().Reg);
  ASSERT_FALSE(Folded.empty());

  // Grammar: "frame(;frame)* <weight>\n" with every stack rooted at
  // dragon4 -- exactly what flamegraph.pl consumes.
  std::istringstream Lines(Folded);
  std::string Line;
  bool SawDigitLoop = false;
  bool SawRyu = false;
  while (std::getline(Lines, Line)) {
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    std::string Stack = Line.substr(0, Space);
    uint64_t Weight = 0;
    ASSERT_NO_THROW(Weight = std::stoull(Line.substr(Space + 1))) << Line;
    EXPECT_GT(Weight, 0u) << Line;
    EXPECT_EQ(Stack.rfind("dragon4", 0), 0u) << Line;
    if (Stack.find("total;digit_loop") != std::string::npos)
      SawDigitLoop = true;
    if (Stack.find("total;ryu_path") != std::string::npos)
      SawRyu = true;
  }
  EXPECT_TRUE(SawDigitLoop) << "digit loop missing from folded stacks";
  EXPECT_TRUE(SawRyu) << "ryu path missing from folded stacks";
}

#endif // DRAGON4_OBS_ENABLED

} // namespace
