//===- tests/prof/prof_sampler_test.cpp --------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The continuous sampling profiler: the packed live-stack word maintained
// by PhaseCollector at span boundaries, its decoding, and deterministic
// sweeps via sampleOnce() -- the timer thread is only started to prove it
// starts and stops cleanly, never relied on for counts.
//
//===----------------------------------------------------------------------===//

#include "prof/sampler.h"

#include "obs/registry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

using namespace dragon4;
using namespace dragon4::prof;

namespace {

TEST(DecodeLiveStack, EmptyAndSingleAndNested) {
  EXPECT_EQ(decodeLiveStack(0), "idle");

  // Level 0 holds phase index + 1.
  uint64_t Total = static_cast<uint64_t>(Phase::Total) + 1;
  EXPECT_EQ(decodeLiveStack(Total), "total");

  uint64_t DigitLoop = static_cast<uint64_t>(Phase::DigitLoop) + 1;
  uint64_t Word =
      Total | (DigitLoop << PhaseCollector::LiveStackBitsPerLevel);
  EXPECT_EQ(decodeLiveStack(Word), "total;digit_loop");

  uint64_t Mul = static_cast<uint64_t>(Phase::BigIntMul) + 1;
  Word |= Mul << (2 * PhaseCollector::LiveStackBitsPerLevel);
  EXPECT_EQ(decodeLiveStack(Word), "total;digit_loop;bigint_mul");
}

TEST(DecodeLiveStack, StopsAtFirstEmptyLevel) {
  // A hole (level 1 empty, level 2 set) terminates the decode at the hole:
  // the packed word is maintained as a stack, so anything past an empty
  // level is stale garbage.
  uint64_t Mul = static_cast<uint64_t>(Phase::BigIntMul) + 1;
  uint64_t Word = Mul << (2 * PhaseCollector::LiveStackBitsPerLevel);
  EXPECT_EQ(decodeLiveStack(Word), "idle");
}

TEST(PhaseCollector, LiveStackTracksSpans) {
  obs::Registry Reg;
  PhaseCollector C;
  C.bind(&Reg);
  EXPECT_EQ(decodeLiveStack(C.liveStackWord()), "idle");

  ASSERT_TRUE(C.enter(Phase::Total));
  EXPECT_EQ(decodeLiveStack(C.liveStackWord()), "total");
  ASSERT_TRUE(C.enter(Phase::DigitLoop));
  EXPECT_EQ(decodeLiveStack(C.liveStackWord()), "total;digit_loop");
  ASSERT_TRUE(C.enter(Phase::BigIntDivMod));
  EXPECT_EQ(decodeLiveStack(C.liveStackWord()),
            "total;digit_loop;bigint_divmod");
  C.exit();
  EXPECT_EQ(decodeLiveStack(C.liveStackWord()), "total;digit_loop");
  C.exit();
  EXPECT_EQ(decodeLiveStack(C.liveStackWord()), "total");
  C.exit();
  EXPECT_EQ(decodeLiveStack(C.liveStackWord()), "idle");
}

TEST(StackSampler, DeterministicSweepsAttributeOpenSpans) {
  StackSampler &Sampler = StackSampler::instance();
  Sampler.resetCounts();

  obs::Registry Reg;
  PhaseCollector C; // Registers itself with the singleton on construction.
  C.bind(&Reg);

  // 3 sweeps idle, then 2 sweeps inside total;digit_loop.
  Sampler.sampleOnce();
  Sampler.sampleOnce();
  Sampler.sampleOnce();
  ASSERT_TRUE(C.enter(Phase::Total));
  ASSERT_TRUE(C.enter(Phase::DigitLoop));
  Sampler.sampleOnce();
  Sampler.sampleOnce();
  C.exit();
  C.exit();

  EXPECT_EQ(Sampler.samplesTaken(), 5u);
  std::string Folded = Sampler.folded();
  // Other collectors may exist in this process (every Scratch owns one),
  // so assert on this collector's lines, not the whole document.
  EXPECT_NE(Folded.find("total;digit_loop 2\n"), std::string::npos)
      << Folded;
  EXPECT_NE(Folded.find("idle "), std::string::npos) << Folded;

  Sampler.resetCounts();
  EXPECT_EQ(Sampler.samplesTaken(), 0u);
  EXPECT_EQ(Sampler.folded(), "");
}

TEST(StackSampler, UnregisteredCollectorIsNotSwept) {
  StackSampler &Sampler = StackSampler::instance();
  Sampler.resetCounts();
  obs::Registry Reg;
  {
    PhaseCollector C;
    C.bind(&Reg);
    ASSERT_TRUE(C.enter(Phase::Total));
    Sampler.sampleOnce();
    C.exit();
  } // Destruction unregisters; a sweep after must not touch freed memory.
  Sampler.sampleOnce();
  std::string Folded = Sampler.folded();
  EXPECT_NE(Folded.find("total 1\n"), std::string::npos) << Folded;
  Sampler.resetCounts();
}

TEST(StackSampler, TimerThreadStartsAndStopsCleanly) {
  StackSampler &Sampler = StackSampler::instance();
  Sampler.resetCounts();
  Sampler.start(1000);
  EXPECT_TRUE(Sampler.running());
  Sampler.start(1000); // Second start is a no-op, not a second thread.
  // The loop sweeps once immediately on entry; wait for proof of life.
  for (int Tries = 0; Tries < 200 && Sampler.samplesTaken() == 0; ++Tries)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GT(Sampler.samplesTaken(), 0u);
  Sampler.stop();
  EXPECT_FALSE(Sampler.running());
  Sampler.stop(); // Idempotent.
  uint64_t After = Sampler.samplesTaken();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(Sampler.samplesTaken(), After); // Really stopped.
  Sampler.resetCounts();
}

} // namespace
