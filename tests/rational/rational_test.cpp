//===- tests/rational/rational_test.cpp --------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "rational/rational.h"

#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

Rational makeRat(int64_t Num, int64_t Den) {
  return Rational(BigInt(Num), BigInt(Den));
}

TEST(Gcd, BasicCases) {
  EXPECT_EQ(gcd(BigInt(uint64_t(12)), BigInt(uint64_t(18))).toString(), "6");
  EXPECT_EQ(gcd(BigInt(uint64_t(17)), BigInt(uint64_t(5))).toString(), "1");
  EXPECT_EQ(gcd(BigInt(), BigInt(uint64_t(7))).toString(), "7");
  EXPECT_EQ(gcd(BigInt(uint64_t(7)), BigInt()).toString(), "7");
  EXPECT_EQ(gcd(BigInt(int64_t(-12)), BigInt(uint64_t(18))).toString(), "6");
}

TEST(Rational, DefaultIsZero) {
  Rational Zero;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_TRUE(Zero.isInteger());
  EXPECT_EQ(Zero.toString(), "0");
}

TEST(Rational, NormalizesSignAndReduces) {
  EXPECT_EQ(makeRat(2, 4).toString(), "1/2");
  EXPECT_EQ(makeRat(-2, 4).toString(), "-1/2");
  EXPECT_EQ(makeRat(2, -4).toString(), "-1/2");
  EXPECT_EQ(makeRat(-2, -4).toString(), "1/2");
  EXPECT_EQ(makeRat(0, -5).toString(), "0");
  EXPECT_EQ(makeRat(6, 3).toString(), "2");
  EXPECT_TRUE(makeRat(6, 3).isInteger());
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ((makeRat(1, 2) + makeRat(1, 3)).toString(), "5/6");
  EXPECT_EQ((makeRat(1, 2) - makeRat(1, 3)).toString(), "1/6");
  EXPECT_EQ((makeRat(1, 3) - makeRat(1, 2)).toString(), "-1/6");
  EXPECT_EQ((makeRat(2, 3) * makeRat(3, 4)).toString(), "1/2");
  EXPECT_EQ((makeRat(2, 3) / makeRat(4, 3)).toString(), "1/2");
  EXPECT_EQ((-makeRat(2, 3)).toString(), "-2/3");
}

TEST(Rational, Comparison) {
  EXPECT_LT(makeRat(1, 3), makeRat(1, 2));
  EXPECT_GT(makeRat(-1, 3), makeRat(-1, 2));
  EXPECT_EQ(makeRat(2, 4), makeRat(1, 2));
  EXPECT_LE(makeRat(1, 2), makeRat(1, 2));
  EXPECT_LT(makeRat(-1, 2), Rational());
  EXPECT_GT(makeRat(1, 1000000), Rational());
}

TEST(Rational, FloorTowardNegativeInfinity) {
  EXPECT_EQ(makeRat(7, 2).floor().toString(), "3");
  EXPECT_EQ(makeRat(-7, 2).floor().toString(), "-4");
  EXPECT_EQ(makeRat(6, 2).floor().toString(), "3");
  EXPECT_EQ(makeRat(-6, 2).floor().toString(), "-3");
  EXPECT_EQ(Rational().floor().toString(), "0");
}

TEST(Rational, FractionalPartInUnitInterval) {
  EXPECT_EQ(makeRat(7, 2).fractionalPart(), makeRat(1, 2));
  EXPECT_EQ(makeRat(-7, 2).fractionalPart(), makeRat(1, 2));
  EXPECT_TRUE(makeRat(4, 2).fractionalPart().isZero());
}

TEST(Rational, ScaledPow) {
  EXPECT_EQ(Rational::scaledPow(BigInt(uint64_t(3)), 10, 2).toString(),
            "300");
  EXPECT_EQ(Rational::scaledPow(BigInt(uint64_t(3)), 10, -2).toString(),
            "3/100");
  EXPECT_EQ(Rational::scaledPow(BigInt(uint64_t(5)), 2, -1).toString(),
            "5/2");
  EXPECT_EQ(Rational::scaledPow(BigInt(uint64_t(1)), 7, 0).toString(), "1");
}

TEST(Rational, FieldAxiomsProperty) {
  SplitMix64 Rng(31337);
  auto Random = [&] {
    int64_t Num = static_cast<int64_t>(Rng.next() % 2001) - 1000;
    int64_t Den = static_cast<int64_t>(Rng.next() % 999) + 1;
    return makeRat(Num, Den);
  };
  for (int I = 0; I < 100; ++I) {
    Rational A = Random(), B = Random(), C = Random();
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ(A - A, Rational());
    if (!B.isZero()) {
      EXPECT_EQ((A / B) * B, A);
    }
  }
}

TEST(Rational, CompareViaSubtraction) {
  SplitMix64 Rng(777);
  for (int I = 0; I < 100; ++I) {
    int64_t N1 = static_cast<int64_t>(Rng.next() % 2001) - 1000;
    int64_t N2 = static_cast<int64_t>(Rng.next() % 2001) - 1000;
    Rational A = makeRat(N1, 1 + int64_t(Rng.below(50)));
    Rational B = makeRat(N2, 1 + int64_t(Rng.below(50)));
    Rational Diff = A - B;
    if (A < B)
      EXPECT_TRUE(Diff.isNegative());
    else if (A == B)
      EXPECT_TRUE(Diff.isZero());
    else
      EXPECT_TRUE(!Diff.isNegative() && !Diff.isZero());
  }
}

} // namespace
