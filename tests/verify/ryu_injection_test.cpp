//===- tests/verify/ryu_injection_test.cpp ---------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exhaustive tier guards the Ryu front line, proven the same way the
/// digit-loop was in the original harness self-test: plant a bug (the
/// digit-removal bound made inclusive instead of strict, so Ryu strips
/// digits it must keep), demand the binary16 sweep catches it, the
/// minimizer shrinks the failure to a two-line corpus record, and replay
/// reproduces it -- then, with the hook off, the same record passes, which
/// is exactly the regression-corpus lifecycle a real Ryu bug would follow.
///
//===----------------------------------------------------------------------===//

#include "verify/corpus.h"
#include "verify/verify.h"

#include "fastpath/ryu.h"
#include "fp/binary16.h"
#include "fp/ieee_traits.h"
#include "support/testhooks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace dragon4;
using namespace dragon4::verify;

namespace {

/// Restores the injected-bug hook on scope exit, so a failing test cannot
/// poison the rest of the binary.
struct HookGuard {
  ~HookGuard() { testhooks::FlipRyuBoundComparison = false; }
};

BitPattern bits16(uint64_t Encoding) {
  BitPattern Bits;
  Bits.Format = FloatFormat::Binary16;
  Bits.Lo = Encoding;
  return Bits;
}

/// Sanity on the bug itself, before involving the harness: with the hook
/// on, Ryu's output for a value whose shortest form needs several digits
/// comes out shorter than the exact answer (digits the reader needs were
/// removed), while single-digit values may survive.  This pins the failure
/// mode the sweep below is expected to catch.
TEST(RyuInjection, FlippedBoundRemovesRequiredDigits) {
  HookGuard Guard;
  Binary16 Value = Binary16::fromBits(0x3c01); // 1.0009765625, shortest 1.001
  Decomposed D = decompose(Value);
  FreeFormatOptions Options;
  DigitString Exact =
      freeFormatDigits(D.F, D.E, IeeeTraits<Binary16>::Precision,
                       IeeeTraits<Binary16>::MinExponent, Options);
  ASSERT_GT(Exact.Digits.size(), 1u);

  std::vector<uint8_t> Digits;
  int K = 0;
  bool AcceptBounds = false;
  ASSERT_TRUE(ryuEligible(10, Options.Boundaries, (D.F & 1) == 0,
                          AcceptBounds));

  testhooks::FlipRyuBoundComparison = true;
  ASSERT_TRUE(ryuShortestInto(D.F, D.E, IeeeTraits<Binary16>::Precision,
                              IeeeTraits<Binary16>::MinExponent, AcceptBounds,
                              Options.Ties, Digits, K));
  EXPECT_LT(Digits.size(), Exact.Digits.size())
      << "hook failed to over-remove digits";

  testhooks::FlipRyuBoundComparison = false;
  ASSERT_TRUE(ryuShortestInto(D.F, D.E, IeeeTraits<Binary16>::Precision,
                              IeeeTraits<Binary16>::MinExponent, AcceptBounds,
                              Options.Ties, Digits, K));
  EXPECT_EQ(Digits, Exact.Digits);
  EXPECT_EQ(K, Exact.K);
}

// The self-test that earns Ryu its place in front: flip its removal-loop
// bound and demand the binary16 sweep catches it, the minimizer shrinks
// it, and replay reproduces it.
TEST(RyuInjection, BugCaughtMinimizedReplayed) {
  HookGuard Guard;
  testhooks::FlipRyuBoundComparison = true;

  // Sweep an exhaustive subrange around 1.0, where shortest forms need
  // several digits and the over-removal is guaranteed to be visible.
  std::vector<CorpusRecord> Failures;
  for (uint64_t Encoding = 0x3c00; Encoding < 0x3c40; ++Encoding) {
    Verdict Verdict = checkBits(bits16(Encoding));
    if (!Verdict.ok()) {
      CorpusRecord Record;
      Record.Bits = bits16(Encoding);
      Record.Oracles = Verdict.Failed;
      Record.Comment = Verdict.Detail;
      Failures.push_back(Record);
    }
  }
  ASSERT_FALSE(Failures.empty())
      << "injected Ryu bound bug not caught by the sweep";

  // Minimize the first failure: still failing, at most two corpus lines.
  CorpusRecord Minimized = minimizeRecord(Failures.front());
  EXPECT_FALSE(replayRecord(Minimized).ok());
  std::string Text = encodeRecord(Minimized);
  EXPECT_LE(std::count(Text.begin(), Text.end(), '\n'), 2);

  // Replay through a corpus file round-trip, exactly as the CI would.
  std::string Path = ::testing::TempDir() + "ryu_injected_bug.rec";
  std::remove(Path.c_str());
  ASSERT_TRUE(appendRecord(Path, Minimized));
  std::vector<CorpusRecord> Loaded;
  std::string Error;
  ASSERT_TRUE(loadCorpus(Path, Loaded, &Error)) << Error;
  ASSERT_EQ(Loaded.size(), 1u);
  EXPECT_FALSE(replayRecord(Loaded.front()).ok())
      << "replayed record no longer reproduces the injected Ryu bug";

  // With the bug repaired, the same record passes: regression-corpus mode.
  testhooks::FlipRyuBoundComparison = false;
  EXPECT_TRUE(replayRecord(Loaded.front()).ok());
  std::remove(Path.c_str());
}

} // namespace
