//===- tests/verify/verify_test.cpp ----------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification harness verified: oracles accept known-good values and
/// specials, the corpus format round-trips, sweeps shard deterministically
/// over BatchEngine for any thread count, and -- the self-test that the
/// whole subsystem exists for -- an injected digit-loop bug is caught,
/// minimized to a two-line record, and reproduced by replay.
///
//===----------------------------------------------------------------------===//

#include "verify/corpus.h"
#include "verify/domain.h"
#include "verify/verify.h"

#include "engine/batch.h"
#include "fp/ieee_traits.h"
#include "support/testhooks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

using namespace dragon4;
using namespace dragon4::verify;

namespace {

BitPattern bits64(double V) {
  BitPattern Bits;
  Bits.Format = FloatFormat::Binary64;
  Bits.Lo = IeeeTraits<double>::toBits(V);
  return Bits;
}

BitPattern bitsOf(FloatFormat Format, uint64_t Hi, uint64_t Lo) {
  BitPattern Bits;
  Bits.Format = Format;
  Bits.Hi = Hi;
  Bits.Lo = Lo;
  return Bits;
}

/// Restores the injected-bug hook on scope exit, so a failing test cannot
/// poison the rest of the binary.
struct HookGuard {
  ~HookGuard() { testhooks::FlipDigitLoopLowComparison = false; }
};

TEST(VerifyNames, FormatNamesRoundTrip) {
  for (FloatFormat F : {FloatFormat::Binary16, FloatFormat::Binary32,
                        FloatFormat::Binary64, FloatFormat::Binary128}) {
    auto Back = formatByName(formatName(F));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, F);
  }
  EXPECT_FALSE(formatByName("binary80").has_value());
}

TEST(VerifyNames, OracleNamesRoundTrip) {
  for (unsigned Mask : {unsigned(OracleRoundTrip), unsigned(OracleShortest),
                        unsigned(OracleReference), unsigned(OracleLibc),
                        unsigned(OracleEngine), unsigned(OracleParse),
                        OracleRoundTrip | OracleLibc,
                        OracleParse | OracleEngine, unsigned(OracleAll)}) {
    auto Back = parseOracles(oracleNames(Mask));
    ASSERT_TRUE(Back.has_value()) << oracleNames(Mask);
    EXPECT_EQ(*Back, Mask);
  }
  auto All = parseOracles("all");
  ASSERT_TRUE(All.has_value());
  EXPECT_EQ(*All, OracleAll);
  EXPECT_FALSE(parseOracles("roundtrip,astrology").has_value());
}

TEST(VerifyOracles, AcceptKnownGoodValues) {
  for (double V : {1.0, -1.0, 0.1, 2.5, 1e22, 5e-324, 4.9406564584124654e-324,
                   1.7976931348623157e308, 3.141592653589793, -6.02e23}) {
    Verdict Verdict = checkBits(bits64(V));
    EXPECT_TRUE(Verdict.ok()) << Verdict.Detail;
  }
}

TEST(VerifyOracles, AcceptSpecials) {
  // +/-0, +/-inf, NaN for each format.
  for (FloatFormat F : {FloatFormat::Binary16, FloatFormat::Binary32,
                        FloatFormat::Binary64, FloatFormat::Binary128}) {
    // binary128's exact-rational oracles cost ~200ms per extreme-exponent
    // value; a handful of boundary encodings is the right tier-1 budget.
    size_t Count = F == FloatFormat::Binary128 ? 12 : 64;
    for (const BitPattern &Bits : sampledDomain(F, Count, 3)) {
      Verdict Verdict = checkBits(Bits);
      EXPECT_TRUE(Verdict.ok())
          << formatName(F) << " " << bitsToHex(Bits) << ": " << Verdict.Detail;
    }
  }
  EXPECT_TRUE(checkBits(bitsOf(FloatFormat::Binary64, 0, 0)).ok());
  EXPECT_TRUE(
      checkBits(bitsOf(FloatFormat::Binary64, 0, uint64_t(1) << 63)).ok());
  EXPECT_TRUE(
      checkBits(bitsOf(FloatFormat::Binary64, 0, 0x7FF0000000000000)).ok());
  EXPECT_TRUE(
      checkBits(bitsOf(FloatFormat::Binary64, 0, 0x7FF8000000000000)).ok());
}

TEST(VerifyOracles, VerdictCountersChargeScratch) {
  engine::Scratch S;
  uint64_t Before = S.stats().VerifyChecked;
  Verdict Verdict = checkBits(bits64(2.5), OracleAll, &S);
  EXPECT_TRUE(Verdict.ok());
  // binary64 supports all six oracles; each run charges one verdict.
  EXPECT_EQ(S.stats().VerifyChecked, Before + 6);
  EXPECT_EQ(S.stats().VerifyMismatches, 0u);
  // The parse oracle additionally charges its outcome counters ("2.5" is
  // inside the Eisel-Lemire fast path).
  EXPECT_EQ(S.stats().FastParseHits, 1u);
  EXPECT_EQ(S.stats().FastParseFallbacks, 0u);
}

TEST(VerifyDomain, ExhaustiveIndexing) {
  EXPECT_EQ(encodingCount(FloatFormat::Binary16), uint64_t(1) << 16);
  EXPECT_EQ(encodingCount(FloatFormat::Binary32), uint64_t(1) << 32);
  EXPECT_EQ(encodingCount(FloatFormat::Binary64), 0u);
  EXPECT_EQ(exhaustiveIndexCount(0, 65536, 1), 65536u);
  EXPECT_EQ(exhaustiveIndexCount(10, 15, 2), 3u);
  EXPECT_EQ(exhaustiveIndexCount(5, 5, 1), 0u);
  BitPattern Bits = exhaustiveBits(FloatFormat::Binary16, 0x100, 2, 3);
  EXPECT_EQ(Bits.Lo, 0x106u);
}

TEST(VerifyDomain, SampledDomainIsDeterministic) {
  for (FloatFormat F : {FloatFormat::Binary64, FloatFormat::Binary128}) {
    std::vector<BitPattern> A = sampledDomain(F, 500, 42);
    std::vector<BitPattern> B = sampledDomain(F, 500, 42);
    ASSERT_EQ(A.size(), 500u);
    EXPECT_TRUE(std::equal(A.begin(), A.end(), B.begin()));
  }
  // Large enough to spill past the deterministic strata into the seeded
  // random stratum, where the seed must matter.
  std::vector<BitPattern> A = sampledDomain(FloatFormat::Binary64, 60000, 42);
  std::vector<BitPattern> C = sampledDomain(FloatFormat::Binary64, 60000, 43);
  EXPECT_FALSE(std::equal(A.begin(), A.end(), C.begin()));
}

TEST(VerifyCorpus, RecordEncodeParseRoundTrip) {
  CorpusRecord Record;
  Record.Bits = bitsOf(FloatFormat::Binary16, 0, 0x6c04);
  Record.Oracles = OracleShortest | OracleReference;
  Record.Comment = "example failure";
  std::string Text = encodeRecord(Record);
  // At most two lines: the comment and the record.
  EXPECT_EQ(std::count(Text.begin(), Text.end(), '\n'), 2);
  std::istringstream In(Text);
  std::string Comment, Line;
  ASSERT_TRUE(std::getline(In, Comment));
  ASSERT_TRUE(std::getline(In, Line));
  EXPECT_EQ(Comment, "# example failure");
  CorpusRecord Back;
  ASSERT_TRUE(parseRecordLine(Line, Back));
  EXPECT_EQ(Back.Bits, Record.Bits);
  EXPECT_EQ(Back.Oracles, Record.Oracles);

  // binary128 uses the full 32-digit encoding.
  Record.Bits = bitsOf(FloatFormat::Binary128, 0x3FFF000000000000, 0x1);
  Record.Oracles = OracleRoundTrip;
  ASSERT_TRUE(parseRecordLine(
      formatName(Record.Bits.Format) + std::string(" ") +
          bitsToHex(Record.Bits) + " roundtrip",
      Back));
  EXPECT_EQ(Back.Bits, Record.Bits);

  EXPECT_FALSE(parseRecordLine("binary16 0xGGGG roundtrip", Back));
  EXPECT_FALSE(parseRecordLine("binary16 0x3c00", Back));
  EXPECT_FALSE(parseRecordLine("binary9 0x3c00 roundtrip", Back));
  // Out-of-range encoding for a narrow format.
  EXPECT_FALSE(parseRecordLine("binary32 0x123456789abcdef01 roundtrip", Back));
}

TEST(VerifyCorpus, FileAppendAndLoad) {
  std::string Path = ::testing::TempDir() + "verify_corpus_test.rec";
  std::remove(Path.c_str());
  CorpusRecord First;
  First.Bits = bitsOf(FloatFormat::Binary64, 0, 0x3FF0000000000000);
  First.Oracles = OracleRoundTrip;
  First.Comment = "one";
  CorpusRecord Second;
  Second.Bits = bitsOf(FloatFormat::Binary32, 0, 0x3f800000);
  Second.Oracles = OracleShortest | OracleLibc;
  ASSERT_TRUE(appendRecord(Path, First));
  ASSERT_TRUE(appendRecord(Path, Second));

  std::vector<CorpusRecord> Loaded;
  std::string Error;
  ASSERT_TRUE(loadCorpus(Path, Loaded, &Error)) << Error;
  ASSERT_EQ(Loaded.size(), 2u);
  EXPECT_EQ(Loaded[0].Bits, First.Bits);
  EXPECT_EQ(Loaded[0].Comment, "one");
  EXPECT_EQ(Loaded[1].Bits, Second.Bits);
  EXPECT_EQ(Loaded[1].Oracles, Second.Oracles);
  EXPECT_TRUE(Loaded[1].Comment.empty());

  // Replay of known-good records passes.
  for (const CorpusRecord &Record : Loaded)
    EXPECT_TRUE(replayRecord(Record).ok());
  std::remove(Path.c_str());
}

// The harness self-test: flip the strictness of the digit loop's low-side
// termination comparison (a classic off-by-one) and demand the binary16
// sweep catches it, the minimizer shrinks it, and replay reproduces it.
TEST(VerifyInjection, DigitLoopBugCaughtMinimizedReplayed) {
  HookGuard Guard;
  testhooks::FlipDigitLoopLowComparison = true;

  // Sweep a small exhaustive subrange known to contain failures (values
  // near 4100 whose shortest form lands exactly on the low midpoint).
  std::vector<CorpusRecord> Failures;
  for (uint64_t Encoding = 0x6c00; Encoding < 0x6c40; ++Encoding) {
    BitPattern Bits = bitsOf(FloatFormat::Binary16, 0, Encoding);
    Verdict Verdict = checkBits(Bits);
    if (!Verdict.ok()) {
      CorpusRecord Record;
      Record.Bits = Bits;
      Record.Oracles = Verdict.Failed;
      Record.Comment = Verdict.Detail;
      Failures.push_back(Record);
    }
  }
  ASSERT_FALSE(Failures.empty())
      << "injected digit-loop bug not caught by the sweep";

  // Minimize the first failure: the result must still fail, be no more
  // complex than the original, and encode to at most two lines.
  CorpusRecord Minimized = minimizeRecord(Failures.front());
  EXPECT_FALSE(replayRecord(Minimized).ok());
  std::string Text = encodeRecord(Minimized);
  EXPECT_LE(std::count(Text.begin(), Text.end(), '\n'), 2);

  // Replay through a corpus file round-trip, exactly as the CI would.
  std::string Path = ::testing::TempDir() + "verify_injected_bug.rec";
  std::remove(Path.c_str());
  ASSERT_TRUE(appendRecord(Path, Minimized));
  std::vector<CorpusRecord> Loaded;
  std::string Error;
  ASSERT_TRUE(loadCorpus(Path, Loaded, &Error)) << Error;
  ASSERT_EQ(Loaded.size(), 1u);
  EXPECT_FALSE(replayRecord(Loaded.front()).ok())
      << "replayed record no longer reproduces the injected bug";

  // With the bug repaired, the same record passes: regression-corpus mode.
  testhooks::FlipDigitLoopLowComparison = false;
  EXPECT_TRUE(replayRecord(Loaded.front()).ok());
  std::remove(Path.c_str());
}

/// Runs the binary16 subrange sweep sharded over \p Threads workers and
/// returns (sorted failing encodings, verdicts checked).
std::pair<std::vector<uint64_t>, uint64_t> sweepWithThreads(unsigned Threads) {
  engine::BatchPool Pool(Threads);
  std::mutex Mutex;
  std::vector<uint64_t> Failing;
  Pool.parallelFor(0x2000, [&](size_t Begin, size_t End,
                                 engine::Scratch &S) {
    for (size_t Index = Begin; Index < End; ++Index) {
      BitPattern Bits =
          exhaustiveBits(FloatFormat::Binary16, 0x6000, 1, Index);
      if (!checkBits(Bits, OracleAll, &S).ok()) {
        std::lock_guard<std::mutex> Lock(Mutex);
        Failing.push_back(Bits.Lo);
      }
    }
  });
  std::sort(Failing.begin(), Failing.end());
  return {Failing, Pool.stats().VerifyChecked};
}

TEST(VerifySharding, DeterministicForAnyThreadCount) {
  HookGuard Guard;
  // Inject the bug so the failure set is non-empty and the comparison has
  // teeth: identical failures AND identical verdict tallies per thread
  // count.
  testhooks::FlipDigitLoopLowComparison = true;
  auto [Fail1, Checked1] = sweepWithThreads(1);
  auto [Fail3, Checked3] = sweepWithThreads(3);
  ASSERT_FALSE(Fail1.empty());
  EXPECT_EQ(Fail1, Fail3);
  EXPECT_EQ(Checked1, Checked3);
}

} // namespace
