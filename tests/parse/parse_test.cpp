//===- tests/parse/parse_test.cpp ------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// parseFloat's contract: the longest-valid-prefix grammar (consumed
/// lengths, malformed inputs), correct rounding on boundary cases
/// (subnormal edge, overflow to inf, signed zero, inf/nan spellings),
/// the truncated-significand fallback criterion (800-digit inputs, exact
/// midpoints), the outcome counters, and the non-hardware formats'
/// exact-reader path.
///
//===----------------------------------------------------------------------===//

#include "parse/parse.h"

#include "engine/stats.h"
#include "fp/ieee_traits.h"
#include "reader/reader.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

using namespace dragon4;
using namespace dragon4::parse;

namespace {

uint64_t bits(double V) { return IeeeTraits<double>::toBits(V); }

ParseResult<double> parse(std::string_view Text,
                          engine::EngineStats *Stats = nullptr) {
  return parseFloat<double>(Text, Stats);
}

TEST(ParseGrammar, ConsumedLengths) {
  struct Case {
    const char *Text;
    size_t Consumed;
    double Value;
  };
  const Case Cases[] = {
      {"1", 1, 1.0},
      {"1.5", 3, 1.5},
      {"-1.5", 4, -1.5},
      {"+1.5", 4, 1.5},
      {"1.5e10xyz", 6, 1.5e10},
      {"1.5E10", 6, 1.5e10},
      {"1e", 1, 1.0},       // Exponent marker without digits: rolled back.
      {"1e+", 1, 1.0},
      {"1e+5", 4, 1e5},
      {"5.", 2, 5.0},       // Trailing point is part of the literal.
      {"5.e2", 4, 500.0},
      {".5", 2, 0.5},
      {"-.5", 3, -0.5},
      {"1.2.3", 3, 1.2},    // Second point ends the literal.
      {"0x12", 1, 0.0},     // No hex: "0" then stop (locale-free subset).
      {"007", 3, 7.0},
      {"1,5", 1, 1.0},      // No locale: comma never a radix point.
      {"3.14seconds", 4, 3.14},
  };
  for (const Case &C : Cases) {
    ParseResult<double> R = parse(C.Text);
    ASSERT_TRUE(R.ok()) << C.Text;
    EXPECT_EQ(R.Consumed, C.Consumed) << C.Text;
    EXPECT_EQ(bits(R.Value), bits(C.Value)) << C.Text;
  }
}

TEST(ParseGrammar, MalformedInputs) {
  engine::EngineStats Stats;
  for (const char *Text :
       {"", ".", "+", "-", "+.", "e5", ".e5", "x1", " 1", "--1", "NaB"}) {
    ParseResult<double> R = parse(Text, &Stats);
    EXPECT_FALSE(R.ok()) << Text;
    EXPECT_EQ(R.Status, ParseStatus::Malformed) << Text;
    EXPECT_EQ(R.Path, ParsePath::None) << Text;
    EXPECT_EQ(R.Consumed, 0u) << Text;
    EXPECT_EQ(bits(R.Value), 0u) << Text;
  }
  EXPECT_EQ(Stats.FastParseRejected, 11u);
  EXPECT_EQ(Stats.FastParseHits, 0u);
}

TEST(ParseGrammar, Specials) {
  for (const char *Text : {"inf", "INF", "Inf", "+inf", "infinity", "INFINITY"}) {
    ParseResult<double> R = parse(Text);
    ASSERT_TRUE(R.ok()) << Text;
    EXPECT_EQ(R.Consumed, std::string_view(Text).size()) << Text;
    EXPECT_TRUE(std::isinf(R.Value) && R.Value > 0) << Text;
    EXPECT_EQ(R.Path, ParsePath::Special) << Text;
  }
  ParseResult<double> Neg = parse("-infinity");
  EXPECT_EQ(Neg.Consumed, 9u);
  EXPECT_TRUE(std::isinf(Neg.Value) && Neg.Value < 0);

  // Prefix matching, like strtod: "information" starts with "inf".
  ParseResult<double> Prefix = parse("information");
  EXPECT_TRUE(Prefix.ok());
  EXPECT_EQ(Prefix.Consumed, 3u);
  // "infinit" cannot extend to "infinity", so only "inf" is consumed.
  EXPECT_EQ(parse("infinite").Consumed, 3u);

  for (const char *Text : {"nan", "NaN", "NAN", "-nan", "nanx", "nan(7)"}) {
    ParseResult<double> R = parse(Text);
    ASSERT_TRUE(R.ok()) << Text;
    EXPECT_TRUE(std::isnan(R.Value)) << Text;
    EXPECT_EQ(R.Consumed, std::string_view(Text, 3).size() +
                              (Text[0] == '-' ? 1u : 0u))
        << Text;
  }

  // Signed zeros keep their sign bit.
  EXPECT_EQ(bits(parse("0").Value), bits(0.0));
  EXPECT_EQ(bits(parse("-0").Value), bits(-0.0));
  EXPECT_EQ(bits(parse("-0.00e99").Value), bits(-0.0));
  EXPECT_EQ(bits(parse("-1e-400").Value), bits(-0.0)); // Signed underflow.
}

TEST(ParseBoundaries, SubnormalEdgeAndOverflow) {
  // Smallest positive subnormal, spelled several ways.
  for (const char *Text : {"5e-324", "4.9406564584124654e-324",
                           "4.9406564584124654417656879286822e-324"}) {
    ParseResult<double> R = parse(Text);
    ASSERT_TRUE(R.ok()) << Text;
    EXPECT_EQ(bits(R.Value), uint64_t(1)) << Text;
  }
  // Below half of it: rounds to +0.
  EXPECT_EQ(bits(parse("2.4e-324").Value), bits(0.0));
  EXPECT_EQ(parse("2.4e-324").Status, ParseStatus::Ok);

  // Largest finite double; one ulp-ish beyond overflows to inf.
  EXPECT_EQ(bits(parse("1.7976931348623157e308").Value),
            bits(1.7976931348623157e308));
  EXPECT_TRUE(std::isinf(parse("1.8e308").Value));
  EXPECT_TRUE(std::isinf(parse("1e309").Value));
  EXPECT_TRUE(std::isinf(parse("1e99999999999999999999").Value));
  EXPECT_EQ(bits(parse("1e-99999999999999999999").Value), bits(0.0));

  // Smallest normal boundary.
  EXPECT_EQ(bits(parse("2.2250738585072014e-308").Value),
            bits(2.2250738585072014e-308));
  // The infamous slow-converging literal (a PHP/Java DoS classic).
  EXPECT_EQ(bits(parse("2.2250738585072011e-308").Value),
            bits(std::strtod("2.2250738585072011e-308", nullptr)));
}

TEST(ParseFallback, LongDigitStringsForceTheExactReader) {
  engine::EngineStats Stats;

  // An 800-digit literal sitting exactly on a rounding boundary: the
  // decimal expansion of 1 + 2^-53, the midpoint between 1.0 and its
  // successor.  The 19-digit truncation brackets it -- w rounds to 1.0,
  // w+1 to the successor -- so the fast path is provably undecidable and
  // the exact reader must run (ties-to-even: 1.0), agreeing with strtod.
  std::string Hard =
      "1.00000000000000011102230246251565404236316680908203125";
  Hard += std::string(800 - Hard.size(), '0'); // Zero tail: same value.
  ASSERT_GE(Hard.size(), 800u);
  ParseResult<double> R = parseFloat<double>(Hard, &Stats);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Consumed, Hard.size());
  EXPECT_EQ(R.Path, ParsePath::ExactFallback);
  EXPECT_EQ(Stats.FastParseFallbacks, 1u);
  EXPECT_EQ(bits(R.Value), bits(std::strtod(Hard.c_str(), nullptr)));

  // The exact midpoint of the smallest subnormal with a perturbing tail:
  // w rounds down, w+1 rounds up, provably undecidable from 19 digits.
  std::string Mid = "2.470328229206232720";
  Mid += std::string(700, '8');
  Mid += "e-324";
  ParseResult<double> M = parseFloat<double>(Mid, &Stats);
  ASSERT_TRUE(M.ok());
  EXPECT_EQ(bits(M.Value), bits(std::strtod(Mid.c_str(), nullptr)));

  // A long but harmless tail (all zeros past digit 19) stays fast: the
  // dropped digits only shift the exponent.
  std::string Easy = "123456789012345678900000000000000000000000";
  ParseResult<double> E = parseFloat<double>(Easy, &Stats);
  ASSERT_TRUE(E.ok());
  EXPECT_EQ(E.Path, ParsePath::Fast);
  EXPECT_EQ(bits(E.Value), bits(std::strtod(Easy.c_str(), nullptr)));

  // Truncated but with agreeing brackets: fast, and still correct.
  std::string Agree = "3.14159265358979323846264338327950288419716939937510";
  ParseResult<double> A = parseFloat<double>(Agree, &Stats);
  ASSERT_TRUE(A.ok());
  EXPECT_EQ(A.Path, ParsePath::Fast);
  EXPECT_EQ(bits(A.Value), bits(std::strtod(Agree.c_str(), nullptr)));

  EXPECT_EQ(Stats.FastParseHits + Stats.FastParseFallbacks, 4u);
}

TEST(ParseFormats, NonHardwareFormatsTakeTheExactReader) {
  // Binary16: everything routes through readFloat, including specials.
  ParseResult<Binary16> Half = parseFloat<Binary16>("0.1");
  ASSERT_TRUE(Half.ok());
  EXPECT_EQ(Half.Path, ParsePath::ExactFallback);
  EXPECT_EQ(Half.Consumed, 3u);
  auto HalfExact = readFloat<Binary16>("0.1");
  ASSERT_TRUE(HalfExact.has_value());
  EXPECT_EQ(Half.Value.bits(), HalfExact->bits());

  engine::EngineStats Stats;
  ParseResult<Binary128> Quad = parseFloat<Binary128>("6.02e23", &Stats);
  ASSERT_TRUE(Quad.ok());
  EXPECT_EQ(Quad.Path, ParsePath::ExactFallback);
  auto QuadExact = readFloat<Binary128>("6.02e23");
  ASSERT_TRUE(QuadExact.has_value());
  EXPECT_TRUE(Quad.Value == *QuadExact);
  EXPECT_EQ(Stats.FastParseFallbacks, 1u);

  ParseResult<long double> Ext = parseFloat<long double>("3.14159e10");
  ASSERT_TRUE(Ext.ok());
  auto ExtExact = readFloat<long double>("3.14159e10");
  ASSERT_TRUE(ExtExact.has_value());
  EXPECT_EQ(Ext.Value, *ExtExact);

  // Longest-prefix semantics survive the fallback: the trailing junk is
  // not handed to the exact reader.
  ParseResult<Binary16> Junk = parseFloat<Binary16>("1.5units");
  ASSERT_TRUE(Junk.ok());
  EXPECT_EQ(Junk.Consumed, 3u);
}

TEST(ParseFloat32, FastPathAndCounters) {
  engine::EngineStats Stats;
  ParseResult<float> R = parseFloat<float>("3.14159", &Stats);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Path, ParsePath::Fast);
  EXPECT_EQ(IeeeTraits<float>::toBits(R.Value),
            IeeeTraits<float>::toBits(3.14159f));
  EXPECT_EQ(Stats.FastParseHits, 1u);

  // Float boundaries.
  EXPECT_EQ(IeeeTraits<float>::toBits(parseFloat<float>("1e-45").Value),
            uint32_t(1)); // Smallest subnormal (1.4e-45 rounds from 1e-45).
  EXPECT_TRUE(std::isinf(parseFloat<float>("3.5e38").Value));
  EXPECT_EQ(IeeeTraits<float>::toBits(parseFloat<float>("-0").Value),
            uint32_t(1) << 31);
}

} // namespace
