//===- tests/parse/parse_fuzz_test.cpp -------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three-way randomized agreement: 10,000 seeded decimal strings are fed
/// to parseFloat (fast path with certified fallback), readFloat (exact
/// bignum), and strtod (libc).  All three are correctly rounded
/// nearest-even conversions, so all three must agree bit for bit -- any
/// split identifies the culprit directly.  A malformed corpus and a
/// boundary list (subnormal edge, overflow, inf/nan, long-digit fallback
/// triggers) ride along with the same three-way check.
///
//===----------------------------------------------------------------------===//

#include "parse/parse.h"

#include "engine/stats.h"
#include "fp/ieee_traits.h"
#include "reader/reader.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

using namespace dragon4;
using namespace dragon4::parse;

namespace {

constexpr uint64_t FuzzSeed = 20260810;
constexpr int FuzzCount = 10000;

/// Same literal shape as the reader fuzz: sign, leading zeros, up to ~40
/// significant digits (past the 19-digit fast-path budget often enough to
/// exercise the truncation bracket), exponents spanning overflow and
/// underflow.
std::string randomDecimalString(SplitMix64 &Rng) {
  std::string Text;
  if (Rng.below(2))
    Text += '-';
  for (uint64_t I = Rng.below(3); I > 0; --I)
    Text += '0';
  size_t IntDigits = Rng.below(22);
  size_t FracDigits = Rng.below(22);
  if (IntDigits == 0 && FracDigits == 0)
    IntDigits = 1;
  for (size_t I = 0; I < IntDigits; ++I)
    Text += static_cast<char>('0' + Rng.below(10));
  if (FracDigits) {
    Text += '.';
    for (size_t I = 0; I < FracDigits; ++I)
      Text += static_cast<char>('0' + Rng.below(10));
  }
  switch (Rng.below(4)) {
  case 0:
    break;
  case 1:
    Text += 'e';
    Text += std::to_string(static_cast<int64_t>(Rng.below(61)) - 30);
    break;
  case 2:
    Text += "e-";
    Text += std::to_string(280 + Rng.below(60));
    break;
  default:
    Text += "e+";
    Text += std::to_string(290 + Rng.below(30));
    break;
  }
  return Text;
}

/// parseFloat vs readFloat vs strtod/strtof on a whole-string literal.
template <typename T>
void expectThreeWay(const std::string &Text, engine::EngineStats *Stats) {
  using Traits = IeeeTraits<T>;

  ParseResult<T> Fast = parseFloat<T>(Text, Stats);
  ASSERT_TRUE(Fast.ok()) << "\"" << Text << "\" rejected by parseFloat";
  ASSERT_EQ(Fast.Consumed, Text.size())
      << "\"" << Text << "\" partially consumed";

  std::optional<T> Exact = readFloat<T>(Text);
  ASSERT_TRUE(Exact.has_value()) << "\"" << Text << "\" rejected by readFloat";

  T Libc;
  if constexpr (std::is_same_v<T, double>)
    Libc = std::strtod(Text.c_str(), nullptr);
  else
    Libc = std::strtof(Text.c_str(), nullptr);

  EXPECT_EQ(Traits::toBits(Fast.Value), Traits::toBits(*Exact))
      << "\"" << Text << "\": parseFloat and readFloat disagree";
  EXPECT_EQ(Traits::toBits(*Exact), Traits::toBits(Libc))
      << "\"" << Text << "\": readFloat and libc disagree";
}

TEST(ParseFuzz, ThreeWayAgreementDouble) {
  SplitMix64 Rng(FuzzSeed);
  engine::EngineStats Stats;
  for (int Iter = 0; Iter < FuzzCount; ++Iter) {
    std::string Text = randomDecimalString(Rng);
    SCOPED_TRACE("seed " + std::to_string(FuzzSeed) + " iter " +
                 std::to_string(Iter));
    expectThreeWay<double>(Text, &Stats);
  }
  // Every call resolved one way or the other; none were malformed.
  EXPECT_EQ(Stats.FastParseHits + Stats.FastParseFallbacks,
            static_cast<uint64_t>(FuzzCount));
  EXPECT_EQ(Stats.FastParseRejected, 0u);
  // Reported for EXPERIMENTS.md: this workload deliberately generates
  // literals past the 19-digit budget, so the fallback rate here is the
  // adversarial ceiling, not the production expectation.
  std::printf("[ParseFuzz] random-literal fallback rate: %.4f%% "
              "(%llu of %d calls)\n",
              100.0 * static_cast<double>(Stats.FastParseFallbacks) /
                  FuzzCount,
              static_cast<unsigned long long>(Stats.FastParseFallbacks),
              FuzzCount);
}

TEST(ParseFuzz, ThreeWayAgreementFloat) {
  SplitMix64 Rng(FuzzSeed + 1);
  engine::EngineStats Stats;
  for (int Iter = 0; Iter < FuzzCount; ++Iter) {
    std::string Text = randomDecimalString(Rng);
    SCOPED_TRACE("seed " + std::to_string(FuzzSeed + 1) + " iter " +
                 std::to_string(Iter));
    expectThreeWay<float>(Text, &Stats);
  }
  EXPECT_EQ(Stats.FastParseHits + Stats.FastParseFallbacks,
            static_cast<uint64_t>(FuzzCount));
}

TEST(ParseFuzz, BoundaryCorpusThreeWay) {
  const char *Corpus[] = {
      // Subnormal edge, both sides of the rounding decision.
      "5e-324", "4.9406564584124654e-324", "2.470328229206232721e-324",
      "2.470328229206232720e-324", "2.4703282292062327e-324",
      "1e-323", "9.88e-324",
      // Smallest normal and its slow-converging neighbour.
      "2.2250738585072014e-308", "2.2250738585072011e-308",
      "2.2250738585072012e-308",
      // Overflow threshold: largest finite, the exact midpoint beyond it,
      // and clear overflow.
      "1.7976931348623157e308", "1.7976931348623158e308",
      "1.797693134862315808e308", "1.8e308", "1e309", "1e400",
      // Deep underflow.
      "1e-400", "-1e-400", "1e-1000",
      // Ties at the integer grid.
      "9007199254740993", "9007199254740995", "1e23", "9.109383632e-31",
      // Powers of ten across the whole table.
      "1e-342", "1e-300", "1e-100", "1e0", "1e100", "1e308",
      // Signed zeros.
      "0", "-0", "0e999", "-0.0e-999",
  };
  for (const char *Text : Corpus) {
    SCOPED_TRACE(Text);
    expectThreeWay<double>(std::string(Text), nullptr);
  }

  // Long-digit fallback triggers: 800-digit strings whose 19-digit prefix
  // brackets disagree, forcing the exact reader.
  engine::EngineStats Stats;
  std::string Long = "1.";
  Long += std::string(798, '9');
  expectThreeWay<double>(Long, &Stats);
  std::string Half = "0." + std::string(400, '0') + "5" +
                     std::string(399, '0') + "1";
  expectThreeWay<double>(Half, &Stats);
  EXPECT_EQ(Stats.FastParseHits + Stats.FastParseFallbacks, 2u);
}

TEST(ParseFuzz, InfNanSpellingsAgreeWithReader) {
  // Specials: parseFloat and readFloat agree on class and sign (libc is
  // left out -- NaN payload bits are implementation traffic).
  for (const char *Text : {"inf", "-inf", "+inf", "infinity", "-infinity",
                           "nan", "-nan", "NAN"}) {
    SCOPED_TRACE(Text);
    ParseResult<double> Fast = parseFloat<double>(Text);
    ASSERT_TRUE(Fast.ok());
    std::optional<double> Exact = readFloat<double>(Text);
    ASSERT_TRUE(Exact.has_value());
    EXPECT_EQ(classify(Fast.Value), classify(*Exact));
    // NaN is sign-canonicalized by the reader; infinities must agree.
    if (classify(Fast.Value) != FpClass::NaN)
      EXPECT_EQ(signBit(Fast.Value), signBit(*Exact));
  }
}

TEST(ParseFuzz, MalformedCorpusRejectedEverywhere) {
  // Strings neither parseFloat nor readFloat may accept.  strtod rejects
  // them too (endptr back to the start), except the whitespace-led ones:
  // strtod skips leading whitespace by contract, this parser by design
  // does not.
  for (const char *Text : {"", ".", "+", "-", "e5", ".e5", "+e5", "-.e1",
                           "abc", " 1", "\t1", "++1", "inx", "na"}) {
    SCOPED_TRACE(Text);
    EXPECT_FALSE(parseFloat<double>(Text).ok());
    EXPECT_FALSE(readFloat<double>(Text).has_value());
    if (Text[0] == ' ' || Text[0] == '\t')
      continue;
    char *End = nullptr;
    std::strtod(Text, &End);
    EXPECT_EQ(End, Text);
  }
}

} // namespace
