//===- tests/parse/parse_roundtrip_test.cpp --------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Round-trip closure: parseFloat(engine::format(v)) == v bit for bit.
/// binary16 is closed exhaustively -- every one of the 65,536 encodings is
/// printed shortest and parsed back (finite values bit-identical, specials
/// class- and sign-identical).  binary32 and binary64 are closed over
/// stratified samples (normal, subnormal, and raw-bit-pattern draws) large
/// enough to exercise every exponent regime; the binary32 full-space sweep
/// runs under tools/verify_exhaustive's parse oracle.  The double stratum
/// doubles as the fallback-rate measurement on the uniform-bits domain.
///
//===----------------------------------------------------------------------===//

#include "parse/parse.h"

#include "engine/engine.h"
#include "engine/scratch.h"
#include "engine/stats.h"
#include "fp/ieee_traits.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string_view>
#include <vector>

using namespace dragon4;
using namespace dragon4::parse;

namespace {

/// format -> parseFloat -> compare bits, charging \p Stats.
template <typename T>
void expectClosed(T Value, engine::Scratch &Scratch,
                  engine::EngineStats *Stats) {
  char Buf[64];
  size_t Len = engine::format(Value, Buf, sizeof(Buf), PrintOptions{}, Scratch);
  ASSERT_LE(Len, sizeof(Buf));
  std::string_view Text(Buf, Len);

  ParseResult<T> R = parseFloat<T>(Text, Stats);
  ASSERT_TRUE(R.ok()) << "\"" << Text << "\" rejected";
  ASSERT_EQ(R.Consumed, Len) << "\"" << Text << "\" partially consumed";

  using Traits = IeeeTraits<T>;
  FpClass Class = classify(Value);
  if (Class == FpClass::NaN) {
    // NaN payloads are not round-tripped; class and that's it.
    EXPECT_EQ(classify(R.Value), FpClass::NaN) << "\"" << Text << "\"";
    return;
  }
  EXPECT_EQ(Traits::toBits(R.Value), Traits::toBits(Value))
      << "\"" << Text << "\" -> " << std::hex << uint64_t(Traits::toBits(R.Value))
      << " want " << uint64_t(Traits::toBits(Value));
}

TEST(ParseRoundTrip, Binary16ExhaustiveClosure) {
  engine::Scratch Scratch;
  engine::EngineStats Stats;
  for (uint32_t Bits = 0; Bits <= 0xFFFF; ++Bits)
    expectClosed(Binary16::fromBits(static_cast<uint16_t>(Bits)), Scratch,
                 &Stats);
  // binary16 has no hardware fast path: everything lands on the reader.
  EXPECT_EQ(Stats.FastParseHits, 0u);
  EXPECT_EQ(Stats.FastParseFallbacks, 65536u);
  EXPECT_EQ(Stats.FastParseRejected, 0u);
}

TEST(ParseRoundTrip, Binary32StratifiedClosure) {
  engine::Scratch Scratch;
  engine::EngineStats Stats;
  constexpr size_t PerStratum = 20000;
  for (float V : randomNormalFloats(PerStratum, 0xF32A))
    expectClosed(V, Scratch, &Stats);
  for (float V : randomSubnormalFloats(PerStratum, 0xF32B))
    expectClosed(V, Scratch, &Stats);
  for (float V : randomBitsFloats(PerStratum, 0xF32C)) {
    expectClosed(V, Scratch, &Stats);
    expectClosed(-V, Scratch, &Stats);
  }
  // Shortest output never exceeds 9 significant digits for binary32, so
  // the fast path is never undecidable: zero fallbacks.
  EXPECT_EQ(Stats.FastParseFallbacks, 0u);
  EXPECT_EQ(Stats.FastParseHits, 4 * PerStratum);
}

TEST(ParseRoundTrip, Binary64StratifiedClosure) {
  engine::Scratch Scratch;
  engine::EngineStats Stats;
  constexpr size_t PerStratum = 20000;
  for (double V : randomNormalDoubles(PerStratum, 0xF64A))
    expectClosed(V, Scratch, &Stats);
  for (double V : randomSubnormalDoubles(PerStratum, 0xF64B))
    expectClosed(V, Scratch, &Stats);
  for (double V : randomBitsDoubles(PerStratum, 0xF64C)) {
    expectClosed(V, Scratch, &Stats);
    expectClosed(-V, Scratch, &Stats);
  }
  // Shortest output never exceeds 17 significant digits for binary64 --
  // under the 19-digit truncation threshold -- so zero fallbacks here too.
  EXPECT_EQ(Stats.FastParseFallbacks, 0u);
  uint64_t Calls = Stats.FastParseHits + Stats.FastParseFallbacks;
  ASSERT_EQ(Calls, 4 * PerStratum);

  // Record the observed fast-path hit rate for EXPERIMENTS.md: on the
  // uniform-bits double domain the fallback rate must stay under 1%.
  double FallbackRate = double(Stats.FastParseFallbacks) / double(Calls);
  std::printf("[ParseRoundTrip] binary64 fast-path hit rate: %.4f%% "
              "(fallback rate %.4f%%, %llu calls)\n",
              100.0 * (1.0 - FallbackRate), 100.0 * FallbackRate,
              static_cast<unsigned long long>(Calls));
  EXPECT_LT(FallbackRate, 0.01);
}

TEST(ParseRoundTrip, SpecialEncodingsClosure) {
  engine::Scratch Scratch;
  // Every sign/special combination for the hardware formats.
  const uint64_t DoubleSpecials[] = {
      0x0000000000000000ull, 0x8000000000000000ull, // +-0
      0x7FF0000000000000ull, 0xFFF0000000000000ull, // +-inf
      0x7FF8000000000000ull,                        // quiet NaN
      0x0000000000000001ull, 0x800FFFFFFFFFFFFFull, // subnormal edges
      0x7FEFFFFFFFFFFFFFull,                        // max finite
  };
  for (uint64_t Bits : DoubleSpecials)
    expectClosed(IeeeTraits<double>::fromBits(Bits), Scratch, nullptr);
  const uint32_t FloatSpecials[] = {
      0x00000000u, 0x80000000u, 0x7F800000u, 0xFF800000u,
      0x7FC00000u, 0x00000001u, 0x807FFFFFu, 0x7F7FFFFFu,
  };
  for (uint32_t Bits : FloatSpecials)
    expectClosed(IeeeTraits<float>::fromBits(Bits), Scratch, nullptr);

  // Sign propagation through the parse: -inf keeps its sign bit.
  ParseResult<double> NegInf = parseFloat<double>("-inf");
  ASSERT_TRUE(NegInf.ok());
  EXPECT_TRUE(signBit(NegInf.Value));
  EXPECT_EQ(classify(NegInf.Value), FpClass::Infinity);
}

} // namespace
