//===- tests/parse/eisel_lemire_test.cpp -----------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Eisel-Lemire core against libc: for structured (every exponent in
/// and beyond the table range crossed with boundary significands) and
/// random (w, q) pairs, the computed encoding must equal what
/// strtod/strtof produce for the literal "<w>e<q>" -- both are correctly
/// rounded nearest-even conversions, so they must agree bit for bit.
/// Known hard cases (ties, subnormal edges, binade carries, overflow)
/// are pinned explicitly.
///
//===----------------------------------------------------------------------===//

#include "parse/eisel_lemire.h"

#include "fp/ieee_traits.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace dragon4;
using namespace dragon4::parse;

namespace {

/// Encoding (sans sign) the core computed for w * 10^q.
template <typename T> typename IeeeTraits<T>::Bits elBits(int64_t Q, uint64_t W) {
  AdjustedMantissa Am = eiselLemire<T>(Q, W);
  using Bits = typename IeeeTraits<T>::Bits;
  return static_cast<Bits>(Am.Mantissa) |
         (static_cast<Bits>(Am.Power2) << IeeeTraits<T>::StoredBits);
}

/// Encoding libc computes for the same value.
template <typename T> typename IeeeTraits<T>::Bits libcBits(int64_t Q, uint64_t W) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64 "e%lld", W,
                static_cast<long long>(Q));
  if constexpr (std::is_same_v<T, double>)
    return IeeeTraits<double>::toBits(std::strtod(Buf, nullptr));
  else
    return IeeeTraits<float>::toBits(std::strtof(Buf, nullptr));
}

template <typename T> void expectAgree(int64_t Q, uint64_t W) {
  EXPECT_EQ(elBits<T>(Q, W), libcBits<T>(Q, W))
      << W << "e" << Q << " (" << (sizeof(T) == 8 ? "double" : "float") << ")";
}

TEST(EiselLemire, PinnedValues) {
  // 1.0, and the exact integer grid.
  EXPECT_EQ(elBits<double>(0, 1), IeeeTraits<double>::toBits(1.0));
  EXPECT_EQ(elBits<double>(2, 1), IeeeTraits<double>::toBits(100.0));
  EXPECT_EQ(elBits<float>(0, 1), IeeeTraits<float>::toBits(1.0f));

  // 2^53 + 1 is odd and inexpressible: nearest-even rounds down to 2^53.
  EXPECT_EQ(elBits<double>(0, 9007199254740993ull),
            IeeeTraits<double>::toBits(9007199254740992.0));
  // 2^53 + 3 rounds up to 2^53 + 4 (nearest-even again).
  EXPECT_EQ(elBits<double>(0, 9007199254740995ull),
            IeeeTraits<double>::toBits(9007199254740996.0));

  // The classic 1e23 tie: exactly between two doubles, even mantissa wins.
  EXPECT_EQ(elBits<double>(23, 1), IeeeTraits<double>::toBits(1e23));
  EXPECT_EQ(elBits<double>(22, 10), IeeeTraits<double>::toBits(1e23));

  // Smallest subnormal, and a value below its half (rounds to zero).
  EXPECT_EQ(elBits<double>(-324, 5), IeeeTraits<double>::toBits(5e-324));
  EXPECT_EQ(elBits<double>(-324, 2), 0u);
  // Largest finite double and the first overflowing literal.
  EXPECT_EQ(elBits<double>(292, 17976931348623157ull),
            IeeeTraits<double>::toBits(1.7976931348623157e308));
  EXPECT_EQ(elBits<double>(309, 1),
            IeeeTraits<double>::toBits(HUGE_VAL));

  // Decisive clamps outside the table range.
  EXPECT_EQ(eiselLemire<double>(-400, 1).Power2, 0);
  EXPECT_EQ(eiselLemire<double>(-400, 1).Mantissa, 0u);
  EXPECT_EQ(eiselLemire<double>(400, 1).Power2,
            ElParams<double>::InfinitePower);
  EXPECT_EQ(eiselLemire<float>(-66, 9999999999999999999ull).Power2, 0);
  EXPECT_EQ(eiselLemire<float>(39, 1).Power2, ElParams<float>::InfinitePower);

  // Zero significand is zero regardless of exponent.
  EXPECT_EQ(eiselLemire<double>(100, 0).Power2, 0);
  EXPECT_EQ(eiselLemire<double>(100, 0).Mantissa, 0u);
}

TEST(EiselLemire, StructuredSweepAgreesWithLibc) {
  const uint64_t Significands[] = {
      1,
      7,
      9,
      10,
      99,
      123456789,
      4503599627370495ull,     // 2^52 - 1
      4503599627370496ull,     // 2^52
      9007199254740991ull,     // 2^53 - 1
      9007199254740993ull,     // 2^53 + 1 (tie)
      9999999999999999999ull,  // Largest 19-digit significand.
      18446744073709551615ull, // 2^64 - 1 (core accepts any w < 2^64).
  };
  for (int64_t Q = -360; Q <= 330; ++Q) {
    for (uint64_t W : Significands) {
      expectAgree<double>(Q, W);
      expectAgree<float>(Q, W);
    }
  }
}

TEST(EiselLemire, RandomSweepAgreesWithLibc) {
  SplitMix64 Rng(20260809);
  for (int Iter = 0; Iter < 50000; ++Iter) {
    uint64_t W = Rng.next();
    int64_t Q = static_cast<int64_t>(Rng.below(700)) - 350;
    expectAgree<double>(Q, W);
    expectAgree<float>(Q, W % 1000000000ull + 1);
  }
}

} // namespace
