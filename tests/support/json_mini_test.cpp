//===- tests/support/json_mini_test.cpp --------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The minimal JSON reader behind obs_top and the /stats.json parse-back
// test.  It only needs to read documents this repo emits, but it must
// never misread or crash on hostile input, so the rejection cases matter
// as much as the happy path.
//
//===----------------------------------------------------------------------===//

#include "support/json_mini.h"

#include <gtest/gtest.h>

#include <string>

using namespace dragon4::support;

namespace {

TEST(JsonMini, Scalars) {
  EXPECT_TRUE(parseJson("null")->isNull());
  EXPECT_EQ(parseJson("true")->boolean(), true);
  EXPECT_EQ(parseJson("false")->boolean(), false);
  EXPECT_DOUBLE_EQ(parseJson("42")->number(), 42.0);
  EXPECT_DOUBLE_EQ(parseJson("-0.5e2")->number(), -50.0);
  EXPECT_EQ(parseJson("\"hi\"")->string(), "hi");
  EXPECT_EQ(parseJson("  \"ws\"  ")->string(), "ws");
}

TEST(JsonMini, StringEscapes) {
  EXPECT_EQ(parseJson(R"("a\\b\"c\nd\te")")->string(), "a\\b\"c\nd\te");
  EXPECT_EQ(parseJson(R"("Aé")")->string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parseJson(R"("😀")")->string(), "\xf0\x9f\x98\x80");
  // A lone surrogate decodes to U+FFFD instead of producing broken UTF-8.
  EXPECT_EQ(parseJson(R"("\ud83d")")->string(), "\xef\xbf\xbd");
}

TEST(JsonMini, NestedDocument) {
  auto Doc = parseJson(R"({
    "schema": "dragon4.stats.v1",
    "counters": {"dragon4_conversions_total": 123},
    "histograms": [{"name": "lat", "p95": 7.5}, {"name": "dig"}]
  })");
  ASSERT_TRUE(Doc.has_value());
  const JsonValue *Schema = Doc->find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->string(), "dragon4.stats.v1");
  const JsonValue *Counters = Doc->find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_DOUBLE_EQ(Counters->numberOr("dragon4_conversions_total", 0), 123.0);
  EXPECT_DOUBLE_EQ(Counters->numberOr("absent", -1), -1.0);
  const JsonValue *Hists = Doc->find("histograms");
  ASSERT_NE(Hists, nullptr);
  ASSERT_EQ(Hists->array().size(), 2u);
  EXPECT_DOUBLE_EQ(Hists->array()[0].numberOr("p95", 0), 7.5);
  EXPECT_EQ(Doc->find("missing"), nullptr);
}

TEST(JsonMini, RejectsMalformedInput) {
  EXPECT_FALSE(parseJson("").has_value());
  EXPECT_FALSE(parseJson("{").has_value());
  EXPECT_FALSE(parseJson("[1,]").has_value());
  EXPECT_FALSE(parseJson("{\"a\":}").has_value());
  EXPECT_FALSE(parseJson("\"unterminated").has_value());
  EXPECT_FALSE(parseJson("\"raw\ncontrol\"").has_value());
  EXPECT_FALSE(parseJson("01").has_value());      // Leading zero.
  EXPECT_FALSE(parseJson("1 2").has_value());     // Trailing garbage.
  EXPECT_FALSE(parseJson("nul").has_value());
  EXPECT_FALSE(parseJson("+1").has_value());
}

TEST(JsonMini, DepthLimitIsEnforced) {
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  EXPECT_FALSE(parseJson(Deep).has_value()); // 100 > MaxDepth.
  std::string Ok(30, '[');
  Ok += "1";
  Ok += std::string(30, ']');
  EXPECT_TRUE(parseJson(Ok).has_value());
}

} // namespace
