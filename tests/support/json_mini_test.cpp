//===- tests/support/json_mini_test.cpp --------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The minimal JSON reader behind obs_top and the /stats.json parse-back
// test.  It only needs to read documents this repo emits, but it must
// never misread or crash on hostile input, so the rejection cases matter
// as much as the happy path.
//
//===----------------------------------------------------------------------===//

#include "support/json_mini.h"

#include "obs/export.h"
#include "obs/registry.h"

#include <gtest/gtest.h>

#include <string>

using namespace dragon4::support;

namespace {

TEST(JsonMini, Scalars) {
  EXPECT_TRUE(parseJson("null")->isNull());
  EXPECT_EQ(parseJson("true")->boolean(), true);
  EXPECT_EQ(parseJson("false")->boolean(), false);
  EXPECT_DOUBLE_EQ(parseJson("42")->number(), 42.0);
  EXPECT_DOUBLE_EQ(parseJson("-0.5e2")->number(), -50.0);
  EXPECT_EQ(parseJson("\"hi\"")->string(), "hi");
  EXPECT_EQ(parseJson("  \"ws\"  ")->string(), "ws");
}

TEST(JsonMini, StringEscapes) {
  EXPECT_EQ(parseJson(R"("a\\b\"c\nd\te")")->string(), "a\\b\"c\nd\te");
  EXPECT_EQ(parseJson(R"("Aé")")->string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parseJson(R"("\ud83d\ude00")")->string(), "\xf0\x9f\x98\x80");
  // A lone surrogate decodes to U+FFFD instead of producing broken UTF-8.
  EXPECT_EQ(parseJson(R"("\ud83d")")->string(), "\xef\xbf\xbd");
}

TEST(JsonMini, SurrogateEscapes) {
  // Raw (unescaped) supplementary-plane UTF-8 passes through untouched.
  EXPECT_EQ(parseJson(R"("😀")")->string(), "\xf0\x9f\x98\x80");
  // Basic-plane escapes across the 1/2/3-byte UTF-8 widths.
  EXPECT_EQ(parseJson(R"("\u0041\u00e9\u20ac")")->string(),
            "A\xc3\xa9\xe2\x82\xac");
  // Lone halves (either order) decode to U+FFFD, never broken UTF-8.
  EXPECT_EQ(parseJson(R"("\ude00")")->string(), "\xef\xbf\xbd");
  EXPECT_EQ(parseJson(R"("\ud83dX")")->string(), "\xef\xbf\xbdX");
  // A high surrogate chased by a non-surrogate escape: the half becomes
  // U+FFFD and the follower survives intact.
  EXPECT_EQ(parseJson(R"("\ud83dA")")->string(), "\xef\xbf\xbd"
                                                      "A");
}

TEST(JsonMini, RejectsBadUnicodeEscapes) {
  EXPECT_FALSE(parseJson(R"("\u12")").has_value());   // Short hex run.
  EXPECT_FALSE(parseJson(R"("\u123")").has_value());
  EXPECT_FALSE(parseJson(R"("\uZZZZ")").has_value()); // Non-hex digits.
  EXPECT_FALSE(parseJson(R"("\u00G1")").has_value());
  EXPECT_FALSE(parseJson(R"("\x41")").has_value());   // Unknown escape.
}

TEST(JsonMini, ExporterOutputRoundTrips) {
  // The reader's actual job: every string the exporters emit -- including
  // escaped quotes, backslashes, and control characters -- must parse
  // back byte-identical.
  using namespace dragon4;
  obs::Snapshot Snap;
  Snap.addCounter("dragon4_conversions_total", 7);
  obs::SnapshotExemplar Ex;
  Ex.Kind = "worst";
  Ex.Format = "binary64";
  Ex.Path = "ryu";
  Ex.Bits = "0x7fefffffffffffff";
  Ex.Options = "hostile \"quote\" back\\slash \n tab\t end";
  Ex.LatencyNanos = 1234;
  Ex.DigitsEmitted = 17;
  Ex.FinalK = -3;
  Ex.TimestampNanos = 5;
  Snap.Exemplars.push_back(Ex);
  auto Doc = parseJson(obs::renderExemplarsJson(Snap));
  ASSERT_TRUE(Doc.has_value());
  const JsonValue *Records = Doc->find("records");
  ASSERT_NE(Records, nullptr);
  ASSERT_EQ(Records->array().size(), 1u);
  const JsonValue &R = Records->array()[0];
  ASSERT_NE(R.find("options"), nullptr);
  EXPECT_EQ(R.find("options")->string(), Ex.Options);
  EXPECT_EQ(R.find("bits")->string(), Ex.Bits);
  EXPECT_DOUBLE_EQ(R.numberOr("latency_ns", 0), 1234.0);
  EXPECT_DOUBLE_EQ(R.numberOr("k", 0), -3.0);

  auto Stats = parseJson(obs::renderStatsJson(Snap));
  ASSERT_TRUE(Stats.has_value());
  const JsonValue *Counters = Stats->find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_DOUBLE_EQ(Counters->numberOr("dragon4_conversions_total", 0), 7.0);
}

TEST(JsonMini, NestedDocument) {
  auto Doc = parseJson(R"({
    "schema": "dragon4.stats.v1",
    "counters": {"dragon4_conversions_total": 123},
    "histograms": [{"name": "lat", "p95": 7.5}, {"name": "dig"}]
  })");
  ASSERT_TRUE(Doc.has_value());
  const JsonValue *Schema = Doc->find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->string(), "dragon4.stats.v1");
  const JsonValue *Counters = Doc->find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_DOUBLE_EQ(Counters->numberOr("dragon4_conversions_total", 0), 123.0);
  EXPECT_DOUBLE_EQ(Counters->numberOr("absent", -1), -1.0);
  const JsonValue *Hists = Doc->find("histograms");
  ASSERT_NE(Hists, nullptr);
  ASSERT_EQ(Hists->array().size(), 2u);
  EXPECT_DOUBLE_EQ(Hists->array()[0].numberOr("p95", 0), 7.5);
  EXPECT_EQ(Doc->find("missing"), nullptr);
}

TEST(JsonMini, RejectsMalformedInput) {
  EXPECT_FALSE(parseJson("").has_value());
  EXPECT_FALSE(parseJson("{").has_value());
  EXPECT_FALSE(parseJson("[1,]").has_value());
  EXPECT_FALSE(parseJson("{\"a\":}").has_value());
  EXPECT_FALSE(parseJson("\"unterminated").has_value());
  EXPECT_FALSE(parseJson("\"raw\ncontrol\"").has_value());
  EXPECT_FALSE(parseJson("01").has_value());      // Leading zero.
  EXPECT_FALSE(parseJson("1 2").has_value());     // Trailing garbage.
  EXPECT_FALSE(parseJson("nul").has_value());
  EXPECT_FALSE(parseJson("+1").has_value());
}

TEST(JsonMini, DepthLimitIsEnforced) {
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  EXPECT_FALSE(parseJson(Deep).has_value()); // 100 > MaxDepth.
  std::string Ok(30, '[');
  Ok += "1";
  Ok += std::string(30, ']');
  EXPECT_TRUE(parseJson(Ok).has_value());
}

} // namespace
