//===- tests/reader/reader_fuzz_test.cpp -----------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized decimal-string fuzzing of the reader: 10,000 seeded strings
/// with varied digit counts, exponents, leading zeros, and signs are each
/// (1) cross-checked against strtod, (2) cross-checked against the
/// Eisel-Lemire fast parser (three-way agreement: exact reader, fast
/// parser, libc), and (3) round-tripped reader -> engine::format -> reader
/// to show the read-print-read cycle is a fixed point (the second read
/// returns the first read's bits exactly).
///
//===----------------------------------------------------------------------===//

#include "reader/reader.h"

#include "engine/engine.h"
#include "engine/scratch.h"
#include "fp/ieee_traits.h"
#include "parse/parse.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

using namespace dragon4;

namespace {

constexpr uint64_t FuzzSeed = 424242;
constexpr int FuzzCount = 10000;

/// A random decimal float literal: optional sign, leading zeros, up to ~25
/// significant digits, optional fraction, and an exponent spanning well
/// past both overflow and underflow.
std::string randomDecimalString(SplitMix64 &Rng) {
  std::string Text;
  if (Rng.below(2))
    Text += '-';
  for (uint64_t I = Rng.below(3); I > 0; --I)
    Text += '0'; // Leading zeros must not change the value.
  size_t IntDigits = Rng.below(20);
  size_t FracDigits = Rng.below(20);
  if (IntDigits == 0 && FracDigits == 0)
    IntDigits = 1;
  for (size_t I = 0; I < IntDigits; ++I)
    Text += static_cast<char>('0' + Rng.below(10));
  if (FracDigits) {
    Text += '.';
    for (size_t I = 0; I < FracDigits; ++I)
      Text += static_cast<char>('0' + Rng.below(10));
  }
  switch (Rng.below(4)) {
  case 0:
    break; // No exponent.
  case 1:   // Modest exponent.
    Text += 'e';
    Text += std::to_string(static_cast<int64_t>(Rng.below(61)) - 30);
    break;
  case 2: // Near the underflow/subnormal regime.
    Text += "e-";
    Text += std::to_string(280 + Rng.below(60));
    break;
  default: // Near and past overflow.
    Text += "e+";
    Text += std::to_string(290 + Rng.below(30));
    break;
  }
  return Text;
}

TEST(ReaderFuzz, MatchesStrtodAndStableUnderReprint) {
  SplitMix64 Rng(FuzzSeed);
  engine::Scratch Scratch;
  char Buf[64];
  for (int Iter = 0; Iter < FuzzCount; ++Iter) {
    std::string Text = randomDecimalString(Rng);

    std::optional<double> Read = readFloat<double>(Text);
    ASSERT_TRUE(Read.has_value())
        << "seed " << FuzzSeed << " iter " << Iter << ": rejected \"" << Text
        << "\"";

    // Oracle 1: the C library agrees bit-for-bit (both are correctly
    // rounded nearest-even conversions, so they must).
    double Libc = std::strtod(Text.c_str(), nullptr);
    EXPECT_EQ(IeeeTraits<double>::toBits(*Read),
              IeeeTraits<double>::toBits(Libc))
        << "seed " << FuzzSeed << " iter " << Iter << ": \"" << Text
        << "\" read as " << *Read << " but strtod says " << Libc;

    // Oracle 2: the Eisel-Lemire fast parser (with its certified exact
    // fallback) lands on the same bits -- three independent conversions,
    // one answer.
    parse::ParseResult<double> Fast = parse::parseFloat<double>(Text);
    ASSERT_TRUE(Fast.ok() && Fast.Consumed == Text.size())
        << "seed " << FuzzSeed << " iter " << Iter << ": parseFloat balked at \""
        << Text << "\"";
    EXPECT_EQ(IeeeTraits<double>::toBits(Fast.Value),
              IeeeTraits<double>::toBits(*Read))
        << "seed " << FuzzSeed << " iter " << Iter << ": \"" << Text
        << "\" splits the fast parser from the exact reader";

    // Oracle 3: print the value we read with the engine and read it back;
    // read(print(read(s))) == read(s) makes read-print a fixed point.
    if (!std::isfinite(*Read))
      continue; // engine::format emits "inf"/"nan" spellings; readFloat
                // accepts them, but overflowed literals are enough here.
    size_t Len =
        engine::format(*Read, Buf, sizeof(Buf), PrintOptions{}, Scratch);
    ASSERT_LE(Len, sizeof(Buf));
    std::optional<double> Again =
        readFloat<double>(std::string_view(Buf, Len));
    ASSERT_TRUE(Again.has_value())
        << "seed " << FuzzSeed << " iter " << Iter << ": reprint of \""
        << Text << "\" unreadable";
    EXPECT_EQ(IeeeTraits<double>::toBits(*Again),
              IeeeTraits<double>::toBits(*Read))
        << "seed " << FuzzSeed << " iter " << Iter << ": \"" << Text
        << "\" -> \"" << std::string_view(Buf, Len) << "\" not a fixed point";
  }
}

TEST(ReaderFuzz, FixedPointForFloatsToo) {
  SplitMix64 Rng(FuzzSeed + 1);
  for (int Iter = 0; Iter < 2000; ++Iter) {
    std::string Text = randomDecimalString(Rng);
    std::optional<float> Read = readFloat<float>(Text);
    ASSERT_TRUE(Read.has_value()) << "iter " << Iter << " \"" << Text << "\"";
    float Libc = std::strtof(Text.c_str(), nullptr);
    EXPECT_EQ(IeeeTraits<float>::toBits(*Read), IeeeTraits<float>::toBits(Libc))
        << "seed " << FuzzSeed + 1 << " iter " << Iter << ": \"" << Text
        << "\"";
    parse::ParseResult<float> Fast = parse::parseFloat<float>(Text);
    ASSERT_TRUE(Fast.ok() && Fast.Consumed == Text.size())
        << "iter " << Iter << " \"" << Text << "\"";
    EXPECT_EQ(IeeeTraits<float>::toBits(Fast.Value),
              IeeeTraits<float>::toBits(*Read))
        << "seed " << FuzzSeed + 1 << " iter " << Iter << ": \"" << Text
        << "\" splits the fast parser from the exact reader";
  }
}

} // namespace
