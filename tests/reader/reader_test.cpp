//===- tests/reader/reader_test.cpp -------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The correctly rounded reader: grammar, exact rounding (including the
/// classic strtod torture values), rounding modes, subnormal/overflow
/// edges, and non-decimal bases.
///
//===----------------------------------------------------------------------===//

#include "reader/reader.h"

#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace dragon4;

namespace {

double readD(std::string_view Text,
             ReadRounding Mode = ReadRounding::NearestEven) {
  auto Result = readFloat<double>(Text, 10, Mode);
  EXPECT_TRUE(Result.has_value()) << Text;
  return *Result;
}

TEST(ReaderGrammar, AcceptsCommonForms) {
  EXPECT_TRUE(readFloat<double>("1").has_value());
  EXPECT_TRUE(readFloat<double>("1.5").has_value());
  EXPECT_TRUE(readFloat<double>(".5").has_value());
  EXPECT_TRUE(readFloat<double>("5.").has_value());
  EXPECT_TRUE(readFloat<double>("-1e10").has_value());
  EXPECT_TRUE(readFloat<double>("+1E-10").has_value());
  EXPECT_TRUE(readFloat<double>("1.25e+3").has_value());
  EXPECT_TRUE(readFloat<double>("inf").has_value());
  EXPECT_TRUE(readFloat<double>("-Infinity").has_value());
  EXPECT_TRUE(readFloat<double>("NaN").has_value());
}

TEST(ReaderGrammar, RejectsMalformedText) {
  EXPECT_FALSE(readFloat<double>("").has_value());
  EXPECT_FALSE(readFloat<double>("-").has_value());
  EXPECT_FALSE(readFloat<double>(".").has_value());
  EXPECT_FALSE(readFloat<double>("e5").has_value());
  EXPECT_FALSE(readFloat<double>("1e").has_value());
  EXPECT_FALSE(readFloat<double>("1e+").has_value());
  EXPECT_FALSE(readFloat<double>("1.2.3").has_value());
  EXPECT_FALSE(readFloat<double>("12x").has_value());
  EXPECT_FALSE(readFloat<double>(" 1").has_value());
  EXPECT_FALSE(readFloat<double>("0x10").has_value());
}

TEST(Reader, ExactSmallValues) {
  EXPECT_EQ(readD("0"), 0.0);
  EXPECT_EQ(readD("1"), 1.0);
  EXPECT_EQ(readD("-1"), -1.0);
  EXPECT_EQ(readD("1.5"), 1.5);
  EXPECT_EQ(readD("0.25"), 0.25);
  EXPECT_EQ(readD("123456789"), 123456789.0);
  EXPECT_EQ(readD("1e3"), 1000.0);
  EXPECT_EQ(readD("1.25e2"), 125.0);
  EXPECT_EQ(readD("-0.0"), 0.0);
  EXPECT_TRUE(std::signbit(readD("-0.0")));
}

TEST(Reader, Specials) {
  EXPECT_TRUE(std::isinf(readD("inf")));
  EXPECT_TRUE(std::isinf(readD("-infinity")));
  EXPECT_TRUE(std::signbit(readD("-inf")));
  EXPECT_TRUE(std::isnan(readD("nan")));
}

TEST(Reader, MatchesStrtodOnRandomShortLiterals) {
  SplitMix64 Rng(404);
  for (int I = 0; I < 500; ++I) {
    // Random digit strings with random exponents in the comfortable range.
    char Buffer[64];
    uint64_t Mantissa = Rng.next() % 10000000000000000000ull;
    int Exp = static_cast<int>(Rng.below(613)) - 306;
    std::snprintf(Buffer, sizeof(Buffer), "%llue%d",
                  static_cast<unsigned long long>(Mantissa), Exp);
    double Mine = readD(Buffer);
    double Theirs = std::strtod(Buffer, nullptr);
    EXPECT_EQ(Mine, Theirs) << Buffer;
  }
}

TEST(Reader, ClassicTortureValues) {
  // Values near the midpoint of two doubles, where naive accumulation
  // misrounds (drawn from the strtod test folklore).
  EXPECT_EQ(readD("2.2250738585072011e-308"), // The famous PHP hang value.
            std::strtod("2.2250738585072011e-308", nullptr));
  EXPECT_EQ(readD("0.500000000000000166533453693773481063544750213623046875"),
            std::strtod(
                "0.500000000000000166533453693773481063544750213623046875",
                nullptr));
  EXPECT_EQ(readD("1e308"), 1e308);
  EXPECT_EQ(readD("17976931348623157e292"), 1.7976931348623157e308);
  EXPECT_EQ(readD("4.9406564584124654e-324"), 5e-324);
  EXPECT_EQ(readD("2.4703282292062327e-324"), 0.0);  // Just below half ulp.
  EXPECT_EQ(readD("2.4703282292062329e-324"), 5e-324); // Just above.
}

TEST(Reader, HalfUlpTieRoundsToEven) {
  // 1 + 2^-53 is exactly representable in decimal and is the midpoint
  // between 1.0 and nextafter(1.0): ties-to-even must give 1.0.
  EXPECT_EQ(readD("1.00000000000000011102230246251565404236316680908203125"),
            1.0);
  // The midpoint above nextafter (odd mantissa) rounds up to the even.
  double Next = std::nextafter(1.0, 2.0);
  EXPECT_EQ(
      readD("1.00000000000000033306690738754696212708950042724609375"),
      std::nextafter(Next, 2.0));
}

TEST(Reader, OverflowAndUnderflowByMode) {
  EXPECT_TRUE(std::isinf(readD("1e309")));
  EXPECT_TRUE(std::isinf(readD("1e99999")));
  EXPECT_FALSE(std::isinf(readD("1e309", ReadRounding::TowardZero)));
  EXPECT_EQ(readD("1e309", ReadRounding::TowardZero),
            std::numeric_limits<double>::max());
  EXPECT_EQ(readD("1e99999", ReadRounding::TowardNegative),
            std::numeric_limits<double>::max());
  EXPECT_TRUE(std::isinf(readD("-1e309", ReadRounding::TowardNegative)));
  EXPECT_EQ(readD("-1e309", ReadRounding::TowardPositive),
            -std::numeric_limits<double>::max());

  EXPECT_EQ(readD("1e-400"), 0.0);
  EXPECT_EQ(readD("1e-99999"), 0.0);
  EXPECT_EQ(readD("1e-400", ReadRounding::TowardPositive), 5e-324);
  EXPECT_EQ(readD("-1e-400", ReadRounding::TowardNegative), -5e-324);
  EXPECT_EQ(readD("-1e-400", ReadRounding::TowardPositive), -0.0);
  EXPECT_TRUE(std::signbit(readD("-1e-400", ReadRounding::TowardPositive)));
}

TEST(Reader, DirectedRoundingBracketsNearest) {
  SplitMix64 Rng(808);
  for (int I = 0; I < 200; ++I) {
    char Buffer[64];
    uint64_t Mantissa = Rng.next() % 1000000000000000000ull;
    int Exp = static_cast<int>(Rng.below(600)) - 300;
    std::snprintf(Buffer, sizeof(Buffer), "%llue%d",
                  static_cast<unsigned long long>(Mantissa), Exp);
    double Down = readD(Buffer, ReadRounding::TowardNegative);
    double Up = readD(Buffer, ReadRounding::TowardPositive);
    double Near = readD(Buffer);
    EXPECT_LE(Down, Near) << Buffer;
    EXPECT_LE(Near, Up) << Buffer;
    // Down and Up are equal (exact) or adjacent.
    if (Down != Up) {
      EXPECT_EQ(std::nextafter(Down, Up), Up) << Buffer;
    }
  }
}

TEST(Reader, TowardZeroTruncates) {
  EXPECT_EQ(readD("1.9999999999999999999", ReadRounding::TowardZero),
            std::nextafter(2.0, 1.0));
  EXPECT_EQ(readD("-1.9999999999999999999", ReadRounding::TowardZero),
            -std::nextafter(2.0, 1.0));
  EXPECT_EQ(readD("2.0000000000000000001", ReadRounding::TowardZero), 2.0);
}

TEST(Reader, NearestAwayDiffersOnlyOnTies) {
  EXPECT_EQ(readD("1.00000000000000011102230246251565404236316680908203125",
                  ReadRounding::NearestAway),
            std::nextafter(1.0, 2.0));
}

TEST(Reader, FloatAndHalfFormats) {
  EXPECT_EQ(*readFloat<float>("1.5"), 1.5f);
  EXPECT_EQ(*readFloat<float>("3.4028235e38"),
            std::numeric_limits<float>::max());
  EXPECT_TRUE(std::isinf(*readFloat<float>("3.5e38")));
  EXPECT_EQ(*readFloat<float>("1e-45"), std::numeric_limits<float>::denorm_min());

  EXPECT_EQ(readFloat<Binary16>("1.0")->bits(), 0x3C00);
  EXPECT_EQ(readFloat<Binary16>("65504")->bits(), 0x7BFF);
  EXPECT_EQ(readFloat<Binary16>("65520")->bits(), 0x7C00); // Tie -> inf.
  EXPECT_EQ(readFloat<Binary16>("-2")->bits(), 0xC000);
  EXPECT_EQ(readFloat<Binary16>("6e-8")->bits(), 0x0001);
}

TEST(Reader, NonDecimalBases) {
  EXPECT_EQ(*readFloat<double>("101", 2), 5.0);
  EXPECT_EQ(*readFloat<double>("0.1", 2), 0.5);
  EXPECT_EQ(*readFloat<double>("ff", 16), 255.0);
  EXPECT_EQ(*readFloat<double>("0.8", 16), 0.5);
  EXPECT_EQ(*readFloat<double>("1^3", 16), 4096.0); // 16^3 via the ^ marker.
  EXPECT_EQ(*readFloat<double>("z", 36), 35.0);
  EXPECT_EQ(*readFloat<double>("10", 8), 8.0);
  // 'e' is a digit in base 16, so "1e1" is the integer 0x1e1.
  EXPECT_EQ(*readFloat<double>("1e1", 16), 481.0);
}

TEST(Reader, ExhaustiveSubnormalFloatNeighborhood) {
  // Decimal strings straddling each of the first 50 float subnormal
  // midpoints must land on the correct side.
  for (int N = 1; N <= 50; ++N) {
    float Value = static_cast<float>(N) *
                  std::numeric_limits<float>::denorm_min();
    double Wide = static_cast<double>(Value);
    char Buffer[64];
    std::snprintf(Buffer, sizeof(Buffer), "%.20e", Wide);
    EXPECT_EQ(*readFloat<float>(Buffer), Value) << Buffer;
  }
}

TEST(ReaderFastPath, AgreesWithExactAcrossItsDomain) {
  // The Clinger fast path fires for <=53-bit significands with decimal
  // exponents in [-22, 22]; sweep that domain comparing against the
  // exact path via other rounding modes' machinery (NearestAway has no
  // fast path and differs from NearestEven only at ties, which cannot
  // occur inside the fast path's exactness conditions... so instead
  // compare against glibc, which is correctly rounded).
  SplitMix64 Rng(5555);
  for (int I = 0; I < 3000; ++I) {
    uint64_t W = Rng.next() >> (11 + Rng.below(40)); // <= 53 bits.
    int Q = static_cast<int>(Rng.below(45)) - 22;
    char Buffer[64];
    std::snprintf(Buffer, sizeof(Buffer), "%llue%d",
                  static_cast<unsigned long long>(W), Q);
    EXPECT_EQ(readD(Buffer), std::strtod(Buffer, nullptr)) << Buffer;
  }
}

TEST(ReaderFastPath, TruncatedLongDigitStringsStayExact) {
  // More than 53 bits of significand must take the exact path even when
  // the exponent is small; these are classic near-half-ulp cases.
  EXPECT_EQ(readD("9007199254740993"), 9007199254740992.0); // 2^53+1 tie.
  EXPECT_EQ(readD("9007199254740995"), 9007199254740996.0); // Tie to even.
  EXPECT_EQ(readD("10000000000000000000000.5"),
            std::strtod("10000000000000000000000.5", nullptr));
}

} // namespace
