//===- tests/obs/obs_exemplar_test.cpp ---------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The tail-latency exemplar reservoir: capture policy (first sample always
// captures, then only within the margin of the cell's high-water bucket),
// per-cell worst selection, ring bounds, shard merge, reset, and the
// snapshot attachment (series annotation + workload families + flat list).
//
//===----------------------------------------------------------------------===//

#include "obs/exemplar/exemplar.h"

#include "engine/stats.h"
#include "obs/registry.h"

#include <gtest/gtest.h>

using namespace dragon4;
using namespace dragon4::obs;
using namespace dragon4::obs::exemplar;

namespace {

ExemplarRecord record(uint64_t Bits, uint64_t LatencyNs,
                      FormatId Fmt = FormatId::Binary64,
                      PathClass P = PathClass::Ryu) {
  ExemplarRecord R;
  R.BitsLo = Bits;
  R.LatencyNanos = LatencyNs;
  R.TimestampNanos = 1000000 + LatencyNs;
  R.FinalK = -3;
  R.DigitsEmitted = 17;
  R.Fmt = Fmt;
  R.PathC = P;
  R.OptionsBase = 10;
  R.OptionsMode = packOptionsMode(1, 1); // NearestEven / RoundEven.
  return R;
}

TEST(ExemplarReservoir, FirstSampleAlwaysCaptures) {
  ExemplarReservoir Res(8);
  Res.consider(record(0x1234, 100), 1);
  EXPECT_EQ(Res.considered(), 1u);
  EXPECT_EQ(Res.captured(), 1u);
  const ExemplarRecord *W = Res.worst(FormatId::Binary64, PathClass::Ryu);
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->BitsLo, 0x1234u);
  EXPECT_TRUE(W->Valid);
}

TEST(ExemplarReservoir, MarginGatesCaptureButNotCharacterization) {
  ExemplarReservoir Res(8);
  // Establish a high-water bucket far above the follow-ups.
  Res.consider(record(0xA, 1 << 20), 1);
  // Way below the margin: considered (characterized) but not captured.
  Res.consider(record(0xB, 100), 1);
  Res.consider(record(0xC, 200), 1);
  EXPECT_EQ(Res.considered(), 3u);
  EXPECT_EQ(Res.captured(), 1u);
  EXPECT_EQ(Res.ringSize(), 1u);
  // The workload histograms saw every offer.
  EXPECT_EQ(Res.digitCount(FormatId::Binary64).count(), 3u);
  EXPECT_EQ(Res.decimalExponentMagnitude(FormatId::Binary64).count(), 3u);
  // Within one bucket of the high water: captured.
  Res.consider(record(0xD, (1 << 20) - 1000), 1);
  EXPECT_EQ(Res.captured(), 2u);
  // The worst cell still names the slowest input.
  const ExemplarRecord *W = Res.worst(FormatId::Binary64, PathClass::Ryu);
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->BitsLo, 0xAu);
}

TEST(ExemplarReservoir, CountPathCharacterizesOnly) {
  ExemplarReservoir Res(8);
  Res.consider(record(0x1, 100, FormatId::Binary32, PathClass::Count), 1);
  EXPECT_EQ(Res.considered(), 1u);
  EXPECT_EQ(Res.captured(), 0u);
  EXPECT_EQ(Res.ringSize(), 0u);
  EXPECT_EQ(Res.digitCount(FormatId::Binary32).count(), 1u);
}

TEST(ExemplarReservoir, RingIsBounded) {
  ExemplarReservoir Res(4);
  for (uint64_t I = 0; I < 10; ++I)
    Res.consider(record(I, 1000 + I), 8); // Wide margin: all capture.
  EXPECT_EQ(Res.captured(), 10u);
  EXPECT_EQ(Res.ringSize(), 4u);
  EXPECT_EQ(Res.ringCapacity(), 4u);
  // Newest first.
  EXPECT_EQ(Res.ringRecent(0).BitsLo, 9u);
  EXPECT_EQ(Res.ringRecent(3).BitsLo, 6u);
}

TEST(ExemplarReservoir, MergeKeepsWorstAndAddsHistograms) {
  ExemplarReservoir A(8), B(8);
  A.consider(record(0xAAAA, 5000), 1);
  B.consider(record(0xBBBB, 9000), 1);
  B.consider(record(0xCCCC, 100, FormatId::Binary32, PathClass::Dragon4), 1);
  A.merge(B);
  const ExemplarRecord *W = A.worst(FormatId::Binary64, PathClass::Ryu);
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->BitsLo, 0xBBBBu);
  ASSERT_NE(A.worst(FormatId::Binary32, PathClass::Dragon4), nullptr);
  EXPECT_EQ(A.considered(), 3u);
  EXPECT_EQ(A.captured(), 3u);
  EXPECT_EQ(A.digitCount(FormatId::Binary64).count(), 2u);
  EXPECT_EQ(A.ringSize(), 3u);
  // B's ring rode in after A's existing record, oldest first.
  EXPECT_EQ(A.ringRecent(0).BitsLo, 0xCCCCu);
  EXPECT_EQ(A.ringRecent(2).BitsLo, 0xAAAAu);
}

TEST(ExemplarReservoir, ResetClearsButKeepsCapacity) {
  ExemplarReservoir Res(4);
  Res.consider(record(0x1, 100), 1);
  Res.reset();
  EXPECT_EQ(Res.considered(), 0u);
  EXPECT_EQ(Res.captured(), 0u);
  EXPECT_EQ(Res.ringSize(), 0u);
  EXPECT_EQ(Res.ringCapacity(), 4u);
  EXPECT_EQ(Res.worst(FormatId::Binary64, PathClass::Ryu), nullptr);
  // And the high-water history is gone: the next sample captures again.
  Res.consider(record(0x2, 50), 1);
  EXPECT_EQ(Res.captured(), 1u);
}

TEST(ExemplarReservoir, BitsHexAndOptionsText) {
  ExemplarRecord R = record(0x3ff0000000000000, 10);
  EXPECT_EQ(R.bitsHex(), "0x3ff0000000000000");
  EXPECT_EQ(R.optionsText(), "b10:ne:even");
  R.BitsHi = 0x3fff;
  R.BitsLo = 5;
  EXPECT_EQ(R.bitsHex(), "0x0000000000003fff0000000000000005");
  R.OptionsBase = 0; // Parse side.
  EXPECT_EQ(R.optionsText(), "-");
}

TEST(ExemplarAttach, AnnotatesMatchingSeriesAndEmitsWorkloadFamilies) {
  engine::EngineStats Stats;
  Stats.Conversions = 10;
  Registry Reg;
  for (uint64_t I = 1; I <= 20; ++I)
    Reg.recordPathLatency(FormatId::Binary64, PathClass::Ryu, 100 + I);
  Reg.recordPathLatency(FormatId::Binary32, PathClass::Dragon4, 5000);

  ExemplarReservoir Res(8);
  Res.consider(record(0xDEAD, 4000), 1);

  Snapshot Snap = makeSnapshot(Stats, &Reg, &Res);

  // The binary64/ryu series is annotated; the binary32/dragon4 one (no
  // capture) is not.
  bool SawAnnotated = false;
  for (const SnapshotHistogram &H : Snap.Histograms) {
    if (H.Name != "dragon4_latency_ns")
      continue;
    bool IsRyu64 = H.Labels.size() == 2 && H.Labels[0].second == "binary64" &&
                   H.Labels[1].second == "ryu";
    EXPECT_EQ(H.HasExemplar, IsRyu64);
    if (!IsRyu64)
      continue;
    SawAnnotated = true;
    ASSERT_EQ(H.ExemplarLabels.size(), 2u);
    EXPECT_EQ(H.ExemplarLabels[0].first, "bits");
    EXPECT_EQ(H.ExemplarLabels[0].second, "0xdead");
    EXPECT_EQ(H.ExemplarLabels[1].first, "path");
    EXPECT_EQ(H.ExemplarLabels[1].second, "ryu");
    EXPECT_EQ(H.ExemplarValue, 4000.0);
    EXPECT_GT(H.ExemplarTimestamp, 0.0);
  }
  EXPECT_TRUE(SawAnnotated);

  // Workload families present for the formats that saw traffic.
  bool SawDigits = false, SawDecExp = false;
  for (const SnapshotHistogram &H : Snap.Histograms) {
    if (H.Name == "dragon4_digit_count")
      SawDigits = true;
    if (H.Name == "dragon4_decimal_exponent_mag")
      SawDecExp = true;
  }
  EXPECT_TRUE(SawDigits);
  EXPECT_TRUE(SawDecExp);

  // Counters and the flat record list ride along.
  bool SawConsidered = false;
  for (const auto &[Name, Value] : Snap.Counters)
    if (Name == "dragon4_exemplars_considered_total" && Value == 1)
      SawConsidered = true;
  EXPECT_TRUE(SawConsidered);
  ASSERT_EQ(Snap.Exemplars.size(), 2u); // One worst cell + one ring record.
  EXPECT_EQ(Snap.Exemplars[0].Kind, "worst");
  EXPECT_EQ(Snap.Exemplars[0].Bits, "0xdead");
  EXPECT_EQ(Snap.Exemplars[1].Kind, "recent");
}

TEST(ExemplarAttach, EmptyReservoirAddsNothingButCounters) {
  engine::EngineStats Stats;
  Registry Reg;
  Reg.recordPathLatency(FormatId::Binary64, PathClass::Ryu, 100);
  ExemplarReservoir Res(8);
  Snapshot Snap = makeSnapshot(Stats, &Reg, &Res);
  for (const SnapshotHistogram &H : Snap.Histograms) {
    EXPECT_FALSE(H.HasExemplar) << H.Name;
    EXPECT_NE(H.Name, "dragon4_digit_count");
    EXPECT_NE(H.Name, "dragon4_decimal_exponent_mag");
  }
  EXPECT_TRUE(Snap.Exemplars.empty());
}

} // namespace
