//===- tests/obs/obs_slo_test.cpp --------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// SLO rules over the telemetry window: the spec grammar, the evaluation
// semantics (breach, recovery, no-data-is-not-a-breach), and the exported
// gauge block every scrape carries.
//
//===----------------------------------------------------------------------===//

#include "obs/live/slo.h"

#include "obs/export.h"

#include <gtest/gtest.h>

using namespace dragon4::obs;
using namespace dragon4::obs::live;

namespace {

Snapshot latencySnap(uint64_t Count, uint64_t BaseNanos) {
  Snapshot Snap;
  Snap.addCounter("dragon4_conversions_total", Count);
  Log2Histogram H;
  for (uint64_t I = 0; I < Count; ++I)
    H.record(BaseNanos + I);
  Snap.Histograms.push_back(
      summarize("dragon4_latency_ns", H,
                {{"format", "binary64"}, {"path", "ryu"}}));
  return Snap;
}

TEST(SloParse, FullSpec) {
  std::string Err;
  auto Rule = SloSet::parse(
      "ryu64:dragon4_latency_ns{format=binary64,path=ryu}:p99:2000", &Err);
  ASSERT_TRUE(Rule.has_value()) << Err;
  EXPECT_EQ(Rule->Name, "ryu64");
  EXPECT_EQ(Rule->Family, "dragon4_latency_ns");
  ASSERT_EQ(Rule->Labels.size(), 2u);
  EXPECT_EQ(Rule->Labels[0].first, "format");
  EXPECT_EQ(Rule->Labels[0].second, "binary64");
  EXPECT_EQ(Rule->Labels[1].first, "path");
  EXPECT_EQ(Rule->Labels[1].second, "ryu");
  EXPECT_DOUBLE_EQ(Rule->Percentile, 99);
  EXPECT_DOUBLE_EQ(Rule->MaxValue, 2000);
}

TEST(SloParse, NoLabels) {
  auto Rule = SloSet::parse("lat:dragon4_latency_ns:p50:100");
  ASSERT_TRUE(Rule.has_value());
  EXPECT_TRUE(Rule->Labels.empty());
  EXPECT_DOUBLE_EQ(Rule->Percentile, 50);
}

TEST(SloParse, RejectsMalformedSpecs) {
  std::string Err;
  EXPECT_FALSE(SloSet::parse("", &Err).has_value());
  EXPECT_FALSE(SloSet::parse("nameonly", &Err).has_value());
  EXPECT_FALSE(SloSet::parse("n:fam:p99", &Err).has_value()); // No max.
  EXPECT_FALSE(SloSet::parse("n:fam:99:10", &Err).has_value()); // No 'p'.
  EXPECT_FALSE(SloSet::parse("n:fam:p97:10", &Err).has_value()); // Bad pct.
  EXPECT_FALSE(SloSet::parse("n:fam{k=v:p99:10", &Err).has_value());
  EXPECT_FALSE(SloSet::parse("n:fam{=v}:p99:10", &Err).has_value());
  EXPECT_FALSE(SloSet::parse("n:fam:p99:-5", &Err).has_value());
  EXPECT_FALSE(Err.empty());
  EXPECT_NE(Err.find("NAME:FAMILY"), std::string::npos); // Usage hint.
}

TEST(SloEvaluate, BreachAndRecovery) {
  SloSet Set;
  auto Rule = SloSet::parse(
      "ryu64:dragon4_latency_ns{format=binary64,path=ryu}:p99:1000");
  ASSERT_TRUE(Rule.has_value());
  Set.add(*Rule);

  // Window 1: all latencies far above the 1000ns ceiling -> breach.
  WindowedAggregator Agg(8);
  Agg.push(0, latencySnap(10, 1000000));
  Agg.push(1000000000ull, latencySnap(200, 1000000));
  Set.evaluate(Agg.view());
  ASSERT_EQ(Set.statuses().size(), 1u);
  EXPECT_TRUE(Set.statuses()[0].Breached);
  EXPECT_GT(Set.statuses()[0].Observed, 1000.0);
  EXPECT_EQ(Set.statuses()[0].Breaches, 1u);
  EXPECT_EQ(Set.statuses()[0].Evaluations, 1u);

  // Window 2: traffic recovered to ~100ns -> the SLO recovers with it.
  WindowedAggregator Fast(8);
  Fast.push(0, latencySnap(10, 100));
  Fast.push(1000000000ull, latencySnap(200, 100));
  Set.evaluate(Fast.view());
  EXPECT_FALSE(Set.statuses()[0].Breached);
  EXPECT_EQ(Set.statuses()[0].Breaches, 1u);
  EXPECT_EQ(Set.statuses()[0].Evaluations, 2u);
}

TEST(SloEvaluate, NoDataIsNotABreach) {
  SloSet Set;
  auto Rule = SloSet::parse("quiet:dragon4_latency_ns{path=grisu}:p99:10");
  ASSERT_TRUE(Rule.has_value());
  Set.add(*Rule);

  // The window has latency data, but none under this rule's selector.
  WindowedAggregator Agg(8);
  Agg.push(0, latencySnap(10, 1000000));
  Agg.push(1000, latencySnap(20, 1000000));
  Set.evaluate(Agg.view());
  EXPECT_FALSE(Set.statuses()[0].Breached);
  EXPECT_FALSE(Set.statuses()[0].Evaluated);
  EXPECT_EQ(Set.statuses()[0].Evaluations, 0u);

  // An invalid (still-filling) view changes nothing either.
  Set.evaluate(WindowView{});
  EXPECT_EQ(Set.statuses()[0].Evaluations, 0u);
}

TEST(SloExport, GaugeBlock) {
  SloSet Set;
  auto A = SloSet::parse("a:dragon4_latency_ns:p99:1");
  auto B = SloSet::parse("b \"x\":dragon4_latency_ns:p99:1000000000");
  ASSERT_TRUE(A.has_value());
  ASSERT_TRUE(B.has_value());
  Set.add(*A);
  Set.add(*B);
  WindowedAggregator Agg(8);
  Agg.push(0, latencySnap(10, 5000));
  Agg.push(1000000000ull, latencySnap(100, 5000));
  Set.evaluate(Agg.view());

  Snapshot Snap;
  Set.exportInto(Snap);
  auto GaugeOf = [&](const std::string &Name) -> uint64_t {
    for (const auto &[K, V] : Snap.Gauges)
      if (K == Name)
        return V;
    ADD_FAILURE() << "missing gauge " << Name;
    return ~0ull;
  };
  // Rule a (ceiling 1ns) is breached, rule b (1s) is not; note the label
  // value escaping on b's name.
  EXPECT_EQ(GaugeOf("dragon4_slo_breached{slo=\"a\"}"), 1u);
  EXPECT_EQ(GaugeOf("dragon4_slo_breached{slo=\"b \\\"x\\\"\"}"), 0u);
  // Families are contiguous in the export so the Prometheus renderer
  // emits one TYPE header per family.
  size_t FirstBreaches = std::string::npos, FirstEvals = std::string::npos;
  for (size_t I = 0; I < Snap.Counters.size(); ++I) {
    const std::string &Name = Snap.Counters[I].first;
    if (Name.rfind("dragon4_slo_breaches_total", 0) == 0 &&
        FirstBreaches == std::string::npos)
      FirstBreaches = I;
    if (Name.rfind("dragon4_slo_evaluations_total", 0) == 0 &&
        FirstEvals == std::string::npos)
      FirstEvals = I;
  }
  ASSERT_NE(FirstBreaches, std::string::npos);
  ASSERT_NE(FirstEvals, std::string::npos);
  EXPECT_EQ(FirstEvals, FirstBreaches + 2); // Both breach counters first.
  // The comparison pair rides in derived.
  bool SawObserved = false, SawThreshold = false;
  for (const auto &[K, V] : Snap.Derived) {
    if (K == "slo_observed{slo=\"a\"}") {
      SawObserved = true;
      EXPECT_GT(V, 1.0);
    }
    if (K == "slo_threshold{slo=\"a\"}") {
      SawThreshold = true;
      EXPECT_DOUBLE_EQ(V, 1.0);
    }
  }
  EXPECT_TRUE(SawObserved);
  EXPECT_TRUE(SawThreshold);
}

} // namespace
