//===- tests/obs/obs_engine_test.cpp -----------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Engine-level observability: sampled counter totals must be independent
// of the worker-thread count (the determinism contract), and the traced
// scale estimator must exhibit the paper's Section 5 claim -- the estimate
// is always the final k or k-1 -- over the entire binary16 domain.
//
// Everything here needs compiled-in trace points, so the whole file is
// gated on DRAGON4_OBS_ENABLED (the binary still builds and passes with
// DRAGON4_OBS=OFF; the tests simply vanish).
//
//===----------------------------------------------------------------------===//

#include "obs/trace.h"

#if DRAGON4_OBS_ENABLED

#include "dragon4.h"
#include "fp/binary16.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace dragon4;
namespace eng = dragon4::engine;

namespace {

/// Restores the process-global obs config on scope exit.
struct ConfigGuard {
  obs::Config Saved = obs::config();
  ~ConfigGuard() { obs::config() = Saved; }
};

/// Runs \p Values through a BatchEngine with \p Threads workers at
/// SampleEvery = 1 and returns the merged registry.
obs::Registry runBatch(const std::vector<double> &Values, unsigned Threads) {
  eng::BatchEngine<double> Engine(Threads);
  eng::StringTable Table;
  Engine.convert(Values, Table, PrintOptions{});
  return Engine.registry();
}

TEST(ObsEngine, CounterTotalsAreThreadCountInvariant) {
  ConfigGuard Guard;
  obs::config().SampleEvery = 1;
  obs::config().Trace = false;

  std::vector<double> Values = randomBitsDoubles(4000, 7);
  obs::Registry One = runBatch(Values, 1);
  obs::Registry Four = runBatch(Values, 4);

  for (size_t I = 0; I < static_cast<size_t>(obs::Counter::Count); ++I) {
    obs::Counter C = static_cast<obs::Counter>(I);
    EXPECT_EQ(One.get(C), Four.get(C)) << obs::counterName(C);
  }
  EXPECT_EQ(One.get(obs::Counter::SampledConversions), Values.size());

  // Work-derived histograms are bucket-for-bucket identical; latency is
  // wall-clock and only its sample count is deterministic.
  for (obs::Hist H : {obs::Hist::DigitsEmitted, obs::Hist::DivModLimbs,
                      obs::Hist::MulLimbs}) {
    const obs::Log2Histogram &L = One.hist(H);
    const obs::Log2Histogram &R = Four.hist(H);
    EXPECT_EQ(L.count(), R.count()) << obs::histName(H);
    EXPECT_EQ(L.sum(), R.sum()) << obs::histName(H);
    for (int B = 0; B < obs::Log2Histogram::NumBuckets; ++B)
      EXPECT_EQ(L.bucketCount(B), R.bucketCount(B))
          << obs::histName(H) << " bucket " << B;
  }
  EXPECT_EQ(One.hist(obs::Hist::LatencyNs).count(),
            Four.hist(obs::Hist::LatencyNs).count());
}

TEST(ObsEngine, SamplingRespectsSampleEvery) {
  ConfigGuard Guard;
  obs::config().SampleEvery = 4;
  std::vector<double> Values = randomBitsDoubles(1000, 3);
  obs::Registry Reg = runBatch(Values, 1);
  // One conversion in four wins the draw on the single worker.
  EXPECT_EQ(Reg.get(obs::Counter::SampledConversions), Values.size() / 4);
}

TEST(ObsEngine, SamplingOffRecordsNothing) {
  ConfigGuard Guard;
  obs::config().SampleEvery = 0;
  std::vector<double> Values = randomBitsDoubles(200, 3);
  obs::Registry Reg = runBatch(Values, 1);
  EXPECT_EQ(Reg.get(obs::Counter::SampledConversions), 0u);
  EXPECT_EQ(Reg.hist(obs::Hist::LatencyNs).count(), 0u);
}

// The paper's Section 5 invariant, observed rather than proved: over every
// finite non-zero binary16 encoding, the scale estimator's value is the
// final k or k-1 -- the fixup fires at most once and only upward.
TEST(ObsEngine, Binary16EstimatorIsAlwaysKOrKMinus1) {
  obs::ConversionTrace Trace;
  obs::ActiveTraceScope Scope(&Trace);

  uint64_t Fixups = 0, Exact = 0;
  for (uint32_t Bits = 0; Bits < 0x10000; ++Bits) {
    Binary16 H = Binary16::fromBits(static_cast<uint16_t>(Bits));
    double Wide = H.toDouble();
    if (Wide == 0.0 || std::isinf(Wide) || std::isnan(Wide))
      continue;
    Trace.reset();
    DigitString Digits = shortestDigits(H);
    ASSERT_NE(Trace.Branch, obs::ScaleBranch::None) << "bits " << Bits;
    int Delta = Trace.FinalK - Trace.EstimatedK;
    ASSERT_TRUE(Delta == 0 || Delta == 1)
        << "bits " << Bits << ": estimate " << Trace.EstimatedK
        << " vs final k " << Trace.FinalK;
    ASSERT_EQ(Trace.FixupTaken, Delta) << "bits " << Bits;
    ASSERT_EQ(Trace.FinalK, Digits.K) << "bits " << Bits;
    (Delta ? Fixups : Exact) += 1;
  }
  // Both outcomes occur across the domain (the estimator is genuinely
  // approximate, and genuinely never off by more than one).
  EXPECT_GT(Fixups, 0u);
  EXPECT_GT(Exact, 0u);
}

} // namespace

#endif // DRAGON4_OBS_ENABLED
