//===- tests/obs/obs_prometheus_test.cpp -------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Conformance of the Prometheus text exposition: the full /metrics payload
// is re-parsed line by line and checked against the format rules a real
// scraper enforces -- HELP/TYPE exactly once per family and before its
// samples, families contiguous, label values escaped, histogram buckets
// cumulative with le ascending and +Inf last, labeled _sum/_count present.
// The input snapshot is deliberately hostile: label values containing
// backslashes, quotes, and newlines.
//
//===----------------------------------------------------------------------===//

#include "obs/export.h"

#include "dragon4.h"
#include "obs/exemplar/exemplar.h"
#include "obs/registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace dragon4;
using namespace dragon4::obs;

namespace {

struct Sample {
  std::string Family; ///< Metric name with any _bucket/_sum/_count kept.
  std::vector<std::pair<std::string, std::string>> Labels; ///< Unescaped.
  double Value = 0;
};

struct Exposition {
  std::vector<std::string> HelpOrder; ///< Families in HELP order.
  std::map<std::string, std::string> Help;
  std::map<std::string, std::string> Type;
  std::vector<Sample> Samples;
};

/// Parses one escaped label value; fails the test on an invalid escape.
std::string unescapeLabelValue(const std::string &Raw, bool &Ok) {
  std::string Out;
  for (size_t I = 0; I < Raw.size(); ++I) {
    char C = Raw[I];
    if (C == '\n' || C == '"') {
      Ok = false; // Raw newline/quote inside a label value is malformed.
      return Out;
    }
    if (C != '\\') {
      Out += C;
      continue;
    }
    if (++I >= Raw.size()) {
      Ok = false;
      return Out;
    }
    char E = Raw[I];
    if (E == '\\' || E == '"')
      Out += E;
    else if (E == 'n')
      Out += '\n';
    else {
      Ok = false; // Prometheus only defines \\, \", \n in label values.
      return Out;
    }
  }
  Ok = true;
  return Out;
}

bool validMetricName(const std::string &Name) {
  if (Name.empty())
    return false;
  for (size_t I = 0; I < Name.size(); ++I) {
    char C = Name[I];
    bool Alpha = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                 C == '_' || C == ':';
    bool Digit = C >= '0' && C <= '9';
    if (!(Alpha || (Digit && I > 0)))
      return false;
  }
  return true;
}

/// Line-by-line parser of the text exposition; EXPECTs on every format
/// rule so a violation names the offending line.  Out-param (not a return
/// value) because gtest's ASSERT macros need a void function.
void parseExposition(const std::string &Text, Exposition &E) {
  size_t Pos = 0;
  ASSERT_FALSE(Text.empty());
  EXPECT_EQ(Text.back(), '\n') << "exposition must end with a newline";
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    ASSERT_NE(Eol, std::string::npos);
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    ASSERT_FALSE(Line.empty()) << "blank line in exposition";

    if (Line.rfind("# HELP ", 0) == 0 || Line.rfind("# TYPE ", 0) == 0) {
      bool IsHelp = Line[2] == 'H';
      std::string Rest = Line.substr(7);
      size_t Space = Rest.find(' ');
      ASSERT_NE(Space, std::string::npos) << Line;
      std::string Family = Rest.substr(0, Space);
      std::string Payload = Rest.substr(Space + 1);
      EXPECT_TRUE(validMetricName(Family)) << Line;
      if (IsHelp) {
        EXPECT_EQ(E.Help.count(Family), 0u)
            << "duplicate HELP for " << Family;
        EXPECT_FALSE(Payload.empty()) << "empty HELP for " << Family;
        E.Help[Family] = Payload;
        E.HelpOrder.push_back(Family);
      } else {
        EXPECT_EQ(E.Type.count(Family), 0u)
            << "duplicate TYPE for " << Family;
        EXPECT_TRUE(Payload == "counter" || Payload == "gauge" ||
                    Payload == "histogram" || Payload == "summary" ||
                    Payload == "untyped")
            << Line;
        // TYPE must follow its HELP immediately in our exporter's layout
        // (and always precede the family's samples, checked below).
        EXPECT_EQ(E.Help.count(Family), 1u)
            << "TYPE before HELP for " << Family;
        E.Type[Family] = Payload;
      }
      continue;
    }

    ASSERT_NE(Line[0], '#') << "unknown comment line: " << Line;
    Sample S;
    size_t Brace = Line.find('{');
    size_t NameEnd;
    if (Brace != std::string::npos && Brace < Line.find(' ')) {
      NameEnd = Brace;
      size_t Cursor = Brace + 1;
      while (Cursor < Line.size() && Line[Cursor] != '}') {
        size_t Eq = Line.find('=', Cursor);
        ASSERT_NE(Eq, std::string::npos) << Line;
        std::string Key = Line.substr(Cursor, Eq - Cursor);
        EXPECT_TRUE(validMetricName(Key)) << "label key in " << Line;
        ASSERT_EQ(Line[Eq + 1], '"') << Line;
        // Scan to the closing unescaped quote.
        size_t ValEnd = Eq + 2;
        while (ValEnd < Line.size() &&
               !(Line[ValEnd] == '"' && Line[ValEnd - 1] != '\\'))
          ++ValEnd;
        ASSERT_LT(ValEnd, Line.size()) << "unterminated label in " << Line;
        bool Ok = false;
        std::string Value =
            unescapeLabelValue(Line.substr(Eq + 2, ValEnd - Eq - 2), Ok);
        EXPECT_TRUE(Ok) << "bad escape in " << Line;
        S.Labels.emplace_back(std::move(Key), std::move(Value));
        Cursor = ValEnd + 1;
        if (Cursor < Line.size() && Line[Cursor] == ',')
          ++Cursor;
      }
      ASSERT_LT(Cursor, Line.size()) << Line;
      size_t Space = Cursor + 1;
      ASSERT_LT(Space, Line.size()) << Line;
      ASSERT_EQ(Line[Space], ' ') << Line;
      S.Value = std::strtod(Line.c_str() + Space + 1, nullptr);
    } else {
      size_t Space = Line.find(' ');
      ASSERT_NE(Space, std::string::npos) << Line;
      NameEnd = Space;
      S.Value = std::strtod(Line.c_str() + Space + 1, nullptr);
    }
    S.Family = Line.substr(0, NameEnd);
    EXPECT_TRUE(validMetricName(S.Family)) << Line;
    E.Samples.push_back(std::move(S));
  }
  ASSERT_FALSE(E.Samples.empty());
}

/// Strips the histogram suffixes back to the declared family name.
std::string baseFamily(const std::string &Name) {
  for (const char *Suffix : {"_bucket", "_sum", "_count"}) {
    size_t Len = std::strlen(Suffix);
    if (Name.size() > Len && Name.compare(Name.size() - Len, Len, Suffix) == 0) {
      std::string Base = Name.substr(0, Name.size() - Len);
      return Base;
    }
  }
  return Name;
}

/// A snapshot exercising every metric kind plus hostile label values.
Snapshot hostileSnapshot() {
  engine::EngineStats Stats;
  Stats.Conversions = 12345;
  Stats.RyuHits = 12000;
  Stats.FastPathHits = 300;
  Stats.FastPathFails = 45;
  Stats.Batches = 3;
  Stats.BatchValues = 12345;
  Stats.BatchNanos = 98765432;
  Stats.ArenaHighWaterBytes = 65536;

  Registry Reg;
  for (uint64_t I = 1; I <= 100; ++I)
    Reg.recordPathLatency(FormatId::Binary64, PathClass::Ryu, 500 + I);
  for (uint64_t I = 1; I <= 10; ++I)
    Reg.recordPathLatency(FormatId::Binary32, PathClass::Dragon4,
                          20000 + I * 1000);
  Snapshot Snap = makeSnapshot(Stats, &Reg);

  // Hostile series: label values with every character the escaper must
  // handle, in gauges and in a histogram.
  Snap.addGauge("dragon4_slo_breached{slo=\"back\\\\slash\"}", 1);
  Snap.addGauge("dragon4_slo_breached{slo=\"quo\\\"te\"}", 0);
  Log2Histogram Hostile;
  Hostile.record(10);
  Hostile.record(1000);
  Snap.Histograms.push_back(
      summarize("dragon4_latency_ns", Hostile,
                {{"format", "line\nbreak"}, {"path", "a\\b\"c"}}));
  return Snap;
}

TEST(PrometheusExposition, ParsesBackConformant) {
  Snapshot Snap = hostileSnapshot();
  std::string Text = renderPrometheus(Snap);
  Exposition E;
  parseExposition(Text, E);
  if (HasFatalFailure())
    return;

  // -- Every sample belongs to a declared family, typed correctly for the
  //    suffix it uses.
  for (const Sample &S : E.Samples) {
    std::string Base = baseFamily(S.Family);
    bool Suffixed = Base != S.Family;
    if (Suffixed && E.Type.count(Base) && E.Type.at(Base) == "histogram") {
      // _bucket/_sum/_count of a declared histogram: fine.
      continue;
    }
    ASSERT_EQ(E.Type.count(S.Family), 1u)
        << "sample without TYPE: " << S.Family;
    EXPECT_NE(E.Type.at(S.Family), "histogram")
        << "bare sample of a histogram family: " << S.Family;
  }

  // -- HELP and TYPE come in matched pairs.
  EXPECT_EQ(E.Help.size(), E.Type.size());
  for (const auto &[Family, Unused] : E.Help)
    EXPECT_EQ(E.Type.count(Family), 1u) << "HELP without TYPE: " << Family;

  // -- Families are contiguous: walking the samples, once a family ends
  //    it never reappears.
  std::set<std::string> Closed;
  std::string Current;
  for (const Sample &S : E.Samples) {
    std::string Base = baseFamily(S.Family);
    if (E.Type.count(Base) == 0)
      Base = S.Family;
    if (Base != Current) {
      EXPECT_EQ(Closed.count(Base), 0u)
          << "family split into two blocks: " << Base;
      if (!Current.empty())
        Closed.insert(Current);
      Current = Base;
    }
  }

  // -- The hostile label values round-trip exactly.
  bool SawBackslash = false, SawQuote = false, SawNewline = false;
  for (const Sample &S : E.Samples) {
    for (const auto &[Key, Value] : S.Labels) {
      if (Value == "back\\slash")
        SawBackslash = true;
      if (Value == "quo\"te")
        SawQuote = true;
      if (Value == "line\nbreak")
        SawNewline = true;
    }
  }
  EXPECT_TRUE(SawBackslash);
  EXPECT_TRUE(SawQuote);
  EXPECT_TRUE(SawNewline);

  // -- Histogram structure: per label-set, le ascending, counts
  //    cumulative (non-decreasing), +Inf last and equal to _count, _sum
  //    present with the same labels.
  struct HistSeries {
    std::vector<std::pair<double, double>> Buckets; ///< (le, cumulative).
    bool SawInf = false;
    double InfCount = 0, Count = -1, Sum = -1;
  };
  std::map<std::string, HistSeries> Series;
  auto KeyOf = [](const Sample &S) {
    std::string Key;
    for (const auto &[K, V] : S.Labels)
      if (K != "le") {
        Key += K;
        Key += '=';
        Key += V;
        Key += ';';
      }
    return Key;
  };
  for (const Sample &S : E.Samples) {
    std::string Base = baseFamily(S.Family);
    if (E.Type.count(Base) == 0 || E.Type.at(Base) != "histogram")
      continue;
    HistSeries &H = Series[Base + "|" + KeyOf(S)];
    if (S.Family == Base + "_sum") {
      H.Sum = S.Value;
    } else if (S.Family == Base + "_count") {
      H.Count = S.Value;
    } else {
      const std::string *Le = nullptr;
      for (const auto &[K, V] : S.Labels)
        if (K == "le")
          Le = &V;
      ASSERT_NE(Le, nullptr) << "bucket without le";
      // le must come last so every series in the family shares the
      // label prefix.
      EXPECT_EQ(S.Labels.back().first, "le");
      if (*Le == "+Inf") {
        H.SawInf = true;
        H.InfCount = S.Value;
      } else {
        H.Buckets.emplace_back(std::strtod(Le->c_str(), nullptr), S.Value);
      }
    }
  }
  EXPECT_GE(Series.size(), 3u); // Two latency cells + the hostile one.
  for (const auto &[Key, H] : Series) {
    EXPECT_TRUE(H.SawInf) << Key;
    EXPECT_GE(H.Count, 0) << Key << " missing _count";
    EXPECT_GE(H.Sum, 0) << Key << " missing _sum";
    EXPECT_EQ(H.InfCount, H.Count) << Key;
    for (size_t I = 1; I < H.Buckets.size(); ++I) {
      EXPECT_GT(H.Buckets[I].first, H.Buckets[I - 1].first) << Key;
      EXPECT_GE(H.Buckets[I].second, H.Buckets[I - 1].second)
          << Key << ": buckets must be cumulative";
    }
    if (!H.Buckets.empty()) {
      EXPECT_LE(H.Buckets.back().second, H.InfCount) << Key;
    }
  }

  // -- The known families carry real prose, not the generic fallback.
  ASSERT_EQ(E.Help.count("dragon4_conversions_total"), 1u);
  EXPECT_NE(E.Help.at("dragon4_conversions_total").find("shortest"),
            std::string::npos);
  ASSERT_EQ(E.Help.count("dragon4_latency_ns"), 1u);
  EXPECT_EQ(E.Type.at("dragon4_latency_ns"), "histogram");
}

/// Splits \p Text into lines (no trailing empties).
std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    Lines.push_back(Text.substr(Pos, Eol - Pos));
    Pos = Eol + 1;
  }
  return Lines;
}

TEST(PrometheusExposition, ExemplarAnnotationsParseBack) {
  using exemplar::ExemplarReservoir;
  engine::EngineStats Stats;
  Stats.Conversions = 100;
  Registry Reg;
  for (uint64_t I = 1; I <= 50; ++I)
    Reg.recordPathLatency(FormatId::Binary64, PathClass::Ryu, 100 + I);
  Reg.recordPathLatency(FormatId::Binary32, PathClass::Dragon4, 9000);

  ExemplarReservoir Res(8);
  exemplar::ExemplarRecord R;
  R.BitsLo = 0x7fefffffffffffff;
  R.LatencyNanos = 140;
  R.TimestampNanos = 5000000000; // 5.0 s monotonic.
  R.DigitsEmitted = 17;
  R.Fmt = FormatId::Binary64;
  R.PathC = PathClass::Ryu;
  Res.consider(R, 1);

  std::string Text = renderPrometheus(makeSnapshot(Stats, &Reg, &Res));

  // The whole payload must still parse as a conformant exposition (the
  // parser tolerates trailing exemplar text after a sample value).
  Exposition E;
  parseExposition(Text, E);
  if (HasFatalFailure())
    return;

  size_t ExemplarLines = 0;
  for (const std::string &Line : splitLines(Text)) {
    size_t Hash = Line.find(" # {");
    if (Hash == std::string::npos) {
      // A sample line without an exemplar must not leak stray " # "
      // fragments (comment lines are exempt: they start with '#').
      if (!Line.empty() && Line[0] != '#') {
        EXPECT_EQ(Line.find(" # "), std::string::npos) << Line;
      }
      continue;
    }
    ++ExemplarLines;
    // Exemplars ride bucket samples only, and only the +Inf bucket.
    EXPECT_NE(Line.find("_bucket{"), std::string::npos) << Line;
    EXPECT_NE(Line.find("le=\"+Inf\""), std::string::npos) << Line;
    // Syntax: ... # {k="v",...} VALUE TIMESTAMP
    size_t LabelEnd = Line.find('}', Hash + 4);
    ASSERT_NE(LabelEnd, std::string::npos) << Line;
    std::string Labels = Line.substr(Hash + 4, LabelEnd - Hash - 4);
    EXPECT_NE(Labels.find("bits=\"0x7fefffffffffffff\""), std::string::npos)
        << Line;
    EXPECT_NE(Labels.find("path=\"ryu\""), std::string::npos) << Line;
    // Value + timestamp trail the label set.
    double Value = 0, Ts = 0;
    ASSERT_EQ(std::sscanf(Line.c_str() + LabelEnd + 1, "%lf %lf", &Value,
                          &Ts),
              2)
        << Line;
    EXPECT_EQ(Value, 140.0);
    EXPECT_DOUBLE_EQ(Ts, 5.0);
    // The annotated series is the one the capture belongs to.
    EXPECT_NE(Line.find("format=\"binary64\""), std::string::npos) << Line;
    EXPECT_NE(Line.find("path=\"ryu\",le="), std::string::npos) << Line;
  }
  // Exactly one series captured -> exactly one exemplar line; the
  // binary32/dragon4 series (no capture) carries none.
  EXPECT_EQ(ExemplarLines, 1u);

  // And with no reservoir at all, nothing changes shape: no exemplar
  // fragments anywhere.
  std::string Plain = renderPrometheus(makeSnapshot(Stats, &Reg));
  EXPECT_EQ(Plain.find(" # {"), std::string::npos);
}

TEST(PrometheusExposition, ExemplarLabelValuesEscaped) {
  // A hostile bits/path pair never leaves the quoted exemplar label set
  // unescaped.  The reservoir itself only produces hex and path names,
  // but the escaper is shared -- prove it at this layer anyway.
  Snapshot Snap;
  engine::EngineStats Stats;
  Registry Reg;
  Reg.recordPathLatency(FormatId::Binary64, PathClass::Ryu, 100);
  Snap = makeSnapshot(Stats, &Reg);
  for (SnapshotHistogram &H : Snap.Histograms) {
    if (H.Name != "dragon4_latency_ns")
      continue;
    H.HasExemplar = true;
    H.ExemplarLabels = {{"bits", "a\"b\\c\nd"}, {"path", "ryu"}};
    H.ExemplarValue = 7;
    H.ExemplarTimestamp = 1.5;
  }
  std::string Text = renderPrometheus(Snap);
  size_t Hash = Text.find(" # {");
  ASSERT_NE(Hash, std::string::npos);
  EXPECT_NE(Text.find("bits=\"a\\\"b\\\\c\\nd\"", Hash), std::string::npos);
}

TEST(PrometheusExposition, EscapeLabelValue) {
  EXPECT_EQ(promEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(promEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(promEscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(promEscapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(promEscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PrometheusExposition, PromSeries) {
  EXPECT_EQ(promSeries("m", {}), "m");
  EXPECT_EQ(promSeries("m", {{"a", "1"}, {"b", "x\"y"}}),
            "m{a=\"1\",b=\"x\\\"y\"}");
}

} // namespace
