//===- tests/obs/obs_window_test.cpp -----------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The windowed aggregation layer under the telemetry service: delta/rate
// derivation must survive ring wraparound, counter regressions must restart
// the window (never produce a negative delta), and window totals over a
// batch workload must be invariant to the worker thread count -- the same
// property the cumulative registry already guarantees, re-proven here for
// the windowed view.
//
//===----------------------------------------------------------------------===//

#include "obs/live/window.h"

#include "dragon4.h"
#include "obs/export.h"

#include <gtest/gtest.h>

using namespace dragon4;
using namespace dragon4::obs;
using namespace dragon4::obs::live;

namespace {

/// A synthetic cumulative snapshot: one counter at \p Conversions, one
/// latency histogram holding \p HistValues.
Snapshot makeSnap(uint64_t Conversions,
                  const std::vector<uint64_t> &HistValues = {}) {
  Snapshot Snap;
  Snap.addCounter("dragon4_conversions_total", Conversions);
  Snap.addCounter("dragon4_specials_total", Conversions / 10);
  if (!HistValues.empty()) {
    Log2Histogram H;
    for (uint64_t V : HistValues)
      H.record(V);
    Snap.Histograms.push_back(
        summarize("dragon4_latency_ns", H,
                  {{"format", "binary64"}, {"path", "ryu"}}));
  }
  return Snap;
}

TEST(WindowedAggregator, NeedsTwoSamples) {
  WindowedAggregator Agg(4);
  EXPECT_FALSE(Agg.view().Valid);
  Agg.push(1000, makeSnap(10));
  EXPECT_FALSE(Agg.view().Valid);
  Agg.push(2000, makeSnap(30));
  WindowView View = Agg.view();
  ASSERT_TRUE(View.Valid);
  EXPECT_EQ(View.SpanNanos, 1000u);
  EXPECT_EQ(View.delta("dragon4_conversions_total"), 20u);
}

TEST(WindowedAggregator, DeltaAndRateMath) {
  WindowedAggregator Agg(8);
  // 1e9 ns apart: rates come out in counts per second directly.
  Agg.push(0, makeSnap(0));
  Agg.push(1000000000ull, makeSnap(500));
  Agg.push(2000000000ull, makeSnap(1500));
  WindowView View = Agg.view();
  ASSERT_TRUE(View.Valid);
  EXPECT_EQ(View.Samples, 3u);
  EXPECT_EQ(View.delta("dragon4_conversions_total"), 1500u);
  EXPECT_DOUBLE_EQ(View.rate("dragon4_conversions_total"), 750.0);
  // Absent counters read as zero, not as an error.
  EXPECT_EQ(View.delta("no_such_counter"), 0u);
  EXPECT_DOUBLE_EQ(View.rate("no_such_counter"), 0.0);
}

TEST(WindowedAggregator, RingWraparoundKeepsWindowBounded) {
  // Capacity 4; push 10 samples with the counter growing 100 per tick.
  // After wraparound the window must cover exactly the newest 4 samples:
  // delta = 3 ticks * 100.
  WindowedAggregator Agg(4);
  for (uint64_t I = 0; I < 10; ++I)
    Agg.push(I * 1000, makeSnap(I * 100));
  EXPECT_EQ(Agg.size(), 4u);
  EXPECT_EQ(Agg.capacity(), 4u);
  WindowView View = Agg.view();
  ASSERT_TRUE(View.Valid);
  EXPECT_EQ(View.Samples, 4u);
  EXPECT_EQ(View.SpanNanos, 3000u);
  EXPECT_EQ(View.delta("dragon4_conversions_total"), 300u);
  EXPECT_EQ(Agg.newest().Counters[0].second, 900u);
  EXPECT_EQ(Agg.resets(), 0u);
}

TEST(WindowedAggregator, CounterRegressionRestartsTheWindow) {
  WindowedAggregator Agg(8);
  Agg.push(0, makeSnap(1000));
  Agg.push(1000, makeSnap(2000));
  ASSERT_TRUE(Agg.view().Valid);
  // The worker pool restarted: cumulative counters fell back to near zero.
  // The ring must restart -- one sample, no (negative) delta -- and count
  // the event.
  Agg.push(2000, makeSnap(50));
  EXPECT_EQ(Agg.resets(), 1u);
  EXPECT_EQ(Agg.size(), 1u);
  EXPECT_FALSE(Agg.view().Valid);
  // The new monotone segment accumulates normally from here.
  Agg.push(3000, makeSnap(150));
  WindowView View = Agg.view();
  ASSERT_TRUE(View.Valid);
  EXPECT_EQ(View.delta("dragon4_conversions_total"), 100u);
}

TEST(WindowedAggregator, HistogramCountRegressionAlsoResets) {
  WindowedAggregator Agg(8);
  Agg.push(0, makeSnap(10, {100, 200, 300}));
  Agg.push(1000, makeSnap(20, {100, 200, 300, 400}));
  EXPECT_EQ(Agg.resets(), 0u);
  // Same counters, but the histogram shrank: still a reset.
  Agg.push(2000, makeSnap(30, {100}));
  EXPECT_EQ(Agg.resets(), 1u);
  EXPECT_EQ(Agg.size(), 1u);
}

TEST(WindowedAggregator, WindowedHistogramSubtracts) {
  WindowedAggregator Agg(8);
  // Oldest: 4 fast samples.  Newest: the same 4 plus 4 slow ones.  The
  // windowed histogram must contain only the 4 slow samples.
  std::vector<uint64_t> Old = {100, 110, 120, 130};
  std::vector<uint64_t> New = Old;
  for (uint64_t V : {100000, 110000, 120000, 130000})
    New.push_back(V);
  Agg.push(0, makeSnap(4, Old));
  Agg.push(1000000000ull, makeSnap(8, New));
  WindowView View = Agg.view();
  ASSERT_TRUE(View.Valid);
  const SnapshotHistogram *H = View.histogram(
      "dragon4_latency_ns", {{"path", "ryu"}, {"format", "binary64"}});
  ASSERT_NE(H, nullptr); // Label match is order-insensitive.
  EXPECT_EQ(H->Count, 4u);
  // All window samples live in the high buckets, so the windowed p50 must
  // sit far above the cumulative p50 (which the old fast half drags down).
  EXPECT_GE(H->P50, 65536.0);
  EXPECT_LE(H->P99, 262144.0);
}

TEST(WindowedAggregator, UnchangedHistogramDropsOut) {
  WindowedAggregator Agg(8);
  Agg.push(0, makeSnap(10, {100, 200}));
  Agg.push(1000, makeSnap(20, {100, 200}));
  WindowView View = Agg.view();
  ASSERT_TRUE(View.Valid);
  // No histogram traffic in the window: the windowed view omits the
  // family entirely (an SLO sees "no data", not "p99 = 0").
  EXPECT_EQ(View.histogram("dragon4_latency_ns"), nullptr);
}

TEST(PercentileFromBuckets, InterpolatesInsideTheBucket) {
  // 10 samples in (8, 16], nothing else: p0..p100 all land inside that
  // bucket, interpolated between the previous bound + 1 and the bound.
  std::vector<std::pair<uint64_t, uint64_t>> Buckets = {{16, 10}};
  double P50 = percentileFromBuckets(Buckets, 10, 50);
  EXPECT_GE(P50, 9.0);
  EXPECT_LE(P50, 16.0);
  double P99 = percentileFromBuckets(Buckets, 10, 99);
  EXPECT_GE(P99, P50);
  EXPECT_LE(P99, 16.0);
  EXPECT_DOUBLE_EQ(percentileFromBuckets({}, 0, 99), 0.0);
}

/// Runs the same batch workload at a given thread count with sampling on
/// and returns the windowed view over (before, after).
WindowView runBatchWindow(unsigned Threads, uint64_t &HistCount) {
  engine::BatchEngine<double> Pool(Threads);
  WindowedAggregator Agg(4);
  Agg.push(0, makeSnapshot(Pool.stats(), &Pool.registry()));
  std::vector<double> Values = randomBitsDoubles(4000, 42);
  engine::StringTable Table;
  Pool.convert(Values, Table, PrintOptions{});
  Agg.push(1000000000ull, makeSnapshot(Pool.stats(), &Pool.registry()));
  WindowView View = Agg.view();
  HistCount = 0;
  for (const SnapshotHistogram &H : View.Histograms)
    if (H.Name == "dragon4_latency_ns")
      HistCount += H.Count;
  return View;
}

TEST(WindowedAggregator, WindowTotalsAreThreadCountInvariant) {
  // Same workload, 1 worker vs 4: the windowed counter deltas and latency
  // sample totals must match exactly (sharding is an implementation
  // detail; the window is derived from merged cumulative state).
  uint32_t SavedSampleEvery = config().SampleEvery;
  config().SampleEvery = 1;
  uint64_t Hist1 = 0, Hist4 = 0;
  WindowView View1 = runBatchWindow(1, Hist1);
  WindowView View4 = runBatchWindow(4, Hist4);
  config().SampleEvery = SavedSampleEvery;

  ASSERT_TRUE(View1.Valid);
  ASSERT_TRUE(View4.Valid);
  EXPECT_EQ(View1.delta("dragon4_conversions_total"),
            View4.delta("dragon4_conversions_total"));
  EXPECT_EQ(View1.delta("dragon4_batch_values_total"),
            View4.delta("dragon4_batch_values_total"));
  EXPECT_EQ(View1.delta("dragon4_ryu_hits_total"),
            View4.delta("dragon4_ryu_hits_total"));
  // Gate on the compile-time switch, not enabled(): SampleEvery was
  // forced to 1 for the runs above but is already restored here.
  if (DRAGON4_OBS_ENABLED) {
    ASSERT_GT(Hist1, 0u); // Sampling was on: the latency grid saw traffic.
    EXPECT_EQ(Hist1, Hist4);
  } else {
    // Obs compiled out: the latency grid never fills, but the windowed
    // counter deltas above must still be thread-count invariant.
    EXPECT_EQ(Hist1, 0u);
    EXPECT_EQ(Hist4, 0u);
  }
}

} // namespace
