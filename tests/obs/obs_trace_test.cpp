//===- tests/obs/obs_trace_test.cpp ------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Flight recorder ring semantics (wraparound, dump ordering), mismatch
// retention, and exporter output parsed back with a minimal JSON reader to
// prove the documents are well-formed.
//
//===----------------------------------------------------------------------===//

#include "engine/stats.h"
#include "obs/export.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

using namespace dragon4;
using namespace dragon4::obs;

namespace {

/// Restores the process-global obs config on scope exit so tests cannot
/// leak sampling/dump settings into each other.
struct ConfigGuard {
  Config Saved = config();
  ~ConfigGuard() { config() = Saved; }
};

//===----------------------------------------------------------------------===//
// Minimal JSON reader: validates syntax and counts object keys.  Enough to
// prove exporter output parses; not a general-purpose parser.
//===----------------------------------------------------------------------===//

class JsonReader {
public:
  explicit JsonReader(const std::string &Text) : Text(Text) {}

  bool parse() {
    skipSpace();
    if (!parseValue())
      return false;
    skipSpace();
    return Pos == Text.size();
  }

  int keyCount(const std::string &Key) const { return KeyCounts(Key); }

private:
  int KeyCounts(const std::string &Key) const {
    int N = 0;
    std::string Needle = "\"" + Key + "\"";
    for (size_t At = Text.find(Needle); At != std::string::npos;
         At = Text.find(Needle, At + 1))
      ++N;
    return N;
  }

  void skipSpace() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }
  bool parseValue() {
    if (Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return parseObject();
    case '[':
      return parseArray();
    case '"':
      return parseString();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return parseNumber();
    }
  }
  bool literal(const char *Word) {
    size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }
  bool parseString() {
    ++Pos; // Opening quote.
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\')
        ++Pos;
      ++Pos;
    }
    if (Pos >= Text.size())
      return false;
    ++Pos; // Closing quote.
    return true;
  }
  bool parseNumber() {
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '-' || Text[Pos] == '+' || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E'))
      ++Pos;
    return Pos > Start;
  }
  bool parseObject() {
    ++Pos; // '{'
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"' || !parseString())
        return false;
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return false;
      ++Pos;
      skipSpace();
      if (!parseValue())
        return false;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (Pos >= Text.size() || Text[Pos] != '}')
      return false;
    ++Pos;
    return true;
  }
  bool parseArray() {
    ++Pos; // '['
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      if (!parseValue())
        return false;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (Pos >= Text.size() || Text[Pos] != ']')
      return false;
    ++Pos;
    return true;
  }

  const std::string &Text;
  size_t Pos = 0;
};

ConversionRecord makeRecord(uint64_t Bits) {
  ConversionRecord R;
  R.BitsLo = Bits;
  R.DigitsEmitted = 3;
  R.PathTaken = Path::FastPath;
  return R;
}

//===----------------------------------------------------------------------===//
// FlightRecorder
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, WraparoundKeepsNewestCapacityRecords) {
  FlightRecorder Ring(8);
  EXPECT_EQ(Ring.capacity(), 8u);
  for (uint64_t I = 0; I < 100; ++I)
    Ring.push(makeRecord(I));
  EXPECT_EQ(Ring.size(), 8u);
  EXPECT_EQ(Ring.pushed(), 100u);
  // recent(0) is the newest (seq 99), recent(7) the oldest survivor (92).
  for (size_t Age = 0; Age < 8; ++Age) {
    EXPECT_EQ(Ring.recent(Age).Seq, 99u - Age);
    EXPECT_EQ(Ring.recent(Age).BitsLo, 99u - Age);
  }
}

TEST(FlightRecorder, FillsBeforeWrapping) {
  FlightRecorder Ring(8);
  for (uint64_t I = 0; I < 5; ++I)
    Ring.push(makeRecord(I));
  EXPECT_EQ(Ring.size(), 5u);
  EXPECT_EQ(Ring.recent(0).Seq, 4u);
  EXPECT_EQ(Ring.recent(4).Seq, 0u);
}

TEST(FlightRecorder, DumpTextIsOldestFirst) {
  FlightRecorder Ring(4);
  for (uint64_t I = 0; I < 10; ++I)
    Ring.push(makeRecord(I));
  std::string Dump = Ring.dumpText();
  // Four lines, sequence 6..9 in order.
  size_t P6 = Dump.find("[6]");
  size_t P9 = Dump.find("[9]");
  ASSERT_NE(P6, std::string::npos);
  ASSERT_NE(P9, std::string::npos);
  EXPECT_LT(P6, P9);
  EXPECT_EQ(std::count(Dump.begin(), Dump.end(), '\n'), 4);
  // A bounded dump keeps the newest window, still oldest-first.
  std::string Tail = Ring.dumpText(2);
  EXPECT_EQ(std::count(Tail.begin(), Tail.end(), '\n'), 2);
  EXPECT_NE(Tail.find("[8]"), std::string::npos);
  EXPECT_NE(Tail.find("[9]"), std::string::npos);
  EXPECT_EQ(Tail.find("[7]"), std::string::npos);
}

TEST(FlightRecorder, ZeroCapacityDropsEverything) {
  FlightRecorder Ring(0);
  Ring.push(makeRecord(1));
  EXPECT_EQ(Ring.size(), 0u);
  EXPECT_EQ(Ring.pushed(), 0u);
  EXPECT_EQ(Ring.dumpText(), "");
}

TEST(ConversionRecord, LineCarriesTheKeyFields) {
  ConversionRecord R;
  R.Seq = 7;
  R.BitsLo = 0x6c04;
  R.PathTaken = Path::VerifyCheck;
  R.Branch = ScaleBranch::Estimate;
  R.EstimatedK = 3;
  R.FinalK = 4;
  R.FixupTaken = 1;
  R.DigitsEmitted = 4;
  R.Mismatch = true;
  std::string Line = R.toLine();
  EXPECT_NE(Line.find("[7]"), std::string::npos);
  EXPECT_NE(Line.find("bits=0x6c04"), std::string::npos);
  EXPECT_NE(Line.find("path=verify-check"), std::string::npos);
  EXPECT_NE(Line.find("branch=estimate"), std::string::npos);
  EXPECT_NE(Line.find("est=3"), std::string::npos);
  EXPECT_NE(Line.find("k=4"), std::string::npos);
  EXPECT_NE(Line.find("fixup=taken"), std::string::npos);
  EXPECT_NE(Line.find("MISMATCH"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ObsState mismatch retention
//===----------------------------------------------------------------------===//

TEST(ObsState, MismatchRecordsSurviveRingRecycling) {
  ConfigGuard Guard;
  config().FlightCapacity = 4;
  config().DumpOnMismatch = false; // Keep test output quiet.
  config().MismatchKeepLimit = 8;
  ObsState State;
  ConversionTrace T;
  // One mismatch, then enough passing conversions to recycle the ring.
  State.finishConversion(T, Path::VerifyCheck, FormatId::Binary64, 0xBAD, 0, 0, 100, false, true);
  for (uint64_t I = 0; I < 20; ++I)
    State.finishConversion(T, Path::VerifyCheck, FormatId::Binary64, I, 0, 0, 100, false, false);
  // The ring lost it; the kept list did not.
  bool InRing = false;
  for (size_t Age = 0; Age < State.Recorder.size(); ++Age)
    InRing |= State.Recorder.recent(Age).Mismatch;
  EXPECT_FALSE(InRing);
  ASSERT_EQ(State.MismatchKept.size(), 1u);
  EXPECT_EQ(State.MismatchKept[0].BitsLo, 0xBADu);
  EXPECT_TRUE(State.MismatchKept[0].Mismatch);
}

TEST(ObsState, MismatchKeepLimitBounds) {
  ConfigGuard Guard;
  config().FlightCapacity = 4;
  config().DumpOnMismatch = false;
  config().MismatchKeepLimit = 3;
  ObsState State;
  ConversionTrace T;
  for (uint64_t I = 0; I < 10; ++I)
    State.finishConversion(T, Path::VerifyCheck, FormatId::Binary64, I, 0, 0, 100, false, true);
  EXPECT_EQ(State.MismatchKept.size(), 3u);
  // Oldest mismatches win the bounded slots.
  EXPECT_EQ(State.MismatchKept[0].BitsLo, 0u);
  EXPECT_EQ(State.MismatchKept[2].BitsLo, 2u);
}

TEST(ObsState, DrainKeepsMismatchRecordsAndFlightHistory) {
  ConfigGuard Guard;
  config().FlightCapacity = 4;
  config().DumpOnMismatch = false;
  ObsState State;
  ConversionTrace T;
  State.finishConversion(T, Path::VerifyCheck, FormatId::Binary64, 1, 0, 0, 100, false, true);
  Registry Merged;
  std::vector<SpanEvent> Spans;
  State.drainInto(Merged, Spans);
  EXPECT_EQ(Merged.get(Counter::SampledConversions), 1u);
  EXPECT_EQ(State.Reg.get(Counter::SampledConversions), 0u); // Shard reset.
  EXPECT_EQ(State.MismatchKept.size(), 1u);                  // Context kept.
  EXPECT_EQ(State.Recorder.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Exporter parse-back
//===----------------------------------------------------------------------===//

Registry sampleRegistry() {
  Registry Reg;
  Reg.add(Counter::SampledConversions, 100);
  Reg.add(Counter::FixupTaken, 26);
  Reg.add(Counter::FixupSkipped, 74);
  Reg.setMax(Gauge::FlightDepth, 64);
  for (uint64_t V : {120u, 450u, 90000u, 0u})
    Reg.record(Hist::LatencyNs, V);
  return Reg;
}

TEST(Exporters, StatsJsonParsesBack) {
  engine::EngineStats Stats;
  Stats.Conversions = 1000;
  Stats.FastPathHits = 900;
  Stats.FastPathFails = 100;
  Stats.SlowDigitLength[16] = 80;
  Stats.SlowDigitLength[17] = 20;
  Registry Reg = sampleRegistry();
  std::string Json = renderStatsJson(makeSnapshot(Stats, &Reg));
  JsonReader Reader(Json);
  EXPECT_TRUE(Reader.parse()) << Json;
  EXPECT_NE(Json.find(StatsSchemaVersion), std::string::npos);
  EXPECT_EQ(Reader.keyCount("dragon4_conversions_total"), 1);
  EXPECT_EQ(Reader.keyCount("dragon4_scale_fixup_taken_total"), 1);
  EXPECT_EQ(Reader.keyCount("dragon4_conversion_latency_ns"), 1);
}

TEST(Exporters, ChromeTraceParsesBack) {
  std::vector<SpanEvent> Spans;
  Spans.push_back(SpanEvent{"batch", 5000, 900000, 0, 64});
  Spans.push_back(SpanEvent{"conversion", 6000, 1500, 1, 0x3ff0000000000000});
  Spans.push_back(SpanEvent{"conversion", 8000, 1100, 0, 0x6c04});
  std::string Json = renderChromeTrace(Spans);
  JsonReader Reader(Json);
  EXPECT_TRUE(Reader.parse()) << Json;
  EXPECT_EQ(Reader.keyCount("traceEvents"), 1);
  EXPECT_EQ(Reader.keyCount("ph"), 3);  // One complete event per span.
  EXPECT_EQ(Reader.keyCount("dur"), 3);
  EXPECT_EQ(Reader.keyCount("name"), 3);
  // Timestamps are normalized to the earliest span.
  EXPECT_NE(Json.find("\"ts\": 0"), std::string::npos);
}

TEST(Exporters, ChromeTraceEmptyIsValid) {
  std::string Json = renderChromeTrace({});
  JsonReader Reader(Json);
  EXPECT_TRUE(Reader.parse()) << Json;
}

TEST(Exporters, PrometheusShapeIsSound) {
  engine::EngineStats Stats;
  Stats.Conversions = 10;
  Registry Reg = sampleRegistry();
  std::string Text = renderPrometheus(makeSnapshot(Stats, &Reg));
  EXPECT_NE(Text.find("# TYPE dragon4_conversions_total counter"),
            std::string::npos);
  EXPECT_NE(Text.find("dragon4_conversions_total 10"), std::string::npos);
  EXPECT_NE(Text.find("dragon4_conversion_latency_ns_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(Text.find("dragon4_conversion_latency_ns_count 4"),
            std::string::npos);
}

} // namespace
