//===- tests/obs/obs_histogram_test.cpp --------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Log2Histogram: bucket boundary arithmetic, exact count/sum/min/max
// bookkeeping, and percentile estimates checked against a scalar reference
// over the raw samples.
//
//===----------------------------------------------------------------------===//

#include "obs/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

using dragon4::obs::Log2Histogram;

namespace {

/// Rank the percentile targets the same way the histogram does: the
/// 1-based rank ceil(P/100 * N), at least 1.
size_t percentileRank(double P, size_t N) {
  double Exact = P / 100.0 * static_cast<double>(N);
  size_t Rank = static_cast<size_t>(Exact);
  if (static_cast<double>(Rank) < Exact)
    ++Rank;
  return Rank == 0 ? 1 : Rank;
}

/// Exact value at percentile \p P of \p Samples (sorted copy, rank walk).
uint64_t referencePercentile(double P, std::vector<uint64_t> Samples) {
  std::sort(Samples.begin(), Samples.end());
  return Samples[percentileRank(P, Samples.size()) - 1];
}

TEST(Log2Histogram, BucketIndexBoundaries) {
  EXPECT_EQ(Log2Histogram::bucketIndex(0), 0);
  EXPECT_EQ(Log2Histogram::bucketIndex(1), 1);
  EXPECT_EQ(Log2Histogram::bucketIndex(2), 2);
  EXPECT_EQ(Log2Histogram::bucketIndex(3), 2);
  EXPECT_EQ(Log2Histogram::bucketIndex(4), 3);
  EXPECT_EQ(Log2Histogram::bucketIndex(UINT64_MAX), 64);
  for (int Shift = 1; Shift < 64; ++Shift) {
    uint64_t Pow = uint64_t(1) << Shift;
    // 2^s opens bucket s+1; 2^s - 1 closes bucket s.
    EXPECT_EQ(Log2Histogram::bucketIndex(Pow), Shift + 1) << "2^" << Shift;
    EXPECT_EQ(Log2Histogram::bucketIndex(Pow - 1), Shift) << "2^" << Shift;
  }
}

TEST(Log2Histogram, BucketBoundsContainTheirValues) {
  EXPECT_EQ(Log2Histogram::bucketHigh(0), 0u);
  EXPECT_EQ(Log2Histogram::bucketHigh(64), UINT64_MAX);
  const uint64_t Probes[] = {0,  1,  2,   3,   4,     7,          8,
                             15, 42, 100, 255, 1u << 20, UINT64_MAX};
  for (uint64_t V : Probes) {
    int I = Log2Histogram::bucketIndex(V);
    EXPECT_LE(Log2Histogram::bucketLow(I), V) << V;
    EXPECT_GE(Log2Histogram::bucketHigh(I), V) << V;
    if (V > 0)
      EXPECT_LT(Log2Histogram::bucketHigh(I - 1), V) << V;
  }
}

TEST(Log2Histogram, ExactBookkeeping) {
  Log2Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  const uint64_t Samples[] = {17, 3, 0, 250, 3, 99};
  uint64_t Sum = 0;
  for (uint64_t V : Samples) {
    H.record(V);
    Sum += V;
  }
  EXPECT_EQ(H.count(), 6u);
  EXPECT_EQ(H.sum(), Sum);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 250u);
  EXPECT_EQ(H.bucketCount(0), 1u); // The zero sample.
  EXPECT_EQ(H.bucketCount(2), 2u); // Both 3s.
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.bucketCount(2), 0u);
}

TEST(Log2Histogram, PercentileIdenticalSamplesIsExact) {
  // Every sample equal: clamping to the observed range makes every
  // percentile exact regardless of the bucket's width.
  Log2Histogram H;
  for (int I = 0; I < 1000; ++I)
    H.record(42);
  for (double P : {1.0, 50.0, 90.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(H.percentile(P), 42.0) << "p" << P;
}

TEST(Log2Histogram, PercentileSingleValueBucketsAreExact) {
  // One distinct value per bucket (powers of two >= 4, whose bucketLow is
  // the value itself): the rank walk plus interpolation must return the
  // exact sorted-rank sample.
  std::vector<uint64_t> Samples;
  for (int Shift = 2; Shift <= 40; ++Shift)
    Samples.push_back(uint64_t(1) << Shift);
  Log2Histogram H;
  for (uint64_t V : Samples)
    H.record(V);
  for (double P : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0})
    EXPECT_DOUBLE_EQ(H.percentile(P),
                     static_cast<double>(referencePercentile(P, Samples)))
        << "p" << P;
}

TEST(Log2Histogram, PercentileLandsInTheReferenceBucket) {
  // Arbitrary mixed samples: the estimate must sit inside the bucket that
  // contains the exact rank-selected sample (the log2 resolution bound).
  std::vector<uint64_t> Samples;
  uint64_t X = 12345;
  for (int I = 0; I < 500; ++I) {
    X = X * 2862933555777941757ull + 3037000493ull; // SplitMix-ish LCG.
    Samples.push_back(X >> (X % 50));               // Spread across buckets.
  }
  Log2Histogram H;
  for (uint64_t V : Samples)
    H.record(V);
  for (double P : {5.0, 50.0, 90.0, 99.0}) {
    uint64_t Ref = referencePercentile(P, Samples);
    int Bucket = Log2Histogram::bucketIndex(Ref);
    double Est = H.percentile(P);
    EXPECT_GE(Est, static_cast<double>(Log2Histogram::bucketLow(Bucket)))
        << "p" << P;
    EXPECT_LE(Est, static_cast<double>(Log2Histogram::bucketHigh(Bucket)))
        << "p" << P;
  }
}

TEST(Log2Histogram, PercentileEdgeCases) {
  Log2Histogram Empty;
  EXPECT_DOUBLE_EQ(Empty.percentile(50), 0.0);
  Log2Histogram H;
  H.record(7);
  H.record(900);
  EXPECT_DOUBLE_EQ(H.percentile(0), 7.0);    // p0 is the min.
  EXPECT_DOUBLE_EQ(H.percentile(100), 900.0); // p100 is the max.
}

TEST(Log2Histogram, MergeMatchesCombinedRecording) {
  Log2Histogram A, B, Combined;
  for (uint64_t V : {1u, 5u, 800u, 0u}) {
    A.record(V);
    Combined.record(V);
  }
  for (uint64_t V : {3u, 3u, 1000000u}) {
    B.record(V);
    Combined.record(V);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), Combined.count());
  EXPECT_EQ(A.sum(), Combined.sum());
  EXPECT_EQ(A.min(), Combined.min());
  EXPECT_EQ(A.max(), Combined.max());
  for (int I = 0; I < Log2Histogram::NumBuckets; ++I)
    EXPECT_EQ(A.bucketCount(I), Combined.bucketCount(I)) << "bucket " << I;
  // Merging an empty histogram is the identity.
  Log2Histogram Zero;
  A.merge(Zero);
  EXPECT_EQ(A.count(), Combined.count());
  EXPECT_EQ(A.min(), Combined.min());
}

} // namespace
