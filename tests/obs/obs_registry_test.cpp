//===- tests/obs/obs_registry_test.cpp ---------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Registry shard merging: the batch layer merges per-worker shards in
// whatever order scheduling produced, so merge must be commutative and
// associative -- totals may never depend on shard order.
//
//===----------------------------------------------------------------------===//

#include "obs/registry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using namespace dragon4::obs;

namespace {

/// Deterministically populates a shard from a seed, touching every metric
/// kind (counters, the max-merged gauge, histograms).
Registry makeShard(uint64_t Seed) {
  Registry R;
  uint64_t X = Seed * 2654435761u + 1;
  for (size_t I = 0; I < static_cast<size_t>(Counter::Count); ++I) {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    R.add(static_cast<Counter>(I), X % 1000);
  }
  R.setMax(Gauge::FlightDepth, Seed * 13 % 97);
  for (size_t I = 0; I < static_cast<size_t>(Hist::Count); ++I)
    for (int N = 0; N < 40; ++N) {
      X = X * 6364136223846793005ull + 1442695040888963407ull;
      R.record(static_cast<Hist>(I), X >> (X % 56));
    }
  return R;
}

void expectEqual(const Registry &L, const Registry &R) {
  for (size_t I = 0; I < static_cast<size_t>(Counter::Count); ++I)
    EXPECT_EQ(L.get(static_cast<Counter>(I)), R.get(static_cast<Counter>(I)))
        << counterName(static_cast<Counter>(I));
  for (size_t I = 0; I < static_cast<size_t>(Gauge::Count); ++I)
    EXPECT_EQ(L.get(static_cast<Gauge>(I)), R.get(static_cast<Gauge>(I)))
        << gaugeName(static_cast<Gauge>(I));
  for (size_t I = 0; I < static_cast<size_t>(Hist::Count); ++I) {
    const Log2Histogram &LH = L.hist(static_cast<Hist>(I));
    const Log2Histogram &RH = R.hist(static_cast<Hist>(I));
    EXPECT_EQ(LH.count(), RH.count()) << histName(static_cast<Hist>(I));
    EXPECT_EQ(LH.sum(), RH.sum());
    EXPECT_EQ(LH.min(), RH.min());
    EXPECT_EQ(LH.max(), RH.max());
    for (int B = 0; B < Log2Histogram::NumBuckets; ++B)
      EXPECT_EQ(LH.bucketCount(B), RH.bucketCount(B))
          << histName(static_cast<Hist>(I)) << " bucket " << B;
  }
}

TEST(Registry, MergeIsCommutative) {
  Registry AB = makeShard(1);
  AB.merge(makeShard(2));
  Registry BA = makeShard(2);
  BA.merge(makeShard(1));
  expectEqual(AB, BA);
}

TEST(Registry, MergeIsAssociativeAcrossShardOrders) {
  // Every join order a 3-worker pool could produce.
  const int Orders[][3] = {{1, 2, 3}, {1, 3, 2}, {2, 1, 3},
                           {2, 3, 1}, {3, 1, 2}, {3, 2, 1}};
  Registry Reference = makeShard(Orders[0][0]);
  Reference.merge(makeShard(Orders[0][1]));
  Reference.merge(makeShard(Orders[0][2]));
  for (const auto &Order : Orders) {
    Registry Merged = makeShard(Order[0]);
    Merged.merge(makeShard(Order[1]));
    Merged.merge(makeShard(Order[2]));
    expectEqual(Merged, Reference);
  }
  // Right-associated grouping: A + (B + C).
  Registry BC = makeShard(2);
  BC.merge(makeShard(3));
  Registry Right = makeShard(1);
  Right.merge(BC);
  expectEqual(Right, Reference);
}

TEST(Registry, MergeEmptyIsIdentity) {
  Registry A = makeShard(5);
  Registry Reference = makeShard(5);
  A.merge(Registry());
  expectEqual(A, Reference);
  Registry Empty;
  Empty.merge(makeShard(5));
  expectEqual(Empty, Reference);
}

TEST(Registry, GaugesMergeByMax) {
  Registry A, B;
  A.setMax(Gauge::FlightDepth, 10);
  B.setMax(Gauge::FlightDepth, 40);
  A.merge(B);
  EXPECT_EQ(A.get(Gauge::FlightDepth), 40u);
  B.merge(A);
  EXPECT_EQ(B.get(Gauge::FlightDepth), 40u);
}

TEST(Registry, ResetClearsEverything) {
  Registry A = makeShard(9);
  A.reset();
  expectEqual(A, Registry());
}

} // namespace
