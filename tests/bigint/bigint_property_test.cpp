//===- tests/bigint/bigint_property_test.cpp -------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized algebraic properties of BigInt.  Every case is driven by a
/// fixed seed (printed on failure, so a regression reproduces by pasting
/// the seed into SplitMix64) and checks identities rather than golden
/// values: (a+b)-b == a, divMod reconstruction, and the Karatsuba
/// multiplier cross-checked against an independent shift-and-add product
/// that never enters bigint_mul.cpp's recursive path.
///
//===----------------------------------------------------------------------===//

#include "bigint/bigint.h"

#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

constexpr uint64_t PropertySeed = 20260806;

/// A random non-negative BigInt of roughly \p Limbs32 32-bit limbs.
BigInt randomBig(SplitMix64 &Rng, size_t Limbs32) {
  BigInt Value;
  for (size_t I = 0; I * 2 < Limbs32; ++I) {
    Value <<= 64;
    Value += BigInt(Rng.next());
  }
  return Value;
}

/// Independent product: classic binary shift-and-add over the bits of B.
/// Deliberately naive -- it exercises only addition and shifting, so a bug
/// in the schoolbook/Karatsuba multipliers cannot hide in the oracle.
BigInt shiftAddProduct(const BigInt &A, const BigInt &B) {
  BigInt Product;
  for (size_t Bit = B.bitLength(); Bit-- > 0;) {
    Product <<= 1;
    if (B.testBit(Bit))
      Product += A;
  }
  return Product;
}

TEST(BigIntProperty, AddSubRoundTrip) {
  SplitMix64 Rng(PropertySeed);
  for (int Iter = 0; Iter < 200; ++Iter) {
    size_t LimbsA = 1 + Rng.below(40);
    size_t LimbsB = 1 + Rng.below(40);
    BigInt A = randomBig(Rng, LimbsA);
    BigInt B = randomBig(Rng, LimbsB);
    EXPECT_EQ((A + B) - B, A) << "seed " << PropertySeed << " iter " << Iter;
    EXPECT_EQ((A - B) + B, A) << "seed " << PropertySeed << " iter " << Iter;
    EXPECT_EQ(A + B, B + A) << "seed " << PropertySeed << " iter " << Iter;
    // Subtraction through zero exercises the sign-flip path.
    EXPECT_EQ((B - A) + A, B) << "seed " << PropertySeed << " iter " << Iter;
  }
}

TEST(BigIntProperty, DivModReconstruction) {
  SplitMix64 Rng(PropertySeed + 1);
  for (int Iter = 0; Iter < 200; ++Iter) {
    BigInt N = randomBig(Rng, 2 + Rng.below(40));
    BigInt D = randomBig(Rng, 1 + Rng.below(20));
    if (D.isZero())
      D = BigInt(uint64_t(1) + Rng.next() % 1000);
    BigInt Q, R;
    BigInt::divMod(N, D, Q, R);
    EXPECT_EQ(Q * D + R, N) << "seed " << PropertySeed + 1 << " iter " << Iter;
    EXPECT_FALSE(R.isNegative())
        << "seed " << PropertySeed + 1 << " iter " << Iter;
    EXPECT_LT(R, D) << "seed " << PropertySeed + 1 << " iter " << Iter;
    // The operator forms agree with the combined primitive.
    EXPECT_EQ(N / D, Q) << "seed " << PropertySeed + 1 << " iter " << Iter;
    EXPECT_EQ(N % D, R) << "seed " << PropertySeed + 1 << " iter " << Iter;
  }
}

TEST(BigIntProperty, MulMatchesShiftAddOracle) {
  SplitMix64 Rng(PropertySeed + 2);
  for (int Iter = 0; Iter < 40; ++Iter) {
    // Mixed sizes around the Karatsuba threshold (24 limbs): both the
    // schoolbook regime and at least one genuinely recursive level.
    size_t LimbsA = 1 + Rng.below(70);
    size_t LimbsB = 1 + Rng.below(70);
    BigInt A = randomBig(Rng, LimbsA);
    BigInt B = randomBig(Rng, LimbsB);
    EXPECT_EQ(A * B, shiftAddProduct(A, B))
        << "seed " << PropertySeed + 2 << " iter " << Iter << " limbs "
        << LimbsA << "x" << LimbsB;
  }
}

TEST(BigIntProperty, KaratsubaAgreesWithSchoolbookSplit) {
  // Force deep Karatsuba recursion: ~100 32-bit limbs per operand is four
  // levels above the threshold.  The oracle splits A in half and uses two
  // smaller (schoolbook-or-shallower) products: A*B == Hi*B<<k + Lo*B.
  SplitMix64 Rng(PropertySeed + 3);
  for (int Iter = 0; Iter < 20; ++Iter) {
    BigInt A = randomBig(Rng, 100);
    BigInt B = randomBig(Rng, 100);
    size_t SplitBits = (A.bitLength() / 2) & ~size_t(63);
    BigInt Lo = A;
    BigInt Hi = A >> SplitBits;
    Lo -= Hi << SplitBits;
    EXPECT_EQ(A * B, ((Hi * B) << SplitBits) + Lo * B)
        << "seed " << PropertySeed + 3 << " iter " << Iter;
  }
}

TEST(BigIntProperty, MulIdentitiesAndDistributivity) {
  SplitMix64 Rng(PropertySeed + 4);
  BigInt One(uint64_t(1));
  for (int Iter = 0; Iter < 50; ++Iter) {
    BigInt A = randomBig(Rng, 1 + Rng.below(50));
    BigInt B = randomBig(Rng, 1 + Rng.below(50));
    BigInt C = randomBig(Rng, 1 + Rng.below(50));
    EXPECT_EQ(A * One, A) << "seed " << PropertySeed + 4 << " iter " << Iter;
    EXPECT_EQ(A * BigInt(), BigInt())
        << "seed " << PropertySeed + 4 << " iter " << Iter;
    EXPECT_EQ(A * B, B * A) << "seed " << PropertySeed + 4 << " iter " << Iter;
    EXPECT_EQ(A * (B + C), A * B + A * C)
        << "seed " << PropertySeed + 4 << " iter " << Iter;
  }
}

} // namespace
