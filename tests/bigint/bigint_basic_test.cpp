//===- tests/bigint/bigint_basic_test.cpp ----------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Construction, comparison, addition/subtraction, shifts, and the small
/// scalar operations of BigInt.
///
//===----------------------------------------------------------------------===//

#include "bigint/bigint.h"

#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

TEST(BigIntBasic, DefaultIsZero) {
  BigInt Zero;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_FALSE(Zero.isNegative());
  EXPECT_TRUE(Zero.isEven());
  EXPECT_EQ(Zero.bitLength(), 0u);
  EXPECT_EQ(Zero.toString(), "0");
}

TEST(BigIntBasic, ConstructFromUint64) {
  EXPECT_EQ(BigInt(uint64_t(0)).toString(), "0");
  EXPECT_EQ(BigInt(uint64_t(1)).toString(), "1");
  EXPECT_EQ(BigInt(uint64_t(0xFFFFFFFFull)).toString(), "4294967295");
  EXPECT_EQ(BigInt(uint64_t(0x100000000ull)).toString(), "4294967296");
  EXPECT_EQ(BigInt(~uint64_t(0)).toString(), "18446744073709551615");
}

TEST(BigIntBasic, ConstructFromInt64) {
  EXPECT_EQ(BigInt(int64_t(-1)).toString(), "-1");
  EXPECT_EQ(BigInt(int64_t(-42)).toString(), "-42");
  EXPECT_EQ(BigInt(INT64_MIN).toString(), "-9223372036854775808");
  EXPECT_EQ(BigInt(INT64_MAX).toString(), "9223372036854775807");
  EXPECT_FALSE(BigInt(int64_t(0)).isNegative());
}

TEST(BigIntBasic, ToUint64RoundTrip) {
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(0xFFFFFFFF),
                     uint64_t(1) << 52, ~uint64_t(0)}) {
    EXPECT_EQ(BigInt(V).toUint64(), V);
  }
}

TEST(BigIntBasic, CompareOrdersBySignThenMagnitude) {
  BigInt MinusTwo(int64_t(-2));
  BigInt MinusOne(int64_t(-1));
  BigInt Zero;
  BigInt One(uint64_t(1));
  BigInt Big = BigInt::fromString("123456789123456789123456789");

  EXPECT_LT(MinusTwo, MinusOne);
  EXPECT_LT(MinusOne, Zero);
  EXPECT_LT(Zero, One);
  EXPECT_LT(One, Big);
  EXPECT_GT(Big, MinusTwo);
  EXPECT_EQ(One, BigInt(uint64_t(1)));
  EXPECT_NE(One, Zero);
  EXPECT_LE(One, One);
  EXPECT_GE(Zero, Zero);
}

TEST(BigIntBasic, AdditionCarriesAcrossLimbs) {
  BigInt A(uint64_t(0xFFFFFFFFFFFFFFFFull));
  BigInt One(uint64_t(1));
  EXPECT_EQ((A + One).toString(), "18446744073709551616");
  EXPECT_EQ((A + A).toString(), "36893488147419103230");
}

TEST(BigIntBasic, SubtractionBorrowsAcrossLimbs) {
  BigInt A = BigInt::fromString("18446744073709551616"); // 2^64
  BigInt One(uint64_t(1));
  EXPECT_EQ((A - One).toString(), "18446744073709551615");
  EXPECT_EQ((One - A).toString(), "-18446744073709551615");
  EXPECT_TRUE((A - A).isZero());
}

TEST(BigIntBasic, MixedSignAdditionReducesToSubtraction) {
  BigInt A(int64_t(100));
  BigInt B(int64_t(-30));
  EXPECT_EQ((A + B).toString(), "70");
  EXPECT_EQ((B + A).toString(), "70");
  EXPECT_EQ((A - B).toString(), "130");
  EXPECT_EQ((B - A).toString(), "-130");
  BigInt C(int64_t(-100));
  EXPECT_EQ((C + A).toString(), "0");
  EXPECT_EQ((C - B).toString(), "-70");
}

TEST(BigIntBasic, NegateFlipsSignButNotZero) {
  BigInt A(uint64_t(5));
  A.negate();
  EXPECT_EQ(A.toString(), "-5");
  A.negate();
  EXPECT_EQ(A.toString(), "5");
  BigInt Zero;
  Zero.negate();
  EXPECT_FALSE(Zero.isNegative());
}

TEST(BigIntBasic, ShiftLeftMatchesMultiplicationByPowersOfTwo) {
  BigInt One(uint64_t(1));
  EXPECT_EQ((One << 0).toString(), "1");
  EXPECT_EQ((One << 1).toString(), "2");
  EXPECT_EQ((One << 32).toString(), "4294967296");
  EXPECT_EQ((One << 64).toString(), "18446744073709551616");
  EXPECT_EQ((One << 100).bitLength(), 101u);
  BigInt V(uint64_t(0xDEADBEEF));
  EXPECT_EQ((V << 37) >> 37, V);
}

TEST(BigIntBasic, ShiftRightDropsLowBits) {
  BigInt V = BigInt::fromString("1000000000000000000000000000000");
  EXPECT_EQ(((V << 200) >> 200), V);
  EXPECT_TRUE((BigInt(uint64_t(1)) >> 1).isZero());
  EXPECT_TRUE((V >> 5000).isZero());
  EXPECT_EQ((BigInt(uint64_t(0xFF)) >> 4).toString(), "15");
}

TEST(BigIntBasic, BitLengthAndTestBit) {
  EXPECT_EQ(BigInt(uint64_t(1)).bitLength(), 1u);
  EXPECT_EQ(BigInt(uint64_t(2)).bitLength(), 2u);
  EXPECT_EQ(BigInt(uint64_t(255)).bitLength(), 8u);
  EXPECT_EQ(BigInt(uint64_t(256)).bitLength(), 9u);
  BigInt V = BigInt(uint64_t(1)) << 131;
  EXPECT_EQ(V.bitLength(), 132u);
  EXPECT_TRUE(V.testBit(131));
  EXPECT_FALSE(V.testBit(130));
  EXPECT_FALSE(V.testBit(500));
}

TEST(BigIntBasic, MulSmall) {
  BigInt V(uint64_t(1));
  for (int I = 0; I < 25; ++I)
    V.mulSmall(10);
  EXPECT_EQ(V.toString(), "10000000000000000000000000");
  V.mulSmall(0);
  EXPECT_TRUE(V.isZero());
}

TEST(BigIntBasic, AddSmallCarriesThroughSaturatedLimbs) {
  BigInt V = (BigInt(uint64_t(1)) << 96) - BigInt(uint64_t(1));
  V.addSmall(1);
  EXPECT_EQ(V, BigInt(uint64_t(1)) << 96);
}

TEST(BigIntBasic, DivModSmall) {
  BigInt V = BigInt::fromString("12345678901234567890123456789");
  uint32_t Rem = V.divModSmall(10);
  EXPECT_EQ(Rem, 9u);
  EXPECT_EQ(V.toString(), "1234567890123456789012345678");
  BigInt Zero;
  EXPECT_EQ(Zero.divModSmall(7), 0u);
  EXPECT_TRUE(Zero.isZero());
}

TEST(BigIntBasic, IsEven) {
  EXPECT_TRUE(BigInt(uint64_t(0)).isEven());
  EXPECT_FALSE(BigInt(uint64_t(1)).isEven());
  EXPECT_TRUE(BigInt(uint64_t(2)).isEven());
  EXPECT_TRUE((BigInt(uint64_t(1)) << 64).isEven());
}

TEST(BigIntBasic, ToDoubleSmallValuesExact) {
  EXPECT_EQ(BigInt(uint64_t(0)).toDouble(), 0.0);
  EXPECT_EQ(BigInt(uint64_t(123456)).toDouble(), 123456.0);
  EXPECT_EQ(BigInt(int64_t(-123456)).toDouble(), -123456.0);
  EXPECT_EQ((BigInt(uint64_t(1)) << 52).toDouble(), 4503599627370496.0);
}

TEST(BigIntBasic, ToDoubleRoundsToNearestEven) {
  // 2^64 + 2^11 is the first value above 2^64 whose nearest double differs
  // from 2^64 (the ulp at 2^64 is 2^12, so +2^11 is an exact tie that must
  // round to the even mantissa, i.e. back down to 2^64).
  BigInt Tie = (BigInt(uint64_t(1)) << 64) + (BigInt(uint64_t(1)) << 11);
  EXPECT_EQ(Tie.toDouble(), 18446744073709551616.0);
  // One more than a tie rounds up.
  BigInt Above = Tie + BigInt(uint64_t(1));
  EXPECT_GT(Above.toDouble(), 18446744073709551616.0);
}

TEST(BigIntBasic, SelfAssignmentOperations) {
  BigInt V = BigInt::fromString("987654321987654321");
  BigInt Orig = V;
  V += V;
  EXPECT_EQ(V, Orig + Orig);
  V -= V;
  EXPECT_TRUE(V.isZero());
}

// Property sweep: (A + B) - B == A over random 64-bit pairs promoted to
// multi-limb values by shifting.
TEST(BigIntBasic, AddSubRoundTripProperty) {
  SplitMix64 Rng(0xB16B00B5);
  for (int I = 0; I < 500; ++I) {
    BigInt A(Rng.next());
    BigInt B(Rng.next());
    A <<= Rng.below(100);
    B <<= Rng.below(100);
    if (Rng.below(2))
      A.negate();
    if (Rng.below(2))
      B.negate();
    BigInt Sum = A + B;
    EXPECT_EQ(Sum - B, A);
    EXPECT_EQ(Sum - A, B);
  }
}

} // namespace
