//===- tests/bigint/bigint_mul_test.cpp ------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multiplication: schoolbook and Karatsuba paths, signs, algebraic
/// properties, and agreement with an independent add-and-shift reference.
///
//===----------------------------------------------------------------------===//

#include "bigint/bigint.h"

#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

/// Independent multiplication reference: binary add-and-shift.
BigInt mulReference(const BigInt &A, const BigInt &B) {
  BigInt AbsA = A.isNegative() ? -A : A;
  BigInt AbsB = B.isNegative() ? -B : B;
  BigInt Result;
  for (size_t I = 0; I < AbsB.bitLength(); ++I)
    if (AbsB.testBit(I))
      Result += AbsA << I;
  if (A.isNegative() != B.isNegative())
    Result.negate();
  return Result;
}

/// Random value with roughly \p Limbs 32-bit limbs.
BigInt randomWide(SplitMix64 &Rng, size_t Limbs) {
  BigInt V;
  for (size_t I = 0; I < Limbs; ++I) {
    V <<= 32;
    V += BigInt(uint64_t(Rng.next() & 0xFFFFFFFFu));
  }
  return V;
}

TEST(BigIntMul, SmallProducts) {
  EXPECT_EQ((BigInt(uint64_t(6)) * BigInt(uint64_t(7))).toString(), "42");
  EXPECT_TRUE((BigInt(uint64_t(6)) * BigInt()).isZero());
  EXPECT_TRUE((BigInt() * BigInt(uint64_t(6))).isZero());
  EXPECT_EQ(BigInt(uint64_t(1)) * BigInt(uint64_t(12345)),
            BigInt(uint64_t(12345)));
}

TEST(BigIntMul, SignRules) {
  BigInt Pos(uint64_t(21));
  BigInt Neg(int64_t(-2));
  EXPECT_EQ((Pos * Neg).toString(), "-42");
  EXPECT_EQ((Neg * Pos).toString(), "-42");
  EXPECT_EQ((Neg * Neg).toString(), "4");
  EXPECT_FALSE((Neg * BigInt()).isNegative());
}

TEST(BigIntMul, KnownBigProduct) {
  // 2^128 * (2^128 + 1) computed independently.
  BigInt A = BigInt(uint64_t(1)) << 128;
  BigInt B = A + BigInt(uint64_t(1));
  BigInt Product = A * B;
  EXPECT_EQ(Product, (BigInt(uint64_t(1)) << 256) + A);
}

TEST(BigIntMul, FactorialMatchesKnownValue) {
  BigInt Fact(uint64_t(1));
  for (uint32_t I = 2; I <= 30; ++I)
    Fact.mulSmall(I);
  EXPECT_EQ(Fact.toString(), "265252859812191058636308480000000");
}

TEST(BigIntMul, MatchesReferenceAcrossSizes) {
  SplitMix64 Rng(42);
  // Sizes straddling the Karatsuba threshold (24 limbs) on both sides.
  for (size_t LimbsA : {1u, 2u, 5u, 23u, 24u, 25u, 40u, 97u}) {
    for (size_t LimbsB : {1u, 3u, 24u, 50u}) {
      BigInt A = randomWide(Rng, LimbsA);
      BigInt B = randomWide(Rng, LimbsB);
      EXPECT_EQ(A * B, mulReference(A, B))
          << "limbs " << LimbsA << " x " << LimbsB;
    }
  }
}

TEST(BigIntMul, DeepKaratsubaRecursion) {
  SplitMix64 Rng(7);
  BigInt A = randomWide(Rng, 300);
  BigInt B = randomWide(Rng, 300);
  EXPECT_EQ(A * B, mulReference(A, B));
  // Unbalanced operands exercise the uneven-split path.
  BigInt C = randomWide(Rng, 300);
  BigInt D = randomWide(Rng, 30);
  EXPECT_EQ(C * D, mulReference(C, D));
}

TEST(BigIntMul, OperandsWithZeroLimbRuns) {
  // Low halves that are all zero stress the Karatsuba trimming logic.
  BigInt A = BigInt(uint64_t(0xABCDEF)) << 1024;
  BigInt B = (BigInt(uint64_t(0x123456)) << 2048) + BigInt(uint64_t(1));
  EXPECT_EQ(A * B, mulReference(A, B));
}

TEST(BigIntMul, AlgebraicProperties) {
  SplitMix64 Rng(1234);
  for (int I = 0; I < 50; ++I) {
    BigInt A = randomWide(Rng, 1 + Rng.below(30));
    BigInt B = randomWide(Rng, 1 + Rng.below(30));
    BigInt C = randomWide(Rng, 1 + Rng.below(30));
    EXPECT_EQ(A * B, B * A);
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ((A * B) * C, A * (B * C));
  }
}

TEST(BigIntMul, MulSmallAgreesWithFullMultiplication) {
  SplitMix64 Rng(99);
  for (int I = 0; I < 100; ++I) {
    BigInt A = randomWide(Rng, 1 + Rng.below(20));
    uint32_t Factor = static_cast<uint32_t>(Rng.next());
    BigInt ViaFull = A * BigInt(uint64_t(Factor));
    BigInt ViaSmall = A;
    ViaSmall.mulSmall(Factor);
    EXPECT_EQ(ViaSmall, ViaFull);
  }
}

} // namespace
