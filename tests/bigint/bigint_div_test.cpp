//===- tests/bigint/bigint_div_test.cpp ------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Division: the single-limb fast path, Knuth Algorithm D, truncation
/// semantics, and the N == Q*D + R identity as a property sweep.
///
//===----------------------------------------------------------------------===//

#include "bigint/bigint.h"

#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

BigInt randomWide(SplitMix64 &Rng, size_t Limbs) {
  BigInt V;
  for (size_t I = 0; I < Limbs; ++I) {
    V <<= 32;
    V += BigInt(uint64_t(Rng.next() & 0xFFFFFFFFu));
  }
  return V;
}

void expectDivModIdentity(const BigInt &N, const BigInt &D) {
  BigInt Q, R;
  BigInt::divMod(N, D, Q, R);
  EXPECT_EQ(Q * D + R, N);
  // |R| < |D| and R carries N's sign (or is zero).
  EXPECT_LT((R.isNegative() ? -R : R), (D.isNegative() ? -D : D));
  if (!R.isZero()) {
    EXPECT_EQ(R.isNegative(), N.isNegative());
  }
}

TEST(BigIntDiv, SmallQuotients) {
  EXPECT_EQ((BigInt(uint64_t(42)) / BigInt(uint64_t(7))).toString(), "6");
  EXPECT_EQ((BigInt(uint64_t(43)) / BigInt(uint64_t(7))).toString(), "6");
  EXPECT_EQ((BigInt(uint64_t(43)) % BigInt(uint64_t(7))).toString(), "1");
  EXPECT_TRUE((BigInt(uint64_t(3)) / BigInt(uint64_t(7))).isZero());
  EXPECT_EQ((BigInt(uint64_t(3)) % BigInt(uint64_t(7))).toString(), "3");
}

TEST(BigIntDiv, TruncatesTowardZero) {
  BigInt Seven(uint64_t(7));
  BigInt MinusSeven(int64_t(-7));
  BigInt Three(uint64_t(3));
  BigInt MinusThree(int64_t(-3));
  EXPECT_EQ((Seven / Three).toString(), "2");
  EXPECT_EQ((MinusSeven / Three).toString(), "-2");
  EXPECT_EQ((Seven / MinusThree).toString(), "-2");
  EXPECT_EQ((MinusSeven / MinusThree).toString(), "2");
  EXPECT_EQ((Seven % Three).toString(), "1");
  EXPECT_EQ((MinusSeven % Three).toString(), "-1");
  EXPECT_EQ((Seven % MinusThree).toString(), "1");
  EXPECT_EQ((MinusSeven % MinusThree).toString(), "-1");
}

TEST(BigIntDiv, DividendSmallerThanDivisor) {
  BigInt Small(uint64_t(123));
  BigInt Huge = BigInt(uint64_t(1)) << 200;
  BigInt Q, R;
  BigInt::divMod(Small, Huge, Q, R);
  EXPECT_TRUE(Q.isZero());
  EXPECT_EQ(R, Small);
}

TEST(BigIntDiv, ExactPowersOfTen) {
  BigInt V = BigInt::fromString("1000000000000000000000000000000000000");
  BigInt D = BigInt::fromString("1000000000000000000");
  BigInt Q, R;
  BigInt::divMod(V, D, Q, R);
  EXPECT_EQ(Q, D);
  EXPECT_TRUE(R.isZero());
}

TEST(BigIntDiv, KnownMultiLimbCase) {
  // (2^192 - 1) / (2^64 - 1) = 2^128 + 2^64 + 1 exactly.
  BigInt N = (BigInt(uint64_t(1)) << 192) - BigInt(uint64_t(1));
  BigInt D = (BigInt(uint64_t(1)) << 64) - BigInt(uint64_t(1));
  BigInt Q, R;
  BigInt::divMod(N, D, Q, R);
  EXPECT_TRUE(R.isZero());
  EXPECT_EQ(Q, (BigInt(uint64_t(1)) << 128) + (BigInt(uint64_t(1)) << 64) +
                   BigInt(uint64_t(1)));
}

TEST(BigIntDiv, QHatRefinementStress) {
  // Divisors with top limb 0x80000000 and dividends of all-ones limbs are
  // the classic inputs that force the Algorithm D quotient-digit estimate
  // to be corrected (and occasionally to take the add-back branch).
  BigInt D = BigInt(uint64_t(0x80000000ull)) << 64; // 3 limbs, min top.
  D += BigInt(uint64_t(1));
  SplitMix64 Rng(5);
  for (int I = 0; I < 200; ++I) {
    BigInt N = randomWide(Rng, 6);
    expectDivModIdentity(N, D);
  }
  // An explicit textbook add-back trigger family: N = (B^2)*(B/2) - 1 style
  // values just below a multiple of the divisor.
  for (int I = 1; I < 50; ++I) {
    BigInt N = D * BigInt(uint64_t(I));
    N -= BigInt(uint64_t(1));
    expectDivModIdentity(N, D);
  }
}

TEST(BigIntDiv, IdentityPropertySweep) {
  SplitMix64 Rng(0xD1CE);
  for (int I = 0; I < 400; ++I) {
    BigInt N = randomWide(Rng, 1 + Rng.below(40));
    BigInt D = randomWide(Rng, 1 + Rng.below(20));
    if (D.isZero())
      continue;
    if (Rng.below(2))
      N.negate();
    if (Rng.below(2))
      D.negate();
    expectDivModIdentity(N, D);
  }
}

TEST(BigIntDiv, DivModSmallMatchesGeneralPath) {
  SplitMix64 Rng(0xFACE);
  for (int I = 0; I < 200; ++I) {
    BigInt N = randomWide(Rng, 1 + Rng.below(15));
    uint32_t D = static_cast<uint32_t>(Rng.next() | 1);
    BigInt Q, R;
    BigInt::divMod(N, BigInt(uint64_t(D)), Q, R);
    BigInt InPlace = N;
    uint32_t Rem = InPlace.divModSmall(D);
    EXPECT_EQ(InPlace, Q);
    EXPECT_EQ(BigInt(uint64_t(Rem)), R);
  }
}

TEST(BigIntDiv, SelfDivision) {
  BigInt V = BigInt::fromString("314159265358979323846264338327950288");
  EXPECT_TRUE((V / V).isOne());
  EXPECT_TRUE((V % V).isZero());
}

} // namespace
