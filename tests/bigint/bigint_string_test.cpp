//===- tests/bigint/bigint_string_test.cpp ----------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Base 2-36 parsing and rendering, including the chunked fast paths and
/// round-trip properties across all bases.
///
//===----------------------------------------------------------------------===//

#include "bigint/bigint.h"

#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

TEST(BigIntString, DecimalRoundTrip) {
  for (const char *Text :
       {"0", "1", "9", "10", "4294967295", "4294967296",
        "18446744073709551615", "18446744073709551616",
        "340282366920938463463374607431768211456",
        "999999999999999999999999999999999999999999999"}) {
    EXPECT_EQ(BigInt::fromString(Text).toString(), Text);
  }
}

TEST(BigIntString, NegativeAndExplicitPositive) {
  EXPECT_EQ(BigInt::fromString("-123").toString(), "-123");
  EXPECT_EQ(BigInt::fromString("+123").toString(), "123");
  EXPECT_EQ(BigInt::fromString("-0").toString(), "0");
}

TEST(BigIntString, HexAndUpperCase) {
  EXPECT_EQ(BigInt::fromString("ff", 16).toString(), "255");
  EXPECT_EQ(BigInt::fromString("FF", 16).toString(), "255");
  EXPECT_EQ(BigInt::fromString("deadbeef", 16).toString(16), "deadbeef");
  EXPECT_EQ(BigInt::fromString("100", 16).toString(), "256");
}

TEST(BigIntString, BinaryAndBase36) {
  EXPECT_EQ(BigInt::fromString("101010", 2).toString(), "42");
  EXPECT_EQ(BigInt(uint64_t(42)).toString(2), "101010");
  EXPECT_EQ(BigInt::fromString("zz", 36).toString(), "1295");
  EXPECT_EQ(BigInt(uint64_t(1295)).toString(36), "zz");
}

TEST(BigIntString, IsValidString) {
  EXPECT_TRUE(BigInt::isValidString("123"));
  EXPECT_TRUE(BigInt::isValidString("-123"));
  EXPECT_FALSE(BigInt::isValidString(""));
  EXPECT_FALSE(BigInt::isValidString("-"));
  EXPECT_FALSE(BigInt::isValidString("12a"));
  EXPECT_TRUE(BigInt::isValidString("12a", 16));
  EXPECT_FALSE(BigInt::isValidString("g", 16));
  EXPECT_TRUE(BigInt::isValidString("g", 17));
  EXPECT_FALSE(BigInt::isValidString("1 2"));
}

TEST(BigIntString, LeadingZerosParse) {
  EXPECT_EQ(BigInt::fromString("000123").toString(), "123");
  EXPECT_EQ(BigInt::fromString("0000").toString(), "0");
}

// Round-trip across every supported base, with values sized to cross the
// per-base chunk boundaries.
class BigIntStringBaseTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BigIntStringBaseTest, RoundTripAcrossChunkBoundaries) {
  unsigned Base = GetParam();
  SplitMix64 Rng(Base * 1000003u);
  for (int I = 0; I < 40; ++I) {
    BigInt V(Rng.next());
    V <<= Rng.below(200);
    V += BigInt(Rng.next());
    std::string Text = V.toString(Base);
    EXPECT_EQ(BigInt::fromString(Text, Base), V) << "base " << Base;
  }
}

TEST_P(BigIntStringBaseTest, PowersOfBaseHaveCanonicalForm) {
  unsigned Base = GetParam();
  BigInt Power(uint64_t(1));
  for (int Exp = 0; Exp < 40; ++Exp) {
    std::string Text = Power.toString(Base);
    EXPECT_EQ(Text.size(), static_cast<size_t>(Exp + 1));
    EXPECT_EQ(Text[0], '1');
    for (size_t Pos = 1; Pos < Text.size(); ++Pos)
      EXPECT_EQ(Text[Pos], '0');
    Power.mulSmall(Base);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBases, BigIntStringBaseTest,
                         ::testing::Values(2u, 3u, 7u, 8u, 10u, 16u, 17u, 25u,
                                           32u, 36u));

} // namespace
