//===- tests/bigint/power_cache_test.cpp -------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "bigint/power_cache.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

TEST(PowerCache, ZeroExponentIsOne) {
  PowerCache Cache(10);
  EXPECT_TRUE(Cache.get(0).isOne());
}

TEST(PowerCache, MatchesBigIntPow) {
  PowerCache Cache(10);
  for (unsigned Exp : {1u, 5u, 27u, 100u, 325u})
    EXPECT_EQ(Cache.get(Exp), BigInt::pow(10u, Exp)) << "10^" << Exp;
}

TEST(PowerCache, GrowOnDemandKeepsEarlierEntries) {
  PowerCache Cache(3);
  BigInt Small = Cache.get(4);
  EXPECT_EQ(Small.toString(), "81");
  Cache.get(200); // Force growth.
  EXPECT_EQ(Cache.get(4).toString(), "81");
}

TEST(PowerCache, CachedPowCoversAllBases) {
  for (unsigned Base = 2; Base <= 36; ++Base) {
    EXPECT_TRUE(cachedPow(Base, 0).isOne());
    EXPECT_EQ(cachedPow(Base, 1), BigInt(uint64_t(Base)));
    EXPECT_EQ(cachedPow(Base, 7), BigInt::pow(Base, 7));
  }
}

TEST(PowerCache, PaperRangeForDoubles) {
  // The paper's table covers 10^0 .. 10^325, "sufficient to handle all
  // IEEE double-precision floating-point numbers".
  const BigInt &Big = cachedPow(10, 325);
  EXPECT_EQ(Big.toString().size(), 326u);
}

TEST(BigIntPow, EdgeCases) {
  EXPECT_TRUE(BigInt::pow(BigInt(uint64_t(0)), 0).isOne());
  EXPECT_TRUE(BigInt::pow(BigInt(uint64_t(0)), 5).isZero());
  EXPECT_TRUE(BigInt::pow(BigInt(uint64_t(1)), 1000).isOne());
  EXPECT_EQ(BigInt::pow(BigInt(uint64_t(2)), 100),
            BigInt(uint64_t(1)) << 100);
  EXPECT_EQ(BigInt::pow(BigInt(int64_t(-2)), 3).toString(), "-8");
  EXPECT_EQ(BigInt::pow(BigInt(int64_t(-2)), 4).toString(), "16");
}

} // namespace
