//===- tests/testgen/testgen_test.cpp -----------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "testgen/random_floats.h"
#include "testgen/schryer.h"

#include "fp/ieee_traits.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

using namespace dragon4;

namespace {

TEST(Schryer, PatternsAreDeduplicatedStoredMantissas) {
  std::vector<uint64_t> Patterns = schryerMantissaPatterns();
  EXPECT_FALSE(Patterns.empty());
  EXPECT_TRUE(std::is_sorted(Patterns.begin(), Patterns.end()));
  EXPECT_EQ(std::adjacent_find(Patterns.begin(), Patterns.end()),
            Patterns.end());
  for (uint64_t P : Patterns)
    EXPECT_LT(P, uint64_t(1) << 52);
  // The canonical boundary patterns are present.
  auto Contains = [&](uint64_t V) {
    return std::binary_search(Patterns.begin(), Patterns.end(), V);
  };
  EXPECT_TRUE(Contains(0));                         // 1.000...0
  EXPECT_TRUE(Contains((uint64_t(1) << 52) - 1));   // 1.111...1
  EXPECT_TRUE(Contains(1));                         // 1.000...01
  EXPECT_TRUE(Contains(uint64_t(1) << 51));         // 1.100...0
}

TEST(Schryer, SetIsPositiveNormalizedAndDeterministic) {
  SchryerParams Sparse;
  Sparse.ExponentStride = 500;
  std::vector<double> A = schryerDoubles(Sparse);
  std::vector<double> B = schryerDoubles(Sparse);
  EXPECT_EQ(A, B);
  for (double V : A) {
    EXPECT_GT(V, 0.0);
    EXPECT_EQ(classify(V), FpClass::Normal);
  }
}

TEST(Schryer, DefaultSizeIsNearThePapers) {
  // The paper used 250,680 inputs; our substitution should be in the same
  // ballpark (within 20%) so the benchmark workloads are comparable.
  size_t Count = schryerDoubles().size();
  EXPECT_GT(Count, 200000u);
  EXPECT_LT(Count, 300000u);
}

TEST(Schryer, CoversTheFullExponentRange) {
  SchryerParams Params;
  std::vector<double> Values = schryerDoubles(Params);
  auto MinMax = std::minmax_element(Values.begin(), Values.end());
  EXPECT_LT(*MinMax.first, 1e-307);  // Near the bottom of normal range.
  EXPECT_GT(*MinMax.second, 1e307);  // Near the top.
}

TEST(RandomFloats, DeterministicPerSeed) {
  EXPECT_EQ(randomNormalDoubles(100, 7), randomNormalDoubles(100, 7));
  EXPECT_NE(randomNormalDoubles(100, 7), randomNormalDoubles(100, 8));
}

TEST(RandomFloats, ClassesAreAsAdvertised) {
  for (double V : randomNormalDoubles(200, 1))
    EXPECT_EQ(classify(V), FpClass::Normal);
  for (double V : randomSubnormalDoubles(200, 2))
    EXPECT_EQ(classify(V), FpClass::Subnormal);
  for (double V : randomBitsDoubles(200, 3)) {
    EXPECT_TRUE(std::isfinite(V));
    EXPECT_GT(V, 0.0);
  }
  for (float V : randomNormalFloats(200, 4))
    EXPECT_EQ(classify(V), FpClass::Normal);
}

TEST(RandomFloats, ReasonableSpread) {
  // Log-uniform generation: should produce both tiny and huge magnitudes.
  std::vector<double> Values = randomNormalDoubles(2000, 5);
  int Tiny = 0, Huge = 0;
  for (double V : Values) {
    if (V < 1e-100)
      ++Tiny;
    if (V > 1e100)
      ++Huge;
  }
  EXPECT_GT(Tiny, 100);
  EXPECT_GT(Huge, 100);
}

TEST(SplitMix, KnownStream) {
  // Reference values for SplitMix64 seeded with 1234567 (from the public
  // reference implementation).
  SplitMix64 Rng(1234567);
  EXPECT_EQ(Rng.next(), 6457827717110365317ull);
  EXPECT_EQ(Rng.next(), 3203168211198807973ull);
  EXPECT_EQ(Rng.next(), 9817491932198370423ull);
}

TEST(SplitMix, BelowStaysInRange) {
  SplitMix64 Rng(9);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(Rng.below(17), 17u);
}

} // namespace
