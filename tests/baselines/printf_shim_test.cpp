//===- tests/baselines/printf_shim_test.cpp -----------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "baselines/printf_shim.h"

#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

TEST(PrintfShim, FormatsScientific) {
  EXPECT_EQ(printfScientific(1.5, 3), "1.50e+00");
  EXPECT_EQ(printfScientific(-1.5, 2), "-1.5e+00");
  EXPECT_EQ(printfScientific(1234.5, 5), "1.2345e+03");
  EXPECT_EQ(printfScientific(1.0, 1), "1e+00");
}

TEST(PrintfShim, ParsesItsOwnOutput) {
  DigitString D = parsePrintfScientific("1.2345e+03");
  EXPECT_EQ(D.digitsAsText(), "12345");
  EXPECT_EQ(D.K, 4); // 1234.5 = 0.12345 * 10^4.

  DigitString Neg = parsePrintfScientific("-9.99e-05");
  EXPECT_EQ(Neg.digitsAsText(), "999");
  EXPECT_EQ(Neg.K, -4);

  DigitString One = parsePrintfScientific("5e+00");
  EXPECT_EQ(One.digitsAsText(), "5");
  EXPECT_EQ(One.K, 1);
}

TEST(PrintfShim, ParseComposedWithFormatIsConsistent) {
  SplitMix64 Rng(99);
  for (int I = 0; I < 100; ++I) {
    double V = static_cast<double>(Rng.next()) / 7.0;
    DigitString D = parsePrintfScientific(printfScientific(V, 17));
    EXPECT_EQ(D.Digits.size(), 17u);
  }
}

TEST(PrintfShim, ModernLibcIsCorrectlyRounded) {
  // The Table 3 "Incorrect" column: expected to be zero on modern glibc.
  for (double V : randomNormalDoubles(500, 1996)) {
    EXPECT_TRUE(printfIsCorrectlyRounded(V, 17)) << printfScientific(V, 17);
  }
  for (double V : randomSubnormalDoubles(100, 1997)) {
    EXPECT_TRUE(printfIsCorrectlyRounded(V, 17)) << printfScientific(V, 17);
  }
  for (int Digits : {1, 5, 9, 17}) {
    for (double V : randomNormalDoubles(100, 2000 + Digits)) {
      EXPECT_TRUE(printfIsCorrectlyRounded(V, Digits))
          << printfScientific(V, Digits);
    }
  }
}

} // namespace
