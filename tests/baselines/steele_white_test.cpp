//===- tests/baselines/steele_white_test.cpp ----------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "baselines/steele_white.h"

#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

TEST(SteeleWhite, DoesNotExploitUnbiasedRounding) {
  // The headline behavioural difference: 1e23 prints long under Steele &
  // White because the boundary cannot be assumed to round back.
  DigitString D = steeleWhiteDigits(1e23);
  EXPECT_EQ(D.digitsAsText(), "9999999999999999");
  EXPECT_EQ(D.K, 23);
}

TEST(SteeleWhite, AgreesWithBurgerDybvigWhenBoundariesDoNotMatter) {
  // For odd mantissas the NearestEven model collapses to Conservative, so
  // the only remaining difference (scaling strategy) must not show.
  for (double V : randomNormalDoubles(200, 90125)) {
    Decomposed Dec = decompose(V);
    if ((Dec.F & 1) == 0)
      continue;
    EXPECT_EQ(steeleWhiteDigits(V), shortestDigits(V)) << V;
  }
}

TEST(SteeleWhite, OutputIsNeverShorterThanBurgerDybvig) {
  for (double V : randomNormalDoubles(200, 424242)) {
    EXPECT_GE(steeleWhiteDigits(V).Digits.size(),
              shortestDigits(V).Digits.size())
        << V;
  }
}

TEST(SteeleWhite, WorksAcrossBases) {
  EXPECT_EQ(steeleWhiteDigits(5.0, 2).digitsAsText(), "101");
  EXPECT_EQ(steeleWhiteDigits(255.0, 16).digitsAsText(), "ff");
}

} // namespace
