//===- tests/baselines/fixed17_test.cpp ---------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "baselines/fixed17.h"

#include "core/free_format.h"
#include "reader/reader.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace dragon4;

namespace {

TEST(StraightforwardFixed, KnownValues) {
  DigitString D = straightforwardDigits(1.0, 5);
  EXPECT_EQ(D.digitsAsText(), "10000");
  EXPECT_EQ(D.K, 1);

  DigitString E = straightforwardDigits(1.0 / 3.0, 8);
  EXPECT_EQ(E.digitsAsText(), "33333333");
  EXPECT_EQ(E.K, 0);

  DigitString F = straightforwardDigits(123.456, 6);
  EXPECT_EQ(F.digitsAsText(), "123456");
  EXPECT_EQ(F.K, 3);
}

TEST(StraightforwardFixed, RoundingAtTheLastDigit) {
  EXPECT_EQ(straightforwardDigits(0.15999, 2).digitsAsText(), "16");
  EXPECT_EQ(straightforwardDigits(0.15001, 2).digitsAsText(), "15");
  // Full carry: 9.9999 to three digits becomes 10.0 with a scale bump.
  DigitString D = straightforwardDigits(9.9999, 3);
  EXPECT_EQ(D.digitsAsText(), "100");
  EXPECT_EQ(D.K, 2);
}

TEST(StraightforwardFixed, TieStrategies) {
  // 0.125 is exact in binary: a genuine decimal tie at two digits.
  EXPECT_EQ(straightforwardDigits(0.125, 2, 10, TieBreak::RoundUp)
                .digitsAsText(),
            "13");
  EXPECT_EQ(straightforwardDigits(0.125, 2, 10, TieBreak::RoundDown)
                .digitsAsText(),
            "12");
  EXPECT_EQ(straightforwardDigits(0.125, 2, 10, TieBreak::RoundEven)
                .digitsAsText(),
            "12");
  EXPECT_EQ(straightforwardDigits(0.375, 2, 10, TieBreak::RoundEven)
                .digitsAsText(),
            "38");
}

TEST(StraightforwardFixed, SeventeenDigitsRoundTrip) {
  // 17 significant digits uniquely identify every double: rendering and
  // reading back must be the identity.
  for (double V : randomNormalDoubles(300, 1717)) {
    DigitString D = straightforwardDigits(V, 17);
    ASSERT_EQ(D.Digits.size(), 17u);
    std::string Text = D.digitsAsText() + "e" + std::to_string(D.K - 17);
    EXPECT_EQ(*readFloat<double>(Text), V) << Text;
  }
}

TEST(StraightforwardFixed, MatchesPrintfDigits) {
  // glibc printf is correctly rounded; our straightforward printer must
  // agree digit-for-digit at 17 significant digits (ties are impossible
  // at 17 digits for doubles -- the decimal expansion never terminates
  // exactly at a half).
  for (double V : randomNormalDoubles(300, 2929)) {
    DigitString Ours = straightforwardDigits(V, 17);
    char Buffer[64];
    std::snprintf(Buffer, sizeof(Buffer), "%.16e", V);
    std::string Digits;
    for (const char *P = Buffer; *P && *P != 'e'; ++P)
      if (*P >= '0' && *P <= '9')
        Digits.push_back(*P);
    EXPECT_EQ(Ours.digitsAsText(), Digits) << Buffer;
  }
}

TEST(StraightforwardFixed, PrefixAgreesWithFreeFormatOrRoundTripWins) {
  // The straightforward N-digit output is the nearest N-digit string.  The
  // free-format output is *usually* the same -- but in ~0.02% of doubles
  // the nearest string lies exactly on or below the rounding-range
  // boundary and would not read back, so the shortest-output algorithm
  // must take the other candidate (one ulp-of-the-last-digit higher).
  // This is the documented round-trip-over-nearest preference; when the
  // two disagree, the nearest string must demonstrably fail to read back.
  int Disagreements = 0;
  for (double V : randomNormalDoubles(2000, 4321)) {
    DigitString Free = shortestDigits(V);
    int N = static_cast<int>(Free.Digits.size());
    DigitString Fixed = straightforwardDigits(V, N);
    if (Fixed.K == Free.K && Fixed.Digits == Free.Digits)
      continue;
    ++Disagreements;
    // The nearest string must not read back to V, while the free output
    // must -- that is the one defensible reason for them to differ.
    std::string Nearest =
        Fixed.digitsAsText() + "e" + std::to_string(Fixed.K - N);
    std::string Shortest =
        Free.digitsAsText() + "e" + std::to_string(Free.K - N);
    EXPECT_NE(*readFloat<double>(Nearest), V) << Nearest;
    EXPECT_EQ(*readFloat<double>(Shortest), V) << Shortest;
  }
  // The phenomenon is rare; make sure the sweep did not silently diverge.
  EXPECT_LT(Disagreements, 10);
}

TEST(StraightforwardFixed, SubnormalsAndExtremes) {
  DigitString Tiny = straightforwardDigits(5e-324, 17);
  EXPECT_EQ(Tiny.digitsAsText(), "49406564584124654");
  EXPECT_EQ(Tiny.K, -323);
  DigitString Huge = straightforwardDigits(1.7976931348623157e308, 17);
  EXPECT_EQ(Huge.digitsAsText(), "17976931348623157");
  EXPECT_EQ(Huge.K, 309);
}

TEST(StraightforwardFixed, OtherBases) {
  DigitString Hex = straightforwardDigits(255.0, 4, 16);
  EXPECT_EQ(Hex.digitsAsText(), "ff00");
  EXPECT_EQ(Hex.K, 2);
  DigitString Bin = straightforwardDigits(5.0, 3, 2);
  EXPECT_EQ(Bin.digitsAsText(), "101");
  EXPECT_EQ(Bin.K, 3);
  DigitString BinRounded = straightforwardDigits(5.0, 2, 2);
  EXPECT_EQ(BinRounded.digitsAsText(), "11"); // 101 -> 11 * 2^1 (round up).
  EXPECT_EQ(BinRounded.K, 3);
}

} // namespace
