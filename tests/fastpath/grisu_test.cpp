//===- tests/fastpath/grisu_test.cpp ------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Grisu3 fast path: the runtime-derived power cache against the
/// exact bignum powers, agreement with the exact Burger-Dybvig algorithm
/// on every success, the fallback plumbing, and the success rate.
///
//===----------------------------------------------------------------------===//

#include "fastpath/grisu.h"

#include "bigint/power_cache.h"
#include "core/free_format.h"
#include "reader/reader.h"
#include "testgen/random_floats.h"
#include "testgen/schryer.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

DigitString exactConservative(uint64_t F, int E, int P, int MinE) {
  FreeFormatOptions Options;
  Options.Boundaries = BoundaryMode::Conservative;
  return freeFormatDigits(F, E, P, MinE, Options);
}

TEST(GrisuCache, MatchesExactPowersWithinOneUnit) {
  // The cached significand must be within one unit in the last place of
  // the exact power: (F-1)*2^E <= 10^K <= (F+1)*2^E, checked with exact
  // integers on both sides.
  for (int K : {-340, -27, -1, 0, 1, 7, 27, 300}) {
    DiyFp Cached = cachedPowerOfTen(K);
    EXPECT_EQ(Cached.F >> 63, 1u) << K; // Normalized.

    // Scale both sides so every quantity is a non-negative integer:
    //   LhsNum / LhsDen ~ 10^K, window [(F-1), (F+1)] * 2^E.
    BigInt PowerNum(uint64_t(1)), PowerDen(uint64_t(1));
    if (K >= 0)
      PowerNum = cachedPow(10, static_cast<unsigned>(K));
    else
      PowerDen = cachedPow(10, static_cast<unsigned>(-K));
    BigInt WindowLow(Cached.F - 1), WindowHigh(Cached.F + 1);
    BigInt ScaleNum(uint64_t(1)), ScaleDen(uint64_t(1));
    if (Cached.E >= 0)
      ScaleNum <<= static_cast<size_t>(Cached.E);
    else
      ScaleDen <<= static_cast<size_t>(-Cached.E);
    // WindowLow*Scale <= Power  <=>  WindowLow*ScaleNum*PowerDen <= ...
    EXPECT_LE(WindowLow * ScaleNum * PowerDen, PowerNum * ScaleDen) << K;
    EXPECT_GE(WindowHigh * ScaleNum * PowerDen, PowerNum * ScaleDen) << K;
  }
}

TEST(Grisu, SimpleValuesSucceedAndMatch) {
  for (double V : {1.0, 2.0, 0.5, 0.1, 0.3, 3.141592653589793, 123.456,
                   1e22, 5e-324, 1.7976931348623157e308, 6.02214076e23}) {
    Decomposed D = decompose(V);
    auto Fast = grisuShortest(D.F, D.E, 53, -1074);
    DigitString Exact = exactConservative(D.F, D.E, 53, -1074);
    if (Fast.has_value()) {
      EXPECT_EQ(*Fast, Exact) << V;
    }
  }
}

TEST(Grisu, AgreesWithExactWheneverItSucceeds) {
  size_t Successes = 0, Total = 0;
  auto Check = [&](double V) {
    Decomposed D = decompose(V);
    ++Total;
    auto Fast = grisuShortest(D.F, D.E, 53, -1074);
    if (!Fast.has_value())
      return;
    ++Successes;
    ASSERT_EQ(*Fast, exactConservative(D.F, D.E, 53, -1074)) << V;
  };
  for (double V : randomNormalDoubles(20000, 777777))
    Check(V);
  for (double V : randomSubnormalDoubles(2000, 777778))
    Check(V);
  // Loitsch reports ~99.5% success on random doubles; be conservative.
  EXPECT_GT(static_cast<double>(Successes) / static_cast<double>(Total),
            0.985);
}

TEST(Grisu, AgreesOnTheSchryerSet) {
  SchryerParams Params;
  Params.ExponentStride = 128;
  for (double V : schryerDoubles(Params)) {
    Decomposed D = decompose(V);
    auto Fast = grisuShortest(D.F, D.E, 53, -1074);
    if (!Fast.has_value())
      continue;
    ASSERT_EQ(*Fast, exactConservative(D.F, D.E, 53, -1074)) << V;
  }
}

TEST(Grisu, FloatsAgreeToo) {
  size_t Successes = 0, Total = 0;
  for (float V : randomNormalFloats(20000, 99)) {
    Decomposed D = decompose(V);
    ++Total;
    auto Fast = grisuShortest(D.F, D.E, 24, -149);
    if (!Fast.has_value())
      continue;
    ++Successes;
    ASSERT_EQ(*Fast, exactConservative(D.F, D.E, 24, -149)) << V;
  }
  EXPECT_GT(static_cast<double>(Successes) / static_cast<double>(Total),
            0.98);
}

TEST(GrisuFallback, AlwaysEqualsExact) {
  // shortestDigitsFast (fast path + fallback) must be indistinguishable
  // from the exact conservative conversion on every input.
  for (double V : randomNormalDoubles(5000, 123123)) {
    Decomposed D = decompose(V);
    EXPECT_EQ(shortestDigitsFast(V),
              exactConservative(D.F, D.E, 53, -1074))
        << V;
  }
  for (float V : randomNormalFloats(3000, 321321)) {
    Decomposed D = decompose(V);
    EXPECT_EQ(shortestDigitsFast(V),
              exactConservative(D.F, D.E, 24, -149))
        << V;
  }
}

TEST(GrisuFallback, RoundTripsThroughTheReader) {
  for (double V : randomNormalDoubles(3000, 456456)) {
    DigitString D = shortestDigitsFast(V);
    std::string Text =
        D.digitsAsText() + "e" +
        std::to_string(D.K - static_cast<int>(D.Digits.size()));
    EXPECT_EQ(*readFloat<double>(Text), V) << Text;
  }
}

} // namespace
