//===- tests/fastpath/ryu_pow5_test.cpp ------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-time Ryu powers-of-five table against the runtime BigInt
/// machinery: every one of the 685 entries is recomputed from
/// bigint/power_cache.h's cachedPow (truncation for q >= 0, an explicit
/// ceiling division for q < 0) and must match bit for bit.  The two
/// computations share no code -- the table is a constexpr limb evaluator,
/// the oracle is the library bignum stack.  The shared [-342, 308] range
/// must also agree entry-for-entry with the Eisel-Lemire parse table, and
/// ryuPow5Bits must equal the exact BigInt bit length everywhere.
///
//===----------------------------------------------------------------------===//

#include "fastpath/ryu_pow5.h"

#include "bigint/bigint.h"
#include "bigint/power_cache.h"
#include "parse/pow5_table.h"

#include <gtest/gtest.h>

using namespace dragon4;
using namespace dragon4::fastpath;

namespace {

/// 64 bits of \p V starting at bit \p Pos (positions below zero or past
/// the value read as zero), mirroring the constexpr evaluator's helper.
uint64_t bitsAt(const BigInt &V, int64_t Pos) {
  uint64_t Out = 0;
  int64_t Length = static_cast<int64_t>(V.bitLength());
  for (int64_t B = 0; B < 64; ++B) {
    int64_t Bit = Pos + B;
    if (Bit < 0 || Bit >= Length)
      continue;
    if (V.testBit(static_cast<size_t>(Bit)))
      Out |= uint64_t(1) << B;
  }
  return Out;
}

TEST(RyuPow5Table, Bounds) {
  EXPECT_EQ(RyuPow5TableSize, 685);
  EXPECT_EQ(static_cast<int>(RyuPow5Table.size()), RyuPow5TableSize);
  // Every entry is normalized: bit 127 set.
  for (const Pow5Entry &Entry : RyuPow5Table)
    EXPECT_NE(Entry.Hi & (uint64_t(1) << 63), 0u);
}

TEST(RyuPow5Table, NonNegativeExponentsMatchCachedPowTruncation) {
  for (int Q = 0; Q <= RyuLargestPowerOfFive; ++Q) {
    const BigInt &P = cachedPow(5, static_cast<unsigned>(Q));
    int64_t Length = static_cast<int64_t>(P.bitLength());
    const Pow5Entry &Entry = ryuPow5Entry(Q);
    EXPECT_EQ(Entry.Hi, bitsAt(P, Length - 64)) << "5^" << Q;
    EXPECT_EQ(Entry.Lo, bitsAt(P, Length - 128)) << "5^" << Q;
  }
}

TEST(RyuPow5Table, NegativeExponentsMatchCeilingDivision) {
  for (int Q = -1; Q >= RyuSmallestPowerOfFive; --Q) {
    const BigInt &D = cachedPow(5, static_cast<unsigned>(-Q));
    // ceil(2^(bitlen(D) + 127) / D), the normalized 128-bit reciprocal.
    // The truncation direction matters: the division is never exact (no
    // power of two shares a factor with 5), so ceiling must be floor + 1
    // -- an entry built by truncation instead would under-estimate and
    // break Ryu's one-sided error argument.
    BigInt Numerator(uint64_t(1));
    Numerator <<= D.bitLength() + 127;
    BigInt Quotient, Remainder;
    BigInt::divMod(Numerator, D, Quotient, Remainder);
    ASSERT_FALSE(Remainder.isZero()) << "5^" << Q; // Division never exact.
    Quotient.addSmall(1);
    ASSERT_EQ(Quotient.bitLength(), 128u) << "5^" << Q;
    const Pow5Entry &Entry = ryuPow5Entry(Q);
    EXPECT_EQ(Entry.Hi, bitsAt(Quotient, 64)) << "5^" << Q;
    EXPECT_EQ(Entry.Lo, bitsAt(Quotient, 0)) << "5^" << Q;
  }
}

TEST(RyuPow5Table, AgreesWithParseTableOnSharedRange) {
  // Two independently instantiated constexpr evaluations of the same
  // mathematical table must coincide wherever their domains overlap.
  for (int Q = parse::SmallestPowerOfFive; Q <= parse::LargestPowerOfFive;
       ++Q) {
    const Pow5Entry &Ours = ryuPow5Entry(Q);
    const Pow5Entry &Theirs = parse::pow5Entry(Q);
    EXPECT_EQ(Ours.Hi, Theirs.Hi) << "5^" << Q;
    EXPECT_EQ(Ours.Lo, Theirs.Lo) << "5^" << Q;
  }
}

TEST(RyuPow5Table, Pow5BitsMatchesExactBitLength) {
  for (int E = 0; E <= RyuLargestPowerOfFive; ++E)
    EXPECT_EQ(static_cast<uint64_t>(ryuPow5Bits(E)),
              cachedPow(5, static_cast<unsigned>(E)).bitLength())
        << "5^" << E;
}

} // namespace
