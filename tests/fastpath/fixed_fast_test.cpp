//===- tests/fastpath/fixed_fast_test.cpp --------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Gay-style fixed-format fast path: every certified result must equal
/// the exact straightforward printer's digits, ties must always fall back
/// (the fast result may never depend on a tie rule), and the success rate
/// must be high enough to matter.
///
//===----------------------------------------------------------------------===//

#include "fastpath/fixed_fast.h"

#include "testgen/random_floats.h"
#include "testgen/schryer.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

TEST(FixedFast, SimpleValuesMatchExact) {
  for (double V : {1.0, 0.5, 0.1, 123.456, 3.141592653589793, 1e22, 5e-324,
                   1.7976931348623157e308, 9.999999999}) {
    for (int N : {1, 3, 7, 12, 17}) {
      auto Fast = fastFixedDigits(V, N);
      if (!Fast.has_value())
        continue;
      EXPECT_EQ(*Fast, straightforwardDigits(V, N)) << V << " N=" << N;
    }
  }
}

TEST(FixedFast, CertifiedResultsAlwaysMatchExact) {
  SplitMix64 Rng(171819);
  size_t Success = 0, Total = 0;
  for (int I = 0; I < 4000; ++I) {
    double V = randomNormalDoubles(1, Rng.next())[0];
    int N = 1 + static_cast<int>(Rng.below(17));
    ++Total;
    auto Fast = fastFixedDigits(V, N);
    if (!Fast.has_value())
      continue;
    ++Success;
    // Tie-independence: the exact printer must give the same digits under
    // *both* tie rules whenever the fast path certifies.
    DigitString Up = straightforwardDigits(V, N, 10, TieBreak::RoundUp);
    DigitString Down = straightforwardDigits(V, N, 10, TieBreak::RoundDown);
    ASSERT_EQ(Up, Down) << V << " N=" << N << " (fast path certified a tie)";
    ASSERT_EQ(*Fast, Up) << V << " N=" << N;
  }
  // Gay's observation: the heuristics almost always succeed.
  EXPECT_GT(static_cast<double>(Success) / static_cast<double>(Total), 0.99);
}

TEST(FixedFast, ExactDecimalTiesAlwaysFallBack) {
  // Binary-exact values with terminating decimal expansions produce real
  // halfway cases; the fast path must refuse every one of them.
  EXPECT_FALSE(fastFixedDigits(0.125, 2).has_value());
  EXPECT_FALSE(fastFixedDigits(0.375, 2).has_value());
  EXPECT_FALSE(fastFixedDigits(2.5, 1).has_value());
  EXPECT_FALSE(fastFixedDigits(1.5, 1).has_value());
  // ...but the wrapped entry point still answers, via the exact fallback.
  EXPECT_EQ(fixedDigitsWithFastPath(0.125, 2).digitsAsText(), "12");
  EXPECT_EQ(fixedDigitsWithFastPath(0.125, 2, TieBreak::RoundUp)
                .digitsAsText(),
            "13");
}

TEST(FixedFast, SubnormalsAndExtremes) {
  for (double V : randomSubnormalDoubles(300, 2021)) {
    for (int N : {3, 9, 17}) {
      auto Fast = fastFixedDigits(V, N);
      if (Fast.has_value()) {
        ASSERT_EQ(*Fast, straightforwardDigits(V, N)) << V << " N=" << N;
      }
    }
  }
}

TEST(FixedFast, SchryerSweep) {
  SchryerParams Params;
  Params.ExponentStride = 256;
  for (double V : schryerDoubles(Params)) {
    auto Fast = fastFixedDigits(V, 17);
    if (!Fast.has_value())
      continue;
    ASSERT_EQ(*Fast, straightforwardDigits(V, 17)) << V;
  }
}

TEST(FixedFast, WrapperAlwaysEqualsExact) {
  SplitMix64 Rng(232425);
  for (int I = 0; I < 2000; ++I) {
    double V = randomNormalDoubles(1, Rng.next())[0];
    int N = 1 + static_cast<int>(Rng.below(17));
    EXPECT_EQ(fixedDigitsWithFastPath(V, N, TieBreak::RoundEven),
              straightforwardDigits(V, N, 10, TieBreak::RoundEven))
        << V << " N=" << N;
  }
}

} // namespace
