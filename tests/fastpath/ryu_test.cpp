//===- tests/fastpath/ryu_test.cpp -----------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Ryu fast path against the exact Burger-Dybvig loop.  binary16 is
/// small enough to sweep the full encoding space under the whole symmetric
/// options matrix (three boundary modes x three tie breaks); binary32 gets
/// a strided sweep.  Every successful Ryu conversion must be byte-identical
/// to the exact algorithm, and -- asserted separately so a correctness
/// regression and a minimality regression fail with different messages --
/// never longer than the Dragon4 output.
///
//===----------------------------------------------------------------------===//

#include "fastpath/ryu.h"

#include "core/free_format.h"
#include "fp/binary16.h"
#include "fp/ieee_traits.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using namespace dragon4;

namespace {

struct OptionCombo {
  BoundaryMode Boundaries;
  TieBreak Ties;
};

/// The full symmetric options matrix: every boundary mode Ryu models,
/// crossed with every writer tie strategy.
constexpr OptionCombo SymmetricCombos[] = {
    {BoundaryMode::Conservative, TieBreak::RoundUp},
    {BoundaryMode::Conservative, TieBreak::RoundEven},
    {BoundaryMode::Conservative, TieBreak::RoundDown},
    {BoundaryMode::NearestEven, TieBreak::RoundUp},
    {BoundaryMode::NearestEven, TieBreak::RoundEven},
    {BoundaryMode::NearestEven, TieBreak::RoundDown},
    {BoundaryMode::BothInclusive, TieBreak::RoundUp},
    {BoundaryMode::BothInclusive, TieBreak::RoundEven},
    {BoundaryMode::BothInclusive, TieBreak::RoundDown},
};

const char *comboName(const OptionCombo &Combo) {
  switch (Combo.Boundaries) {
  case BoundaryMode::Conservative:
    switch (Combo.Ties) {
    case TieBreak::RoundUp:
      return "conservative/up";
    case TieBreak::RoundEven:
      return "conservative/even";
    case TieBreak::RoundDown:
      return "conservative/down";
    }
    break;
  case BoundaryMode::NearestEven:
    switch (Combo.Ties) {
    case TieBreak::RoundUp:
      return "nearest-even/up";
    case TieBreak::RoundEven:
      return "nearest-even/even";
    case TieBreak::RoundDown:
      return "nearest-even/down";
    }
    break;
  case BoundaryMode::BothInclusive:
    switch (Combo.Ties) {
    case TieBreak::RoundUp:
      return "both-inclusive/up";
    case TieBreak::RoundEven:
      return "both-inclusive/even";
    case TieBreak::RoundDown:
      return "both-inclusive/down";
    }
    break;
  default:
    break;
  }
  return "?";
}

/// Runs Ryu and the exact loop on one finite non-zero value and compares.
/// Returns false (after recording a gtest failure) on any divergence.
/// \p Digits is caller-owned scratch so sweeps do not reallocate per value.
template <typename T>
bool checkOne(T Value, uint64_t Bits, const OptionCombo &Combo,
              std::vector<uint8_t> &Digits) {
  using Traits = IeeeTraits<T>;
  Decomposed D = decompose(Value);
  bool AcceptBounds = false;
  if (!ryuEligible(10, Combo.Boundaries, (D.F & 1) == 0, AcceptBounds)) {
    ADD_FAILURE() << "symmetric combo " << comboName(Combo)
                  << " not Ryu-eligible, bits 0x" << std::hex << Bits;
    return false;
  }
  int K = 0;
  if (!ryuShortestInto(D.F, D.E, Traits::Precision, Traits::MinExponent,
                       AcceptBounds, Combo.Ties, Digits, K)) {
    ADD_FAILURE() << "Ryu fell back on in-range input, bits 0x" << std::hex
                  << Bits << " combo " << comboName(Combo);
    return false;
  }
  FreeFormatOptions Options;
  Options.Boundaries = Combo.Boundaries;
  Options.Ties = Combo.Ties;
  DigitString Exact = freeFormatDigits(D.F, D.E, Traits::Precision,
                                       Traits::MinExponent, Options);
  // Minimality first: a Ryu result longer than Dragon4's is a shortness
  // bug even if some prefix agrees.
  if (Digits.size() > Exact.Digits.size()) {
    ADD_FAILURE() << "Ryu emitted " << Digits.size() << " digits, Dragon4 "
                  << Exact.Digits.size() << ", bits 0x" << std::hex << Bits
                  << " combo " << comboName(Combo);
    return false;
  }
  if (Digits != Exact.Digits || K != Exact.K) {
    DigitString Ours;
    Ours.Digits = Digits;
    Ours.K = K;
    ADD_FAILURE() << "Ryu " << Ours.digitsAsText() << "e" << K << " != exact "
                  << Exact.digitsAsText() << "e" << Exact.K << ", bits 0x"
                  << std::hex << Bits << " combo " << comboName(Combo);
    return false;
  }
  return true;
}

/// Full binary16 encoding space (sign included -- digit generation works on
/// the magnitude, so this doubles as a check that the sign bit never leaks
/// into the path), all nine symmetric option combinations.
TEST(RyuBinary16, FullSpaceMatchesExactAllSymmetricOptions) {
  std::vector<uint8_t> Digits;
  int Failures = 0;
  for (uint32_t Bits = 0; Bits <= 0xffff; ++Bits) {
    Binary16 Value = Binary16::fromBits(static_cast<uint16_t>(Bits));
    FpClass Class = classify(Value);
    if (Class != FpClass::Normal && Class != FpClass::Subnormal)
      continue;
    for (const OptionCombo &Combo : SymmetricCombos) {
      if (!checkOne(Value, Bits, Combo, Digits) && ++Failures >= 8) {
        FAIL() << "stopping after " << Failures << " mismatches";
      }
    }
  }
  EXPECT_EQ(Failures, 0);
}

/// Strided walk of the binary32 encoding space (coprime stride so the
/// samples spread across every binade), one combo per boundary mode.
TEST(RyuBinary32, StridedMatchesExact) {
  constexpr OptionCombo Combos[] = {
      {BoundaryMode::Conservative, TieBreak::RoundUp},
      {BoundaryMode::NearestEven, TieBreak::RoundEven},
      {BoundaryMode::BothInclusive, TieBreak::RoundDown},
  };
  std::vector<uint8_t> Digits;
  int Failures = 0;
  for (uint64_t Bits = 0; Bits <= 0xffffffffull; Bits += 65537) {
    float Value = IeeeTraits<float>::fromBits(static_cast<uint32_t>(Bits));
    FpClass Class = classify(Value);
    if (Class != FpClass::Normal && Class != FpClass::Subnormal)
      continue;
    for (const OptionCombo &Combo : Combos) {
      if (!checkOne(Value, Bits, Combo, Digits) && ++Failures >= 8) {
        FAIL() << "stopping after " << Failures << " mismatches";
      }
    }
  }
  EXPECT_EQ(Failures, 0);
}

/// Asymmetric reader models cannot be expressed by Ryu's AcceptBounds
/// flag and must report ineligible (the engine then takes Grisu/Dragon4).
TEST(RyuEligibility, AsymmetricBoundariesRejected) {
  bool AcceptBounds = false;
  EXPECT_FALSE(
      ryuEligible(10, BoundaryMode::LowInclusive, true, AcceptBounds));
  EXPECT_FALSE(
      ryuEligible(10, BoundaryMode::LowInclusive, false, AcceptBounds));
  EXPECT_FALSE(
      ryuEligible(10, BoundaryMode::HighInclusive, true, AcceptBounds));
  EXPECT_FALSE(
      ryuEligible(10, BoundaryMode::HighInclusive, false, AcceptBounds));
}

/// Ryu is a base-10 algorithm; any other base takes the exact path.
TEST(RyuEligibility, NonDecimalBaseRejected) {
  bool AcceptBounds = false;
  EXPECT_FALSE(ryuEligible(2, BoundaryMode::Conservative, true, AcceptBounds));
  EXPECT_FALSE(ryuEligible(16, BoundaryMode::NearestEven, true, AcceptBounds));
  EXPECT_FALSE(
      ryuEligible(36, BoundaryMode::BothInclusive, false, AcceptBounds));
}

/// AcceptBounds resolution: Conservative always excludes the endpoints,
/// BothInclusive always admits them, NearestEven follows mantissa parity.
TEST(RyuEligibility, AcceptBoundsResolution) {
  bool AcceptBounds = true;
  ASSERT_TRUE(
      ryuEligible(10, BoundaryMode::Conservative, true, AcceptBounds));
  EXPECT_FALSE(AcceptBounds);
  ASSERT_TRUE(
      ryuEligible(10, BoundaryMode::BothInclusive, false, AcceptBounds));
  EXPECT_TRUE(AcceptBounds);
  ASSERT_TRUE(ryuEligible(10, BoundaryMode::NearestEven, true, AcceptBounds));
  EXPECT_TRUE(AcceptBounds);
  ASSERT_TRUE(ryuEligible(10, BoundaryMode::NearestEven, false, AcceptBounds));
  EXPECT_FALSE(AcceptBounds);
}

/// The ladder wrapper must equal plain shortestDigits for every finite
/// binary16 encoding under the default options (the path the engine and
/// toShortest take).
TEST(RyuLadder, Binary16FullSpaceEqualsExact) {
  for (uint32_t Bits = 0; Bits <= 0xffff; ++Bits) {
    Binary16 Value = Binary16::fromBits(static_cast<uint16_t>(Bits));
    FpClass Class = classify(Value);
    if (Class != FpClass::Normal && Class != FpClass::Subnormal)
      continue;
    FreeFormatOptions Options;
    DigitString Ladder = shortestDigitsLadder(Value, Options);
    DigitString Exact = shortestDigits(Value, Options);
    ASSERT_EQ(Ladder, Exact) << "bits 0x" << std::hex << Bits;
  }
}

/// Ladder vs exact over the full options matrix, strided so the test stays
/// cheap: the per-combo behavior is already swept exhaustively above; this
/// guards the dispatch logic (Ryu rung taken, Grisu rung taken, fallback).
TEST(RyuLadder, Binary16StridedAllSymmetricOptions) {
  for (uint32_t Bits = 1; Bits <= 0xffff; Bits += 7) {
    Binary16 Value = Binary16::fromBits(static_cast<uint16_t>(Bits));
    FpClass Class = classify(Value);
    if (Class != FpClass::Normal && Class != FpClass::Subnormal)
      continue;
    for (const OptionCombo &Combo : SymmetricCombos) {
      FreeFormatOptions Options;
      Options.Boundaries = Combo.Boundaries;
      Options.Ties = Combo.Ties;
      DigitString Ladder = shortestDigitsLadder(Value, Options);
      DigitString Exact = shortestDigits(Value, Options);
      ASSERT_EQ(Ladder, Exact)
          << "bits 0x" << std::hex << Bits << " combo " << comboName(Combo);
    }
  }
}

/// Asymmetric boundary modes route around Ryu and Grisu entirely; the
/// ladder must still give the exact answer.
TEST(RyuLadder, AsymmetricModesFallThrough) {
  for (uint32_t Bits = 1; Bits <= 0xffff; Bits += 31) {
    Binary16 Value = Binary16::fromBits(static_cast<uint16_t>(Bits));
    FpClass Class = classify(Value);
    if (Class != FpClass::Normal && Class != FpClass::Subnormal)
      continue;
    for (BoundaryMode Mode :
         {BoundaryMode::LowInclusive, BoundaryMode::HighInclusive}) {
      FreeFormatOptions Options;
      Options.Boundaries = Mode;
      DigitString Ladder = shortestDigitsLadder(Value, Options);
      DigitString Exact = shortestDigits(Value, Options);
      ASSERT_EQ(Ladder, Exact) << "bits 0x" << std::hex << Bits;
    }
  }
}

} // namespace
