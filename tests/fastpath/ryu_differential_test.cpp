//===- tests/fastpath/ryu_differential_test.cpp ----------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three-way differential test: Ryu vs Grisu3 vs the exact Burger-Dybvig
/// loop on the same decomposed inputs.  The three implementations share no
/// arithmetic (128-bit cached powers of five / 64-bit DiyFp error analysis
/// / exact bignums), so byte-identical agreement across a hostile input
/// set -- deterministic random bit patterns, binade boundaries, powers of
/// two and ten, pinned hard cases from the literature -- is strong
/// evidence all three are right.  Grisu is consulted under its own model
/// (conservative boundaries, round-up ties) and may decline ~0.5% of
/// inputs; Ryu and Dragon4 must agree on every input, under both the
/// conservative and the nearest-even reader.
///
//===----------------------------------------------------------------------===//

#include "core/free_format.h"
#include "fastpath/grisu.h"
#include "fastpath/ryu.h"
#include "fp/ieee_traits.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

using namespace dragon4;

namespace {

/// Per-test scratch so the differential loops do not reallocate per value.
struct Scratch {
  std::vector<uint8_t> RyuDigits;
  std::vector<uint8_t> GrisuDigits;
};

/// Runs all three converters on one finite non-zero value and cross-checks.
/// Under Conservative+RoundUp all three must agree byte for byte whenever
/// Grisu certifies; under NearestEven (both tie breaks) Ryu and Dragon4
/// must agree.  Records gtest failures; returns false on any divergence.
template <typename T> bool diffOne(T Value, uint64_t Bits, Scratch &S) {
  using Traits = IeeeTraits<T>;
  Decomposed D = decompose(Value);
  bool Ok = true;

  // --- Grisu's home turf: conservative reader, round-up ties. ---
  {
    FreeFormatOptions Options;
    Options.Boundaries = BoundaryMode::Conservative;
    Options.Ties = TieBreak::RoundUp;
    DigitString Exact = freeFormatDigits(D.F, D.E, Traits::Precision,
                                         Traits::MinExponent, Options);
    bool AcceptBounds = true;
    if (!ryuEligible(10, Options.Boundaries, (D.F & 1) == 0, AcceptBounds) ||
        AcceptBounds) {
      ADD_FAILURE() << "conservative reader misresolved, bits 0x" << std::hex
                    << Bits;
      return false;
    }
    int RyuK = 0;
    if (!ryuShortestInto(D.F, D.E, Traits::Precision, Traits::MinExponent,
                         AcceptBounds, Options.Ties, S.RyuDigits, RyuK)) {
      ADD_FAILURE() << "Ryu declined, bits 0x" << std::hex << Bits;
      return false;
    }
    if (S.RyuDigits != Exact.Digits || RyuK != Exact.K) {
      ADD_FAILURE() << "Ryu != Dragon4 (conservative/up), bits 0x" << std::hex
                    << Bits;
      Ok = false;
    }
    int GrisuK = 0;
    if (grisuShortestInto(D.F, D.E, Traits::Precision, Traits::MinExponent,
                          S.GrisuDigits, GrisuK)) {
      if (S.GrisuDigits != Exact.Digits || GrisuK != Exact.K) {
        ADD_FAILURE() << "Grisu != Dragon4 (conservative/up), bits 0x"
                      << std::hex << Bits;
        Ok = false;
      }
      if (S.GrisuDigits != S.RyuDigits || GrisuK != RyuK) {
        ADD_FAILURE() << "Grisu != Ryu (conservative/up), bits 0x" << std::hex
                      << Bits;
        Ok = false;
      }
    }
  }

  // --- The default reader: nearest-even, both writer tie strategies. ---
  for (TieBreak Ties : {TieBreak::RoundUp, TieBreak::RoundEven}) {
    FreeFormatOptions Options;
    Options.Boundaries = BoundaryMode::NearestEven;
    Options.Ties = Ties;
    DigitString Exact = freeFormatDigits(D.F, D.E, Traits::Precision,
                                         Traits::MinExponent, Options);
    bool AcceptBounds = false;
    if (!ryuEligible(10, Options.Boundaries, (D.F & 1) == 0, AcceptBounds)) {
      ADD_FAILURE() << "nearest-even reader ineligible, bits 0x" << std::hex
                    << Bits;
      return false;
    }
    int RyuK = 0;
    if (!ryuShortestInto(D.F, D.E, Traits::Precision, Traits::MinExponent,
                         AcceptBounds, Ties, S.RyuDigits, RyuK)) {
      ADD_FAILURE() << "Ryu declined, bits 0x" << std::hex << Bits;
      return false;
    }
    if (S.RyuDigits != Exact.Digits || RyuK != Exact.K) {
      ADD_FAILURE() << "Ryu != Dragon4 (nearest-even), bits 0x" << std::hex
                    << Bits;
      Ok = false;
    }
  }
  return Ok;
}

template <typename T> bool diffBits(uint64_t Bits, Scratch &S) {
  T Value = IeeeTraits<T>::fromBits(
      static_cast<typename IeeeTraits<T>::Bits>(Bits));
  FpClass Class = classify(Value);
  if (Class != FpClass::Normal && Class != FpClass::Subnormal)
    return true;
  return diffOne(Value, Bits, S);
}

TEST(RyuDifferential, DoubleRandomBitPatterns) {
  // Deterministic seed: the test must be reproducible run to run.
  std::mt19937_64 Rng(0x52797544696666ull); // "RyuDiff"
  Scratch S;
  int Failures = 0;
  for (int I = 0; I < 20000; ++I) {
    if (!diffBits<double>(Rng(), S) && ++Failures >= 8)
      FAIL() << "stopping after " << Failures << " divergences";
  }
  EXPECT_EQ(Failures, 0);
}

TEST(RyuDifferential, FloatRandomBitPatterns) {
  std::mt19937_64 Rng(0x52797544696666ull);
  Scratch S;
  int Failures = 0;
  for (int I = 0; I < 20000; ++I) {
    if (!diffBits<float>(Rng() & 0xffffffffull, S) && ++Failures >= 8)
      FAIL() << "stopping after " << Failures << " divergences";
  }
  EXPECT_EQ(Failures, 0);
}

/// Binade boundaries: the largest value below each power of two, the power
/// itself, and its successor.  These sit where the rounding interval is
/// asymmetric (the boundary-below is half the usual width), the classic
/// place for shortest-output bugs.
TEST(RyuDifferential, DoubleBinadeBoundaries) {
  Scratch S;
  int Failures = 0;
  for (uint64_t Exp = 1; Exp <= 2046; ++Exp) {
    uint64_t PowerOfTwo = Exp << 52;
    for (uint64_t Bits : {PowerOfTwo - 1, PowerOfTwo, PowerOfTwo + 1}) {
      if (!diffBits<double>(Bits, S) && ++Failures >= 8)
        FAIL() << "stopping after " << Failures << " divergences";
    }
  }
  EXPECT_EQ(Failures, 0);
}

TEST(RyuDifferential, FloatBinadeBoundaries) {
  Scratch S;
  int Failures = 0;
  for (uint64_t Exp = 1; Exp <= 254; ++Exp) {
    uint64_t PowerOfTwo = Exp << 23;
    for (uint64_t Bits : {PowerOfTwo - 1, PowerOfTwo, PowerOfTwo + 1}) {
      if (!diffBits<float>(Bits, S) && ++Failures >= 8)
        FAIL() << "stopping after " << Failures << " divergences";
    }
  }
  EXPECT_EQ(Failures, 0);
}

/// Exact powers of two and (while exactly representable) powers of ten,
/// plus the nearest double to each larger power of ten.  Powers of ten
/// exercise the vrIsTrailingZeros bookkeeping: their shortest form is a
/// single digit only if the exactness tracking is right.
TEST(RyuDifferential, DoublePowersOfTwoAndTen) {
  Scratch S;
  int Failures = 0;
  for (int I = -1074; I <= 1023; ++I) {
    double Value = std::ldexp(1.0, I);
    if (!diffOne(Value, IeeeTraits<double>::toBits(Value), S) &&
        ++Failures >= 8)
      FAIL() << "stopping after " << Failures << " divergences";
  }
  double Ten = 1.0;
  for (int I = 0; I <= 308; ++I) {
    if (!diffOne(Ten, IeeeTraits<double>::toBits(Ten), S) && ++Failures >= 8)
      FAIL() << "stopping after " << Failures << " divergences";
    Ten *= 10.0;
  }
  double Tenth = 1.0;
  for (int I = 0; I >= -307; --I) {
    if (!diffOne(Tenth, IeeeTraits<double>::toBits(Tenth), S) &&
        ++Failures >= 8)
      FAIL() << "stopping after " << Failures << " divergences";
    Tenth /= 10.0;
  }
  EXPECT_EQ(Failures, 0);
}

/// Pinned adversarial values from the float-printing literature: extreme
/// magnitudes, subnormals, the 2^53 precision cliff, round-trip killers.
TEST(RyuDifferential, DoublePinnedHardCases) {
  const double Pinned[] = {
      5e-324,                  // Smallest subnormal.
      1.0000000000000002e-322, // Small subnormal, several digits.
      2.2250738585072011e-308, // Largest subnormal ("PHP hang" value).
      2.2250738585072014e-308, // Smallest normal.
      1.7976931348623157e308,  // Largest finite.
      9007199254740992.0,      // 2^53: integer precision cliff.
      9007199254740994.0,      // 2^53 + 2: first even-only neighbour.
      1e23,                    // Classic shortest-rounding tie case.
      8.98846567431158e307,    // 2^1023 region.
      3.5844466002796428e298,  // Known Grisu-hard case.
      1.8446744073709552e19,   // 2^64 region.
      6.02214076e23,           // Avogadro.
      2.718281828459045,       // e.
      3.141592653589793,       // pi.
      0.1, 0.3, 1.0 / 3.0,     // Repeating binary fractions.
      1e-310,                  // Mid-range subnormal.
      4.891554466621696e-17,   // Near-tie mantissa pattern.
      1.2345678901234567e-30,  // Dense mantissa, negative decade.
  };
  Scratch S;
  for (double Value : Pinned)
    EXPECT_TRUE(diffOne(Value, IeeeTraits<double>::toBits(Value), S))
        << "pinned value " << Value;
}

TEST(RyuDifferential, FloatPinnedHardCases) {
  const float Pinned[] = {
      1.401298464324817e-45f, // Smallest subnormal.
      1.1754942e-38f,         // Largest subnormal.
      1.17549435e-38f,        // Smallest normal.
      3.4028235e38f,          // Largest finite.
      16777216.0f,            // 2^24: float precision cliff.
      16777218.0f,            // 2^24 + 2.
      1e23f, 6.02214076e23f,  // Large decades.
      0.1f, 0.3f,             // Repeating binary fractions.
      3.14159274f,            // pi, float-rounded.
      7.038531e-26f,          // Known hard case for float shortest output.
  };
  Scratch S;
  for (float Value : Pinned)
    EXPECT_TRUE(diffOne(Value, IeeeTraits<float>::toBits(Value), S))
        << "pinned value " << Value;
}

} // namespace
