/*===- tests/abi/abi_c_smoke.c - The ABI from plain C -------------*- C -*-===*
 *
 * Part of libdragon4. SPDX-License-Identifier: MIT
 *
 *===----------------------------------------------------------------------===*
 *
 * Compiled as C99 (no C++ runtime in this translation unit) and linked
 * against the library: the proof that src/abi/dragon4_to_chars.h really
 * is a C header and the entry points really are callable from C.  The
 * checks are deliberately self-contained -- fixed expected strings for
 * values whose shortest forms are unambiguous -- because no C++ oracle
 * is reachable from here.
 *
 * Exit status 0 on success; any failure prints the case and returns 1.
 *
 *===----------------------------------------------------------------------===*/

#include "abi/dragon4_to_chars.h"

#include <stdio.h>
#include <string.h>

static int Failures = 0;

static void expect_str(const char *Label, const char *Buf, size_t Len,
                       const char *Want) {
  if (Len != strlen(Want) || memcmp(Buf, Want, Len) != 0) {
    fprintf(stderr, "FAIL %s: got \"%.*s\" want \"%s\"\n", Label, (int)Len,
            Buf, Want);
    ++Failures;
  }
}

static void expect_status(const char *Label, dragon4_status Got,
                          dragon4_status Want) {
  if (Got != Want) {
    fprintf(stderr, "FAIL %s: status %d want %d\n", Label, (int)Got,
            (int)Want);
    ++Failures;
  }
}

int main(void) {
  char Buf[DRAGON4_MAX_CHARS10];
  size_t Len = 0;

  /* 0.1 is the canonical shortest-form witness: bits 0x3FB999999999999A. */
  expect_status("to_chars(0.1)",
                dragon4_to_chars(DRAGON4_FORMAT_BINARY64,
                                 0x3FB999999999999AULL, 0, NULL, Buf,
                                 sizeof(Buf), &Len),
                DRAGON4_OK);
  expect_str("to_chars(0.1)", Buf, Len, "0.1");

  /* Typed convenience + parse round-trip, no bit fiddling needed. */
  expect_status("double_to_chars",
                dragon4_double_to_chars(1.5, Buf, sizeof(Buf), &Len),
                DRAGON4_OK);
  expect_str("double_to_chars", Buf, Len, "1.5");
  {
    double Value = 0.0;
    size_t Consumed = 0;
    expect_status("chars_to_double",
                  dragon4_chars_to_double("2.5e1", 5, &Value, &Consumed),
                  DRAGON4_OK);
    if (Value != 25.0 || Consumed != 5) {
      fprintf(stderr, "FAIL chars_to_double: %f consumed %zu\n", Value,
              Consumed);
      ++Failures;
    }
  }

  /* Zero-initialized options are the documented defaults. */
  {
    dragon4_options Options = DRAGON4_OPTIONS_INIT;
    expect_status("zeroed options",
                  dragon4_to_chars(DRAGON4_FORMAT_BINARY64,
                                   0x3FB999999999999AULL, 0, &Options, Buf,
                                   sizeof(Buf), &Len),
                  DRAGON4_OK);
    expect_str("zeroed options", Buf, Len, "0.1");
  }

  /* The no-truncation contract: a too-small buffer reports the size. */
  {
    char Tiny[2];
    Len = 0;
    expect_status("err-size",
                  dragon4_to_chars(DRAGON4_FORMAT_BINARY64,
                                   0x3FB999999999999AULL, 0, NULL, Tiny,
                                   sizeof(Tiny), &Len),
                  DRAGON4_ERR_SIZE);
    if (Len != 3) {
      fprintf(stderr, "FAIL err-size: required %zu want 3\n", Len);
      ++Failures;
    }
  }

  /* Binary16 1.0 (0x3C00): smaller formats address the same entry point. */
  expect_status("binary16",
                dragon4_to_chars(DRAGON4_FORMAT_BINARY16, 0x3C00, 0, NULL,
                                 Buf, sizeof(Buf), &Len),
                DRAGON4_OK);
  expect_str("binary16", Buf, Len, "1");

  /* Fixed-precision: 1.5 to 3 places. */
  expect_status("to_chars_fixed",
                dragon4_to_chars_fixed(DRAGON4_FORMAT_BINARY64,
                                       0x3FF8000000000000ULL, 0, 3, NULL,
                                       Buf, sizeof(Buf), &Len),
                DRAGON4_OK);
  expect_str("to_chars_fixed", Buf, Len, "1.500");

  /* from_chars: longest valid prefix, bits returned. */
  {
    uint64_t Lo = 0, Hi = 0;
    size_t Consumed = 0;
    expect_status("from_chars",
                  dragon4_from_chars(DRAGON4_FORMAT_BINARY64, "0.1junk", 7,
                                     &Lo, &Hi, &Consumed),
                  DRAGON4_OK);
    if (Lo != 0x3FB999999999999AULL || Hi != 0 || Consumed != 3) {
      fprintf(stderr, "FAIL from_chars: lo %llx consumed %zu\n",
              (unsigned long long)Lo, Consumed);
      ++Failures;
    }
    expect_status("from_chars malformed",
                  dragon4_from_chars(DRAGON4_FORMAT_BINARY64, "junk", 4, &Lo,
                                     &Hi, &Consumed),
                  DRAGON4_ERR_MALFORMED);
  }

  /* Caller-owned scratch lifecycle. */
  {
    dragon4_scratch *Scratch = dragon4_scratch_create();
    if (!Scratch) {
      fprintf(stderr, "FAIL scratch_create\n");
      ++Failures;
    } else {
      expect_status("to_chars_scratch",
                    dragon4_to_chars_scratch(Scratch, DRAGON4_FORMAT_BINARY64,
                                             0x3FB999999999999AULL, 0, NULL,
                                             Buf, sizeof(Buf), &Len),
                    DRAGON4_OK);
      expect_str("to_chars_scratch", Buf, Len, "0.1");
      dragon4_scratch_destroy(Scratch);
    }
  }

  /* Validation rejects without crashing. */
  expect_status("bad format",
                dragon4_to_chars((dragon4_format)99, 0, 0, NULL, Buf,
                                 sizeof(Buf), &Len),
                DRAGON4_ERR_BAD_ARGUMENT);
  expect_status("bad length ptr",
                dragon4_to_chars(DRAGON4_FORMAT_BINARY64, 0, 0, NULL, Buf,
                                 sizeof(Buf), NULL),
                DRAGON4_ERR_BAD_ARGUMENT);

  /* Bound table sanity from the C side. */
  if (dragon4_max_chars(DRAGON4_FORMAT_BINARY64, 10) !=
      DRAGON4_MAX_CHARS10_BINARY64) {
    fprintf(stderr, "FAIL max_chars\n");
    ++Failures;
  }

  if (Failures) {
    fprintf(stderr, "%d failure(s)\n", Failures);
    return 1;
  }
  printf("abi_c_smoke: all checks passed\n");
  return 0;
}
