//===- tests/abi/abi_test.cpp - The C ABI contract ---------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The documented contract of src/abi/dragon4_to_chars.h, checked from the
// C++ side (the pure-C compile check is tests/abi/abi_c_smoke.c):
//
//   * byte identity with toShortest/toFixed/engine::format for every
//     format and a sweep of option mappings;
//   * the no-truncation contract: DRAGON4_ERR_SIZE with the required
//     length, exact-bound and one-byte-short boundary cases;
//   * argument validation -> DRAGON4_ERR_BAD_ARGUMENT, never a crash;
//   * dragon4_from_chars against parse::parseFloat, plus round-trips;
//   * deterministic per-call output under 4-thread interleaving.
//
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace dragon4;
namespace eng = dragon4::engine;

namespace {

template <typename T> std::string abiShortest(T Value) {
  uint64_t Lo = 0, Hi = 0;
  FormatTraits<T>::encodingBits(Value, Lo, Hi);
  char Buf[DRAGON4_MAX_CHARS10];
  size_t Len = 0;
  dragon4_status Status =
      dragon4_to_chars(static_cast<dragon4_format>(FormatTraits<T>::Id), Lo,
                       Hi, nullptr, Buf, sizeof(Buf), &Len);
  EXPECT_EQ(Status, DRAGON4_OK);
  return std::string(Buf, Len);
}

TEST(AbiToChars, MatchesToShortestAcrossFormats) {
  for (double V : randomBitsDoubles(4096, 0xab1d0001))
    ASSERT_EQ(abiShortest(V), toShortest(V)) << std::hexfloat << V;
  for (float V : randomBitsFloats(4096, 0xab1d0002))
    ASSERT_EQ(abiShortest(V), toShortest(V));
  for (uint32_t Bits = 0; Bits < 0x10000; Bits += 7)
    ASSERT_EQ(abiShortest(Binary16::fromBits(static_cast<uint16_t>(Bits))),
              toShortest(Binary16::fromBits(static_cast<uint16_t>(Bits))))
        << "bits " << Bits;
}

TEST(AbiToChars, MatchesToShortestForWideFormats) {
  SplitMix64 Rng(0xab1d0003);
  for (int I = 0; I < 512; ++I) {
    long double V =
        std::ldexp(static_cast<long double>(Rng.next() | (1ull << 63)),
                   static_cast<int>(Rng.below(8000)) - 4000 - 63);
    ASSERT_EQ(abiShortest(V), toShortest(V));
  }
  for (int I = 0; I < 512; ++I) {
    uint64_t Hi = (Rng.next() & 0x0000FFFFFFFFFFFFull) |
                  ((1 + Rng.below(0x7FFD)) << 48);
    Binary128 V = Binary128::fromBits(Hi, Rng.next());
    ASSERT_EQ(abiShortest(V), toShortest(V));
  }
}

TEST(AbiToChars, ZeroedOptionsAreTheDefaults) {
  // DRAGON4_OPTIONS_INIT (all zeros) must mean exactly "no options":
  // this is what makes C-side zero-initialization safe.
  dragon4_options Zeroed = DRAGON4_OPTIONS_INIT;
  for (double V : randomBitsDoubles(256, 0xab1d0004)) {
    uint64_t Lo = 0, Hi = 0;
    FormatTraits<double>::encodingBits(V, Lo, Hi);
    char A[64], B[64];
    size_t LenA = 0, LenB = 0;
    ASSERT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, &Zeroed, A,
                               sizeof(A), &LenA),
              DRAGON4_OK);
    ASSERT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, nullptr, B,
                               sizeof(B), &LenB),
              DRAGON4_OK);
    ASSERT_EQ(std::string(A, LenA), std::string(B, LenB));
  }
}

TEST(AbiToChars, OptionMappingMatchesPrintOptions) {
  // Every C enum value against the C++ option it documents, over a
  // corpus wide enough to hit digits where the settings matter.
  struct Case {
    dragon4_options C;
    PrintOptions Cpp;
  };
  std::vector<Case> Cases;
  {
    Case Marks;
    Marks.C.base = 2;
    Marks.C.marks_as_zeros = 1;
    Marks.Cpp.Base = 2;
    Marks.Cpp.Marks = MarkStyle::Zeros;
    Cases.push_back(Marks);
    Case Upper;
    Upper.C.base = 16;
    Upper.C.uppercase_digits = 1;
    Upper.C.exponent_marker = '^';
    Upper.Cpp.Base = 16;
    Upper.Cpp.UppercaseDigits = true;
    Upper.Cpp.ExponentMarker = '^';
    Cases.push_back(Upper);
    const dragon4_boundaries AllBoundaries[] = {
        DRAGON4_BOUNDARIES_NEAREST_EVEN, DRAGON4_BOUNDARIES_CONSERVATIVE,
        DRAGON4_BOUNDARIES_BOTH_INCLUSIVE, DRAGON4_BOUNDARIES_LOW_INCLUSIVE,
        DRAGON4_BOUNDARIES_HIGH_INCLUSIVE};
    const BoundaryMode CppBoundaries[] = {
        BoundaryMode::NearestEven, BoundaryMode::Conservative,
        BoundaryMode::BothInclusive, BoundaryMode::LowInclusive,
        BoundaryMode::HighInclusive};
    for (int I = 0; I < 5; ++I) {
      Case C;
      C.C.boundaries = static_cast<uint8_t>(AllBoundaries[I]);
      C.Cpp.Boundaries = CppBoundaries[I];
      Cases.push_back(C);
    }
    const dragon4_ties AllTies[] = {DRAGON4_TIES_ROUND_UP,
                                    DRAGON4_TIES_ROUND_EVEN,
                                    DRAGON4_TIES_ROUND_DOWN};
    const TieBreak CppTies[] = {TieBreak::RoundUp, TieBreak::RoundEven,
                                TieBreak::RoundDown};
    for (int I = 0; I < 3; ++I) {
      Case C;
      C.C.ties = static_cast<uint8_t>(AllTies[I]);
      C.C.boundaries = DRAGON4_BOUNDARIES_BOTH_INCLUSIVE; // Ties matter here.
      C.Cpp.Ties = CppTies[I];
      C.Cpp.Boundaries = BoundaryMode::BothInclusive;
      Cases.push_back(C);
    }
  }
  std::vector<double> Values = randomBitsDoubles(512, 0xab1d0005);
  eng::Scratch S;
  for (const Case &C : Cases) {
    for (double V : Values) {
      uint64_t Lo = 0, Hi = 0;
      FormatTraits<double>::encodingBits(V, Lo, Hi);
      char Abi[128], Ref[128];
      size_t AbiLen = 0;
      ASSERT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, &C.C, Abi,
                                 sizeof(Abi), &AbiLen),
                DRAGON4_OK);
      size_t RefLen = eng::format(V, Ref, sizeof(Ref), C.Cpp, S);
      ASSERT_EQ(std::string(Abi, AbiLen), std::string(Ref, RefLen))
          << "base " << int(C.C.base) << " boundaries "
          << int(C.C.boundaries) << " ties " << int(C.C.ties);
    }
  }
}

TEST(AbiToChars, ExactBoundAndOneByteShort) {
  // The committed worst case for binary64 base 10 is 24 characters; at
  // exactly maxShortestBufferSize the conversion must succeed, one byte
  // short it must report ERR_SIZE with the true required length.
  const double Witness = -1.7976931348623157e+308;
  ASSERT_EQ(toShortest(Witness).size(), size_t(DRAGON4_MAX_CHARS10_BINARY64));
  uint64_t Lo = 0, Hi = 0;
  FormatTraits<double>::encodingBits(Witness, Lo, Hi);

  char Exact[DRAGON4_MAX_CHARS10_BINARY64];
  size_t Len = 0;
  EXPECT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, nullptr, Exact,
                             sizeof(Exact), &Len),
            DRAGON4_OK);
  EXPECT_EQ(Len, sizeof(Exact));
  EXPECT_EQ(std::string(Exact, Len), toShortest(Witness));

  char Short[DRAGON4_MAX_CHARS10_BINARY64 - 1];
  Len = 0;
  EXPECT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, nullptr, Short,
                             sizeof(Short), &Len),
            DRAGON4_ERR_SIZE);
  EXPECT_EQ(Len, size_t(DRAGON4_MAX_CHARS10_BINARY64));
}

TEST(AbiToChars, SizeQueryThenRetryIdiom) {
  uint64_t Lo = 0, Hi = 0;
  FormatTraits<double>::encodingBits(0.1, Lo, Hi);
  size_t Len = 0;
  // NULL buffer with zero capacity: pure size query.
  EXPECT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, nullptr,
                             nullptr, 0, &Len),
            DRAGON4_ERR_SIZE);
  ASSERT_EQ(Len, toShortest(0.1).size());
  std::vector<char> Buf(Len);
  EXPECT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, nullptr,
                             Buf.data(), Buf.size(), &Len),
            DRAGON4_OK);
  EXPECT_EQ(std::string(Buf.data(), Len), "0.1");
}

TEST(AbiToChars, EveryFormatFitsItsDocumentedBound) {
  // dragon4_max_chars must agree with the compile-time table, and a
  // buffer of that size must never see ERR_SIZE (spot-checked on the
  // adversarial extremes per format).
  EXPECT_EQ(dragon4_max_chars(DRAGON4_FORMAT_BINARY16, 10),
            size_t(DRAGON4_MAX_CHARS10_BINARY16));
  EXPECT_EQ(dragon4_max_chars(DRAGON4_FORMAT_BINARY32, 0),
            size_t(DRAGON4_MAX_CHARS10_BINARY32));
  EXPECT_EQ(dragon4_max_chars(DRAGON4_FORMAT_BINARY64, 10),
            size_t(DRAGON4_MAX_CHARS10_BINARY64));
  EXPECT_EQ(dragon4_max_chars(DRAGON4_FORMAT_EXTENDED80, 10),
            size_t(DRAGON4_MAX_CHARS10_EXTENDED80));
  EXPECT_EQ(dragon4_max_chars(DRAGON4_FORMAT_BINARY128, 10),
            size_t(DRAGON4_MAX_CHARS10_BINARY128));
  EXPECT_EQ(dragon4_max_chars(DRAGON4_FORMAT_BINARY64, 1), 0u);
  EXPECT_EQ(dragon4_max_chars(DRAGON4_FORMAT_BINARY64, 37), 0u);
  EXPECT_GE(dragon4_max_chars(DRAGON4_FORMAT_BINARY64, 2),
            size_t(DRAGON4_MAX_CHARS10_BINARY64));
}

TEST(AbiToChars, BadArgumentsAreRejectedNotCrashes) {
  uint64_t Lo = 0, Hi = 0;
  FormatTraits<double>::encodingBits(1.0, Lo, Hi);
  char Buf[64];
  size_t Len = 0;

  EXPECT_EQ(dragon4_to_chars(static_cast<dragon4_format>(99), Lo, Hi,
                             nullptr, Buf, sizeof(Buf), &Len),
            DRAGON4_ERR_BAD_ARGUMENT);
  EXPECT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, nullptr, Buf,
                             sizeof(Buf), nullptr),
            DRAGON4_ERR_BAD_ARGUMENT);
  EXPECT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, nullptr,
                             nullptr, 8, &Len),
            DRAGON4_ERR_BAD_ARGUMENT);

  dragon4_options Bad = DRAGON4_OPTIONS_INIT;
  Bad.base = 1;
  EXPECT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, &Bad, Buf,
                             sizeof(Buf), &Len),
            DRAGON4_ERR_BAD_ARGUMENT);
  Bad = dragon4_options DRAGON4_OPTIONS_INIT;
  Bad.base = 37;
  EXPECT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, &Bad, Buf,
                             sizeof(Buf), &Len),
            DRAGON4_ERR_BAD_ARGUMENT);
  Bad = dragon4_options DRAGON4_OPTIONS_INIT;
  Bad.boundaries = 5;
  EXPECT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, &Bad, Buf,
                             sizeof(Buf), &Len),
            DRAGON4_ERR_BAD_ARGUMENT);
  Bad = dragon4_options DRAGON4_OPTIONS_INIT;
  Bad.ties = 3;
  EXPECT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, &Bad, Buf,
                             sizeof(Buf), &Len),
            DRAGON4_ERR_BAD_ARGUMENT);

  EXPECT_EQ(dragon4_to_chars_fixed(DRAGON4_FORMAT_BINARY64, Lo, Hi, -1,
                                   nullptr, Buf, sizeof(Buf), &Len),
            DRAGON4_ERR_BAD_ARGUMENT);
  EXPECT_EQ(dragon4_to_chars_scratch(nullptr, DRAGON4_FORMAT_BINARY64, Lo,
                                     Hi, nullptr, Buf, sizeof(Buf), &Len),
            DRAGON4_ERR_BAD_ARGUMENT);
}

TEST(AbiToCharsFixed, MatchesToFixed) {
  eng::Scratch S;
  std::vector<double> Values = randomNormalDoubles(512, 0xab1d0006);
  const int Precisions[] = {0, 1, 6, 17, 40};
  for (double V : Values) {
    uint64_t Lo = 0, Hi = 0;
    FormatTraits<double>::encodingBits(V, Lo, Hi);
    for (int P : Precisions) {
      char Abi[512], Ref[512];
      size_t AbiLen = 0;
      ASSERT_EQ(dragon4_to_chars_fixed(DRAGON4_FORMAT_BINARY64, Lo, Hi, P,
                                       nullptr, Abi, sizeof(Abi), &AbiLen),
                DRAGON4_OK);
      size_t RefLen =
          eng::formatFixed(V, P, Ref, sizeof(Ref), PrintOptions{}, S);
      ASSERT_EQ(std::string(Abi, AbiLen), std::string(Ref, RefLen))
          << std::hexfloat << V << " precision " << P;
      ASSERT_EQ(std::string(Abi, AbiLen), toFixed(V, P))
          << std::hexfloat << V << " precision " << P;
    }
  }
}

TEST(AbiToCharsFixed, ReportsRequiredSizeOnOverflow) {
  uint64_t Lo = 0, Hi = 0;
  FormatTraits<double>::encodingBits(1.0 / 3.0, Lo, Hi);
  size_t Required = 0;
  ASSERT_EQ(dragon4_to_chars_fixed(DRAGON4_FORMAT_BINARY64, Lo, Hi, 30,
                                   nullptr, nullptr, 0, &Required),
            DRAGON4_ERR_SIZE);
  ASSERT_EQ(Required, toFixed(1.0 / 3.0, 30).size());

  std::vector<char> Buf(Required);
  size_t Len = 0;
  EXPECT_EQ(dragon4_to_chars_fixed(DRAGON4_FORMAT_BINARY64, Lo, Hi, 30,
                                   nullptr, Buf.data(), Buf.size(), &Len),
            DRAGON4_OK);
  EXPECT_EQ(Len, Required);

  EXPECT_EQ(dragon4_to_chars_fixed(DRAGON4_FORMAT_BINARY64, Lo, Hi, 30,
                                   nullptr, Buf.data(), Buf.size() - 1, &Len),
            DRAGON4_ERR_SIZE);
  EXPECT_EQ(Len, Required);
}

TEST(AbiFromChars, MatchesParseFloatAndRoundTrips) {
  // Textual cases with known encodings plus shortest-form round-trips.
  for (double V : randomBitsDoubles(2048, 0xab1d0007)) {
    if (V != V)
      continue; // NaN payloads are not preserved through text.
    std::string Text = toShortest(V);
    uint64_t Lo = 0, Hi = 0;
    size_t Consumed = 0;
    ASSERT_EQ(dragon4_from_chars(DRAGON4_FORMAT_BINARY64, Text.data(),
                                 Text.size(), &Lo, &Hi, &Consumed),
              DRAGON4_OK)
        << Text;
    ASSERT_EQ(Consumed, Text.size()) << Text;
    ASSERT_EQ(FormatTraits<double>::fromEncoding(Lo, Hi), V) << Text;

    parse::ParseResult<double> Ref = parse::parseFloat<double>(Text);
    ASSERT_EQ(FormatTraits<double>::fromEncoding(Lo, Hi), Ref.Value) << Text;
  }
}

TEST(AbiFromChars, LongestPrefixAndMalformed) {
  uint64_t Lo = 0, Hi = 0;
  size_t Consumed = 0;
  ASSERT_EQ(dragon4_from_chars(DRAGON4_FORMAT_BINARY64, "1.5e2xyz", 8, &Lo,
                               &Hi, &Consumed),
            DRAGON4_OK);
  EXPECT_EQ(Consumed, 5u);
  EXPECT_EQ(FormatTraits<double>::fromEncoding(Lo, Hi), 150.0);

  EXPECT_EQ(dragon4_from_chars(DRAGON4_FORMAT_BINARY64, "xyz", 3, &Lo, &Hi,
                               &Consumed),
            DRAGON4_ERR_MALFORMED);
  EXPECT_EQ(Consumed, 0u);
  EXPECT_EQ(dragon4_from_chars(DRAGON4_FORMAT_BINARY64, nullptr, 3, &Lo, &Hi,
                               &Consumed),
            DRAGON4_ERR_BAD_ARGUMENT);
  EXPECT_EQ(dragon4_from_chars(DRAGON4_FORMAT_BINARY64, "1.0", 3, nullptr,
                               &Hi, &Consumed),
            DRAGON4_ERR_BAD_ARGUMENT);

  // Empty text with a NULL pointer is a valid (malformed) query.
  EXPECT_EQ(dragon4_from_chars(DRAGON4_FORMAT_BINARY64, nullptr, 0, &Lo, &Hi,
                               nullptr),
            DRAGON4_ERR_MALFORMED);
}

TEST(AbiConveniences, TypedWrappersRoundTrip) {
  char Buf[DRAGON4_MAX_CHARS10];
  size_t Len = 0;
  ASSERT_EQ(dragon4_double_to_chars(0.1, Buf, sizeof(Buf), &Len), DRAGON4_OK);
  EXPECT_EQ(std::string(Buf, Len), "0.1");
  double D = 0;
  ASSERT_EQ(dragon4_chars_to_double(Buf, Len, &D, nullptr), DRAGON4_OK);
  EXPECT_EQ(D, 0.1);

  ASSERT_EQ(dragon4_float_to_chars(0.25f, Buf, sizeof(Buf), &Len),
            DRAGON4_OK);
  EXPECT_EQ(std::string(Buf, Len), "0.25");
  float F = 0;
  ASSERT_EQ(dragon4_chars_to_float(Buf, Len, &F, nullptr), DRAGON4_OK);
  EXPECT_EQ(F, 0.25f);
}

TEST(AbiScratch, CallerOwnedScratchMatchesThreadLocal) {
  dragon4_scratch *Scratch = dragon4_scratch_create();
  ASSERT_NE(Scratch, nullptr);
  for (double V : randomBitsDoubles(512, 0xab1d0008)) {
    uint64_t Lo = 0, Hi = 0;
    FormatTraits<double>::encodingBits(V, Lo, Hi);
    char A[64], B[64];
    size_t LenA = 0, LenB = 0;
    ASSERT_EQ(dragon4_to_chars_scratch(Scratch, DRAGON4_FORMAT_BINARY64, Lo,
                                       Hi, nullptr, A, sizeof(A), &LenA),
              DRAGON4_OK);
    ASSERT_EQ(dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, nullptr, B,
                               sizeof(B), &LenB),
              DRAGON4_OK);
    ASSERT_EQ(std::string(A, LenA), std::string(B, LenB));
  }
  dragon4_scratch_destroy(Scratch);
  dragon4_scratch_destroy(nullptr); // Must be a safe no-op.
}

TEST(AbiThreads, FourThreadsInterleavedFormatsStayDeterministic) {
  // Four threads hammer the thread-local entry points with interleaved
  // formats and option sets; every call must produce exactly the output
  // the same call produces single-threaded.  This is the reentrancy
  // proof for the default (thread-local scratch) path.
  constexpr int ThreadCount = 4;
  constexpr int PerThread = 4000;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int TI = 0; TI < ThreadCount; ++TI) {
    Threads.emplace_back([TI, &Failures] {
      SplitMix64 Rng(0xab1d1000 + static_cast<uint64_t>(TI));
      dragon4_options Hex = DRAGON4_OPTIONS_INIT;
      Hex.base = 16;
      for (int I = 0; I < PerThread; ++I) {
        char Buf[DRAGON4_MAX_CHARS10 * 2];
        size_t Len = 0;
        switch (I % 4) {
        case 0: {
          double V = FormatTraits<double>::fromEncoding(Rng.next(), 0);
          if (dragon4_to_chars(DRAGON4_FORMAT_BINARY64,
                               std::bit_cast<uint64_t>(V), 0, nullptr, Buf,
                               sizeof(Buf), &Len) != DRAGON4_OK ||
              std::string(Buf, Len) != toShortest(V))
            ++Failures;
          break;
        }
        case 1: {
          float V = FormatTraits<float>::fromEncoding(
              static_cast<uint32_t>(Rng.next()), 0);
          uint64_t Lo = 0, Hi = 0;
          FormatTraits<float>::encodingBits(V, Lo, Hi);
          if (dragon4_to_chars(DRAGON4_FORMAT_BINARY32, Lo, Hi, &Hex, Buf,
                               sizeof(Buf), &Len) != DRAGON4_OK) {
            ++Failures;
            break;
          }
          PrintOptions HexOpts;
          HexOpts.Base = 16;
          if (std::string(Buf, Len) != toShortest(V, HexOpts))
            ++Failures;
          break;
        }
        case 2: {
          uint16_t Bits = static_cast<uint16_t>(Rng.next());
          Binary16 V = Binary16::fromBits(Bits);
          if (dragon4_to_chars(DRAGON4_FORMAT_BINARY16, Bits, 0, nullptr,
                               Buf, sizeof(Buf), &Len) != DRAGON4_OK ||
              std::string(Buf, Len) != toShortest(V))
            ++Failures;
          break;
        }
        case 3: {
          double V = FormatTraits<double>::fromEncoding(Rng.next(), 0);
          if (V != V)
            break; // toFixed of NaN covered elsewhere.
          uint64_t Lo = 0, Hi = 0;
          FormatTraits<double>::encodingBits(V, Lo, Hi);
          size_t Required = 0;
          if (dragon4_to_chars_fixed(DRAGON4_FORMAT_BINARY64, Lo, Hi, 6,
                                     nullptr, nullptr, 0, &Required) ==
              DRAGON4_ERR_BAD_ARGUMENT) {
            ++Failures;
            break;
          }
          std::vector<char> Big(Required);
          if (dragon4_to_chars_fixed(DRAGON4_FORMAT_BINARY64, Lo, Hi, 6,
                                     nullptr, Big.data(), Big.size(),
                                     &Len) != DRAGON4_OK ||
              std::string(Big.data(), Len) != toFixed(V, 6))
            ++Failures;
          break;
        }
        }
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

} // namespace
