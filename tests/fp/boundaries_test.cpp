//===- tests/fp/boundaries_test.cpp ------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1 of the paper: for every row, the initial integers (r, s, m+, m-)
/// must satisfy v = r/s, (v+ - v)/2 = m+/s, and (v - v-)/2 = m-/s.  Checked
/// symbolically against the exact rational neighbours for each of the four
/// (e, f) cases and then as a property sweep over random values.
///
//===----------------------------------------------------------------------===//

#include "fp/boundaries.h"

#include "fp/binary16.h"
#include "rational/rational.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

/// Checks the ScaledStart invariants for v = F * 2^E exactly.
void expectTable1Invariants(uint64_t F, int E, int Precision,
                            int MinExponent) {
  ScaledStart Start = makeScaledStart(F, E, Precision, MinExponent);

  Rational V = Rational::scaledPow(BigInt(F), 2, E);
  Rational R(Start.R);
  Rational S(Start.S);
  EXPECT_EQ(R / S, V) << "F=" << F << " E=" << E;

  // Successor gap: always one ulp; (f+1) overflowing to b^p is the same
  // real value as b^(p-1) * b^(e+1).
  Rational Ulp = Rational::scaledPow(BigInt(uint64_t(1)), 2, E);
  Rational HighGap = Rational(Start.MPlus) / S;
  EXPECT_EQ(HighGap, Ulp * Rational(BigInt(uint64_t(1)), BigInt(uint64_t(2))))
      << "F=" << F << " E=" << E;

  // Predecessor gap: half an ulp narrower below a power of two.
  bool Narrow =
      F == (uint64_t(1) << (Precision - 1)) && E > MinExponent;
  Rational ExpectedLowGap =
      Narrow ? Rational::scaledPow(BigInt(uint64_t(1)), 2, E - 1) *
                   Rational(BigInt(uint64_t(1)), BigInt(uint64_t(2)))
             : Ulp * Rational(BigInt(uint64_t(1)), BigInt(uint64_t(2)));
  EXPECT_EQ(Rational(Start.MMinus) / S, ExpectedLowGap)
      << "F=" << F << " E=" << E;
}

// The four rows of Table 1, one explicit case each (doubles: p = 53,
// min exponent -1074).

TEST(Table1, RowOne_PositiveExponent_OrdinaryMantissa) {
  // e >= 0, f != b^(p-1): 2^53-1 at e = 10.
  expectTable1Invariants((uint64_t(1) << 53) - 1, 10, 53, -1074);
}

TEST(Table1, RowTwo_PositiveExponent_PowerOfTwoMantissa) {
  // e >= 0, f = b^(p-1): the narrow-below case with a positive exponent.
  expectTable1Invariants(uint64_t(1) << 52, 10, 53, -1074);
}

TEST(Table1, RowThree_NegativeExponent_OrdinaryMantissa) {
  // e < 0, f != b^(p-1).
  expectTable1Invariants(0x123456789ABCDull | (uint64_t(1) << 52), -52, 53,
                         -1074);
}

TEST(Table1, RowThree_MinimumExponent_PowerOfTwoMantissa) {
  // e = min exp forces the symmetric row even for f = b^(p-1).
  expectTable1Invariants(uint64_t(1) << 52, -1074, 53, -1074);
}

TEST(Table1, RowFour_NegativeExponent_PowerOfTwoMantissa) {
  // e < 0, e > min exp, f = b^(p-1): 1.0 itself (2^52 * 2^-52).
  expectTable1Invariants(uint64_t(1) << 52, -52, 53, -1074);
}

TEST(Table1, SubnormalsUseTheSymmetricRow) {
  expectTable1Invariants(1, -1074, 53, -1074);       // Smallest subnormal.
  expectTable1Invariants(0xFFFFF, -1074, 53, -1074); // Mid subnormal.
}

TEST(Table1, DenominatorIsAlwaysEven) {
  // The fixed-format path divides S by two; every row carries the factor.
  for (double V : randomNormalDoubles(100, 3)) {
    Decomposed D = decompose(V);
    ScaledStart Start = makeScaledStart<double>(D);
    EXPECT_TRUE(Start.S.isEven());
  }
}

TEST(Table1, PropertySweepRandomDoubles) {
  for (double V : randomNormalDoubles(300, 21)) {
    Decomposed D = decompose(V);
    expectTable1Invariants(D.F, D.E, 53, -1074);
  }
  for (double V : randomSubnormalDoubles(100, 22)) {
    Decomposed D = decompose(V);
    expectTable1Invariants(D.F, D.E, 53, -1074);
  }
}

TEST(Table1, PropertySweepBinary16) {
  // Small format: sweep every finite positive value exactly.
  for (uint32_t Bits = 1; Bits < 0x7C00; ++Bits) {
    Binary16 H = Binary16::fromBits(static_cast<uint16_t>(Bits));
    Decomposed D = decompose(H);
    expectTable1Invariants(D.F, D.E, 11, -24);
  }
}

TEST(Table1, MidpointsBracketTheValue) {
  for (double V : randomNormalDoubles(100, 5)) {
    Decomposed D = decompose(V);
    ScaledStart Start = makeScaledStart<double>(D);
    EXPECT_FALSE(Start.MPlus.isZero());
    EXPECT_FALSE(Start.MMinus.isZero());
    EXPECT_GT(Start.R, Start.MMinus); // low > 0 for positive v.
  }
}

} // namespace
