//===- tests/fp/ieee_traits_test.cpp -----------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decompose/compose/classify/successor/predecessor over the IEEE formats,
/// including an exhaustive sweep of every binary16 encoding.
///
//===----------------------------------------------------------------------===//

#include "fp/ieee_traits.h"

#include "fp/binary16.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace dragon4;

namespace {

TEST(Classify, Doubles) {
  EXPECT_EQ(classify(0.0), FpClass::Zero);
  EXPECT_EQ(classify(-0.0), FpClass::Zero);
  EXPECT_EQ(classify(1.0), FpClass::Normal);
  EXPECT_EQ(classify(-1.5e308), FpClass::Normal);
  EXPECT_EQ(classify(5e-324), FpClass::Subnormal);
  EXPECT_EQ(classify(std::numeric_limits<double>::infinity()),
            FpClass::Infinity);
  EXPECT_EQ(classify(-std::numeric_limits<double>::infinity()),
            FpClass::Infinity);
  EXPECT_EQ(classify(std::numeric_limits<double>::quiet_NaN()), FpClass::NaN);
  EXPECT_EQ(classify(std::numeric_limits<double>::denorm_min()),
            FpClass::Subnormal);
  EXPECT_EQ(classify(std::numeric_limits<double>::min()), FpClass::Normal);
}

TEST(Classify, Floats) {
  EXPECT_EQ(classify(0.0f), FpClass::Zero);
  EXPECT_EQ(classify(1.0f), FpClass::Normal);
  EXPECT_EQ(classify(std::numeric_limits<float>::denorm_min()),
            FpClass::Subnormal);
  EXPECT_EQ(classify(std::numeric_limits<float>::infinity()),
            FpClass::Infinity);
  EXPECT_EQ(classify(std::numeric_limits<float>::quiet_NaN()), FpClass::NaN);
}

TEST(SignBit, DetectsNegativeIncludingZero) {
  EXPECT_FALSE(signBit(1.0));
  EXPECT_TRUE(signBit(-1.0));
  EXPECT_FALSE(signBit(0.0));
  EXPECT_TRUE(signBit(-0.0));
  EXPECT_TRUE(signBit(-std::numeric_limits<double>::infinity()));
}

TEST(Decompose, KnownDoubles) {
  // 1.0 = 2^52 * 2^-52.
  Decomposed One = decompose(1.0);
  EXPECT_EQ(One.F, uint64_t(1) << 52);
  EXPECT_EQ(One.E, -52);
  // 0.5's mantissa is also 2^52, one exponent lower.
  Decomposed Half = decompose(0.5);
  EXPECT_EQ(Half.F, uint64_t(1) << 52);
  EXPECT_EQ(Half.E, -53);
  // The smallest subnormal is 1 * 2^-1074.
  Decomposed Tiny = decompose(5e-324);
  EXPECT_EQ(Tiny.F, 1u);
  EXPECT_EQ(Tiny.E, -1074);
  // The largest finite double.
  Decomposed Max = decompose(std::numeric_limits<double>::max());
  EXPECT_EQ(Max.F, (uint64_t(1) << 53) - 1);
  EXPECT_EQ(Max.E, 971);
  // Integers decompose exactly: 3 = 3 * 2^0 after normalization shifts.
  Decomposed Three = decompose(3.0);
  EXPECT_EQ(std::ldexp(static_cast<double>(Three.F), Three.E), 3.0);
}

TEST(Decompose, IgnoresSign) {
  EXPECT_EQ(decompose(-1.0), decompose(1.0));
  EXPECT_EQ(decompose(-12345.678), decompose(12345.678));
}

TEST(ComposeDecompose, RoundTripRandomDoubles) {
  for (double V : randomNormalDoubles(500, 11)) {
    Decomposed D = decompose(V);
    EXPECT_EQ(compose<double>(D), V);
  }
  for (double V : randomSubnormalDoubles(200, 12)) {
    Decomposed D = decompose(V);
    EXPECT_EQ(compose<double>(D), V);
  }
}

TEST(ComposeDecompose, RoundTripRandomFloats) {
  for (float V : randomNormalFloats(500, 13)) {
    Decomposed D = decompose(V);
    EXPECT_EQ(compose<float>(D), V);
  }
}

TEST(ComposeDecompose, AcceptsUnnormalizedInput) {
  // 4 * 2^-2 == 1.0, presented with a shiftable mantissa.
  EXPECT_EQ(compose<double>(Decomposed{4, -2}), 1.0);
  // 3 * 2^0 == 3.0.
  EXPECT_EQ(compose<double>(Decomposed{3, 0}), 3.0);
}

TEST(SuccessorPredecessor, OrdinaryStep) {
  Decomposed D = decompose(1.5);
  Decomposed Up = successor<double>(D);
  EXPECT_EQ(compose<double>(Up), std::nextafter(1.5, 2.0));
  Decomposed Down = predecessor<double>(D);
  EXPECT_EQ(compose<double>(Down), std::nextafter(1.5, 1.0));
}

TEST(SuccessorPredecessor, NarrowGapBelowPowerOfTwo) {
  // Below 1.0 the gap halves: predecessor(1.0) = 1 - 2^-53.
  Decomposed One = decompose(1.0);
  Decomposed Below = predecessor<double>(One);
  EXPECT_EQ(compose<double>(Below), std::nextafter(1.0, 0.0));
  EXPECT_EQ(Below.E, One.E - 1);
  EXPECT_EQ(Below.F, (uint64_t(1) << 53) - 1);
}

TEST(SuccessorPredecessor, MantissaOverflowBumpsExponent) {
  // successor(max mantissa) rolls to b^(p-1) * b^(e+1).
  Decomposed D;
  D.F = (uint64_t(1) << 53) - 1;
  D.E = -52;
  Decomposed Up = successor<double>(D);
  EXPECT_EQ(Up.F, uint64_t(1) << 52);
  EXPECT_EQ(Up.E, -51);
  EXPECT_EQ(compose<double>(Up),
            std::nextafter(compose<double>(D),
                           std::numeric_limits<double>::infinity()));
}

TEST(SuccessorPredecessor, SubnormalRegionIsUniform) {
  // At the bottom of the format the gap never narrows.
  Decomposed Tiny = decompose(5e-324);
  Decomposed Up = successor<double>(Tiny);
  EXPECT_EQ(compose<double>(Up), 2 * 5e-324);
  // Predecessor of the smallest normal steps into the subnormals.
  Decomposed SmallestNormal = decompose(std::numeric_limits<double>::min());
  Decomposed Down = predecessor<double>(SmallestNormal);
  EXPECT_EQ(compose<double>(Down),
            std::nextafter(std::numeric_limits<double>::min(), 0.0));
}

TEST(SuccessorPredecessor, AgreeWithNextafterProperty) {
  for (double V : randomNormalDoubles(300, 17)) {
    Decomposed D = decompose(V);
    EXPECT_EQ(compose<double>(successor<double>(D)),
              std::nextafter(V, std::numeric_limits<double>::infinity()))
        << V;
    EXPECT_EQ(compose<double>(predecessor<double>(D)),
              std::nextafter(V, 0.0))
        << V;
  }
}

TEST(Binary16Traits, ExhaustiveDecomposeComposeSweep) {
  // All 65536 encodings: every finite non-zero value must round-trip.
  int Checked = 0;
  for (uint32_t Bits = 0; Bits < 0x10000; ++Bits) {
    Binary16 H = Binary16::fromBits(static_cast<uint16_t>(Bits));
    FpClass Class = classify(H);
    if (Class != FpClass::Normal && Class != FpClass::Subnormal)
      continue;
    Decomposed D = decompose(H);
    Binary16 Back = compose<Binary16>(D);
    // compose produces the positive encoding; compare magnitudes.
    EXPECT_EQ(Back.bits(), Bits & 0x7FFF);
    ++Checked;
  }
  EXPECT_EQ(Checked, 2 * (0x7C00 - 1)); // All finite non-zero encodings.
}

} // namespace
