//===- tests/fp/extended80_test.cpp -------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The x87 80-bit extended format end to end: decomposition, Table 1
/// invariants, shortest output with its round-trip and 21-digit bound,
/// fixed format, and the reader -- all at p = 64, which exercises the
/// "mantissa exactly fills uint64_t" edge of the whole library.
///
//===----------------------------------------------------------------------===//

#include "fp/extended80.h"

#include "core/fixed_format.h"
#include "core/free_format.h"
#include "format/dtoa.h"
#include "reader/reader.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace dragon4;

namespace {

TEST(Extended80, Classify) {
  EXPECT_EQ(classify(1.0L), FpClass::Normal);
  EXPECT_EQ(classify(0.0L), FpClass::Zero);
  EXPECT_EQ(classify(std::numeric_limits<long double>::denorm_min()),
            FpClass::Subnormal);
  EXPECT_EQ(classify(std::numeric_limits<long double>::infinity()),
            FpClass::Infinity);
  EXPECT_EQ(classify(std::numeric_limits<long double>::quiet_NaN()),
            FpClass::NaN);
}

TEST(Extended80, DecomposeKnownValues) {
  Decomposed One = decompose(1.0L);
  EXPECT_EQ(One.F, uint64_t(1) << 63);
  EXPECT_EQ(One.E, -63);

  Decomposed Tiny = decompose(std::numeric_limits<long double>::denorm_min());
  EXPECT_EQ(Tiny.F, 1u);
  EXPECT_EQ(Tiny.E, -16445);

  Decomposed Max = decompose(std::numeric_limits<long double>::max());
  EXPECT_EQ(Max.F, ~uint64_t(0));
  EXPECT_EQ(Max.E, 16320);

  EXPECT_EQ(decompose(-2.5L), decompose(2.5L));
}

TEST(Extended80, ComposeDecomposeRoundTrip) {
  SplitMix64 Rng(808080);
  for (int I = 0; I < 300; ++I) {
    uint64_t F = Rng.next() | (uint64_t(1) << 63); // Normalized.
    int E = static_cast<int>(Rng.below(32000)) - 16000 - 63;
    long double V = std::ldexp(static_cast<long double>(F), E);
    Decomposed D = decompose(V);
    EXPECT_EQ(compose<long double>(D), V);
  }
  // Subnormals.
  for (uint64_t F : {uint64_t(1), uint64_t(7), uint64_t(1) << 40}) {
    long double V = std::ldexp(static_cast<long double>(F), -16445);
    Decomposed D = decompose(V);
    EXPECT_EQ(D.F, F);
    EXPECT_EQ(D.E, -16445);
    EXPECT_EQ(compose<long double>(D), V);
  }
}

TEST(Extended80, ShortestKnownValues) {
  EXPECT_EQ(toShortest(1.0L), "1");
  EXPECT_EQ(toShortest(0.5L), "0.5");
  EXPECT_EQ(toShortest(-2.5L), "-2.5");
  // 0.1L is closer to 0.1 than any double, still needs the short form.
  EXPECT_EQ(toShortest(0.1L), "0.1");
  // One third at 64 bits needs 20 digits (a double needs 16).
  EXPECT_EQ(toShortest(1.0L / 3.0L), "0.33333333333333333334");
}

TEST(Extended80, ShortestDigitBoundIsTwentyOne) {
  // ceil(64 * log10(2)) + 1 = 21 digits always suffice for p = 64.
  SplitMix64 Rng(515151);
  for (int I = 0; I < 400; ++I) {
    uint64_t F = Rng.next() | (uint64_t(1) << 63);
    int E = static_cast<int>(Rng.below(32000)) - 16000 - 63;
    long double V = std::ldexp(static_cast<long double>(F), E);
    DigitString D = shortestDigits(V);
    EXPECT_LE(D.Digits.size(), 21u) << toShortest(V);
    EXPECT_NE(D.Digits.front(), 0u);
  }
}

TEST(Extended80, RoundTripThroughReader) {
  SplitMix64 Rng(626262);
  for (int I = 0; I < 300; ++I) {
    uint64_t F = Rng.next() | (uint64_t(1) << 63);
    int E = static_cast<int>(Rng.below(32600)) - 16300 - 63;
    long double V = std::ldexp(static_cast<long double>(F), E);
    std::string Text = toShortest(V);
    auto Back = readFloat<long double>(Text);
    ASSERT_TRUE(Back.has_value()) << Text;
    EXPECT_EQ(*Back, V) << Text;
  }
  // The extreme corners.
  for (long double V :
       {std::numeric_limits<long double>::max(),
        std::numeric_limits<long double>::min(),
        std::numeric_limits<long double>::denorm_min()}) {
    EXPECT_EQ(*readFloat<long double>(toShortest(V)), V) << toShortest(V);
  }
}

TEST(Extended80, ReaderMatchesStrtold) {
  SplitMix64 Rng(737373);
  for (int I = 0; I < 200; ++I) {
    char Buffer[64];
    uint64_t Mantissa = Rng.next();
    int Exp = static_cast<int>(Rng.below(9800)) - 4900;
    std::snprintf(Buffer, sizeof(Buffer), "%llue%d",
                  static_cast<unsigned long long>(Mantissa), Exp);
    auto Mine = readFloat<long double>(Buffer);
    long double Theirs = std::strtold(Buffer, nullptr);
    ASSERT_TRUE(Mine.has_value());
    EXPECT_EQ(*Mine, Theirs) << Buffer;
  }
}

TEST(Extended80, FixedFormatAndMarks) {
  EXPECT_EQ(toFixed(1.0L / 3.0L, 10), "0.3333333333");
  // More precision than a double: the marks start later.
  std::string Wide = toPrecision(1.0L / 3.0L, 30);
  std::string WideDouble = toPrecision(1.0 / 3.0, 30);
  size_t MarksLong = Wide.size() - Wide.find('#');
  size_t MarksDouble = WideDouble.size() - WideDouble.find('#');
  EXPECT_LT(MarksLong, MarksDouble);
}

TEST(Extended80, MoreDigitsThanDoubleForTheSameDecimal) {
  // The same decimal literal read at both precisions: the long double is
  // closer to the decimal value and its shortest form is (weakly) longer.
  for (const char *Text : {"3.14159265358979323846", "2.71828182845904523536",
                           "1.41421356237309504880"}) {
    long double Ext = *readFloat<long double>(Text);
    double Dbl = *readFloat<double>(Text);
    EXPECT_GE(shortestDigits(Ext).Digits.size(),
              shortestDigits(Dbl).Digits.size())
        << Text;
  }
}

TEST(Extended80, SpecialsThroughConvenienceApi) {
  EXPECT_EQ(toShortest(0.0L), "0");
  EXPECT_EQ(toShortest(-0.0L), "-0");
  EXPECT_EQ(toShortest(std::numeric_limits<long double>::infinity()), "inf");
  EXPECT_EQ(toShortest(std::numeric_limits<long double>::quiet_NaN()), "nan");
}

} // namespace
