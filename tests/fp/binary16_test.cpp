//===- tests/fp/binary16_test.cpp --------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "fp/binary16.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace dragon4;

namespace {

TEST(Binary16, KnownEncodings) {
  EXPECT_EQ(Binary16::fromBits(0x0000).toDouble(), 0.0);
  EXPECT_EQ(Binary16::fromBits(0x3C00).toDouble(), 1.0);
  EXPECT_EQ(Binary16::fromBits(0xBC00).toDouble(), -1.0);
  EXPECT_EQ(Binary16::fromBits(0x4000).toDouble(), 2.0);
  EXPECT_EQ(Binary16::fromBits(0x3555).toDouble(), 0.333251953125);
  EXPECT_EQ(Binary16::fromBits(0x7BFF).toDouble(), 65504.0); // Max finite.
  EXPECT_EQ(Binary16::fromBits(0x0001).toDouble(),
            std::ldexp(1.0, -24)); // Smallest subnormal.
  EXPECT_EQ(Binary16::fromBits(0x0400).toDouble(),
            std::ldexp(1.0, -14)); // Smallest normal.
  EXPECT_TRUE(std::isinf(Binary16::fromBits(0x7C00).toDouble()));
  EXPECT_TRUE(std::isnan(Binary16::fromBits(0x7E01).toDouble()));
}

TEST(Binary16, SignedZeroAndNegatives) {
  EXPECT_TRUE(std::signbit(Binary16::fromBits(0x8000).toDouble()));
  EXPECT_EQ(Binary16::fromBits(0x8000).toDouble(), 0.0);
  EXPECT_EQ(Binary16::fromBits(0xC000).toDouble(), -2.0);
  EXPECT_TRUE(std::isinf(Binary16::fromBits(0xFC00).toDouble()));
  EXPECT_TRUE(std::signbit(Binary16::fromBits(0xFC00).toDouble()));
}

TEST(Binary16, FromDoubleExactValues) {
  EXPECT_EQ(Binary16::fromDouble(1.0).bits(), 0x3C00);
  EXPECT_EQ(Binary16::fromDouble(-1.0).bits(), 0xBC00);
  EXPECT_EQ(Binary16::fromDouble(65504.0).bits(), 0x7BFF);
  EXPECT_EQ(Binary16::fromDouble(0.0).bits(), 0x0000);
  EXPECT_EQ(Binary16::fromDouble(-0.0).bits(), 0x8000);
  EXPECT_EQ(Binary16::fromDouble(std::ldexp(1.0, -24)).bits(), 0x0001);
}

TEST(Binary16, FromDoubleRounding) {
  // 1 + 2^-11 is exactly halfway between 1.0 (mantissa even) and its
  // successor (odd); nearest-even goes down.
  EXPECT_EQ(Binary16::fromDouble(1.0 + std::ldexp(1.0, -11)).bits(), 0x3C00);
  // Just above the halfway point rounds up.
  EXPECT_EQ(Binary16::fromDouble(1.0 + std::ldexp(1.0, -11) +
                                 std::ldexp(1.0, -20))
                .bits(),
            0x3C01);
  // The next halfway (between 0x3C01 and 0x3C02) rounds up to even.
  EXPECT_EQ(Binary16::fromDouble(1.0 + 3 * std::ldexp(1.0, -11)).bits(),
            0x3C02);
}

TEST(Binary16, FromDoubleOverflowAndUnderflow) {
  EXPECT_EQ(Binary16::fromDouble(65520.0).bits(), 0x7C00); // -> +inf.
  EXPECT_EQ(Binary16::fromDouble(1e9).bits(), 0x7C00);
  EXPECT_EQ(Binary16::fromDouble(-1e9).bits(), 0xFC00);
  EXPECT_EQ(Binary16::fromDouble(65519.9).bits(), 0x7BFF); // Largest finite.
  // Half the smallest subnormal ties to even (zero).
  EXPECT_EQ(Binary16::fromDouble(std::ldexp(1.0, -25)).bits(), 0x0000);
  // Anything above the tie rounds to the smallest subnormal.
  EXPECT_EQ(Binary16::fromDouble(std::ldexp(1.0, -25) * 1.5).bits(), 0x0001);
  EXPECT_TRUE(std::isnan(
      Binary16::fromDouble(std::numeric_limits<double>::quiet_NaN())
          .toDouble()));
}

TEST(Binary16, RoundTripAllFiniteEncodings) {
  for (uint32_t Bits = 0; Bits < 0x10000; ++Bits) {
    Binary16 H = Binary16::fromBits(static_cast<uint16_t>(Bits));
    double Wide = H.toDouble();
    if (std::isnan(Wide))
      continue; // NaN payloads are not preserved; skip.
    EXPECT_EQ(Binary16::fromDouble(Wide).bits(), Bits) << std::hex << Bits;
  }
}

} // namespace
