//===- tests/fp/binary128_test.cpp --------------------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IEEE binary128 end to end through the BigInt-mantissa path: encoding,
/// decomposition, Table 1 via the oracle, shortest output with its
/// 36-digit bound and round-trip, fixed format, and the reader.
///
//===----------------------------------------------------------------------===//

#include "fp/binary128.h"

#include "core/fixed_format.h"
#include "core/free_format.h"
#include "core/reference.h"
#include "format/dtoa.h"
#include "reader/reader.h"
#include "testgen/random_floats.h"

#include <gtest/gtest.h>

using namespace dragon4;

namespace {

/// Builds a normalized quad from random-ish words: top bit patterns plus
/// a biased exponent.
Binary128 makeQuad(SplitMix64 &Rng, uint64_t BiasedExp) {
  uint64_t Hi = (BiasedExp << 48) | (Rng.next() & ((uint64_t(1) << 48) - 1));
  return Binary128::fromBits(Hi, Rng.next());
}

TEST(Binary128, ClassifyAndSign) {
  EXPECT_EQ(classify(Binary128::fromBits(0, 0)), FpClass::Zero);
  EXPECT_EQ(classify(Binary128::fromBits(uint64_t(1) << 63, 0)),
            FpClass::Zero);
  EXPECT_EQ(classify(Binary128::fromBits(0, 1)), FpClass::Subnormal);
  EXPECT_EQ(classify(Binary128::fromBits(uint64_t(0x3FFF) << 48, 0)),
            FpClass::Normal); // 1.0
  EXPECT_EQ(classify(Binary128::fromBits(uint64_t(0x7FFF) << 48, 0)),
            FpClass::Infinity);
  EXPECT_EQ(classify(Binary128::fromBits((uint64_t(0x7FFF) << 48) | 1, 0)),
            FpClass::NaN);
  EXPECT_FALSE(signBit(Binary128::fromBits(0, 1)));
  EXPECT_TRUE(signBit(Binary128::fromBits(uint64_t(1) << 63, 1)));
}

TEST(Binary128, DecomposeKnownValues) {
  // 1.0: biased exponent 0x3FFF, mantissa 2^112, E = -112.
  DecomposedBig One = decomposeBig(Binary128::fromBits(uint64_t(0x3FFF) << 48, 0));
  EXPECT_EQ(One.F, BigInt(uint64_t(1)) << 112);
  EXPECT_EQ(One.E, -112);
  // Smallest subnormal.
  DecomposedBig Tiny = decomposeBig(Binary128::fromBits(0, 1));
  EXPECT_TRUE(Tiny.F.isOne());
  EXPECT_EQ(Tiny.E, -16494);
}

TEST(Binary128, ComposeDecomposeRoundTripSweep) {
  SplitMix64 Rng(128128);
  for (int I = 0; I < 300; ++I) {
    uint64_t BiasedExp = 1 + Rng.below(0x7FFE - 1);
    Binary128 V = makeQuad(Rng, BiasedExp);
    DecomposedBig D = decomposeBig(V);
    EXPECT_EQ(composeBig(D.F, D.E), V);
  }
  // Subnormals.
  for (int I = 0; I < 50; ++I) {
    Binary128 V = Binary128::fromBits(Rng.next() & 0xFFFF, Rng.next());
    if (classify(V) != FpClass::Subnormal)
      continue;
    DecomposedBig D = decomposeBig(V);
    EXPECT_EQ(composeBig(D.F, D.E), V);
  }
}

TEST(Binary128, FromDoubleIsExactWidening) {
  for (double V : {1.0, 0.5, 0.1, 3.141592653589793, 5e-324, 1.7e308}) {
    Binary128 Q = Binary128::fromDouble(V);
    DecomposedBig DQ = decomposeBig(Q);
    Decomposed DD = decompose(V);
    // Same real value: F_q * 2^(E_q) == F_d * 2^(E_d).
    BigInt Fd(DD.F);
    int Shift = DD.E - DQ.E;
    ASSERT_GE(Shift, 0) << V;
    Fd <<= static_cast<size_t>(Shift);
    EXPECT_EQ(DQ.F, Fd) << V;
  }
  EXPECT_TRUE(signBit(Binary128::fromDouble(-2.5)));
  EXPECT_EQ(classify(Binary128::fromDouble(0.0)), FpClass::Zero);
}

TEST(Binary128, ShortestKnownValues) {
  EXPECT_EQ(toShortest(Binary128::fromDouble(1.0)), "1");
  EXPECT_EQ(toShortest(Binary128::fromDouble(0.5)), "0.5");
  EXPECT_EQ(toShortest(Binary128::fromDouble(-2.5)), "-2.5");
  // The quad nearest to 1/10 (not the widened double!).
  Binary128 Tenth = *readFloat<Binary128>("0.1");
  EXPECT_EQ(toShortest(Tenth), "0.1");
  // The widened double 0.1 is NOT the quad nearest 0.1: its shortest quad
  // spelling must pin down the double's full value.
  std::string WideTenth = toShortest(Binary128::fromDouble(0.1));
  EXPECT_GT(WideTenth.size(), 17u);
  EXPECT_EQ(WideTenth.substr(0, 4), "0.10");
}

TEST(Binary128, ShortestDigitBoundIs36) {
  // ceil(113 * log10 2) + 1 = 36 digits always suffice.
  SplitMix64 Rng(363636);
  for (int I = 0; I < 200; ++I) {
    Binary128 V = makeQuad(Rng, 1 + Rng.below(0x7FFE - 1));
    DigitString D = shortestDigits(V);
    EXPECT_LE(D.Digits.size(), 36u);
    EXPECT_NE(D.Digits.front(), 0u);
  }
}

TEST(Binary128, RoundTripThroughReader) {
  SplitMix64 Rng(646464);
  for (int I = 0; I < 150; ++I) {
    Binary128 V = makeQuad(Rng, 1 + Rng.below(0x7FFE - 1));
    DigitString D = shortestDigits(V);
    std::string Text =
        D.digitsAsText() + "e" +
        std::to_string(D.K - static_cast<int>(D.Digits.size()));
    auto Back = readFloat<Binary128>(Text);
    ASSERT_TRUE(Back.has_value()) << Text;
    ASSERT_EQ(*Back, V) << Text;
  }
  // Corners.
  Binary128 MaxFinite = Binary128::fromBits(
      (uint64_t(0x7FFE) << 48) | ((uint64_t(1) << 48) - 1), ~uint64_t(0));
  EXPECT_EQ(*readFloat<Binary128>(toShortest(MaxFinite)), MaxFinite);
  Binary128 Tiny = Binary128::fromBits(0, 1);
  EXPECT_EQ(*readFloat<Binary128>(toShortest(Tiny)), Tiny);
}

TEST(Binary128, AgreesWithRationalOracle) {
  SplitMix64 Rng(909090);
  FreeFormatOptions Options;
  Options.Boundaries = BoundaryMode::NearestEven;
  for (int I = 0; I < 25; ++I) {
    Binary128 V = makeQuad(Rng, 0x3FFF - 200 + Rng.below(400));
    DecomposedBig D = decomposeBig(V);
    DigitString Fast = shortestDigits(V, Options);
    DigitString Slow = referenceFreeFormatBig(
        D.F, D.E, 113, -16494, 10,
        BoundaryFlags::resolveEven(Options.Boundaries, D.F.isEven()),
        Options.Ties);
    ASSERT_EQ(Fast, Slow);
  }
  // The narrow-gap case: an exact power of two.
  DecomposedBig PowTwo;
  PowTwo.F = BigInt(uint64_t(1)) << 112;
  PowTwo.E = -50;
  DigitString Fast = freeFormatDigitsBig(PowTwo.F, PowTwo.E, 113, -16494,
                                         Options);
  DigitString Slow = referenceFreeFormatBig(
      PowTwo.F, PowTwo.E, 113, -16494, 10,
      BoundaryFlags::resolveEven(Options.Boundaries, true), Options.Ties);
  EXPECT_EQ(Fast, Slow);
}

TEST(Binary128, FixedFormatAndMarks) {
  Binary128 Third = *readFloat<Binary128>("0.333333333333333333333333333333333");
  EXPECT_EQ(toFixed(Third, 10), "0.3333333333");
  // Past the quad's ~34 digits of precision the marks appear.
  std::string Wide = toPrecision(Third, 45);
  EXPECT_NE(Wide.find('#'), std::string::npos);
  // And a double runs out far sooner on the same prefix length.
  std::string WideDouble = toPrecision(1.0 / 3.0, 45);
  EXPECT_GT(Wide.find('#'), WideDouble.find('#'));
}

TEST(Binary128, SpecialsThroughConvenienceApi) {
  EXPECT_EQ(toShortest(Binary128::fromBits(0, 0)), "0");
  EXPECT_EQ(toShortest(Binary128::fromBits(uint64_t(1) << 63, 0)), "-0");
  EXPECT_EQ(toShortest(Binary128::fromBits(uint64_t(0x7FFF) << 48, 0)),
            "inf");
  EXPECT_EQ(toShortest(Binary128::fromBits(uint64_t(0xFFFF) << 48, 0)),
            "-inf");
  EXPECT_EQ(toShortest(Binary128::fromBits((uint64_t(0x7FFF) << 48) | 99, 0)),
            "nan");
}

TEST(Binary128, ReaderSubnormalAndOverflowEdges) {
  // The smallest quad subnormal is 2^-16494 ~ 6.48e-4966: just above it
  // reads subnormal, just below half of it reads zero.
  EXPECT_EQ(classify(*readFloat<Binary128>("7e-4966")), FpClass::Subnormal);
  EXPECT_EQ(classify(*readFloat<Binary128>("1e-4966")), FpClass::Zero);
  EXPECT_EQ(classify(*readFloat<Binary128>("1e5000")), FpClass::Infinity);
  EXPECT_EQ(classify(*readFloat<Binary128>("1e-5000")), FpClass::Zero);
  EXPECT_EQ(classify(*readFloat<Binary128>("1.18e4932")), FpClass::Normal);
  EXPECT_EQ(classify(*readFloat<Binary128>("1.19e4932")), FpClass::Infinity);
}

} // namespace
