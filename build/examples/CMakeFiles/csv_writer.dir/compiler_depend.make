# Empty compiler generated dependencies file for csv_writer.
# This may be replaced when dependencies are built.
