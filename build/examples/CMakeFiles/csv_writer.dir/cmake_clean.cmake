file(REMOVE_RECURSE
  "CMakeFiles/csv_writer.dir/csv_writer.cpp.o"
  "CMakeFiles/csv_writer.dir/csv_writer.cpp.o.d"
  "csv_writer"
  "csv_writer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
