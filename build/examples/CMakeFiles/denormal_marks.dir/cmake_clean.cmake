file(REMOVE_RECURSE
  "CMakeFiles/denormal_marks.dir/denormal_marks.cpp.o"
  "CMakeFiles/denormal_marks.dir/denormal_marks.cpp.o.d"
  "denormal_marks"
  "denormal_marks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denormal_marks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
