# Empty dependencies file for denormal_marks.
# This may be replaced when dependencies are built.
