file(REMOVE_RECURSE
  "CMakeFiles/precision_ladder.dir/precision_ladder.cpp.o"
  "CMakeFiles/precision_ladder.dir/precision_ladder.cpp.o.d"
  "precision_ladder"
  "precision_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precision_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
