# Empty dependencies file for precision_ladder.
# This may be replaced when dependencies are built.
