file(REMOVE_RECURSE
  "CMakeFiles/float_inspector.dir/float_inspector.cpp.o"
  "CMakeFiles/float_inspector.dir/float_inspector.cpp.o.d"
  "float_inspector"
  "float_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/float_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
