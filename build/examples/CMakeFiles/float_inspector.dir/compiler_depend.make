# Empty compiler generated dependencies file for float_inspector.
# This may be replaced when dependencies are built.
