# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bigint_tests[1]_include.cmake")
include("/root/repo/build/tests/rational_tests[1]_include.cmake")
include("/root/repo/build/tests/fp_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/fastpath_tests[1]_include.cmake")
include("/root/repo/build/tests/reader_tests[1]_include.cmake")
include("/root/repo/build/tests/format_tests[1]_include.cmake")
include("/root/repo/build/tests/baselines_tests[1]_include.cmake")
include("/root/repo/build/tests/testgen_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
