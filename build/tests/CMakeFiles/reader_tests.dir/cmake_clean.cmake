file(REMOVE_RECURSE
  "CMakeFiles/reader_tests.dir/reader/reader_test.cpp.o"
  "CMakeFiles/reader_tests.dir/reader/reader_test.cpp.o.d"
  "reader_tests"
  "reader_tests.pdb"
  "reader_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reader_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
