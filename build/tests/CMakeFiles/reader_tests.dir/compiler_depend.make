# Empty compiler generated dependencies file for reader_tests.
# This may be replaced when dependencies are built.
