# Empty compiler generated dependencies file for rational_tests.
# This may be replaced when dependencies are built.
