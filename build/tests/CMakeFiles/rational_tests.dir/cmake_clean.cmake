file(REMOVE_RECURSE
  "CMakeFiles/rational_tests.dir/rational/rational_test.cpp.o"
  "CMakeFiles/rational_tests.dir/rational/rational_test.cpp.o.d"
  "rational_tests"
  "rational_tests.pdb"
  "rational_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rational_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
