file(REMOVE_RECURSE
  "CMakeFiles/fp_tests.dir/fp/binary128_test.cpp.o"
  "CMakeFiles/fp_tests.dir/fp/binary128_test.cpp.o.d"
  "CMakeFiles/fp_tests.dir/fp/binary16_test.cpp.o"
  "CMakeFiles/fp_tests.dir/fp/binary16_test.cpp.o.d"
  "CMakeFiles/fp_tests.dir/fp/boundaries_test.cpp.o"
  "CMakeFiles/fp_tests.dir/fp/boundaries_test.cpp.o.d"
  "CMakeFiles/fp_tests.dir/fp/extended80_test.cpp.o"
  "CMakeFiles/fp_tests.dir/fp/extended80_test.cpp.o.d"
  "CMakeFiles/fp_tests.dir/fp/ieee_traits_test.cpp.o"
  "CMakeFiles/fp_tests.dir/fp/ieee_traits_test.cpp.o.d"
  "fp_tests"
  "fp_tests.pdb"
  "fp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
