file(REMOVE_RECURSE
  "CMakeFiles/testgen_tests.dir/testgen/testgen_test.cpp.o"
  "CMakeFiles/testgen_tests.dir/testgen/testgen_test.cpp.o.d"
  "testgen_tests"
  "testgen_tests.pdb"
  "testgen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testgen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
