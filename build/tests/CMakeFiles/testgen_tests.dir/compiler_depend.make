# Empty compiler generated dependencies file for testgen_tests.
# This may be replaced when dependencies are built.
