# Empty dependencies file for fastpath_tests.
# This may be replaced when dependencies are built.
