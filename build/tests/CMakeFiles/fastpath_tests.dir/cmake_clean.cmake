file(REMOVE_RECURSE
  "CMakeFiles/fastpath_tests.dir/fastpath/fixed_fast_test.cpp.o"
  "CMakeFiles/fastpath_tests.dir/fastpath/fixed_fast_test.cpp.o.d"
  "CMakeFiles/fastpath_tests.dir/fastpath/grisu_test.cpp.o"
  "CMakeFiles/fastpath_tests.dir/fastpath/grisu_test.cpp.o.d"
  "fastpath_tests"
  "fastpath_tests.pdb"
  "fastpath_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpath_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
