# Empty dependencies file for format_tests.
# This may be replaced when dependencies are built.
