file(REMOVE_RECURSE
  "CMakeFiles/format_tests.dir/format/dtoa_test.cpp.o"
  "CMakeFiles/format_tests.dir/format/dtoa_test.cpp.o.d"
  "CMakeFiles/format_tests.dir/format/printf_compat_test.cpp.o"
  "CMakeFiles/format_tests.dir/format/printf_compat_test.cpp.o.d"
  "CMakeFiles/format_tests.dir/format/render_test.cpp.o"
  "CMakeFiles/format_tests.dir/format/render_test.cpp.o.d"
  "CMakeFiles/format_tests.dir/format/scheme_notation_test.cpp.o"
  "CMakeFiles/format_tests.dir/format/scheme_notation_test.cpp.o.d"
  "format_tests"
  "format_tests.pdb"
  "format_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
