
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bigint/bigint_basic_test.cpp" "tests/CMakeFiles/bigint_tests.dir/bigint/bigint_basic_test.cpp.o" "gcc" "tests/CMakeFiles/bigint_tests.dir/bigint/bigint_basic_test.cpp.o.d"
  "/root/repo/tests/bigint/bigint_div_test.cpp" "tests/CMakeFiles/bigint_tests.dir/bigint/bigint_div_test.cpp.o" "gcc" "tests/CMakeFiles/bigint_tests.dir/bigint/bigint_div_test.cpp.o.d"
  "/root/repo/tests/bigint/bigint_mul_test.cpp" "tests/CMakeFiles/bigint_tests.dir/bigint/bigint_mul_test.cpp.o" "gcc" "tests/CMakeFiles/bigint_tests.dir/bigint/bigint_mul_test.cpp.o.d"
  "/root/repo/tests/bigint/bigint_string_test.cpp" "tests/CMakeFiles/bigint_tests.dir/bigint/bigint_string_test.cpp.o" "gcc" "tests/CMakeFiles/bigint_tests.dir/bigint/bigint_string_test.cpp.o.d"
  "/root/repo/tests/bigint/power_cache_test.cpp" "tests/CMakeFiles/bigint_tests.dir/bigint/power_cache_test.cpp.o" "gcc" "tests/CMakeFiles/bigint_tests.dir/bigint/power_cache_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dragon4.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
