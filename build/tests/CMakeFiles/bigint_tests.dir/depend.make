# Empty dependencies file for bigint_tests.
# This may be replaced when dependencies are built.
