file(REMOVE_RECURSE
  "CMakeFiles/bigint_tests.dir/bigint/bigint_basic_test.cpp.o"
  "CMakeFiles/bigint_tests.dir/bigint/bigint_basic_test.cpp.o.d"
  "CMakeFiles/bigint_tests.dir/bigint/bigint_div_test.cpp.o"
  "CMakeFiles/bigint_tests.dir/bigint/bigint_div_test.cpp.o.d"
  "CMakeFiles/bigint_tests.dir/bigint/bigint_mul_test.cpp.o"
  "CMakeFiles/bigint_tests.dir/bigint/bigint_mul_test.cpp.o.d"
  "CMakeFiles/bigint_tests.dir/bigint/bigint_string_test.cpp.o"
  "CMakeFiles/bigint_tests.dir/bigint/bigint_string_test.cpp.o.d"
  "CMakeFiles/bigint_tests.dir/bigint/power_cache_test.cpp.o"
  "CMakeFiles/bigint_tests.dir/bigint/power_cache_test.cpp.o.d"
  "bigint_tests"
  "bigint_tests.pdb"
  "bigint_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigint_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
