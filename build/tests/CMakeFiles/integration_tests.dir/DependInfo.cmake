
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/cross_validation_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/cross_validation_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/cross_validation_test.cpp.o.d"
  "/root/repo/tests/integration/fixed_free_consistency_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/fixed_free_consistency_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/fixed_free_consistency_test.cpp.o.d"
  "/root/repo/tests/integration/minimality_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/minimality_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/minimality_test.cpp.o.d"
  "/root/repo/tests/integration/oracle_equivalence_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/oracle_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/oracle_equivalence_test.cpp.o.d"
  "/root/repo/tests/integration/property_sweep_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/property_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/property_sweep_test.cpp.o.d"
  "/root/repo/tests/integration/roundtrip_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/roundtrip_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/roundtrip_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dragon4.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
