# Empty dependencies file for bench_scaling_micro.
# This may be replaced when dependencies are built.
