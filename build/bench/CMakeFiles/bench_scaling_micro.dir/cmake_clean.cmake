file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_micro.dir/bench_scaling_micro.cpp.o"
  "CMakeFiles/bench_scaling_micro.dir/bench_scaling_micro.cpp.o.d"
  "bench_scaling_micro"
  "bench_scaling_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
