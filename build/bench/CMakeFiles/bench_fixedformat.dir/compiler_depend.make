# Empty compiler generated dependencies file for bench_fixedformat.
# This may be replaced when dependencies are built.
