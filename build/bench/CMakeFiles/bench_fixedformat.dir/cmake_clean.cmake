file(REMOVE_RECURSE
  "CMakeFiles/bench_fixedformat.dir/bench_fixedformat.cpp.o"
  "CMakeFiles/bench_fixedformat.dir/bench_fixedformat.cpp.o.d"
  "bench_fixedformat"
  "bench_fixedformat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fixedformat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
