# Empty dependencies file for bench_ablation_fixup.
# This may be replaced when dependencies are built.
