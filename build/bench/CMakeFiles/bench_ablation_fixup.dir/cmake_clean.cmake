file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fixup.dir/bench_ablation_fixup.cpp.o"
  "CMakeFiles/bench_ablation_fixup.dir/bench_ablation_fixup.cpp.o.d"
  "bench_ablation_fixup"
  "bench_ablation_fixup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fixup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
