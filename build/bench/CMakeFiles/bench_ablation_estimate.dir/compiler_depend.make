# Empty compiler generated dependencies file for bench_ablation_estimate.
# This may be replaced when dependencies are built.
