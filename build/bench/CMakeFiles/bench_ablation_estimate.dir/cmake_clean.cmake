file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_estimate.dir/bench_ablation_estimate.cpp.o"
  "CMakeFiles/bench_ablation_estimate.dir/bench_ablation_estimate.cpp.o.d"
  "bench_ablation_estimate"
  "bench_ablation_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
