file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_powcache.dir/bench_ablation_powcache.cpp.o"
  "CMakeFiles/bench_ablation_powcache.dir/bench_ablation_powcache.cpp.o.d"
  "bench_ablation_powcache"
  "bench_ablation_powcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_powcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
