# Empty compiler generated dependencies file for bench_ablation_powcache.
# This may be replaced when dependencies are built.
