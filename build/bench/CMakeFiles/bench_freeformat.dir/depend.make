# Empty dependencies file for bench_freeformat.
# This may be replaced when dependencies are built.
