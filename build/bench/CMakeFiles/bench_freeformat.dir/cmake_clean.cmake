file(REMOVE_RECURSE
  "CMakeFiles/bench_freeformat.dir/bench_freeformat.cpp.o"
  "CMakeFiles/bench_freeformat.dir/bench_freeformat.cpp.o.d"
  "bench_freeformat"
  "bench_freeformat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_freeformat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
