# Empty dependencies file for bench_reader.
# This may be replaced when dependencies are built.
