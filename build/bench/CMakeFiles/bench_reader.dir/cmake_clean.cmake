file(REMOVE_RECURSE
  "CMakeFiles/bench_reader.dir/bench_reader.cpp.o"
  "CMakeFiles/bench_reader.dir/bench_reader.cpp.o.d"
  "bench_reader"
  "bench_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
