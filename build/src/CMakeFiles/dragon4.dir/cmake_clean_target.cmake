file(REMOVE_RECURSE
  "libdragon4.a"
)
