
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/fixed17.cpp" "src/CMakeFiles/dragon4.dir/baselines/fixed17.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/baselines/fixed17.cpp.o.d"
  "/root/repo/src/baselines/printf_shim.cpp" "src/CMakeFiles/dragon4.dir/baselines/printf_shim.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/baselines/printf_shim.cpp.o.d"
  "/root/repo/src/baselines/steele_white.cpp" "src/CMakeFiles/dragon4.dir/baselines/steele_white.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/baselines/steele_white.cpp.o.d"
  "/root/repo/src/bigint/bigint.cpp" "src/CMakeFiles/dragon4.dir/bigint/bigint.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/bigint/bigint.cpp.o.d"
  "/root/repo/src/bigint/bigint_div.cpp" "src/CMakeFiles/dragon4.dir/bigint/bigint_div.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/bigint/bigint_div.cpp.o.d"
  "/root/repo/src/bigint/bigint_mul.cpp" "src/CMakeFiles/dragon4.dir/bigint/bigint_mul.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/bigint/bigint_mul.cpp.o.d"
  "/root/repo/src/bigint/bigint_string.cpp" "src/CMakeFiles/dragon4.dir/bigint/bigint_string.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/bigint/bigint_string.cpp.o.d"
  "/root/repo/src/bigint/power_cache.cpp" "src/CMakeFiles/dragon4.dir/bigint/power_cache.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/bigint/power_cache.cpp.o.d"
  "/root/repo/src/core/digit_loop.cpp" "src/CMakeFiles/dragon4.dir/core/digit_loop.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/core/digit_loop.cpp.o.d"
  "/root/repo/src/core/fixed_format.cpp" "src/CMakeFiles/dragon4.dir/core/fixed_format.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/core/fixed_format.cpp.o.d"
  "/root/repo/src/core/free_format.cpp" "src/CMakeFiles/dragon4.dir/core/free_format.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/core/free_format.cpp.o.d"
  "/root/repo/src/core/reference.cpp" "src/CMakeFiles/dragon4.dir/core/reference.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/core/reference.cpp.o.d"
  "/root/repo/src/core/scaling.cpp" "src/CMakeFiles/dragon4.dir/core/scaling.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/core/scaling.cpp.o.d"
  "/root/repo/src/fastpath/fixed_fast.cpp" "src/CMakeFiles/dragon4.dir/fastpath/fixed_fast.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/fastpath/fixed_fast.cpp.o.d"
  "/root/repo/src/fastpath/grisu.cpp" "src/CMakeFiles/dragon4.dir/fastpath/grisu.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/fastpath/grisu.cpp.o.d"
  "/root/repo/src/format/dtoa.cpp" "src/CMakeFiles/dragon4.dir/format/dtoa.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/format/dtoa.cpp.o.d"
  "/root/repo/src/format/printf_compat.cpp" "src/CMakeFiles/dragon4.dir/format/printf_compat.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/format/printf_compat.cpp.o.d"
  "/root/repo/src/format/render.cpp" "src/CMakeFiles/dragon4.dir/format/render.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/format/render.cpp.o.d"
  "/root/repo/src/format/scheme_notation.cpp" "src/CMakeFiles/dragon4.dir/format/scheme_notation.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/format/scheme_notation.cpp.o.d"
  "/root/repo/src/fp/binary128.cpp" "src/CMakeFiles/dragon4.dir/fp/binary128.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/fp/binary128.cpp.o.d"
  "/root/repo/src/fp/binary16.cpp" "src/CMakeFiles/dragon4.dir/fp/binary16.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/fp/binary16.cpp.o.d"
  "/root/repo/src/fp/boundaries.cpp" "src/CMakeFiles/dragon4.dir/fp/boundaries.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/fp/boundaries.cpp.o.d"
  "/root/repo/src/fp/extended80.cpp" "src/CMakeFiles/dragon4.dir/fp/extended80.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/fp/extended80.cpp.o.d"
  "/root/repo/src/rational/rational.cpp" "src/CMakeFiles/dragon4.dir/rational/rational.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/rational/rational.cpp.o.d"
  "/root/repo/src/reader/reader.cpp" "src/CMakeFiles/dragon4.dir/reader/reader.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/reader/reader.cpp.o.d"
  "/root/repo/src/testgen/random_floats.cpp" "src/CMakeFiles/dragon4.dir/testgen/random_floats.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/testgen/random_floats.cpp.o.d"
  "/root/repo/src/testgen/schryer.cpp" "src/CMakeFiles/dragon4.dir/testgen/schryer.cpp.o" "gcc" "src/CMakeFiles/dragon4.dir/testgen/schryer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
