# Empty dependencies file for dragon4.
# This may be replaced when dependencies are built.
