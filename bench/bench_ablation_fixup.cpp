//===- bench/bench_ablation_fixup.cpp - The free fixup ------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: "By moving these multiplications back into the call sites of
/// generate, the multiplications can be eliminated ... The result is that
/// there is no penalty for an estimate that is off by one."  This harness
/// measures full conversions with
///   (a) the paper's restructured fixup (off-by-one costs nothing),
///   (b) a naive fixup that multiplies S by B and still pre-multiplies
///       (the Figure 2 penalty, paid on every off-by-one estimate).
/// Since the two-flop estimator is low ~50-70% of the time (see
/// bench_ablation_estimate), the difference is visible end to end.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "core/digit_loop.h"
#include "bigint/power_cache.h"
#include "core/free_format.h"
#include "core/scaling.h"
#include "fp/boundaries.h"

#include <bit>
#include <cstdio>

using namespace dragon4;
using namespace dragon4::bench;

namespace {

/// The naive variant: estimator + Figure 2's fixup shape (pay S *= B and
/// the pre-multiplication when the estimate is one low).
ScaledState scaleEstimateNaiveFixup(ScaledStart Start, unsigned B,
                                    BoundaryFlags Flags, int E, int BitLen) {
  int Est = estimateScale(E, BitLen, B);
  if (Est >= 0)
    Start.S *= cachedPow(B, static_cast<unsigned>(Est));
  else {
    const BigInt &Factor = cachedPow(B, static_cast<unsigned>(-Est));
    Start.R *= Factor;
    Start.MPlus *= Factor;
    Start.MMinus *= Factor;
  }
  BigInt High = Start.R + Start.MPlus;
  int K = Est;
  if (Flags.HighOk ? High >= Start.S : High > Start.S) {
    Start.S.mulSmall(B); // The penalty the restructuring removes.
    ++K;
  }
  Start.R.mulSmall(B);
  Start.MPlus.mulSmall(B);
  Start.MMinus.mulSmall(B);
  return ScaledState{std::move(Start.R), std::move(Start.S),
                     std::move(Start.MPlus), std::move(Start.MMinus), K};
}

uint64_t convertAll(const std::vector<double> &Values, bool Naive,
                    double &SecondsOut) {
  BoundaryFlags Flags{false, false};
  DigitSink Sink;
  SecondsOut = timeSeconds([&] {
    for (double V : Values) {
      Decomposed D = decompose(V);
      int BitLen = 64 - std::countl_zero(D.F);
      ScaledState State =
          Naive ? scaleEstimateNaiveFixup(makeScaledStart<double>(D), 10,
                                          Flags, D.E, BitLen)
                : scaleEstimate(makeScaledStart<double>(D), 10, Flags, D.E,
                                BitLen);
      int K = State.K;
      DigitLoopResult Loop =
          runDigitLoop(std::move(State), 10, Flags, TieBreak::RoundUp);
      Sink.Hash += static_cast<uint64_t>(K);
      DigitString Digits;
      Digits.Digits = std::move(Loop.Digits);
      Sink.consume(Digits);
    }
  });
  return Sink.Hash;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOutput Output;
  for (int I = 1; I < Argc; ++I)
    if (!Output.consume(Argv[I])) {
      std::fprintf(stderr,
                   "usage: bench_ablation_fixup [--bench-json=FILE] "
                   "[--bench-history=FILE]\n");
      return 2;
    }
  std::vector<double> Values = benchWorkload();
  std::printf("Ablation -- restructured (free) fixup vs naive fixup\n");
  std::printf("workload: %zu doubles, B = 10, conservative boundaries\n\n",
              Values.size());

  double FreeFixup = 0, NaiveFixup = 0;
  uint64_t HashA = convertAll(Values, /*Naive=*/false, FreeFixup);
  uint64_t HashB = convertAll(Values, /*Naive=*/true, NaiveFixup);

  std::printf("%-34s %12s %10s\n", "variant", "time (s)", "relative");
  std::printf("%-34s %12.3f %10.2f\n", "restructured fixup (paper, Fig 3)",
              FreeFixup, 1.0);
  std::printf("%-34s %12.3f %10.2f\n", "naive fixup (Fig 2 shape)",
              NaiveFixup, NaiveFixup / FreeFixup);
  std::printf("\noutputs identical: %s\n", HashA == HashB ? "yes" : "NO");

  BenchReport Report{"bench_ablation_fixup"};
  Report.context("workload", "schryerDoubles");
  Report.context("count", static_cast<uint64_t>(Values.size()));
  const double N = static_cast<double>(Values.size());
  Report.metric("free_fixup_ns_per_value", FreeFixup * 1e9 / N);
  Report.metric("naive_fixup_ns_per_value", NaiveFixup * 1e9 / N);
  Report.derived("naive_over_free", NaiveFixup / FreeFixup);
  Report.derived("outputs_identical", HashA == HashB ? 1 : 0);
  return emitBenchReport(Report, Output);
}
