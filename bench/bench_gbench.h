//===- bench/bench_gbench.h - google-benchmark -> bench.v1 bridge -*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replacement for BENCHMARK_MAIN() that keeps the normal console output
/// but also collects every benchmark's real time per iteration and emits
/// the shared dragon4.bench.v1 report, so the microbenchmarks feed the
/// same BENCH_history.jsonl / bench_check.py pipeline as the table
/// harnesses.  Use:
///
///   D4_GBENCH_MAIN("bench_bigint")
///
/// The uniform --bench-json= / --bench-history= flags are stripped before
/// google-benchmark sees the argument list; everything else (--benchmark_*)
/// passes through.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_BENCH_BENCH_GBENCH_H
#define DRAGON4_BENCH_BENCH_GBENCH_H

#include "bench_common.h"

#include <benchmark/benchmark.h>

#include <cctype>
#include <map>

namespace dragon4::bench {

/// "BM_Mul/128" -> "mul_128_ns": lowercase, [a-z0-9_] only, BM_ prefix
/// dropped, _ns suffix (the metrics surface is nanosecond costs).
inline std::string gbenchMetricKey(const std::string &BenchmarkName) {
  std::string Key;
  Key.reserve(BenchmarkName.size() + 3);
  for (char C : BenchmarkName) {
    unsigned char U = static_cast<unsigned char>(C);
    if (std::isalnum(U))
      Key += static_cast<char>(std::tolower(U));
    else if (!Key.empty() && Key.back() != '_')
      Key += '_';
  }
  while (!Key.empty() && Key.back() == '_')
    Key.pop_back();
  if (Key.rfind("bm_", 0) == 0)
    Key.erase(0, 3);
  return Key + "_ns";
}

/// ConsoleReporter that additionally records min real ns/iteration per
/// benchmark (min across repetitions: the same best-of policy the table
/// harnesses use).
class CollectingReporter : public benchmark::ConsoleReporter {
public:
  std::map<std::string, double> MinNs; ///< name -> ns per iteration.

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.run_type != Run::RT_Iteration || R.error_occurred ||
          R.iterations <= 0)
        continue;
      double Ns = R.real_accumulated_time /
                  static_cast<double>(R.iterations) * 1e9;
      auto [It, Inserted] = MinNs.emplace(R.benchmark_name(), Ns);
      if (!Inserted && Ns < It->second)
        It->second = Ns;
    }
    ConsoleReporter::ReportRuns(Runs);
  }
};

/// Post-collection hook: runs after the per-benchmark ns metrics are in
/// the report, with the raw name -> ns map, so a binary can add derived
/// throughputs (GB/s), cross-benchmark ratios, or context of its own.
using ReportHook = void (*)(BenchReport &Report,
                            const std::map<std::string, double> &MinNs);

/// The shared main: strip our flags, run google-benchmark with the
/// collecting reporter, emit the v1 report.
inline int gbenchMain(int Argc, char **Argv, const char *BenchName,
                      ReportHook Hook = nullptr) {
  BenchOutput Out;
  std::vector<char *> Args;
  Args.reserve(static_cast<size_t>(Argc) + 1);
  for (int I = 0; I < Argc; ++I)
    if (I == 0 || !Out.consume(Argv[I]))
      Args.push_back(Argv[I]);
  Args.push_back(nullptr);
  int FilteredArgc = static_cast<int>(Args.size()) - 1;

  benchmark::Initialize(&FilteredArgc, Args.data());
  CollectingReporter Reporter;
  size_t Ran = benchmark::RunSpecifiedBenchmarks(&Reporter);
  if (Ran == 0) {
    std::fprintf(stderr, "%s: no benchmarks matched\n", BenchName);
    return 1;
  }

  BenchReport Report{std::string(BenchName)};
  Report.context("workload", "google_benchmark");
  Report.context("benchmarks", static_cast<uint64_t>(Reporter.MinNs.size()));
  for (const auto &[Name, Ns] : Reporter.MinNs)
    Report.metric(gbenchMetricKey(Name), Ns);
  if (Hook)
    Hook(Report, Reporter.MinNs);
  return emitBenchReport(Report, Out);
}

} // namespace dragon4::bench

/// Drop-in replacement for BENCHMARK_MAIN() with v1 emission.
#define D4_GBENCH_MAIN(NAME)                                                   \
  int main(int argc, char **argv) {                                            \
    return ::dragon4::bench::gbenchMain(argc, argv, NAME);                     \
  }

/// Like D4_GBENCH_MAIN, with a ReportHook for derived metrics.
#define D4_GBENCH_MAIN_HOOK(NAME, HOOK)                                        \
  int main(int argc, char **argv) {                                            \
    return ::dragon4::bench::gbenchMain(argc, argv, NAME, HOOK);               \
  }

#endif // DRAGON4_BENCH_BENCH_GBENCH_H
