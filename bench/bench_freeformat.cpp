//===- bench/bench_freeformat.cpp - Free-format conversion costs --------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end shortest-output conversion cost: by magnitude, by format,
/// by base, and against the Steele & White baseline; plus rendering cost.
///
//===----------------------------------------------------------------------===//

#include "baselines/steele_white.h"
#include "core/free_format.h"
#include "fastpath/grisu.h"
#include "format/dtoa.h"
#include "fp/binary16.h"

#include "bench_gbench.h"

#include <cstdio>

using namespace dragon4;

namespace {

const double TestValues[] = {3.14159, 1.5e-5, 6.02214076e23, 1.7e308,
                             5e-324};

void BM_ShortestDouble(benchmark::State &State) {
  double V = TestValues[State.range(0)];
  for (auto _ : State) {
    DigitString D = shortestDigits(V);
    benchmark::DoNotOptimize(D);
  }
  char Label[32];
  std::snprintf(Label, sizeof(Label), "%g", V);
  State.SetLabel(Label);
}
BENCHMARK(BM_ShortestDouble)->DenseRange(0, 4);

void BM_ShortestFloat(benchmark::State &State) {
  float V = 3.14159f;
  for (auto _ : State) {
    DigitString D = shortestDigits(V);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_ShortestFloat);

void BM_ShortestHalf(benchmark::State &State) {
  Binary16 V = Binary16::fromDouble(3.14159);
  for (auto _ : State) {
    DigitString D = shortestDigits(V);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_ShortestHalf);

void BM_ShortestExtended80(benchmark::State &State) {
  long double V = 3.14159265358979323846L;
  for (auto _ : State) {
    DigitString D = shortestDigits(V);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_ShortestExtended80);

void BM_ShortestBinary128(benchmark::State &State) {
  Binary128 V = Binary128::fromDouble(3.141592653589793);
  for (auto _ : State) {
    DigitString D = shortestDigits(V);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_ShortestBinary128);

void BM_ShortestByBase(benchmark::State &State) {
  FreeFormatOptions Options;
  Options.Base = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    DigitString D = shortestDigits(3.141592653589793, Options);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_ShortestByBase)->Arg(2)->Arg(10)->Arg(16)->Arg(36);

void BM_SteeleWhiteDouble(benchmark::State &State) {
  double V = TestValues[State.range(0)];
  for (auto _ : State) {
    DigitString D = steeleWhiteDigits(V);
    benchmark::DoNotOptimize(D);
  }
  char Label[32];
  std::snprintf(Label, sizeof(Label), "%g", V);
  State.SetLabel(Label);
}
BENCHMARK(BM_SteeleWhiteDouble)->DenseRange(0, 4);

void BM_GrisuFastDouble(benchmark::State &State) {
  // The Grisu3 fast path with exact fallback (Loitsch 2010, the follow-on
  // to the paper): typically ~10x the exact path on the happy path.
  double V = TestValues[State.range(0)];
  for (auto _ : State) {
    DigitString D = shortestDigitsFast(V);
    benchmark::DoNotOptimize(D);
  }
  char Label[32];
  std::snprintf(Label, sizeof(Label), "%g", V);
  State.SetLabel(Label);
}
BENCHMARK(BM_GrisuFastDouble)->DenseRange(0, 4);

void BM_ToShortestString(benchmark::State &State) {
  for (auto _ : State) {
    std::string Text = toShortest(3.141592653589793);
    benchmark::DoNotOptimize(Text);
  }
}
BENCHMARK(BM_ToShortestString);

void BM_SnprintfReference(benchmark::State &State) {
  // The C library's %.17g, as the familiar cost yardstick.
  char Buffer[64];
  for (auto _ : State) {
    int Written =
        std::snprintf(Buffer, sizeof(Buffer), "%.17g", 3.141592653589793);
    benchmark::DoNotOptimize(Written);
    benchmark::DoNotOptimize(Buffer);
  }
}
BENCHMARK(BM_SnprintfReference);

} // namespace

D4_GBENCH_MAIN("bench_freeformat")
