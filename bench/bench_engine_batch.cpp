//===- bench/bench_engine_batch.cpp - Engine vs string API, batch scaling ----===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the engine against the convenience API on uniform-random
/// doubles, and batch conversion across 1/2/4 threads:
///
///   * toShortest (std::string per value, fresh BigInt state per call)
///   * engine::format (char buffer, warm Scratch, arena-backed limbs)
///   * BatchEngine::convert at 1, 2, and 4 threads
///
/// Results go to BENCH_engine.json (or argv[1]); the engine stats block is
/// printed to stdout for the digit-length histogram and fast-path rates.
///
///   ./build/bench/bench_engine_batch [out.json] [count=200000]
///
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace dragon4;
namespace eng = dragon4::engine;

namespace {

/// Best-of-Reps wall time of one full pass, in ns per value.
template <typename Fn>
double bestNsPerValue(size_t Count, int Reps, Fn &&Run) {
  double Best = 0;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    Run();
    auto End = std::chrono::steady_clock::now();
    double Nanos = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
            .count());
    if (Rep == 0 || Nanos < Best)
      Best = Nanos;
  }
  return Best / static_cast<double>(Count);
}

volatile size_t Sink; // Defeats dead-code elimination.

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_engine.json";
  size_t Count = Argc > 2 ? std::strtoull(Argv[2], nullptr, 10) : 200000;
  constexpr int Reps = 5;

  std::vector<double> Values = randomBitsDoubles(Count, 42);
  unsigned Cores = std::thread::hardware_concurrency();
  std::printf(
      "bench_engine_batch: %zu uniform-random doubles, best of %d, %u cores\n",
      Count, Reps, Cores);
  if (Cores < 4)
    std::printf("  NOTE: %u-core host -- thread scaling is bounded by the "
                "hardware, not the engine\n",
                Cores);

  // Baseline: the std::string convenience API.
  double StringNs = bestNsPerValue(Count, Reps, [&] {
    size_t Total = 0;
    for (double V : Values)
      Total += toShortest(V).size();
    Sink = Total;
  });
  std::printf("  toShortest        %8.1f ns/value\n", StringNs);

  // The engine's buffer API through one warm Scratch.
  eng::Scratch Scratch;
  char Buf[32];
  double BufferNs = bestNsPerValue(Count, Reps, [&] {
    size_t Total = 0;
    for (double V : Values)
      Total += eng::format(V, Buf, sizeof(Buf), PrintOptions{}, Scratch);
    Sink = Total;
  });
  std::printf("  engine::format    %8.1f ns/value\n", BufferNs);

  // Batch conversion at 1/2/4 threads (persistent pools, warm scratches).
  const unsigned ThreadCounts[] = {1, 2, 4};
  double BatchNs[3] = {};
  for (int I = 0; I < 3; ++I) {
    eng::BatchEngine Engine(ThreadCounts[I]);
    eng::StringTable Table;
    Engine.convert(Values, Table, PrintOptions{}); // Warm-up pass.
    BatchNs[I] = bestNsPerValue(Count, Reps, [&] {
      Engine.convert(Values, Table, PrintOptions{});
      Sink = Table.length(Count - 1);
    });
    std::printf("  batch %u thread%s  %8.1f ns/value\n", ThreadCounts[I],
                ThreadCounts[I] == 1 ? " " : "s", BatchNs[I]);
    if (ThreadCounts[I] == 4)
      Engine.stats().print(stdout);
  }

  double BufferSpeedup = StringNs / BufferNs;
  double BatchScaling = BatchNs[0] / BatchNs[2];
  std::printf("  buffer vs string  %.2fx\n", BufferSpeedup);
  std::printf("  4t vs 1t batch    %.2fx\n", BatchScaling);

  std::FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath);
    return 1;
  }
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"workload\": \"randomBitsDoubles\",\n");
  std::fprintf(Out, "  \"count\": %zu,\n", Count);
  std::fprintf(Out, "  \"reps\": %d,\n", Reps);
  std::fprintf(Out, "  \"hardware_concurrency\": %u,\n", Cores);
  std::fprintf(Out, "  \"to_shortest_ns_per_value\": %.2f,\n", StringNs);
  std::fprintf(Out, "  \"engine_format_ns_per_value\": %.2f,\n", BufferNs);
  std::fprintf(Out, "  \"batch_ns_per_value\": {\n");
  std::fprintf(Out, "    \"threads_1\": %.2f,\n", BatchNs[0]);
  std::fprintf(Out, "    \"threads_2\": %.2f,\n", BatchNs[1]);
  std::fprintf(Out, "    \"threads_4\": %.2f\n", BatchNs[2]);
  std::fprintf(Out, "  },\n");
  std::fprintf(Out, "  \"speedup_buffer_vs_string\": %.2f,\n", BufferSpeedup);
  std::fprintf(Out, "  \"scaling_4t_vs_1t\": %.2f\n", BatchScaling);
  std::fprintf(Out, "}\n");
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath);
  return 0;
}
