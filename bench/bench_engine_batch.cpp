//===- bench/bench_engine_batch.cpp - Engine vs string API, batch scaling ----===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the engine against the convenience API on uniform-random
/// doubles, and batch conversion across 1/2/4 threads:
///
///   * toShortest (std::string per value, fresh BigInt state per call)
///   * engine::format (char buffer, warm Scratch, arena-backed limbs)
///   * BatchEngine<double>::convert at 1, 2, and 4 threads
///
/// The generic pipeline's other first-class batch formats ride along:
/// BatchEngine<float> over uniform-random binary32 (batch32_* metrics,
/// Grisu-certified fast path) and BatchEngine<Binary16> over the whole
/// 65536-encoding half space (batch16_* metrics, pure exact path).  A
/// default run emits every metric; --format=binary64|binary32|binary16
/// restricts the run to one suite (its metrics keep their names, so
/// bench_check.py compares the subset and warns about the rest).
///
/// Results go to BENCH_engine.json (or argv[1]) in the dragon4.bench.v1
/// schema that tools/bench_check.py compares against a committed baseline;
/// the engine stats block is printed to stdout for the digit-length
/// histogram and fast-path rates.
///
///   ./build/bench/bench_engine_batch [out.json] [count=200000]
///                                    [--format=binary64|binary32|binary16]
///                                    [--surface=to_chars]
///                                    [--corpus=FILE]
///                                    [--stats-json=FILE] [--trace=FILE]
///                                    [--bench-history=FILE]
///                                    [--spin-digit-loop=N]
///
/// --corpus=FILE replaces the random workloads entirely: the verify-corpus
/// records in FILE (e.g. the exemplar corpus tools/exemplar_dump writes
/// from a live service's tail captures) are decoded per format, tiled up
/// to the requested count, and batch-converted as corpus64_*/corpus32_*/
/// corpus16_* metrics -- "how fast are the inputs production found slow".
///
/// The telemetry flags enable 1-in-1 obs sampling, which costs a clock
/// read per conversion -- numbers from such a run are for exploring the
/// telemetry, not for baseline comparisons.  --spin-digit-loop injects a
/// synthetic N-iteration spin per emitted digit through the digit-loop
/// testhook: the regression the CI self-test plants to prove the
/// bench_check.py trend gate trips.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "dragon4.h"
#include "obs/export.h"
#include "support/testhooks.h"
#include "verify/corpus.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace dragon4;
namespace eng = dragon4::engine;

namespace {

/// Best-of-Reps wall time of one full pass, in ns per value.
template <typename Fn>
double bestNsPerValue(size_t Count, int Reps, Fn &&Run) {
  double Best = 0;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    double Nanos = bench::timeSeconds(Run) * 1e9;
    if (Rep == 0 || Nanos < Best)
      Best = Nanos;
  }
  return Best / static_cast<double>(Count);
}

volatile size_t DceSink; // Defeats dead-code elimination.

/// Repeats \p V until the workload is \p Count values long (stable timing
/// even when the corpus holds only a handful of captures).
template <typename T>
std::vector<T> tileTo(const std::vector<T> &V, size_t Count) {
  std::vector<T> Out;
  Out.reserve(Count);
  while (Out.size() < Count) {
    size_t Take = V.size() < Count - Out.size() ? V.size()
                                                : Count - Out.size();
    Out.insert(Out.end(), V.begin(), V.begin() + Take);
  }
  return Out;
}

/// Times BatchEngine<T>::convert at 1 and 4 threads over \p Values and
/// records the two metrics as <prefix>_1t/_4t ns/value.
template <typename T>
void benchTypedBatch(const std::vector<T> &Values, const char *Label,
                     const char *Prefix, int Reps,
                     bench::BenchReport &Report) {
  const unsigned ThreadCounts[] = {1, 4};
  for (unsigned Threads : ThreadCounts) {
    eng::BatchEngine<T> Engine(Threads);
    eng::StringTable Table;
    Engine.convert(Values, Table, PrintOptions{}); // Warm-up pass.
    double Ns = bestNsPerValue(Values.size(), Reps, [&] {
      Engine.convert(Values, Table, PrintOptions{});
      DceSink = Table.length(Values.size() - 1);
    });
    std::printf("  %s %ut %8.1f ns/value\n", Label, Threads, Ns);
    char Key[64];
    std::snprintf(Key, sizeof(Key), "%s_%ut_ns_per_value", Prefix, Threads);
    Report.metric(Key, Ns);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = "BENCH_engine.json";
  size_t Count = 200000;
  std::string StatsJsonPath, TracePath, CorpusPath;
  std::string Format = "all";
  std::string Surface = "all";
  bench::BenchOutput Output;
  unsigned SpinPerDigit = 0;
  int Positional = 0;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--stats-json=", 13) == 0) {
      StatsJsonPath = A + 13;
    } else if (std::strncmp(A, "--trace=", 8) == 0) {
      TracePath = A + 8;
    } else if (std::strncmp(A, "--format=", 9) == 0) {
      Format = A + 9;
      if (Format != "all" && Format != "binary64" && Format != "binary32" &&
          Format != "binary16") {
        std::fprintf(stderr,
                     "bench_engine_batch: --format must be binary64, "
                     "binary32, binary16, or all\n");
        return 2;
      }
    } else if (std::strncmp(A, "--corpus=", 9) == 0) {
      CorpusPath = A + 9;
    } else if (std::strncmp(A, "--surface=", 10) == 0) {
      Surface = A + 10;
      if (Surface != "all" && Surface != "to_chars") {
        std::fprintf(stderr,
                     "bench_engine_batch: --surface must be to_chars or "
                     "all\n");
        return 2;
      }
    } else if (std::strncmp(A, "--spin-digit-loop=", 18) == 0) {
      SpinPerDigit =
          static_cast<unsigned>(std::strtoul(A + 18, nullptr, 10));
    } else if (Output.consume(A)) {
      // Shared emitter flags.
    } else if (A[0] == '-') {
      std::fprintf(stderr,
                   "bench_engine_batch: unknown flag %s\nusage: "
                   "bench_engine_batch [out.json] [count] "
                   "[--format=binary64|binary32|binary16] "
                   "[--surface=to_chars] "
                   "[--corpus=FILE] "
                   "[--stats-json=FILE] [--trace=FILE] "
                   "[--bench-json=FILE] [--bench-history=FILE] "
                   "[--spin-digit-loop=N]\n",
                   A);
      return 2;
    } else if (Positional == 0) {
      OutPath = A;
      ++Positional;
    } else {
      Count = std::strtoull(A, nullptr, 10);
      ++Positional;
    }
  }
  // --surface=to_chars is the C-ABI overhead gate: only the binary64
  // single-value pair that matters for the ratio check runs
  // (engine::format and dragon4_to_chars over identical values), so CI
  // gets a quick answer to "is the ABI wrapper still free".
  const bool ToCharsOnly = Surface == "to_chars";
  const bool RunDouble = ToCharsOnly || Format == "all" || Format == "binary64";
  const bool RunFloat =
      !ToCharsOnly && (Format == "all" || Format == "binary32");
  const bool RunHalf =
      !ToCharsOnly && (Format == "all" || Format == "binary16");
  if (Output.JsonPath.empty())
    Output.JsonPath = OutPath;
  constexpr int Reps = 5;

  if (SpinPerDigit) {
    testhooks::DigitLoopSyntheticSpinPerDigit = SpinPerDigit;
    std::printf("NOTE: synthetic digit-loop spin of %u injected -- this "
                "run should FAIL a regression gate\n",
                SpinPerDigit);
  }

  bool Telemetry = !StatsJsonPath.empty() || !TracePath.empty();
  if (Telemetry) {
    obs::config().SampleEvery = 1;
    obs::config().Trace = !TracePath.empty();
    std::printf("NOTE: telemetry sampling on -- timings include obs "
                "overhead; do not use as a baseline\n");
  }

  // Re-detected on every run, not baked into the baseline: the same
  // binary may run on a 64-core bench host one day and a 1-core CI
  // container the next.  When the host has fewer cores than the widest
  // thread count benchmarked, the multi-thread numbers measure the
  // hardware, not the engine, and the emitted thread_scaling_valid flag
  // tells bench_check.py to skip (not silently pass) those comparisons.
  unsigned Cores = std::thread::hardware_concurrency();
  const bool ThreadScalingValid = Cores >= 4;
  std::printf("bench_engine_batch: %zu uniform-random values, format %s, "
              "best of %d, %u cores\n",
              Count, Format.c_str(), Reps, Cores);
  if (!ThreadScalingValid)
    std::printf("  NOTE: %u-core host -- thread scaling is bounded by the "
                "hardware, not the engine; multi-thread metrics are "
                "flagged non-comparable\n",
                Cores);

  // dragon4.bench.v1 via the shared emitter: "metrics" holds the
  // comparable numbers (ns/value, lower is better) that
  // tools/bench_check.py diffs against a committed baseline; "context"
  // describes the run; "derived" is informational.
  bench::BenchReport Report{"bench_engine_batch"};
  Report.context("workload",
                 CorpusPath.empty() ? "randomBitsDoubles" : "corpus");
  Report.context("count", static_cast<uint64_t>(Count));
  Report.context("reps", static_cast<uint64_t>(Reps));
  Report.context("hardware_concurrency", static_cast<uint64_t>(Cores));
  Report.context("thread_scaling_valid", ThreadScalingValid);
  Report.context("obs_sampling", Telemetry);
  Report.context("format", Format.c_str());
  Report.context("surface", Surface.c_str());
  if (SpinPerDigit)
    Report.context("spin_digit_loop", static_cast<uint64_t>(SpinPerDigit));

  if (!CorpusPath.empty()) {
    // Corpus workload: the replayable inputs a sweep or the exemplar
    // pipeline captured, instead of uniform-random bits.
    std::vector<verify::CorpusRecord> Records;
    std::string Err;
    if (!verify::loadCorpus(CorpusPath, Records, &Err)) {
      std::fprintf(stderr, "bench_engine_batch: %s\n", Err.c_str());
      return 2;
    }
    Report.context("corpus", CorpusPath.c_str());
    Report.context("corpus_records", static_cast<uint64_t>(Records.size()));
    std::vector<double> V64;
    std::vector<float> V32;
    std::vector<Binary16> V16;
    size_t Skipped = 0;
    for (const verify::CorpusRecord &R : Records) {
      switch (R.Bits.Format) {
      case verify::FloatFormat::Binary64: {
        uint64_t Bits = R.Bits.Lo;
        double V;
        std::memcpy(&V, &Bits, sizeof(V));
        V64.push_back(V);
        break;
      }
      case verify::FloatFormat::Binary32: {
        uint32_t Bits = static_cast<uint32_t>(R.Bits.Lo);
        float V;
        std::memcpy(&V, &Bits, sizeof(V));
        V32.push_back(V);
        break;
      }
      case verify::FloatFormat::Binary16:
        V16.push_back(
            Binary16::fromBits(static_cast<uint16_t>(R.Bits.Lo)));
        break;
      default:
        ++Skipped; // binary128 has no first-class batch suite here.
        break;
      }
    }
    if (Skipped)
      std::printf("  NOTE: %zu corpus record(s) in formats without a "
                  "batch suite skipped\n",
                  Skipped);
    if (V64.empty() && V32.empty() && V16.empty()) {
      std::fprintf(stderr, "bench_engine_batch: corpus %s holds no "
                           "benchable records\n",
                   CorpusPath.c_str());
      return 2;
    }
    std::printf("  corpus: %zu binary64, %zu binary32, %zu binary16 "
                "record(s), tiled to %zu values each\n",
                V64.size(), V32.size(), V16.size(), Count);
    if (!V64.empty())
      benchTypedBatch(tileTo(V64, Count), "corpus64", "corpus64", Reps,
                      Report);
    if (!V32.empty())
      benchTypedBatch(tileTo(V32, Count), "corpus32", "corpus32", Reps,
                      Report);
    if (!V16.empty())
      benchTypedBatch(tileTo(V16, Count), "corpus16", "corpus16", Reps,
                      Report);
    return bench::emitBenchReport(Report, Output);
  }

  if (RunDouble) {
    std::vector<double> Values = randomBitsDoubles(Count, 42);

    double StringNs = 0;
    if (!ToCharsOnly) {
      // Baseline: the std::string convenience API.
      StringNs = bestNsPerValue(Count, Reps, [&] {
        size_t Total = 0;
        for (double V : Values)
          Total += toShortest(V).size();
        DceSink = Total;
      });
      std::printf("  toShortest        %8.1f ns/value\n", StringNs);
    }

    // The engine's buffer API through one warm Scratch, and the same
    // values through the C ABI (thread-local scratch, encoding bits at
    // the call site) -- the full wrapper: validation, enum mapping, bit
    // decoding.  bench_check.py gates their ratio at +10%, so the pair
    // is measured interleaved, rep by rep, after an untimed warm-up of
    // each: slow drift (frequency ramp, co-tenant noise) then lands on
    // both loops equally instead of flattering whichever runs later.
    eng::Scratch Scratch;
    char Buf[32];
    auto FormatLoop = [&] {
      size_t Total = 0;
      for (double V : Values)
        Total += eng::format(V, Buf, sizeof(Buf), PrintOptions{}, Scratch);
      DceSink = Total;
    };
    auto ToCharsLoop = [&] {
      size_t Total = 0;
      size_t Len = 0;
      for (double V : Values) {
        uint64_t Lo, Hi;
        FormatTraits<double>::encodingBits(V, Lo, Hi);
        dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, nullptr, Buf,
                         sizeof(Buf), &Len);
        Total += Len;
      }
      DceSink = Total;
    };
    FormatLoop();
    ToCharsLoop();
    // The dedicated gate mode skips every other measurement, so spend
    // the saved time on extra reps: the best-of estimate of a ~5% ratio
    // needs a tighter noise floor than the absolute metrics do.
    const int PairReps = ToCharsOnly ? 2 * Reps : Reps;
    double BufferNs = 0, ToCharsNs = 0;
    for (int Rep = 0; Rep < PairReps; ++Rep) {
      double B = bench::timeSeconds(FormatLoop) * 1e9 / Count;
      double T = bench::timeSeconds(ToCharsLoop) * 1e9 / Count;
      if (Rep == 0 || B < BufferNs)
        BufferNs = B;
      if (Rep == 0 || T < ToCharsNs)
        ToCharsNs = T;
    }
    std::printf("  engine::format    %8.1f ns/value\n", BufferNs);
    std::printf("  dragon4_to_chars  %8.1f ns/value\n", ToCharsNs);
    Report.metric("engine_format_ns_per_value", BufferNs);
    Report.metric("to_chars_ns_per_value", ToCharsNs);
    Report.derived("overhead_to_chars_vs_format", ToCharsNs / BufferNs);
    if (ToCharsOnly)
      return bench::emitBenchReport(Report, Output);

    // Batch conversion at 1/2/4 threads (persistent pools, warm
    // scratches).
    const unsigned ThreadCounts[] = {1, 2, 4};
    double BatchNs[3] = {};
    for (int I = 0; I < 3; ++I) {
      eng::BatchEngine<double> Engine(ThreadCounts[I]);
      eng::StringTable Table;
      Engine.convert(Values, Table, PrintOptions{}); // Warm-up pass.
      BatchNs[I] = bestNsPerValue(Count, Reps, [&] {
        Engine.convert(Values, Table, PrintOptions{});
        DceSink = Table.length(Count - 1);
      });
      std::printf("  batch %u thread%s  %8.1f ns/value\n", ThreadCounts[I],
                  ThreadCounts[I] == 1 ? " " : "s", BatchNs[I]);
      if (ThreadCounts[I] == 4) {
        const obs::Registry *Reg =
            obs::enabled() ? &Engine.registry() : nullptr;
        Engine.stats().print(stdout, Reg);
        if (!StatsJsonPath.empty())
          obs::writeFile(StatsJsonPath,
                         obs::renderStatsJson(
                             obs::makeSnapshot(Engine.stats(), Reg)));
        if (!TracePath.empty()) {
          std::vector<obs::SpanEvent> Spans = Engine.takeSpans();
          obs::writeFile(TracePath, obs::renderChromeTrace(Spans));
          std::printf("wrote %zu span(s) to %s\n", Spans.size(),
                      TracePath.c_str());
        }
      }
    }

    double BufferSpeedup = StringNs / BufferNs;
    double BatchScaling = BatchNs[0] / BatchNs[2];
    std::printf("  buffer vs string  %.2fx\n", BufferSpeedup);
    std::printf("  4t vs 1t batch    %.2fx\n", BatchScaling);

    Report.metric("to_shortest_ns_per_value", StringNs);
    Report.metric("batch_1t_ns_per_value", BatchNs[0]);
    Report.metric("batch_2t_ns_per_value", BatchNs[1]);
    Report.metric("batch_4t_ns_per_value", BatchNs[2]);
    Report.derived("speedup_buffer_vs_string", BufferSpeedup);
    Report.derived("scaling_4t_vs_1t", BatchScaling);
  }

  if (RunFloat) {
    // binary32 through the same generic batch pipeline: the Grisu fast
    // path is certified here too, so this is the second first-class fast
    // format.
    std::vector<float> Values32 = randomBitsFloats(Count, 42);
    benchTypedBatch(Values32, "batch32", "batch32", Reps, Report);
  }

  if (RunHalf) {
    // binary16 over its entire encoding space (65536 values per pass,
    // repeated to the requested count): all-exact-path traffic.
    std::vector<Binary16> Values16;
    size_t HalfCount = Count < (1u << 16) ? Count : (1u << 16);
    Values16.reserve(HalfCount);
    for (uint32_t Bits = 0; Bits < HalfCount; ++Bits)
      Values16.push_back(Binary16::fromBits(static_cast<uint16_t>(Bits)));
    benchTypedBatch(Values16, "batch16", "batch16", Reps, Report);
  }

  return bench::emitBenchReport(Report, Output);
}
