//===- bench/bench_fixedformat.cpp - Fixed-format conversion costs ------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-format costs: the Section 4 algorithm by requested digit count
/// (including the mark-filling region), against the straightforward
/// printer, and the relative-position scale iteration.
///
//===----------------------------------------------------------------------===//

#include "baselines/fixed17.h"
#include "core/fixed_format.h"
#include "fastpath/fixed_fast.h"
#include "format/dtoa.h"

#include "bench_gbench.h"

using namespace dragon4;

namespace {

void BM_FixedRelative(benchmark::State &State) {
  int Digits = static_cast<int>(State.range(0));
  for (auto _ : State) {
    DigitString D = fixedDigitsRelative(3.141592653589793, Digits);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_FixedRelative)->Arg(1)->Arg(5)->Arg(10)->Arg(17)->Arg(30);

void BM_FixedAbsolute(benchmark::State &State) {
  int Position = -static_cast<int>(State.range(0));
  for (auto _ : State) {
    DigitString D = fixedDigitsAbsolute(3.141592653589793, Position);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_FixedAbsolute)->Arg(2)->Arg(10)->Arg(25);

void BM_StraightforwardN(benchmark::State &State) {
  int Digits = static_cast<int>(State.range(0));
  for (auto _ : State) {
    DigitString D = straightforwardDigits(3.141592653589793, Digits);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_StraightforwardN)->Arg(1)->Arg(5)->Arg(10)->Arg(17)->Arg(30);

void BM_FixedCarryCase(benchmark::State &State) {
  // 9.996 to 3 digits forces the second scale-iteration round.
  for (auto _ : State) {
    DigitString D = fixedDigitsRelative(9.996, 3);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_FixedCarryCase);

void BM_FixedSubnormalMarks(benchmark::State &State) {
  // Deep in the subnormals the output is mostly marks.
  for (auto _ : State) {
    DigitString D = fixedDigitsRelative(5e-324, 20);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_FixedSubnormalMarks);

void BM_GayFastPathN(benchmark::State &State) {
  // The Gay-style fast path (with exact fallback) at the same digit
  // counts as BM_StraightforwardN -- the paper's related-work speedup.
  int Digits = static_cast<int>(State.range(0));
  for (auto _ : State) {
    DigitString D = fixedDigitsWithFastPath(3.141592653589793, Digits);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_GayFastPathN)->Arg(1)->Arg(5)->Arg(10)->Arg(17);

void BM_ToFixedString(benchmark::State &State) {
  for (auto _ : State) {
    std::string Text = toFixed(123.456, 6);
    benchmark::DoNotOptimize(Text);
  }
}
BENCHMARK(BM_ToFixedString);

} // namespace

D4_GBENCH_MAIN("bench_fixedformat")
