//===- bench/bench_table3.cpp - Reproduce Table 3 ----------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 3 of the paper: the cost of free-format output relative to a
/// straightforward fixed-format printer (17 significant digits, "the
/// minimum number guaranteed to distinguish among IEEE double-precision
/// numbers"), the fixed-format printer relative to the C library's
/// printf, and the number of inputs printf misrounds.  The paper ran nine
/// 1996 systems; this harness prints the one row for the current host in
/// the same column layout, plus the mean shortest-digit count the paper
/// quotes (15.2 on its vector; see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "baselines/fixed17.h"
#include "baselines/printf_shim.h"
#include "core/free_format.h"
#include "format/render.h"

#include <algorithm>
#include <cstdio>

using namespace dragon4;
using namespace dragon4::bench;

int main(int Argc, char **Argv) {
  BenchOutput Output;
  for (int I = 1; I < Argc; ++I)
    if (!Output.consume(Argv[I])) {
      std::fprintf(stderr,
                   "usage: bench_table3 [--bench-json=FILE] "
                   "[--bench-history=FILE]\n");
      return 2;
    }
  std::vector<double> Values = benchWorkload();
  std::printf("Table 3 -- free-format vs straightforward fixed-format vs "
              "printf\n");
  std::printf("workload: %zu positive normalized doubles (Schryer-style), "
              "17 significant digits, B = 10\n\n",
              Values.size());

  DigitSink Sink;
  size_t TotalShortestDigits = 0;

  // Free-format conversion (digits only, like the paper's conversions to
  // /dev/null: rendering is shared overhead and excluded everywhere).
  auto RunFree = [&] {
    TotalShortestDigits = 0;
    for (double V : Values) {
      DigitString D = shortestDigits(V);
      TotalShortestDigits += D.Digits.size();
      Sink.consume(D);
    }
  };
  // Straightforward fixed-format at 17 significant digits.
  auto RunFixed = [&] {
    for (double V : Values)
      Sink.consume(straightforwardDigits(V, 17));
  };
  // The C library.
  auto RunPrintf = [&] {
    for (double V : Values)
      Sink.consume(printfScientific(V, 17));
  };

  // Warm up, then interleaved best-of-three (sheds scheduler noise).
  RunFree();
  RunFixed();
  double FreeTime = 1e30, FixedTime = 1e30, PrintfTime = 1e30;
  for (int Rep = 0; Rep < 3; ++Rep) {
    FreeTime = std::min(FreeTime, timeSeconds(RunFree));
    FixedTime = std::min(FixedTime, timeSeconds(RunFixed));
    PrintfTime = std::min(PrintfTime, timeSeconds(RunPrintf));
  }

  // printf misroundings (the "Incorrect" column).
  size_t Incorrect = 0;
  for (double V : Values)
    if (!printfIsCorrectlyRounded(V, 17))
      ++Incorrect;

  std::printf("%-12s %12s %12s %12s %12s %12s\n", "system", "free (s)",
              "fixed (s)", "printf (s)", "free/fixed", "fixed/printf");
  std::printf("%-12s %12.3f %12.3f %12.3f %12.2f %12.2f\n", "this host",
              FreeTime, FixedTime, PrintfTime, FreeTime / FixedTime,
              FixedTime / PrintfTime);
  std::printf("\nincorrectly rounded by printf: %zu of %zu\n", Incorrect,
              Values.size());
  std::printf("mean shortest-output digits: %.1f (paper: 15.2; needs 17 "
              "to be safe without the shortest test)\n",
              static_cast<double>(TotalShortestDigits) /
                  static_cast<double>(Values.size()));
  std::printf("\npaper's Table 3 (geometric means over nine systems): "
              "free/fixed 1.66, fixed/printf 1.51, printf misroundings "
              "0 on four systems, up to 6280 elsewhere.\n");
  Sink.report();

  BenchReport Report{"bench_table3"};
  Report.context("workload", "schryerDoubles");
  Report.context("count", static_cast<uint64_t>(Values.size()));
  const double N = static_cast<double>(Values.size());
  Report.metric("free_format_ns_per_value", FreeTime * 1e9 / N);
  Report.metric("fixed17_ns_per_value", FixedTime * 1e9 / N);
  Report.metric("printf_ns_per_value", PrintfTime * 1e9 / N);
  Report.derived("free_over_fixed", FreeTime / FixedTime);
  Report.derived("fixed_over_printf", FixedTime / PrintfTime);
  Report.derived("printf_misrounded", static_cast<double>(Incorrect));
  Report.derived("mean_shortest_digits",
                 static_cast<double>(TotalShortestDigits) / N);
  return emitBenchReport(Report, Output);
}
