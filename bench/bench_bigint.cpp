//===- bench/bench_bigint.cpp - BigInt microbenchmarks ------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The substrate costs: multiplication across the Karatsuba threshold,
/// Knuth-D division at digit-loop-realistic sizes, the small scalar
/// operations the digit loop leans on, and decimal rendering.
///
//===----------------------------------------------------------------------===//

#include "bigint/bigint.h"
#include "testgen/random_floats.h"

#include "bench_gbench.h"

using namespace dragon4;

namespace {

BigInt randomWide(SplitMix64 &Rng, size_t Limbs) {
  BigInt V;
  for (size_t I = 0; I < Limbs; ++I) {
    V <<= 32;
    V += BigInt(static_cast<uint64_t>(Rng.next() & 0xFFFFFFFFu));
  }
  return V;
}

void BM_Mul(benchmark::State &State) {
  SplitMix64 Rng(1);
  size_t Limbs = static_cast<size_t>(State.range(0));
  BigInt A = randomWide(Rng, Limbs);
  BigInt B = randomWide(Rng, Limbs);
  for (auto _ : State) {
    BigInt Product = A * B;
    benchmark::DoNotOptimize(Product);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Mul)->RangeMultiplier(2)->Range(2, 512)->Complexity();

void BM_DivMod(benchmark::State &State) {
  SplitMix64 Rng(2);
  size_t Limbs = static_cast<size_t>(State.range(0));
  BigInt N = randomWide(Rng, 2 * Limbs);
  BigInt D = randomWide(Rng, Limbs);
  BigInt Q, R;
  for (auto _ : State) {
    BigInt::divMod(N, D, Q, R);
    benchmark::DoNotOptimize(Q);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_DivMod)->RangeMultiplier(4)->Range(1, 256);

void BM_MulSmall(benchmark::State &State) {
  SplitMix64 Rng(3);
  BigInt V = randomWide(Rng, static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    BigInt Copy = V;
    Copy.mulSmall(10);
    benchmark::DoNotOptimize(Copy);
  }
}
BENCHMARK(BM_MulSmall)->Arg(2)->Arg(8)->Arg(34)->Arg(128);

void BM_AddSameSize(benchmark::State &State) {
  SplitMix64 Rng(4);
  BigInt A = randomWide(Rng, 34);
  BigInt B = randomWide(Rng, 34);
  for (auto _ : State) {
    BigInt Sum = A + B;
    benchmark::DoNotOptimize(Sum);
  }
}
BENCHMARK(BM_AddSameSize);

void BM_Compare(benchmark::State &State) {
  SplitMix64 Rng(5);
  BigInt A = randomWide(Rng, 34);
  BigInt B = A;
  B.addSmall(1);
  for (auto _ : State) {
    int Cmp = A.compare(B);
    benchmark::DoNotOptimize(Cmp);
  }
}
BENCHMARK(BM_Compare);

void BM_ToDecimalString(benchmark::State &State) {
  SplitMix64 Rng(6);
  BigInt V = randomWide(Rng, static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    std::string Text = V.toString();
    benchmark::DoNotOptimize(Text);
  }
}
BENCHMARK(BM_ToDecimalString)->Arg(4)->Arg(34)->Arg(128);

void BM_Pow10(benchmark::State &State) {
  for (auto _ : State) {
    BigInt P = BigInt::pow(10u, static_cast<unsigned>(State.range(0)));
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_Pow10)->Arg(27)->Arg(325);

} // namespace

D4_GBENCH_MAIN("bench_bigint")
