//===- bench/bench_table2.cpp - Reproduce Table 2 ----------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2 of the paper: "Relative CPU times for three different scaling
/// algorithms", measured over ~250k positive normalized doubles generated
/// in Schryer's style, output base ten.
///
/// Two views are printed:
///   * end-to-end free-format conversion time per scaling algorithm (what
///     the paper reports -- the table's relative column), and
///   * scaling-step-only time, which isolates the O(|log v|) cost of the
///     iterative search and makes the asymptotic gap visible even though
///     our C++ bignum operations have far lower constant overhead than a
///     1996 Scheme runtime (see EXPERIMENTS.md for the shape discussion).
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "core/free_format.h"
#include "core/scaling.h"
#include "fp/boundaries.h"

#include <algorithm>
#include <bit>
#include <cstdio>

using namespace dragon4;
using namespace dragon4::bench;

namespace {

const char *algorithmName(ScalingAlgorithm Algorithm) {
  switch (Algorithm) {
  case ScalingAlgorithm::Iterative:
    return "Steele & White iterative";
  case ScalingAlgorithm::FloatLog:
    return "floating-point logarithm";
  case ScalingAlgorithm::Estimate:
    return "Burger-Dybvig estimator";
  }
  return "?";
}

double timeFullConversion(const std::vector<double> &Values,
                          ScalingAlgorithm Algorithm, DigitSink &Sink) {
  FreeFormatOptions Options;
  Options.Scaling = Algorithm;
  return timeSeconds([&] {
    for (double V : Values)
      Sink.consume(shortestDigits(V, Options));
  });
}

double timeScalingOnly(const std::vector<double> &Values,
                       ScalingAlgorithm Algorithm, DigitSink &Sink) {
  BoundaryFlags Flags{false, false};
  return timeSeconds([&] {
    for (double V : Values) {
      Decomposed D = decompose(V);
      int BitLen = 64 - std::countl_zero(D.F);
      ScaledState State = scale(makeScaledStart<double>(D), 10, Flags,
                                Algorithm, D.F, D.E, BitLen);
      Sink.Hash += static_cast<uint64_t>(State.K) + State.S.limbCount();
    }
  });
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOutput Output;
  for (int I = 1; I < Argc; ++I)
    if (!Output.consume(Argv[I])) {
      std::fprintf(stderr,
                   "usage: bench_table2 [--bench-json=FILE] "
                   "[--bench-history=FILE]\n");
      return 2;
    }
  std::vector<double> Values = benchWorkload();
  std::printf("Table 2 -- relative CPU time of the scaling algorithms\n");
  std::printf("workload: %zu positive normalized doubles (Schryer-style), "
              "B = 10\n\n",
              Values.size());

  const ScalingAlgorithm Algorithms[] = {ScalingAlgorithm::Estimate,
                                         ScalingAlgorithm::FloatLog,
                                         ScalingAlgorithm::Iterative};
  DigitSink Sink;

  // Warm the allocator, the power caches, and the branch predictors so
  // the first timed configuration is not penalized.
  (void)timeFullConversion(Values, ScalingAlgorithm::Estimate, Sink);
  (void)timeFullConversion(Values, ScalingAlgorithm::FloatLog, Sink);

  // Best of three repetitions per configuration, interleaved, to shed
  // scheduler noise (the paper's CPU-time measurements play the same
  // role).  The iterative algorithm gets one repetition: its signal is
  // far larger than the noise.
  double FullTimes[3] = {1e30, 1e30, 1e30};
  double ScaleTimes[3] = {1e30, 1e30, 1e30};
  for (int Rep = 0; Rep < 3; ++Rep) {
    for (int I = 0; I < 3; ++I) {
      if (Rep > 0 && Algorithms[I] == ScalingAlgorithm::Iterative)
        continue;
      FullTimes[I] =
          std::min(FullTimes[I], timeFullConversion(Values, Algorithms[I],
                                                    Sink));
      ScaleTimes[I] = std::min(
          ScaleTimes[I], timeScalingOnly(Values, Algorithms[I], Sink));
    }
  }

  std::printf("%-28s %14s %10s %16s %10s\n", "scaling algorithm",
              "conversion (s)", "relative", "scale-only (s)", "relative");
  for (int I = 0; I < 3; ++I) {
    std::printf("%-28s %14.3f %10.2f %16.3f %10.2f\n",
                algorithmName(Algorithms[I]), FullTimes[I],
                FullTimes[I] / FullTimes[0], ScaleTimes[I],
                ScaleTimes[I] / ScaleTimes[0]);
  }

  std::printf("\npaper's Table 2 (relative, DEC AXP, Chez Scheme): "
              "estimator 1.00, float-log slightly above 1, iterative "
              "almost two orders of magnitude slower.\n");
  Sink.report();

  BenchReport Report{"bench_table2"};
  Report.context("workload", "schryerDoubles");
  Report.context("count", static_cast<uint64_t>(Values.size()));
  const double N = static_cast<double>(Values.size());
  const char *Keys[] = {"estimate", "floatlog", "iterative"};
  for (int I = 0; I < 3; ++I) {
    Report.metric(std::string("conversion_") + Keys[I] + "_ns_per_value",
                  FullTimes[I] * 1e9 / N);
    Report.metric(std::string("scale_only_") + Keys[I] + "_ns_per_value",
                  ScaleTimes[I] * 1e9 / N);
  }
  Report.derived("relative_floatlog", FullTimes[1] / FullTimes[0]);
  Report.derived("relative_iterative", FullTimes[2] / FullTimes[0]);
  return emitBenchReport(Report, Output);
}
