//===- bench/bench_reader.cpp - Reader costs ----------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost of text -> float, both sides of the split: the exact correctly
/// rounded reader (verification side) and the Eisel-Lemire fast parser
/// (production side), by literal length and magnitude, against strtod.
/// The read-back pair (BM_ReadBackFastParse / BM_ReadBackExactReader)
/// parses the same pre-formatted shortest-form corpus with each
/// implementation -- the derived reader_roundtrip_speedup ratio is the
/// headline number, and parse_readback_gb_per_s converts the fast
/// parser's per-literal cost into decimal-text bandwidth.  The fused
/// round trip (format + parse per value) bounds a full serialize ->
/// deserialize cycle.
///
//===----------------------------------------------------------------------===//

#include "reader/reader.h"

#include "engine/engine.h"
#include "engine/scratch.h"
#include "engine/stats.h"
#include "parse/parse.h"
#include "testgen/random_floats.h"

#include "bench_gbench.h"

#include <cstdlib>
#include <string>
#include <vector>

using namespace dragon4;

namespace {

const char *TestLiterals[] = {
    "3.14159",
    "3.141592653589793",
    "1.7976931348623157e308",
    "4.9406564584124654e-324",
    "0.500000000000000166533453693773481063544750213623046875",
};

/// Shortest-form corpus: uniform-bit-pattern doubles (the fallback-rate
/// domain from the closure tests) rendered by the engine.  Shared by the
/// read-back pair so both implementations parse identical bytes.
const std::vector<std::string> &readBackCorpus() {
  static const std::vector<std::string> Corpus = [] {
    engine::Scratch Scratch;
    char Buf[64];
    std::vector<std::string> Out;
    for (double V : randomBitsDoubles(4096, 0xBE7C)) {
      size_t Len = engine::format(V, Buf, sizeof(Buf), PrintOptions{}, Scratch);
      Out.emplace_back(Buf, Len);
    }
    return Out;
  }();
  return Corpus;
}

/// Mean literal length of the read-back corpus, for the GB/s conversion.
double readBackMeanBytes() {
  const auto &Corpus = readBackCorpus();
  size_t Total = 0;
  for (const std::string &Text : Corpus)
    Total += Text.size();
  return static_cast<double>(Total) / static_cast<double>(Corpus.size());
}

void BM_ReadDouble(benchmark::State &State) {
  const char *Text = TestLiterals[State.range(0)];
  for (auto _ : State) {
    auto V = readFloat<double>(Text);
    benchmark::DoNotOptimize(V);
  }
  State.SetLabel(Text);
}
BENCHMARK(BM_ReadDouble)->DenseRange(0, 4);

void BM_ParseDouble(benchmark::State &State) {
  // The fast parser over the same literals as BM_ReadDouble: the
  // per-literal ablation of the production/verification split.
  const char *Text = TestLiterals[State.range(0)];
  for (auto _ : State) {
    auto R = parse::parseFloat<double>(Text);
    benchmark::DoNotOptimize(R);
  }
  State.SetLabel(Text);
}
BENCHMARK(BM_ParseDouble)->DenseRange(0, 4);

void BM_StrtodReference(benchmark::State &State) {
  const char *Text = TestLiterals[State.range(0)];
  for (auto _ : State) {
    double V = std::strtod(Text, nullptr);
    benchmark::DoNotOptimize(V);
  }
  State.SetLabel(Text);
}
BENCHMARK(BM_StrtodReference)->DenseRange(0, 4);

void BM_ReadDoubleFastPath(benchmark::State &State) {
  // A short literal inside the Clinger fast-path domain (<= 53-bit
  // significand, |q| <= 22): one exact IEEE operation.
  for (auto _ : State) {
    auto V = readFloat<double>("3.14159");
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_ReadDoubleFastPath);

void BM_ReadDoubleExactOnly(benchmark::State &State) {
  // The same literal forced down the exact path (NearestAway has no fast
  // path) -- the ablation pair for BM_ReadDoubleFastPath.
  for (auto _ : State) {
    auto V = readFloat<double>("3.14159", 10, ReadRounding::NearestAway);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_ReadDoubleExactOnly);

void BM_ReadFloat(benchmark::State &State) {
  for (auto _ : State) {
    auto V = readFloat<float>("3.14159");
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_ReadFloat);

void BM_ParseFloat(benchmark::State &State) {
  for (auto _ : State) {
    auto R = parse::parseFloat<float>("3.14159");
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ParseFloat);

void BM_ReadHexDouble(benchmark::State &State) {
  for (auto _ : State) {
    auto V = readFloat<double>("1.921fb54442d18^0", 16);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_ReadHexDouble);

void BM_ReadBackFastParse(benchmark::State &State) {
  // Read-back rate of the fast parser over shortest-form output; one
  // literal per iteration, cycling the corpus.
  const auto &Corpus = readBackCorpus();
  size_t Index = 0;
  for (auto _ : State) {
    auto R = parse::parseFloat<double>(Corpus[Index]);
    benchmark::DoNotOptimize(R);
    if (++Index == Corpus.size())
      Index = 0;
  }
}
BENCHMARK(BM_ReadBackFastParse);

void BM_ReadBackExactReader(benchmark::State &State) {
  // Identical bytes through the exact bignum reader: the denominator of
  // the reader_roundtrip_speedup acceptance ratio.
  const auto &Corpus = readBackCorpus();
  size_t Index = 0;
  for (auto _ : State) {
    auto V = readFloat<double>(Corpus[Index]);
    benchmark::DoNotOptimize(V);
    if (++Index == Corpus.size())
      Index = 0;
  }
}
BENCHMARK(BM_ReadBackExactReader);

void BM_RoundTripFused(benchmark::State &State) {
  // Fused print -> parse: format one double into a stack buffer and parse
  // it straight back, per iteration.  Bounds a serialize/deserialize
  // cycle end to end (allocation-free on both sides once warm).
  static const std::vector<double> Values = randomBitsDoubles(4096, 0xF05E);
  engine::Scratch Scratch;
  char Buf[64];
  size_t Index = 0;
  for (auto _ : State) {
    size_t Len = engine::format(Values[Index], Buf, sizeof(Buf),
                                PrintOptions{}, Scratch);
    auto R = parse::parseFloat<double>(std::string_view(Buf, Len));
    benchmark::DoNotOptimize(R);
    if (++Index == Values.size())
      Index = 0;
  }
}
BENCHMARK(BM_RoundTripFused);

/// Derived metrics: text bandwidth, the fast/exact read-back ratio, and
/// the observed fast-path hit rate over the read-back corpus.
void readerReportHook(bench::BenchReport &Report,
                      const std::map<std::string, double> &MinNs) {
  double MeanBytes = readBackMeanBytes();
  Report.derived("readback_mean_literal_bytes", MeanBytes);

  auto Fast = MinNs.find("BM_ReadBackFastParse");
  auto Exact = MinNs.find("BM_ReadBackExactReader");
  if (Fast != MinNs.end() && Fast->second > 0)
    Report.derived("parse_readback_gb_per_s", MeanBytes / Fast->second);
  if (Exact != MinNs.end() && Exact->second > 0)
    Report.derived("read_readback_gb_per_s", MeanBytes / Exact->second);
  if (Fast != MinNs.end() && Exact != MinNs.end() && Fast->second > 0)
    // The acceptance ratio: fast parser's read-back rate over the exact
    // reader's on identical shortest-form bytes (target >= 10x).
    Report.derived("reader_roundtrip_speedup", Exact->second / Fast->second);

  auto Fused = MinNs.find("BM_RoundTripFused");
  if (Fused != MinNs.end() && Fused->second > 0)
    Report.derived("roundtrip_fused_mvalues_per_s", 1e3 / Fused->second);

  // Fast-path hit rate over the corpus (counted outside the timed loops).
  engine::EngineStats Stats;
  for (const std::string &Text : readBackCorpus())
    parse::parseFloat<double>(Text, &Stats);
  uint64_t Calls = Stats.FastParseHits + Stats.FastParseFallbacks;
  if (Calls)
    Report.derived("parse_fastpath_hit_rate",
                   static_cast<double>(Stats.FastParseHits) /
                       static_cast<double>(Calls));
}

} // namespace

D4_GBENCH_MAIN_HOOK("bench_reader", readerReportHook)
