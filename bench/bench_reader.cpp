//===- bench/bench_reader.cpp - Reader costs ----------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost of the exact correctly rounded reader (the verification-side
/// component), by literal length and magnitude, against strtod.
///
//===----------------------------------------------------------------------===//

#include "reader/reader.h"

#include "bench_gbench.h"

#include <cstdlib>

using namespace dragon4;

namespace {

const char *TestLiterals[] = {
    "3.14159",
    "3.141592653589793",
    "1.7976931348623157e308",
    "4.9406564584124654e-324",
    "0.500000000000000166533453693773481063544750213623046875",
};

void BM_ReadDouble(benchmark::State &State) {
  const char *Text = TestLiterals[State.range(0)];
  for (auto _ : State) {
    auto V = readFloat<double>(Text);
    benchmark::DoNotOptimize(V);
  }
  State.SetLabel(Text);
}
BENCHMARK(BM_ReadDouble)->DenseRange(0, 4);

void BM_StrtodReference(benchmark::State &State) {
  const char *Text = TestLiterals[State.range(0)];
  for (auto _ : State) {
    double V = std::strtod(Text, nullptr);
    benchmark::DoNotOptimize(V);
  }
  State.SetLabel(Text);
}
BENCHMARK(BM_StrtodReference)->DenseRange(0, 4);

void BM_ReadDoubleFastPath(benchmark::State &State) {
  // A short literal inside the Clinger fast-path domain (<= 53-bit
  // significand, |q| <= 22): one exact IEEE operation.
  for (auto _ : State) {
    auto V = readFloat<double>("3.14159");
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_ReadDoubleFastPath);

void BM_ReadDoubleExactOnly(benchmark::State &State) {
  // The same literal forced down the exact path (NearestAway has no fast
  // path) -- the ablation pair for BM_ReadDoubleFastPath.
  for (auto _ : State) {
    auto V = readFloat<double>("3.14159", 10, ReadRounding::NearestAway);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_ReadDoubleExactOnly);

void BM_ReadFloat(benchmark::State &State) {
  for (auto _ : State) {
    auto V = readFloat<float>("3.14159");
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_ReadFloat);

void BM_ReadHexDouble(benchmark::State &State) {
  for (auto _ : State) {
    auto V = readFloat<double>("1.921fb54442d18^0", 16);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_ReadHexDouble);

} // namespace

D4_GBENCH_MAIN("bench_reader")
