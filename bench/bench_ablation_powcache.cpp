//===- bench/bench_ablation_powcache.cpp - B^k lookup vs recompute ------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: the paper "uses a table to look up the value of 10^k for
/// 0 <= k <= 325".  Every scaling operation needs one B^k; this compares
/// the warm cache against recomputing the power, and shows the cost of a
/// full conversion with each.
///
//===----------------------------------------------------------------------===//

#include "bigint/power_cache.h"
#include "core/digit_loop.h"
#include "core/scaling.h"
#include "fp/boundaries.h"

#include "bench_gbench.h"

#include <bit>

using namespace dragon4;

namespace {

void BM_CachedPow10(benchmark::State &State) {
  unsigned Exp = static_cast<unsigned>(State.range(0));
  (void)cachedPow(10, 325); // Warm.
  for (auto _ : State) {
    const BigInt &P = cachedPow(10, Exp);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_CachedPow10)->Arg(10)->Arg(150)->Arg(325);

void BM_RecomputedPow10(benchmark::State &State) {
  unsigned Exp = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    BigInt P = BigInt::pow(10u, Exp);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_RecomputedPow10)->Arg(10)->Arg(150)->Arg(325);

/// Full conversion of 1.5e-300 using the cache (the production path).
void BM_ConversionWithCache(benchmark::State &State) {
  Decomposed D = decompose(1.5e-300);
  int BitLen = 64 - std::countl_zero(D.F);
  BoundaryFlags Flags{false, false};
  (void)cachedPow(10, 325);
  for (auto _ : State) {
    ScaledState Scaled = scaleEstimate(makeScaledStart<double>(D), 10, Flags,
                                       D.E, BitLen);
    DigitLoopResult Loop =
        runDigitLoop(std::move(Scaled), 10, Flags, TieBreak::RoundUp);
    benchmark::DoNotOptimize(Loop);
  }
}
BENCHMARK(BM_ConversionWithCache);

/// The same conversion paying a fresh power computation each time, as an
/// uncached implementation would.
void BM_ConversionRecomputingPower(benchmark::State &State) {
  Decomposed D = decompose(1.5e-300);
  int BitLen = 64 - std::countl_zero(D.F);
  BoundaryFlags Flags{false, false};
  for (auto _ : State) {
    int Est = estimateScale(D.E, BitLen, 10);
    ScaledStart Start = makeScaledStart<double>(D);
    BigInt Power = BigInt::pow(10u, static_cast<unsigned>(-Est));
    Start.R *= Power;
    Start.MPlus *= Power;
    Start.MMinus *= Power;
    BigInt High = Start.R + Start.MPlus;
    int K = Est;
    ScaledState Scaled;
    if (High > Start.S) {
      Scaled = ScaledState{std::move(Start.R), std::move(Start.S),
                           std::move(Start.MPlus), std::move(Start.MMinus),
                           Est + 1};
    } else {
      Start.R.mulSmall(10);
      Start.MPlus.mulSmall(10);
      Start.MMinus.mulSmall(10);
      Scaled = ScaledState{std::move(Start.R), std::move(Start.S),
                           std::move(Start.MPlus), std::move(Start.MMinus),
                           Est};
    }
    (void)K;
    DigitLoopResult Loop =
        runDigitLoop(std::move(Scaled), 10, Flags, TieBreak::RoundUp);
    benchmark::DoNotOptimize(Loop);
  }
}
BENCHMARK(BM_ConversionRecomputingPower);

} // namespace

D4_GBENCH_MAIN("bench_ablation_powcache")
