//===- bench/bench_ablation_estimate.cpp - Estimator accuracy ----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: how often is each estimator exactly k, and how often one
/// low?  The paper: "Whereas the floating-point logarithm estimate was
/// almost always k, our simpler estimate is frequently k - 1.  Having the
/// estimate off by one introduces extra overhead, but this overhead can
/// be eliminated" -- the fixup restructuring.  This harness prints the
/// off-by-one frequency per base for both estimators, which is the fact
/// that makes the free fixup matter.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "core/scaling.h"
#include "fp/boundaries.h"

#include <bit>
#include <cstdio>

using namespace dragon4;
using namespace dragon4::bench;

int main(int Argc, char **Argv) {
  bench::BenchOutput Output;
  for (int I = 1; I < Argc; ++I)
    if (!Output.consume(Argv[I])) {
      std::fprintf(stderr,
                   "usage: bench_ablation_estimate [--bench-json=FILE] "
                   "[--bench-history=FILE]\n");
      return 2;
    }
  std::vector<double> Values = benchWorkload();
  std::printf("Ablation -- scaling-estimate accuracy (est == k vs k-1)\n");
  std::printf("workload: %zu doubles (Schryer-style)\n\n", Values.size());
  std::printf("%6s %16s %16s %18s\n", "base", "estimator k-1 %",
              "float-log k-1 %", "(never above k?)");

  bench::BenchReport Report{"bench_ablation_estimate"};
  Report.context("workload", "schryerDoubles");
  Report.context("count", static_cast<uint64_t>(Values.size()));

  BoundaryFlags Flags{false, false};
  for (unsigned B : {2u, 8u, 10u, 16u, 36u}) {
    size_t EstLow = 0, LogLow = 0, Bad = 0;
    for (double V : Values) {
      Decomposed D = decompose(V);
      int BitLen = 64 - std::countl_zero(D.F);
      // The exact k, from the estimator plus its exact fixup (the fixup's
      // correctness against the iterative search is covered by tests).
      int K = scaleEstimate(makeScaledStart<double>(D), B, Flags, D.E,
                            BitLen)
                  .K;
      int Est = estimateScale(D.E, BitLen, B);
      int Log = estimateScaleFloatLog(D.F, D.E, B);
      if (Est == K - 1)
        ++EstLow;
      else if (Est != K)
        ++Bad;
      if (Log == K - 1)
        ++LogLow;
      else if (Log != K)
        ++Bad;
    }
    std::printf("%6u %15.2f%% %15.2f%% %18s\n", B,
                100.0 * static_cast<double>(EstLow) /
                    static_cast<double>(Values.size()),
                100.0 * static_cast<double>(LogLow) /
                    static_cast<double>(Values.size()),
                Bad == 0 ? "yes" : "VIOLATED");
    char Key[48];
    std::snprintf(Key, sizeof(Key), "estimator_low_rate_base%u", B);
    Report.derived(Key, static_cast<double>(EstLow) /
                            static_cast<double>(Values.size()));
    std::snprintf(Key, sizeof(Key), "floatlog_low_rate_base%u", B);
    Report.derived(Key, static_cast<double>(LogLow) /
                            static_cast<double>(Values.size()));
  }
  std::printf("\npaper: the two-flop estimate is 'frequently k-1'; the "
              "float-log estimate 'almost always k'.\n");
  return bench::emitBenchReport(Report, Output);
}
