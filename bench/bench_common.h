//===- bench/bench_common.h - Shared harness helpers -------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by every bench_* binary: wall-clock timing on the prof
/// clock, the Schryer workload with optional subsampling (set
/// DRAGON4_BENCH_QUICK=1 for a 1/16 sample on slow machines), a digit sink
/// that defeats the optimizer the same way the paper "printed to /dev/null
/// in order to factor out I/O performance" -- and the one emitter of the
/// dragon4.bench.v1 result schema.
///
/// Every bench accepts two uniform flags:
///
///   --bench-json=FILE     write the run's dragon4.bench.v1 object to FILE
///   --bench-history=FILE  append the run as one JSONL line (the committed
///                         BENCH_history.jsonl format bench_check.py's
///                         trend detector reads)
///
/// Schema: {"schema": "dragon4.bench.v1", "bench": <name>, "context": {..},
/// "metrics": {..}, "derived": {..}}.  "metrics" holds only comparable
/// lower-is-better nanosecond costs (the gated surface); counts, ratios,
/// and rates go in "derived"; "context" describes the run.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_BENCH_BENCH_COMMON_H
#define DRAGON4_BENCH_BENCH_COMMON_H

#include "core/digits.h"
#include "prof/clock.h"
#include "testgen/schryer.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

namespace dragon4::bench {

/// Seconds of wall-clock time spent running \p Body once (the shared prof
/// clock, so bench numbers and obs/phase exports share a timebase).
template <typename Fn> double timeSeconds(Fn &&Body) {
  return prof::timeSeconds(static_cast<Fn &&>(Body));
}

/// The paper's workload (or a 1/16 sample with DRAGON4_BENCH_QUICK=1).
inline std::vector<double> benchWorkload() {
  std::vector<double> Values = schryerDoubles();
  const char *Quick = std::getenv("DRAGON4_BENCH_QUICK");
  if (Quick && Quick[0] == '1') {
    std::vector<double> Sampled;
    Sampled.reserve(Values.size() / 16 + 1);
    for (size_t I = 0; I < Values.size(); I += 16)
      Sampled.push_back(Values[I]);
    Values = std::move(Sampled);
  }
  return Values;
}

/// Accumulates digits so conversions cannot be optimized away; the final
/// value is printed once (the moral equivalent of /dev/null).
struct DigitSink {
  uint64_t Hash = 0;
  void consume(const DigitString &Digits) {
    for (uint8_t Digit : Digits.Digits)
      Hash = Hash * 31 + Digit;
    Hash += static_cast<uint64_t>(Digits.K);
  }
  void consume(const std::string &Text) {
    for (char C : Text)
      Hash = Hash * 31 + static_cast<unsigned char>(C);
  }
  /// Prints the accumulated checksum (keeps the work observable).
  void report() const { std::printf("(sink checksum %016llx)\n",
                                    static_cast<unsigned long long>(Hash)); }
};

//===----------------------------------------------------------------------===//
// The dragon4.bench.v1 emitter
//===----------------------------------------------------------------------===//

namespace detail {

/// Minimal JSON string escaping (keys and context values are plain ASCII;
/// this keeps pathological labels from corrupting the file).
inline std::string jsonEscape(const std::string &In) {
  std::string Out;
  Out.reserve(In.size());
  for (char C : In) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  return Out;
}

inline std::string jsonNumber(double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  return Buf;
}

} // namespace detail

/// One bench run's results, rendered as dragon4.bench.v1.  Metrics are
/// lower-is-better nanosecond costs (what bench_check.py gates); ratios,
/// counts, and rates belong in derived; context describes the run.
class BenchReport {
public:
  explicit BenchReport(std::string BenchName) : Bench(std::move(BenchName)) {}

  const std::string &name() const { return Bench; }

  void context(const std::string &Key, const std::string &Value) {
    Context.emplace_back(Key, '"' + detail::jsonEscape(Value) + '"');
  }
  void context(const std::string &Key, const char *Value) {
    context(Key, std::string(Value));
  }
  void context(const std::string &Key, uint64_t Value) {
    Context.emplace_back(Key, std::to_string(Value));
  }
  void context(const std::string &Key, bool Value) {
    Context.emplace_back(Key, Value ? "true" : "false");
  }

  /// A gated metric: nanoseconds (per value / per op), lower is better.
  void metric(const std::string &Key, double NanosLowerBetter) {
    Metrics.emplace_back(Key, detail::jsonNumber(NanosLowerBetter));
  }

  /// An informational number (ratio, rate, count) -- reported, not gated.
  void derived(const std::string &Key, double Value) {
    Derived.emplace_back(Key, detail::jsonNumber(Value));
  }

  size_t metricCount() const { return Metrics.size(); }

  /// The full v1 object.  \p Indent selects pretty (multi-line) or the
  /// single-line form used for history records.
  std::string renderJson(bool Pretty = true) const {
    const char *NL = Pretty ? "\n" : "";
    const char *Pad = Pretty ? "  " : "";
    const char *Pad2 = Pretty ? "    " : "";
    std::string Out = "{";
    Out += NL;
    auto Field = [&](const char *Key, const std::string &Rendered,
                     bool Last = false) {
      Out += Pad;
      Out += '"';
      Out += Key;
      Out += "\": ";
      Out += Rendered;
      if (!Last)
        Out += ',';
      Out += NL;
    };
    auto Object =
        [&](const std::vector<std::pair<std::string, std::string>> &KVs) {
          std::string O = "{";
          O += NL;
          for (size_t I = 0; I < KVs.size(); ++I) {
            O += Pad2;
            O += '"';
            O += detail::jsonEscape(KVs[I].first);
            O += "\": ";
            O += KVs[I].second;
            if (I + 1 < KVs.size())
              O += ',';
            O += NL;
          }
          O += Pad;
          O += '}';
          return O;
        };
    Field("schema", "\"dragon4.bench.v1\"");
    Field("bench", '"' + detail::jsonEscape(Bench) + '"');
    if (Timestamp)
      Field("unix_time", std::to_string(Timestamp));
    Field("context", Object(Context));
    Field("metrics", Object(Metrics));
    Field("derived", Object(Derived), /*Last=*/true);
    Out += '}';
    if (Pretty)
      Out += '\n';
    return Out;
  }

  bool writeJson(const std::string &Path) const {
    std::FILE *Out = std::fopen(Path.c_str(), "w");
    if (!Out)
      return false;
    std::string Text = renderJson();
    std::fwrite(Text.data(), 1, Text.size(), Out);
    std::fclose(Out);
    return true;
  }

  /// Appends this run as one JSONL line (stamps the current unix time).
  bool appendHistory(const std::string &Path) const {
    std::FILE *Out = std::fopen(Path.c_str(), "a");
    if (!Out)
      return false;
    BenchReport Stamped = *this;
    Stamped.Timestamp = static_cast<uint64_t>(std::time(nullptr));
    std::string Line = Stamped.renderJson(/*Pretty=*/false);
    Line += '\n';
    std::fwrite(Line.data(), 1, Line.size(), Out);
    std::fclose(Out);
    return true;
  }

private:
  std::string Bench;
  uint64_t Timestamp = 0; ///< Set only while rendering a history line.
  std::vector<std::pair<std::string, std::string>> Context;
  std::vector<std::pair<std::string, std::string>> Metrics;
  std::vector<std::pair<std::string, std::string>> Derived;
};

/// The two uniform output flags every bench understands.
struct BenchOutput {
  std::string JsonPath;    ///< --bench-json=FILE
  std::string HistoryPath; ///< --bench-history=FILE

  /// Consumes \p Arg if it is one of the shared flags.
  bool consume(const char *Arg) {
    if (std::strncmp(Arg, "--bench-json=", 13) == 0) {
      JsonPath = Arg + 13;
      return true;
    }
    if (std::strncmp(Arg, "--bench-history=", 16) == 0) {
      HistoryPath = Arg + 16;
      return true;
    }
    return false;
  }
};

/// Writes/appends \p Report per \p Out.  Returns 0, or 1 on I/O failure
/// (benches return this from main so CI catches unwritable paths).
inline int emitBenchReport(BenchReport &Report, const BenchOutput &Out) {
  int Rc = 0;
  if (!Out.JsonPath.empty()) {
    if (Report.writeJson(Out.JsonPath)) {
      std::printf("wrote %s\n", Out.JsonPath.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", Out.JsonPath.c_str());
      Rc = 1;
    }
  }
  if (!Out.HistoryPath.empty()) {
    if (Report.appendHistory(Out.HistoryPath)) {
      std::printf("appended %s to %s\n", Report.name().c_str(),
                  Out.HistoryPath.c_str());
    } else {
      std::fprintf(stderr, "cannot append %s\n", Out.HistoryPath.c_str());
      Rc = 1;
    }
  }
  return Rc;
}

} // namespace dragon4::bench

#endif // DRAGON4_BENCH_BENCH_COMMON_H
