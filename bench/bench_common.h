//===- bench/bench_common.h - Shared harness helpers -------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for the table-regeneration harnesses: wall-clock timing, the
/// Schryer workload with optional subsampling (set DRAGON4_BENCH_QUICK=1
/// for a 1/16 sample on slow machines), and a digit sink that defeats the
/// optimizer the same way the paper "printed to /dev/null in order to
/// factor out I/O performance".
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_BENCH_BENCH_COMMON_H
#define DRAGON4_BENCH_BENCH_COMMON_H

#include "core/digits.h"
#include "testgen/schryer.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dragon4::bench {

/// Seconds of wall-clock time spent running \p Body once.
template <typename Fn> double timeSeconds(Fn &&Body) {
  auto Start = std::chrono::steady_clock::now();
  Body();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

/// The paper's workload (or a 1/16 sample with DRAGON4_BENCH_QUICK=1).
inline std::vector<double> benchWorkload() {
  std::vector<double> Values = schryerDoubles();
  const char *Quick = std::getenv("DRAGON4_BENCH_QUICK");
  if (Quick && Quick[0] == '1') {
    std::vector<double> Sampled;
    Sampled.reserve(Values.size() / 16 + 1);
    for (size_t I = 0; I < Values.size(); I += 16)
      Sampled.push_back(Values[I]);
    Values = std::move(Sampled);
  }
  return Values;
}

/// Accumulates digits so conversions cannot be optimized away; the final
/// value is printed once (the moral equivalent of /dev/null).
struct DigitSink {
  uint64_t Hash = 0;
  void consume(const DigitString &Digits) {
    for (uint8_t Digit : Digits.Digits)
      Hash = Hash * 31 + Digit;
    Hash += static_cast<uint64_t>(Digits.K);
  }
  void consume(const std::string &Text) {
    for (char C : Text)
      Hash = Hash * 31 + static_cast<unsigned char>(C);
  }
  /// Prints the accumulated checksum (keeps the work observable).
  void report() const { std::printf("(sink checksum %016llx)\n",
                                    static_cast<unsigned long long>(Hash)); }
};

} // namespace dragon4::bench

#endif // DRAGON4_BENCH_BENCH_COMMON_H
