//===- bench/bench_scaling_micro.cpp - Per-call scaling costs -----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-call cost of the three scaling strategies at small, medium, and
/// extreme exponents -- the micro view behind Table 2.  The iterative
/// algorithm's cost grows with |log v| while the estimator's stays flat;
/// the crossover (tiny exponents) is visible in the 1.5 rows.
///
//===----------------------------------------------------------------------===//

#include "core/scaling.h"
#include "fp/boundaries.h"

#include "bench_gbench.h"

#include <bit>
#include <cstdio>

using namespace dragon4;

namespace {

const double TestValues[] = {1.5, 1.5e40, 1.5e150, 1.5e300, 1.5e-40,
                             1.5e-150, 1.5e-300};

void runScaling(benchmark::State &State, ScalingAlgorithm Algorithm) {
  double V = TestValues[State.range(0)];
  Decomposed D = decompose(V);
  int BitLen = 64 - std::countl_zero(D.F);
  BoundaryFlags Flags{false, false};
  for (auto _ : State) {
    ScaledState Scaled = scale(makeScaledStart<double>(D), 10, Flags,
                               Algorithm, D.F, D.E, BitLen);
    benchmark::DoNotOptimize(Scaled);
  }
  char Label[32];
  std::snprintf(Label, sizeof(Label), "%g", V);
  State.SetLabel(Label);
}

void BM_ScaleEstimate(benchmark::State &State) {
  runScaling(State, ScalingAlgorithm::Estimate);
}
void BM_ScaleFloatLog(benchmark::State &State) {
  runScaling(State, ScalingAlgorithm::FloatLog);
}
void BM_ScaleIterative(benchmark::State &State) {
  runScaling(State, ScalingAlgorithm::Iterative);
}

void BM_EstimatorFlopsOnly(benchmark::State &State) {
  Decomposed D = decompose(1.5e150);
  int BitLen = 64 - std::countl_zero(D.F);
  for (auto _ : State) {
    int Est = estimateScale(D.E, BitLen, 10);
    benchmark::DoNotOptimize(Est);
  }
}

void BM_FloatLogFlopsOnly(benchmark::State &State) {
  Decomposed D = decompose(1.5e150);
  for (auto _ : State) {
    int Est = estimateScaleFloatLog(D.F, D.E, 10);
    benchmark::DoNotOptimize(Est);
  }
}

} // namespace

BENCHMARK(BM_ScaleEstimate)->DenseRange(0, 6);
BENCHMARK(BM_ScaleFloatLog)->DenseRange(0, 6);
BENCHMARK(BM_ScaleIterative)->DenseRange(0, 6);
BENCHMARK(BM_EstimatorFlopsOnly);
BENCHMARK(BM_FloatLogFlopsOnly);

D4_GBENCH_MAIN("bench_scaling_micro")
