#!/usr/bin/env python3
"""Self-test of tools/bench_check.py: every mode's gating logic and the
machine-parseability of the --diff table, exercised against synthetic
documents so the test is deterministic and needs no built binaries.

Run directly or via ctest:  python3 tools/test_bench_check.py
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import unittest

CHECK = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "bench_check.py")


def bench_doc(bench="bench_x", metrics=None, context=None):
    return {"schema": "dragon4.bench.v1", "bench": bench,
            "context": context or {}, "metrics": metrics or {},
            "derived": {}}


def stats_doc(phase_ticks, values, perf=False):
    counters = {"dragon4_phase_total_spans_total": values}
    for phase, ticks in phase_ticks.items():
        counters[f"dragon4_phase_{phase}_self_ticks_total"] = ticks
        counters[f"dragon4_phase_{phase}_spans_total"] = values
    return {"schema": "dragon4.stats.v1", "counters": counters,
            "gauges": {"dragon4_prof_backend_perf_event": int(perf)},
            "derived": {}, "histograms": []}


class BenchCheckTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def path(self, name, doc):
        p = os.path.join(self.dir.name, name)
        with open(p, "w") as f:
            if isinstance(doc, str):
                f.write(doc)
            else:
                json.dump(doc, f)
        return p

    def run_check(self, *args):
        return subprocess.run([sys.executable, CHECK, *args],
                              capture_output=True, text=True)

    # --- baseline compare -------------------------------------------------

    def test_baseline_ok_and_regression(self):
        base = self.path("base.json",
                         bench_doc(metrics={"a_ns_per_value": 100.0}))
        ok = self.path("ok.json",
                       bench_doc(metrics={"a_ns_per_value": 110.0}))
        bad = self.path("bad.json",
                        bench_doc(metrics={"a_ns_per_value": 130.0}))
        self.assertEqual(self.run_check(ok, base).returncode, 0)
        result = self.run_check(bad, base)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)

    def test_baseline_verify_schema_metrics_gate(self):
        # The regenerated BENCH_verify.json shape: verify_* metrics obey
        # the same lower-is-better logic as every other bench.
        base = self.path("vbase.json", bench_doc(
            "verify_sweeps",
            {"verify_binary16_exhaustive_ns_per_value": 40000.0}))
        slow = self.path("vslow.json", bench_doc(
            "verify_sweeps",
            {"verify_binary16_exhaustive_ns_per_value": 60000.0}))
        self.assertEqual(self.run_check(slow, base).returncode, 1)
        self.assertEqual(self.run_check(base, base).returncode, 0)

    # --- within-run ratio gates -------------------------------------------

    def test_ratio_gate_bounds_abi_overhead(self):
        # The C ABI surface may cost at most 10% over engine::format in
        # the same document, regardless of how the host compares to the
        # baseline run.
        base = self.path("rbase.json", bench_doc(metrics={
            "engine_format_ns_per_value": 100.0,
            "to_chars_ns_per_value": 105.0}))
        ok = self.path("rok.json", bench_doc(metrics={
            "engine_format_ns_per_value": 110.0,
            "to_chars_ns_per_value": 118.0}))  # Ratio 1.07: fine.
        result = self.run_check(ok, base)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("ratio", result.stdout)
        # Every metric within baseline tolerance, but the shim got fat:
        # the ratio gate alone must fail the run.
        fat = self.path("rfat.json", bench_doc(metrics={
            "engine_format_ns_per_value": 100.0,
            "to_chars_ns_per_value": 118.0}))
        result = self.run_check(fat, base)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("RATIO REGRESSION", result.stdout)

    def test_ratio_gate_warns_on_skew(self):
        # A shim "faster" than what it wraps means the loops are not
        # measuring comparable work: warn, don't fail.
        base = self.path("sbase.json", bench_doc(metrics={
            "engine_format_ns_per_value": 100.0,
            "to_chars_ns_per_value": 100.0}))
        skew = self.path("sskew.json", bench_doc(metrics={
            "engine_format_ns_per_value": 100.0,
            "to_chars_ns_per_value": 60.0}))
        result = self.run_check(skew, base)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("comparable work", result.stdout)

    def test_ratio_gate_applies_in_history_mode(self):
        lines = [json.dumps(bench_doc("bench_x", {
            "engine_format_ns_per_value": 100.0,
            "to_chars_ns_per_value": v})) for v in (104.0, 102.0, 103.0)]
        lines.append(json.dumps(bench_doc("bench_x", {
            "engine_format_ns_per_value": 100.0,
            "to_chars_ns_per_value": 115.0})))
        h = self.path("ratio.jsonl", "\n".join(lines) + "\n")
        result = self.run_check(f"--history={h}")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("RATIO REGRESSION", result.stdout)

    # --- thread-scaling skip logic ----------------------------------------

    def test_baseline_skips_scaling_when_flag_false(self):
        # A regressed 4t metric on a core-starved host must be SKIPPED
        # with an explicit message, while single-thread metrics still gate.
        metrics = {"batch_1t_ns_per_value": 100.0,
                   "batch_4t_ns_per_value": 30.0}
        base = self.path("base.json", bench_doc(
            metrics=metrics,
            context={"thread_scaling_valid": True,
                     "hardware_concurrency": 8}))
        cur = self.path("cur.json", bench_doc(
            metrics={"batch_1t_ns_per_value": 101.0,
                     "batch_4t_ns_per_value": 90.0},  # 3x "regression".
            context={"thread_scaling_valid": False,
                     "hardware_concurrency": 1}))
        result = self.run_check(cur, base)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("SKIPPED", result.stdout)
        self.assertIn("batch_4t_ns_per_value", result.stdout)
        # But a 1t regression on the same host still fails.
        bad = self.path("bad.json", bench_doc(
            metrics={"batch_1t_ns_per_value": 200.0,
                     "batch_4t_ns_per_value": 90.0},
            context={"thread_scaling_valid": False}))
        self.assertEqual(self.run_check(bad, base).returncode, 1)

    def test_baseline_scaling_fallback_uses_concurrency(self):
        # Documents predating the flag: hardware_concurrency < 4 implies
        # the scaling numbers are hardware-bound.
        base = self.path("base.json", bench_doc(
            metrics={"batch32_2t_ns_per_value": 50.0}))
        cur = self.path("cur.json", bench_doc(
            metrics={"batch32_2t_ns_per_value": 150.0},
            context={"hardware_concurrency": 2}))
        result = self.run_check(cur, base)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("SKIPPED", result.stdout)
        # With neither flag nor concurrency, the run is trusted and the
        # regression gates.
        legacy = self.path("legacy.json", bench_doc(
            metrics={"batch32_2t_ns_per_value": 150.0}))
        self.assertEqual(self.run_check(legacy, base).returncode, 1)

    def test_history_skips_scaling_when_any_run_invalid(self):
        lines = [json.dumps(bench_doc(
            "bench_x", {"batch_4t_ns_per_value": v},
            {"thread_scaling_valid": True})) for v in (100.0, 101.0, 99.0)]
        lines.append(json.dumps(bench_doc(
            "bench_x", {"batch_4t_ns_per_value": 300.0},
            {"thread_scaling_valid": False})))
        h = self.path("scaling.jsonl", "\n".join(lines) + "\n")
        result = self.run_check(f"--history={h}")
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("SKIPPED", result.stdout)

    # --- history trend gate -----------------------------------------------

    def history(self, *values, bench="bench_x", last_context=None):
        lines = []
        for i, v in enumerate(values):
            ctx = last_context if (last_context and
                                   i == len(values) - 1) else {}
            lines.append(json.dumps(
                bench_doc(bench, {"m_ns_per_value": v}, ctx)))
        return self.path("history.jsonl", "\n".join(lines) + "\n")

    def test_history_clean_passes(self):
        h = self.history(100.0, 104.0, 98.0, 101.0)
        result = self.run_check(f"--history={h}")
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("1 bench(es) gated", result.stdout)

    def test_history_detects_trend_regression(self):
        h = self.history(100.0, 104.0, 98.0, 140.0)
        result = self.run_check(f"--history={h}")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("REGRESSION", result.stdout)
        # The median (100) is the comparison point, not any single run.
        self.assertIn("100.00", result.stdout)

    def test_history_median_sheds_one_off_noise(self):
        # One noisy spike in the middle must not poison the median.
        h = self.history(100.0, 500.0, 98.0, 102.0, 103.0)
        self.assertEqual(self.run_check(f"--history={h}").returncode, 0)

    def test_history_insufficient_runs_not_gated(self):
        h = self.history(100.0, 130.0)  # Only 1 prior run.
        result = self.run_check(f"--history={h}")
        self.assertEqual(result.returncode, 0)
        self.assertIn("insufficient history", result.stdout)

    def test_history_warns_on_injected_spin(self):
        h = self.history(100.0, 101.0, 99.0, 150.0,
                         last_context={"spin_digit_loop": 150})
        result = self.run_check(f"--history={h}")
        self.assertEqual(result.returncode, 1)
        self.assertIn("injected", result.stdout)

    def test_history_bench_filter(self):
        lines = [json.dumps(bench_doc("a", {"m_ns_per_value": v}))
                 for v in (100.0, 101.0, 99.0, 160.0)]
        lines += [json.dumps(bench_doc("b", {"m_ns_per_value": v}))
                  for v in (50.0, 51.0, 49.0, 50.0)]
        h = self.path("mixed.jsonl", "\n".join(lines) + "\n")
        self.assertEqual(
            self.run_check(f"--history={h}", "--bench=b").returncode, 0)
        self.assertEqual(
            self.run_check(f"--history={h}", "--bench=a").returncode, 1)
        self.assertEqual(self.run_check(f"--history={h}").returncode, 1)

    # --- per-phase differential -------------------------------------------

    DIFF_ROW = re.compile(r"^\s+(\w+)\s+([\d.]+)\s+([\d.]+)\s+"
                          r"([+-][\d.]+)%\s+([\d.]+)% ->\s+([\d.]+)%$")

    def test_diff_table_parses_back(self):
        before = self.path("before.json", stats_doc(
            {"total": 100_000, "digit_loop": 500_000,
             "bigint_divmod": 300_000, "render": 50_000}, 1000))
        after = self.path("after.json", stats_doc(
            {"total": 100_000, "digit_loop": 650_000,
             "bigint_divmod": 300_000, "render": 50_000}, 1000))
        result = self.run_check("--diff", before, after)
        self.assertEqual(result.returncode, 0, result.stderr)

        rows = {}
        for line in result.stdout.splitlines():
            m = self.DIFF_ROW.match(line)
            if m:
                rows[m.group(1)] = m.groups()[1:]
        self.assertIn("digit_loop", rows)
        before_tpv, after_tpv, delta = rows["digit_loop"][:3]
        self.assertAlmostEqual(float(before_tpv), 500.0)
        self.assertAlmostEqual(float(after_tpv), 650.0)
        self.assertAlmostEqual(float(delta), 30.0)
        # Unchanged phases read +0.0%, and the backend line is present.
        self.assertAlmostEqual(float(rows["render"][2]), 0.0)
        self.assertIn("steady_clock", result.stdout)

    def test_diff_tolerance_gates_major_phase_only(self):
        before = self.path("b.json", stats_doc(
            {"digit_loop": 500_000, "render": 1_000}, 1000))
        # digit_loop +30% (major share) and render +300% (noise share).
        after = self.path("a.json", stats_doc(
            {"digit_loop": 650_000, "render": 4_000}, 1000))
        result = self.run_check("--diff", before, after,
                                "--tolerance=0.25")
        self.assertEqual(result.returncode, 1)
        self.assertIn("digit_loop", result.stdout.splitlines()[-1])
        self.assertNotIn("render", result.stdout.splitlines()[-1])
        # Within tolerance: the same documents pass a looser gate.
        self.assertEqual(
            self.run_check("--diff", before, after,
                           "--tolerance=0.40").returncode, 0)

    def test_diff_rejects_unprofiled_document(self):
        empty = self.path("empty.json", stats_doc({}, 0))
        other = self.path("other.json", stats_doc({"total": 1}, 1))
        result = self.run_check("--diff", empty, other)
        self.assertNotEqual(result.returncode, 0)


if __name__ == "__main__":
    unittest.main()
