#!/bin/sh
# Service-mode smoke: prove `soak --serve` comes up, serves conformant
# telemetry that *advances* between scrapes, and shuts down cleanly on
# SIGTERM.  This is the executable form of the PR's acceptance
# criterion: curl /metrics against a live service twice and watch the
# counters move.
#
#   tools/ci_service_smoke.sh <build-dir> [obs-off]
#
# The second argument relaxes the checks that need the sharded registry
# (the dragon4_latency_ns family), so the same script gates the
# DRAGON4_OBS=OFF leg: the service must still serve the engine-stats
# counters with observability compiled out.
#
# Exits non-zero with a FAIL line naming the first broken invariant.
set -u

BUILD_DIR=${1:?usage: ci_service_smoke.sh <build-dir> [obs-off]}
OBS_MODE=${2:-obs-on}
SOAK="$BUILD_DIR/tools/soak"
WORK=$(mktemp -d)
PORT_FILE="$WORK/port"
SERVE_LOG="$WORK/serve.log"

fail() {
    echo "ci_service_smoke: FAIL: $1" >&2
    [ -f "$SERVE_LOG" ] && sed 's/^/  serve: /' "$SERVE_LOG" >&2
    kill "$SERVE_PID" 2>/dev/null
    rm -rf "$WORK"
    exit 1
}

fetch() {
    # curl when available (CI images), else python3 -- both are hard
    # requirements of other CI steps already.
    if command -v curl >/dev/null 2>&1; then
        curl -sSf --max-time 10 "http://127.0.0.1:$PORT$1"
    else
        python3 -c "import urllib.request,sys; \
sys.stdout.write(urllib.request.urlopen(\
'http://127.0.0.1:$PORT$1', timeout=10).read().decode())"
    fi
}

counter() {
    # First value of an unlabeled counter line: "name 123".
    awk -v name="$1" '$1 == name { print $2; exit }' "$2"
}

# -- Launch: ephemeral port, generous duration (we stop it ourselves),
# an SLO rule and the profiler on so those endpoints carry real content.
"$SOAK" --serve=0 --serve-duration=60 --serve-tick-ms=200 \
    --port-file="$PORT_FILE" --profile-hz=97 \
    --slo="ryu64:dragon4_latency_ns{format=binary64,path=ryu}:p99:50000000" \
    >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || fail "service exited before binding"
    sleep 0.1
done
[ -s "$PORT_FILE" ] || fail "port file never appeared"
PORT=$(cat "$PORT_FILE")
echo "ci_service_smoke: service up on port $PORT (mode: $OBS_MODE)"

# -- /healthz answers while workers are busy.
fetch /healthz >"$WORK/healthz" || fail "/healthz unreachable"
grep -q "^ok " "$WORK/healthz" || fail "/healthz did not say ok"

# -- Two /metrics scrapes, a window tick apart.
fetch /metrics >"$WORK/scrape1" || fail "first /metrics scrape failed"
sleep 1
fetch /metrics >"$WORK/scrape2" || fail "second /metrics scrape failed"

# Required families, with HELP/TYPE headers (exporter conformance).
REQUIRED="dragon4_conversions_total dragon4_batch_values_total"
[ "$OBS_MODE" = obs-off ] || REQUIRED="$REQUIRED dragon4_latency_ns"
for FAMILY in $REQUIRED; do
    grep -q "^# TYPE $FAMILY " "$WORK/scrape2" \
        || fail "missing # TYPE for $FAMILY"
    grep -q "^# HELP $FAMILY " "$WORK/scrape2" \
        || fail "missing # HELP for $FAMILY"
done

# Non-zero counters that advance between scrapes: the live-service
# acceptance criterion.
C1=$(counter dragon4_conversions_total "$WORK/scrape1")
C2=$(counter dragon4_conversions_total "$WORK/scrape2")
[ -n "$C1" ] && [ -n "$C2" ] || fail "dragon4_conversions_total not found"
[ "$C1" -gt 0 ] || fail "dragon4_conversions_total is zero"
[ "$C2" -gt "$C1" ] || fail \
    "counters did not advance between scrapes ($C1 -> $C2)"
echo "ci_service_smoke: counters advanced $C1 -> $C2"

# -- The other endpoints answer with their documented shapes.
fetch /stats.json >"$WORK/stats" || fail "/stats.json unreachable"
grep -q '"schema": "dragon4.stats.v1"' "$WORK/stats" \
    || fail "/stats.json missing schema marker"
fetch /profile.folded >"$WORK/folded" || fail "/profile.folded unreachable"
[ -s "$WORK/folded" ] || fail "/profile.folded is empty"

# /exemplars.json always parses; with observability compiled in, warmup
# traffic must already have captured at least one worst-case record.
fetch /exemplars.json >"$WORK/exemplars" || fail "/exemplars.json unreachable"
grep -q '"schema": "dragon4.exemplars.v1"' "$WORK/exemplars" \
    || fail "/exemplars.json missing schema marker"
if [ "$OBS_MODE" != obs-off ]; then
    grep -q '"bits":' "$WORK/exemplars" \
        || fail "/exemplars.json holds no captured record after warmup"
    echo "ci_service_smoke: exemplars captured"
fi

# SLO gauge block rides every scrape when rules are configured.
grep -q '^dragon4_slo_breached{slo="ryu64"} ' "$WORK/scrape2" \
    || fail "SLO gauge block missing from /metrics"

# -- Clean shutdown: SIGTERM, prompt exit, status 0.
kill -TERM "$SERVE_PID"
WAITED=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    WAITED=$((WAITED + 1))
    [ "$WAITED" -gt 100 ] && fail "service ignored SIGTERM for 10s"
    sleep 0.1
done
wait "$SERVE_PID"
STATUS=$?
[ "$STATUS" -eq 0 ] || fail "service exited with status $STATUS"
grep -q "serve done" "$SERVE_LOG" || fail "service never printed its summary"

echo "ci_service_smoke: OK (clean shutdown after $((WAITED / 10)).$((WAITED % 10))s)"
rm -rf "$WORK"
exit 0
