//===- tools/verify_exhaustive.cpp - Differential verification driver ----------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the src/verify/ harness: runs the pluggable
/// oracles over exhaustive encoding sweeps (binary16, binary32) or
/// deterministic stratified samples (binary64, binary128), sharded across
/// a BatchPool worker pool.  Mismatches become replayable corpus
/// records; --replay re-runs a corpus file and exits nonzero if any record
/// still fails.
///
///   verify_exhaustive --format binary16 --all
///   verify_exhaustive --format binary32 --begin 0x3f000000 --end 0x40000000
///   verify_exhaustive --format binary64 --samples 500000 --seed 7
///   verify_exhaustive --replay tests/corpus/regressions.rec
///
/// Options (all accept both `--flag value` and `--flag=value`):
///   --format <name>      binary16|binary32|binary64|binary128
///   --domain <name>      shorthand for --format <name> --all
///   --all                exhaustive sweep over every encoding
///   --begin/--end N      exhaustive subrange [begin, end), hex or decimal
///   --stride N           visit every N-th encoding of the subrange
///   --samples N          sampled mode: domain size (default 100000)
///   --seed N             sample seed (default 1)
///   --oracles <list>     comma-separated subset, or "all" (default)
///   --threads N          worker threads (0 = hardware concurrency)
///   --corpus <path>      append a record per mismatch to this file
///   --minimize           shrink mismatches before recording them
///   --replay <path>      re-run a corpus file instead of sweeping
///   --max-failures N     stop printing/recording after N mismatches (100)
///   --progress           live progress/ETA line on stderr
///   --json <path>        write the dragon4.bench.v1 sweep summary (the
///                        committed BENCH_verify.json format)
///   --bench-history <path>  append the summary as one JSONL line for
///                        bench_check.py's --history trend gate
///   --stats-json <path>  write the dragon4.stats.v1 telemetry document
///   --trace <path>       write Chrome trace_event JSON (Perfetto-loadable)
///   --obs-sample N       sample 1-in-N conversions (default: 1 when
///                        --stats-json/--trace is given, else off)
///   --inject-bug         flip a digit-loop comparison (harness self-test)
///   --inject-ryu-bug     flip the Ryu removal-loop bound (harness self-test)
///
/// On any mismatch, the per-worker flight recorders' records for the
/// mismatching conversions are dumped and attached to corpus records.
///
/// Exit code 0 iff every checked value passed every requested oracle.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "engine/batch.h"
#include "obs/export.h"
#include "support/testhooks.h"
#include "verify/corpus.h"
#include "verify/domain.h"
#include "verify/verify.h"

#include <map>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

using namespace dragon4;
using namespace dragon4::verify;

namespace {

struct Options {
  std::optional<FloatFormat> Format;
  bool Exhaustive = false;
  uint64_t Begin = 0;
  std::optional<uint64_t> End;
  uint64_t Stride = 1;
  size_t Samples = 100000;
  uint64_t Seed = 1;
  unsigned Oracles = OracleAll;
  unsigned Threads = 0;
  std::string CorpusPath;
  bool Minimize = false;
  std::string ReplayPath;
  size_t MaxFailures = 100;
  bool Progress = false;
  std::string JsonPath;
  std::string HistoryPath;
  std::string StatsJsonPath;
  std::string TracePath;
  std::optional<uint64_t> ObsSample;
  bool InjectBug = false;
  bool InjectRyuBug = false;
};

[[noreturn]] void usage(const char *Message) {
  if (Message)
    std::fprintf(stderr, "verify_exhaustive: %s\n", Message);
  std::fprintf(stderr,
               "usage: verify_exhaustive --format <fmt> [--all | --begin N "
               "--end N [--stride N] | --samples N [--seed N]]\n"
               "                         [--oracles list] [--threads N] "
               "[--corpus path [--minimize]]\n"
               "                         [--max-failures N] [--progress] "
               "[--json path] [--bench-history path] [--inject-bug] "
               "[--inject-ryu-bug]\n"
               "                         [--stats-json path] [--trace path] "
               "[--obs-sample N]\n"
               "       verify_exhaustive --domain <fmt> [...]\n"
               "       verify_exhaustive --replay <corpus-file>\n");
  std::exit(2);
}

uint64_t parseUint(const char *Text, const char *Flag) {
  char *End = nullptr;
  uint64_t Value = std::strtoull(Text, &End, 0);
  if (End == Text || *End != '\0')
    usage((std::string("bad number for ") + Flag).c_str());
  return Value;
}

Options parseArgs(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Flag = Argv[I];
    // Accept --flag=value alongside --flag value.
    std::optional<std::string> Inline;
    if (Flag.rfind("--", 0) == 0) {
      size_t Eq = Flag.find('=');
      if (Eq != std::string::npos) {
        Inline = Flag.substr(Eq + 1);
        Flag.resize(Eq);
      }
    }
    auto Arg = [&]() -> std::string {
      if (Inline)
        return *Inline;
      if (I + 1 >= Argc)
        usage((Flag + " needs an argument").c_str());
      return Argv[++I];
    };
    if (Flag == "--format" || Flag == "--domain") {
      Opts.Format = formatByName(Arg());
      if (!Opts.Format)
        usage("unknown format");
      if (Flag == "--domain") // --domain=binary16 == --format binary16 --all
        Opts.Exhaustive = true;
    } else if (Flag == "--all") {
      Opts.Exhaustive = true;
    } else if (Flag == "--begin") {
      Opts.Begin = parseUint(Arg().c_str(), "--begin");
      Opts.Exhaustive = true;
    } else if (Flag == "--end") {
      Opts.End = parseUint(Arg().c_str(), "--end");
      Opts.Exhaustive = true;
    } else if (Flag == "--stride") {
      Opts.Stride = parseUint(Arg().c_str(), "--stride");
      if (Opts.Stride == 0)
        usage("--stride must be positive");
    } else if (Flag == "--samples") {
      Opts.Samples = parseUint(Arg().c_str(), "--samples");
      if (Opts.Samples == 0)
        usage("--samples must be positive");
    } else if (Flag == "--seed") {
      Opts.Seed = parseUint(Arg().c_str(), "--seed");
    } else if (Flag == "--oracles") {
      std::optional<unsigned> Mask = parseOracles(Arg());
      if (!Mask || *Mask == 0)
        usage("bad --oracles list");
      Opts.Oracles = *Mask;
    } else if (Flag == "--threads") {
      Opts.Threads = static_cast<unsigned>(parseUint(Arg().c_str(), "--threads"));
    } else if (Flag == "--corpus") {
      Opts.CorpusPath = Arg();
    } else if (Flag == "--minimize") {
      Opts.Minimize = true;
    } else if (Flag == "--replay") {
      Opts.ReplayPath = Arg();
    } else if (Flag == "--max-failures") {
      Opts.MaxFailures = parseUint(Arg().c_str(), "--max-failures");
    } else if (Flag == "--progress") {
      Opts.Progress = true;
    } else if (Flag == "--json") {
      Opts.JsonPath = Arg();
    } else if (Flag == "--bench-history") {
      Opts.HistoryPath = Arg();
    } else if (Flag == "--stats-json") {
      Opts.StatsJsonPath = Arg();
    } else if (Flag == "--trace") {
      Opts.TracePath = Arg();
    } else if (Flag == "--obs-sample") {
      Opts.ObsSample = parseUint(Arg().c_str(), "--obs-sample");
    } else if (Flag == "--inject-bug") {
      Opts.InjectBug = true;
    } else if (Flag == "--inject-ryu-bug") {
      Opts.InjectRyuBug = true;
    } else {
      usage(("unknown flag " + Flag).c_str());
    }
  }
  if (Opts.ReplayPath.empty() && !Opts.Format)
    usage("--format is required (or use --replay)");
  return Opts;
}

/// One mismatch, kept for reporting and corpus capture.
struct Failure {
  BitPattern Bits;
  Verdict Outcome;
};

bool failureLess(const Failure &L, const Failure &R) {
  return L.Bits.Hi != R.Bits.Hi ? L.Bits.Hi < R.Bits.Hi
                                : L.Bits.Lo < R.Bits.Lo;
}

/// Shared sweep state: verdict tallies come from the engine's per-worker
/// counters; the failure list is the only cross-thread mutable state.
struct SweepState {
  std::mutex Mutex;
  std::vector<Failure> Failures;
  std::atomic<uint64_t> Done{0};
  std::atomic<uint64_t> LastPrintNanos{0};

  std::atomic<uint64_t> FailureCount{0};

  /// Keeps the \p Keep smallest failures by encoding, so the retained set
  /// (not just its order) is independent of thread scheduling.
  void note(const BitPattern &Bits, Verdict V, size_t Keep) {
    FailureCount.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(Mutex);
    Failure F{Bits, std::move(V)};
    if (Failures.size() < Keep) {
      Failures.push_back(std::move(F));
      return;
    }
    auto Max = std::max_element(Failures.begin(), Failures.end(), failureLess);
    if (Max != Failures.end() && failureLess(F, *Max))
      *Max = std::move(F);
  }
};

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Throttled progress/ETA line; any worker may win the print slot.
void maybePrintProgress(SweepState &State, uint64_t Total, uint64_t Start) {
  uint64_t Now = nowNanos();
  uint64_t Last = State.LastPrintNanos.load(std::memory_order_relaxed);
  if (Now - Last < 500000000) // 500ms between updates.
    return;
  if (!State.LastPrintNanos.compare_exchange_strong(Last, Now,
                                                    std::memory_order_relaxed))
    return;
  uint64_t Done = State.Done.load(std::memory_order_relaxed);
  double Elapsed = static_cast<double>(Now - Start) * 1e-9;
  double Rate = Elapsed > 0 ? static_cast<double>(Done) / Elapsed : 0;
  double Eta =
      Rate > 0 ? static_cast<double>(Total - Done) / Rate : 0;
  std::fprintf(stderr,
               "\r  %" PRIu64 "/%" PRIu64 " (%.1f%%)  %.2fM/s  ETA %.0fs   ",
               Done, Total, 100.0 * static_cast<double>(Done) /
                                static_cast<double>(Total ? Total : 1),
               Rate * 1e-6, Eta);
}

struct SweepResult {
  uint64_t Checked = 0;
  uint64_t TotalFailures = 0; ///< All mismatches, including uncaptured ones.
  std::vector<Failure> Failures;
  double ElapsedSeconds = 0;
};

/// Runs \p BitsAt(Index) for Index in [0, Count) through the oracles,
/// sharded over \p Engine.  Deterministic for any thread count: the chunk
/// boundaries are fixed and failures are sorted by encoding afterwards.
template <typename BitsAtFn>
SweepResult runSweep(engine::BatchPool &Pool, uint64_t Count,
                     const Options &Opts, BitsAtFn BitsAt) {
  SweepState State;
  uint64_t Start = nowNanos();
  Pool.parallelFor(Count, [&](size_t Begin, size_t End, engine::Scratch &S) {
    for (size_t Index = Begin; Index < End; ++Index) {
      BitPattern Bits = BitsAt(Index);
      Verdict V = checkBits(Bits, Opts.Oracles, &S);
      if (!V.ok())
        State.note(Bits, std::move(V), Opts.MaxFailures);
    }
    State.Done.fetch_add(End - Begin, std::memory_order_relaxed);
    if (Opts.Progress)
      maybePrintProgress(State, Count, Start);
  });
  if (Opts.Progress)
    std::fprintf(stderr, "\n");

  SweepResult Result;
  Result.Checked = Count;
  Result.TotalFailures = State.FailureCount.load();
  Result.Failures = std::move(State.Failures);
  std::sort(Result.Failures.begin(), Result.Failures.end(), failureLess);
  Result.ElapsedSeconds = static_cast<double>(nowNanos() - Start) * 1e-9;
  return Result;
}

int runReplay(const Options &Opts) {
  std::vector<CorpusRecord> Records;
  std::string Error;
  if (!loadCorpus(Opts.ReplayPath, Records, &Error)) {
    std::fprintf(stderr, "verify_exhaustive: %s\n", Error.c_str());
    return 2;
  }
  engine::Scratch S;
  size_t Failed = 0;
  for (const CorpusRecord &Record : Records) {
    Verdict V = replayRecord(Record, &S);
    if (V.ok()) {
      std::printf("PASS %s %s %s\n", formatName(Record.Bits.Format),
                  bitsToHex(Record.Bits).c_str(),
                  oracleNames(Record.Oracles).c_str());
    } else {
      ++Failed;
      std::printf("FAIL %s %s %s\n     %s\n",
                  formatName(Record.Bits.Format),
                  bitsToHex(Record.Bits).c_str(),
                  oracleNames(V.Failed).c_str(), V.Detail.c_str());
    }
  }
  std::printf("replay: %zu records, %zu failing\n", Records.size(), Failed);
  return Failed == 0 ? 0 : 1;
}

/// The sweep summary in the dragon4.bench.v1 schema every bench emits, so
/// tools/bench_check.py gates verify-sweep throughput with the same
/// baseline and trend logic it applies to the engine benches.  The one
/// gated metric is verify_<format>_<mode>_ns_per_value; correctness facts
/// (mismatches, verdict counts) ride in "context"/"derived".
int writeBenchReport(const Options &Opts, const SweepResult &Result,
                     const engine::EngineStats &Stats, const char *Mode) {
  bench::BenchReport Report{"verify_exhaustive"};
  Report.context("format", formatName(*Opts.Format));
  Report.context("mode", Mode);
  Report.context("oracles",
                 oracleNames(Opts.Oracles & supportedOracles(*Opts.Format))
                     .c_str());
  Report.context("threads", static_cast<uint64_t>(Opts.Threads));
  Report.context("values_checked", Result.Checked);
  Report.context("oracle_verdicts",
                 static_cast<uint64_t>(Stats.VerifyChecked));
  Report.context("mismatches", Result.TotalFailures);
  std::string Key = std::string("verify_") + formatName(*Opts.Format) +
                    "_" + Mode + "_ns_per_value";
  Report.metric(Key, Result.Checked
                         ? Result.ElapsedSeconds * 1e9 /
                               static_cast<double>(Result.Checked)
                         : 0.0);
  Report.derived("elapsed_seconds", Result.ElapsedSeconds);
  // Fast-parser outcome mix (populated when the parse oracle ran): the
  // observed -- not assumed -- Eisel-Lemire hit rate over this sweep.
  if (Stats.FastParseHits + Stats.FastParseFallbacks > 0) {
    double Decided =
        static_cast<double>(Stats.FastParseHits + Stats.FastParseFallbacks);
    Report.context("fastparse_hits", Stats.FastParseHits);
    Report.context("fastparse_fallbacks", Stats.FastParseFallbacks);
    Report.derived("fastparse_hit_rate",
                   static_cast<double>(Stats.FastParseHits) / Decided);
    Report.derived("fastparse_fallback_rate",
                   static_cast<double>(Stats.FastParseFallbacks) / Decided);
  }
  // Shortest-path outcome mix: which rung of the Ryu -> Grisu3 -> Dragon4
  // ladder served the sweep's conversions.
  if (Stats.RyuHits + Stats.RyuFallbacks > 0) {
    double Attempted =
        static_cast<double>(Stats.RyuHits + Stats.RyuFallbacks);
    Report.context("ryu_hits", Stats.RyuHits);
    Report.context("ryu_fallbacks", Stats.RyuFallbacks);
    Report.derived("ryu_hit_rate",
                   static_cast<double>(Stats.RyuHits) / Attempted);
  }
  Report.derived("values_per_second",
                 Result.ElapsedSeconds > 0
                     ? static_cast<double>(Result.Checked) /
                           Result.ElapsedSeconds
                     : 0.0);
  bench::BenchOutput Output;
  Output.JsonPath = Opts.JsonPath;
  Output.HistoryPath = Opts.HistoryPath;
  return bench::emitBenchReport(Report, Output);
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts = parseArgs(Argc, Argv);

  // Observability: any telemetry output implies sampling (default 1-in-1 so
  // the exported counters cover the whole sweep); --obs-sample overrides.
  {
    obs::Config &Cfg = obs::config();
    if (Opts.ObsSample)
      Cfg.SampleEvery = static_cast<uint32_t>(*Opts.ObsSample);
    else if (!Opts.StatsJsonPath.empty() || !Opts.TracePath.empty())
      Cfg.SampleEvery = 1;
    Cfg.Trace = !Opts.TracePath.empty();
  }
  if (!obs::enabled() &&
      (!Opts.StatsJsonPath.empty() || !Opts.TracePath.empty()))
    std::fprintf(stderr,
                 "verify_exhaustive: warning: telemetry output requested but "
                 "observability is compiled out or sampling is 0; documents "
                 "will carry exact counters only\n");

  if (Opts.InjectBug) {
    std::fprintf(stderr,
                 "verify_exhaustive: INJECTED BUG ACTIVE (digit-loop low "
                 "comparison flipped)\n");
    testhooks::FlipDigitLoopLowComparison = true;
  }
  if (Opts.InjectRyuBug) {
    std::fprintf(stderr,
                 "verify_exhaustive: INJECTED BUG ACTIVE (Ryu removal-loop "
                 "bound flipped)\n");
    testhooks::FlipRyuBoundComparison = true;
  }

  if (!Opts.ReplayPath.empty())
    return runReplay(Opts);

  FloatFormat Format = *Opts.Format;
  unsigned Effective = Opts.Oracles & supportedOracles(Format);
  if (Effective == 0)
    usage("none of the requested oracles support this format");

  engine::BatchPool Pool(Opts.Threads);
  Opts.Threads = Pool.threads();

  SweepResult Result;
  const char *Mode;
  if (Opts.Exhaustive) {
    uint64_t Encodings = encodingCount(Format);
    if (Encodings == 0)
      usage("exhaustive sweeps need binary16 or binary32; use --samples");
    uint64_t End = Opts.End.value_or(Encodings);
    if (End > Encodings || Opts.Begin >= End)
      usage("bad --begin/--end range");
    uint64_t Count = exhaustiveIndexCount(Opts.Begin, End, Opts.Stride);
    Mode = "exhaustive";
    std::printf("verify %s: exhaustive [%#" PRIx64 ", %#" PRIx64
                ") stride %" PRIu64 " = %" PRIu64
                " encodings, oracles %s, %u threads\n",
                formatName(Format), Opts.Begin, End, Opts.Stride, Count,
                oracleNames(Effective).c_str(), Opts.Threads);
    Result = runSweep(Pool, Count, Opts, [&](size_t Index) {
      return exhaustiveBits(Format, Opts.Begin, Opts.Stride, Index);
    });
  } else {
    Mode = "sampled";
    std::vector<BitPattern> Domain =
        sampledDomain(Format, Opts.Samples, Opts.Seed);
    std::printf("verify %s: %zu sampled encodings (seed %" PRIu64
                "), oracles %s, %u threads\n",
                formatName(Format), Domain.size(), Opts.Seed,
                oracleNames(Effective).c_str(), Opts.Threads);
    Result = runSweep(Pool, Domain.size(), Opts,
                      [&](size_t Index) { return Domain[Index]; });
  }

  for (const Failure &F : Result.Failures)
    std::printf("MISMATCH %s %s [%s]\n         %s\n", formatName(Format),
                bitsToHex(F.Bits).c_str(),
                oracleNames(F.Outcome.Failed).c_str(),
                F.Outcome.Detail.c_str());

  // Flight recorder post-mortem: every mismatch-flagged record is retained
  // outside the ring (bounded per worker by MismatchKeepLimit), so this
  // report sees the failures even after later passing conversions recycled
  // the rings.  Dump them and index them by encoding so corpus records
  // carry their conversion context.
  std::map<std::pair<uint64_t, uint64_t>, std::string> FlightByBits;
  if (obs::enabled() && Result.TotalFailures > 0) {
    std::string Dump;
    size_t DumpedRecords = 0;
    size_t PrintLimit = Opts.MaxFailures ? Opts.MaxFailures : 100;
    for (unsigned T = 0; T < Pool.threads(); ++T) {
      for (const obs::ConversionRecord &Rec : Pool.mismatchRecords(T)) {
        std::string Line = Rec.toLine();
        FlightByBits[{Rec.BitsHi, Rec.BitsLo}] = Line;
        if (DumpedRecords < PrintLimit)
          Dump += "  [worker " + std::to_string(T) + "] " + Line + '\n';
        ++DumpedRecords;
      }
    }
    if (DumpedRecords) {
      std::printf("flight recorder: %zu mismatching conversion record(s) "
                  "retained:\n%s",
                  DumpedRecords, Dump.c_str());
      if (DumpedRecords > PrintLimit)
        std::printf("  ... %zu more (raise --max-failures to print them)\n",
                    DumpedRecords - PrintLimit);
    }
  }

  if (!Opts.CorpusPath.empty() && !Result.Failures.empty()) {
    size_t Recorded = 0;
    for (const Failure &F : Result.Failures) {
      CorpusRecord Record;
      Record.Bits = F.Bits;
      Record.Oracles = F.Outcome.Failed;
      Record.Comment = F.Outcome.Detail;
      if (auto It = FlightByBits.find({F.Bits.Hi, F.Bits.Lo});
          It != FlightByBits.end())
        Record.FlightDump = It->second;
      if (Opts.Minimize) {
        CorpusRecord Small = minimizeRecord(Record);
        std::printf("minimized %s -> %s\n", bitsToHex(F.Bits).c_str(),
                    bitsToHex(Small.Bits).c_str());
        Record = std::move(Small);
      }
      if (appendRecord(Opts.CorpusPath, Record))
        ++Recorded;
    }
    std::printf("corpus: %zu record(s) appended to %s\n", Recorded,
                Opts.CorpusPath.c_str());
  }

  const engine::EngineStats &Stats = Pool.stats();
  double Rate = Result.ElapsedSeconds > 0
                    ? static_cast<double>(Result.Checked) /
                          Result.ElapsedSeconds
                    : 0;
  std::printf("checked %" PRIu64 " encodings (%llu oracle verdicts) in "
              "%.2fs (%.2fM values/s): %" PRIu64 " mismatch(es)",
              Result.Checked,
              static_cast<unsigned long long>(Stats.VerifyChecked),
              Result.ElapsedSeconds, Rate * 1e-6, Result.TotalFailures);
  if (Result.TotalFailures > Result.Failures.size())
    std::printf(" (%zu captured; raise --max-failures for more)",
                Result.Failures.size());
  std::printf("\n");
  if (Stats.RyuHits + Stats.RyuFallbacks > 0) {
    double Attempted =
        static_cast<double>(Stats.RyuHits + Stats.RyuFallbacks);
    std::printf("ryu: %" PRIu64 " hit(s), %" PRIu64
                " fallback(s) to Grisu3/Dragon4 (hit rate %.4f%%)\n",
                Stats.RyuHits, Stats.RyuFallbacks,
                100.0 * static_cast<double>(Stats.RyuHits) / Attempted);
  }
  if (Stats.FastParseHits + Stats.FastParseFallbacks > 0) {
    double Decided =
        static_cast<double>(Stats.FastParseHits + Stats.FastParseFallbacks);
    std::printf("fast parse: %" PRIu64 " hit(s), %" PRIu64
                " exact fallback(s) (hit rate %.4f%%)\n",
                Stats.FastParseHits, Stats.FastParseFallbacks,
                100.0 * static_cast<double>(Stats.FastParseHits) / Decided);
  }

  bool EmitFailed = false;
  if (!Opts.JsonPath.empty() || !Opts.HistoryPath.empty())
    EmitFailed = writeBenchReport(Opts, Result, Stats, Mode) != 0;

  if (!Opts.StatsJsonPath.empty())
    obs::writeFile(Opts.StatsJsonPath,
                   obs::renderStatsJson(
                       obs::makeSnapshot(Stats, &Pool.registry())));
  if (!Opts.TracePath.empty()) {
    std::vector<obs::SpanEvent> Spans = Pool.takeSpans();
    obs::writeFile(Opts.TracePath, obs::renderChromeTrace(Spans));
    std::fprintf(stderr,
                 "verify_exhaustive: wrote %zu span(s) to %s (load in "
                 "Perfetto / chrome://tracing)\n",
                 Spans.size(), Opts.TracePath.c_str());
  }

  if (Result.TotalFailures)
    return 1;
  return EmitFailed ? 2 : 0;
}
