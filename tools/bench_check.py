#!/usr/bin/env python3
"""Compare a dragon4.bench.v1 result against a committed baseline.

Usage:
    bench_check.py <current.json> [baseline.json] [--tolerance=0.20]

Both files are bench_engine_batch outputs.  The baseline defaults to the
committed BENCH_engine.json next to this repository's root.  Every metric in
the baseline's "metrics" object (ns/value, lower is better) is compared;
a metric more than `tolerance` slower than the baseline is a regression and
the script exits 1.  Metrics more than `tolerance` *faster* are reported as
improvements (exit 0) -- a hint to refresh the committed baseline.

The legacy flat schema (pre-v1, no "schema" key) is accepted for either
file so older baselines keep working.
"""

import json
import os
import sys

SCHEMA = "dragon4.bench.v1"
DEFAULT_TOLERANCE = 0.20


def load_metrics(path):
    """Returns (metrics dict, context dict) from either schema."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") == SCHEMA:
        return doc["metrics"], doc.get("context", {})
    if "schema" in doc:
        raise ValueError(f"{path}: unknown schema {doc['schema']!r}")
    # Legacy flat layout.
    batch = doc.get("batch_ns_per_value", {})
    metrics = {
        "to_shortest_ns_per_value": doc["to_shortest_ns_per_value"],
        "engine_format_ns_per_value": doc["engine_format_ns_per_value"],
        "batch_1t_ns_per_value": batch["threads_1"],
        "batch_2t_ns_per_value": batch["threads_2"],
        "batch_4t_ns_per_value": batch["threads_4"],
    }
    context = {k: doc[k] for k in ("workload", "count", "reps",
                                   "hardware_concurrency") if k in doc}
    return metrics, context


def main(argv):
    tolerance = DEFAULT_TOLERANCE
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("-"):
            sys.exit(__doc__)
        else:
            paths.append(arg)
    if not paths:
        sys.exit(__doc__)

    current_path = paths[0]
    baseline_path = (paths[1] if len(paths) > 1 else
                     os.path.join(os.path.dirname(__file__), os.pardir,
                                  "BENCH_engine.json"))

    current, current_ctx = load_metrics(current_path)
    baseline, baseline_ctx = load_metrics(baseline_path)

    if current_ctx.get("obs_sampling"):
        print("bench_check: WARNING: current run had obs sampling on; "
              "its timings include telemetry overhead")
    for key in ("workload", "count", "hardware_concurrency"):
        if (key in current_ctx and key in baseline_ctx
                and current_ctx[key] != baseline_ctx[key]):
            print(f"bench_check: WARNING: {key} differs "
                  f"(current {current_ctx[key]}, "
                  f"baseline {baseline_ctx[key]}) -- comparison is "
                  "apples-to-oranges")

    regressions = []
    improvements = []
    width = max(len(k) for k in baseline)
    for key, base in sorted(baseline.items()):
        if key not in current:
            print(f"bench_check: WARNING: {key} missing from current run")
            continue
        cur = current[key]
        ratio = cur / base if base else float("inf")
        delta = (ratio - 1.0) * 100.0
        status = "ok"
        if ratio > 1.0 + tolerance:
            status = "REGRESSION"
            regressions.append(key)
        elif ratio < 1.0 - tolerance:
            status = "improved"
            improvements.append(key)
        print(f"  {key:<{width}}  {base:10.2f} -> {cur:10.2f} ns/value "
              f"({delta:+6.1f}%)  {status}")

    if regressions:
        print(f"bench_check: FAIL: {len(regressions)} metric(s) regressed "
              f"more than {tolerance:.0%}: {', '.join(regressions)}")
        return 1
    if improvements:
        print(f"bench_check: {len(improvements)} metric(s) improved more "
              f"than {tolerance:.0%} -- consider refreshing the committed "
              "baseline")
    print(f"bench_check: OK (tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
