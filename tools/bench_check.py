#!/usr/bin/env python3
"""Gate and inspect dragon4 benchmark results.

Three modes:

  Baseline compare (default)
      bench_check.py <current.json> [baseline.json] [--tolerance=0.20]

      Both files are dragon4.bench.v1 documents (any bench -- engine
      batch, verify sweeps, ...).  The baseline defaults to the committed
      BENCH_engine.json next to this repository's root.  Every metric in
      the baseline's "metrics" object (ns/value, lower is better) is
      compared; a metric more than `tolerance` slower than the baseline
      is a regression and the script exits 1.  Metrics more than
      `tolerance` *faster* are reported as improvements (exit 0) -- a
      hint to refresh the committed baseline.

      Both this mode and the history gate additionally apply the
      within-run RATIO_GATES (e.g. the C ABI surface may cost at most
      10% over engine::format in the same document); a violated ratio
      fails the gate exactly like a regressed metric.

  History trend gate
      bench_check.py --history=BENCH_history.jsonl [--bench=NAME]
                     [--last=5] [--tolerance=0.20]

      The history file is one dragon4.bench.v1 document per line, as
      appended by every bench_* binary's --bench-history flag.  For each
      bench (or just NAME), the newest run's metrics are compared
      against the *median* of up to `last` prior runs, which sheds
      one-off noise that a single-baseline compare cannot.  A bench
      needs at least 2 prior runs to be gated; younger benches are
      reported as "insufficient history" and do not fail.  Exits 1 on
      any regression beyond `tolerance`.

  Per-phase differential report
      bench_check.py --diff <before_stats.json> <after_stats.json>
                     [--tolerance=X]

      Both files are dragon4.stats.v1 documents (from --stats-json= on
      the engine binaries, or obs::renderStatsJson).  Prints a per-phase
      delta table of self ticks/value, computed from the
      dragon4_phase_<name>_self_ticks_total counters divided by the
      profiled-value count (dragon4_phase_total_spans_total), plus each
      phase's share of the pipeline before and after.  Informational by
      default (exit 0); pass --tolerance to exit 1 when any phase with
      at least 5% share regresses beyond it.

The legacy flat schema (pre-v1, no "schema" key) is accepted for
baseline-compare files so older baselines keep working.
"""

import json
import os
import re
import statistics
import sys

SCHEMA = "dragon4.bench.v1"
STATS_SCHEMA = "dragon4.stats.v1"
DEFAULT_TOLERANCE = 0.20
DEFAULT_HISTORY_WINDOW = 5
MIN_PRIOR_RUNS = 2
# A phase must carry at least this share of total self ticks before a
# --diff regression in it can fail the gate; tiny phases are pure noise.
DIFF_GATE_MIN_SHARE = 0.05

# Within-run ratio gates: (numerator metric, denominator metric, limit).
# Both metrics come from the *same* document, so the gate is immune to
# host-speed drift between runs: it bounds an architectural overhead, not
# an absolute time.  The C ABI shim (encoding split, option mapping,
# ERR_SIZE bookkeeping) may cost at most 10% over engine::format, the
# surface it wraps; a ratio far *below* 1 is reported as a warning, since
# it means the two measurements are not measuring comparable work.
RATIO_GATES = [
    ("to_chars_ns_per_value", "engine_format_ns_per_value", 1.10),
]
RATIO_SKEW_FLOOR = 0.90

# Pipeline order for the phase table (matches src/prof/phases.h).
PHASE_ORDER = [
    "total", "decompose", "ryu_path", "fast_path", "estimator",
    "scale_setup", "fixup", "digit_loop", "bigint_mul", "bigint_divmod",
    "render", "overhead",
]

# Multi-thread batch metrics: batch_4t_ns_per_value, batch32_2t_..., etc.
# These measure the host's parallelism as much as the engine's, so they
# are only comparable when the run's thread_scaling_valid context flag
# says the host had enough cores.
MULTI_THREAD_METRIC = re.compile(r"_([0-9]+)t_")
# The widest thread count the batch benches use; the fallback for runs
# predating the explicit flag.
SCALING_MIN_CORES = 4


def is_scaling_metric(key):
    m = MULTI_THREAD_METRIC.search(key)
    return m is not None and int(m.group(1)) > 1


def thread_scaling_valid(ctx):
    """Whether a run's multi-thread metrics are comparable.

    Prefers the explicit thread_scaling_valid flag the bench emits after
    re-detecting the core count at run time; older documents fall back to
    hardware_concurrency; documents with neither are trusted (legacy
    baselines from dedicated bench hosts).
    """
    if "thread_scaling_valid" in ctx:
        return bool(ctx["thread_scaling_valid"])
    if "hardware_concurrency" in ctx:
        return ctx["hardware_concurrency"] >= SCALING_MIN_CORES
    return True


def load_metrics(path):
    """Returns (metrics dict, context dict) from either schema."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") == SCHEMA:
        return doc["metrics"], doc.get("context", {})
    if "schema" in doc:
        raise ValueError(f"{path}: unknown schema {doc['schema']!r}")
    # Legacy flat layout (pre-v1 bench_engine_batch).
    batch = doc.get("batch_ns_per_value", {})
    metrics = {
        "to_shortest_ns_per_value": doc["to_shortest_ns_per_value"],
        "engine_format_ns_per_value": doc["engine_format_ns_per_value"],
        "batch_1t_ns_per_value": batch["threads_1"],
        "batch_2t_ns_per_value": batch["threads_2"],
        "batch_4t_ns_per_value": batch["threads_4"],
    }
    context = {k: doc[k] for k in ("workload", "count", "reps",
                                   "hardware_concurrency") if k in doc}
    return metrics, context


def warn_context(current_ctx, baseline_ctx):
    if current_ctx.get("obs_sampling"):
        print("bench_check: WARNING: current run had obs sampling on; "
              "its timings include telemetry overhead")
    if current_ctx.get("spin_digit_loop"):
        print("bench_check: WARNING: current run carries an injected "
              f"digit-loop spin of {current_ctx['spin_digit_loop']} -- "
              "a regression below is expected")
    for key in ("workload", "count", "hardware_concurrency"):
        if (key in current_ctx and key in baseline_ctx
                and current_ctx[key] != baseline_ctx[key]):
            print(f"bench_check: WARNING: {key} differs "
                  f"(current {current_ctx[key]}, "
                  f"baseline {baseline_ctx[key]}) -- comparison is "
                  "apples-to-oranges")


def compare_metrics(current, baseline, tolerance, label="",
                    skip_scaling=False):
    """Prints the per-metric table; returns (regressions, improvements).

    With skip_scaling, multi-thread metrics are reported as SKIPPED
    rather than compared -- an explicit line per metric, never a silent
    pass, so a CI log always shows what was not gated and why.
    """
    regressions = []
    improvements = []
    width = max(len(k) for k in baseline)
    for key, base in sorted(baseline.items()):
        if key not in current:
            print(f"bench_check: WARNING: {key} missing from current run")
            continue
        if skip_scaling and is_scaling_metric(key):
            print(f"  {key:<{width}}  SKIPPED (thread scaling not valid "
                  "on this host)")
            continue
        cur = current[key]
        ratio = cur / base if base else float("inf")
        delta = (ratio - 1.0) * 100.0
        status = "ok"
        if ratio > 1.0 + tolerance:
            status = "REGRESSION"
            regressions.append(label + key)
        elif ratio < 1.0 - tolerance:
            status = "improved"
            improvements.append(label + key)
        print(f"  {key:<{width}}  {base:10.2f} -> {cur:10.2f} ns/value "
              f"({delta:+6.1f}%)  {status}")
    return regressions, improvements


def check_ratio_gates(metrics, label=""):
    """Applies RATIO_GATES to one run's metrics; returns failure labels.

    Gates whose metrics are absent are skipped silently (most benches
    simply do not emit them).
    """
    failures = []
    for num, den, limit in RATIO_GATES:
        if num not in metrics or den not in metrics:
            continue
        ratio = metrics[num] / metrics[den] if metrics[den] else float("inf")
        status = "ok"
        if ratio > limit:
            status = "RATIO REGRESSION"
            failures.append(f"{label}{num}/{den}")
        print(f"  ratio {num} / {den} = {ratio:.3f} "
              f"(limit {limit:.2f})  {status}")
        if ratio < RATIO_SKEW_FLOOR:
            print(f"bench_check: WARNING: {num} measures {1 - ratio:.0%} "
                  f"faster than {den}; the two loops are probably not "
                  "timing comparable work")
    return failures


def run_baseline(paths, tolerance):
    current_path = paths[0]
    baseline_path = (paths[1] if len(paths) > 1 else
                     os.path.join(os.path.dirname(__file__), os.pardir,
                                  "BENCH_engine.json"))

    current, current_ctx = load_metrics(current_path)
    baseline, baseline_ctx = load_metrics(baseline_path)
    warn_context(current_ctx, baseline_ctx)
    # Either side measured on a core-starved host poisons the comparison.
    skip_scaling = (not thread_scaling_valid(current_ctx)
                    or not thread_scaling_valid(baseline_ctx))
    if skip_scaling:
        print("bench_check: multi-thread scaling metrics will be SKIPPED "
              "(thread_scaling_valid is false for this run or the "
              "baseline)")
    regressions, improvements = compare_metrics(current, baseline,
                                                tolerance,
                                                skip_scaling=skip_scaling)
    regressions.extend(check_ratio_gates(current))

    if regressions:
        print(f"bench_check: FAIL: {len(regressions)} metric(s) regressed "
              f"more than {tolerance:.0%}: {', '.join(regressions)}")
        return 1
    if improvements:
        print(f"bench_check: {len(improvements)} metric(s) improved more "
              f"than {tolerance:.0%} -- consider refreshing the committed "
              "baseline")
    print(f"bench_check: OK (tolerance {tolerance:.0%})")
    return 0


def load_history(path):
    """Returns {bench name: [v1 docs, oldest first]}."""
    runs = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                print(f"bench_check: WARNING: {path}:{lineno}: "
                      "unparsable line skipped")
                continue
            if doc.get("schema") != SCHEMA:
                print(f"bench_check: WARNING: {path}:{lineno}: "
                      f"schema {doc.get('schema')!r} skipped")
                continue
            runs.setdefault(doc.get("bench", "?"), []).append(doc)
    return runs


def run_history(path, bench_filter, window, tolerance):
    runs = load_history(path)
    if bench_filter is not None:
        if bench_filter not in runs:
            print(f"bench_check: FAIL: no runs of {bench_filter!r} "
                  f"in {path}")
            return 1
        runs = {bench_filter: runs[bench_filter]}
    if not runs:
        print(f"bench_check: FAIL: no {SCHEMA} records in {path}")
        return 1

    all_regressions = []
    gated = 0
    for bench in sorted(runs):
        docs = runs[bench]
        current = docs[-1]
        prior = docs[:-1][-window:]
        if len(prior) < MIN_PRIOR_RUNS:
            print(f"{bench}: insufficient history "
                  f"({len(prior)} prior run(s), need {MIN_PRIOR_RUNS}) "
                  "-- not gated")
            continue
        metrics = current.get("metrics", {})
        if not metrics:
            print(f"{bench}: newest run has no metrics -- not gated")
            continue
        baseline = {}
        for key in metrics:
            samples = [d["metrics"][key] for d in prior
                       if key in d.get("metrics", {})]
            if len(samples) >= MIN_PRIOR_RUNS:
                baseline[key] = statistics.median(samples)
        if not baseline:
            print(f"{bench}: no metric has {MIN_PRIOR_RUNS}+ prior "
                  "samples -- not gated")
            continue
        gated += 1
        print(f"{bench}: newest vs median of last {len(prior)} run(s)")
        warn_context(current.get("context", {}),
                     prior[-1].get("context", {}))
        # Any run in the comparison set from a core-starved host poisons
        # the multi-thread medians too, not just the newest numbers.
        skip_scaling = any(not thread_scaling_valid(d.get("context", {}))
                           for d in [current] + prior)
        if skip_scaling:
            print(f"{bench}: multi-thread scaling metrics SKIPPED "
                  "(thread_scaling_valid is false for a run in the "
                  "window)")
        regressions, _ = compare_metrics(metrics, baseline, tolerance,
                                         label=f"{bench}:",
                                         skip_scaling=skip_scaling)
        # The ratio gates hold within the newest run alone -- history
        # depth is irrelevant to an architectural-overhead bound.
        regressions.extend(check_ratio_gates(metrics, label=f"{bench}:"))
        all_regressions.extend(regressions)

    if all_regressions:
        print(f"bench_check: FAIL: {len(all_regressions)} metric(s) "
              f"trending more than {tolerance:.0%} above their median: "
              f"{', '.join(all_regressions)}")
        return 1
    if gated == 0:
        print("bench_check: WARNING: nothing gated (all benches lack "
              "history); treating as OK")
    print(f"bench_check: OK ({gated} bench(es) gated, "
          f"tolerance {tolerance:.0%})")
    return 0


def load_stats(path):
    """Returns (per-phase self ticks, profiled values, backend-is-perf)."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != STATS_SCHEMA:
        raise ValueError(f"{path}: expected {STATS_SCHEMA}, got "
                         f"{doc.get('schema')!r}")
    counters = doc.get("counters", {})
    values = counters.get("dragon4_phase_total_spans_total", 0)
    if not values:
        raise ValueError(f"{path}: no profiled conversions "
                         "(dragon4_phase_total_spans_total is 0 or absent)"
                         " -- was the run built with DRAGON4_OBS and "
                         "sampling on?")
    ticks = {}
    for phase in PHASE_ORDER:
        t = counters.get(f"dragon4_phase_{phase}_self_ticks_total")
        if t is not None:
            ticks[phase] = t
    perf = bool(doc.get("gauges", {}).get(
        "dragon4_prof_backend_perf_event", 0))
    return ticks, values, perf


def run_diff(before_path, after_path, tolerance):
    before, before_values, before_perf = load_stats(before_path)
    after, after_values, after_perf = load_stats(after_path)

    backend = "perf_event" if before_perf else "steady_clock"
    print(f"phase differential: {before_path} -> {after_path}")
    print(f"  profiled values: {before_values} -> {after_values}, "
          f"counter backend: {backend}")
    if before_perf != after_perf:
        print("bench_check: WARNING: counter backends differ between the "
              "two runs -- tick deltas are apples-to-oranges")

    before_sum = sum(before.values()) or 1
    after_sum = sum(after.values()) or 1
    phases = [p for p in PHASE_ORDER if p in before or p in after]
    width = max(len(p) for p in phases)
    print(f"  {'phase':<{width}}  {'before':>10}  {'after':>10}  "
          f"{'delta':>8}  {'share':>15}")
    regressions = []
    for phase in phases:
        b = before.get(phase, 0) / before_values
        a = after.get(phase, 0) / after_values
        share_b = before.get(phase, 0) / before_sum
        share_a = after.get(phase, 0) / after_sum
        if b > 0:
            delta = (a / b - 1.0) * 100.0
            delta_str = f"{delta:+7.1f}%"
            if (tolerance is not None and a / b > 1.0 + tolerance
                    and max(share_b, share_a) >= DIFF_GATE_MIN_SHARE):
                regressions.append(phase)
        else:
            delta_str = "     new" if a > 0 else "       -"
        print(f"  {phase:<{width}}  {b:10.1f}  {a:10.1f}  {delta_str}  "
              f"{share_b:6.1%} -> {share_a:6.1%}")
    print("  (self ticks/value; share = fraction of summed self ticks)")

    if regressions:
        print(f"bench_check: FAIL: {len(regressions)} phase(s) regressed "
              f"more than {tolerance:.0%}: {', '.join(regressions)}")
        return 1
    if tolerance is not None:
        print(f"bench_check: OK (per-phase tolerance {tolerance:.0%})")
    return 0


def main(argv):
    tolerance = None
    history_path = None
    bench_filter = None
    window = DEFAULT_HISTORY_WINDOW
    diff = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("--history="):
            history_path = arg.split("=", 1)[1]
        elif arg.startswith("--bench="):
            bench_filter = arg.split("=", 1)[1]
        elif arg.startswith("--last="):
            window = int(arg.split("=", 1)[1])
        elif arg == "--diff":
            diff = True
        elif arg.startswith("-"):
            sys.exit(__doc__)
        else:
            paths.append(arg)

    if diff:
        if history_path or len(paths) != 2:
            sys.exit(__doc__)
        return run_diff(paths[0], paths[1], tolerance)
    if history_path is not None:
        if paths:
            sys.exit(__doc__)
        return run_history(history_path, bench_filter, window,
                           tolerance if tolerance is not None
                           else DEFAULT_TOLERANCE)
    if not paths:
        sys.exit(__doc__)
    return run_baseline(paths, tolerance if tolerance is not None
                        else DEFAULT_TOLERANCE)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
