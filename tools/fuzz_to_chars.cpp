//===- tools/fuzz_to_chars.cpp - Differential fuzzer for the output stack ----===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic differential fuzzing of every output surface
/// against every other: random bits x random options across all five
/// formats, each case asserting
///
///   * dragon4_to_chars == toShortest == engine::format, byte for byte;
///   * dragon4_to_chars_fixed == toFixed == engine::formatFixed;
///   * formatPrintf(string) == formatPrintf(buffer), full and truncated;
///   * RecordStream bytes == concatenated toShortest records;
///   * the ERR_SIZE contract: one byte short fails with the exact
///     required length, the exact length succeeds;
///   * round-trip: shortest decimal output parses back to the identical
///     encoding through dragon4_from_chars AND parse::parseFloat
///     (decimal output with the default marker only -- other bases and
///     markers are outside the parser's grammar).
///
/// Same seed, same cases: a reported failure prints a one-line
/// reproducer (format, bits, option bytes, case index).
///
///   fuzz_to_chars [--cases=N] [--seed=S]
///
/// Defaults: 10000 cases, seed 0xD4A60001.  Exit 0 clean, 1 on any
/// mismatch.  Tier-1 ctest runs the default slice; nightly CI runs a
/// long one.
///
//===----------------------------------------------------------------------===//

#include "dragon4.h"
#include "engine/stream.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace dragon4;
namespace eng = dragon4::engine;

namespace {

struct Reproducer {
  uint64_t CaseIndex;
  dragon4_format Format;
  uint64_t Lo, Hi;
  dragon4_options Options;
};

int Failures = 0;

void reportFailure(const Reproducer &R, const char *What,
                   const std::string &Got, const std::string &Want) {
  std::fprintf(stderr,
               "FAIL case %" PRIu64 ": %s\n"
               "  format=%d lo=0x%016" PRIx64 " hi=0x%016" PRIx64
               " base=%u boundaries=%u ties=%u marks=%u upper=%u marker=%d\n"
               "  got  \"%s\"\n  want \"%s\"\n",
               R.CaseIndex, What, static_cast<int>(R.Format), R.Lo, R.Hi,
               R.Options.base, R.Options.boundaries, R.Options.ties,
               R.Options.marks_as_zeros, R.Options.uppercase_digits,
               R.Options.exponent_marker, Got.c_str(), Want.c_str());
  ++Failures;
}

/// NaN classification straight from the encoding (the soft formats'
/// operator== is bitwise, so `V == V` cannot detect their NaNs).
bool isNaNBits(dragon4_format Format, uint64_t Lo, uint64_t Hi) {
  switch (Format) {
  case DRAGON4_FORMAT_BINARY16:
    return (Lo & 0x7C00) == 0x7C00 && (Lo & 0x03FF) != 0;
  case DRAGON4_FORMAT_BINARY32:
    return (Lo & 0x7F800000) == 0x7F800000 && (Lo & 0x007FFFFF) != 0;
  case DRAGON4_FORMAT_BINARY64:
    return (Lo & 0x7FF0000000000000ull) == 0x7FF0000000000000ull &&
           (Lo & 0x000FFFFFFFFFFFFFull) != 0;
  case DRAGON4_FORMAT_EXTENDED80:
    return (Hi & 0x7FFF) == 0x7FFF && (Lo & ~(1ull << 63)) != 0;
  case DRAGON4_FORMAT_BINARY128:
    return (Hi & 0x7FFF000000000000ull) == 0x7FFF000000000000ull &&
           ((Hi & 0x0000FFFFFFFFFFFFull) | Lo) != 0;
  }
  return false;
}

/// PrintOptions equivalent of the C option block (the same mapping
/// abi.cpp documents; re-derived here so the fuzzer is an independent
/// check of that table, not a copy of its output).
PrintOptions toPrintOptions(const dragon4_options &O) {
  PrintOptions Out;
  Out.Base = O.base == 0 ? 10u : O.base;
  const BoundaryMode Map[5] = {
      BoundaryMode::NearestEven, BoundaryMode::Conservative,
      BoundaryMode::BothInclusive, BoundaryMode::LowInclusive,
      BoundaryMode::HighInclusive};
  Out.Boundaries = Map[O.boundaries];
  Out.Ties = static_cast<TieBreak>(O.ties);
  Out.Marks = O.marks_as_zeros ? MarkStyle::Zeros : MarkStyle::Hash;
  Out.UppercaseDigits = O.uppercase_digits != 0;
  Out.ExponentMarker = O.exponent_marker == 0 ? 'e' : O.exponent_marker;
  return Out;
}

template <typename T>
void fuzzOne(const Reproducer &R, eng::Scratch &S) {
  T Value = FormatTraits<T>::fromEncoding(R.Lo, R.Hi);
  PrintOptions Options = toPrintOptions(R.Options);
  // The stream binds its options at construction, like a file handle
  // binds a mode; each case gets a stream carrying its own options.
  eng::RecordStream Stream(S, '\n', Options);
  const dragon4_format Format = R.Format;

  // Reference: the string surface.
  std::string Reference = toShortest(Value, Options);

  // engine::format must agree and report the same length.  The buffer
  // must cover the worst base: binary128 in base 2 runs to ~123 chars
  // (113 mantissa digits plus sign, point, marker, and exponent).
  char Buf[256];
  static_assert(sizeof(Buf) >= 2 * DRAGON4_MAX_CHARS10);
  size_t EngineLen = eng::format(Value, Buf, sizeof(Buf), Options, S);
  if (EngineLen > sizeof(Buf) ||
      std::string(Buf, EngineLen) != Reference) {
    reportFailure(R, "engine::format vs toShortest",
                  std::string(Buf, EngineLen < sizeof(Buf) ? EngineLen : 0),
                  Reference);
    return;
  }

  // The C ABI must agree...
  size_t AbiLen = 0;
  dragon4_status Status = dragon4_to_chars(Format, R.Lo, R.Hi, &R.Options,
                                           Buf, sizeof(Buf), &AbiLen);
  if (Status != DRAGON4_OK || std::string(Buf, AbiLen) != Reference) {
    reportFailure(R, "dragon4_to_chars vs toShortest",
                  Status == DRAGON4_OK ? std::string(Buf, AbiLen)
                                       : "<status " +
                                             std::to_string(Status) + ">",
                  Reference);
    return;
  }

  // ...and honor the boundary contract: exact size fits, one short
  // reports ERR_SIZE with the true required length.
  size_t Len = 0;
  if (dragon4_to_chars(Format, R.Lo, R.Hi, &R.Options, Buf, Reference.size(),
                       &Len) != DRAGON4_OK ||
      Len != Reference.size()) {
    reportFailure(R, "exact-capacity call failed", std::to_string(Len),
                  std::to_string(Reference.size()));
    return;
  }
  if (!Reference.empty()) {
    if (dragon4_to_chars(Format, R.Lo, R.Hi, &R.Options, Buf,
                         Reference.size() - 1, &Len) != DRAGON4_ERR_SIZE ||
        Len != Reference.size()) {
      reportFailure(R, "one-byte-short call broke the ERR_SIZE contract",
                    std::to_string(Len), std::to_string(Reference.size()));
      return;
    }
  }

  // The streaming surface.
  Stream.clear();
  Stream.push(Value);
  if (std::string(Stream.bytes()) != Reference) {
    reportFailure(R, "RecordStream vs toShortest",
                  std::string(Stream.bytes()), Reference);
    return;
  }

  // Round-trip through both parse surfaces -- only where the output is
  // inside the parser's grammar (base 10, default 'e' marker, not NaN)
  // AND the reader model guarantees closure under a nearest-even parse:
  // the inclusive boundary modes may legitimately emit an exact rounding
  // midpoint, which nearest-even reading sends to the even neighbour.
  bool Parseable = Options.Base == 10 && Options.ExponentMarker == 'e' &&
                   !isNaNBits(Format, R.Lo, R.Hi) &&
                   (Options.Boundaries == BoundaryMode::NearestEven ||
                    Options.Boundaries == BoundaryMode::Conservative);
  if (Parseable) {
    uint64_t Lo = 0, Hi = 0;
    size_t Consumed = 0;
    if (dragon4_from_chars(Format, Reference.data(), Reference.size(), &Lo,
                           &Hi, &Consumed) != DRAGON4_OK ||
        Consumed != Reference.size() || Lo != R.Lo || Hi != R.Hi) {
      reportFailure(R, "dragon4_from_chars round-trip",
                    "lo=" + std::to_string(Lo) + " hi=" + std::to_string(Hi),
                    Reference);
      return;
    }
    parse::ParseResult<T> Parsed = parse::parseFloat<T>(Reference);
    uint64_t PLo = 0, PHi = 0;
    FormatTraits<T>::encodingBits(Parsed.Value, PLo, PHi);
    if (!Parsed.ok() || PLo != R.Lo || PHi != R.Hi) {
      reportFailure(R, "parse::parseFloat round-trip",
                    "lo=" + std::to_string(PLo), Reference);
      return;
    }
  }

  // The fixed surface (decimal only: toFixed's contract).
  if (Options.Base == 10) {
    int Precision = static_cast<int>(R.CaseIndex % 19);
    std::string FixedReference = toFixed(Value, Precision, Options);
    std::vector<char> FixedBuf(FixedReference.size() + 8);
    size_t FixedEngineLen = eng::formatFixed(Value, Precision,
                                             FixedBuf.data(), FixedBuf.size(),
                                             Options, S);
    if (std::string(FixedBuf.data(), FixedEngineLen) != FixedReference) {
      reportFailure(R, "engine::formatFixed vs toFixed",
                    std::string(FixedBuf.data(),
                                FixedEngineLen < FixedBuf.size()
                                    ? FixedEngineLen
                                    : 0),
                    FixedReference);
      return;
    }
    size_t FixedAbiLen = 0;
    if (dragon4_to_chars_fixed(Format, R.Lo, R.Hi, Precision, &R.Options,
                               FixedBuf.data(), FixedBuf.size(),
                               &FixedAbiLen) != DRAGON4_OK ||
        std::string(FixedBuf.data(), FixedAbiLen) != FixedReference) {
      reportFailure(R, "dragon4_to_chars_fixed vs toFixed",
                    std::string(FixedBuf.data(), FixedAbiLen),
                    FixedReference);
      return;
    }
  }

  // printf's two surfaces against each other (hardware formats have a
  // glibc cross-check elsewhere; here the property is string==buffer).
  {
    const char *Specs[] = {"%g", "%.17e", "%+012.3f", "%-20G", "%#.5g"};
    const char *Spec = Specs[R.CaseIndex % 5];
    std::string PrintfString = formatPrintf(Value, Spec);
    std::vector<char> PrintfBuf(PrintfString.size() + 4);
    size_t PrintfLen = formatPrintf(Value, Spec, PrintfBuf.data(),
                                    PrintfBuf.size());
    if (PrintfLen != PrintfString.size() ||
        std::string(PrintfBuf.data(), PrintfLen) != PrintfString) {
      reportFailure(R, "formatPrintf string vs buffer",
                    std::string(PrintfBuf.data(),
                                PrintfLen < PrintfBuf.size() ? PrintfLen : 0),
                    PrintfString);
      return;
    }
    char Tiny[4];
    size_t TinyLen = formatPrintf(Value, Spec, Tiny, sizeof(Tiny));
    size_t Prefix = TinyLen < sizeof(Tiny) ? TinyLen : sizeof(Tiny);
    if (TinyLen != PrintfString.size() ||
        std::string(Tiny, Prefix) != PrintfString.substr(0, Prefix)) {
      reportFailure(R, "formatPrintf truncated-buffer prefix",
                    std::string(Tiny, Prefix), PrintfString);
      return;
    }
  }
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Cases = 10000;
  uint64_t Seed = 0xD4A60001;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--cases=", 8) == 0) {
      Cases = std::strtoull(Argv[I] + 8, nullptr, 10);
    } else if (std::strncmp(Argv[I], "--seed=", 7) == 0) {
      Seed = std::strtoull(Argv[I] + 7, nullptr, 0);
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_to_chars [--cases=N] [--seed=S]\n");
      return 2;
    }
  }

  SplitMix64 Rng(Seed);
  eng::Scratch S;

  for (uint64_t Case = 0; Case < Cases; ++Case) {
    Reproducer R;
    R.CaseIndex = Case;
    R.Format = static_cast<dragon4_format>(Rng.below(5));
    R.Lo = Rng.next();
    R.Hi = Rng.next();

    // Mostly defaults (the hot configuration), a sprinkling of every
    // option knob; bases limited to the renderer's 2..36 range.
    R.Options = dragon4_options DRAGON4_OPTIONS_INIT;
    if (Rng.below(4) == 0)
      R.Options.base =
          static_cast<uint8_t>(2 + Rng.below(35)); // 2..36.
    if (Rng.below(4) == 0)
      R.Options.boundaries = static_cast<uint8_t>(Rng.below(5));
    if (Rng.below(4) == 0)
      R.Options.ties = static_cast<uint8_t>(Rng.below(3));
    if (Rng.below(8) == 0)
      R.Options.marks_as_zeros = 1;
    if (Rng.below(8) == 0)
      R.Options.uppercase_digits = 1;
    if (Rng.below(8) == 0)
      R.Options.exponent_marker = Rng.below(2) ? '^' : 'p';

    // A marker that collides with a digit of the base would make the
    // output ambiguous; the renderer's contract excludes it, so the
    // fuzzer does too (uppercase included when uppercase_digits is set).
    unsigned Base = R.Options.base == 0 ? 10 : R.Options.base;
    char Marker =
        R.Options.exponent_marker == 0 ? 'e' : R.Options.exponent_marker;
    unsigned MarkerDigit = 36;
    if (Marker >= '0' && Marker <= '9')
      MarkerDigit = static_cast<unsigned>(Marker - '0');
    else if (Marker >= 'a' && Marker <= 'z')
      MarkerDigit = static_cast<unsigned>(Marker - 'a') + 10;
    if (MarkerDigit < Base)
      R.Options.exponent_marker = '^';

    switch (R.Format) {
    case DRAGON4_FORMAT_BINARY16:
      R.Lo &= 0xFFFF;
      R.Hi = 0;
      fuzzOne<Binary16>(R, S);
      break;
    case DRAGON4_FORMAT_BINARY32:
      R.Lo &= 0xFFFFFFFF;
      R.Hi = 0;
      fuzzOne<float>(R, S);
      break;
    case DRAGON4_FORMAT_BINARY64:
      R.Hi = 0;
      fuzzOne<double>(R, S);
      break;
    case DRAGON4_FORMAT_EXTENDED80: {
      // Only canonical x87 encodings (integer bit set for non-zero
      // exponents) represent values; non-canonical bit patterns are
      // pseudo-denormals the format's own equality cannot round-trip.
      uint16_t SignExp = static_cast<uint16_t>(R.Hi & 0xFFFF);
      if ((SignExp & 0x7FFF) != 0)
        R.Lo |= 1ull << 63;
      else
        R.Lo &= ~(1ull << 63);
      R.Hi = SignExp;
      fuzzOne<long double>(R, S);
      break;
    }
    case DRAGON4_FORMAT_BINARY128:
      fuzzOne<Binary128>(R, S);
      break;
    }
    if (Failures >= 10) {
      std::fprintf(stderr, "stopping after %d failures\n", Failures);
      break;
    }
  }

  if (Failures) {
    std::fprintf(stderr,
                 "fuzz_to_chars: %d failure(s) over %" PRIu64
                 " case(s), seed 0x%" PRIx64 "\n",
                 Failures, Cases, Seed);
    return 1;
  }
  std::printf("fuzz_to_chars: %" PRIu64 " case(s) clean, seed 0x%" PRIx64
              "\n",
              Cases, Seed);
  return 0;
}
