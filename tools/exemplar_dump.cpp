//===- tools/exemplar_dump.cpp - Exemplars -> replayable corpus ----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a dragon4.exemplars.v1 document -- the worst-latency inputs the
/// observability reservoir captured -- into verify-corpus records, closing
/// the loop from "this conversion was slow in production" to "this exact
/// bit pattern is a two-line regression test":
///
///   ./build/tools/exemplar_dump --host=127.0.0.1 --port=9464
///       --out=tail.corpus
///   ./build/tools/verify_exhaustive --replay=tail.corpus
///   ./build/bench/bench_engine_batch --corpus=tail.corpus
///
/// The source is either a live service (--host/--port, GET /exemplars.json)
/// or a previously saved document (--in=FILE).  Each captured record
/// becomes one corpus record: a '#' provenance comment (path, latency,
/// digit count, K, options) plus `<format> <hex> <oracles>`.  Only the
/// stable per-cell "worst" records are emitted by default; --include-recent
/// adds the rolling tail ring.  Records are deduplicated by encoding, and
/// extended80 captures are skipped with a note (the verify harness sweeps
/// the interchange formats only).
///
/// Exit: 0 when at least one record was written, 1 when the document was
/// valid but empty (pass --allow-empty to make that 0), 2 on usage/fetch/
/// parse errors.
///
//===----------------------------------------------------------------------===//

#include "support/json_mini.h"
#include "svc/http.h"
#include "verify/corpus.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using dragon4::support::JsonValue;
using dragon4::support::parseJson;
namespace verify = dragon4::verify;

namespace {

/// Parses "0x..." into the BitPattern halves (binary128 uses 32 digits).
bool parseBitsHex(const std::string &Text, uint64_t &Hi, uint64_t &Lo) {
  if (Text.size() < 3 || Text.compare(0, 2, "0x") != 0)
    return false;
  std::string Digits = Text.substr(2);
  if (Digits.size() > 32)
    return false;
  Hi = Lo = 0;
  std::string HiPart, LoPart = Digits;
  if (Digits.size() > 16) {
    HiPart = Digits.substr(0, Digits.size() - 16);
    LoPart = Digits.substr(Digits.size() - 16);
  }
  auto Hex = [](const std::string &S, uint64_t &Out) {
    if (S.empty())
      return true;
    char *End = nullptr;
    errno = 0;
    Out = std::strtoull(S.c_str(), &End, 16);
    return errno == 0 && End && *End == '\0';
  };
  return Hex(HiPart, Hi) && Hex(LoPart, Lo);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Host = "127.0.0.1";
  uint16_t Port = 9464;
  std::string InPath, OutPath;
  std::string OracleSpec = "roundtrip,engine";
  bool IncludeRecent = false, AllowEmpty = false;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--host=", 7) == 0) {
      Host = A + 7;
    } else if (std::strncmp(A, "--port=", 7) == 0) {
      Port = static_cast<uint16_t>(std::strtoul(A + 7, nullptr, 10));
    } else if (std::strncmp(A, "--in=", 5) == 0) {
      InPath = A + 5;
    } else if (std::strncmp(A, "--out=", 6) == 0) {
      OutPath = A + 6;
    } else if (std::strncmp(A, "--oracles=", 10) == 0) {
      OracleSpec = A + 10;
    } else if (std::strcmp(A, "--include-recent") == 0) {
      IncludeRecent = true;
    } else if (std::strcmp(A, "--allow-empty") == 0) {
      AllowEmpty = true;
    } else {
      std::fprintf(stderr,
                   "exemplar_dump: unknown flag %s\nusage: exemplar_dump "
                   "[--host=H --port=P | --in=FILE] [--out=FILE] "
                   "[--oracles=LIST] [--include-recent] [--allow-empty]\n",
                   A);
      return 2;
    }
  }

  std::optional<unsigned> Oracles = verify::parseOracles(OracleSpec);
  if (!Oracles || *Oracles == 0) {
    std::fprintf(stderr, "exemplar_dump: bad --oracles list '%s'\n",
                 OracleSpec.c_str());
    return 2;
  }

  std::string Body;
  if (!InPath.empty()) {
    std::ifstream In(InPath);
    if (!In) {
      std::fprintf(stderr, "exemplar_dump: cannot open %s\n", InPath.c_str());
      return 2;
    }
    std::ostringstream Ss;
    Ss << In.rdbuf();
    Body = Ss.str();
  } else {
    int Status =
        dragon4::svc::httpGet(Host, Port, "/exemplars.json", Body);
    if (Status != 200) {
      std::fprintf(stderr,
                   "exemplar_dump: GET http://%s:%u/exemplars.json failed "
                   "(%d)\n",
                   Host.c_str(), unsigned(Port), Status);
      return 2;
    }
  }

  auto Doc = parseJson(Body);
  if (!Doc || !Doc->isObject()) {
    std::fprintf(stderr, "exemplar_dump: malformed JSON document\n");
    return 2;
  }
  const JsonValue *Schema = Doc->find("schema");
  if (!Schema || !Schema->isString() ||
      Schema->string() != "dragon4.exemplars.v1") {
    std::fprintf(stderr, "exemplar_dump: not a dragon4.exemplars.v1 "
                         "document\n");
    return 2;
  }
  const JsonValue *Records = Doc->find("records");
  if (!Records || !Records->isArray()) {
    std::fprintf(stderr, "exemplar_dump: missing records array\n");
    return 2;
  }

  std::string Out;
  std::set<std::string> Seen;
  size_t Written = 0, SkippedFormat = 0;
  for (const JsonValue &R : Records->array()) {
    auto Str = [&](const char *Key) -> std::string {
      const JsonValue *V = R.find(Key);
      return V && V->isString() ? V->string() : std::string();
    };
    std::string Kind = Str("kind");
    if (Kind != "worst" && !(IncludeRecent && Kind == "recent"))
      continue;
    std::string FormatName = Str("format");
    std::string BitsText = Str("bits");
    std::optional<verify::FloatFormat> Format =
        verify::formatByName(FormatName);
    if (!Format) {
      // extended80 (and anything future) has no verify-harness sweep
      // domain; note it so the drop is visible, keep going.
      ++SkippedFormat;
      continue;
    }
    verify::CorpusRecord Rec;
    Rec.Bits.Format = *Format;
    if (!parseBitsHex(BitsText, Rec.Bits.Hi, Rec.Bits.Lo)) {
      std::fprintf(stderr, "exemplar_dump: bad bits field '%s' (skipped)\n",
                   BitsText.c_str());
      continue;
    }
    std::string Key = FormatName + ":" + verify::bitsToHex(Rec.Bits);
    if (!Seen.insert(Key).second)
      continue;
    Rec.Oracles = *Oracles & verify::supportedOracles(*Format);
    if (!Rec.Oracles)
      Rec.Oracles = verify::OracleRoundTrip;
    char Comment[192];
    std::snprintf(Comment, sizeof(Comment),
                  "exemplar: path=%s latency_ns=%.0f digits=%.0f k=%.0f "
                  "options=%s",
                  Str("path").c_str(), R.numberOr("latency_ns", 0),
                  R.numberOr("digits", 0), R.numberOr("k", 0),
                  Str("options").c_str());
    Rec.Comment = Comment;
    Out += verify::encodeRecord(Rec);
    Out += '\n';
    ++Written;
  }
  if (SkippedFormat)
    std::fprintf(stderr,
                 "exemplar_dump: skipped %zu record(s) with no verify "
                 "sweep domain (extended80)\n",
                 SkippedFormat);

  if (OutPath.empty()) {
    std::fputs(Out.c_str(), stdout);
  } else {
    std::ofstream OutFile(OutPath, std::ios::trunc);
    if (!OutFile) {
      std::fprintf(stderr, "exemplar_dump: cannot write %s\n",
                   OutPath.c_str());
      return 2;
    }
    OutFile << Out;
  }
  std::fprintf(stderr, "exemplar_dump: wrote %zu corpus record(s)\n",
               Written);
  if (Written == 0 && !AllowEmpty)
    return 1;
  return 0;
}
