#!/bin/sh
# Exemplar pipeline round-trip: prove the tail-latency captures are
# *replayable identities*, end to end --
#
#   soak --serve  ->  GET /exemplars.json  ->  exemplar_dump (corpus)
#     ->  verify_exhaustive --replay (zero mismatches)
#     ->  bench_engine_batch --corpus= (the workload runs)
#
# i.e. a bit pattern the observability layer flagged as a latency outlier
# in a live service becomes, with no human in the loop, a corpus record
# that reproduces and verifies.  Only meaningful with DRAGON4_OBS=ON (the
# reservoir is compiled out otherwise); the ctest registration gates on
# that.
#
#   tools/ci_exemplar_roundtrip.sh <build-dir>
#
# Exits non-zero with a FAIL line naming the first broken link.
set -u

BUILD_DIR=${1:?usage: ci_exemplar_roundtrip.sh <build-dir>}
SOAK="$BUILD_DIR/tools/soak"
DUMP="$BUILD_DIR/tools/exemplar_dump"
VERIFY="$BUILD_DIR/tools/verify_exhaustive"
BENCH="$BUILD_DIR/bench/bench_engine_batch"
WORK=$(mktemp -d)
PORT_FILE="$WORK/port"
SERVE_LOG="$WORK/serve.log"
SERVE_PID=""

fail() {
    echo "ci_exemplar_roundtrip: FAIL: $1" >&2
    [ -f "$SERVE_LOG" ] && sed 's/^/  serve: /' "$SERVE_LOG" >&2
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null
    rm -rf "$WORK"
    exit 1
}

# -- 1. A live service with exemplar capture on (soak --serve samples
# every conversion by default).
"$SOAK" --serve=0 --serve-duration=60 --serve-tick-ms=200 \
    --port-file="$PORT_FILE" >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || fail "service exited before binding"
    sleep 0.1
done
[ -s "$PORT_FILE" ] || fail "port file never appeared"
PORT=$(cat "$PORT_FILE")
echo "ci_exemplar_roundtrip: service up on port $PORT"

# -- 2. Wait for the published reservoir to hold at least one capture
# (the publish interval merges worker reservoirs every iteration).
GOT=""
for _ in $(seq 1 150); do
    if "$DUMP" --host=127.0.0.1 --port="$PORT" --include-recent \
        --out="$WORK/tail.corpus" 2>"$WORK/dump.log"; then
        GOT=yes
        break
    fi
    sleep 0.2
done
[ -n "$GOT" ] || { sed 's/^/  dump: /' "$WORK/dump.log" >&2; \
    fail "no exemplar record appeared within 30s"; }
RECORDS=$(grep -c '^binary' "$WORK/tail.corpus" || true)
echo "ci_exemplar_roundtrip: dumped $RECORDS corpus record(s)"
[ "$RECORDS" -gt 0 ] || fail "corpus file holds no record lines"

# The service has served its purpose; stop it before the replay so a
# hang there cannot mask a shutdown bug.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "service exited non-zero on SIGTERM"
SERVE_PID=""

# -- 3. Replay: every captured worst case must verify clean (a capture
# is a latency outlier, never a correctness exception).
"$VERIFY" --replay "$WORK/tail.corpus" >"$WORK/replay.log" 2>&1 \
    || { sed 's/^/  replay: /' "$WORK/replay.log" >&2; \
         fail "replay found mismatches"; }
grep -q ", 0 failing" "$WORK/replay.log" \
    || fail "replay summary did not report zero failures"
echo "ci_exemplar_roundtrip: replay clean"

# -- 4. The same corpus drives the batch bench as a workload.
"$BENCH" "$WORK/bench.json" 20000 --corpus="$WORK/tail.corpus" \
    >"$WORK/bench.log" 2>&1 \
    || { sed 's/^/  bench: /' "$WORK/bench.log" >&2; \
         fail "bench_engine_batch --corpus failed"; }
grep -q '"corpus' "$WORK/bench.json" \
    || fail "bench report missing corpus metrics"
echo "ci_exemplar_roundtrip: OK (capture -> corpus -> replay -> bench)"
rm -rf "$WORK"
exit 0
