//===- tools/prof_report.cpp - Phase cost-attribution report ------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the paper's Schryer double workload through the engine with
/// 1-in-1 profiling -- each value once under the default reader model
/// (served by the Ryu front line) and once under the asymmetric
/// LowInclusive model (forcing the exact pipeline) so every ladder rung
/// is attributed -- and prints the per-phase cost-attribution report (the
/// machine-generated analogue of the paper's Tables 2-3) plus, on
/// request, folded stacks for flamegraph tooling and a machine-checkable
/// coverage gate:
///
///   prof_report [--quick] [--report=FILE] [--folded=FILE]
///               [--stats-json=FILE] [--check-coverage=X]
///
///   --quick            1/16 subsample of the workload (CI smoke)
///   --report=FILE      write the cost table to FILE instead of stdout
///   --folded=FILE      write "frame;frame weight" folded-stack lines
///   --stats-json=FILE  write the full dragon4.stats.v1 document (the
///                      input of tools/bench_check.py --diff)
///   --check-coverage=X exit 1 unless attribution coverage >= X (0..1);
///                      the repo's acceptance gate runs with X = 0.95
///
/// With observability compiled out (DRAGON4_OBS=OFF) nothing can be
/// profiled; the tool says so and exits 0 (the coverage gate is only
/// registered for observability-enabled builds).
///
//===----------------------------------------------------------------------===//

#include "engine/engine.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "prof/report.h"
#include "testgen/schryer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace dragon4;

namespace {

[[maybe_unused]] bool writeText(const std::string &Path,
                               const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "prof_report: cannot write %s\n", Path.c_str());
    return false;
  }
  std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  std::string ReportPath, FoldedPath, StatsJsonPath;
  double CheckCoverage = -1.0;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--quick") == 0) {
      Quick = true;
    } else if (std::strncmp(A, "--report=", 9) == 0) {
      ReportPath = A + 9;
    } else if (std::strncmp(A, "--folded=", 9) == 0) {
      FoldedPath = A + 9;
    } else if (std::strncmp(A, "--stats-json=", 13) == 0) {
      StatsJsonPath = A + 13;
    } else if (std::strncmp(A, "--check-coverage=", 17) == 0) {
      CheckCoverage = std::strtod(A + 17, nullptr);
    } else {
      std::fprintf(stderr,
                   "prof_report: unknown flag %s\nusage: prof_report "
                   "[--quick] [--report=FILE] [--folded=FILE] "
                   "[--stats-json=FILE] [--check-coverage=X]\n",
                   A);
      return 2;
    }
  }

#if !DRAGON4_OBS_ENABLED
  std::printf("prof_report: observability compiled out (DRAGON4_OBS=OFF); "
              "nothing to profile\n");
  (void)CheckCoverage;
  (void)Quick;
  return 0;
#else
  obs::config().SampleEvery = 1;
  obs::config().Trace = false;

  std::vector<double> Values = schryerDoubles();
  const size_t Step = Quick ? 16 : 1;
  engine::Scratch Scratch;
  char Buf[64];
  size_t Converted = 0;
  // Each value runs twice: once under the default reader model, which the
  // Ryu front line serves, and once under the asymmetric LowInclusive
  // model, which no fast rung accepts -- so the report attributes every
  // rung of the ladder, from ryu_path down to the BigInt digit loop.
  PrintOptions ExactOnly;
  ExactOnly.Boundaries = BoundaryMode::LowInclusive;
  for (size_t I = 0; I < Values.size(); I += Step) {
    engine::format(Values[I], Buf, sizeof(Buf), PrintOptions{}, Scratch);
    engine::format(Values[I], Buf, sizeof(Buf), ExactOnly, Scratch);
    Converted += 2;
  }

  const obs::Registry &Reg = Scratch.obsState().Reg;
  std::string Report = prof::renderCostReport(Reg);
  std::printf("prof_report: %zu Schryer doubles profiled\n", Converted);
  if (ReportPath.empty())
    std::fputs(Report.c_str(), stdout);
  else if (!writeText(ReportPath, Report))
    return 2;

  if (!FoldedPath.empty() &&
      !writeText(FoldedPath, prof::renderFoldedStacks(Reg)))
    return 2;
  if (!StatsJsonPath.empty() &&
      !writeText(StatsJsonPath,
                 obs::renderStatsJson(
                     obs::makeSnapshot(engine::EngineStats{}, &Reg))))
    return 2;

  if (CheckCoverage >= 0.0) {
    double Coverage = prof::attributionCoverage(Reg);
    std::printf("prof_report: attribution coverage %.4f (gate %.2f)\n",
                Coverage, CheckCoverage);
    if (Coverage < CheckCoverage) {
      std::fprintf(stderr,
                   "prof_report: FAIL: coverage %.4f below the %.2f "
                   "gate -- conversion time is escaping the phase "
                   "spans\n",
                   Coverage, CheckCoverage);
      return 1;
    }
  }
  return 0;
#endif
}
