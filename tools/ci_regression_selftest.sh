#!/bin/sh
# Proves the continuous-benchmark pipeline end to end: a synthetic,
# deterministic slowdown of one algorithm phase (an N-iteration spin per
# emitted digit, injected through testhooks::DigitLoopSyntheticSpinPerDigit
# via bench_engine_batch --spin-digit-loop) MUST trip bench_check.py's
# --history trend gate.  If the planted regression sails through, the gate
# is decorative and this script exits nonzero.
#
#   tools/ci_regression_selftest.sh [build-dir] [count] [spin]
#
# Three clean quick runs seed a temporary history (the trend gate wants a
# median to compare against), a fourth run carries the spin, and
# bench_check.py is asserted to pass on the clean history and fail once
# the spun run lands.
set -eu

BUILD="${1:-build}"
COUNT="${2:-10000}"
SPIN="${3:-150}"
BENCH="$BUILD/bench/bench_engine_batch"
CHECK="$(dirname "$0")/bench_check.py"
TMP="${TMPDIR:-/tmp}/ci_regression_selftest.$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT

echo "ci_regression_selftest: seeding 3 clean runs (count $COUNT)"
for I in 1 2 3; do
  DRAGON4_BENCH_QUICK=1 "$BENCH" "$TMP/run$I.json" "$COUNT" \
      --bench-history="$TMP/history.jsonl" >/dev/null
done

echo "ci_regression_selftest: clean history must pass the gate"
if ! python3 "$CHECK" --history="$TMP/history.jsonl" \
    --bench=bench_engine_batch; then
  echo "ci_regression_selftest: FAIL: gate rejected a clean history" >&2
  exit 1
fi

echo "ci_regression_selftest: injecting --spin-digit-loop=$SPIN"
DRAGON4_BENCH_QUICK=1 "$BENCH" "$TMP/spun.json" "$COUNT" \
    --spin-digit-loop="$SPIN" \
    --bench-history="$TMP/history.jsonl" >/dev/null

echo "ci_regression_selftest: spun history must FAIL the gate"
if python3 "$CHECK" --history="$TMP/history.jsonl" \
    --bench=bench_engine_batch; then
  echo "ci_regression_selftest: FAIL: the planted digit-loop regression" \
       "was not detected" >&2
  exit 1
fi

echo "ci_regression_selftest: OK (planted regression detected)"
