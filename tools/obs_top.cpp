//===- tools/obs_top.cpp - Live telemetry dashboard ----------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A top(1)-style terminal dashboard over a running telemetry service
/// (tools/soak --serve, or anything else embedding svc::TelemetryService).
/// It polls /stats.json on an interval, derives scrape-to-scrape rates
/// client-side, and redraws in place with plain ANSI (clear + home) -- no
/// curses, no dependencies beyond the repo's own HTTP client and JSON
/// reader.
///
///   ./build/tools/obs_top [--host=127.0.0.1] [--port=9464]
///                         [--interval-ms=1000] [--once] [--no-ansi]
///
/// --once fetches and prints a single frame without clearing the screen
/// (what the docs transcript and the smoke test use); --no-ansi keeps the
/// loop but prints frames sequentially, for dumb terminals and typescript
/// capture.  Exit: 0 on a clean Ctrl-C, 2 when the first fetch fails
/// (nothing is listening).  A scrape that fails *after* the first success
/// (connection refused mid-refresh, truncated body) does not exit: the
/// last good frame is kept on screen under a STALE banner and polling
/// continues until the service comes back or the user interrupts.
///
/// When the service exposes /exemplars.json (obs-enabled builds), a tail
/// pane lists the worst captured inputs per {format, path} with their raw
/// bit patterns -- the replayable identities of the latency outliers.
///
//===----------------------------------------------------------------------===//

#include "support/json_mini.h"
#include "svc/http.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using dragon4::support::JsonValue;
using dragon4::support::parseJson;

namespace {

volatile std::sig_atomic_t Interrupted = 0;
void onInterrupt(int) { Interrupted = 1; }

/// The counters one frame cares about, pulled out of the JSON document so
/// the delta math works on a plain struct.
struct Frame {
  bool Valid = false;
  double Conversions = 0;
  double Specials = 0;
  double RyuHits = 0;
  double FastPathHits = 0;
  double SlowRuns = 0;
  double FastPathFails = 0;
  double SlowPathDirect = 0;
  double IneligibleFormat = 0;
  double BatchValues = 0;
  double BatchNanos = 0;
  double ParseHits = 0;
  double ParseFallbacks = 0;
  double ParseRejected = 0;
  double ArenaHighWater = 0;
  double WindowResets = 0;
  double WindowSamples = 0;
  /// window_* derived values straight from the service (already rated).
  double WindowConvPerSec = -1;
  double WindowMeanNs = -1;
  /// Latency percentiles per labeled cell: (format, path, p50, p99).
  struct LatencyRow {
    std::string Format, Path;
    double P50 = 0, P95 = 0, P99 = 0;
    double Count = 0;
  };
  std::vector<LatencyRow> Latency;
  /// SLO rows: (name, breached, observed, threshold).
  struct SloRow {
    std::string Name;
    bool Breached = false;
    double Observed = 0, Threshold = 0;
  };
  std::vector<SloRow> Slos;
  /// Worst captured inputs from /exemplars.json (tail pane), worst first.
  struct ExemplarRow {
    std::string Format, Path, Bits, Options;
    double LatencyNs = 0, Digits = 0, K = 0;
  };
  std::vector<ExemplarRow> Exemplars;
};

double counterOf(const JsonValue &Doc, const char *Section, const char *Key) {
  const JsonValue *S = Doc.find(Section);
  return S ? S->numberOr(Key, 0) : 0;
}

Frame decode(const std::string &Body) {
  Frame F;
  auto Doc = parseJson(Body);
  if (!Doc || !Doc->isObject())
    return F;
  F.Valid = true;
  F.Conversions = counterOf(*Doc, "counters", "dragon4_conversions_total");
  F.Specials = counterOf(*Doc, "counters", "dragon4_specials_total");
  F.RyuHits = counterOf(*Doc, "counters", "dragon4_ryu_hits_total");
  F.FastPathHits = counterOf(*Doc, "counters", "dragon4_fastpath_hits_total");
  F.FastPathFails =
      counterOf(*Doc, "counters", "dragon4_fastpath_fails_total");
  F.SlowPathDirect =
      counterOf(*Doc, "counters", "dragon4_slowpath_direct_total");
  F.IneligibleFormat =
      counterOf(*Doc, "counters", "dragon4_fastpath_ineligible_format_total");
  F.SlowRuns = F.FastPathFails + F.SlowPathDirect;
  F.BatchValues = counterOf(*Doc, "counters", "dragon4_batch_values_total");
  F.BatchNanos = counterOf(*Doc, "counters", "dragon4_batch_nanos_total");
  F.ParseHits = counterOf(*Doc, "counters", "dragon4_fastparse_hits_total");
  F.ParseFallbacks =
      counterOf(*Doc, "counters", "dragon4_fastparse_fallback_exact_total");
  F.ParseRejected =
      counterOf(*Doc, "counters", "dragon4_fastparse_rejected_total");
  F.ArenaHighWater =
      counterOf(*Doc, "gauges", "dragon4_arena_high_water_bytes");
  F.WindowResets = counterOf(*Doc, "gauges", "dragon4_window_resets");
  F.WindowSamples = counterOf(*Doc, "gauges", "dragon4_window_samples");
  if (const JsonValue *D = Doc->find("derived")) {
    F.WindowConvPerSec = D->numberOr("window_conversions_per_second", -1);
    F.WindowMeanNs = D->numberOr("window_batch_mean_ns_per_value", -1);
    // SLO rows live in gauges + derived under slo="NAME" series names.
    if (const JsonValue *G = Doc->find("gauges")) {
      for (const auto &[Key, Value] : G->object()) {
        constexpr std::string_view Prefix = "dragon4_slo_breached{slo=\"";
        if (Key.size() <= Prefix.size() || Key.compare(0, Prefix.size(),
                                                       Prefix) != 0)
          continue;
        Frame::SloRow Row;
        Row.Name = Key.substr(Prefix.size(),
                              Key.size() - Prefix.size() - 2); // strip "}
        Row.Breached = Value.isNumber() && Value.number() != 0;
        std::string Tail = "{slo=\"" + Row.Name + "\"}";
        Row.Observed = D->numberOr("slo_observed" + Tail, 0);
        Row.Threshold = D->numberOr("slo_threshold" + Tail, 0);
        F.Slos.push_back(std::move(Row));
      }
    }
  }
  if (const JsonValue *Hists = Doc->find("histograms");
      Hists && Hists->isArray()) {
    for (const JsonValue &H : Hists->array()) {
      const JsonValue *Name = H.find("name");
      if (!Name || !Name->isString() ||
          Name->string() != "dragon4_latency_ns")
        continue;
      const JsonValue *Labels = H.find("labels");
      if (!Labels || !Labels->isObject())
        continue;
      Frame::LatencyRow Row;
      if (const JsonValue *V = Labels->find("format"); V && V->isString())
        Row.Format = V->string();
      if (const JsonValue *V = Labels->find("path"); V && V->isString())
        Row.Path = V->string();
      Row.P50 = H.numberOr("p50", 0);
      Row.P95 = H.numberOr("p95", 0);
      Row.P99 = H.numberOr("p99", 0);
      Row.Count = H.numberOr("count", 0);
      F.Latency.push_back(std::move(Row));
    }
  }
  std::sort(F.Latency.begin(), F.Latency.end(),
            [](const Frame::LatencyRow &A, const Frame::LatencyRow &B) {
              return A.Format != B.Format ? A.Format < B.Format
                                          : A.Path < B.Path;
            });
  return F;
}

/// Best-effort decode of /exemplars.json: the "worst" records (the stable
/// per-cell maxima), sorted by latency descending, capped for the pane.
std::vector<Frame::ExemplarRow> decodeExemplars(const std::string &Body) {
  std::vector<Frame::ExemplarRow> Out;
  auto Doc = parseJson(Body);
  if (!Doc || !Doc->isObject())
    return Out;
  const JsonValue *Records = Doc->find("records");
  if (!Records || !Records->isArray())
    return Out;
  for (const JsonValue &R : Records->array()) {
    const JsonValue *Kind = R.find("kind");
    if (!Kind || !Kind->isString() || Kind->string() != "worst")
      continue;
    Frame::ExemplarRow Row;
    if (const JsonValue *V = R.find("format"); V && V->isString())
      Row.Format = V->string();
    if (const JsonValue *V = R.find("path"); V && V->isString())
      Row.Path = V->string();
    if (const JsonValue *V = R.find("bits"); V && V->isString())
      Row.Bits = V->string();
    if (const JsonValue *V = R.find("options"); V && V->isString())
      Row.Options = V->string();
    Row.LatencyNs = R.numberOr("latency_ns", 0);
    Row.Digits = R.numberOr("digits", 0);
    Row.K = R.numberOr("k", 0);
    Out.push_back(std::move(Row));
  }
  std::sort(Out.begin(), Out.end(),
            [](const Frame::ExemplarRow &A, const Frame::ExemplarRow &B) {
              return A.LatencyNs > B.LatencyNs;
            });
  if (Out.size() > 8)
    Out.resize(8);
  return Out;
}

/// Renders 12345678 as "12.3M" so the columns stay narrow.
std::string human(double V) {
  char Buf[32];
  if (V < 0)
    return "-";
  if (V >= 1e9)
    std::snprintf(Buf, sizeof(Buf), "%.2fG", V / 1e9);
  else if (V >= 1e6)
    std::snprintf(Buf, sizeof(Buf), "%.2fM", V / 1e6);
  else if (V >= 1e4)
    std::snprintf(Buf, sizeof(Buf), "%.1fk", V / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%.0f", V);
  return Buf;
}

std::string pct(double Part, double Whole) {
  char Buf[16];
  if (Whole <= 0)
    return "-";
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", 100.0 * Part / Whole);
  return Buf;
}

/// \p StaleSeconds > 0 renders the stale-data banner: the frame shown is
/// the last good one, not a fresh scrape.
void render(const Frame &F, const Frame &Prev, double DtSeconds,
            const std::string &Where, double StaleSeconds = 0,
            const std::string &StaleWhy = {}) {
  // Scrape-to-scrape rates (client side, independent of the service's own
  // window so a stalled ticker is visible as diverging numbers).
  auto RateOf = [&](double Now, double Before) {
    return DtSeconds > 0 && Prev.Valid && Now >= Before
               ? (Now - Before) / DtSeconds
               : -1.0;
  };
  double ConvRate = RateOf(F.Conversions, Prev.Conversions);

  std::printf("dragon4 obs_top -- %s\n", Where.c_str());
  if (StaleSeconds > 0)
    std::printf("** STALE DATA -- last scrape failed (%s); showing frame "
                "from %.0fs ago, retrying **\n",
                StaleWhy.c_str(), StaleSeconds);
  std::printf("conversions %-9s (%s/s scrape, %s/s window)   specials %s\n",
              human(F.Conversions).c_str(), human(ConvRate).c_str(),
              human(F.WindowConvPerSec).c_str(), human(F.Specials).c_str());
  std::printf("paths: ryu %s (%s)  grisu %s (%s)  dragon4 %s (%s)  "
              "no-table %s\n",
              human(F.RyuHits).c_str(), pct(F.RyuHits, F.Conversions).c_str(),
              human(F.FastPathHits).c_str(),
              pct(F.FastPathHits, F.Conversions).c_str(),
              human(F.SlowRuns).c_str(),
              pct(F.SlowRuns, F.Conversions).c_str(),
              human(F.IneligibleFormat).c_str());
  double MeanNs = F.BatchValues > 0 ? F.BatchNanos / F.BatchValues : -1;
  std::printf("batch: %s values, %.0f ns/value cumulative, %s ns/value "
              "window\n",
              human(F.BatchValues).c_str(), MeanNs,
              F.WindowMeanNs >= 0 ? human(F.WindowMeanNs).c_str() : "-");
  std::printf("parse: %s fast, %s exact-fallback, %s rejected\n",
              human(F.ParseHits).c_str(), human(F.ParseFallbacks).c_str(),
              human(F.ParseRejected).c_str());
  std::printf("arena high water %s bytes   window: %s ticks, %s resets\n",
              human(F.ArenaHighWater).c_str(), human(F.WindowSamples).c_str(),
              human(F.WindowResets).c_str());
  if (!F.Latency.empty()) {
    std::printf("\n%-10s %-8s %10s %10s %10s %10s\n", "format", "path",
                "samples", "p50 ns", "p95 ns", "p99 ns");
    for (const Frame::LatencyRow &Row : F.Latency)
      std::printf("%-10s %-8s %10s %10.0f %10.0f %10.0f\n",
                  Row.Format.c_str(), Row.Path.c_str(),
                  human(Row.Count).c_str(), Row.P50, Row.P95, Row.P99);
  }
  if (!F.Slos.empty()) {
    std::printf("\nslo status:\n");
    for (const Frame::SloRow &Row : F.Slos)
      std::printf("  %-16s %s  observed %.0f ns / max %.0f ns\n",
                  Row.Name.c_str(), Row.Breached ? "BREACHED" : "ok",
                  Row.Observed, Row.Threshold);
  }
  if (!F.Exemplars.empty()) {
    std::printf("\nworst captured inputs (tail exemplars):\n");
    std::printf("%-10s %-8s %-34s %8s %7s %6s  %s\n", "format", "path",
                "bits", "lat ns", "digits", "k", "options");
    for (const Frame::ExemplarRow &Row : F.Exemplars)
      std::printf("%-10s %-8s %-34s %8s %7.0f %6.0f  %s\n",
                  Row.Format.c_str(), Row.Path.c_str(), Row.Bits.c_str(),
                  human(Row.LatencyNs).c_str(), Row.Digits, Row.K,
                  Row.Options.c_str());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Host = "127.0.0.1";
  uint16_t Port = 9464;
  uint64_t IntervalMs = 1000;
  bool Once = false, Ansi = true;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--host=", 7) == 0) {
      Host = A + 7;
    } else if (std::strncmp(A, "--port=", 7) == 0) {
      Port = static_cast<uint16_t>(std::strtoul(A + 7, nullptr, 10));
    } else if (std::strncmp(A, "--interval-ms=", 14) == 0) {
      IntervalMs = std::strtoull(A + 14, nullptr, 10);
      if (IntervalMs == 0)
        IntervalMs = 100;
    } else if (std::strcmp(A, "--once") == 0) {
      Once = true;
    } else if (std::strcmp(A, "--no-ansi") == 0) {
      Ansi = false;
    } else {
      std::fprintf(stderr,
                   "obs_top: unknown flag %s\nusage: obs_top "
                   "[--host=H] [--port=P] [--interval-ms=N] [--once] "
                   "[--no-ansi]\n",
                   A);
      return 2;
    }
  }

  std::signal(SIGINT, onInterrupt);
  std::signal(SIGTERM, onInterrupt);
  std::string Where = Host + ":" + std::to_string(Port);

  Frame Prev;
  Frame LastGood;
  auto PrevTime = std::chrono::steady_clock::now();
  auto LastGoodTime = PrevTime;
  bool EverFetched = false;
  while (!Interrupted) {
    std::string Body;
    std::string FailWhy;
    int Status = dragon4::svc::httpGet(Host, Port, "/stats.json", Body);
    Frame F;
    if (Status != 200) {
      FailWhy = "GET /stats.json returned " + std::to_string(Status);
    } else {
      F = decode(Body);
      if (!F.Valid)
        FailWhy = "malformed /stats.json payload";
    }
    auto Now = std::chrono::steady_clock::now();
    if (!F.Valid) {
      // Mid-refresh failure: the service restarting, a truncated body, a
      // connection refused.  Keep the last good frame on screen under a
      // stale banner and keep polling; only a cold start with nothing
      // listening is fatal.
      if (!EverFetched) {
        std::fprintf(stderr, "obs_top: http://%s unreachable (%s)\n",
                     Where.c_str(), FailWhy.c_str());
        return 2;
      }
      double StaleFor =
          std::chrono::duration<double>(Now - LastGoodTime).count();
      if (Ansi && !Once)
        std::printf("\x1b[2J\x1b[H");
      render(LastGood, Prev, 0, Where, StaleFor, FailWhy);
      std::fflush(stdout);
      for (uint64_t Slept = 0; Slept < IntervalMs && !Interrupted;
           Slept += 50)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    // Exemplars are best-effort decoration: absent on obs-off builds and
    // older services, and never worth failing the refresh over.
    std::string ExBody;
    if (dragon4::svc::httpGet(Host, Port, "/exemplars.json", ExBody) == 200)
      F.Exemplars = decodeExemplars(ExBody);
    double Dt = std::chrono::duration<double>(Now - PrevTime).count();
    if (Ansi && !Once)
      std::printf("\x1b[2J\x1b[H"); // Clear + home: redraw in place.
    render(F, Prev, Dt, Where);
    std::fflush(stdout);
    if (Once)
      return 0;
    EverFetched = true;
    Prev = F;
    LastGood = F;
    PrevTime = Now;
    LastGoodTime = Now;
    for (uint64_t Slept = 0; Slept < IntervalMs && !Interrupted; Slept += 50)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return 0;
}
