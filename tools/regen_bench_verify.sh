#!/bin/sh
# Regenerates the committed BENCH_verify.json: the four standard
# verification sweeps (the same parameters every time, so runs are
# comparable), each emitting a dragon4.bench.v1 document, merged into a
# single v1 document whose metrics bench_check.py gates like any other
# bench result:
#
#   tools/regen_bench_verify.sh [build-dir] [out.json]
#   python3 tools/bench_check.py new_verify.json BENCH_verify.json
#
# All sweeps run single-threaded: chunk boundaries are fixed by the sweep
# parameters, so results are identical for any --threads value, and one
# core keeps the throughput numbers comparable across hosts.  The
# exact-rational reference oracle dominates cost (binary128 boundary
# samples sit at 2^+/-16000 scale).  A full 2^32 binary32 sweep is ~4
# days single-core; CI shards it via --begin/--end/--stride in the
# nightly workflow only, which is why the standard sweep is a slice.
set -eu

BUILD="${1:-build}"
OUT="${2:-BENCH_verify.json}"
VERIFY="$BUILD/tools/verify_exhaustive"
TMP="${TMPDIR:-/tmp}/bench_verify.$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT

echo "regen_bench_verify: four standard sweeps, single-threaded" >&2
"$VERIFY" --format binary16 --all --threads 1 \
    --json "$TMP/b16.json"
"$VERIFY" --format binary32 --all --begin 0x3f800000 --end 0x3f810000 \
    --threads 1 --json "$TMP/b32.json"
"$VERIFY" --format binary64 --samples 20000 --seed 1 --threads 1 \
    --json "$TMP/b64.json"
"$VERIFY" --format binary128 --samples 100 --seed 1 --threads 1 \
    --json "$TMP/b128.json"

python3 - "$OUT" "$TMP"/b16.json "$TMP"/b32.json "$TMP"/b64.json \
    "$TMP"/b128.json <<'EOF'
import json
import sys

out_path = sys.argv[1]
merged = {
    "schema": "dragon4.bench.v1",
    "bench": "verify_sweeps",
    "context": {"threads": 1, "sweeps": 0},
    "metrics": {},
    "derived": {},
}
mismatches = 0
for path in sys.argv[2:]:
    with open(path) as f:
        doc = json.load(f)
    assert doc["schema"] == "dragon4.bench.v1", path
    ctx = doc["context"]
    mismatches += ctx["mismatches"]
    merged["context"]["sweeps"] += 1
    merged["metrics"].update(doc["metrics"])
    tag = f'{ctx["format"]}_{ctx["mode"]}'
    merged["derived"][f"{tag}_values_per_second"] = (
        doc["derived"]["values_per_second"])
    merged["context"][f"{tag}_oracles"] = ctx["oracles"]
    merged["context"][f"{tag}_values_checked"] = ctx["values_checked"]
if mismatches:
    sys.exit(f"regen_bench_verify: {mismatches} oracle mismatch(es) -- "
             "refusing to write a baseline from a failing sweep")
merged["derived"]["mismatches_total"] = 0
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"regen_bench_verify: wrote {out_path} with "
      f"{len(merged['metrics'])} metric(s)")
EOF
