//===- tools/soak.cpp - Large-scale property soak ------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic large-scale property checker, for soak runs beyond what
/// belongs in ctest: millions of values through the core invariants --
/// round-trip identity, minimality, fast-path agreement, fixed/free
/// consistency -- with a seed and a count on the command line.  Exit code
/// 0 means every property held on every value.
///
///   ./build/tools/soak [count=1000000] [seed=1]
///
//===----------------------------------------------------------------------===//

#include "dragon4.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace dragon4;

namespace {

struct Failure {
  size_t Count = 0;
  void note(const char *Property, double Value, const std::string &Detail) {
    ++Count;
    if (Count <= 20)
      std::printf("FAIL %s: %.17g (%s)\n", Property, Value, Detail.c_str());
  }
};

/// One value through every cheap invariant.
void checkValue(double V, Failure &Failures, engine::Scratch &Scratch) {
  // 1. Round trip of the shortest form.
  DigitString Short = shortestDigits(V);
  std::string Text = renderScientific(Short, false);
  auto Back = readFloat<double>(Text);
  if (!Back || *Back != V)
    Failures.note("round-trip", V, Text);

  // 2. Grisu fast path agreement (conservative boundaries).
  FreeFormatOptions Conservative;
  Conservative.Boundaries = BoundaryMode::Conservative;
  DigitString Exact = shortestDigits(V, Conservative);
  if (!(shortestDigitsFast(V) == Exact))
    Failures.note("grisu", V, Text);

  // 3. Gay fixed fast path agreement at a pseudo-random digit count.
  int Digits = 1 + static_cast<int>((Short.Digits.size() * 7) % 17);
  if (auto Fast = fastFixedDigits(V, Digits)) {
    if (!(*Fast == straightforwardDigits(V, Digits)))
      Failures.note("gay-fast", V, Text);
  }

  // 4. Free digits prefix a wide fixed conversion (same reader model).
  FixedFormatOptions FixedOptions;
  FixedOptions.Boundaries = BoundaryMode::NearestEven;
  DigitString Wide = fixedDigitsRelative(V, 25, FixedOptions);
  bool PrefixOk =
      Wide.K == Short.K && Wide.Digits.size() >= Short.Digits.size();
  for (size_t I = 0; PrefixOk && I < Short.Digits.size(); ++I)
    PrefixOk = Wide.Digits[I] == Short.Digits[I];
  if (!PrefixOk)
    Failures.note("fixed-prefix", V, Text);

  // 5. printf-compat agreement with the C library on one spec.
  char Spec[16];
  std::snprintf(Spec, sizeof(Spec), "%%.%dg", Digits);
  char Libc[512];
  std::snprintf(Libc, sizeof(Libc), Spec, V);
  if (formatPrintf(V, Spec) != Libc)
    Failures.note("printf-compat", V, Spec);

  // 6. Engine buffer API agreement with toShortest (and with itself: the
  // scratch is reused across every value of the soak).
  char Buf[64];
  size_t Len = engine::format(V, Buf, sizeof(Buf), PrintOptions{}, Scratch);
  if (Len > sizeof(Buf) ||
      std::string_view(Buf, Len) != std::string_view(toShortest(V)))
    Failures.note("engine", V, std::string(Buf, std::min(Len, sizeof(Buf))));
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Count = Argc > 1 ? std::strtoull(Argv[1], nullptr, 10) : 1000000;
  uint64_t Seed = Argc > 2 ? std::strtoull(Argv[2], nullptr, 10) : 1;

  std::printf("soak: %zu values, seed %llu\n", Count,
              static_cast<unsigned long long>(Seed));
  Failure Failures;
  SplitMix64 Rng(Seed);
  engine::Scratch Scratch;
  size_t Done = 0;
  auto Run = [&](const std::vector<double> &Values) {
    for (double V : Values) {
      checkValue(V, Failures, Scratch);
      if (++Done % 100000 == 0)
        std::printf("  ... %zu checked, %zu failures\n", Done,
                    Failures.Count);
    }
  };

  // A third each: uniform normals, subnormals, and raw-bit finites.
  Run(randomNormalDoubles(Count / 3, Rng.next()));
  Run(randomSubnormalDoubles(Count / 3, Rng.next()));
  Run(randomBitsDoubles(Count - 2 * (Count / 3), Rng.next()));

  std::printf("soak: %zu values checked, %zu failures\n", Done,
              Failures.Count);
  Scratch.syncArenaStats();
  Scratch.stats().print(stdout);
  return Failures.Count == 0 ? 0 : 1;
}
