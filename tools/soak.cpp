//===- tools/soak.cpp - Large-scale property soak ------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic large-scale property checker, for soak runs beyond what
/// belongs in ctest: millions of values through the core invariants --
/// round-trip identity, minimality, fast-path agreement, fixed/free
/// consistency -- with a seed and a count on the command line, plus a
/// worker-sharded batch stage (BatchEngine<float> and a mixed-format
/// AnyBatch) checked slot-by-slot against the string API.  Exit code
/// 0 means every property held on every value.
///
///   ./build/tools/soak [count=1000000] [seed=1]
///                      [--stats-json=FILE] [--trace=FILE] [--obs-sample=N]
///
/// The telemetry flags mirror verify_exhaustive: --stats-json writes the
/// dragon4.stats.v1 document, --trace writes Chrome trace_event JSON, and
/// either one turns on 1-in-N conversion sampling (N from --obs-sample,
/// default 1).
///
//===----------------------------------------------------------------------===//

#include "dragon4.h"
#include "obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace dragon4;

namespace {

struct Failure {
  size_t Count = 0;
  void note(const char *Property, double Value, const std::string &Detail) {
    ++Count;
    if (Count <= 20)
      std::printf("FAIL %s: %.17g (%s)\n", Property, Value, Detail.c_str());
  }
};

/// One value through every cheap invariant.
void checkValue(double V, Failure &Failures, engine::Scratch &Scratch) {
  // 1. Round trip of the shortest form.
  DigitString Short = shortestDigits(V);
  std::string Text = renderScientific(Short, false);
  auto Back = readFloat<double>(Text);
  if (!Back || *Back != V)
    Failures.note("round-trip", V, Text);

  // 2. Grisu fast path agreement (conservative boundaries).
  FreeFormatOptions Conservative;
  Conservative.Boundaries = BoundaryMode::Conservative;
  DigitString Exact = shortestDigits(V, Conservative);
  if (!(shortestDigitsFast(V) == Exact))
    Failures.note("grisu", V, Text);

  // 3. Gay fixed fast path agreement at a pseudo-random digit count.
  int Digits = 1 + static_cast<int>((Short.Digits.size() * 7) % 17);
  if (auto Fast = fastFixedDigits(V, Digits)) {
    if (!(*Fast == straightforwardDigits(V, Digits)))
      Failures.note("gay-fast", V, Text);
  }

  // 4. Free digits prefix a wide fixed conversion (same reader model).
  FixedFormatOptions FixedOptions;
  FixedOptions.Boundaries = BoundaryMode::NearestEven;
  DigitString Wide = fixedDigitsRelative(V, 25, FixedOptions);
  bool PrefixOk =
      Wide.K == Short.K && Wide.Digits.size() >= Short.Digits.size();
  for (size_t I = 0; PrefixOk && I < Short.Digits.size(); ++I)
    PrefixOk = Wide.Digits[I] == Short.Digits[I];
  if (!PrefixOk)
    Failures.note("fixed-prefix", V, Text);

  // 5. printf-compat agreement with the C library on one spec.
  char Spec[16];
  std::snprintf(Spec, sizeof(Spec), "%%.%dg", Digits);
  char Libc[512];
  std::snprintf(Libc, sizeof(Libc), Spec, V);
  if (formatPrintf(V, Spec) != Libc)
    Failures.note("printf-compat", V, Spec);

  // 6. Engine buffer API agreement with toShortest (and with itself: the
  // scratch is reused across every value of the soak).
  char Buf[64];
  size_t Len = engine::format(V, Buf, sizeof(Buf), PrintOptions{}, Scratch);
  if (Len > sizeof(Buf) ||
      std::string_view(Buf, Len) != std::string_view(toShortest(V)))
    Failures.note("engine", V, std::string(Buf, std::min(Len, sizeof(Buf))));
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Count = 1000000;
  uint64_t Seed = 1;
  std::string StatsJsonPath, TracePath;
  uint64_t ObsSample = 0;
  int Positional = 0;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--stats-json=", 13) == 0) {
      StatsJsonPath = A + 13;
    } else if (std::strncmp(A, "--trace=", 8) == 0) {
      TracePath = A + 8;
    } else if (std::strncmp(A, "--obs-sample=", 13) == 0) {
      ObsSample = std::strtoull(A + 13, nullptr, 0);
    } else if (A[0] == '-') {
      std::fprintf(stderr,
                   "soak: unknown flag %s\nusage: soak [count] [seed] "
                   "[--stats-json=FILE] [--trace=FILE] [--obs-sample=N]\n",
                   A);
      return 2;
    } else if (Positional == 0) {
      Count = std::strtoull(A, nullptr, 10);
      ++Positional;
    } else {
      Seed = std::strtoull(A, nullptr, 10);
      ++Positional;
    }
  }

  // Telemetry implies sampling; set the config before the Scratch exists
  // (its flight-recorder capacity is latched at construction).
  if (ObsSample)
    obs::config().SampleEvery = static_cast<uint32_t>(ObsSample);
  else if (!StatsJsonPath.empty() || !TracePath.empty())
    obs::config().SampleEvery = 1;
  obs::config().Trace = !TracePath.empty();

  std::printf("soak: %zu values, seed %llu\n", Count,
              static_cast<unsigned long long>(Seed));
  Failure Failures;
  SplitMix64 Rng(Seed);
  engine::Scratch Scratch;
  size_t Done = 0;
  auto Run = [&](const std::vector<double> &Values) {
    for (double V : Values) {
      checkValue(V, Failures, Scratch);
      if (++Done % 100000 == 0)
        std::printf("  ... %zu checked, %zu failures\n", Done,
                    Failures.Count);
    }
  };

  // A third each: uniform normals, subnormals, and raw-bit finites.
  Run(randomNormalDoubles(Count / 3, Rng.next()));
  Run(randomSubnormalDoubles(Count / 3, Rng.next()));
  Run(randomBitsDoubles(Count - 2 * (Count / 3), Rng.next()));

  // 7. Generic batch stage: the worker-sharded engine over a non-double
  // format (binary32, typed) and a mixed-format AnyBatch, every slot
  // checked against the string API.  This is the soak's coverage of the
  // BatchPool sharding for formats beyond binary64.
  {
    size_t BatchCount = Count / 4 ? Count / 4 : 1;
    std::vector<float> Floats = randomBitsFloats(BatchCount, Rng.next());
    engine::BatchEngine<float> FloatEngine(4);
    engine::StringTable Table;
    FloatEngine.convert(Floats, Table, PrintOptions{});
    for (size_t I = 0; I < Floats.size(); ++I) {
      if (std::string(Table.view(I)) != toShortest(Floats[I]))
        Failures.note("batch32", Floats[I], std::string(Table.view(I)));
      ++Done;
    }

    std::vector<engine::AnyValue> Mixed;
    std::vector<std::string> Expected;
    size_t MixedCount = BatchCount < 4000 ? BatchCount : 4000;
    std::vector<double> Doubles = randomBitsDoubles(MixedCount, Rng.next());
    for (size_t I = 0; I < MixedCount; ++I) {
      switch (I % 5) {
      case 0:
        Mixed.push_back(engine::AnyValue::of(Doubles[I]));
        Expected.push_back(toShortest(Doubles[I]));
        break;
      case 1:
        Mixed.push_back(engine::AnyValue::of(Floats[I]));
        Expected.push_back(toShortest(Floats[I]));
        break;
      case 2: {
        Binary16 H = Binary16::fromBits(static_cast<uint16_t>(I * 131));
        Mixed.push_back(engine::AnyValue::of(H));
        Expected.push_back(toShortest(H));
        break;
      }
      case 3: {
        long double E = static_cast<long double>(Doubles[I]) / 3.0L;
        Mixed.push_back(engine::AnyValue::of(E));
        Expected.push_back(toShortest(E));
        break;
      }
      default: {
        Binary128 Q = Binary128::fromDouble(Doubles[I]);
        Mixed.push_back(engine::AnyValue::of(Q));
        Expected.push_back(toShortest(Q));
        break;
      }
      }
    }
    engine::AnyBatch Any(4);
    engine::StringTable MixedTable;
    Any.convert(Mixed, MixedTable, PrintOptions{});
    for (size_t I = 0; I < Mixed.size(); ++I) {
      if (std::string(MixedTable.view(I)) != Expected[I])
        Failures.note("any-batch", static_cast<double>(I),
                      std::string(MixedTable.view(I)));
      ++Done;
    }

    std::printf("soak: batch stage -- binary32 sharded stats:\n");
    FloatEngine.stats().print(stdout, nullptr);
    std::printf("soak: batch stage -- mixed-format sharded stats:\n");
    Any.stats().print(stdout, nullptr);
  }

  std::printf("soak: %zu values checked, %zu failures\n", Done,
              Failures.Count);
  Scratch.syncArenaStats();

  obs::Registry Reg;
  std::vector<obs::SpanEvent> Spans;
  Scratch.obsState().drainInto(Reg, Spans);
  const obs::Registry *RegPtr = obs::enabled() ? &Reg : nullptr;
  Scratch.stats().print(stdout, RegPtr);
  if (!StatsJsonPath.empty())
    obs::writeFile(StatsJsonPath,
                   obs::renderStatsJson(obs::makeSnapshot(Scratch.stats(),
                                                          RegPtr)));
  if (!TracePath.empty()) {
    obs::writeFile(TracePath, obs::renderChromeTrace(Spans));
    std::fprintf(stderr, "soak: wrote %zu span(s) to %s\n", Spans.size(),
                 TracePath.c_str());
  }
  return Failures.Count == 0 ? 0 : 1;
}
