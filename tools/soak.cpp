//===- tools/soak.cpp - Large-scale property soak ------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic large-scale property checker, for soak runs beyond what
/// belongs in ctest: millions of values through the core invariants --
/// round-trip identity, minimality, fast-path agreement, fixed/free
/// consistency -- with a seed and a count on the command line, plus a
/// worker-sharded batch stage (BatchEngine<float> and a mixed-format
/// AnyBatch) checked slot-by-slot against the string API.  Exit code
/// 0 means every property held on every value.
///
///   ./build/tools/soak [count=1000000] [seed=1]
///                      [--stats-json=FILE] [--trace=FILE] [--obs-sample=N]
///
/// The telemetry flags mirror verify_exhaustive: --stats-json writes the
/// dragon4.stats.v1 document, --trace writes Chrome trace_event JSON, and
/// either one turns on 1-in-N conversion sampling (N from --obs-sample,
/// default 1).
///
/// Service mode (the live telemetry demo / smoke target):
///
///   ./build/tools/soak --serve[=PORT] [--serve-duration=SECONDS]
///                      [--serve-tick-ms=N] [--slo=SPEC]... [--profile-hz=N]
///                      [--port-file=FILE]
///
/// --serve replaces the one-shot property sweep with a sustained
/// mixed-format traffic loop (batched conversions across all five formats
/// plus parse round-trips) while a TelemetryService exports /metrics,
/// /stats.json, /healthz and /profile.folded on 127.0.0.1.  Workers are
/// never paused for a scrape: each traffic iteration *publishes* a merged
/// copy of the cumulative counters under a mutex, and the service source
/// reads that copy.  PORT 0 (the default) binds an ephemeral port,
/// printed on stdout and optionally written to --port-file so scripted
/// scrapers (the CI smoke job) can find it.  The loop runs until
/// --serve-duration elapses or SIGINT/SIGTERM arrives; either way the
/// service shuts down cleanly and the exit code still reflects the
/// round-trip checks performed on the traffic.
///
//===----------------------------------------------------------------------===//

#include "dragon4.h"
#include "obs/export.h"
#include "obs/live/slo.h"
#include "svc/telemetry.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace dragon4;

namespace {

struct Failure {
  size_t Count = 0;
  void note(const char *Property, double Value, const std::string &Detail) {
    ++Count;
    if (Count <= 20)
      std::printf("FAIL %s: %.17g (%s)\n", Property, Value, Detail.c_str());
  }
};

/// One value through every cheap invariant.
void checkValue(double V, Failure &Failures, engine::Scratch &Scratch) {
  // 1. Round trip of the shortest form.
  DigitString Short = shortestDigits(V);
  std::string Text = renderScientific(Short, false);
  auto Back = readFloat<double>(Text);
  if (!Back || *Back != V)
    Failures.note("round-trip", V, Text);

  // 2. Grisu fast path agreement (conservative boundaries).
  FreeFormatOptions Conservative;
  Conservative.Boundaries = BoundaryMode::Conservative;
  DigitString Exact = shortestDigits(V, Conservative);
  if (!(shortestDigitsFast(V) == Exact))
    Failures.note("grisu", V, Text);

  // 3. Gay fixed fast path agreement at a pseudo-random digit count.
  int Digits = 1 + static_cast<int>((Short.Digits.size() * 7) % 17);
  if (auto Fast = fastFixedDigits(V, Digits)) {
    if (!(*Fast == straightforwardDigits(V, Digits)))
      Failures.note("gay-fast", V, Text);
  }

  // 4. Free digits prefix a wide fixed conversion (same reader model).
  FixedFormatOptions FixedOptions;
  FixedOptions.Boundaries = BoundaryMode::NearestEven;
  DigitString Wide = fixedDigitsRelative(V, 25, FixedOptions);
  bool PrefixOk =
      Wide.K == Short.K && Wide.Digits.size() >= Short.Digits.size();
  for (size_t I = 0; PrefixOk && I < Short.Digits.size(); ++I)
    PrefixOk = Wide.Digits[I] == Short.Digits[I];
  if (!PrefixOk)
    Failures.note("fixed-prefix", V, Text);

  // 5. printf-compat agreement with the C library on one spec.
  char Spec[16];
  std::snprintf(Spec, sizeof(Spec), "%%.%dg", Digits);
  char Libc[512];
  std::snprintf(Libc, sizeof(Libc), Spec, V);
  if (formatPrintf(V, Spec) != Libc)
    Failures.note("printf-compat", V, Spec);

  // 6. Engine buffer API agreement with toShortest (and with itself: the
  // scratch is reused across every value of the soak).
  char Buf[64];
  size_t Len = engine::format(V, Buf, sizeof(Buf), PrintOptions{}, Scratch);
  if (Len > sizeof(Buf) ||
      std::string_view(Buf, Len) != std::string_view(toShortest(V)))
    Failures.note("engine", V, std::string(Buf, std::min(Len, sizeof(Buf))));
}

//===----------------------------------------------------------------------===//
// Service mode
//===----------------------------------------------------------------------===//

volatile std::sig_atomic_t ServeStop = 0;
void onStopSignal(int) { ServeStop = 1; }

struct ServeOptions {
  uint16_t Port = 0;           ///< 0 = ephemeral.
  uint64_t DurationSeconds = 0; ///< 0 = run until SIGINT/SIGTERM.
  uint64_t TickMillis = 1000;
  uint32_t ProfileHz = 0;
  std::vector<obs::live::SloRule> Slos;
  std::string PortFile;
  uint64_t Seed = 1;
  size_t ChunkSize = 4096;
};

/// The sustained traffic loop behind --serve.  Workers never stop for a
/// scrape: every iteration publishes a merged copy of the cumulative
/// counters under PublishM, and the telemetry source reads that copy.
int runServe(const ServeOptions &Opt) {
  // The service's latency histograms and SLOs come from the sampled
  // metrics; default to sample-everything unless the caller chose a rate.
  if (obs::config().SampleEvery == 0)
    obs::config().SampleEvery = 1;

  std::mutex PublishM;
  engine::EngineStats PublishedStats;
  obs::Registry PublishedReg;
  obs::exemplar::ExemplarReservoir PublishedExemplars;

  svc::TelemetryConfig Cfg;
  Cfg.Port = Opt.Port;
  Cfg.TickNanos = Opt.TickMillis * 1000000ull;
  Cfg.ProfileHz = Opt.ProfileHz;
  Cfg.Slos = Opt.Slos;
  svc::TelemetryService Service(Cfg, [&] {
    std::lock_guard<std::mutex> Lock(PublishM);
    return obs::makeSnapshot(PublishedStats,
                             obs::enabled() ? &PublishedReg : nullptr,
                             obs::enabled() ? &PublishedExemplars : nullptr);
  });
  std::string Err;
  if (!Service.start(&Err)) {
    std::fprintf(stderr, "soak: cannot start telemetry service: %s\n",
                 Err.c_str());
    return 2;
  }
  std::printf("soak: serving on 127.0.0.1:%u\n", Service.port());
  std::fflush(stdout);
  if (!Opt.PortFile.empty()) {
    if (std::FILE *F = std::fopen(Opt.PortFile.c_str(), "w")) {
      std::fprintf(F, "%u\n", Service.port());
      std::fclose(F);
    } else {
      std::fprintf(stderr, "soak: cannot write %s\n", Opt.PortFile.c_str());
      return 2;
    }
  }
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);

  // Traffic sources: a typed binary64 pool, a mixed five-format pool, and
  // a parse scratch for round-trips of the rendered text.
  engine::BatchEngine<double> DoublePool(2);
  engine::AnyBatch MixedPool(2);
  engine::Scratch ParseScratch;
  engine::EngineStats ParseStats; ///< Cumulative drains of ParseScratch.
  obs::Registry ParseReg;
  obs::exemplar::ExemplarReservoir ParseExemplars;
  std::vector<obs::SpanEvent> ParseSpans;
  SplitMix64 Rng(Opt.Seed);
  engine::StringTable Table, MixedTable;
  size_t Failures = 0, Iterations = 0;
  uint64_t Converted = 0;
  const uint64_t DeadlineNs =
      Opt.DurationSeconds
          ? obs::nowNanos() + Opt.DurationSeconds * 1000000000ull
          : 0;

  while (!ServeStop && (DeadlineNs == 0 || obs::nowNanos() < DeadlineNs)) {
    std::vector<double> Values = randomBitsDoubles(Opt.ChunkSize, Rng.next());
    DoublePool.convert(Values, Table, PrintOptions{});

    // Round-trip a slice of the rendered text through the scratch-routed
    // parser: live correctness plus path="parse" latency samples.
    for (size_t I = 0; I < Values.size(); I += 16) {
      auto Back = parse::parseFloat<double>(Table.view(I), ParseScratch);
      bool Same = Back.ok() && (Back.Value == Values[I] ||
                                (Back.Value != Back.Value &&
                                 Values[I] != Values[I]));
      if (!Same && ++Failures <= 20)
        std::printf("FAIL serve-round-trip: %.17g (%.*s)\n", Values[I],
                    static_cast<int>(Table.view(I).size()),
                    Table.view(I).data());
    }

    // Mixed traffic: all five formats through the type-erased pool.
    std::vector<engine::AnyValue> Mixed;
    Mixed.reserve(512);
    for (size_t I = 0; I < 512; ++I) {
      double D = Values[I % Values.size()];
      switch (I % 5) {
      case 0:
        Mixed.push_back(engine::AnyValue::of(D));
        break;
      case 1:
        Mixed.push_back(engine::AnyValue::of(static_cast<float>(D)));
        break;
      case 2:
        Mixed.push_back(engine::AnyValue::of(Binary16::fromBits(
            static_cast<uint16_t>(I * 131 + Iterations))));
        break;
      case 3:
        Mixed.push_back(engine::AnyValue::of(
            static_cast<long double>(D) / 3.0L));
        break;
      default:
        Mixed.push_back(engine::AnyValue::of(Binary128::fromDouble(D)));
        break;
      }
    }
    MixedPool.convert(Mixed, MixedTable, PrintOptions{});
    Converted += Values.size() + Mixed.size();

    // Publish.  Safe to read the pool accessors here: no convert() is in
    // flight on this (the only) traffic thread, and the service threads
    // only ever touch the published copies.
    ParseScratch.syncArenaStats();
    ParseStats.merge(ParseScratch.takeStats());
    ParseScratch.obsState().drainInto(ParseReg, ParseSpans, &ParseExemplars);
    {
      std::lock_guard<std::mutex> Lock(PublishM);
      PublishedStats = DoublePool.stats();
      PublishedStats.merge(MixedPool.stats());
      PublishedStats.merge(ParseStats);
      PublishedReg.reset();
      PublishedReg.merge(DoublePool.registry());
      PublishedReg.merge(MixedPool.registry());
      PublishedReg.merge(ParseReg);
      PublishedExemplars.reset();
      PublishedExemplars.merge(DoublePool.exemplars());
      PublishedExemplars.merge(MixedPool.exemplars());
      PublishedExemplars.merge(ParseExemplars);
    }
    ++Iterations;
    // Pace the loop: a telemetry soak demonstrates liveness, it does not
    // need to monopolise the host.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  Service.stop();
  std::printf("soak: serve done -- %zu iterations, %llu values, %llu "
              "scrapes, %zu failures\n",
              Iterations, static_cast<unsigned long long>(Converted),
              static_cast<unsigned long long>(Service.scrapesServed()),
              Failures);
  {
    std::lock_guard<std::mutex> Lock(PublishM);
    PublishedStats.print(stdout, obs::enabled() ? &PublishedReg : nullptr);
  }
  return Failures == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Count = 1000000;
  uint64_t Seed = 1;
  std::string StatsJsonPath, TracePath;
  uint64_t ObsSample = 0;
  bool Serve = false;
  ServeOptions ServeOpt;
  int Positional = 0;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--stats-json=", 13) == 0) {
      StatsJsonPath = A + 13;
    } else if (std::strncmp(A, "--trace=", 8) == 0) {
      TracePath = A + 8;
    } else if (std::strncmp(A, "--obs-sample=", 13) == 0) {
      ObsSample = std::strtoull(A + 13, nullptr, 0);
    } else if (std::strcmp(A, "--serve") == 0) {
      Serve = true;
    } else if (std::strncmp(A, "--serve=", 8) == 0) {
      Serve = true;
      ServeOpt.Port = static_cast<uint16_t>(std::strtoul(A + 8, nullptr, 10));
    } else if (std::strncmp(A, "--serve-duration=", 17) == 0) {
      ServeOpt.DurationSeconds = std::strtoull(A + 17, nullptr, 10);
    } else if (std::strncmp(A, "--serve-tick-ms=", 16) == 0) {
      ServeOpt.TickMillis = std::strtoull(A + 16, nullptr, 10);
      if (ServeOpt.TickMillis == 0)
        ServeOpt.TickMillis = 1;
    } else if (std::strncmp(A, "--slo=", 6) == 0) {
      std::string SloErr;
      auto Rule = obs::live::SloSet::parse(A + 6, &SloErr);
      if (!Rule) {
        std::fprintf(stderr, "soak: bad --slo spec: %s\n", SloErr.c_str());
        return 2;
      }
      ServeOpt.Slos.push_back(*Rule);
    } else if (std::strncmp(A, "--profile-hz=", 13) == 0) {
      ServeOpt.ProfileHz =
          static_cast<uint32_t>(std::strtoul(A + 13, nullptr, 10));
    } else if (std::strncmp(A, "--port-file=", 12) == 0) {
      ServeOpt.PortFile = A + 12;
    } else if (A[0] == '-') {
      std::fprintf(stderr,
                   "soak: unknown flag %s\nusage: soak [count] [seed] "
                   "[--stats-json=FILE] [--trace=FILE] [--obs-sample=N]\n"
                   "       soak --serve[=PORT] [--serve-duration=SECONDS] "
                   "[--serve-tick-ms=N]\n"
                   "            [--slo=SPEC]... [--profile-hz=N] "
                   "[--port-file=FILE]\n",
                   A);
      return 2;
    } else if (Positional == 0) {
      Count = std::strtoull(A, nullptr, 10);
      ++Positional;
    } else {
      Seed = std::strtoull(A, nullptr, 10);
      ++Positional;
    }
  }

  // Telemetry implies sampling; set the config before the Scratch exists
  // (its flight-recorder capacity is latched at construction).
  if (ObsSample)
    obs::config().SampleEvery = static_cast<uint32_t>(ObsSample);
  else if (!StatsJsonPath.empty() || !TracePath.empty())
    obs::config().SampleEvery = 1;
  obs::config().Trace = !TracePath.empty();

  if (Serve) {
    ServeOpt.Seed = Seed;
    return runServe(ServeOpt);
  }

  std::printf("soak: %zu values, seed %llu\n", Count,
              static_cast<unsigned long long>(Seed));
  Failure Failures;
  SplitMix64 Rng(Seed);
  engine::Scratch Scratch;
  size_t Done = 0;
  auto Run = [&](const std::vector<double> &Values) {
    for (double V : Values) {
      checkValue(V, Failures, Scratch);
      if (++Done % 100000 == 0)
        std::printf("  ... %zu checked, %zu failures\n", Done,
                    Failures.Count);
    }
  };

  // A third each: uniform normals, subnormals, and raw-bit finites.
  Run(randomNormalDoubles(Count / 3, Rng.next()));
  Run(randomSubnormalDoubles(Count / 3, Rng.next()));
  Run(randomBitsDoubles(Count - 2 * (Count / 3), Rng.next()));

  // 7. Generic batch stage: the worker-sharded engine over a non-double
  // format (binary32, typed) and a mixed-format AnyBatch, every slot
  // checked against the string API.  This is the soak's coverage of the
  // BatchPool sharding for formats beyond binary64.
  {
    size_t BatchCount = Count / 4 ? Count / 4 : 1;
    std::vector<float> Floats = randomBitsFloats(BatchCount, Rng.next());
    engine::BatchEngine<float> FloatEngine(4);
    engine::StringTable Table;
    FloatEngine.convert(Floats, Table, PrintOptions{});
    for (size_t I = 0; I < Floats.size(); ++I) {
      if (std::string(Table.view(I)) != toShortest(Floats[I]))
        Failures.note("batch32", Floats[I], std::string(Table.view(I)));
      ++Done;
    }

    std::vector<engine::AnyValue> Mixed;
    std::vector<std::string> Expected;
    size_t MixedCount = BatchCount < 4000 ? BatchCount : 4000;
    std::vector<double> Doubles = randomBitsDoubles(MixedCount, Rng.next());
    for (size_t I = 0; I < MixedCount; ++I) {
      switch (I % 5) {
      case 0:
        Mixed.push_back(engine::AnyValue::of(Doubles[I]));
        Expected.push_back(toShortest(Doubles[I]));
        break;
      case 1:
        Mixed.push_back(engine::AnyValue::of(Floats[I]));
        Expected.push_back(toShortest(Floats[I]));
        break;
      case 2: {
        Binary16 H = Binary16::fromBits(static_cast<uint16_t>(I * 131));
        Mixed.push_back(engine::AnyValue::of(H));
        Expected.push_back(toShortest(H));
        break;
      }
      case 3: {
        long double E = static_cast<long double>(Doubles[I]) / 3.0L;
        Mixed.push_back(engine::AnyValue::of(E));
        Expected.push_back(toShortest(E));
        break;
      }
      default: {
        Binary128 Q = Binary128::fromDouble(Doubles[I]);
        Mixed.push_back(engine::AnyValue::of(Q));
        Expected.push_back(toShortest(Q));
        break;
      }
      }
    }
    engine::AnyBatch Any(4);
    engine::StringTable MixedTable;
    Any.convert(Mixed, MixedTable, PrintOptions{});
    for (size_t I = 0; I < Mixed.size(); ++I) {
      if (std::string(MixedTable.view(I)) != Expected[I])
        Failures.note("any-batch", static_cast<double>(I),
                      std::string(MixedTable.view(I)));
      ++Done;
    }

    std::printf("soak: batch stage -- binary32 sharded stats:\n");
    FloatEngine.stats().print(stdout, nullptr);
    std::printf("soak: batch stage -- mixed-format sharded stats:\n");
    Any.stats().print(stdout, nullptr);
  }

  std::printf("soak: %zu values checked, %zu failures\n", Done,
              Failures.Count);
  Scratch.syncArenaStats();

  obs::Registry Reg;
  std::vector<obs::SpanEvent> Spans;
  Scratch.obsState().drainInto(Reg, Spans);
  const obs::Registry *RegPtr = obs::enabled() ? &Reg : nullptr;
  Scratch.stats().print(stdout, RegPtr);
  if (!StatsJsonPath.empty())
    obs::writeFile(StatsJsonPath,
                   obs::renderStatsJson(obs::makeSnapshot(Scratch.stats(),
                                                          RegPtr)));
  if (!TracePath.empty()) {
    obs::writeFile(TracePath, obs::renderChromeTrace(Spans));
    std::fprintf(stderr, "soak: wrote %zu span(s) to %s\n", Spans.size(),
                 TracePath.c_str());
  }
  return Failures.Count == 0 ? 0 : 1;
}
