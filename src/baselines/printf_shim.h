//===- baselines/printf_shim.h - C library printf baseline -------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C library comparison point of Table 3: format a double with
/// snprintf("%.*e") to a given number of significant digits, and check
/// whether the result is correctly rounded.  On the 1996 systems the paper
/// measured, several printf implementations misrounded thousands of the
/// quarter-million test inputs; the checker lets bench_table3 reproduce
/// that count (expected to be 0 on modern glibc).
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_BASELINES_PRINTF_SHIM_H
#define DRAGON4_BASELINES_PRINTF_SHIM_H

#include "core/digits.h"

#include <string>

namespace dragon4 {

/// Formats \p Value in scientific notation with \p SignificantDigits total
/// significant digits via the C library ("%.*e" with SignificantDigits-1
/// fraction digits).  Decimal only.
std::string printfScientific(double Value, int SignificantDigits);

/// Extracts the digit string from a "%e"-style text produced by
/// printfScientific: digits plus the scale K (value = 0.digits * 10^K).
/// Asserts on text that does not look like printf scientific output.
DigitString parsePrintfScientific(const std::string &Text);

/// True if printf's \p SignificantDigits-digit rendering of \p Value is
/// correctly rounded.  Exact halfway points accept either direction
/// (C leaves the tie direction implementation-defined).
bool printfIsCorrectlyRounded(double Value, int SignificantDigits);

} // namespace dragon4

#endif // DRAGON4_BASELINES_PRINTF_SHIM_H
