//===- baselines/printf_shim.cpp - C library printf baseline ----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "baselines/printf_shim.h"

#include "baselines/fixed17.h"
#include "support/checks.h"

#include <cmath>
#include <cstdio>

using namespace dragon4;

std::string dragon4::printfScientific(double Value, int SignificantDigits) {
  D4_ASSERT(SignificantDigits >= 1, "need at least one digit");
  char Buffer[64];
  int Written = std::snprintf(Buffer, sizeof(Buffer), "%.*e",
                              SignificantDigits - 1, Value);
  D4_ASSERT(Written > 0 && Written < static_cast<int>(sizeof(Buffer)),
            "printf output did not fit");
  return std::string(Buffer, static_cast<size_t>(Written));
}

DigitString dragon4::parsePrintfScientific(const std::string &Text) {
  DigitString Result;
  size_t Pos = 0;
  if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
    ++Pos;
  for (; Pos < Text.size(); ++Pos) {
    char C = Text[Pos];
    if (C == '.')
      continue;
    if (C == 'e' || C == 'E')
      break;
    D4_ASSERT(C >= '0' && C <= '9', "unexpected character in printf output");
    Result.Digits.push_back(static_cast<uint8_t>(C - '0'));
  }
  D4_ASSERT(Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E'),
            "printf output lacks an exponent");
  ++Pos;
  bool Negative = false;
  if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+')) {
    Negative = Text[Pos] == '-';
    ++Pos;
  }
  int Exponent = 0;
  for (; Pos < Text.size(); ++Pos) {
    D4_ASSERT(Text[Pos] >= '0' && Text[Pos] <= '9',
              "malformed printf exponent");
    Exponent = Exponent * 10 + (Text[Pos] - '0');
  }
  if (Negative)
    Exponent = -Exponent;
  // "%e" prints d.ddd * 10^exp, i.e. 0.ddd * 10^(exp + 1).
  Result.K = Exponent + 1;
  return Result;
}

bool dragon4::printfIsCorrectlyRounded(double Value, int SignificantDigits) {
  D4_ASSERT(std::isfinite(Value) && Value != 0.0,
            "checker expects a finite non-zero value");
  DigitString Printed = parsePrintfScientific(
      printfScientific(Value, SignificantDigits));
  double Magnitude = std::fabs(Value);
  DigitString RoundedUp =
      straightforwardDigits(Magnitude, SignificantDigits, 10,
                            TieBreak::RoundUp);
  if (Printed == RoundedUp)
    return true;
  // Exact ties may legitimately round the other way.
  DigitString RoundedDown =
      straightforwardDigits(Magnitude, SignificantDigits, 10,
                            TieBreak::RoundDown);
  return Printed == RoundedDown && !(RoundedDown == RoundedUp);
}
