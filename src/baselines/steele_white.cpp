//===- baselines/steele_white.cpp - Steele & White baseline -----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explicit instantiations of the Steele & White preset (the interface is
/// header-only; this keeps one definition per supported format in the
/// library for clients that prefer to link rather than inline).
///
//===----------------------------------------------------------------------===//

#include "baselines/steele_white.h"

#include "fp/binary16.h"

namespace dragon4 {

template DigitString steeleWhiteDigits<double>(double, unsigned);
template DigitString steeleWhiteDigits<float>(float, unsigned);
template DigitString steeleWhiteDigits<Binary16>(Binary16, unsigned);

} // namespace dragon4
