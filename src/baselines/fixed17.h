//===- baselines/fixed17.h - Straightforward fixed-format --------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "straightforward fixed-format algorithm" of the paper's Table 3:
/// print a value to a given number of significant digits, correctly
/// rounded, with none of the shortest-output machinery -- no boundary
/// tracking, no per-digit termination tests, no # marks.  Seventeen digits
/// is "the minimum number guaranteed to distinguish among IEEE double-
/// precision numbers", which is why the paper (and bench_table3) uses it
/// as the free-format comparison point.
///
/// It shares the estimator-based scaling with the main algorithm so that
/// the Table 3 ratio isolates exactly the per-digit overhead of the
/// shortest-output tests, as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_BASELINES_FIXED17_H
#define DRAGON4_BASELINES_FIXED17_H

#include "bigint/bigint.h"
#include "core/digits.h"
#include "core/options.h"
#include "fp/ieee_traits.h"

namespace dragon4 {

/// Prints F * 2^E to exactly \p NumDigits significant base-B digits,
/// rounding the last digit to nearest (ties per \p Ties, applied to the
/// digit string).  Unlike the Section 4 algorithm, rounding can carry all
/// the way through the digits (e.g. 9.99 -> "10.0"), which this routine
/// handles by propagation.
DigitString straightforwardFixed(uint64_t F, int E, unsigned B, int NumDigits,
                                 TieBreak Ties = TieBreak::RoundUp);

/// Prints F * 2^E correctly rounded at absolute digit position
/// \p Position (the B^Position place), emitting the value's true decimal
/// expansion digits -- i.e. printf "%f" semantics, as opposed to the
/// Section 4 algorithm's information-bounded output.  The result covers
/// positions K-1 down to Position; a value that rounds entirely away
/// yields the single digit 0 at the requested position.
DigitString straightforwardFixedAbsolute(uint64_t F, int E, unsigned B,
                                         int Position,
                                         TieBreak Ties = TieBreak::RoundUp);

/// Wide-mantissa generalizations (binary128 and friends).
DigitString straightforwardFixedBig(const BigInt &F, int E, unsigned B,
                                    int NumDigits,
                                    TieBreak Ties = TieBreak::RoundUp);
DigitString straightforwardFixedAbsoluteBig(const BigInt &F, int E,
                                            unsigned B, int Position,
                                            TieBreak Ties = TieBreak::RoundUp);

/// Convenience overload for a finite non-zero IEEE value (magnitude only).
/// Wide-significand formats route through decomposeBig (found by ADL).
template <typename T>
DigitString straightforwardDigits(T Value, int NumDigits,
                                  unsigned Base = 10,
                                  TieBreak Ties = TieBreak::RoundUp) {
  if constexpr (IeeeTraits<T>::Precision > 64) {
    auto D = decomposeBig(Value);
    return straightforwardFixedBig(D.F, D.E, Base, NumDigits, Ties);
  } else {
    Decomposed D = decompose(Value);
    return straightforwardFixed(D.F, D.E, Base, NumDigits, Ties);
  }
}

/// Convenience overload of the absolute-position printer.
template <typename T>
DigitString straightforwardDigitsAbsolute(T Value, int Position,
                                          unsigned Base = 10,
                                          TieBreak Ties = TieBreak::RoundUp) {
  if constexpr (IeeeTraits<T>::Precision > 64) {
    auto D = decomposeBig(Value);
    return straightforwardFixedAbsoluteBig(D.F, D.E, Base, Position, Ties);
  } else {
    Decomposed D = decompose(Value);
    return straightforwardFixedAbsolute(D.F, D.E, Base, Position, Ties);
  }
}

} // namespace dragon4

#endif // DRAGON4_BASELINES_FIXED17_H
