//===- baselines/steele_white.h - Steele & White baseline --------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The algorithm the paper improves on: Steele & White's free-format
/// conversion ("How to print floating-point numbers accurately", PLDI '90)
/// [5].  Relative to Burger-Dybvig it
///   * scales iteratively -- O(|log v|) high-precision operations, the
///     source of the ~two-orders-of-magnitude slowdown in Table 2 -- and
///   * does not account for the reader's rounding mode (both boundaries
///     are always treated as excluded), so e.g. 1e23 prints as
///     9.999999999999999e22.
///
/// The digit-generation core is shared with the main implementation; the
/// differences above are exactly the knobs the options expose, so this
/// header is a thin, documented preset rather than a re-implementation.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_BASELINES_STEELE_WHITE_H
#define DRAGON4_BASELINES_STEELE_WHITE_H

#include "core/free_format.h"

namespace dragon4 {

/// The Steele & White configuration of the free-format converter.
inline FreeFormatOptions steeleWhiteOptions(unsigned Base = 10) {
  FreeFormatOptions Options;
  Options.Base = Base;
  Options.Boundaries = BoundaryMode::Conservative;
  Options.Ties = TieBreak::RoundUp;
  Options.Scaling = ScalingAlgorithm::Iterative;
  return Options;
}

/// Shortest digits of \p Value per Steele & White.
template <typename T>
DigitString steeleWhiteDigits(T Value, unsigned Base = 10) {
  return shortestDigits(Value, steeleWhiteOptions(Base));
}

} // namespace dragon4

#endif // DRAGON4_BASELINES_STEELE_WHITE_H
