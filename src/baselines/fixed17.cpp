//===- baselines/fixed17.cpp - Straightforward fixed-format -----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "baselines/fixed17.h"

#include "bigint/power_cache.h"
#include "core/scaling.h"
#include "support/checks.h"

#include <bit>

using namespace dragon4;

namespace {

/// Shared scale step: v = F * 2^E becomes the pre-multiplied pair (R, S)
/// with B^(K-1) <= v < B^K and next-digit = floor(R/S), via the same
/// estimator+fixup trick as the free-format path.
struct SimpleScaled {
  BigInt R;
  BigInt S;
  int K;
};

SimpleScaled scaleSimpleImpl(BigInt R, int BitLength, int E, unsigned B) {
  BigInt S(uint64_t(1));
  if (E >= 0)
    R <<= static_cast<size_t>(E);
  else
    S <<= static_cast<size_t>(-E);

  int Est = estimateScale(E, BitLength, B);
  if (Est >= 0)
    S *= cachedPow(B, static_cast<unsigned>(Est));
  else
    R *= cachedPow(B, static_cast<unsigned>(-Est));
  int K;
  if (R >= S) {
    K = Est + 1; // v >= B^Est: R/S is already v * B / B^K.
  } else {
    K = Est;
    R.mulSmall(B);
  }
  return SimpleScaled{std::move(R), std::move(S), K};
}

SimpleScaled scaleSimple(uint64_t F, int E, unsigned B) {
  return scaleSimpleImpl(BigInt(F), 64 - std::countl_zero(F), E, B);
}

SimpleScaled scaleSimpleBig(const BigInt &F, int E, unsigned B) {
  return scaleSimpleImpl(F, static_cast<int>(F.bitLength()), E, B);
}

/// Resolves a rounding decision on the remaining fraction R/S against the
/// emitted digits (nearest; ties per \p Ties on the last digit's parity).
bool resolveRoundUp(const BigInt &R, const BigInt &S, TieBreak Ties,
                    uint8_t LastDigit) {
  BigInt Doubled = R;
  Doubled.mulSmall(2);
  int Cmp = Doubled.compare(S);
  if (Cmp != 0)
    return Cmp > 0;
  switch (Ties) {
  case TieBreak::RoundUp:
    return true;
  case TieBreak::RoundDown:
    return false;
  case TieBreak::RoundEven:
    return (LastDigit & 1) != 0;
  }
  return true;
}

/// Emits \p NumDigits digits of the scaled value and rounds the last one.
/// Returns true if the rounding carried out of the leading digit (the
/// caller bumps K; the digits are then 1 followed by zeros).
bool emitDigits(SimpleScaled &State, unsigned B, int NumDigits,
                TieBreak Ties, std::vector<uint8_t> &Digits) {
  Digits.reserve(static_cast<size_t>(NumDigits));
  BigInt Quotient;
  for (int I = 0; I < NumDigits; ++I) {
    BigInt::divMod(State.R, State.S, Quotient, State.R);
    uint64_t Digit = Quotient.isZero() ? 0 : Quotient.toUint64();
    D4_ASSERT(Digit < B, "digit out of range (scaling was wrong)");
    Digits.push_back(static_cast<uint8_t>(Digit));
    if (I + 1 < NumDigits)
      State.R.mulSmall(B);
  }
  if (!resolveRoundUp(State.R, State.S, Ties, Digits.back()))
    return false;
  for (int I = NumDigits - 1; I >= 0; --I) {
    if (Digits[static_cast<size_t>(I)] + 1u < B) {
      ++Digits[static_cast<size_t>(I)];
      return false;
    }
    Digits[static_cast<size_t>(I)] = 0;
  }
  Digits.front() = 1; // Carried out of the leading digit.
  return true;
}

/// Shared tail of the significant-digits printers.
DigitString finishFixed(SimpleScaled State, unsigned B, int NumDigits,
                        TieBreak Ties) {
  D4_ASSERT(NumDigits >= 1, "at least one digit must be generated");
  DigitString Result;
  Result.K = State.K;
  if (emitDigits(State, B, NumDigits, Ties, Result.Digits))
    ++Result.K; // 9.99... became 10.0...: same width, higher scale.
  D4_ASSERT(Result.Digits.front() != 0, "leading digit must be non-zero");
  return Result;
}

/// Shared tail of the absolute-position printers.
DigitString finishFixedAbsolute(SimpleScaled State, unsigned B, int Position,
                                TieBreak Ties) {
  int NumDigits = State.K - Position;
  DigitString Result;

  if (NumDigits < 1) {
    // v < B^K <= B^Position: the result is 0 or 1 at the position,
    // depending on which side of B^Position / 2 the value falls.
    // v = (R/S) * B^(K-1), so 2v >= B^Position iff 2R >= S*B^(1-NumDigits).
    BigInt Lhs = State.R;
    Lhs.mulSmall(2);
    BigInt Rhs =
        State.S * cachedPow(B, static_cast<unsigned>(1 - NumDigits));
    int Cmp = Lhs.compare(Rhs);
    // An exact tie resolves by strategy; RoundEven keeps the (even) zero.
    bool Up = Cmp > 0 || (Cmp == 0 && Ties == TieBreak::RoundUp);
    Result.Digits.push_back(Up ? 1 : 0);
    Result.K = Position + 1;
    return Result;
  }

  Result.K = State.K;
  if (emitDigits(State, B, NumDigits, Ties, Result.Digits)) {
    // Carry across the leading power: one more position is now covered,
    // so extend with a zero to keep the last place at Position.
    ++Result.K;
    Result.Digits.push_back(0);
  }
  return Result;
}

} // namespace

DigitString dragon4::straightforwardFixed(uint64_t F, int E, unsigned B,
                                          int NumDigits, TieBreak Ties) {
  D4_ASSERT(F > 0, "straightforward conversion requires a positive mantissa");
  D4_ASSERT(B >= 2 && B <= 36, "base out of range");
  return finishFixed(scaleSimple(F, E, B), B, NumDigits, Ties);
}

DigitString dragon4::straightforwardFixedBig(const BigInt &F, int E,
                                             unsigned B, int NumDigits,
                                             TieBreak Ties) {
  D4_ASSERT(!F.isZero() && !F.isNegative(),
            "straightforward conversion requires a positive mantissa");
  D4_ASSERT(B >= 2 && B <= 36, "base out of range");
  return finishFixed(scaleSimpleBig(F, E, B), B, NumDigits, Ties);
}

DigitString dragon4::straightforwardFixedAbsolute(uint64_t F, int E,
                                                  unsigned B, int Position,
                                                  TieBreak Ties) {
  D4_ASSERT(F > 0, "straightforward conversion requires a positive mantissa");
  D4_ASSERT(B >= 2 && B <= 36, "base out of range");
  return finishFixedAbsolute(scaleSimple(F, E, B), B, Position, Ties);
}

DigitString dragon4::straightforwardFixedAbsoluteBig(const BigInt &F, int E,
                                                     unsigned B, int Position,
                                                     TieBreak Ties) {
  D4_ASSERT(!F.isZero() && !F.isNegative(),
            "straightforward conversion requires a positive mantissa");
  D4_ASSERT(B >= 2 && B <= 36, "base out of range");
  return finishFixedAbsolute(scaleSimpleBig(F, E, B), B, Position, Ties);
}
