//===- svc/telemetry.h - Live telemetry service ------------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running telemetry service over the sharded obs registry: a
/// ticker thread samples a caller-provided Snapshot source into the
/// WindowedAggregator and re-evaluates the SLO rules; an embedded
/// HttpServer serves the live state.  Workers are never stopped or even
/// slowed -- the source callback is expected to read *published* merged
/// state (see tools/soak's --serve mode), not to join threads.
///
/// Endpoints:
///
///   /metrics          Prometheus text exposition (conformant: HELP/TYPE
///                     once per family, escaped labels, OpenMetrics
///                     exemplars on the latency series)
///   /stats.json       the dragon4.stats.v1 document
///   /exemplars.json   the dragon4.exemplars.v1 captured worst-case list
///   /healthz          "ok" + uptime when the service threads are live
///   /profile.folded   folded stacks from the continuous sampling profiler
///   /                 a plain-text index of the above
///
/// Both exporter endpoints render liveSnapshot(): a fresh source snapshot
/// (so counters advance between consecutive scrapes) extended with the
/// window rates (window_* derived metrics) and the SLO gauge block.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_SVC_TELEMETRY_H
#define DRAGON4_SVC_TELEMETRY_H

#include "obs/live/slo.h"
#include "obs/live/window.h"
#include "svc/http.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace dragon4::svc {

struct TelemetryConfig {
  uint16_t Port = 0;             ///< 0 = ephemeral (read back via port()).
  uint64_t TickNanos = 1000000000; ///< Window bucket width.
  size_t WindowBuckets = 60;     ///< Ring capacity (TickNanos * this = span).
  uint32_t ProfileHz = 0;        ///< Sampling profiler rate; 0 = off.
  std::vector<obs::live::SloRule> Slos;
};

/// The service: construct with a source that produces the current merged
/// cumulative Snapshot, then start().
class TelemetryService {
public:
  using Source = std::function<obs::Snapshot()>;

  TelemetryService(TelemetryConfig Cfg, Source Src);
  ~TelemetryService();
  TelemetryService(const TelemetryService &) = delete;
  TelemetryService &operator=(const TelemetryService &) = delete;

  /// Starts the HTTP exporter, the window ticker, and (when configured)
  /// the sampling profiler.  False + \p Err on bind failure.
  bool start(std::string *Err = nullptr);

  /// Stops all threads.  Idempotent; the destructor calls it.
  void stop();

  bool running() const { return Http.running(); }
  uint16_t port() const { return Http.port(); }
  uint64_t scrapesServed() const { return Http.requestsServed(); }

  /// The merged live view: a fresh source snapshot plus window-derived
  /// rates and the SLO block.  Thread-safe.
  obs::Snapshot liveSnapshot();

  /// Forces one window tick now (sample the source, push, evaluate SLOs);
  /// the ticker thread calls this on its interval.  Exposed so tests can
  /// drive window time deterministically.
  void tickNow();

  /// Snapshot of the current SLO statuses (copy, taken under the lock).
  std::vector<obs::live::SloStatus> sloStatuses() const;

  /// Window resets observed (worker-pool restarts detected by the
  /// aggregator).
  uint64_t windowResets() const;

private:
  void tickerLoop();
  HttpResponse handle(const HttpRequest &Req);

  TelemetryConfig Cfg;
  Source Src;
  uint64_t StartNanos = 0;

  mutable std::mutex M; ///< Guards Agg + Slos (ticker vs scrape threads).
  obs::live::WindowedAggregator Agg;
  obs::live::SloSet Slos;
  /// Workload-characterization drift: the previous tick's windowed
  /// latency-path mix and the total-variation distance of the current one
  /// against it (the dragon4_path_mix_drift gauge).
  std::vector<std::pair<std::string, uint64_t>> PrevPathMix;
  double PathMixDrift = 0;

  HttpServer Http;
  std::thread Ticker;
  std::condition_variable TickerCv;
  std::mutex TickerM;
  bool TickerStop = false;
};

} // namespace dragon4::svc

#endif // DRAGON4_SVC_TELEMETRY_H
