//===- svc/telemetry.cpp - Live telemetry service ---------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "svc/telemetry.h"

#include "obs/export.h"
#include "prof/sampler.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

using namespace dragon4;
using namespace dragon4::obs;
using namespace dragon4::svc;

TelemetryService::TelemetryService(TelemetryConfig Cfg_, Source Src_)
    : Cfg(std::move(Cfg_)), Src(std::move(Src_)),
      Agg(Cfg.WindowBuckets ? Cfg.WindowBuckets : 1) {
  for (const obs::live::SloRule &R : Cfg.Slos)
    Slos.add(R);
}

TelemetryService::~TelemetryService() { stop(); }

bool TelemetryService::start(std::string *Err) {
  if (running())
    return true;
  StartNanos = obs::nowNanos();
  if (!Http.start(Cfg.Port, [this](const HttpRequest &R) { return handle(R); },
                  Err))
    return false;
  if (Cfg.ProfileHz)
    prof::StackSampler::instance().start(Cfg.ProfileHz);
  // Seed the window so the first real tick already has a baseline to
  // difference against.
  tickNow();
  {
    std::lock_guard<std::mutex> Lock(TickerM);
    TickerStop = false;
  }
  Ticker = std::thread([this] { tickerLoop(); });
  return true;
}

void TelemetryService::stop() {
  if (Ticker.joinable()) {
    {
      std::lock_guard<std::mutex> Lock(TickerM);
      TickerStop = true;
    }
    TickerCv.notify_all();
    Ticker.join();
  }
  Http.stop();
  if (Cfg.ProfileHz)
    prof::StackSampler::instance().stop();
}

void TelemetryService::tickerLoop() {
  std::unique_lock<std::mutex> Lock(TickerM);
  const auto Interval = std::chrono::nanoseconds(Cfg.TickNanos);
  while (!TickerStop) {
    if (TickerCv.wait_for(Lock, Interval, [this] { return TickerStop; }))
      break;
    Lock.unlock();
    tickNow();
    Lock.lock();
  }
}

void TelemetryService::tickNow() {
  Snapshot Snap = Src();
  std::lock_guard<std::mutex> Lock(M);
  Agg.push(obs::nowNanos(), std::move(Snap));
  obs::live::WindowView View = Agg.view();
  Slos.evaluate(View);
  // Workload drift: how far the latency-path mix of this window moved from
  // the previous tick's window (total-variation distance of the shares).
  if (View.Valid) {
    std::vector<std::pair<std::string, uint64_t>> Mix =
        View.seriesCounts("dragon4_latency_ns");
    PathMixDrift = obs::live::mixDrift(PrevPathMix, Mix);
    PrevPathMix = std::move(Mix);
  }
}

std::vector<obs::live::SloStatus> TelemetryService::sloStatuses() const {
  std::lock_guard<std::mutex> Lock(M);
  return Slos.statuses();
}

uint64_t TelemetryService::windowResets() const {
  std::lock_guard<std::mutex> Lock(M);
  return Agg.resets();
}

obs::Snapshot TelemetryService::liveSnapshot() {
  // Fresh cumulative state first (scrape-to-scrape counter movement comes
  // from here, not from the window tick), then the window/SLO view.
  Snapshot Snap = Src();
  std::lock_guard<std::mutex> Lock(M);
  obs::live::WindowView View = Agg.view();
  Snap.addGauge("dragon4_window_resets", Agg.resets());
  Snap.addGauge("dragon4_window_samples", View.Samples);
  if (View.Valid) {
    Snap.addDerived("window_span_seconds",
                    static_cast<double>(View.SpanNanos) / 1e9);
    double Conv = View.rate("dragon4_conversions_total");
    if (Conv > 0)
      Snap.addDerived("window_conversions_per_second", Conv);
    double Values = View.rate("dragon4_batch_values_total");
    if (Values > 0)
      Snap.addDerived("window_batch_values_per_second", Values);
    uint64_t Nanos = View.delta("dragon4_batch_nanos_total");
    uint64_t NVals = View.delta("dragon4_batch_values_total");
    if (Nanos && NVals)
      Snap.addDerived("window_batch_mean_ns_per_value",
                      static_cast<double>(Nanos) /
                          static_cast<double>(NVals));
    // The windowed latency percentiles, one derived triple per labeled
    // latency cell that saw traffic (the SLO inputs, made scrapable).
    for (const SnapshotHistogram &H : View.Histograms) {
      if (H.Name != "dragon4_latency_ns" || H.Count == 0)
        continue;
      std::string Key = "window_latency";
      for (const auto &[K, V] : H.Labels) {
        Key += '_';
        Key += V;
      }
      Snap.addDerived(Key + "_p50_ns", H.P50);
      Snap.addDerived(Key + "_p95_ns", H.P95);
      Snap.addDerived(Key + "_p99_ns", H.P99);
    }
    Snap.addDerived("dragon4_path_mix_drift", PathMixDrift);
  }
  Slos.exportInto(Snap);
  return Snap;
}

HttpResponse TelemetryService::handle(const HttpRequest &Req) {
  HttpResponse Resp;
  if (Req.Target == "/metrics") {
    Resp.ContentType = "text/plain; version=0.0.4; charset=utf-8";
    Resp.Body = renderPrometheus(liveSnapshot());
    return Resp;
  }
  if (Req.Target == "/stats.json") {
    Resp.ContentType = "application/json";
    Resp.Body = renderStatsJson(liveSnapshot());
    return Resp;
  }
  if (Req.Target == "/exemplars.json") {
    Resp.ContentType = "application/json";
    Resp.Body = renderExemplarsJson(liveSnapshot());
    return Resp;
  }
  if (Req.Target == "/healthz") {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), "ok uptime_seconds=%.1f\n",
                  static_cast<double>(obs::nowNanos() - StartNanos) / 1e9);
    Resp.Body = Buf;
    return Resp;
  }
  if (Req.Target == "/profile.folded") {
    Resp.Body = prof::StackSampler::instance().folded();
    if (Resp.Body.empty())
      Resp.Body = Cfg.ProfileHz
                      ? "idle 0\n"
                      : "# sampling profiler off (start with --profile-hz)\n";
    return Resp;
  }
  if (Req.Target == "/") {
    Resp.Body = "dragon4 telemetry service\n"
                "  /metrics          Prometheus text exposition\n"
                "  /stats.json       dragon4.stats.v1 JSON\n"
                "  /exemplars.json   dragon4.exemplars.v1 worst-case list\n"
                "  /healthz          liveness + uptime\n"
                "  /profile.folded   sampling-profiler folded stacks\n";
    return Resp;
  }
  Resp.Status = 404;
  Resp.Body = "unknown endpoint; see /\n";
  return Resp;
}
