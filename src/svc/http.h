//===- svc/http.h - Embedded blocking HTTP/1.1 exporter ----------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately tiny HTTP/1.1 server for the telemetry endpoints: one
/// dedicated accept thread, blocking I/O, GET only, Connection: close on
/// every response.  Scrapes arrive a few times a second at most, so there
/// is nothing to win from an event loop -- what matters is that the
/// server is dependency-free (POSIX sockets only), binds loopback by
/// default, and shuts down cleanly: the accept loop polls with a short
/// timeout so stop() never waits on a connection that isn't coming.
///
/// httpGet is the matching client, shared by tools/obs_top and the
/// service tests, so the stack is exercised end-to-end through real
/// sockets without curl.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_SVC_HTTP_H
#define DRAGON4_SVC_HTTP_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace dragon4::svc {

struct HttpRequest {
  std::string Method; ///< "GET" (anything else is answered 405).
  std::string Target; ///< Request target, e.g. "/metrics".
};

struct HttpResponse {
  int Status = 200;
  std::string ContentType = "text/plain; charset=utf-8";
  std::string Body;
};

/// The embedded exporter server.  start() binds and spawns the accept
/// thread; the handler runs on that thread (serialize your own state).
class HttpServer {
public:
  using Handler = std::function<HttpResponse(const HttpRequest &)>;

  HttpServer() = default;
  ~HttpServer() { stop(); }
  HttpServer(const HttpServer &) = delete;
  HttpServer &operator=(const HttpServer &) = delete;

  /// Binds 127.0.0.1:\p Port (0 picks an ephemeral port, readable from
  /// port() afterwards) and starts serving \p H.  Returns false with an
  /// explanation in \p Err on bind/listen failure.
  bool start(uint16_t Port, Handler H, std::string *Err = nullptr);

  /// Stops the accept loop and joins the thread.  Idempotent.
  void stop();

  bool running() const { return ListenFd >= 0; }
  uint16_t port() const { return Port_; }

  /// Requests served since start() (accept-thread writes, any-thread
  /// reads; used by tests and the /healthz payload).
  uint64_t requestsServed() const {
    return Served.load(std::memory_order_relaxed);
  }

private:
  void acceptLoop();
  void serveConnection(int Fd);

  int ListenFd = -1;
  uint16_t Port_ = 0;
  Handler Handler_;
  std::thread Thread;
  std::atomic<bool> StopFlag{false};
  std::atomic<uint64_t> Served{0};
};

/// Blocking HTTP/1.0-style GET of http://\p Host:\p Port\p Target.
/// Returns the status code (and fills \p Body with the response body), or
/// -1 on connect/read failure.
int httpGet(const std::string &Host, uint16_t Port, const std::string &Target,
            std::string &Body, int TimeoutMs = 5000);

} // namespace dragon4::svc

#endif // DRAGON4_SVC_HTTP_H
