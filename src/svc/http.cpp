//===- svc/http.cpp - Embedded blocking HTTP/1.1 exporter -------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "svc/http.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace dragon4;
using namespace dragon4::svc;

namespace {

const char *statusText(int Status) {
  switch (Status) {
  case 200:
    return "OK";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  default:
    return "Internal Server Error";
  }
}

void setIoTimeout(int Fd, int Millis) {
  timeval Tv{};
  Tv.tv_sec = Millis / 1000;
  Tv.tv_usec = (Millis % 1000) * 1000;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
}

bool sendAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

} // namespace

bool HttpServer::start(uint16_t Port, Handler H, std::string *Err) {
  auto Fail = [&](const char *What) {
    if (Err)
      *Err = std::string(What) + ": " + std::strerror(errno);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };

  if (running())
    return Fail("already running");
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return Fail("bind");
  if (::listen(ListenFd, 16) != 0)
    return Fail("listen");

  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0)
    return Fail("getsockname");
  Port_ = ntohs(Addr.sin_port);

  Handler_ = std::move(H);
  StopFlag.store(false, std::memory_order_relaxed);
  Thread = std::thread([this] { acceptLoop(); });
  return true;
}

void HttpServer::stop() {
  if (!running())
    return;
  StopFlag.store(true, std::memory_order_relaxed);
  if (Thread.joinable())
    Thread.join();
  ::close(ListenFd);
  ListenFd = -1;
  Port_ = 0;
}

void HttpServer::acceptLoop() {
  while (!StopFlag.load(std::memory_order_relaxed)) {
    pollfd Pfd{ListenFd, POLLIN, 0};
    // The poll timeout bounds how stale the stop flag can get: stop()
    // joins within ~100ms even if no connection ever arrives.
    int Ready = ::poll(&Pfd, 1, 100);
    if (Ready <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    serveConnection(Fd);
    ::close(Fd);
  }
}

void HttpServer::serveConnection(int Fd) {
  setIoTimeout(Fd, 2000);

  // Read until the end of the header block; the endpoints take no bodies.
  std::string Buf;
  char Chunk[1024];
  while (Buf.find("\r\n\r\n") == std::string::npos && Buf.size() < 16384) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0)
      return;
    Buf.append(Chunk, static_cast<size_t>(N));
  }

  HttpRequest Req;
  size_t LineEnd = Buf.find("\r\n");
  std::string Line = Buf.substr(0, LineEnd);
  size_t Sp1 = Line.find(' ');
  size_t Sp2 = Sp1 == std::string::npos ? std::string::npos
                                        : Line.find(' ', Sp1 + 1);
  HttpResponse Resp;
  if (Sp1 == std::string::npos || Sp2 == std::string::npos) {
    Resp.Status = 400;
    Resp.Body = "malformed request line\n";
  } else {
    Req.Method = Line.substr(0, Sp1);
    Req.Target = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
    if (Req.Method != "GET" && Req.Method != "HEAD") {
      Resp.Status = 405;
      Resp.Body = "only GET is served here\n";
    } else {
      Resp = Handler_(Req);
    }
  }

  char Header[256];
  int N = std::snprintf(Header, sizeof(Header),
                        "HTTP/1.1 %d %s\r\n"
                        "Content-Type: %s\r\n"
                        "Content-Length: %zu\r\n"
                        "Connection: close\r\n"
                        "\r\n",
                        Resp.Status, statusText(Resp.Status),
                        Resp.ContentType.c_str(), Resp.Body.size());
  if (N <= 0)
    return;
  if (!sendAll(Fd, Header, static_cast<size_t>(N)))
    return;
  if (Req.Method != "HEAD")
    sendAll(Fd, Resp.Body.data(), Resp.Body.size());
  Served.fetch_add(1, std::memory_order_relaxed);
}

int dragon4::svc::httpGet(const std::string &Host, uint16_t Port,
                          const std::string &Target, std::string &Body,
                          int TimeoutMs) {
  Body.clear();
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  setIoTimeout(Fd, TimeoutMs);

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    ::close(Fd);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }

  std::string Req = "GET " + Target + " HTTP/1.1\r\nHost: " + Host +
                    "\r\nConnection: close\r\n\r\n";
  if (!sendAll(Fd, Req.data(), Req.size())) {
    ::close(Fd);
    return -1;
  }

  std::string Raw;
  char Chunk[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      ::close(Fd);
      return -1;
    }
    if (N == 0)
      break;
    Raw.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);

  // "HTTP/1.1 NNN ..." -- the three digits after the first space.
  size_t Sp = Raw.find(' ');
  if (Sp == std::string::npos || Sp + 4 > Raw.size())
    return -1;
  int Status = std::atoi(Raw.c_str() + Sp + 1);
  size_t HeaderEnd = Raw.find("\r\n\r\n");
  if (HeaderEnd != std::string::npos)
    Body = Raw.substr(HeaderEnd + 4);
  return Status > 0 ? Status : -1;
}
