/*===- abi/dragon4_to_chars.h - Stable C ABI ---------------------*- C -*-===*
 *
 * Part of libdragon4. SPDX-License-Identifier: MIT
 *
 *===----------------------------------------------------------------------===*
 *
 * The stable C interface to the conversion engine: shortest-form and
 * fixed-precision printing plus correctly rounded parsing, for all five
 * supported formats, addressed by raw encoding bits so no caller-side
 * floating-point types are needed.  Pure C99 -- this header includes only
 * <stddef.h>/<stdint.h> and is compiled as C in CI (tests/abi/abi_c_smoke.c).
 *
 * Contract:
 *
 *   locale-free       output and parsing never consult the C locale; the
 *                     radix point is always '.'.
 *   allocation-free   conversions draw every intermediate from a scratch
 *                     workspace.  The default entry points use one
 *                     thread-local scratch; the _scratch variants take a
 *                     caller-owned one (dragon4_scratch_create).  A scratch
 *                     warms up over its first few conversions (its reusable
 *                     buffers grow once); every later call performs zero
 *                     heap allocations, including the exact-arithmetic
 *                     fallback path.
 *   reentrant         no global mutable state.  Distinct scratches are
 *                     fully independent; the thread-local default makes the
 *                     plain entry points safe to call concurrently from any
 *                     number of threads.
 *   no truncation     an undersized buffer is an error, not a silent clip:
 *                     DRAGON4_ERR_SIZE is returned and *length holds the
 *                     required size, so the caller can retry.  Buffer
 *                     contents are unspecified after DRAGON4_ERR_SIZE.
 *
 * Signal-safety caveat: the conversion paths themselves are lock-free and
 * allocation-free once a scratch is warm, but a *cold* scratch allocates
 * and the thread-local default is lazily constructed, so these functions
 * are NOT async-signal-safe in general.  A handler that must format may
 * pre-warm a dedicated scratch outside the handler and guarantee the
 * handler is the only user of it; see docs/api.md.
 *
 * Buffer sizing: dragon4_max_chars() (or the DRAGON4_MAX_CHARS10_* bounds
 * below, compile-time constants for base 10) bounds every shortest-form
 * output, so a caller buffer of that size never sees DRAGON4_ERR_SIZE from
 * dragon4_to_chars.  Fixed-precision output length is dominated by the
 * requested fraction digits; query with a zero-capacity probe call.
 *
 *===----------------------------------------------------------------------===*/

#ifndef DRAGON4_ABI_DRAGON4_TO_CHARS_H
#define DRAGON4_ABI_DRAGON4_TO_CHARS_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Supported formats, addressed by raw encoding bits.  Encodings of 64 bits
 * or fewer live entirely in bits_lo (high bits ignored); extended80 puts
 * the 16-bit sign+exponent word in bits_hi's low bits; binary128 splits
 * into low/high 64-bit halves. */
typedef enum dragon4_format {
  DRAGON4_FORMAT_BINARY16 = 0,
  DRAGON4_FORMAT_BINARY32 = 1,
  DRAGON4_FORMAT_BINARY64 = 2,
  DRAGON4_FORMAT_EXTENDED80 = 3,
  DRAGON4_FORMAT_BINARY128 = 4
} dragon4_format;

typedef enum dragon4_status {
  DRAGON4_OK = 0,
  /* The buffer is too small; *length holds the required size. */
  DRAGON4_ERR_SIZE = 1,
  /* An argument is out of range (bad format/base/enum value, required
   * pointer NULL, negative precision).  Nothing was written. */
  DRAGON4_ERR_BAD_ARGUMENT = 2,
  /* dragon4_from_chars: no valid literal prefix. */
  DRAGON4_ERR_MALFORMED = 3
} dragon4_status;

/* Reader model the output must survive (see the library's BoundaryMode).
 * The default, nearest-even, targets IEEE round-to-nearest readers and is
 * what shortest-form output conventionally means. */
typedef enum dragon4_boundaries {
  DRAGON4_BOUNDARIES_NEAREST_EVEN = 0,
  DRAGON4_BOUNDARIES_CONSERVATIVE = 1,
  DRAGON4_BOUNDARIES_BOTH_INCLUSIVE = 2,
  DRAGON4_BOUNDARIES_LOW_INCLUSIVE = 3,
  DRAGON4_BOUNDARIES_HIGH_INCLUSIVE = 4
} dragon4_boundaries;

/* Writer-side tie strategy for digits exactly halfway. */
typedef enum dragon4_ties {
  DRAGON4_TIES_ROUND_UP = 0,
  DRAGON4_TIES_ROUND_EVEN = 1,
  DRAGON4_TIES_ROUND_DOWN = 2
} dragon4_ties;

/* Conversion options.  All-zeros is the default configuration (base 10,
 * nearest-even reader, round-up ties, '#' marks, lowercase, 'e' marker) --
 * initialize with DRAGON4_OPTIONS_INIT, or pass NULL for defaults. */
typedef struct dragon4_options {
  uint8_t base;            /* 0 = base 10; otherwise 2..36.            */
  uint8_t boundaries;      /* a dragon4_boundaries value.              */
  uint8_t ties;            /* a dragon4_ties value.                    */
  uint8_t marks_as_zeros;  /* nonzero: insignificant trailing positions
                            * render as '0' instead of '#'.            */
  uint8_t uppercase_digits;/* nonzero: 'A'-'Z' for digit values 10-35. */
  char exponent_marker;    /* 0 = 'e'.                                 */
} dragon4_options;

#define DRAGON4_OPTIONS_INIT {0, 0, 0, 0, 0, 0}

/* Compile-time shortest-form output bounds for base 10 (from the engine's
 * maxShortestBufferSize<T>; asserted against it in abi.cpp).  A buffer of
 * DRAGON4_MAX_CHARS10 bytes fits any format's shortest form. */
enum {
  DRAGON4_MAX_CHARS10_BINARY16 = 23,
  DRAGON4_MAX_CHARS10_BINARY32 = 23,
  DRAGON4_MAX_CHARS10_BINARY64 = 24,
  DRAGON4_MAX_CHARS10_EXTENDED80 = 29,
  DRAGON4_MAX_CHARS10_BINARY128 = 44,
  DRAGON4_MAX_CHARS10 = 44
};

/* Runtime counterpart covering every base (2..36; base 0 means 10):
 * the tight engine bound on any dragon4_to_chars output for the format.
 * Returns 0 for an invalid format or base. */
size_t dragon4_max_chars(dragon4_format format, unsigned base);

/* Opaque conversion workspace (wraps the engine's Scratch).  One scratch,
 * one thread at a time. */
typedef struct dragon4_scratch dragon4_scratch;
dragon4_scratch *dragon4_scratch_create(void);
void dragon4_scratch_destroy(dragon4_scratch *scratch);

/* Shortest round-tripping form of the value encoded by bits_lo/bits_hi.
 * On DRAGON4_OK, *length is the number of bytes written (no NUL is ever
 * written or counted).  On DRAGON4_ERR_SIZE, *length is the required
 * size.  options may be NULL for defaults.  buffer may be NULL only with
 * capacity 0 (a pure size query).  Uses the calling thread's scratch. */
dragon4_status dragon4_to_chars(dragon4_format format, uint64_t bits_lo,
                                uint64_t bits_hi,
                                const dragon4_options *options, char *buffer,
                                size_t capacity, size_t *length);

/* Same, drawing from a caller-owned scratch. */
dragon4_status dragon4_to_chars_scratch(dragon4_scratch *scratch,
                                        dragon4_format format,
                                        uint64_t bits_lo, uint64_t bits_hi,
                                        const dragon4_options *options,
                                        char *buffer, size_t capacity,
                                        size_t *length);

/* Correctly rounded positional rendering with exactly fraction_digits
 * places after the point (the C ABI counterpart of toFixed). */
dragon4_status dragon4_to_chars_fixed(dragon4_format format,
                                      uint64_t bits_lo, uint64_t bits_hi,
                                      int fraction_digits,
                                      const dragon4_options *options,
                                      char *buffer, size_t capacity,
                                      size_t *length);

dragon4_status dragon4_to_chars_fixed_scratch(dragon4_scratch *scratch,
                                              dragon4_format format,
                                              uint64_t bits_lo,
                                              uint64_t bits_hi,
                                              int fraction_digits,
                                              const dragon4_options *options,
                                              char *buffer, size_t capacity,
                                              size_t *length);

/* Correctly rounded (nearest-even) parse of the longest valid base-10
 * literal prefix of text[0..text_length).  On DRAGON4_OK the encoding
 * lands in *bits_lo and *bits_hi, and *consumed (optional, may be NULL) is the
 * number of bytes of the literal.  Grammar: strtod's decimal subset plus
 * inf/infinity/nan, no locale, no whitespace skip, no hex.  The decisive
 * fast path allocates nothing; the provably undecidable residue (literals
 * truncated past 19 significant digits whose bracketing values round
 * differently) resolves through the exact bignum reader, which may. */
dragon4_status dragon4_from_chars(dragon4_format format, const char *text,
                                  size_t text_length, uint64_t *bits_lo,
                                  uint64_t *bits_hi, size_t *consumed);

/* Typed conveniences for the hardware formats. */
dragon4_status dragon4_double_to_chars(double value, char *buffer,
                                       size_t capacity, size_t *length);
dragon4_status dragon4_float_to_chars(float value, char *buffer,
                                      size_t capacity, size_t *length);
dragon4_status dragon4_chars_to_double(const char *text, size_t text_length,
                                       double *value, size_t *consumed);
dragon4_status dragon4_chars_to_float(const char *text, size_t text_length,
                                      float *value, size_t *consumed);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* DRAGON4_ABI_DRAGON4_TO_CHARS_H */
