//===- abi/abi.cpp - Stable C ABI over the conversion engine ----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C entry points are thin, total wrappers over engine::format /
/// engine::formatFixed / parse::parseFloat: argument validation and enum
/// mapping here, all conversion work in the engine, output through the
/// same BufferSink path as every C++ surface -- so dragon4_to_chars is
/// byte-identical to engine::format and toShortest by construction (the
/// differential fuzzer tools/fuzz_to_chars re-proves it every run).
///
/// The required-size contract (DRAGON4_ERR_SIZE instead of a silent clip)
/// falls straight out of the sink: BufferSink counts the full rendering
/// even past the capacity, so the wrapper only compares.
///
//===----------------------------------------------------------------------===//

#include "abi/dragon4_to_chars.h"

#include "engine/engine.h"
#include "fp/format_traits.h"
#include "parse/parse.h"

#include <new>
#include <string_view>

using namespace dragon4;

/// The opaque workspace is exactly an engine Scratch.
struct dragon4_scratch {
  engine::Scratch S;
};

namespace {

// The header's compile-time bounds must be the engine's.
static_assert(DRAGON4_MAX_CHARS10_BINARY16 ==
                  engine::maxShortestBufferSize<Binary16>(10) &&
              DRAGON4_MAX_CHARS10_BINARY32 ==
                  engine::maxShortestBufferSize<float>(10) &&
              DRAGON4_MAX_CHARS10_BINARY64 ==
                  engine::maxShortestBufferSize<double>(10) &&
              DRAGON4_MAX_CHARS10_EXTENDED80 ==
                  engine::maxShortestBufferSize<long double>(10) &&
              DRAGON4_MAX_CHARS10_BINARY128 ==
                  engine::maxShortestBufferSize<Binary128>(10) &&
              DRAGON4_MAX_CHARS10 ==
                  engine::maxShortestBufferSize<Binary128>(10),
              "C-ABI buffer-bound table drifted from the engine");

// The C ties enum mirrors TieBreak's order; boundaries are remapped so
// that all-zeros options mean the library defaults (nearest-even).
static_assert(static_cast<int>(TieBreak::RoundUp) == DRAGON4_TIES_ROUND_UP &&
              static_cast<int>(TieBreak::RoundEven) ==
                  DRAGON4_TIES_ROUND_EVEN &&
              static_cast<int>(TieBreak::RoundDown) ==
                  DRAGON4_TIES_ROUND_DOWN,
              "C-ABI tie enum drifted from TieBreak");

constexpr BoundaryMode BoundaryMap[5] = {
    BoundaryMode::NearestEven,   BoundaryMode::Conservative,
    BoundaryMode::BothInclusive, BoundaryMode::LowInclusive,
    BoundaryMode::HighInclusive,
};

/// Maps C options onto PrintOptions; false on any out-of-range field.
bool resolveOptions(const dragon4_options *In, PrintOptions &Out) {
  Out = PrintOptions{};
  if (!In)
    return true;
  unsigned Base = In->base == 0 ? 10u : In->base;
  if (Base < 2 || Base > 36)
    return false;
  if (In->boundaries > 4 || In->ties > 2)
    return false;
  Out.Base = Base;
  Out.Boundaries = BoundaryMap[In->boundaries];
  Out.Ties = static_cast<TieBreak>(In->ties);
  Out.Marks = In->marks_as_zeros ? MarkStyle::Zeros : MarkStyle::Hash;
  Out.UppercaseDigits = In->uppercase_digits != 0;
  Out.ExponentMarker = In->exponent_marker == 0 ? 'e' : In->exponent_marker;
  return true;
}

/// The default workspace: one lazily constructed Scratch per thread, which
/// is what makes the plain entry points reentrant across threads with no
/// locking and no caller bookkeeping.
engine::Scratch &threadScratch() {
  thread_local engine::Scratch S;
  return S;
}

template <typename T>
dragon4_status toCharsTyped(engine::Scratch &S, uint64_t Lo, uint64_t Hi,
                            const PrintOptions &Options, char *Buffer,
                            size_t Capacity, size_t *Length) {
  T Value = FormatTraits<T>::fromEncoding(Lo, Hi);
  size_t Required = engine::format(Value, Buffer, Capacity, Options, S);
  *Length = Required;
  return Required <= Capacity ? DRAGON4_OK : DRAGON4_ERR_SIZE;
}

template <typename T>
dragon4_status toCharsFixedTyped(engine::Scratch &S, uint64_t Lo, uint64_t Hi,
                                 int FractionDigits,
                                 const PrintOptions &Options, char *Buffer,
                                 size_t Capacity, size_t *Length) {
  T Value = FormatTraits<T>::fromEncoding(Lo, Hi);
  size_t Required = engine::formatFixed(Value, FractionDigits, Buffer,
                                        Capacity, Options, S);
  *Length = Required;
  return Required <= Capacity ? DRAGON4_OK : DRAGON4_ERR_SIZE;
}

dragon4_status toChars(engine::Scratch &S, dragon4_format Format,
                       uint64_t Lo, uint64_t Hi,
                       const dragon4_options *Options, char *Buffer,
                       size_t Capacity, size_t *Length) {
  if (!Length || (!Buffer && Capacity > 0))
    return DRAGON4_ERR_BAD_ARGUMENT;
  PrintOptions Resolved;
  if (!resolveOptions(Options, Resolved))
    return DRAGON4_ERR_BAD_ARGUMENT;
  switch (Format) {
  case DRAGON4_FORMAT_BINARY16:
    return toCharsTyped<Binary16>(S, Lo, Hi, Resolved, Buffer, Capacity,
                                  Length);
  case DRAGON4_FORMAT_BINARY32:
    return toCharsTyped<float>(S, Lo, Hi, Resolved, Buffer, Capacity, Length);
  case DRAGON4_FORMAT_BINARY64:
    return toCharsTyped<double>(S, Lo, Hi, Resolved, Buffer, Capacity,
                                Length);
  case DRAGON4_FORMAT_EXTENDED80:
    return toCharsTyped<long double>(S, Lo, Hi, Resolved, Buffer, Capacity,
                                     Length);
  case DRAGON4_FORMAT_BINARY128:
    return toCharsTyped<Binary128>(S, Lo, Hi, Resolved, Buffer, Capacity,
                                   Length);
  }
  return DRAGON4_ERR_BAD_ARGUMENT;
}

dragon4_status toCharsFixed(engine::Scratch &S, dragon4_format Format,
                            uint64_t Lo, uint64_t Hi, int FractionDigits,
                            const dragon4_options *Options, char *Buffer,
                            size_t Capacity, size_t *Length) {
  if (!Length || (!Buffer && Capacity > 0) || FractionDigits < 0)
    return DRAGON4_ERR_BAD_ARGUMENT;
  PrintOptions Resolved;
  if (!resolveOptions(Options, Resolved))
    return DRAGON4_ERR_BAD_ARGUMENT;
  switch (Format) {
  case DRAGON4_FORMAT_BINARY16:
    return toCharsFixedTyped<Binary16>(S, Lo, Hi, FractionDigits, Resolved,
                                       Buffer, Capacity, Length);
  case DRAGON4_FORMAT_BINARY32:
    return toCharsFixedTyped<float>(S, Lo, Hi, FractionDigits, Resolved,
                                    Buffer, Capacity, Length);
  case DRAGON4_FORMAT_BINARY64:
    return toCharsFixedTyped<double>(S, Lo, Hi, FractionDigits, Resolved,
                                     Buffer, Capacity, Length);
  case DRAGON4_FORMAT_EXTENDED80:
    return toCharsFixedTyped<long double>(S, Lo, Hi, FractionDigits, Resolved,
                                          Buffer, Capacity, Length);
  case DRAGON4_FORMAT_BINARY128:
    return toCharsFixedTyped<Binary128>(S, Lo, Hi, FractionDigits, Resolved,
                                        Buffer, Capacity, Length);
  }
  return DRAGON4_ERR_BAD_ARGUMENT;
}

template <typename T>
dragon4_status fromCharsTyped(const char *Text, size_t TextLength,
                              uint64_t *Lo, uint64_t *Hi, size_t *Consumed) {
  parse::ParseResult<T> Result = parse::parseFloat<T>(
      std::string_view(Text, TextLength),
      static_cast<engine::EngineStats *>(nullptr));
  if (Consumed)
    *Consumed = Result.Consumed;
  if (!Result.ok())
    return DRAGON4_ERR_MALFORMED;
  FormatTraits<T>::encodingBits(Result.Value, *Lo, *Hi);
  return DRAGON4_OK;
}

} // namespace

extern "C" {

size_t dragon4_max_chars(dragon4_format format, unsigned base) {
  unsigned Base = base == 0 ? 10u : base;
  if (Base < 2 || Base > 36)
    return 0;
  switch (format) {
  case DRAGON4_FORMAT_BINARY16:
    return engine::maxShortestBufferSize<Binary16>(Base);
  case DRAGON4_FORMAT_BINARY32:
    return engine::maxShortestBufferSize<float>(Base);
  case DRAGON4_FORMAT_BINARY64:
    return engine::maxShortestBufferSize<double>(Base);
  case DRAGON4_FORMAT_EXTENDED80:
    return engine::maxShortestBufferSize<long double>(Base);
  case DRAGON4_FORMAT_BINARY128:
    return engine::maxShortestBufferSize<Binary128>(Base);
  }
  return 0;
}

dragon4_scratch *dragon4_scratch_create(void) {
  return new (std::nothrow) dragon4_scratch;
}

void dragon4_scratch_destroy(dragon4_scratch *scratch) { delete scratch; }

dragon4_status dragon4_to_chars(dragon4_format format, uint64_t bits_lo,
                                uint64_t bits_hi,
                                const dragon4_options *options, char *buffer,
                                size_t capacity, size_t *length) {
  return toChars(threadScratch(), format, bits_lo, bits_hi, options, buffer,
                 capacity, length);
}

dragon4_status dragon4_to_chars_scratch(dragon4_scratch *scratch,
                                        dragon4_format format,
                                        uint64_t bits_lo, uint64_t bits_hi,
                                        const dragon4_options *options,
                                        char *buffer, size_t capacity,
                                        size_t *length) {
  if (!scratch)
    return DRAGON4_ERR_BAD_ARGUMENT;
  return toChars(scratch->S, format, bits_lo, bits_hi, options, buffer,
                 capacity, length);
}

dragon4_status dragon4_to_chars_fixed(dragon4_format format,
                                      uint64_t bits_lo, uint64_t bits_hi,
                                      int fraction_digits,
                                      const dragon4_options *options,
                                      char *buffer, size_t capacity,
                                      size_t *length) {
  return toCharsFixed(threadScratch(), format, bits_lo, bits_hi,
                      fraction_digits, options, buffer, capacity, length);
}

dragon4_status dragon4_to_chars_fixed_scratch(dragon4_scratch *scratch,
                                              dragon4_format format,
                                              uint64_t bits_lo,
                                              uint64_t bits_hi,
                                              int fraction_digits,
                                              const dragon4_options *options,
                                              char *buffer, size_t capacity,
                                              size_t *length) {
  if (!scratch)
    return DRAGON4_ERR_BAD_ARGUMENT;
  return toCharsFixed(scratch->S, format, bits_lo, bits_hi, fraction_digits,
                      options, buffer, capacity, length);
}

dragon4_status dragon4_from_chars(dragon4_format format, const char *text,
                                  size_t text_length, uint64_t *bits_lo,
                                  uint64_t *bits_hi, size_t *consumed) {
  if (!bits_lo || !bits_hi || (!text && text_length > 0))
    return DRAGON4_ERR_BAD_ARGUMENT;
  switch (format) {
  case DRAGON4_FORMAT_BINARY16:
    return fromCharsTyped<Binary16>(text, text_length, bits_lo, bits_hi,
                                    consumed);
  case DRAGON4_FORMAT_BINARY32:
    return fromCharsTyped<float>(text, text_length, bits_lo, bits_hi,
                                 consumed);
  case DRAGON4_FORMAT_BINARY64:
    return fromCharsTyped<double>(text, text_length, bits_lo, bits_hi,
                                  consumed);
  case DRAGON4_FORMAT_EXTENDED80:
    return fromCharsTyped<long double>(text, text_length, bits_lo, bits_hi,
                                       consumed);
  case DRAGON4_FORMAT_BINARY128:
    return fromCharsTyped<Binary128>(text, text_length, bits_lo, bits_hi,
                                     consumed);
  }
  return DRAGON4_ERR_BAD_ARGUMENT;
}

dragon4_status dragon4_double_to_chars(double value, char *buffer,
                                       size_t capacity, size_t *length) {
  uint64_t Lo, Hi;
  FormatTraits<double>::encodingBits(value, Lo, Hi);
  return dragon4_to_chars(DRAGON4_FORMAT_BINARY64, Lo, Hi, nullptr, buffer,
                          capacity, length);
}

dragon4_status dragon4_float_to_chars(float value, char *buffer,
                                      size_t capacity, size_t *length) {
  uint64_t Lo, Hi;
  FormatTraits<float>::encodingBits(value, Lo, Hi);
  return dragon4_to_chars(DRAGON4_FORMAT_BINARY32, Lo, Hi, nullptr, buffer,
                          capacity, length);
}

dragon4_status dragon4_chars_to_double(const char *text, size_t text_length,
                                       double *value, size_t *consumed) {
  if (!value)
    return DRAGON4_ERR_BAD_ARGUMENT;
  uint64_t Lo = 0, Hi = 0;
  dragon4_status Status = dragon4_from_chars(DRAGON4_FORMAT_BINARY64, text,
                                             text_length, &Lo, &Hi, consumed);
  if (Status == DRAGON4_OK)
    *value = FormatTraits<double>::fromEncoding(Lo, Hi);
  return Status;
}

dragon4_status dragon4_chars_to_float(const char *text, size_t text_length,
                                      float *value, size_t *consumed) {
  if (!value)
    return DRAGON4_ERR_BAD_ARGUMENT;
  uint64_t Lo = 0, Hi = 0;
  dragon4_status Status = dragon4_from_chars(DRAGON4_FORMAT_BINARY32, text,
                                             text_length, &Lo, &Hi, consumed);
  if (Status == DRAGON4_OK)
    *value = FormatTraits<float>::fromEncoding(Lo, Hi);
  return Status;
}

} // extern "C"
