//===- prof/report.cpp - Cost-attribution and folded-stack output -----------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "prof/report.h"

#include "prof/perf.h"
#include "prof/phases.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

using namespace dragon4;
using namespace dragon4::prof;

namespace {

void appendF(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf)
                        ? static_cast<size_t>(N)
                        : sizeof(Buf) - 1);
}

/// Stack prefix for spans directly under phase index \p Parent.  Every
/// non-Total phase nests under Total in the engine's span topology, so two
/// levels of reconstruction give exact full paths.
std::string stackPrefix(size_t Parent) {
  if (Parent == PhaseRootIndex)
    return "dragon4";
  Phase P = static_cast<Phase>(Parent);
  if (P == Phase::Total)
    return "dragon4;total";
  return std::string("dragon4;total;") + phaseName(P);
}

} // namespace

double dragon4::prof::attributionCoverage(const obs::Registry &Reg) {
  const obs::PhaseStats &Total = Reg.phase(Phase::Total);
  if (Total.GrossTicksTotal == 0)
    return 0.0;
  double Unattributed = static_cast<double>(Total.SelfTicksTotal);
  return 1.0 - Unattributed / static_cast<double>(Total.GrossTicksTotal);
}

std::string dragon4::prof::renderCostReport(const obs::Registry &Reg) {
  const obs::PhaseStats &Total = Reg.phase(Phase::Total);
  const uint64_t Values = Total.Spans;
  const bool Perf = backendIsPerf();
  const char *TickUnit = Perf ? "cycles" : "ns";

  std::string Out;
  appendF(Out, "dragon4 cost attribution (backend: %s; %" PRIu64
               " profiled conversions)\n",
          backendName(backend()), Values);
  if (Values == 0) {
    Out += "  (nothing profiled: enable obs sampling and run conversions)\n";
    return Out;
  }

  appendF(Out, "  %-26s %10s %14s/value %7s %14s/value\n", "phase", "spans",
          TickUnit, "%total", "instr");
  const double Gross = static_cast<double>(Total.GrossTicksTotal);
  // Table order: pipeline order rather than enum order, Total's
  // unattributed glue last so the coverage line reads naturally above it.
  static constexpr Phase Order[] = {
      Phase::Decompose,  Phase::RyuPath,      Phase::FastPath,
      Phase::Estimator,  Phase::ScaleSetup,   Phase::Fixup,
      Phase::DigitLoop,  Phase::BigIntMul,    Phase::BigIntDivMod,
      Phase::Render,     Phase::Overhead,     Phase::Total};
  for (Phase P : Order) {
    const obs::PhaseStats &S = Reg.phase(P);
    if (S.Spans == 0 && S.SelfTicksTotal == 0)
      continue;
    const double PerValue =
        static_cast<double>(S.SelfTicksTotal) / static_cast<double>(Values);
    const double Share =
        Gross > 0 ? 100.0 * static_cast<double>(S.SelfTicksTotal) / Gross : 0;
    appendF(Out, "  %-26s %10" PRIu64 " %14.1f       %6.1f%% %14.1f\n",
            phaseLabel(P), S.Spans, PerValue, Share,
            static_cast<double>(S.Instructions) /
                static_cast<double>(Values));
  }
  appendF(Out, "  total measured: %.1f %s/value over %" PRIu64 " values\n",
          Gross / static_cast<double>(Values), TickUnit, Values);
  appendF(Out, "  coverage: %.1f%% of measured %s attributed to phases\n",
          100.0 * attributionCoverage(Reg), TickUnit);
  if (!Perf)
    Out += "  note: steady-clock fallback backend; ticks are nanoseconds "
           "and instruction counts are unavailable\n";
  return Out;
}

std::string dragon4::prof::renderFoldedStacks(const obs::Registry &Reg) {
  std::string Out;
  for (size_t Parent = 0; Parent <= NumPhases; ++Parent) {
    for (size_t Child = 0; Child < NumPhases; ++Child) {
      uint64_t Ticks =
          Reg.phaseParentTicks(Parent, static_cast<Phase>(Child));
      if (Ticks == 0)
        continue;
      appendF(Out, "%s;%s %" PRIu64 "\n", stackPrefix(Parent).c_str(),
              phaseName(static_cast<Phase>(Child)), Ticks);
    }
  }
  return Out;
}
