//===- prof/perf.cpp - Hardware counter groups with fallback ----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "prof/perf.h"

#include "prof/clock.h"
#include "support/testhooks.h"

#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

using namespace dragon4;
using namespace dragon4::prof;

bool dragon4::testhooks::ForceCounterFallback = false;

namespace {

#ifdef __linux__

int cachedTid() {
  static thread_local int Tid = static_cast<int>(::syscall(SYS_gettid));
  return Tid;
}

int perfEventOpen(perf_event_attr &Attr, int GroupFd) {
  return static_cast<int>(::syscall(SYS_perf_event_open, &Attr, /*pid=*/0,
                                    /*cpu=*/-1, GroupFd, /*flags=*/0UL));
}

perf_event_attr hardwareAttr(uint64_t Config) {
  perf_event_attr Attr;
  std::memset(&Attr, 0, sizeof(Attr));
  Attr.type = PERF_TYPE_HARDWARE;
  Attr.size = sizeof(Attr);
  Attr.config = Config;
  Attr.read_format = PERF_FORMAT_GROUP;
  Attr.exclude_kernel = 1;
  Attr.exclude_hv = 1;
  return Attr;
}

/// One probe per process: can an unprivileged cycles counter open at all?
bool probePerfEvents() {
  perf_event_attr Attr = hardwareAttr(PERF_COUNT_HW_CPU_CYCLES);
  int Fd = perfEventOpen(Attr, -1);
  if (Fd < 0)
    return false;
  ::close(Fd);
  return true;
}

#else

int cachedTid() { return 1; }
bool probePerfEvents() { return false; }

#endif // __linux__

} // namespace

const char *dragon4::prof::backendName(CounterBackend B) {
  switch (B) {
  case CounterBackend::PerfEvent:
    return "perf_event";
  case CounterBackend::SteadyClock:
    return "steady_clock";
  }
  return "?";
}

CounterBackend dragon4::prof::backend() {
  // The testhook wins on every call so tests can force the degradation
  // path after the probe has already cached a working perf backend.
  if (testhooks::ForceCounterFallback)
    return CounterBackend::SteadyClock;
  static const CounterBackend Detected = probePerfEvents()
                                             ? CounterBackend::PerfEvent
                                             : CounterBackend::SteadyClock;
  return Detected;
}

bool dragon4::prof::backendIsPerf() {
  return backend() == CounterBackend::PerfEvent;
}

uint64_t dragon4::prof::readOverheadTicks() {
  if (backend() == CounterBackend::SteadyClock)
    return clockOverheadNanos();
  static const uint64_t PerfOverhead = [] {
    PerfGroup Group;
    CounterSample A, B;
    uint64_t Min = UINT64_MAX;
    for (int I = 0; I < 128; ++I) {
      Group.read(A);
      Group.read(B);
      uint64_t Delta = B.Ticks - A.Ticks;
      if (Delta < Min)
        Min = Delta;
    }
    return Min == UINT64_MAX ? 0 : Min;
  }();
  return PerfOverhead;
}

void PerfGroup::close() {
#ifdef __linux__
  if (LeaderFd >= 0)
    ::close(LeaderFd);
  for (int &Fd : ExtraFds)
    if (Fd >= 0)
      ::close(Fd);
#endif
  LeaderFd = -1;
  ExtraFds[0] = ExtraFds[1] = ExtraFds[2] = -1;
  OwnerTid = 0;
}

bool PerfGroup::openOnThisThread() {
#ifdef __linux__
  int Tid = cachedTid();
  if (LeaderFd >= 0 && OwnerTid == Tid)
    return true;
  if (OpenFailed)
    return false;
  close();
  perf_event_attr Leader = hardwareAttr(PERF_COUNT_HW_CPU_CYCLES);
  LeaderFd = perfEventOpen(Leader, -1);
  if (LeaderFd < 0) {
    OpenFailed = true;
    return false;
  }
  // The derived counters are best-effort: a PMU without (say) cache-miss
  // events still profiles cycles; a failed slot just reads zero.
  static const uint64_t ExtraConfigs[3] = {PERF_COUNT_HW_INSTRUCTIONS,
                                           PERF_COUNT_HW_BRANCH_MISSES,
                                           PERF_COUNT_HW_CACHE_MISSES};
  for (int I = 0; I < 3; ++I) {
    perf_event_attr Attr = hardwareAttr(ExtraConfigs[I]);
    ExtraFds[I] = perfEventOpen(Attr, LeaderFd);
  }
  OwnerTid = Tid;
  return true;
#else
  return false;
#endif
}

void PerfGroup::read(CounterSample &Out) {
  Out = CounterSample{};
#ifdef __linux__
  if (backend() == CounterBackend::PerfEvent && openOnThisThread()) {
    // PERF_FORMAT_GROUP read: { nr, values[nr] } in the order the events
    // were added to the group (leader first).
    struct {
      uint64_t Nr;
      uint64_t Values[4];
    } Buf{};
    ssize_t N = ::read(LeaderFd, &Buf, sizeof(Buf));
    if (N >= static_cast<ssize_t>(2 * sizeof(uint64_t)) && Buf.Nr >= 1) {
      Out.Ticks = Buf.Values[0];
      // Slot i+1 of the read corresponds to the i-th successfully opened
      // extra fd; failed opens never joined the group.
      uint64_t Slot = 1;
      uint64_t *Dest[3] = {&Out.Instructions, &Out.BranchMisses,
                           &Out.CacheMisses};
      for (int I = 0; I < 3; ++I) {
        if (ExtraFds[I] < 0)
          continue;
        if (Slot < Buf.Nr)
          *Dest[I] = Buf.Values[Slot];
        ++Slot;
      }
      return;
    }
    // A failing read (fd revoked, CPU hotplug weirdness) degrades this
    // group permanently rather than mixing backends mid-span.
    close();
    OpenFailed = true;
  }
#endif
  Out.Ticks = nowNanos();
}
