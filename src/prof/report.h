//===- prof/report.h - Cost-attribution and folded-stack output --*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Read-side renderers over the per-phase data a Registry accumulated:
///
///   * renderCostReport   -- the machine-generated analogue of the paper's
///     Tables 2-3: ticks/value (cycles or ns, per the active backend) and
///     instructions/value per algorithm phase, with the share of total and
///     the attribution-coverage line the acceptance tests gate on.
///   * renderFoldedStacks -- one "frame;frame;frame weight" line per
///     attributed (parent, phase) pair, directly loadable by flamegraph
///     tooling (flamegraph.pl, speedscope, inferno).
///   * attributionCoverage -- fraction of measured Total ticks attributed
///     to a named phase (1 - unexplained glue / gross).
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_PROF_REPORT_H
#define DRAGON4_PROF_REPORT_H

#include "obs/registry.h"

#include <string>

namespace dragon4::prof {

/// Fraction (0..1) of the Total phase's gross ticks attributed to child
/// phases (including explicit measurement Overhead).  0 when nothing was
/// profiled.
double attributionCoverage(const obs::Registry &Reg);

/// Human/text cost table (stable enough for the docs to quote; the stats
/// JSON carries the same numbers machine-readably).
std::string renderCostReport(const obs::Registry &Reg);

/// Brendan-Gregg folded stack lines, self-weight per full path.
std::string renderFoldedStacks(const obs::Registry &Reg);

} // namespace dragon4::prof

#endif // DRAGON4_PROF_REPORT_H
