//===- prof/phases.h - Phase identity for cost attribution -------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The algorithm-stage vocabulary of the phase-attribution profiler: one
/// enumerator per stage of the paper's cost model (Tables 2-3), plus the
/// enclosing Total span and the Overhead pseudo-phase that absorbs the
/// measured cost of reading the counters themselves.
///
/// This header is dependency-free on purpose: obs/registry.h includes it to
/// size its per-phase storage, while the span/collector machinery lives in
/// prof/phase.h (which depends on the registry).  Keep the enum and the two
/// name tables in sync.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_PROF_PHASES_H
#define DRAGON4_PROF_PHASES_H

#include <cstdint>

namespace dragon4::prof {

/// One stage of a conversion, as attributed by PhaseSpan markers.
enum class Phase : uint8_t {
  Total,        ///< The whole conversion (gross; every other span nests).
  Decompose,    ///< Classification, IEEE decomposition, eligibility checks.
  RyuPath,      ///< The Ryu front line (exact interval digit generation).
  FastPath,     ///< The Grisu3 attempt (certified or not).
  Estimator,    ///< The two-flop / float-log scale estimate.
  ScaleSetup,   ///< Table-1 initial values and the B^k scale application.
  Fixup,        ///< The estimate-too-low check and its (free) correction.
  DigitLoop,    ///< The shared digit-generation loop (control + compares).
  BigIntMul,    ///< Full BigInt multiplications (under scaling or the loop).
  BigIntDivMod, ///< BigInt divMod calls (the digit extraction itself).
  Render,       ///< Digits -> characters in the caller's buffer.
  Overhead,     ///< Counter-read cost charged by the profiler itself.
  Count
};

inline constexpr unsigned NumPhases = static_cast<unsigned>(Phase::Count);

/// Index used in the parent-attribution matrix for "no enclosing span".
inline constexpr unsigned PhaseRootIndex = NumPhases;

/// Short stable key, [a-z_]: embedded in metric names and folded stacks.
constexpr const char *phaseName(Phase P) {
  switch (P) {
  case Phase::Total:
    return "total";
  case Phase::Decompose:
    return "decompose";
  case Phase::RyuPath:
    return "ryu_path";
  case Phase::FastPath:
    return "fast_path";
  case Phase::Estimator:
    return "estimator";
  case Phase::ScaleSetup:
    return "scale_setup";
  case Phase::Fixup:
    return "fixup";
  case Phase::DigitLoop:
    return "digit_loop";
  case Phase::BigIntMul:
    return "bigint_mul";
  case Phase::BigIntDivMod:
    return "bigint_divmod";
  case Phase::Render:
    return "render";
  case Phase::Overhead:
    return "overhead";
  case Phase::Count:
    break;
  }
  return "?";
}

/// Human label for the cost-attribution table.
constexpr const char *phaseLabel(Phase P) {
  switch (P) {
  case Phase::Total:
    return "total (unattributed glue)";
  case Phase::Decompose:
    return "decompose + classify";
  case Phase::RyuPath:
    return "fast path (Ryu)";
  case Phase::FastPath:
    return "fast path (Grisu3)";
  case Phase::Estimator:
    return "scale estimator";
  case Phase::ScaleSetup:
    return "Table-1 scale setup";
  case Phase::Fixup:
    return "estimate fixup";
  case Phase::DigitLoop:
    return "digit loop";
  case Phase::BigIntMul:
    return "BigInt mul";
  case Phase::BigIntDivMod:
    return "BigInt divMod";
  case Phase::Render:
    return "formatting";
  case Phase::Overhead:
    return "measurement overhead";
  case Phase::Count:
    break;
  }
  return "?";
}

} // namespace dragon4::prof

#endif // DRAGON4_PROF_PHASES_H
