//===- prof/sampler.cpp - Continuous sampling profiler ----------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "prof/sampler.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

using namespace dragon4;
using namespace dragon4::prof;

StackSampler &StackSampler::instance() {
  // Leaked on purpose: collectors may unregister during static destruction
  // of test fixtures, and a destructed registry would be worse than a few
  // bytes held to exit.
  static StackSampler *Global = new StackSampler();
  return *Global;
}

void dragon4::prof::samplerRegister(PhaseCollector *C) {
  StackSampler::instance().registerCollector(C);
}

void dragon4::prof::samplerUnregister(PhaseCollector *C) {
  StackSampler::instance().unregisterCollector(C);
}

void StackSampler::registerCollector(PhaseCollector *C) {
  std::lock_guard<std::mutex> Lock(M);
  Collectors.push_back(C);
}

void StackSampler::unregisterCollector(PhaseCollector *C) {
  std::lock_guard<std::mutex> Lock(M);
  Collectors.erase(std::remove(Collectors.begin(), Collectors.end(), C),
                   Collectors.end());
}

void StackSampler::start(uint32_t Hz) {
  std::lock_guard<std::mutex> Lock(M);
  if (Running)
    return;
  if (Hz < 1)
    Hz = 1;
  if (Hz > 10000)
    Hz = 10000;
  StopRequested = false;
  Running = true;
  Thread = std::thread([this, Hz] { timerLoop(Hz); });
}

void StackSampler::stop() {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Running)
      return;
    StopRequested = true;
  }
  StopCv.notify_all();
  Thread.join();
  std::lock_guard<std::mutex> Lock(M);
  Running = false;
}

bool StackSampler::running() const {
  std::lock_guard<std::mutex> Lock(M);
  return Running;
}

uint64_t StackSampler::samplesTaken() const {
  std::lock_guard<std::mutex> Lock(M);
  return Samples;
}

void StackSampler::timerLoop(uint32_t Hz) {
  const auto Interval =
      std::chrono::nanoseconds(static_cast<uint64_t>(1e9 / Hz));
  std::unique_lock<std::mutex> Lock(M);
  while (!StopRequested) {
    // Sweep under the lock (collectors cannot unregister mid-sweep), then
    // sleep interruptibly so stop() returns within one interval.
    sweepLocked();
    StopCv.wait_for(Lock, Interval, [this] { return StopRequested; });
  }
}

void StackSampler::sampleOnce() {
  std::lock_guard<std::mutex> Lock(M);
  sweepLocked();
}

void StackSampler::sweepLocked() {
  ++Samples;
  for (PhaseCollector *C : Collectors)
    ++PathCounts[C->liveStackWord()];
}

std::string dragon4::prof::decodeLiveStack(uint64_t Word) {
  if (Word == 0)
    return "idle";
  std::string Out;
  constexpr uint64_t Mask =
      (uint64_t(1) << PhaseCollector::LiveStackBitsPerLevel) - 1;
  for (int Level = 0; Level < PhaseCollector::MaxDepth; ++Level) {
    uint64_t Slot =
        (Word >> (PhaseCollector::LiveStackBitsPerLevel * Level)) & Mask;
    if (Slot == 0)
      break;
    if (!Out.empty())
      Out += ';';
    uint64_t Index = Slot - 1;
    Out += Index < NumPhases ? phaseName(static_cast<Phase>(Index)) : "?";
  }
  // A non-zero word with an empty level 0 is torn/corrupt; report it as
  // idle rather than emitting an empty stack line.
  return Out.empty() ? "idle" : Out;
}

std::string StackSampler::folded() const {
  std::lock_guard<std::mutex> Lock(M);
  // Decode, then merge by decoded string: distinct words can decode to the
  // same stack only if corrupted, but the merge also gives stable sorted
  // output for free via the intermediate map.
  std::map<std::string, uint64_t> Lines;
  for (const auto &[Word, N] : PathCounts)
    Lines[decodeLiveStack(Word)] += N;
  std::string Out;
  for (const auto &[Stack, N] : Lines) {
    char Buf[160];
    int Len = std::snprintf(Buf, sizeof(Buf), "%s %" PRIu64 "\n",
                            Stack.c_str(), N);
    if (Len > 0)
      Out.append(Buf, static_cast<size_t>(Len));
  }
  return Out;
}

void StackSampler::resetCounts() {
  std::lock_guard<std::mutex> Lock(M);
  PathCounts.clear();
  Samples = 0;
}
