//===- prof/clock.h - The calibrated monotonic time source -------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one monotonic nanosecond clock everything times with: batch timing
/// (engine/batch.cpp), sampled-conversion latency (obs), phase spans when
/// the hardware-counter backend is unavailable, and the bench harnesses.
/// A single source means a "+12% cycles" delta in one report and a
/// "ns/value" delta in another can never disagree about what a nanosecond
/// is.
///
/// The clock is calibrated once per process: clockOverheadNanos() is the
/// smallest observed cost of one nowNanos() call, which the phase profiler
/// subtracts per span boundary so measurement cost is attributed to an
/// explicit Overhead phase instead of silently inflating its parent.
///
/// Header-only reads, no obs dependency: this builds and stays cheap under
/// DRAGON4_OBS=OFF (the batch timer uses it unconditionally).
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_PROF_CLOCK_H
#define DRAGON4_PROF_CLOCK_H

#include <chrono>
#include <cstdint>

namespace dragon4::prof {

/// Monotonic nanoseconds (steady_clock; same epoch across threads).
inline uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Minimum observed cost of one nowNanos() call, measured once per process
/// (a deliberate underestimate: charging too little overhead keeps the
/// attribution identity "sum of phases <= total" safe).
uint64_t clockOverheadNanos();

/// Seconds of wall-clock time spent running \p Body once, on the shared
/// clock.  The bench harnesses' timing primitive.
template <typename Fn> double timeSeconds(Fn &&Body) {
  uint64_t Start = nowNanos();
  Body();
  return static_cast<double>(nowNanos() - Start) * 1e-9;
}

/// Running stopwatch over the shared clock (the batch timer).
class StopWatch {
public:
  StopWatch() : Start(nowNanos()) {}
  uint64_t elapsedNanos() const { return nowNanos() - Start; }
  uint64_t startNanos() const { return Start; }

private:
  uint64_t Start;
};

} // namespace dragon4::prof

#endif // DRAGON4_PROF_CLOCK_H
