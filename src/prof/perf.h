//===- prof/perf.h - Hardware counter groups with fallback -------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counter substrate of the phase profiler.  A PerfGroup wraps one
/// perf_event_open(2) group -- cycles (the leader), instructions,
/// branch-misses, cache-misses -- counting the calling thread, read in a
/// single syscall per sample.  Where perf events are unavailable (seccomp'd
/// containers, perf_event_paranoid, CI runners) the group degrades to the
/// shared prof clock: "ticks" become nanoseconds and the derived counters
/// read zero.  The choice is made once per process (backend()), reported in
/// every export, and forcible to the fallback via
/// testhooks::ForceCounterFallback so the degradation path stays tested on
/// machines where perf works.
///
/// Counters are per-thread: a PerfGroup lazily (re)opens itself on the
/// thread that samples it, so a collector constructed on the main thread
/// and used by a worker still counts the worker.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_PROF_PERF_H
#define DRAGON4_PROF_PERF_H

#include <cstdint>

namespace dragon4::prof {

/// Which counter source phase ticks come from.
enum class CounterBackend : uint8_t {
  PerfEvent,   ///< perf_event_open hardware counters; ticks are CPU cycles.
  SteadyClock, ///< prof::nowNanos() fallback; ticks are nanoseconds.
};

/// Stable key for exports ("perf_event" / "steady_clock").
const char *backendName(CounterBackend B);

/// The process-wide backend, detected once by probing perf_event_open (the
/// testhook forces SteadyClock before anything probes).
CounterBackend backend();

/// True when backend() == PerfEvent (export convenience).
bool backendIsPerf();

/// One reading of the group.  With the fallback backend only Ticks is
/// meaningful (nanoseconds); the rest stay zero.
struct CounterSample {
  uint64_t Ticks = 0;        ///< CPU cycles, or nanoseconds on fallback.
  uint64_t Instructions = 0; ///< Instructions retired.
  uint64_t BranchMisses = 0;
  uint64_t CacheMisses = 0;
};

/// Minimum observed cost, in ticks of the active backend, of one
/// PerfGroup::read() call.  Calibrated once per process; the collector
/// charges 2x this per span to the Overhead phase.
uint64_t readOverheadTicks();

/// One perf_event counter group bound to a single thread.
class PerfGroup {
public:
  PerfGroup() = default;
  ~PerfGroup() { close(); }
  PerfGroup(const PerfGroup &) = delete;
  PerfGroup &operator=(const PerfGroup &) = delete;

  /// Samples the group into \p Out.  Opens (or re-opens, if this group last
  /// counted a different thread) the perf fds on first use; on the fallback
  /// backend this is one clock read and never touches the kernel.
  void read(CounterSample &Out);

  /// True when this group is currently reading hardware counters (false on
  /// the fallback backend or after a failed open).
  bool usingPerf() const { return LeaderFd >= 0; }

  void close();

private:
  bool openOnThisThread();

  int LeaderFd = -1;
  int ExtraFds[3] = {-1, -1, -1}; ///< instructions, branch-, cache-misses.
  uint64_t Ids[4] = {};           ///< Group-read ids, leader first.
  int OwnerTid = 0;               ///< Thread the fds count; 0 = not open.
  bool OpenFailed = false;        ///< Probe failed once; stop retrying.
};

} // namespace dragon4::prof

#endif // DRAGON4_PROF_PERF_H
