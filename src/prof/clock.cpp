//===- prof/clock.cpp - The calibrated monotonic time source ----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "prof/clock.h"

using namespace dragon4;

uint64_t dragon4::prof::clockOverheadNanos() {
  static const uint64_t Overhead = [] {
    // Minimum of many back-to-back deltas: robust against preemption and a
    // deliberate underestimate of the typical cost (see header).
    uint64_t Min = UINT64_MAX;
    for (int I = 0; I < 256; ++I) {
      uint64_t A = nowNanos();
      uint64_t B = nowNanos();
      if (B - A < Min)
        Min = B - A;
    }
    return Min == UINT64_MAX ? 0 : Min;
  }();
  return Overhead;
}
