//===- prof/sampler.h - Continuous sampling profiler -------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The always-on profiler for service mode.  The span machinery (prof/
/// phase.h) gives exact per-phase costs but only for conversions that won
/// the obs sampling draw and only after their spans close; a long-running
/// service also wants "what is the fleet doing *right now*" at a cost
/// independent of the conversion rate.  StackSampler provides that the
/// classic way: every registered PhaseCollector maintains a packed word
/// describing its open span stack (one relaxed store per span boundary,
/// the only hot-path cost), and a timer thread wakes at the configured
/// rate and reads those words.
///
/// Each sweep buckets every collector's stack -- "total;digit_loop" --
/// or "idle" for collectors with no open span.  folded() renders the
/// accumulated counts as flamegraph-consumable folded stacks (the same
/// format prof::renderFoldedStacks emits for exact span data), which is
/// what the /profile.folded endpoint serves.
///
/// Sampling error behaves like any wall-clock profiler's: with N samples
/// of a phase the share estimate converges as 1/sqrt(N); the tests drive
/// sampleOnce() deterministically instead of relying on the timer.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_PROF_SAMPLER_H
#define DRAGON4_PROF_SAMPLER_H

#include "prof/phase.h"

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dragon4::prof {

/// The process-wide stack sampler.  Collectors register themselves on
/// construction (see prof/phase.h); start(Hz) runs the timer thread.
class StackSampler {
public:
  /// The process singleton (collectors register with it from any thread).
  static StackSampler &instance();

  /// Starts the timer thread at \p Hz sweeps per second (clamped to
  /// [1, 10000]).  No-op when already running.
  void start(uint32_t Hz);

  /// Stops and joins the timer thread.  Counts are kept.  Idempotent.
  void stop();

  bool running() const;
  uint64_t samplesTaken() const;

  /// One synchronous sweep over every registered collector (what the
  /// timer thread calls; exposed so tests are deterministic).
  void sampleOnce();

  /// Flamegraph-consumable folded stacks: "total;digit_loop 42" per line,
  /// plus an "idle" line for sweeps that found a collector with no open
  /// span.  Lines are sorted by stack string for stable output.
  std::string folded() const;

  void resetCounts();

  // Registration (called by PhaseCollector's ctor/dtor via the
  // samplerRegister/samplerUnregister hooks).
  void registerCollector(PhaseCollector *C);
  void unregisterCollector(PhaseCollector *C);

private:
  void timerLoop(uint32_t Hz);
  void sweepLocked(); ///< One sweep; caller holds M.

  mutable std::mutex M;
  std::condition_variable StopCv;
  bool StopRequested = false;
  bool Running = false;
  std::thread Thread;
  std::vector<PhaseCollector *> Collectors;
  /// Packed stack word -> sample count ("idle" is the 0 word).
  std::map<uint64_t, uint64_t> PathCounts;
  uint64_t Samples = 0;
};

/// Decodes a packed live-stack word into "total;digit_loop" form ("idle"
/// for the empty word).  Exposed for the tests.
std::string decodeLiveStack(uint64_t Word);

} // namespace dragon4::prof

#endif // DRAGON4_PROF_SAMPLER_H
