//===- prof/phase.h - Scoped phase-attribution spans -------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The attribution machinery: a per-thread PhaseCollector maintains a small
/// stack of open PhaseSpans, reads the counter group at every boundary, and
/// archives each span's *self* cost (gross minus nested children minus the
/// calibrated cost of the counter reads themselves) into the obs Registry
/// shard it is bound to.  The accounting identity the tests enforce:
///
///   gross(Total) == sum over all phases of self ticks
///                   (including Total's own unattributed glue and the
///                    explicit Overhead pseudo-phase), up to clamping --
///   so attributed cost can never exceed measured cost, and coverage is
///   simply 1 - self(Total)/gross(Total).
///
/// Hot-path protocol mirrors obs tracing: a constinit thread-local
/// collector pointer, installed by PhaseScope only for sampled conversions,
/// checked by D4_PROF_SPAN in one load.  Under DRAGON4_OBS=OFF the macro
/// expands to nothing and none of this is in the hot path.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_PROF_PHASE_H
#define DRAGON4_PROF_PHASE_H

#include "obs/registry.h"
#include "prof/perf.h"
#include "prof/phases.h"

#include <atomic>

namespace dragon4::prof {

class PhaseCollector;

/// Sampler registry hooks (defined in prof/sampler.cpp): every collector
/// announces itself so the continuous sampling profiler can sweep the live
/// span stacks.  Cold path -- construction/destruction only.
void samplerRegister(PhaseCollector *C);
void samplerUnregister(PhaseCollector *C);

/// Per-thread span stack + counter group, draining into a Registry shard.
/// Single-writer, like everything per-Scratch.
class PhaseCollector {
public:
  static constexpr int MaxDepth = 8;
  /// Bits per stack level in the packed live-stack word: holds any phase
  /// index + 1 (0 = empty level), 5*MaxDepth = 40 bits used.
  static constexpr int LiveStackBitsPerLevel = 5;

  PhaseCollector() { samplerRegister(this); }
  ~PhaseCollector() { samplerUnregister(this); }
  PhaseCollector(const PhaseCollector &) = delete;
  PhaseCollector &operator=(const PhaseCollector &) = delete;

  /// Points archived spans at \p Reg (the owning ObsState's shard).
  void bind(obs::Registry *Reg) { Sink = Reg; }
  obs::Registry *sink() const { return Sink; }

  /// Opens a span of \p P.  Returns false (span dropped, exit must not be
  /// called) when the stack is full or no sink is bound.
  bool enter(Phase P) {
    if (!Sink || Depth >= MaxDepth)
      return false;
    Frame &F = Stack[Depth++];
    F.P = P;
    F.Child = CounterSample{};
    // Publish the new stack word before the counter read so a concurrent
    // sampler attributes the span's whole duration.  Relaxed is enough:
    // the word is self-contained, and a one-sample skew is noise.
    Packed |= (static_cast<uint64_t>(P) + 1)
              << (LiveStackBitsPerLevel * (Depth - 1));
    LiveStack.store(Packed, std::memory_order_relaxed);
    Group.read(F.Entry);
    return true;
  }

  /// Closes the innermost span, attributing self = gross - children (each
  /// child already charged its gross plus two calibrated counter reads to
  /// this frame, the reads landing in the Overhead pseudo-phase).
  void exit() {
    CounterSample End;
    Group.read(End);
    Frame &F = Stack[--Depth];
    Packed &= ~(((uint64_t(1) << LiveStackBitsPerLevel) - 1)
                << (LiveStackBitsPerLevel * Depth));
    LiveStack.store(Packed, std::memory_order_relaxed);
    const uint64_t Gross = End.Ticks - F.Entry.Ticks;
    const size_t Parent =
        Depth > 0 ? static_cast<size_t>(Stack[Depth - 1].P) : PhaseRootIndex;
    Sink->recordPhaseSpan(F.P, Parent, clampedSelf(Gross, F.Child.Ticks),
                          Gross,
                          clampedSelf(End.Instructions - F.Entry.Instructions,
                                      F.Child.Instructions),
                          clampedSelf(End.BranchMisses - F.Entry.BranchMisses,
                                      F.Child.BranchMisses),
                          clampedSelf(End.CacheMisses - F.Entry.CacheMisses,
                                      F.Child.CacheMisses));
    if (Depth > 0) {
      Frame &PF = Stack[Depth - 1];
      PF.Child.Ticks += Gross;
      PF.Child.Instructions += End.Instructions - F.Entry.Instructions;
      PF.Child.BranchMisses += End.BranchMisses - F.Entry.BranchMisses;
      PF.Child.CacheMisses += End.CacheMisses - F.Entry.CacheMisses;
      // This span's two counter reads executed inside the parent but are
      // measurement, not algorithm: charge them to Overhead explicitly so
      // they are attributed rather than inflating the parent's self time.
      // readOverheadTicks() is a calibrated *minimum*, which keeps the
      // sum-of-phases <= total invariant safe.
      const uint64_t Overhead = 2 * readOverheadTicks();
      PF.Child.Ticks += Overhead;
      Sink->addPhaseOverhead(static_cast<size_t>(PF.P), Overhead);
    }
  }

  int depth() const { return Depth; }

  /// The packed open-span stack: LiveStackBitsPerLevel bits per level,
  /// innermost highest, each holding phase index + 1; 0 = no open spans.
  /// Readable from any thread (the sampler's view of in-flight work).
  uint64_t liveStackWord() const {
    return LiveStack.load(std::memory_order_relaxed);
  }

  /// True when this collector's counter group is reading hardware events.
  bool usingPerf() const { return Group.usingPerf(); }

private:
  struct Frame {
    Phase P = Phase::Total;
    CounterSample Entry; ///< Counter reading at span open.
    CounterSample Child; ///< Gross cost + overhead charged by children.
  };

  static uint64_t clampedSelf(uint64_t Gross, uint64_t Child) {
    return Gross > Child ? Gross - Child : 0;
  }

  obs::Registry *Sink = nullptr;
  PerfGroup Group;
  Frame Stack[MaxDepth];
  int Depth = 0;
  uint64_t Packed = 0; ///< Shadow of LiveStack (single-writer, no reload).
  std::atomic<uint64_t> LiveStack{0};
};

#if DRAGON4_OBS_ENABLED
/// The thread's active collector, or null when the current conversion is
/// not being profiled.  Same idiom as obs::ActiveTraceTls: constinit +
/// inline so the hot-path check is a single TLS load.
inline constinit thread_local PhaseCollector *ActivePhaseTls = nullptr;

inline PhaseCollector *activePhaseCollector() { return ActivePhaseTls; }
#else
inline PhaseCollector *activePhaseCollector() { return nullptr; }
#endif

/// RAII installer for the thread's active collector (null = suppression,
/// mirroring ActiveTraceScope).
class PhaseScope {
public:
#if DRAGON4_OBS_ENABLED
  explicit PhaseScope(PhaseCollector *C) : Prev(ActivePhaseTls) {
    ActivePhaseTls = C;
  }
  ~PhaseScope() { ActivePhaseTls = Prev; }

private:
  PhaseCollector *Prev;
#else
  explicit PhaseScope(PhaseCollector *) {}
#endif
  PhaseScope(const PhaseScope &) = delete;
  PhaseScope &operator=(const PhaseScope &) = delete;
};

/// Scoped span marker.  Construction opens the phase on the thread's
/// active collector (no-op when none is installed); destruction closes it.
class PhaseSpan {
public:
#if DRAGON4_OBS_ENABLED
  explicit PhaseSpan(Phase P) : C(ActivePhaseTls) {
    if (C)
      Active = C->enter(P);
  }
  ~PhaseSpan() {
    if (Active)
      C->exit();
  }

private:
  PhaseCollector *C;
  bool Active = false;
#else
  explicit PhaseSpan(Phase) {}
#endif
  PhaseSpan(const PhaseSpan &) = delete;
  PhaseSpan &operator=(const PhaseSpan &) = delete;
};

#define D4_PROF_CONCAT_IMPL(A, B) A##B
#define D4_PROF_CONCAT(A, B) D4_PROF_CONCAT_IMPL(A, B)

/// Statement macro: attributes the rest of the enclosing block to \p P.
#if DRAGON4_OBS_ENABLED
#define D4_PROF_SPAN(P)                                                        \
  ::dragon4::prof::PhaseSpan D4_PROF_CONCAT(D4ProfSpan_, __LINE__) {           \
    ::dragon4::prof::Phase::P                                                  \
  }
#else
#define D4_PROF_SPAN(P)                                                        \
  do {                                                                         \
  } while (0)
#endif

} // namespace dragon4::prof

#endif // DRAGON4_PROF_PHASE_H
