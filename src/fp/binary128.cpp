//===- fp/binary128.cpp - IEEE-754 quad precision -----------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "fp/binary128.h"

#include "support/checks.h"

#include <algorithm>
#include <cmath>

using namespace dragon4;

namespace {

constexpr int StoredBits = 112;
constexpr uint64_t HiMantissaMask = (uint64_t(1) << 48) - 1;
constexpr int ExponentBias = 16495; // v = F * 2^(be - 16495) for normals.

uint64_t biasedExponent(Binary128 Value) {
  return (Value.highBits() >> 48) & 0x7FFF;
}

/// Splits a BigInt known to fit 128 bits into (Hi, Lo) 64-bit words.
void splitWords(const BigInt &Value, uint64_t &Hi, uint64_t &Lo) {
  BigInt HiPart = Value;
  HiPart >>= 64;
  Hi = HiPart.toUint64();
  BigInt LoPart = HiPart;
  LoPart <<= 64;
  LoPart = Value - LoPart;
  Lo = LoPart.toUint64();
}

} // namespace

FpClass dragon4::classify(Binary128 Value) {
  uint64_t Exponent = biasedExponent(Value);
  bool MantissaZero =
      (Value.highBits() & HiMantissaMask) == 0 && Value.lowBits() == 0;
  if (Exponent == 0x7FFF)
    return MantissaZero ? FpClass::Infinity : FpClass::NaN;
  if (Exponent == 0)
    return MantissaZero ? FpClass::Zero : FpClass::Subnormal;
  return FpClass::Normal;
}

bool dragon4::signBit(Binary128 Value) { return Value.highBits() >> 63; }

DecomposedBig dragon4::decomposeBig(Binary128 Value) {
  FpClass Class = classify(Value);
  D4_ASSERT(Class == FpClass::Normal || Class == FpClass::Subnormal,
            "decompose requires a finite non-zero value");
  DecomposedBig Result;
  Result.F = BigInt(Value.highBits() & HiMantissaMask);
  Result.F <<= 64;
  Result.F += BigInt(Value.lowBits());
  if (Class == FpClass::Subnormal) {
    Result.E = IeeeTraits<Binary128>::MinExponent;
  } else {
    BigInt Hidden(uint64_t(1));
    Hidden <<= StoredBits;
    Result.F += Hidden;
    Result.E = static_cast<int>(biasedExponent(Value)) - ExponentBias;
  }
  return Result;
}

Binary128 dragon4::composeBig(BigInt F, int E) {
  D4_ASSERT(!F.isZero() && !F.isNegative(), "compose of non-positive mantissa");
  constexpr int MinExponent = IeeeTraits<Binary128>::MinExponent;
  // Normalize to exactly 113 bits, or fewer pinned at the minimum exponent.
  int Bits = static_cast<int>(F.bitLength());
  if (Bits < 113 && E > MinExponent) {
    int Shift = std::min(113 - Bits, E - MinExponent);
    F <<= static_cast<size_t>(Shift);
    E -= Shift;
    Bits += Shift;
  }
  while (Bits > 113) {
    D4_ASSERT(!F.testBit(0), "mantissa not exactly representable");
    F >>= 1;
    ++E;
    --Bits;
  }
  D4_ASSERT(E >= MinExponent && E <= IeeeTraits<Binary128>::MaxExponent,
            "exponent out of range");
  uint64_t Hi, Lo;
  if (Bits < 113) {
    D4_ASSERT(E == MinExponent, "unnormalized mantissa above e_min");
    splitWords(F, Hi, Lo);
  } else {
    BigInt Hidden(uint64_t(1));
    Hidden <<= StoredBits;
    F -= Hidden;
    splitWords(F, Hi, Lo);
    Hi |= static_cast<uint64_t>(E + ExponentBias) << 48;
  }
  return Binary128::fromBits(Hi, Lo);
}

Binary128 Binary128::fromDouble(double Value) {
  if (Value == 0.0)
    return Binary128::fromBits(std::signbit(Value) ? uint64_t(1) << 63 : 0,
                               0);
  FpClass Class = dragon4::classify(Value);
  if (Class == FpClass::Infinity)
    return Binary128::fromBits((std::signbit(Value)
                                    ? (uint64_t(1) << 63)
                                    : 0) |
                                   (uint64_t(0x7FFF) << 48),
                               0);
  if (Class == FpClass::NaN)
    return Binary128::fromBits(uint64_t(0x7FFF8) << 44, 0);
  Decomposed Narrow = decompose(Value);
  Binary128 Magnitude = composeBig(BigInt(Narrow.F), Narrow.E);
  if (!std::signbit(Value))
    return Magnitude;
  return Binary128::fromBits(Magnitude.highBits() | (uint64_t(1) << 63),
                             Magnitude.lowBits());
}
