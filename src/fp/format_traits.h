//===- fp/format_traits.h - Per-format pipeline traits -----------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-format knobs the format-generic conversion pipeline needs beyond
/// the numeric parameters in IeeeTraits: a runtime FormatId, whether the
/// mantissa fits uint64_t (narrow Decomposed) or needs the BigInt view
/// (DecomposedBig), whether the Grisu fast path is certified for the
/// format, a uniform 128-bit raw-encoding view for tracing/type-erasure,
/// and the worst-case shortest decimal digit count.
///
/// This is the one header that knows about all five supported formats; the
/// conversion core itself (core/, fastpath/) stays traits-generic and never
/// includes it.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FP_FORMAT_TRAITS_H
#define DRAGON4_FP_FORMAT_TRAITS_H

#include "fp/binary128.h"
#include "fp/binary16.h"
#include "fp/extended80.h"
#include "fp/format_id.h"
#include "fp/ieee_traits.h"

#include <bit>
#include <cstdint>
#include <cstring>

namespace dragon4 {

namespace fp_detail {

/// ceil(p * log10(2)) + 1: the worst-case shortest decimal digit count for
/// a binary format with p significand bits (17 for binary64).  30103/100000
/// overestimates log10(2) = 0.30102999..., so the truncating division plus
/// two is exact for every p below ~50000.
constexpr int maxShortestDecimalDigits(int Precision) {
  return Precision * 30103 / 100000 + 2;
}

} // namespace fp_detail

/// Pipeline-level description of a supported format.
///
/// Specializations provide:
///   Id                 the runtime FormatId for stats/trace dimensions
///   Name               formatIdName(Id), as a compile-time constant
///   WideMantissa       true when the significand exceeds 64 bits and the
///                      conversion must take the DecomposedBig path
///   FastPathCertified  true when the Grisu cached-power table is certified
///                      for the format's (Precision, MinExponent) range
///   RyuCertified       true when the Ryu 128-bit cached-power table and
///                      exactness analysis cover the format (Precision <=
///                      54 and exponents inside the [-342, 342] power
///                      range); the front rung of the fallback ladder
///   MaxShortestDigits  ceil(p log10 2) + 1, the free-format digit bound
///   encodingBits       raw encoding as (Lo, Hi) uint64 halves; Hi is zero
///                      for formats of 64 bits or fewer
///   fromEncoding       inverse of encodingBits (tests / type-erased batch)
template <typename T> struct FormatTraits;

template <> struct FormatTraits<Binary16> {
  static constexpr FormatId Id = FormatId::Binary16;
  static constexpr const char *Name = "binary16";
  static constexpr bool WideMantissa = false;
  static constexpr bool FastPathCertified = false;
  static constexpr bool RyuCertified = true;
  static constexpr int MaxShortestDigits =
      fp_detail::maxShortestDecimalDigits(IeeeTraits<Binary16>::Precision);
  static void encodingBits(Binary16 Value, uint64_t &Lo, uint64_t &Hi) {
    Lo = Value.bits();
    Hi = 0;
  }
  static Binary16 fromEncoding(uint64_t Lo, uint64_t) {
    return Binary16::fromBits(static_cast<uint16_t>(Lo));
  }
};

template <> struct FormatTraits<float> {
  static constexpr FormatId Id = FormatId::Binary32;
  static constexpr const char *Name = "binary32";
  static constexpr bool WideMantissa = false;
  static constexpr bool FastPathCertified = true;
  static constexpr bool RyuCertified = true;
  static constexpr int MaxShortestDigits =
      fp_detail::maxShortestDecimalDigits(IeeeTraits<float>::Precision);
  static void encodingBits(float Value, uint64_t &Lo, uint64_t &Hi) {
    Lo = std::bit_cast<uint32_t>(Value);
    Hi = 0;
  }
  static float fromEncoding(uint64_t Lo, uint64_t) {
    return std::bit_cast<float>(static_cast<uint32_t>(Lo));
  }
};

template <> struct FormatTraits<double> {
  static constexpr FormatId Id = FormatId::Binary64;
  static constexpr const char *Name = "binary64";
  static constexpr bool WideMantissa = false;
  static constexpr bool FastPathCertified = true;
  static constexpr bool RyuCertified = true;
  static constexpr int MaxShortestDigits =
      fp_detail::maxShortestDecimalDigits(IeeeTraits<double>::Precision);
  static void encodingBits(double Value, uint64_t &Lo, uint64_t &Hi) {
    Lo = std::bit_cast<uint64_t>(Value);
    Hi = 0;
  }
  static double fromEncoding(uint64_t Lo, uint64_t) {
    return std::bit_cast<double>(Lo);
  }
};

template <> struct FormatTraits<long double> {
  static constexpr FormatId Id = FormatId::Extended80;
  static constexpr const char *Name = "extended80";
  static constexpr bool WideMantissa = false;
  static constexpr bool FastPathCertified = false;
  // 64-bit mantissa: 4F + 2 overflows the Ryu interval arithmetic.
  static constexpr bool RyuCertified = false;
  static constexpr int MaxShortestDigits =
      fp_detail::maxShortestDecimalDigits(IeeeTraits<long double>::Precision);
  // The x87 encoding occupies the low 10 bytes of the 16-byte storage; the
  // remaining 6 are padding and must not leak into the canonical bits.
  static void encodingBits(long double Value, uint64_t &Lo, uint64_t &Hi) {
    unsigned char Raw[10];
    std::memcpy(Raw, &Value, sizeof(Raw));
    Lo = 0;
    Hi = 0;
    std::memcpy(&Lo, Raw, 8);
    std::memcpy(&Hi, Raw + 8, 2);
  }
  static long double fromEncoding(uint64_t Lo, uint64_t Hi) {
    long double Value = 0.0L;
    unsigned char Raw[10];
    std::memcpy(Raw, &Lo, 8);
    std::memcpy(Raw + 8, &Hi, 2);
    std::memcpy(&Value, Raw, sizeof(Raw));
    return Value;
  }
};

template <> struct FormatTraits<Binary128> {
  static constexpr FormatId Id = FormatId::Binary128;
  static constexpr const char *Name = "binary128";
  static constexpr bool WideMantissa = true;
  static constexpr bool FastPathCertified = false;
  static constexpr bool RyuCertified = false;
  static constexpr int MaxShortestDigits =
      fp_detail::maxShortestDecimalDigits(IeeeTraits<Binary128>::Precision);
  static void encodingBits(Binary128 Value, uint64_t &Lo, uint64_t &Hi) {
    Lo = Value.lowBits();
    Hi = Value.highBits();
  }
  static Binary128 fromEncoding(uint64_t Lo, uint64_t Hi) {
    return Binary128::fromBits(Hi, Lo);
  }
};

static_assert(FormatTraits<Binary16>::MaxShortestDigits == 5 &&
                  FormatTraits<float>::MaxShortestDigits == 9 &&
                  FormatTraits<double>::MaxShortestDigits == 17 &&
                  FormatTraits<long double>::MaxShortestDigits == 21 &&
                  FormatTraits<Binary128>::MaxShortestDigits == 36,
              "shortest-digit bounds drifted from ceil(p log10 2) + 1");

} // namespace dragon4

#endif // DRAGON4_FP_FORMAT_TRAITS_H
