//===- fp/format_id.h - Runtime format identifiers ---------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny runtime identifier for the five supported IEEE-754 formats, kept
/// free of any dependency on the format types themselves so low-level
/// layers (engine counters, exporters) can dimension arrays by format
/// without pulling in the fp headers.  The compile-time mapping from a
/// C++ type to its FormatId lives in fp/format_traits.h.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FP_FORMAT_ID_H
#define DRAGON4_FP_FORMAT_ID_H

#include <cstdint>

namespace dragon4 {

/// The supported floating-point formats, in significand-width order.
/// Used as an array index everywhere a per-format dimension exists
/// (EngineStats::FormatConversions, the obs per-format counters, AnyValue
/// dispatch), so the enumerators must stay dense and start at zero.
enum class FormatId : uint8_t {
  Binary16,   ///< IEEE binary16 (software Binary16), p = 11.
  Binary32,   ///< IEEE binary32 (float), p = 24.
  Binary64,   ///< IEEE binary64 (double), p = 53.
  Extended80, ///< x87 80-bit extended (long double), p = 64.
  Binary128,  ///< IEEE binary128 (software Binary128), p = 113.
};

/// Number of FormatId enumerators (per-format array dimension).
inline constexpr int NumFormatIds = 5;

/// Lower-case interchange-format name ("binary16", ..., "extended80"),
/// matching the names the verify harness and the obs exporters use.
constexpr const char *formatIdName(FormatId Id) {
  switch (Id) {
  case FormatId::Binary16:
    return "binary16";
  case FormatId::Binary32:
    return "binary32";
  case FormatId::Binary64:
    return "binary64";
  case FormatId::Extended80:
    return "extended80";
  case FormatId::Binary128:
    return "binary128";
  }
  return "?";
}

} // namespace dragon4

#endif // DRAGON4_FP_FORMAT_ID_H
