//===- fp/binary16.h - Software IEEE-754 half precision ----------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal software binary16 ("half") type.  The paper's examples lean on
/// denormalized numbers "which may have only a few digits of precision" to
/// motivate the # marks; binary16's tiny 11-bit significand and wide
/// subnormal range make those cases easy to exercise exhaustively (there
/// are only 65536 encodings), so the test suite sweeps the entire format.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FP_BINARY16_H
#define DRAGON4_FP_BINARY16_H

#include "fp/ieee_traits.h"

#include <cstdint>

namespace dragon4 {

/// IEEE-754 binary16 value held in its 16-bit encoding.
///
/// Only the operations the conversion library needs are provided:
/// correctly rounded construction from double, widening back to double,
/// and raw-bits access for the traits machinery.
class Binary16 {
public:
  /// Constructs +0.0.
  Binary16() = default;

  /// Wraps a raw encoding.
  static Binary16 fromBits(uint16_t Bits) {
    Binary16 Result;
    Result.Encoding = Bits;
    return Result;
  }

  /// Converts \p Value to binary16 with round-to-nearest-even, producing
  /// infinities on overflow and signed zero/subnormals on underflow.
  static Binary16 fromDouble(double Value);

  /// Widens to double (always exact: binary16 values are a subset).
  double toDouble() const;

  uint16_t bits() const { return Encoding; }

  friend bool operator==(Binary16 L, Binary16 R) {
    return L.Encoding == R.Encoding;
  }

private:
  uint16_t Encoding = 0;
};

template <> struct IeeeTraits<Binary16> {
  using Bits = uint16_t;
  static constexpr int Precision = 11;
  static constexpr int StoredBits = 10;
  static constexpr int ExponentBitCount = 5;
  // v = (2^10 + m) * 2^(be - 25) for 1 <= be <= 30; subnormals at -24.
  static constexpr int DecomposedBias = 25;
  static constexpr int MinExponent = -24;
  static constexpr int MaxExponent = 5;
  static Bits toBits(Binary16 Value) { return Value.bits(); }
  static Binary16 fromBits(Bits Value) { return Binary16::fromBits(Value); }
};

} // namespace dragon4

#endif // DRAGON4_FP_BINARY16_H
