//===- fp/binary16.cpp - Software IEEE-754 half precision -----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "fp/binary16.h"

#include <cmath>
#include <limits>

using namespace dragon4;

double Binary16::toDouble() const {
  const uint16_t Bits = Encoding;
  const int Sign = (Bits >> 15) & 1;
  const int BiasedExp = (Bits >> 10) & 0x1F;
  const int Mantissa = Bits & 0x3FF;
  double Magnitude;
  if (BiasedExp == 0x1F) {
    Magnitude = Mantissa == 0 ? std::numeric_limits<double>::infinity()
                              : std::numeric_limits<double>::quiet_NaN();
  } else if (BiasedExp == 0) {
    Magnitude = std::ldexp(static_cast<double>(Mantissa), -24);
  } else {
    Magnitude = std::ldexp(static_cast<double>(Mantissa | 0x400),
                           BiasedExp - 25);
  }
  return Sign ? -Magnitude : Magnitude;
}

Binary16 Binary16::fromDouble(double Value) {
  uint16_t SignBit = std::signbit(Value) ? 0x8000 : 0;
  if (std::isnan(Value))
    return fromBits(static_cast<uint16_t>(SignBit | 0x7E00));
  double Magnitude = std::fabs(Value);
  if (std::isinf(Value) || Magnitude >= 65520.0) // Overflow threshold.
    return fromBits(static_cast<uint16_t>(SignBit | 0x7C00));
  if (Magnitude == 0.0)
    return fromBits(SignBit);

  // Quantize at the correct ulp.  frexp gives Magnitude = Fr * 2^Exp2 with
  // Fr in [0.5, 1); the binary16 ulp exponent is max(Exp2 - 11, -24).
  int Exp2;
  (void)std::frexp(Magnitude, &Exp2);
  int UlpExp = Exp2 - 11 < -24 ? -24 : Exp2 - 11;
  double Scaled = std::ldexp(Magnitude, -UlpExp);
  // Round to nearest-even in the double domain.  Scaled <= 2^12 + small, so
  // nearbyint under the default rounding mode is exact.
  double Rounded = std::nearbyint(Scaled);
  auto Quantized = static_cast<uint64_t>(Rounded);
  if (Quantized == 0)
    return fromBits(SignBit);
  // Renormalize if rounding carried into the next binade (e.g. 2047.5 ulp
  // -> 2048): composing handles it because 2048 = 1024 * 2^1.
  while (Quantized >= 2048) {
    Quantized >>= 1;
    ++UlpExp;
  }
  if (UlpExp > 5) // Rounded up past the largest finite value.
    return fromBits(static_cast<uint16_t>(SignBit | 0x7C00));
  uint16_t Bits;
  if (Quantized < 1024) {
    Bits = static_cast<uint16_t>(Quantized); // Subnormal (UlpExp == -24).
  } else {
    Bits = static_cast<uint16_t>(((UlpExp + 25) << 10) |
                                 (Quantized & 0x3FF));
  }
  return fromBits(static_cast<uint16_t>(SignBit | Bits));
}
