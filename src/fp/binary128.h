//===- fp/binary128.h - IEEE-754 quad precision ------------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IEEE-754 binary128 ("quad"), held as its 128-bit encoding.  Its 113-bit
/// significand does not fit the uint64_t Decomposed form the narrower
/// formats share, so this header introduces the BigInt-mantissa view
/// (DecomposedBig).  The generic conversion templates in core/ detect
/// Precision > 64 and route through decomposeBig to the library's *Big
/// generalizations, so no quad-specific conversion entry points exist.  No
/// quad arithmetic is provided or needed: printing and reading only
/// require the encoding.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FP_BINARY128_H
#define DRAGON4_FP_BINARY128_H

#include "bigint/bigint.h"
#include "fp/ieee_traits.h"

namespace dragon4 {

/// A finite non-zero magnitude decomposed as F * 2^E with a wide mantissa.
struct DecomposedBig {
  BigInt F;  ///< Integer mantissa, 0 < F < 2^p.
  int E = 0; ///< Base-2 exponent.
};

/// IEEE-754 binary128 value held in its encoding (two 64-bit halves).
class Binary128 {
public:
  /// Constructs +0.0.
  Binary128() = default;

  /// Wraps a raw encoding: \p Hi holds sign, exponent, and the top 48
  /// mantissa bits; \p Lo the low 64 mantissa bits.
  static Binary128 fromBits(uint64_t Hi, uint64_t Lo) {
    Binary128 Result;
    Result.Hi = Hi;
    Result.Lo = Lo;
    return Result;
  }

  /// Exact widening from double (every double is representable).
  static Binary128 fromDouble(double Value);

  uint64_t highBits() const { return Hi; }
  uint64_t lowBits() const { return Lo; }

  friend bool operator==(Binary128 L, Binary128 R) {
    return L.Hi == R.Hi && L.Lo == R.Lo;
  }

private:
  uint64_t Hi = 0;
  uint64_t Lo = 0;
};

template <> struct IeeeTraits<Binary128> {
  static constexpr int Precision = 113;
  // v = (2^112 + m) * 2^(be - 16495) for 1 <= be <= 32766; subnormals at
  // -16494.
  static constexpr int MinExponent = -16494;
  static constexpr int MaxExponent = 16271;
};

/// IEEE classification of \p Value (non-template overload; preferred over
/// the traits-based template).
FpClass classify(Binary128 Value);

/// Sign bit of \p Value.
bool signBit(Binary128 Value);

/// Decomposes a finite non-zero \p Value into |v| = F * 2^E.
DecomposedBig decomposeBig(Binary128 Value);

/// Recomposes a positive magnitude (inverse of decomposeBig; accepts
/// shiftable un-normalized mantissas like the narrow-format compose).
Binary128 composeBig(BigInt F, int E);

} // namespace dragon4

#endif // DRAGON4_FP_BINARY128_H
