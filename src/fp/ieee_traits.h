//===- fp/ieee_traits.h - IEEE-754 format traits -----------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time descriptions of the IEEE-754 binary interchange formats and
/// the bit-level decompose/compose/classify operations over them.  The
/// conversion core is written against these traits so binary64, binary32,
/// and the software Binary16 type all share one code path.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FP_IEEE_TRAITS_H
#define DRAGON4_FP_IEEE_TRAITS_H

#include "fp/decomposed.h"
#include "support/checks.h"

#include <bit>
#include <cstdint>

namespace dragon4 {

/// Format parameters and raw-bits access for a floating-point type.
///
/// Specializations provide:
///   Bits               unsigned integer wide enough for the encoding
///   Precision          p: significand bits including the hidden bit
///   StoredBits         significand bits actually stored (p - 1)
///   ExponentBitCount   width of the biased-exponent field
///   MinExponent        e_min of the Decomposed form (subnormal exponent)
///   MaxExponent        e_max of the Decomposed form
///   toBits/fromBits    bit_cast between T and Bits
template <typename T> struct IeeeTraits;

template <> struct IeeeTraits<double> {
  using Bits = uint64_t;
  static constexpr int Precision = 53;
  static constexpr int StoredBits = 52;
  static constexpr int ExponentBitCount = 11;
  // v = (2^52 + m) * 2^(be - 1075) for 1 <= be <= 2046; subnormals at -1074.
  static constexpr int DecomposedBias = 1075;
  static constexpr int MinExponent = -1074;
  static constexpr int MaxExponent = 971;
  static Bits toBits(double Value) { return std::bit_cast<Bits>(Value); }
  static double fromBits(Bits Value) { return std::bit_cast<double>(Value); }
};

template <> struct IeeeTraits<float> {
  using Bits = uint32_t;
  static constexpr int Precision = 24;
  static constexpr int StoredBits = 23;
  static constexpr int ExponentBitCount = 8;
  static constexpr int DecomposedBias = 150;
  static constexpr int MinExponent = -149;
  static constexpr int MaxExponent = 104;
  static Bits toBits(float Value) { return std::bit_cast<Bits>(Value); }
  static float fromBits(Bits Value) { return std::bit_cast<float>(Value); }
};

namespace fp_detail {

template <typename T> using BitsOf = typename IeeeTraits<T>::Bits;

template <typename T> constexpr BitsOf<T> storedMask() {
  return (BitsOf<T>(1) << IeeeTraits<T>::StoredBits) - 1;
}

template <typename T> constexpr BitsOf<T> exponentMask() {
  return (BitsOf<T>(1) << IeeeTraits<T>::ExponentBitCount) - 1;
}

template <typename T> BitsOf<T> biasedExponent(T Value) {
  return (IeeeTraits<T>::toBits(Value) >> IeeeTraits<T>::StoredBits) &
         exponentMask<T>();
}

} // namespace fp_detail

/// Returns the IEEE class of \p Value.
template <typename T> FpClass classify(T Value) {
  using Traits = IeeeTraits<T>;
  auto Exponent = fp_detail::biasedExponent(Value);
  auto Mantissa = Traits::toBits(Value) & fp_detail::storedMask<T>();
  if (Exponent == fp_detail::exponentMask<T>())
    return Mantissa == 0 ? FpClass::Infinity : FpClass::NaN;
  if (Exponent == 0)
    return Mantissa == 0 ? FpClass::Zero : FpClass::Subnormal;
  return FpClass::Normal;
}

/// Returns the sign bit of \p Value (true for negative, including -0.0).
template <typename T> bool signBit(T Value) {
  using Traits = IeeeTraits<T>;
  constexpr int TotalBits = Traits::StoredBits + Traits::ExponentBitCount;
  return (Traits::toBits(Value) >> TotalBits) & 1u;
}

/// Decomposes a finite, non-zero \p Value into |v| = F * 2^E.
/// Asserts the class precondition; the caller screens specials and zero.
template <typename T> Decomposed decompose(T Value) {
  using Traits = IeeeTraits<T>;
  FpClass Class = classify(Value);
  D4_ASSERT(Class == FpClass::Normal || Class == FpClass::Subnormal,
            "decompose requires a finite non-zero value");
  auto Exponent = fp_detail::biasedExponent(Value);
  uint64_t Mantissa = Traits::toBits(Value) & fp_detail::storedMask<T>();
  Decomposed Result;
  if (Class == FpClass::Subnormal) {
    Result.F = Mantissa;
    Result.E = Traits::MinExponent;
  } else {
    Result.F = Mantissa | (uint64_t(1) << Traits::StoredBits);
    Result.E = static_cast<int>(Exponent) - Traits::DecomposedBias;
  }
  return Result;
}

/// Recomposes a Decomposed magnitude into a positive value of type \p T.
/// The mantissa/exponent pair must be exactly representable (this is the
/// inverse of decompose, used by tests and the reader).
template <typename T> T compose(Decomposed Value) {
  using Traits = IeeeTraits<T>;
  using Bits = typename Traits::Bits;
  D4_ASSERT(Value.F != 0, "compose of zero mantissa");
  // Normalize into the canonical encoding: either the hidden bit is set and
  // the exponent is in the normal range, or E == MinExponent (subnormal).
  uint64_t F = Value.F;
  int E = Value.E;
  constexpr uint64_t Hidden = uint64_t(1) << Traits::StoredBits;
  while (F < Hidden && E > Traits::MinExponent) {
    F <<= 1;
    --E;
  }
  while (F >= Hidden * 2) {
    D4_ASSERT((F & 1) == 0, "mantissa not exactly representable");
    F >>= 1;
    ++E;
  }
  D4_ASSERT(F < Hidden * 2, "mantissa out of range");
  D4_ASSERT(E >= Traits::MinExponent && E <= Traits::MaxExponent,
            "exponent out of range");
  Bits Encoded;
  if (F < Hidden) {
    D4_ASSERT(E == Traits::MinExponent, "unnormalized mantissa above e_min");
    Encoded = static_cast<Bits>(F);
  } else {
    Bits BiasedExp = static_cast<Bits>(E + Traits::DecomposedBias);
    Encoded = (BiasedExp << Traits::StoredBits) |
              static_cast<Bits>(F & fp_detail::storedMask<T>());
  }
  return Traits::fromBits(Encoded);
}

/// Returns the next representable magnitude above \p Value (v+ in the
/// paper).  Overflows past the largest finite value are the caller's
/// responsibility (asserted).
template <typename T> Decomposed successor(Decomposed Value) {
  using Traits = IeeeTraits<T>;
  static_assert(Traits::Precision < 64,
                "wide formats use the BigInt-mantissa path");
  constexpr uint64_t Limit = uint64_t(1) << Traits::Precision;
  Decomposed Next = Value;
  ++Next.F;
  if (Next.F == Limit) { // f + 1 = b^p: bump the exponent (v+ = b^(p-1)*b^(e+1)).
    Next.F = Limit >> 1;
    ++Next.E;
    D4_ASSERT(Next.E <= Traits::MaxExponent, "successor overflows format");
  }
  return Next;
}

/// Returns the next representable magnitude below \p Value (v- in the
/// paper).  Asserts that \p Value is not the smallest positive value.
template <typename T> Decomposed predecessor(Decomposed Value) {
  using Traits = IeeeTraits<T>;
  constexpr uint64_t PowPMinus1 = uint64_t(1) << (Traits::Precision - 1);
  Decomposed Prev = Value;
  if (Value.F == PowPMinus1 && Value.E > Traits::MinExponent) {
    // The gap below a power of two is narrower: v- = (b^p - 1) * b^(e-1).
    Prev.F = (PowPMinus1 << 1) - 1;
    --Prev.E;
    return Prev;
  }
  D4_ASSERT(Value.F > 1 || Value.E > Traits::MinExponent,
            "predecessor of the smallest positive value");
  --Prev.F;
  return Prev;
}

} // namespace dragon4

#endif // DRAGON4_FP_IEEE_TRAITS_H
