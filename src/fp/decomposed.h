//===- fp/decomposed.h - Mantissa/exponent form ------------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The (f, e) view of a floating-point number used throughout the paper:
/// v = f * b^e with integer mantissa f and exponent e (b = 2 for IEEE
/// formats).  Subnormals are represented un-normalized with e pinned at the
/// format's minimum exponent.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FP_DECOMPOSED_H
#define DRAGON4_FP_DECOMPOSED_H

#include <cstdint>

namespace dragon4 {

/// IEEE-754 value classification.
enum class FpClass {
  Zero,      ///< +0.0 or -0.0.
  Subnormal, ///< Non-zero with the minimum exponent and no hidden bit.
  Normal,    ///< Ordinary normalized value.
  Infinity,  ///< +inf or -inf.
  NaN,       ///< Not a number (quiet or signaling).
};

/// A finite non-zero magnitude decomposed as F * 2^E.
///
/// For a normal binary64 value F includes the hidden bit (2^52 <= F < 2^53)
/// and E = biasedExponent - 1075; for a subnormal, F = storedMantissa and
/// E = -1074.  The conversion algorithms only ever see positive magnitudes;
/// the sign is handled by the formatting layer.
struct Decomposed {
  uint64_t F = 0; ///< Integer mantissa, 0 < F < 2^p.
  int E = 0;      ///< Base-2 exponent.

  friend bool operator==(const Decomposed &L, const Decomposed &R) {
    return L.F == R.F && L.E == R.E;
  }
};

} // namespace dragon4

#endif // DRAGON4_FP_DECOMPOSED_H
