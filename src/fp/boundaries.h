//===- fp/boundaries.h - Table 1 initial values ------------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The high-precision-integer starting state of the conversion algorithm:
/// Table 1 of the paper.  Given v = f * b^e it produces integers
/// (r, s, m+, m-) such that
///
///   v = r / s,   (v+ - v) / 2 = m+ / s,   (v - v-) / 2 = m- / s,
///
/// i.e. low = (r - m-) / s and high = (r + m+) / s are the midpoints of the
/// gaps to the neighbouring floating-point values.  The factor of two that
/// makes the midpoints exact is baked into r and s (every Table 1 entry
/// carries "x 2").
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FP_BOUNDARIES_H
#define DRAGON4_FP_BOUNDARIES_H

#include "bigint/bigint.h"
#include "fp/decomposed.h"
#include "fp/ieee_traits.h"

namespace dragon4 {

/// The exact state (r, s, m+, m-) the digit-generation loop starts from.
struct ScaledStart {
  BigInt R;      ///< Numerator of v.
  BigInt S;      ///< Common denominator.
  BigInt MPlus;  ///< Numerator of high - v.
  BigInt MMinus; ///< Numerator of v - low.
};

/// Builds the Table 1 initial values for v = F * InputBase^E where the
/// format has \p Precision base-\p InputBase digits of mantissa and minimum
/// exponent \p MinExponent.  F must be positive.
///
/// The four rows of Table 1:
///   e >= 0, f != b^(p-1):              r = f*b^e*2, s = 2,        m+ = m- = b^e
///   e >= 0, f  = b^(p-1):              r = f*b^(e+1)*2, s = b*2,  m+ = b^(e+1), m- = b^e
///   e < 0, e = min exp or f != b^(p-1): r = f*2, s = b^(-e)*2,    m+ = m- = 1
///   e < 0, e > min exp and f = b^(p-1): r = f*b*2, s = b^(1-e)*2, m+ = b, m- = 1
///
/// The asymmetric rows are the "narrower gap below a power of the base"
/// cases (the predecessor of b^(p-1)*b^e sits only b^(e-1) away).
ScaledStart makeScaledStart(uint64_t F, int E, int Precision, int MinExponent,
                            unsigned InputBase = 2);

/// Generalization for mantissas wider than 64 bits (e.g. binary128's
/// p = 113): identical Table 1 logic over a BigInt mantissa.
ScaledStart makeScaledStartBig(const BigInt &F, int E, int Precision,
                               int MinExponent, unsigned InputBase = 2);

/// Convenience overload for a decomposed IEEE value.
template <typename T> ScaledStart makeScaledStart(Decomposed Value) {
  using Traits = IeeeTraits<T>;
  return makeScaledStart(Value.F, Value.E, Traits::Precision,
                         Traits::MinExponent);
}

} // namespace dragon4

#endif // DRAGON4_FP_BOUNDARIES_H
