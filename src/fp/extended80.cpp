//===- fp/extended80.cpp - x87 80-bit extended precision ---------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "fp/extended80.h"

#include "support/checks.h"

#include <cmath>

namespace dragon4 {

template <> FpClass classify<long double>(long double Value) {
  switch (std::fpclassify(Value)) {
  case FP_ZERO:
    return FpClass::Zero;
  case FP_SUBNORMAL:
    return FpClass::Subnormal;
  case FP_NORMAL:
    return FpClass::Normal;
  case FP_INFINITE:
    return FpClass::Infinity;
  default:
    return FpClass::NaN;
  }
}

template <> bool signBit<long double>(long double Value) {
  return std::signbit(Value);
}

template <> Decomposed decompose<long double>(long double Value) {
  FpClass Class = classify(Value);
  D4_ASSERT(Class == FpClass::Normal || Class == FpClass::Subnormal,
            "decompose requires a finite non-zero value");
  (void)Class;
  int Exp2;
  long double Fraction = std::frexp(std::fabs(Value), &Exp2);
  // Fraction in [0.5, 1): scale the full 64-bit significand out exactly.
  Decomposed Result;
  Result.F = static_cast<uint64_t>(std::ldexp(Fraction, 64));
  Result.E = Exp2 - 64;
  // frexpl normalizes subnormals; renormalize onto the format's minimum
  // exponent so the Table 1 narrow-gap test sees the true mantissa form.
  constexpr int MinExponent = IeeeTraits<long double>::MinExponent;
  if (Result.E < MinExponent) {
    unsigned Shift = static_cast<unsigned>(MinExponent - Result.E);
    D4_ASSERT(Shift < 64 && (Result.F & ((uint64_t(1) << Shift) - 1)) == 0,
              "subnormal renormalization must be exact");
    Result.F >>= Shift;
    Result.E = MinExponent;
  }
  return Result;
}

template <> long double compose<long double>(Decomposed Value) {
  D4_ASSERT(Value.F != 0, "compose of zero mantissa");
  // F has at most 64 bits = the format's precision: ldexpl is exact.
  return std::ldexp(static_cast<long double>(Value.F), Value.E);
}

} // namespace dragon4
