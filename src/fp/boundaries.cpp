//===- fp/boundaries.cpp - Table 1 initial values --------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "fp/boundaries.h"

#include "bigint/power_cache.h"
#include "support/checks.h"

using namespace dragon4;

ScaledStart dragon4::makeScaledStartBig(const BigInt &F, int E, int Precision,
                                        int MinExponent, unsigned InputBase) {
  D4_ASSERT(!F.isZero() && !F.isNegative(), "mantissa must be positive");
  D4_ASSERT(InputBase >= 2, "input base must be at least 2");
  D4_ASSERT(E >= MinExponent, "exponent below the format minimum");

  // Is v's predecessor gap narrower?  True exactly when f is the smallest
  // normalized mantissa and the exponent can still be lowered.
  const BigInt PowPMinus1 =
      BigInt::pow(InputBase, static_cast<unsigned>(Precision - 1));
  const bool NarrowBelow = F == PowPMinus1 && E > MinExponent;

  ScaledStart Start;
  if (E >= 0) {
    if (!NarrowBelow) {
      // r = f * b^e * 2, s = 2, m+ = m- = b^e.
      const BigInt &BToE = cachedPow(InputBase, static_cast<unsigned>(E));
      Start.R = F * BToE;
      Start.R <<= 1;
      Start.S = BigInt(uint64_t(2));
      Start.MPlus = BToE;
      Start.MMinus = BToE;
    } else {
      // r = f * b^(e+1) * 2, s = b * 2, m+ = b^(e+1), m- = b^e.
      // Fetch the larger exponent first: growing the cache reallocates its
      // backing vector, so a b^e reference taken earlier would dangle.
      const BigInt &BToE1 = cachedPow(InputBase, static_cast<unsigned>(E + 1));
      const BigInt &BToE = cachedPow(InputBase, static_cast<unsigned>(E));
      Start.R = F * BToE1;
      Start.R <<= 1;
      Start.S = BigInt(uint64_t(2) * InputBase);
      Start.MPlus = BToE1;
      Start.MMinus = BToE;
    }
    return Start;
  }

  if (!NarrowBelow) {
    // r = f * 2, s = b^(-e) * 2, m+ = m- = 1.
    Start.R = F;
    Start.R <<= 1;
    Start.S = cachedPow(InputBase, static_cast<unsigned>(-E));
    Start.S.mulSmall(2);
    Start.MPlus = BigInt(uint64_t(1));
    Start.MMinus = BigInt(uint64_t(1));
  } else {
    // r = f * b * 2, s = b^(1-e) * 2, m+ = b, m- = 1.
    Start.R = F;
    Start.R.mulSmall(InputBase);
    Start.R <<= 1;
    Start.S = cachedPow(InputBase, static_cast<unsigned>(1 - E));
    Start.S.mulSmall(2);
    Start.MPlus = BigInt(uint64_t(InputBase));
    Start.MMinus = BigInt(uint64_t(1));
  }
  return Start;
}

ScaledStart dragon4::makeScaledStart(uint64_t F, int E, int Precision,
                                     int MinExponent, unsigned InputBase) {
  D4_ASSERT(F > 0, "mantissa must be positive");
  return makeScaledStartBig(BigInt(F), E, Precision, MinExponent, InputBase);
}
