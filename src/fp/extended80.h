//===- fp/extended80.h - x87 80-bit extended precision -----------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Support for the x87 80-bit extended format (long double on x86-64
/// Linux).  Its 64-bit significand is stored with an *explicit* integer
/// bit, so the hidden-bit bit-twiddling of the generic IeeeTraits
/// machinery does not apply; instead the decompose/compose/classify/
/// signBit function templates are specialized here using frexpl/ldexpl,
/// which are exact for this format.  Everything downstream (Table 1,
/// scaling, both output modes, the reader) is already written against
/// (F, E, Precision, MinExponent) and works unchanged -- the conversion
/// core never assumed a particular significand width beyond fitting F in
/// 64 bits, which p = 64 does exactly.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FP_EXTENDED80_H
#define DRAGON4_FP_EXTENDED80_H

#include "fp/ieee_traits.h"

#include <limits>

namespace dragon4 {

static_assert(std::numeric_limits<long double>::digits == 64,
              "extended80 support expects the x87 80-bit long double");

template <> struct IeeeTraits<long double> {
  static constexpr int Precision = 64;
  // v = F * 2^E with 2^63 <= F < 2^64 for normals; subnormals at -16445.
  static constexpr int MinExponent = -16445;
  static constexpr int MaxExponent = 16320; // 16383 - 63.
};

template <> FpClass classify<long double>(long double Value);
template <> bool signBit<long double>(long double Value);
template <> Decomposed decompose<long double>(long double Value);
template <> long double compose<long double>(Decomposed Value);

} // namespace dragon4

#endif // DRAGON4_FP_EXTENDED80_H
