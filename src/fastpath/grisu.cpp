//===- fastpath/grisu.cpp - Grisu3 fast shortest-output path ------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation after Loitsch (PLDI 2010), sections 5-6: normalize the
/// value and its rounding-range boundaries to 64-bit significands, scale
/// them by a cached power of ten so the binary exponent lands in a window
/// where integer and fraction parts separate cheaply, generate digits of
/// the upper boundary, stop inside the (error-shrunk) safe interval, then
/// "weed" the final digit toward the value -- refusing whenever the
/// +/-1-unit error bars could change the answer.
///
//===----------------------------------------------------------------------===//

#include "fastpath/grisu.h"

#include "bigint/power_cache.h"
#include "fastpath/diyfp.h"
#include "obs/trace.h"
#include "prof/phase.h"
#include "support/checks.h"

#include <bit>
#include <cmath>
#include <vector>

using namespace dragon4;

namespace {

/// Target window for the scaled binary exponent: with E in
/// [Alpha, Gamma] = [-60, -32] the integer part of a 64-bit significand
/// holds at least one and at most ~9 decimal digits.
constexpr int Alpha = -60;
constexpr int Gamma = -32;

/// 10^K10 with a 64-bit correctly rounded significand, straight from the
/// exact bignum power (negative K10 via a 128-plus-bit division).
DiyFp computePowerOfTen(int K10) {
  // Cache warming is per-thread one-time work: its BigInt traffic must not
  // be charged to whichever conversion happened to touch the power first
  // (it would skew op counts and break thread-count determinism).
  D4_OBS_SUPPRESS_TRACE();
  if (K10 >= 0) {
    const BigInt &Exact = cachedPow(10, static_cast<unsigned>(K10));
    int Bits = static_cast<int>(Exact.bitLength());
    if (Bits <= 64)
      return diyNormalize(DiyFp{Exact.toUint64(), 0});
    // Keep the top 64 bits, rounding half-up on the first dropped bit
    // (round-half-up keeps the error within the +/-1 unit the algorithm
    // already assumes).
    BigInt Top = Exact;
    Top >>= static_cast<size_t>(Bits - 64);
    uint64_t F = Top.toUint64();
    bool RoundBit = Exact.testBit(static_cast<size_t>(Bits - 65));
    int E = Bits - 64;
    if (RoundBit) {
      ++F;
      if (F == 0) { // Carried out of 64 bits: 2^64 = 2^63 * 2.
        F = uint64_t(1) << 63;
        E += 1;
      }
    }
    return DiyFp{F, E};
  }
  // 10^-n = 2^-(Bits+63) * (2^(Bits+63) / 10^n), quotient in (2^63, 2^64).
  const BigInt &P = cachedPow(10, static_cast<unsigned>(-K10));
  int Bits = static_cast<int>(P.bitLength());
  BigInt Numerator(uint64_t(1));
  Numerator <<= static_cast<size_t>(Bits + 63);
  BigInt Q, R;
  BigInt::divMod(Numerator, P, Q, R);
  // Round to nearest via the remainder.
  BigInt Doubled = R;
  Doubled.mulSmall(2);
  if (Doubled >= P)
    Q.addSmall(1);
  int E = -(Bits + 63);
  if (Q.bitLength() > 64) {
    Q >>= 1; // Rounding reached 2^64: drop the (zero) low bit.
    E += 1;
  }
  return diyNormalize(DiyFp{Q.toUint64(), E});
}

/// Largest power of ten not above \p Value (Value < 2^MaxBits), plus its
/// exponent: the initial decimal position of the integer part.
void biggestPowerTen(uint32_t Value, int MaxBits, uint32_t &Power,
                     int &Exponent) {
  static const uint32_t Powers[] = {1,      10,      100,      1000,
                                    10000,  100000,  1000000,  10000000,
                                    100000000, 1000000000};
  // floor(MaxBits * log10(2)) guesses the digit count to within one.
  int Guess = (MaxBits + 1) * 1233 / 4096; // 1233/4096 ~ log10(2).
  if (Guess > 0 && Value < Powers[Guess])
    --Guess;
  Power = Powers[Guess];
  Exponent = Guess;
}

/// Loitsch's round_weed: move the last digit of the buffer toward w and
/// certify the choice despite the +/-Unit error bars.  Returns false when
/// the answer cannot be certified (Grisu3's failure signal).
bool roundWeed(std::vector<uint8_t> &Digits, uint64_t DistanceTooHighW,
               uint64_t UnsafeInterval, uint64_t Rest, uint64_t TenKappa,
               uint64_t Unit) {
  // Success requires clearance of several units inside the interval; bail
  // out before any of the unsigned arithmetic below can wrap.
  if (UnsafeInterval < 4 * Unit || DistanceTooHighW < Unit)
    return false;
  uint64_t SmallDistance = DistanceTooHighW - Unit;
  uint64_t BigDistance = DistanceTooHighW + Unit;
  // Decrement the last digit (moving the candidate down toward w) while
  // that provably gets closer to w and stays inside the safe interval.
  while (Rest < SmallDistance && UnsafeInterval - Rest >= TenKappa &&
         (Rest + TenKappa < SmallDistance ||
          SmallDistance - Rest >= Rest + TenKappa - SmallDistance)) {
    D4_ASSERT(!Digits.empty() && Digits.back() > 0,
              "weeding ran out of digits");
    --Digits.back();
    Rest += TenKappa;
  }
  // If the bigger error bar would have chosen a different digit, the
  // result is ambiguous: fail and let the exact algorithm decide.
  if (Rest < BigDistance && UnsafeInterval - Rest >= TenKappa &&
      (Rest + TenKappa < BigDistance ||
       BigDistance - Rest > Rest + TenKappa - BigDistance))
    return false;
  // Safe only comfortably inside the interval (2 units from the low end,
  // 4 from the high end -- Loitsch's margins).
  return 2 * Unit <= Rest && Rest <= UnsafeInterval - 4 * Unit;
}

/// Digit generation for the scaled boundaries (all exponents equal, in
/// [Alpha, Gamma]).  On success fills Digits and Kappa (the number of
/// digits the decimal exponent grows by relative to -K10).
bool digitGen(DiyFp Low, DiyFp W, DiyFp High, std::vector<uint8_t> &Digits,
              int &Kappa) {
  D4_ASSERT(Low.E == W.E && W.E == High.E, "boundaries must share exponents");
  D4_ASSERT(High.E >= Alpha && High.E <= Gamma, "exponent outside window");
  // The scaled boundaries carry up to one unit of error each; shrink the
  // safe interval accordingly (too_low/too_high are 1 unit outward).
  uint64_t Unit = 1;
  DiyFp TooLow{Low.F - Unit, Low.E};
  DiyFp TooHigh{High.F + Unit, High.E};
  uint64_t UnsafeInterval = TooHigh.F - TooLow.F;

  DiyFp One{uint64_t(1) << -W.E, W.E};
  auto Integrals = static_cast<uint32_t>(TooHigh.F >> -One.E);
  uint64_t Fractionals = TooHigh.F & (One.F - 1);

  uint32_t Divisor;
  int DivisorExponent;
  biggestPowerTen(Integrals, 64 - (-One.E), Divisor, DivisorExponent);
  Kappa = DivisorExponent + 1;

  // Integer-part digits.
  while (Kappa > 0) {
    Digits.push_back(static_cast<uint8_t>(Integrals / Divisor));
    Integrals %= Divisor;
    --Kappa;
    uint64_t Rest = (static_cast<uint64_t>(Integrals) << -One.E) +
                    Fractionals;
    if (Rest < UnsafeInterval) {
      return roundWeed(Digits, TooHigh.F - W.F, UnsafeInterval, Rest,
                       static_cast<uint64_t>(Divisor) << -One.E, Unit);
    }
    Divisor /= 10;
  }

  // Fraction digits: multiply everything by ten and peel the integer bit
  // field.  Unit grows with the scaling, tracking the absolute error.
  for (;;) {
    Fractionals *= 10;
    Unit *= 10;
    UnsafeInterval *= 10;
    Digits.push_back(static_cast<uint8_t>(Fractionals >> -One.E));
    Fractionals &= One.F - 1;
    --Kappa;
    if (Fractionals < UnsafeInterval) {
      return roundWeed(Digits, (TooHigh.F - W.F) * Unit, UnsafeInterval,
                       Fractionals, One.F, Unit);
    }
    if (Unit > UnsafeInterval)
      return false; // Error bars swallowed the interval: cannot certify.
  }
}

} // namespace

DiyFp dragon4::cachedPowerOfTen(int K10) {
  // Lazily filled per-thread cache over the full double range (and some
  // slack): 10^-360 .. 10^+360.
  constexpr int MinK = -360;
  constexpr int MaxK = 360;
  D4_ASSERT(K10 >= MinK && K10 <= MaxK, "power of ten out of cached range");
  struct Entry {
    DiyFp Value;
    bool Filled = false;
  };
  thread_local std::vector<Entry> Cache(MaxK - MinK + 1);
  Entry &Slot = Cache[static_cast<size_t>(K10 - MinK)];
  if (!Slot.Filled) {
    Slot.Value = computePowerOfTen(K10);
    Slot.Filled = true;
  }
  return Slot.Value;
}

std::optional<DigitString>
dragon4::grisuShortest(uint64_t F, int E, int Precision, int MinExponent) {
  DigitString Result;
  if (!grisuShortestInto(F, E, Precision, MinExponent, Result.Digits,
                         Result.K))
    return std::nullopt;
  return Result;
}

bool dragon4::grisuShortestInto(uint64_t F, int E, int Precision,
                                int MinExponent, std::vector<uint8_t> &Digits,
                                int &K) {
  D4_PROF_SPAN(FastPath);
  D4_ASSERT(F > 0, "fast path requires a positive mantissa");
  D4_ASSERT(Precision <= 62, "fast path requires p <= 62 (see header)");
  D4_ASSERT(F < (uint64_t(1) << Precision), "mantissa exceeds precision");

  // Rounding-range boundaries as exact DiyFps: high = (2F+1) * 2^(E-1);
  // low = (2F-1) * 2^(E-1), or (4F-1) * 2^(E-2) below a power of two.
  // Normalize High, then shift the others left onto High's exponent --
  // exact, because High has the largest magnitude of the three.
  DiyFp High = diyNormalize(DiyFp{2 * F + 1, E - 1});
  DiyFp W{F << (E - High.E), High.E};
  DiyFp Low;
  if (F == (uint64_t(1) << (Precision - 1)) && E > MinExponent)
    Low = DiyFp{(4 * F - 1) << (E - 2 - High.E), High.E};
  else
    Low = DiyFp{(2 * F - 1) << (E - 1 - High.E), High.E};

  // Pick 10^K10 landing the scaled exponent inside [Alpha, Gamma].
  // ceil((Alpha - e - 64) * log10(2)) starts within one; adjust exactly.
  int K10 = static_cast<int>(
      std::ceil((Alpha - (High.E + 64)) * 0.30102999566398114));
  DiyFp Ten = cachedPowerOfTen(K10);
  while (High.E + Ten.E + 64 < Alpha)
    Ten = cachedPowerOfTen(++K10);
  while (High.E + Ten.E + 64 > Gamma)
    Ten = cachedPowerOfTen(--K10);

  DiyFp ScaledW = diyMultiply(W, Ten);
  DiyFp ScaledHigh = diyMultiply(High, Ten);
  DiyFp ScaledLow = diyMultiply(Low, Ten);

  Digits.clear();
  int Kappa = 0;
  if (!digitGen(ScaledLow, ScaledW, ScaledHigh, Digits, Kappa))
    return false;
  D4_ASSERT(!Digits.empty() && Digits.front() != 0,
            "fast path produced a leading zero");

  // The emitted digits satisfy v ~ 0.d1...dn * 10^(n + Kappa) * 10^(-K10).
  K = static_cast<int>(Digits.size()) + Kappa - K10;
  return true;
}

namespace dragon4 {
template DigitString shortestDigitsFast<double>(double);
template DigitString shortestDigitsFast<float>(float);
} // namespace dragon4
