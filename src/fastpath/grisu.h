//===- fastpath/grisu.h - Grisu3 fast shortest-output path -------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Grisu3-style fast path for base-10 shortest output, after Loitsch,
/// "Printing floating-point numbers quickly and accurately with
/// integers" (PLDI 2010) -- the direct successor of the Burger-Dybvig
/// algorithm this library reproduces.  The idea: do the whole conversion
/// in 64-bit fixed-point arithmetic against a precomputed approximation
/// of 10^k, track the accumulated error, and *fail* whenever the error
/// could affect either shortness or the final rounding; the caller then
/// falls back to the exact bignum path.  On typical doubles it succeeds
/// ~99.5% of the time and is an order of magnitude faster.
///
/// Faithful to this repository's spirit, the 10^k cache is not a table of
/// magic constants: it is derived at first use from the exact BigInt
/// powers, rounded to 64 bits (tested against the bignum path bit for
/// bit).
///
/// The fast path models the conservative reader (boundaries excluded),
/// matching BoundaryMode::Conservative of the exact algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FASTPATH_GRISU_H
#define DRAGON4_FASTPATH_GRISU_H

#include "core/digits.h"
#include "core/free_format.h"
#include "fp/ieee_traits.h"

#include <optional>

namespace dragon4 {

/// A 64-bit-significand floating-point value F * 2^E ("do-it-yourself
/// floating point" in Loitsch's terminology).
struct DiyFp {
  uint64_t F = 0;
  int E = 0;
};

/// Returns 10^\p K10 as a DiyFp with a normalized (top-bit-set) 64-bit
/// significand, correctly rounded, computed from the exact BigInt power
/// and cached per thread.  Exposed for tests.
DiyFp cachedPowerOfTen(int K10);

/// Attempts the fast shortest conversion of the positive value F * 2^E
/// with the given precision/minimum exponent (base 10, conservative
/// boundaries).  Returns std::nullopt when the 64-bit error analysis
/// cannot certify the result; the caller must fall back to
/// freeFormatDigits.
std::optional<DigitString> grisuShortest(uint64_t F, int E, int Precision,
                                         int MinExponent);

/// Engine variant of grisuShortest: on success, fills \p Digits (cleared
/// first, capacity reused across calls) and sets \p K so that
/// v = 0.d1...dn * 10^K, and returns true.  Returns false when the error
/// analysis cannot certify the result; \p Digits is then garbage and the
/// caller must take the exact path.  Allocates nothing once \p Digits and
/// the per-thread 10^k cache are warm.
bool grisuShortestInto(uint64_t F, int E, int Precision, int MinExponent,
                       std::vector<uint8_t> &Digits, int &K);

/// Shortest base-10 digits of \p Value: Grisu3 when certifiable, the
/// exact Burger-Dybvig algorithm otherwise.  Result is always identical
/// to shortestDigits(Value, {.Boundaries = Conservative}).
template <typename T> DigitString shortestDigitsFast(T Value) {
  using Traits = IeeeTraits<T>;
  static_assert(Traits::Precision <= 62,
                "boundary scaling 4F-1 must fit in 64 bits");
  Decomposed D = decompose(Value);
  if (std::optional<DigitString> Fast = grisuShortest(
          D.F, D.E, Traits::Precision, Traits::MinExponent))
    return *Fast;
  FreeFormatOptions Options;
  Options.Boundaries = BoundaryMode::Conservative;
  return freeFormatDigits(D.F, D.E, Traits::Precision, Traits::MinExponent,
                          Options);
}

extern template DigitString shortestDigitsFast<double>(double);
extern template DigitString shortestDigitsFast<float>(float);

} // namespace dragon4

#endif // DRAGON4_FASTPATH_GRISU_H
