//===- fastpath/ryu.h - Ryu shortest-output fast path ------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Ryu-style shortest-form converter after Adams, "Ryu: fast
/// float-to-string conversion" (PLDI 2018) -- the front line of the
/// library's fallback ladder, ahead of Grisu3 and the exact Burger-Dybvig
/// loop.  Where Grisu3 runs an error analysis and *fails* on ~0.5% of
/// inputs, Ryu computes the exact scaled interval (v-, v, v+) with one
/// 128-bit cached power of five per conversion and tracks exactness
/// explicitly, so it never needs to give up for in-range inputs: the only
/// fallbacks are defensive range checks.
///
/// Faithful to this repository's spirit, the cached powers are not magic
/// constants: ryu_pow5.h builds them at compile time with the same
/// constexpr bignum evaluator as the parse table, and they are asserted
/// bit for bit against the runtime BigInt stack.
///
/// Unlike Grisu (hard-wired to the conservative reader with round-up
/// ties), this implementation models every symmetric boundary semantics:
/// the caller passes AcceptBounds (may the output land exactly on a
/// neighbour midpoint?) and the writer-side TieBreak.  Asymmetric reader
/// models (LowInclusive/HighInclusive) are not expressible and must take
/// the exact path; see ryuEligible.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FASTPATH_RYU_H
#define DRAGON4_FASTPATH_RYU_H

#include "core/digits.h"
#include "core/free_format.h"
#include "core/options.h"
#include "fp/format_traits.h"
#include "fp/ieee_traits.h"

#include <cstdint>
#include <vector>

namespace dragon4 {

/// Decides whether Ryu's symmetric-bounds model expresses the requested
/// reader semantics for a value whose mantissa parity is \p MantissaEven.
/// On success sets \p AcceptBounds (both interval endpoints admissible)
/// and returns true.  Every TieBreak is supported; only base 10 and
/// symmetric BoundaryFlags (LowOk == HighOk) are.
inline bool ryuEligible(unsigned Base, BoundaryMode Boundaries,
                        bool MantissaEven, bool &AcceptBounds) {
  if (Base != 10)
    return false;
  BoundaryFlags Flags = BoundaryFlags::resolveEven(Boundaries, MantissaEven);
  if (Flags.LowOk != Flags.HighOk)
    return false;
  AcceptBounds = Flags.LowOk;
  return true;
}

/// Engine entry point: converts the positive value F * 2^E (a format with
/// \p Precision <= 54 mantissa bits and minimum exponent \p MinExponent)
/// to its shortest correctly rounded decimal form.  On success fills
/// \p Digits (cleared first, capacity reused across calls) and sets \p K
/// so that v = 0.d1...dn * 10^K, and returns true.  Returns false only
/// when a defensive certification check fails (precision or cached-power
/// range exceeded); the caller must then fall back to Grisu3/Dragon4.
/// Allocates nothing once \p Digits is warm.
bool ryuShortestInto(uint64_t F, int E, int Precision, int MinExponent,
                     bool AcceptBounds, TieBreak Ties,
                     std::vector<uint8_t> &Digits, int &K);

/// Shortest base-10 digits of \p Value through the full fallback ladder:
/// Ryu where the semantics are symmetric, Grisu3 where its conservative
/// round-up model applies, the exact Burger-Dybvig loop otherwise.
/// Result is always identical to shortestDigits(Value, Options).
template <typename T>
DigitString shortestDigitsLadder(T Value, const FreeFormatOptions &Options);

extern template DigitString shortestDigitsLadder<Binary16>(
    Binary16, const FreeFormatOptions &);
extern template DigitString shortestDigitsLadder<float>(
    float, const FreeFormatOptions &);
extern template DigitString shortestDigitsLadder<double>(
    double, const FreeFormatOptions &);

} // namespace dragon4

#endif // DRAGON4_FASTPATH_RYU_H
