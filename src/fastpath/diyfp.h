//===- fastpath/diyfp.h - 64-bit fixed-point helpers --------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared 64-bit-significand arithmetic of the fast paths: the DiyFp
/// value type (declared in grisu.h), normalization, and the rounded
/// 128-bit product.  Error discipline: multiplying two values whose
/// significands are exact yields at most 1/2 unit of error; each inexact
/// input (e.g. a cached power of ten) contributes up to 1/2 more.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FASTPATH_DIYFP_H
#define DRAGON4_FASTPATH_DIYFP_H

#include "fastpath/grisu.h"
#include "support/checks.h"

#include <bit>

namespace dragon4 {

/// Rounded high 64 bits of the 128-bit product.
inline DiyFp diyMultiply(DiyFp A, DiyFp B) {
  unsigned __int128 Product =
      static_cast<unsigned __int128>(A.F) * B.F + (uint64_t(1) << 63);
  return DiyFp{static_cast<uint64_t>(Product >> 64), A.E + B.E + 64};
}

/// Shifts left until the top bit is set.
inline DiyFp diyNormalize(DiyFp Value) {
  D4_ASSERT(Value.F != 0, "cannot normalize zero");
  int Shift = std::countl_zero(Value.F);
  return DiyFp{Value.F << Shift, Value.E - Shift};
}

} // namespace dragon4

#endif // DRAGON4_FASTPATH_DIYFP_H
