//===- fastpath/ryu_pow5.h - Compile-time Ryu powers-of-five -----*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cached 128-bit powers of five the Ryu shortest-form converter
/// multiplies by (Adams, "Ryu: fast float-to-string conversion", PLDI
/// 2018).  Same entry semantics as the Eisel-Lemire parse table
/// (parse/pow5_table.h), whose constexpr bignum evaluator this header
/// reuses:
///
///   q >= 0  truncation: the top 128 bits of the exact integer 5^q,
///           normalized so bit 127 is set (values shorter than 128 bits
///           are shifted up exactly).  Ryu's POW5_SPLIT, at 128 bits.
///   q <  0  reciprocal: ceil(2^(bitlen(5^-q) + 127) / 5^-q), also
///           normalized.  Ryu's POW5_INV_SPLIT, at 128 bits.
///
/// The range differs from the parse table: printing a subnormal binary64
/// needs 5^i up to i = 325 (beyond the parser's 308), and the inverse
/// side reaches only ~-291, so this table spans the symmetric [-342,
/// 342].  128-bit entries exceed the 125/124 bits Ryu's correctness
/// theorem requires for binary64, so the mulShift floors below are exact
/// for every certified format.
///
/// Like the parse table this is built entirely at compile time -- no
/// initialization order, no locks, no heap -- and cross-checked bit for
/// bit against the runtime BigInt cachedPow stack by
/// tests/fastpath/ryu_pow5_test.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FASTPATH_RYU_POW5_H
#define DRAGON4_FASTPATH_RYU_POW5_H

#include "parse/pow5_table.h"

#include <array>
#include <cstddef>
#include <cstdint>

namespace dragon4::fastpath {

using parse::Pow5Entry;

/// Table bounds.  The positive side must reach -MinExponent scaled by
/// log5(2) (325 for binary64's e2 = -1076); the negative side mirrors the
/// parser's proven -342.  Symmetric for simplicity.
inline constexpr int RyuSmallestPowerOfFive = -342;
inline constexpr int RyuLargestPowerOfFive = 342;
inline constexpr int RyuPow5TableSize =
    RyuLargestPowerOfFive - RyuSmallestPowerOfFive + 1;

namespace ryu_pow5_detail {

/// Same evaluator as the parse table, over the wider Ryu range.  BigNat's
/// 16 limbs hold 5^342 (795 bits) with room to spare.
constexpr std::array<Pow5Entry, RyuPow5TableSize> makeRyuTable() {
  using namespace parse::pow5_detail;
  std::array<Pow5Entry, RyuPow5TableSize> Table{};
  BigNat P{}; // 5^Q for the ascending non-negative exponents.
  P.Limb[0] = 1;
  for (int Q = 0; Q <= RyuLargestPowerOfFive; ++Q) {
    Table[static_cast<size_t>(Q - RyuSmallestPowerOfFive)] = topBits128(P);
    mulSmall(P, 5);
  }
  BigNat D{}; // 5^-Q for the descending negative exponents.
  D.Limb[0] = 5;
  for (int Q = -1; Q >= RyuSmallestPowerOfFive; --Q) {
    Table[static_cast<size_t>(Q - RyuSmallestPowerOfFive)] = reciprocal128(D);
    mulSmall(D, 5);
  }
  return Table;
}

} // namespace ryu_pow5_detail

inline constexpr std::array<Pow5Entry, RyuPow5TableSize> RyuPow5Table =
    ryu_pow5_detail::makeRyuTable();

/// Entry for decimal exponent \p Q; Q must lie in
/// [RyuSmallestPowerOfFive, RyuLargestPowerOfFive].
constexpr const Pow5Entry &ryuPow5Entry(int Q) {
  return RyuPow5Table[static_cast<size_t>(Q - RyuSmallestPowerOfFive)];
}

/// bitlen(5^E): the number of bits in the exact power.  Ryu's pow5bits;
/// the magic fraction overestimates log2(5) by < 2^-19, exact for
/// E <= 3528.
constexpr int ryuPow5Bits(int E) {
  return static_cast<int>(
             (static_cast<uint32_t>(E) * uint32_t(1217359)) >> 19) +
         1;
}

// Spot anchors; full-range agreement with the BigInt stack (and with the
// parse table over the shared range) is asserted in
// tests/fastpath/ryu_pow5_test.cpp.
static_assert(ryuPow5Entry(0).Hi == 0x8000000000000000 &&
              ryuPow5Entry(0).Lo == 0);
static_assert(ryuPow5Entry(1).Hi == 0xa000000000000000 &&
              ryuPow5Entry(1).Lo == 0);
static_assert(ryuPow5Entry(-1).Hi == 0xcccccccccccccccc &&
              ryuPow5Entry(-1).Lo == 0xcccccccccccccccd);
static_assert(ryuPow5Bits(0) == 1 && ryuPow5Bits(1) == 3 &&
              ryuPow5Bits(325) == 755);

} // namespace dragon4::fastpath

#endif // DRAGON4_FASTPATH_RYU_POW5_H
