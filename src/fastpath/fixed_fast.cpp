//===- fastpath/fixed_fast.cpp - Gay-style fixed-format fast path -------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "fastpath/fixed_fast.h"

#include "core/scaling.h"
#include "fastpath/diyfp.h"
#include "fp/ieee_traits.h"
#include "support/checks.h"

#include <bit>

using namespace dragon4;

namespace {

const uint64_t PowersOfTen[] = {1ull,
                                10ull,
                                100ull,
                                1000ull,
                                10000ull,
                                100000ull,
                                1000000ull,
                                10000000ull,
                                100000000ull,
                                1000000000ull,
                                10000000000ull,
                                100000000000ull,
                                1000000000000ull,
                                10000000000000ull,
                                100000000000000ull,
                                1000000000000000ull,
                                10000000000000000ull,
                                100000000000000000ull};

/// The error budget of one multiply against one rounded cached power, in
/// units of the product's last place (see diyfp.h), with headroom.
constexpr uint64_t ErrorUnits = 2;

} // namespace

std::optional<DigitString> dragon4::fastFixedDigits(double Value,
                                                    int NumDigits) {
  D4_ASSERT(NumDigits >= 1 && NumDigits <= 17, "1-17 digits supported");
  D4_ASSERT(Value > 0, "fast path requires a positive finite value");

  Decomposed D = decompose(Value);
  DiyFp W = diyNormalize(DiyFp{D.F, D.E}); // Exact.
  int BitLength = 64 - std::countl_zero(D.F);
  int P10 = NumDigits - estimateScale(D.E, BitLength, 10);

  for (int Attempt = 0; Attempt < 3; ++Attempt) {
    DiyFp Product = diyMultiply(W, cachedPowerOfTen(P10));
    int Shift = -Product.E;
    if (Shift <= 2 || Shift >= 64)
      return std::nullopt; // Scaled value out of the comfortable window.
    uint64_t Integer = Product.F >> Shift;
    uint64_t Fraction = Product.F & ((uint64_t(1) << Shift) - 1);

    // The integer part must have exactly NumDigits digits; otherwise the
    // scale estimate was off by one -- adjust and retry.
    if (Integer >= PowersOfTen[NumDigits]) {
      --P10;
      continue;
    }
    if (Integer < PowersOfTen[NumDigits - 1]) {
      ++P10;
      continue;
    }

    // Certify the rounding: the true fraction lies within ErrorUnits of
    // the computed one, so the decision stands only when the distance to
    // the halfway point exceeds the budget.  (Every exact decimal tie
    // lands inside the budget and falls back, so no tie rule is needed.)
    uint64_t Half = uint64_t(1) << (Shift - 1);
    uint64_t Distance = Fraction > Half ? Fraction - Half : Half - Fraction;
    if (Distance <= ErrorUnits)
      return std::nullopt;

    uint64_t Rounded = Integer + (Fraction > Half ? 1 : 0);
    int K = NumDigits - P10;
    if (Rounded == PowersOfTen[NumDigits]) { // 99..9 rounded up to 100..0.
      Rounded = PowersOfTen[NumDigits - 1];
      ++K;
    }

    DigitString Result;
    Result.K = K;
    Result.Digits.resize(static_cast<size_t>(NumDigits));
    for (int I = NumDigits - 1; I >= 0; --I) {
      Result.Digits[static_cast<size_t>(I)] =
          static_cast<uint8_t>(Rounded % 10);
      Rounded /= 10;
    }
    D4_ASSERT(Result.Digits.front() != 0, "leading digit must be non-zero");
    return Result;
  }
  return std::nullopt;
}

DigitString dragon4::fixedDigitsWithFastPath(double Value, int NumDigits,
                                             TieBreak Ties) {
  if (NumDigits <= 17)
    if (std::optional<DigitString> Fast = fastFixedDigits(Value, NumDigits))
      return *Fast;
  return straightforwardDigits(Value, NumDigits, 10, Ties);
}
