//===- fastpath/ryu.cpp - Ryu shortest-output fast path ---------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Ryu digit generation (Adams, PLDI 2018), generic over every
/// certified format through the runtime (Precision, MinExponent) pair --
/// one code path serves binary16, binary32, and binary64, exactly like
/// the exact loop it fronts.
///
/// Outline: decompose v = m2 * 2^e2 and scale the halfway-neighbour
/// interval by four so the three interval points u = 4m2 - 1 - mmShift,
/// v = 4m2, w = 4m2 + 2 are integers.  Multiply all three by a cached
/// 128-bit power of five to land in decimal (the floor of each product is
/// exact at this table precision -- the paper's Theorem 5.1 needs 125
/// bits for binary64), track which of the three scaled values are exact,
/// then remove digits while the interval still spans a multiple of ten,
/// and round the last kept digit with full knowledge of ties.
///
//===----------------------------------------------------------------------===//

#include "fastpath/ryu.h"

#include "fastpath/grisu.h"
#include "fastpath/ryu_pow5.h"
#include "format/render_core.h"
#include "prof/phase.h"
#include "support/checks.h"
#include "support/testhooks.h"

using namespace dragon4;
using namespace dragon4::fastpath;

namespace dragon4::testhooks {

// Flips the digit-removal loop's interval-width comparison from strict to
// inclusive (see ryu.h); the Ryu analogue of FlipDigitLoopLowComparison.
bool FlipRyuBoundComparison = false;

} // namespace dragon4::testhooks

namespace {

/// floor(e * log10(2)) for 0 <= e <= 1650.
inline int log10Pow2(int E) {
  return static_cast<int>((static_cast<uint32_t>(E) * uint32_t(78913)) >> 18);
}

/// floor(e * log10(5)) for 0 <= e <= 2620.
inline int log10Pow5(int E) {
  return static_cast<int>((static_cast<uint32_t>(E) * uint32_t(732923)) >>
                          20);
}

/// Does 5^Q divide V?  Plain trial division: Q is small whenever the
/// answer can be yes (5^24 > 2^55), so the loop exits fast.
inline bool multipleOfPowerOf5(uint64_t V, int Q) {
  for (; Q > 0; --Q) {
    if (V % 5 != 0)
      return false;
    V /= 5;
  }
  return true;
}

/// Does 2^Q divide V?  V is a nonzero sub-2^57 value, so Q >= 64 is
/// always false.
inline bool multipleOfPowerOf2(uint64_t V, int Q) {
  return Q < 64 && (V & ((uint64_t(1) << Q) - 1)) == 0;
}

/// floor(M * (Hi:Lo) / 2^Shift) for M < 2^57 and 64 < Shift < 128.  The
/// two 64x64 partial products fit unsigned __int128 with the top bits to
/// spare, and the sum keeps the full 128 bits above the discarded low
/// word, so the single wide shift is exact.
inline uint64_t mulShift(uint64_t M, const Pow5Entry &Pow, int Shift) {
  unsigned __int128 Sum =
      (static_cast<unsigned __int128>(M) * Pow.Hi) +
      ((static_cast<unsigned __int128>(M) * Pow.Lo) >> 64);
  return static_cast<uint64_t>(Sum >> (Shift - 64));
}

inline int decimalLength(uint64_t V) {
  int Length = 1;
  while (V >= 10) {
    V /= 10;
    ++Length;
  }
  return Length;
}

} // namespace

bool dragon4::ryuShortestInto(uint64_t F, int E, int Precision,
                              int MinExponent, bool AcceptBounds,
                              TieBreak Ties, std::vector<uint8_t> &Digits,
                              int &K) {
  D4_PROF_SPAN(RyuPath);
  D4_ASSERT(F != 0, "zero handled by the caller");

  // Certification envelope: 4F + 2 and the mulShift products must fit
  // (Precision + 3 + 64 <= 128 bits), and the paper's exactness theorem
  // is proven for the binary64 parameter range.  Wider formats fall back.
  if (Precision > 54)
    return false;

  // Scale by four: mm/mv/mp are the low neighbour midpoint, the value,
  // and the high neighbour midpoint as integers against e2 = E - 2.  The
  // gap below is halved (mmShift == 0) exactly when F sits on a binade
  // boundary above the subnormal range.
  const int E2 = E - 2;
  const uint64_t Mv = 4 * F;
  const unsigned MmShift =
      (F != (uint64_t(1) << (Precision - 1)) || E <= MinExponent) ? 1 : 0;

  uint64_t Vr, Vp, Vm;
  int E10;
  bool VmIsTrailingZeros = false;
  bool VrIsTrailingZeros = false;
  if (E2 >= 0) {
    // v = mv * 2^e2; aim for e10 = q ~ floor(e2 log10 2) removed decimal
    // digits (one less near the bottom so at most one extra digit is ever
    // removed by the loop).
    const int Q = log10Pow2(E2) - (E2 > 3);
    E10 = Q;
    if (Q == 0) {
      // 10^0: the scaled values are the inputs themselves (e2 <= 6 here,
      // so the shifts cannot overflow 2^63).
      Vr = Mv << E2;
      Vp = (Mv + 2) << E2;
      Vm = (Mv - 1 - MmShift) << E2;
    } else {
      // Multiply by the 128-bit reciprocal of 5^q.  The entry is
      // ceil(2^(pow5bits(q) + 127) / 5^q); with j chosen below the
      // mulShift floor equals floor(x * 2^e2 / 10^q) exactly.
      if (-Q < RyuSmallestPowerOfFive)
        return false;
      const int J = -E2 + Q + ryuPow5Bits(Q) + 127;
      if (J <= 64 || J >= 128)
        return false;
      const Pow5Entry &Inv = ryuPow5Entry(-Q);
      Vr = mulShift(Mv, Inv, J);
      Vp = mulShift(Mv + 2, Inv, J);
      Vm = mulShift(Mv - 1 - MmShift, Inv, J);
    }
    // Exactness: 2^q always divides x * 2^e2 here (q <= e2), so only the
    // power of five matters.  Only the flag the rounding logic will
    // consult needs computing: ties require 5 | mv, and an exact excluded
    // upper bound is handled by shrinking it.
    if (Mv % 5 == 0) {
      VrIsTrailingZeros = multipleOfPowerOf5(Mv, Q);
    } else if (AcceptBounds) {
      VmIsTrailingZeros = multipleOfPowerOf5(Mv - 1 - MmShift, Q);
    } else {
      Vp -= multipleOfPowerOf5(Mv + 2, Q);
    }
  } else {
    // v = mv / 2^-e2; aim to keep q ~ floor(-e2 log10 5) binary digits of
    // headroom, scaling by 5^i with i = -e2 - q.
    const int Q = log10Pow5(-E2) - (-E2 > 1);
    E10 = Q + E2;
    const int I = -E2 - Q;
    if (I > RyuLargestPowerOfFive)
      return false;
    // Entry is the truncated (or, below 128 bits, exact) top 128 bits of
    // 5^i; with this j the mulShift floor equals floor(x * 5^i / 2^q).
    const int J = Q - (ryuPow5Bits(I) - 128);
    if (J <= 64 || J >= 128)
      return false;
    const Pow5Entry &Pow = ryuPow5Entry(I);
    Vr = mulShift(Mv, Pow, J);
    Vp = mulShift(Mv + 2, Pow, J);
    Vm = mulShift(Mv - 1 - MmShift, Pow, J);
    if (Q <= 1) {
      // Every scaled value is exact: mv = 4F has two trailing zero bits,
      // mp = mv + 2 has one, and mm has one exactly when mmShift == 1.
      VrIsTrailingZeros = true;
      if (AcceptBounds)
        VmIsTrailingZeros = MmShift == 1;
      else
        --Vp; // Exact excluded upper bound: shrink it.
    } else if (Q < 63) {
      // vr is exact iff 2^q divides mv (5^i contributes no twos).
      VrIsTrailingZeros = multipleOfPowerOf2(Mv, Q);
    }
  }

  // Digit removal: drop the last digit of all three values while the
  // interval still spans a full decade, tracking removed digits where
  // ties or an exact lower bound are still possible.  The test hook
  // widens the strict comparison to >=, removing one digit too many --
  // the classic off-by-one this library's verify tier exists to catch.
  const bool FlipBound = testhooks::FlipRyuBoundComparison;
  int Removed = 0;
  uint8_t LastRemovedDigit = 0;
  uint64_t Output;
  if (VmIsTrailingZeros || VrIsTrailingZeros) {
    // Rare (~0.7% of doubles): exactness bookkeeping is live.
    for (;;) {
      const uint64_t VpDiv10 = Vp / 10;
      const uint64_t VmDiv10 = Vm / 10;
      // The flipped (injected-bug) comparison still terminates: once the
      // values run out of digits there is nothing left to over-remove.
      if (FlipBound ? (VpDiv10 < VmDiv10 || VpDiv10 == 0)
                    : VpDiv10 <= VmDiv10)
        break;
      const uint64_t VrDiv10 = Vr / 10;
      VmIsTrailingZeros &= Vm - 10 * VmDiv10 == 0;
      VrIsTrailingZeros &= LastRemovedDigit == 0;
      LastRemovedDigit = static_cast<uint8_t>(Vr - 10 * VrDiv10);
      Vr = VrDiv10;
      Vp = VpDiv10;
      Vm = VmDiv10;
      ++Removed;
    }
    if (VmIsTrailingZeros) {
      // The exact, admissible lower bound ends in zeros: keep stripping
      // so the loop below may stop on vm itself.
      while (Vm != 0 && Vm % 10 == 0) {
        VrIsTrailingZeros &= LastRemovedDigit == 0;
        LastRemovedDigit = static_cast<uint8_t>(Vr % 10);
        Vr /= 10;
        Vp /= 10;
        Vm /= 10;
        ++Removed;
      }
    }
    // An exact tie (removed digits are exactly one half) is broken by the
    // writer's TieBreak: round-up keeps the 5, round-down demotes it, and
    // round-even demotes it only when the kept digit is already even.
    const bool ExactTie = VrIsTrailingZeros && LastRemovedDigit == 5;
    if (ExactTie && (Ties == TieBreak::RoundDown ||
                     (Ties == TieBreak::RoundEven && Vr % 2 == 0)))
      LastRemovedDigit = 4;
    Output = Vr + ((Vr == Vm && (!AcceptBounds || !VmIsTrailingZeros)) ||
                   LastRemovedDigit >= 5);
  } else {
    // Common case: nothing is exact, so no tie can occur and only
    // "removed at least one half" matters.
    bool RoundUp = false;
    for (;;) {
      const uint64_t VpDiv10 = Vp / 10;
      const uint64_t VmDiv10 = Vm / 10;
      if (FlipBound ? (VpDiv10 < VmDiv10 || VpDiv10 == 0)
                    : VpDiv10 <= VmDiv10)
        break;
      const uint64_t VrDiv10 = Vr / 10;
      RoundUp = Vr - 10 * VrDiv10 >= 5;
      Vr = VrDiv10;
      Vp = VpDiv10;
      Vm = VmDiv10;
      ++Removed;
    }
    Output = Vr + (Vr == Vm || RoundUp);
  }

  // v = Output * 10^(E10 + Removed); in the library's digit convention
  // v = 0.d1...dn * 10^K.  Emission goes through the unified render core's
  // digit store, which honors the CI regression self-test's synthetic
  // per-digit slowdown so the planted regression stays visible now that
  // Ryu fronts the conversion.
  const int Length = decimalLength(Output);
  K = E10 + Removed + Length;
  render_detail::storeDecimalDigits(Output, Length, Digits);
  return true;
}

namespace dragon4 {

template <typename T>
DigitString shortestDigitsLadder(T Value, const FreeFormatOptions &Options) {
  using Traits = IeeeTraits<T>;
  if constexpr (FormatTraits<T>::RyuCertified) {
    Decomposed D = decompose(Value);
    bool AcceptBounds = false;
    if (ryuEligible(Options.Base, Options.Boundaries, (D.F & 1) == 0,
                    AcceptBounds)) {
      DigitString Out;
      if (ryuShortestInto(D.F, D.E, Traits::Precision, Traits::MinExponent,
                          AcceptBounds, Options.Ties, Out.Digits, Out.K))
        return Out;
    }
    // Grisu3 rung: its conservative round-up model, where it applies.
    if (Options.Base == 10 && Options.Ties == TieBreak::RoundUp &&
        (Options.Boundaries == BoundaryMode::Conservative ||
         (Options.Boundaries == BoundaryMode::NearestEven && (D.F & 1)))) {
      if constexpr (FormatTraits<T>::FastPathCertified) {
        DigitString Out;
        if (grisuShortestInto(D.F, D.E, Traits::Precision,
                              Traits::MinExponent, Out.Digits, Out.K))
          return Out;
      }
    }
  }
  return shortestDigits(Value, Options);
}

template DigitString shortestDigitsLadder<Binary16>(Binary16,
                                                    const FreeFormatOptions &);
template DigitString shortestDigitsLadder<float>(float,
                                                 const FreeFormatOptions &);
template DigitString shortestDigitsLadder<double>(double,
                                                  const FreeFormatOptions &);

} // namespace dragon4
