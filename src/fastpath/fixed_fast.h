//===- fastpath/fixed_fast.h - Gay-style fixed-format fast path ---*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast path the paper's related-work section attributes to Gay:
/// "floating-point arithmetic is sufficiently accurate in most cases when
/// the requested number of digits is small", with the exact algorithm as
/// the safety net "when these heuristics fail".
///
/// This implementation renders N significant decimal digits of a double
/// (printf-%e semantics, the straightforwardFixed contract) using one
/// 64x64->128-bit multiply with a cached power of ten and an explicit
/// error bound: if the rounding decision at the Nth digit could be
/// affected by the bounded error -- including every exact decimal tie --
/// it refuses, and the caller falls back to the exact bignum printer.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FASTPATH_FIXED_FAST_H
#define DRAGON4_FASTPATH_FIXED_FAST_H

#include "baselines/fixed17.h"
#include "core/digits.h"

#include <optional>

namespace dragon4 {

/// Attempts \p NumDigits (1-17) correctly rounded significant digits of
/// the positive double \p Value in base 10.  Returns std::nullopt when
/// the error analysis cannot certify the final digit (rare; including
/// all exact halfway cases, so the result never depends on a tie rule).
std::optional<DigitString> fastFixedDigits(double Value, int NumDigits);

/// fastFixedDigits with the exact straightforwardFixed fallback: always
/// returns the correctly rounded digits (ties resolved by \p Ties, which
/// only the fallback can hit).
DigitString fixedDigitsWithFastPath(double Value, int NumDigits,
                                    TieBreak Ties = TieBreak::RoundEven);

} // namespace dragon4

#endif // DRAGON4_FASTPATH_FIXED_FAST_H
