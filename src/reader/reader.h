//===- reader/reader.h - Correctly rounded input ------------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Correctly rounded text-to-floating-point conversion ("How to read
/// floating-point numbers accurately", Clinger [1], is the input-side
/// companion the paper assumes).  The free-format printer's whole contract
/// is stated relative to such a reader: the shortest output must convert
/// back to the identical value.  This reader is the verification half of
/// that contract -- and the referee that counts printf's misroundings for
/// Table 3.
///
/// The implementation always takes the exact path (bignum comparison of
/// the decimal value against the binary candidates); it favours obvious
/// correctness over speed, since it sits on the test/verification side.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_READER_READER_H
#define DRAGON4_READER_READER_H

#include "fp/binary128.h"
#include "fp/binary16.h"
#include "fp/extended80.h"
#include "fp/ieee_traits.h"

#include <optional>
#include <string_view>

namespace dragon4 {

/// The reader's rounding rule, applied to the real value denoted by the
/// text.  Directed modes are signed (IEEE 754 terminology).
enum class ReadRounding : uint8_t {
  NearestEven,    ///< Ties to the even mantissa (IEEE default).
  NearestAway,    ///< Ties away from zero.
  TowardZero,     ///< Truncate.
  TowardPositive, ///< Ceiling.
  TowardNegative, ///< Floor.
};

/// Parses and correctly rounds \p Text as a base-\p Base floating-point
/// literal; returns std::nullopt on malformed input.
///
/// Grammar: [+-]? digits? [. digits?] [exponent]  with at least one digit,
/// or "inf"/"infinity"/"nan" (case-insensitive).  The exponent marker is
/// 'e'/'E' for bases up to 10 and '^' for every base (for bases above 10,
/// 'e' is a digit).  The exponent itself is always decimal.
template <typename T>
std::optional<T> readFloat(std::string_view Text, unsigned Base = 10,
                           ReadRounding Rounding = ReadRounding::NearestEven);

extern template std::optional<double> readFloat<double>(std::string_view,
                                                        unsigned,
                                                        ReadRounding);
extern template std::optional<float> readFloat<float>(std::string_view,
                                                      unsigned, ReadRounding);
extern template std::optional<Binary16>
readFloat<Binary16>(std::string_view, unsigned, ReadRounding);
extern template std::optional<long double>
readFloat<long double>(std::string_view, unsigned, ReadRounding);
extern template std::optional<Binary128>
readFloat<Binary128>(std::string_view, unsigned, ReadRounding);

} // namespace dragon4

#endif // DRAGON4_READER_READER_H
