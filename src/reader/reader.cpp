//===- reader/reader.cpp - Correctly rounded input --------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "reader/reader.h"

#include "bigint/bigint.h"
#include "bigint/power_cache.h"
#include "fp/binary128.h"
#include "fp/binary16.h"
#include "fp/extended80.h"
#include "support/checks.h"

#include <cctype>
#include <cmath>
#include <limits>

using namespace dragon4;

namespace {

/// Parsed form of a literal: Sign * Digits * Base^Exponent10 (where
/// "Exponent10" counts positions in the literal's base, decimal-style).
struct ParsedLiteral {
  bool Negative = false;
  BigInt Digits;      // All mantissa digits as one integer.
  int64_t Exponent = 0; // Power of Base the digit string is scaled by.
  bool IsInfinity = false;
  bool IsNaN = false;
};

int digitValue(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'z')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'Z')
    return C - 'A' + 10;
  return -1;
}

bool matchWordIgnoreCase(std::string_view Text, std::string_view Word) {
  if (Text.size() != Word.size())
    return false;
  for (size_t I = 0; I < Text.size(); ++I)
    if (std::tolower(static_cast<unsigned char>(Text[I])) != Word[I])
      return false;
  return true;
}

/// Parses the literal grammar; returns false on malformed input.
bool parseLiteral(std::string_view Text, unsigned Base, ParsedLiteral &Out) {
  if (Text.empty())
    return false;
  if (Text.front() == '+' || Text.front() == '-') {
    Out.Negative = Text.front() == '-';
    Text.remove_prefix(1);
  }
  if (matchWordIgnoreCase(Text, "inf") || matchWordIgnoreCase(Text, "infinity")) {
    Out.IsInfinity = true;
    return true;
  }
  if (matchWordIgnoreCase(Text, "nan")) {
    Out.IsNaN = true;
    return true;
  }

  // Mantissa digits, remembering how many came after the radix point.
  const bool AllowE = Base <= 10;
  size_t Pos = 0;
  bool SawDigit = false;
  bool SawPoint = false;
  int64_t FractionDigits = 0;
  std::string MantissaDigits; // Collected for one-shot BigInt parsing.
  for (; Pos < Text.size(); ++Pos) {
    char C = Text[Pos];
    if (C == '.') {
      if (SawPoint)
        return false;
      SawPoint = true;
      continue;
    }
    if (AllowE && (C == 'e' || C == 'E'))
      break;
    if (C == '^')
      break;
    int Value = digitValue(C);
    if (Value < 0 || static_cast<unsigned>(Value) >= Base)
      return false;
    SawDigit = true;
    MantissaDigits.push_back(C);
    if (SawPoint)
      ++FractionDigits;
  }
  if (!SawDigit)
    return false;

  // Optional exponent part (always decimal), clamped so that absurd
  // exponents saturate instead of building astronomically large bignums.
  int64_t Exponent = 0;
  if (Pos < Text.size()) {
    ++Pos; // Skip the marker.
    bool ExpNegative = false;
    if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-')) {
      ExpNegative = Text[Pos] == '-';
      ++Pos;
    }
    if (Pos >= Text.size())
      return false;
    constexpr int64_t Clamp = 1000000000; // Far past any finite value.
    for (; Pos < Text.size(); ++Pos) {
      if (Text[Pos] < '0' || Text[Pos] > '9')
        return false;
      if (Exponent < Clamp)
        Exponent = Exponent * 10 + (Text[Pos] - '0');
    }
    if (ExpNegative)
      Exponent = -Exponent;
  }

  Out.Digits = BigInt::fromString(MantissaDigits, Base);
  Out.Exponent = Exponent - FractionDigits;
  return true;
}

/// Magnitude-side rounding decision: should the truncated mantissa be
/// bumped up, given remainder Remainder/Denominator and the mantissa's
/// current low bit?
bool shouldRoundUp(ReadRounding Rounding, bool Negative,
                   const BigInt &Remainder, const BigInt &Denominator,
                   bool MantissaOdd) {
  if (Remainder.isZero())
    return false;
  switch (Rounding) {
  case ReadRounding::NearestEven: {
    BigInt Twice = Remainder;
    Twice.mulSmall(2);
    int Cmp = Twice.compare(Denominator);
    return Cmp > 0 || (Cmp == 0 && MantissaOdd);
  }
  case ReadRounding::NearestAway: {
    BigInt Twice = Remainder;
    Twice.mulSmall(2);
    return Twice.compare(Denominator) >= 0;
  }
  case ReadRounding::TowardZero:
    return false;
  case ReadRounding::TowardPositive:
    return !Negative;
  case ReadRounding::TowardNegative:
    return Negative;
  }
  return false;
}

/// True if the mode rounds a magnitude strictly below the smallest
/// subnormal's halfway point all the way down to zero.
template <typename T>
T signApply(T Magnitude, bool Negative) {
  if constexpr (std::is_same_v<T, Binary16>) {
    if (!Negative)
      return Magnitude;
    return Binary16::fromBits(static_cast<uint16_t>(Magnitude.bits() ^ 0x8000));
  } else if constexpr (std::is_same_v<T, Binary128>) {
    if (!Negative)
      return Magnitude;
    return Binary128::fromBits(Magnitude.highBits() ^ (uint64_t(1) << 63),
                               Magnitude.lowBits());
  } else {
    return Negative ? -Magnitude : Magnitude;
  }
}

template <typename T> T makeZero(bool Negative) {
  if constexpr (std::is_same_v<T, Binary16>)
    return Binary16::fromBits(Negative ? 0x8000 : 0x0000);
  else if constexpr (std::is_same_v<T, Binary128>)
    return Binary128::fromBits(Negative ? uint64_t(1) << 63 : 0, 0);
  else
    return signApply(static_cast<T>(0.0), Negative);
}

template <typename T> T makeInfinity(bool Negative) {
  if constexpr (std::is_same_v<T, Binary16>)
    return Binary16::fromBits(Negative ? 0xFC00 : 0x7C00);
  else if constexpr (std::is_same_v<T, Binary128>)
    return signApply(Binary128::fromBits(uint64_t(0x7FFF) << 48, 0),
                     Negative);
  else
    return signApply(std::numeric_limits<T>::infinity(), Negative);
}

template <typename T> T makeNaN() {
  if constexpr (std::is_same_v<T, Binary16>)
    return Binary16::fromBits(0x7E00);
  else if constexpr (std::is_same_v<T, Binary128>)
    return Binary128::fromBits(uint64_t(0x7FFF8) << 44, 0);
  else
    return std::numeric_limits<T>::quiet_NaN();
}

template <typename T> T largestFinite(bool Negative) {
  using Traits = IeeeTraits<T>;
  if constexpr (std::is_same_v<T, Binary128>) {
    return signApply(
        Binary128::fromBits((uint64_t(0x7FFE) << 48) | ((uint64_t(1) << 48) - 1),
                            ~uint64_t(0)),
        Negative);
  } else {
    Decomposed D;
    // Precision can be a full 64 bits (x87 extended); avoid the UB shift.
    D.F = Traits::Precision >= 64
              ? ~uint64_t(0)
              : (uint64_t(1) << Traits::Precision) - 1;
    D.E = Traits::MaxExponent;
    return signApply(compose<T>(D), Negative);
  }
}

template <typename T> T smallestSubnormal(bool Negative) {
  using Traits = IeeeTraits<T>;
  if constexpr (std::is_same_v<T, Binary128>)
    return signApply(Binary128::fromBits(0, 1), Negative);
  else
    return signApply(compose<T>(Decomposed{1, Traits::MinExponent}),
                     Negative);
}

/// Overflow result per rounding mode (IEEE 754: directed modes that do not
/// allow growing the magnitude return the largest finite value).
template <typename T> T overflowResult(ReadRounding Rounding, bool Negative) {
  switch (Rounding) {
  case ReadRounding::NearestEven:
  case ReadRounding::NearestAway:
    return makeInfinity<T>(Negative);
  case ReadRounding::TowardZero:
    return largestFinite<T>(Negative);
  case ReadRounding::TowardPositive:
    return Negative ? largestFinite<T>(true) : makeInfinity<T>(false);
  case ReadRounding::TowardNegative:
    return Negative ? makeInfinity<T>(true) : largestFinite<T>(false);
  }
  return makeInfinity<T>(Negative);
}

/// Tiny-magnitude result per rounding mode, for values strictly between
/// zero and half the smallest subnormal (exclusive).
template <typename T> T underflowResult(ReadRounding Rounding, bool Negative) {
  switch (Rounding) {
  case ReadRounding::NearestEven:
  case ReadRounding::NearestAway:
  case ReadRounding::TowardZero:
    return makeZero<T>(Negative);
  case ReadRounding::TowardPositive:
    return Negative ? makeZero<T>(true) : smallestSubnormal<T>(false);
  case ReadRounding::TowardNegative:
    return Negative ? smallestSubnormal<T>(true) : makeZero<T>(false);
  }
  return makeZero<T>(Negative);
}

/// Clinger's fast path (the input-side analogue of the Gay heuristics the
/// paper cites): when the significand fits in 53 bits untruncated and the
/// decimal exponent is within +/-22, both w and 10^|q| are exactly
/// representable doubles, so a single IEEE multiply or divide performs
/// exactly one correctly rounded operation on the exact value -- which is
/// the definition of a correct conversion.  Only valid for binary64 with
/// round-to-nearest-even (the default mode), base 10.
bool tryFastDoublePath(const ParsedLiteral &Lit, double &Out) {
  if (Lit.Digits.bitLength() > 53)
    return false;
  if (Lit.Exponent < -22 || Lit.Exponent > 22)
    return false;
  static const double PowersOfTen[23] = {
      1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
      1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22};
  double W = static_cast<double>(Lit.Digits.toUint64()); // Exact.
  double Result =
      Lit.Exponent >= 0
          ? W * PowersOfTen[Lit.Exponent]
          : W / PowersOfTen[-Lit.Exponent];
  Out = Lit.Negative ? -Result : Result;
  return true;
}

/// The exact binary search: correctly rounds Digits * Base^Exponent.
template <typename T>
T convertExact(const ParsedLiteral &Lit, unsigned Base,
               ReadRounding Rounding) {
  using Traits = IeeeTraits<T>;
  constexpr int Precision = Traits::Precision;

  // Coarse magnitude screen to avoid astronomically large bignums for
  // literals like 1e999999999.  log2(value) = log2(D) + X*log2(B), bounded
  // via the bit length of D; the margins are far wider than the error.
  double Log2 = static_cast<double>(Lit.Digits.bitLength()) +
                static_cast<double>(Lit.Exponent) *
                    std::log2(static_cast<double>(Base));
  if (Log2 > Traits::MaxExponent + Precision + 64)
    return signApply(overflowResult<T>(Rounding, Lit.Negative), false);
  if (Log2 < Traits::MinExponent - 64)
    return signApply(underflowResult<T>(Rounding, Lit.Negative), false);

  // Exact value = Num / Den.
  BigInt Num = Lit.Digits;
  BigInt Den(uint64_t(1));
  if (Lit.Exponent > 0)
    Num *= cachedPow(Base, static_cast<unsigned>(Lit.Exponent));
  else if (Lit.Exponent < 0)
    Den = cachedPow(Base, static_cast<unsigned>(-Lit.Exponent));

  // Find the exponent E of the ulp: value = Q * 2^E with Q having exactly
  // Precision bits (or fewer, when pinned at the subnormal exponent).
  int E = static_cast<int>(Num.bitLength()) -
          static_cast<int>(Den.bitLength()) - Precision;
  BigInt Q, R, NumScaled, DenScaled;
  for (;;) {
    if (E < Traits::MinExponent)
      E = Traits::MinExponent;
    NumScaled = Num;
    DenScaled = Den;
    if (E > 0)
      DenScaled <<= static_cast<size_t>(E);
    else if (E < 0)
      NumScaled <<= static_cast<size_t>(-E);
    BigInt::divMod(NumScaled, DenScaled, Q, R);
    int QBits = static_cast<int>(Q.bitLength());
    if (QBits > Precision) {
      E += QBits - Precision;
      continue;
    }
    if (QBits < Precision && E > Traits::MinExponent) {
      E -= Precision - QBits;
      continue;
    }
    break;
  }

  if (shouldRoundUp(Rounding, Lit.Negative, R, DenScaled,
                    Q.testBit(0))) {
    Q.addSmall(1);
    if (Q.bitLength() > static_cast<size_t>(Precision)) {
      // Carried into the next binade: 2^p * 2^E == 2^(p-1) * 2^(E+1).
      Q >>= 1;
      ++E;
    }
  }

  if (Q.isZero())
    return makeZero<T>(Lit.Negative);
  if (E > Traits::MaxExponent)
    return overflowResult<T>(Rounding, Lit.Negative);
  if constexpr (std::is_same_v<T, Binary128>) {
    return signApply(composeBig(std::move(Q), E), Lit.Negative);
  } else {
    Decomposed D;
    D.F = Q.toUint64();
    D.E = E;
    return signApply(compose<T>(D), Lit.Negative);
  }
}

} // namespace

template <typename T>
std::optional<T> dragon4::readFloat(std::string_view Text, unsigned Base,
                                    ReadRounding Rounding) {
  D4_ASSERT(Base >= 2 && Base <= 36, "base out of range");
  ParsedLiteral Lit;
  if (!parseLiteral(Text, Base, Lit))
    return std::nullopt;
  if (Lit.IsNaN)
    return makeNaN<T>();
  if (Lit.IsInfinity)
    return makeInfinity<T>(Lit.Negative);
  if (Lit.Digits.isZero())
    return makeZero<T>(Lit.Negative);
  if constexpr (std::is_same_v<T, double>) {
    if (Base == 10 && Rounding == ReadRounding::NearestEven) {
      double Fast;
      if (tryFastDoublePath(Lit, Fast))
        return Fast;
    }
  }
  return convertExact<T>(Lit, Base, Rounding);
}

template std::optional<double> dragon4::readFloat<double>(std::string_view,
                                                          unsigned,
                                                          ReadRounding);
template std::optional<float> dragon4::readFloat<float>(std::string_view,
                                                        unsigned,
                                                        ReadRounding);
template std::optional<Binary16>
dragon4::readFloat<Binary16>(std::string_view, unsigned, ReadRounding);
template std::optional<long double>
dragon4::readFloat<long double>(std::string_view, unsigned, ReadRounding);
template std::optional<Binary128>
dragon4::readFloat<Binary128>(std::string_view, unsigned, ReadRounding);
