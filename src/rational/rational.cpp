//===- rational/rational.cpp - Exact rational arithmetic ------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "rational/rational.h"

#include "bigint/power_cache.h"
#include "support/checks.h"

using namespace dragon4;

BigInt dragon4::gcd(BigInt A, BigInt B) {
  if (A.isNegative())
    A.negate();
  if (B.isNegative())
    B.negate();
  while (!B.isZero()) {
    BigInt Q, R;
    BigInt::divMod(A, B, Q, R);
    A = std::move(B);
    B = std::move(R);
  }
  return A;
}

Rational::Rational(BigInt Numerator, BigInt Denominator)
    : Num(std::move(Numerator)), Den(std::move(Denominator)) {
  D4_ASSERT(!Den.isZero(), "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (Num.isZero()) {
    Den = BigInt(uint64_t(1));
    return;
  }
  if (Den.isNegative()) {
    Den.negate();
    Num.negate();
  }
  BigInt Common = gcd(Num, Den);
  if (!Common.isOne()) {
    Num /= Common;
    Den /= Common;
  }
}

Rational Rational::scaledPow(const BigInt &F, unsigned B, int E) {
  if (E >= 0)
    return Rational(F * cachedPow(B, static_cast<unsigned>(E)));
  return Rational(F, cachedPow(B, static_cast<unsigned>(-E)));
}

int Rational::compare(const Rational &RHS) const {
  // Cross-multiply: num1/den1 <=> num2/den2 with positive denominators.
  return (Num * RHS.Den).compare(RHS.Num * Den);
}

BigInt Rational::floor() const {
  BigInt Q, R;
  BigInt::divMod(Num, Den, Q, R);
  // divMod truncates toward zero; fix up negatives with a remainder.
  if (R.isNegative())
    Q -= BigInt(uint64_t(1));
  return Q;
}

Rational Rational::fractionalPart() const {
  return *this - Rational(floor());
}

Rational &Rational::operator+=(const Rational &RHS) {
  Num = Num * RHS.Den + RHS.Num * Den;
  Den *= RHS.Den;
  normalize();
  return *this;
}

Rational &Rational::operator-=(const Rational &RHS) {
  Num = Num * RHS.Den - RHS.Num * Den;
  Den *= RHS.Den;
  normalize();
  return *this;
}

Rational &Rational::operator*=(const Rational &RHS) {
  Num *= RHS.Num;
  Den *= RHS.Den;
  normalize();
  return *this;
}

Rational &Rational::operator/=(const Rational &RHS) {
  D4_ASSERT(!RHS.isZero(), "rational division by zero");
  Num *= RHS.Den;
  Den *= RHS.Num;
  normalize();
  return *this;
}

std::string Rational::toString() const {
  if (isInteger())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}
