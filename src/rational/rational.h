//===- rational/rational.h - Exact rational arithmetic ----------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over BigInt.  Section 2 of the paper specifies
/// the basic conversion algorithm "in terms of exact rational arithmetic so
/// that there is no loss of accuracy"; this class is that substrate, and
/// core/reference.cpp implements the basic algorithm on top of it verbatim
/// as the correctness oracle for the fast integer-arithmetic path.
///
/// Values are kept normalized: the denominator is positive, the sign lives
/// in the numerator, and the fraction is reduced to lowest terms (the paper
/// points out production code need not reduce; the oracle prefers small
/// operands and clarity).
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_RATIONAL_RATIONAL_H
#define DRAGON4_RATIONAL_RATIONAL_H

#include "bigint/bigint.h"

namespace dragon4 {

/// An exact rational number.
class Rational {
public:
  /// Constructs zero.
  Rational() : Num(), Den(uint64_t(1)) {}

  /// Constructs \p Value / 1.
  explicit Rational(BigInt Value) : Num(std::move(Value)), Den(uint64_t(1)) {}

  /// Constructs \p Numerator / \p Denominator (reduced).  Asserts that the
  /// denominator is non-zero.
  Rational(BigInt Numerator, BigInt Denominator);

  /// Convenience: small integer value.
  explicit Rational(int64_t Value) : Rational(BigInt(Value)) {}

  /// Returns f * b^e as an exact rational (b >= 2; e may be negative).
  static Rational scaledPow(const BigInt &F, unsigned B, int E);

  const BigInt &numerator() const { return Num; }
  const BigInt &denominator() const { return Den; }

  bool isZero() const { return Num.isZero(); }
  bool isNegative() const { return Num.isNegative(); }

  /// Returns true if the value is an integer (denominator 1).
  bool isInteger() const { return Den.isOne(); }

  /// Three-way comparison with \p RHS.
  int compare(const Rational &RHS) const;

  /// Returns floor(*this) as a BigInt (rounds toward negative infinity).
  BigInt floor() const;

  /// Returns the fractional part *this - floor(*this), in [0, 1).
  Rational fractionalPart() const;

  Rational &operator+=(const Rational &RHS);
  Rational &operator-=(const Rational &RHS);
  Rational &operator*=(const Rational &RHS);
  Rational &operator/=(const Rational &RHS);

  friend Rational operator+(Rational L, const Rational &R) { return L += R; }
  friend Rational operator-(Rational L, const Rational &R) { return L -= R; }
  friend Rational operator*(Rational L, const Rational &R) { return L *= R; }
  friend Rational operator/(Rational L, const Rational &R) { return L /= R; }
  friend Rational operator-(Rational Value) {
    Value.Num.negate();
    return Value;
  }

  friend bool operator==(const Rational &L, const Rational &R) {
    return L.compare(R) == 0;
  }
  friend bool operator!=(const Rational &L, const Rational &R) {
    return L.compare(R) != 0;
  }
  friend bool operator<(const Rational &L, const Rational &R) {
    return L.compare(R) < 0;
  }
  friend bool operator<=(const Rational &L, const Rational &R) {
    return L.compare(R) <= 0;
  }
  friend bool operator>(const Rational &L, const Rational &R) {
    return L.compare(R) > 0;
  }
  friend bool operator>=(const Rational &L, const Rational &R) {
    return L.compare(R) >= 0;
  }

  /// Renders as "num/den" (or just "num" for integers), for diagnostics.
  std::string toString() const;

private:
  /// Restores the invariants (positive reduced denominator, sign in the
  /// numerator, canonical zero).
  void normalize();

  BigInt Num;
  BigInt Den;
};

/// Greatest common divisor of |A| and |B| (gcd(0, x) = |x|).
BigInt gcd(BigInt A, BigInt B);

} // namespace dragon4

#endif // DRAGON4_RATIONAL_RATIONAL_H
