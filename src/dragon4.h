//===- dragon4.h - libdragon4 umbrella header --------------------*- C++ -*-===//
//
// Part of libdragon4, a reproduction of Burger & Dybvig, "Printing
// Floating-Point Numbers Quickly and Accurately" (PLDI 1996).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella: pulls in the whole public API.
///
/// Layering (each layer only depends on the ones above it).  One
/// traits-driven pipeline serves all five IEEE formats -- Binary16,
/// float, double, x87 long double, Binary128 -- from bits to bytes:
///
///   bigint/    arbitrary-precision integers and the B^k cache
///   rational/  exact rationals (the Section 2 oracle substrate)
///   fp/        IEEE-754 traits + FormatTraits<T>/FormatId, decomposition
///              (narrow f:uint64 or wide f:BigInt), Table 1 boundaries
///   core/      scaling, free-format, fixed-format, the rational oracle
///              (uint64 and BigInt digit loops behind one interface)
///   fastpath/  Grisu3, certified for binary32/64 only (traits-gated);
///              Ryu's digit emission reuses render_core's digit store (the
///              one accepted fastpath -> format edge: render_core.h itself
///              depends only on core/ and support/, so there is no cycle)
///   reader/    correctly rounded text -> float (exact; verification side)
///   parse/     Eisel-Lemire text -> float (production side), certified
///              fallback to reader/ on the undecidable residue
///   format/    the Sink concept (sink.h) and the writer-generic digit
///              rendering core (render_core.h) under the toShortest/
///              toFixed/printf templates, all five formats
///   engine/    formatInto<T, Sink> -- the one conversion body every
///              surface instantiates -- plus format<T>/formatFixed<T>,
///              RecordStream (push-style streaming), BatchEngine<T>,
///              type-erased AnyBatch, per-format counters and bounds
///   abi/       the stable C ABI (dragon4_to_chars.h): hardened, locale-
///              and allocation-free C99 entry points over engine/ + parse/
///   baselines/ Steele-White, straightforward fixed-format, printf shim
///   testgen/   Schryer-style and random workloads
///
/// The pipeline shape, identical for every T:
///
///   bits --(fp: decompose/decomposeBig)--> DecomposedFloat
///        --(core: digit loop; fastpath when certified)--> digits + K
///        --(format/engine: one render core over one Sink concept)--> bytes
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_DRAGON4_H
#define DRAGON4_DRAGON4_H

#include "baselines/fixed17.h"
#include "baselines/printf_shim.h"
#include "baselines/steele_white.h"
#include "bigint/bigint.h"
#include "bigint/power_cache.h"
#include "core/digits.h"
#include "core/fixed_format.h"
#include "core/free_format.h"
#include "core/options.h"
#include "core/reference.h"
#include "core/scaling.h"
#include "abi/dragon4_to_chars.h"
#include "engine/batch.h"
#include "engine/engine.h"
#include "engine/scratch.h"
#include "engine/stats.h"
#include "engine/stream.h"
#include "fastpath/diyfp.h"
#include "fastpath/fixed_fast.h"
#include "fastpath/grisu.h"
#include "format/dtoa.h"
#include "format/printf_compat.h"
#include "format/render.h"
#include "format/scheme_notation.h"
#include "format/sink.h"
#include "fp/binary128.h"
#include "fp/binary16.h"
#include "fp/boundaries.h"
#include "fp/decomposed.h"
#include "fp/extended80.h"
#include "fp/ieee_traits.h"
#include "parse/parse.h"
#include "rational/rational.h"
#include "reader/reader.h"
#include "testgen/random_floats.h"
#include "testgen/schryer.h"

#endif // DRAGON4_DRAGON4_H
