//===- engine/stream.cpp - Push-style streaming conversion ------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "engine/stream.h"

#include "support/checks.h"

using namespace dragon4;
using namespace dragon4::engine;

namespace dragon4::engine {

template <typename T> size_t RecordStream::push(T Value) {
  if (Count > 0)
    Store.push_back(Separator);
  ++Count;
  StreamSink Out(Store);
  return formatInto(Value, Options, S, Out);
}

size_t RecordStream::push(const AnyValue &Value) {
  switch (Value.Id) {
  case FormatId::Binary16:
    return push(Value.as<Binary16>());
  case FormatId::Binary32:
    return push(Value.as<float>());
  case FormatId::Binary64:
    return push(Value.as<double>());
  case FormatId::Extended80:
    return push(Value.as<long double>());
  case FormatId::Binary128:
    return push(Value.as<Binary128>());
  }
  D4_ASSERT(false, "unknown FormatId in AnyValue");
  return 0;
}

template size_t RecordStream::push<Binary16>(Binary16);
template size_t RecordStream::push<float>(float);
template size_t RecordStream::push<double>(double);
template size_t RecordStream::push<long double>(long double);
template size_t RecordStream::push<Binary128>(Binary128);

} // namespace dragon4::engine
