//===- engine/engine.h - Zero-allocation conversion engine -------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch conversion engine's single-value layer: a char-buffer API that
/// bypasses std::string entirely.  Where toShortest() heap-allocates a
/// string and fresh BigInt state per call, engine::format() writes into a
/// caller-provided buffer and draws every intermediate from a reusable
/// Scratch -- Grisu digits, loop state, and BigInt limbs all come from
/// warm storage, so a warmed-up conversion performs zero heap allocations
/// even when it falls back to the exact BigInt path.
///
/// The API is format-generic: one template pipeline, explicitly
/// instantiated for all five supported formats (Binary16, float, double,
/// long double / x87 extended80, Binary128).  Formats whose significand
/// exceeds 64 bits take the BigInt-mantissa path; the Grisu fast path is
/// taken only for formats whose cached-power table is certified
/// (FormatTraits<T>::FastPathCertified -- binary32/64 today), the rest are
/// counted as fast-path-ineligible rather than silently special-cased.
///
/// Truncation semantics (snprintf-like, minus the NUL): format() always
/// returns the full length the rendering requires and writes at most
/// BufferSize bytes.  A return value greater than BufferSize means the
/// output was truncated at BufferSize bytes; the written prefix is exactly
/// the first BufferSize characters of the full rendering.  No NUL
/// terminator is written.
///
/// See docs/engine.md for the design discussion.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_ENGINE_ENGINE_H
#define DRAGON4_ENGINE_ENGINE_H

#include "engine/scratch.h"
#include "format/dtoa.h"
#include "format/render.h"
#include "format/sink.h"
#include "fp/format_traits.h"

#include <cstddef>

namespace dragon4::engine {

/// The writer-generic conversion core: renders the shortest round-tripping
/// form of \p Value into any Sink and returns the characters the sink
/// accepted (for a BufferSink this is the full required length -- bytes
/// past the capacity are dropped by the sink, never by the engine).  The
/// public surfaces are instantiations of this one template: format() is
/// formatInto over a BufferSink, RecordStream::push is formatInto over a
/// StreamSink, and the StringTable batch path is format() per slot.
template <typename T, typename W>
size_t formatInto(T Value, const PrintOptions &Options, Scratch &S, W &Out);

/// Shortest round-tripping rendering of \p Value (the buffer counterpart
/// of toShortest): writes up to \p BufferSize bytes at \p Buffer and
/// returns the full required length.  Identical output, byte for byte, to
/// toShortest(Value, Options).
template <typename T>
size_t format(T Value, char *Buffer, size_t BufferSize,
              const PrintOptions &Options, Scratch &S);

/// Convenience overload with default options.
template <typename T>
inline size_t format(T Value, char *Buffer, size_t BufferSize, Scratch &S) {
  return format(Value, Buffer, BufferSize, PrintOptions{}, S);
}

/// Buffer counterpart of toFixed: exactly \p FractionDigits positions
/// after the radix point.  Same truncation semantics as format().
template <typename T>
size_t formatFixed(T Value, int FractionDigits, char *Buffer,
                   size_t BufferSize, const PrintOptions &Options, Scratch &S);

extern template size_t format<Binary16>(Binary16, char *, size_t,
                                        const PrintOptions &, Scratch &);
extern template size_t format<float>(float, char *, size_t,
                                     const PrintOptions &, Scratch &);
extern template size_t format<double>(double, char *, size_t,
                                      const PrintOptions &, Scratch &);
extern template size_t format<long double>(long double, char *, size_t,
                                           const PrintOptions &, Scratch &);
extern template size_t format<Binary128>(Binary128, char *, size_t,
                                         const PrintOptions &, Scratch &);
extern template size_t formatFixed<Binary16>(Binary16, int, char *, size_t,
                                             const PrintOptions &, Scratch &);
extern template size_t formatFixed<float>(float, int, char *, size_t,
                                          const PrintOptions &, Scratch &);
extern template size_t formatFixed<double>(double, int, char *, size_t,
                                           const PrintOptions &, Scratch &);
extern template size_t formatFixed<long double>(long double, int, char *,
                                                size_t, const PrintOptions &,
                                                Scratch &);
extern template size_t formatFixed<Binary128>(Binary128, int, char *, size_t,
                                              const PrintOptions &, Scratch &);

extern template size_t formatInto<Binary16, BufferSink>(Binary16,
                                                        const PrintOptions &,
                                                        Scratch &, BufferSink &);
extern template size_t formatInto<float, BufferSink>(float,
                                                     const PrintOptions &,
                                                     Scratch &, BufferSink &);
extern template size_t formatInto<double, BufferSink>(double,
                                                      const PrintOptions &,
                                                      Scratch &, BufferSink &);
extern template size_t
formatInto<long double, BufferSink>(long double, const PrintOptions &,
                                    Scratch &, BufferSink &);
extern template size_t formatInto<Binary128, BufferSink>(Binary128,
                                                         const PrintOptions &,
                                                         Scratch &,
                                                         BufferSink &);
extern template size_t formatInto<Binary16, StreamSink>(Binary16,
                                                        const PrintOptions &,
                                                        Scratch &, StreamSink &);
extern template size_t formatInto<float, StreamSink>(float,
                                                     const PrintOptions &,
                                                     Scratch &, StreamSink &);
extern template size_t formatInto<double, StreamSink>(double,
                                                      const PrintOptions &,
                                                      Scratch &, StreamSink &);
extern template size_t
formatInto<long double, StreamSink>(long double, const PrintOptions &,
                                    Scratch &, StreamSink &);
extern template size_t formatInto<Binary128, StreamSink>(Binary128,
                                                         const PrintOptions &,
                                                         Scratch &,
                                                         StreamSink &);

namespace engine_detail {

/// Decimal digit count of a non-negative value (at least 1).
constexpr int decimalDigitCount(int Value) {
  int Count = 1;
  while (Value >= 10) {
    Value /= 10;
    ++Count;
  }
  return Count;
}

/// Upper bound on the number of significant digits a shortest conversion
/// of a Precision-bit format can emit in \p Base.  Decimal-and-above bases
/// use the exact ceil(p log10 2) + 1 bound (larger bases only shorten the
/// string); small bases fall back to per-bit bounds.
constexpr int shortestDigitBound(int Precision, unsigned Base) {
  if (Base >= 10)
    return Precision * 30103 / 100000 + 2;
  if (Base >= 4)
    return Precision / 2 + 2; // log2(B) >= 2.
  if (Base == 3)
    return Precision * 2 / 3 + 2; // log2(3) > 3/2.
  return Precision + 1; // Base 2: the mantissa bits themselves.
}

/// Upper bound on the decimal digits of the scientific exponent |K - 1|
/// for a format spanning [2^MinExponent, 2^(MaxExponent + Precision)).
constexpr int exponentDigitBound(int Precision, int MinExponent,
                                 int MaxExponent, unsigned Base) {
  int MaxAbs2 = MaxExponent + Precision;
  if (-MinExponent > MaxAbs2)
    MaxAbs2 = -MinExponent;
  // |K - 1| <= maxAbs2 * log_B(2) + 2; bases below 10 keep the base-2
  // bound (log_B(2) <= 1).
  int MaxAbsK =
      Base >= 10 ? MaxAbs2 * 30103 / 100000 + 2 : MaxAbs2 + 2;
  return decimalDigitCount(MaxAbsK);
}

} // namespace engine_detail

/// Tight upper bound on the length format<T>() can produce in \p Base with
/// default rendering: no output ever exceeds it (tested exhaustively for
/// binary16 and at the adversarial extremes of the wider formats).
/// Derived from IeeeTraits, so a new format gets its bound for free.
template <typename T> constexpr size_t maxShortestBufferSize(unsigned Base) {
  using Traits = IeeeTraits<T>;
  const int Digits = engine_detail::shortestDigitBound(Traits::Precision, Base);
  const int ExpDigits = engine_detail::exponentDigitBound(
      Traits::Precision, Traits::MinExponent, Traits::MaxExponent, Base);
  // Scientific: sign + d + '.' + (Digits-1) + marker + expsign + ExpDigits.
  const int Scientific = Digits + ExpDigits + 4;
  // Positional (renderAuto shows it only for K in (MinK, MaxK]):
  //   K <= 0:  sign + "0." + up to -MinK-1 zeros + Digits
  //   K > 0:   sign + max(K, Digits) integer places + '.' + fraction
  constexpr RenderOptions Defaults{};
  const int Positional = Digits + 3 + (-Defaults.PositionalMinK - 1);
  const int Integral = 1 + Defaults.PositionalMaxK + 1;
  int Max = Scientific;
  if (Positional > Max)
    Max = Positional;
  if (Integral > Max)
    Max = Integral;
  return static_cast<size_t>(Max);
}

/// A slot size sufficient for any shortest-form rendering of \p T in base
/// \p Base with format(): maxShortestBufferSize rounded up for alignment.
/// This is what BatchEngine<T> sizes StringTable slots with.
template <typename T> constexpr size_t shortestSlotSize(unsigned Base) {
  return (maxShortestBufferSize<T>(Base) + 7) / 8 * 8;
}

// The bounds must stay within the historically validated double slot sizes
// and grow with the format -- binary128 genuinely needs more than double.
// ("-1.7976931348623157e+308" is the length-24 double witness; the small
// formats are floored by the 21-integer-digit positional window, which is
// why binary16 and float share a bound.)
static_assert(maxShortestBufferSize<double>(10) <= 32 &&
                  maxShortestBufferSize<double>(3) <= 48 &&
                  maxShortestBufferSize<double>(2) <= 64,
              "double bounds regressed past the proven slot sizes");
static_assert(maxShortestBufferSize<Binary16>(10) <=
                  maxShortestBufferSize<float>(10) &&
              maxShortestBufferSize<float>(10) <=
                  maxShortestBufferSize<double>(10) &&
              maxShortestBufferSize<double>(10) <
                  maxShortestBufferSize<long double>(10) &&
              maxShortestBufferSize<long double>(10) <
                  maxShortestBufferSize<Binary128>(10),
              "bounds must be ordered by significand width");
static_assert(maxShortestBufferSize<Binary16>(10) == 23 &&
                  maxShortestBufferSize<float>(10) == 23 &&
                  maxShortestBufferSize<double>(10) == 24 &&
                  maxShortestBufferSize<long double>(10) == 29 &&
                  maxShortestBufferSize<Binary128>(10) == 44,
              "decimal buffer-bound table drifted");
static_assert(shortestSlotSize<Binary16>(10) == 24 &&
                  shortestSlotSize<float>(10) == 24 &&
                  shortestSlotSize<double>(10) == 24 &&
                  shortestSlotSize<long double>(10) == 32 &&
                  shortestSlotSize<Binary128>(10) == 48,
              "decimal slot-size table drifted");

} // namespace dragon4::engine

#endif // DRAGON4_ENGINE_ENGINE_H
