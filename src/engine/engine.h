//===- engine/engine.h - Zero-allocation conversion engine -------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch conversion engine's single-value layer: a char-buffer API that
/// bypasses std::string entirely.  Where toShortest() heap-allocates a
/// string and fresh BigInt state per call, engine::format() writes into a
/// caller-provided buffer and draws every intermediate from a reusable
/// Scratch -- Grisu digits, loop state, and BigInt limbs all come from
/// warm storage, so a warmed-up conversion performs zero heap allocations
/// even when it falls back to the exact BigInt path.
///
/// Truncation semantics (snprintf-like, minus the NUL): format() always
/// returns the full length the rendering requires and writes at most
/// BufferSize bytes.  A return value greater than BufferSize means the
/// output was truncated at BufferSize bytes; the written prefix is exactly
/// the first BufferSize characters of the full rendering.  No NUL
/// terminator is written.
///
/// See docs/engine.md for the design discussion.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_ENGINE_ENGINE_H
#define DRAGON4_ENGINE_ENGINE_H

#include "engine/scratch.h"
#include "format/dtoa.h"

#include <cstddef>

namespace dragon4::engine {

/// Shortest round-tripping rendering of \p Value (the buffer counterpart
/// of toShortest): writes up to \p BufferSize bytes at \p Buffer and
/// returns the full required length.  Identical output, byte for byte, to
/// toShortest(Value, Options).
size_t format(double Value, char *Buffer, size_t BufferSize,
              const PrintOptions &Options, Scratch &S);

/// Convenience overload with default options.
inline size_t format(double Value, char *Buffer, size_t BufferSize,
                     Scratch &S) {
  return format(Value, Buffer, BufferSize, PrintOptions{}, S);
}

/// Buffer counterpart of toFixed: exactly \p FractionDigits positions
/// after the radix point.  Same truncation semantics as format().
size_t formatFixed(double Value, int FractionDigits, char *Buffer,
                   size_t BufferSize, const PrintOptions &Options, Scratch &S);

/// A buffer size sufficient for any shortest-form double rendered in base
/// \p Base with format(): covers the widest positional window plus sign,
/// radix point, leading zeros, and exponent field.
size_t shortestSlotSize(unsigned Base);

} // namespace dragon4::engine

#endif // DRAGON4_ENGINE_ENGINE_H
