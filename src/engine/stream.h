//===- engine/stream.h - Push-style streaming conversion ---------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming counterpart of AnyBatch: mixed-format records pushed one
/// at a time flow straight into a single contiguous byte stream with
/// separators -- no per-batch std::vector<AnyValue> materialization, no
/// fixed-stride slots.  Each push is one formatInto over a StreamSink, so
/// the bytes come from the same writer-generic render core as every other
/// surface and a stream's records are byte-identical to the corresponding
/// toShortest/engine::format outputs.
///
/// Intended for record emitters (CSV/JSON-lines writers, log lines) that
/// know values one at a time: where AnyBatch wants the whole span up
/// front and pays a slot stride per value, a RecordStream appends exactly
/// the bytes of each record.  Steady state allocates nothing: the byte
/// store's capacity is retained across clear(), and the conversions draw
/// from the caller's Scratch.
///
/// Thread-safety contract: one stream, one thread (it shares the caller's
/// Scratch).  Shard work across threads with one RecordStream + Scratch
/// per worker and concatenate the byte stores.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_ENGINE_STREAM_H
#define DRAGON4_ENGINE_STREAM_H

#include "engine/batch.h"
#include "engine/engine.h"

#include <string_view>
#include <vector>

namespace dragon4::engine {

/// Push-style streaming sink over the unified render core.
class RecordStream {
public:
  /// Records pushed after the first are preceded by \p Separator (so the
  /// stream never ends with one and a single record has none).
  explicit RecordStream(Scratch &S, char Separator = '\n',
                        const PrintOptions &Options = {})
      : S(S), Options(Options), Separator(Separator) {}

  RecordStream(const RecordStream &) = delete;
  RecordStream &operator=(const RecordStream &) = delete;

  /// Appends the shortest-form rendering of \p Value as one record and
  /// returns its length in bytes (excluding the separator).
  template <typename T> size_t push(T Value);

  /// Type-erased push, dispatched on the FormatId tag: the streaming
  /// equivalent of one AnyBatch slot.
  size_t push(const AnyValue &Value);

  /// The bytes of every record pushed since the last clear().
  std::string_view bytes() const { return {Store.data(), Store.size()}; }
  size_t records() const { return Count; }

  /// Discards the contents but keeps the byte store's capacity, so a
  /// reused stream allocates nothing once warm.
  void clear() {
    Store.clear();
    Count = 0;
  }
  void reserve(size_t Bytes) { Store.reserve(Bytes); }

private:
  Scratch &S;
  PrintOptions Options;
  std::vector<char> Store;
  size_t Count = 0;
  char Separator;
};

extern template size_t RecordStream::push<Binary16>(Binary16);
extern template size_t RecordStream::push<float>(float);
extern template size_t RecordStream::push<double>(double);
extern template size_t RecordStream::push<long double>(long double);
extern template size_t RecordStream::push<Binary128>(Binary128);

} // namespace dragon4::engine

#endif // DRAGON4_ENGINE_STREAM_H
