//===- engine/stats.cpp - Engine counter printing ---------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "engine/stats.h"

#include "obs/export.h"
#include "obs/registry.h"

using namespace dragon4;
using namespace dragon4::engine;

void EngineStats::print(std::FILE *Out, const obs::Registry *Reg) const {
  std::fprintf(Out, "engine stats:\n");
  obs::printHuman(Out, obs::makeSnapshot(*this, Reg));
}
