//===- engine/batch.cpp - Thread-parallel batch conversion ------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "engine/batch.h"

#include "support/checks.h"

using namespace dragon4;
using namespace dragon4::engine;

namespace {

/// Values claimed per fetch_add: large enough that the atomic is cold,
/// small enough that a straggler chunk cannot unbalance the batch.
constexpr size_t ChunkSize = 256;

unsigned resolveThreads(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    return 1;
  return Hardware < 64 ? Hardware : 64;
}

} // namespace

BatchPool::BatchPool(unsigned Threads)
    : ThreadCount(resolveThreads(Threads)) {
  Scratches.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I) {
    Scratches.push_back(std::make_unique<Scratch>());
    Scratches.back()->obsState().ThreadIndex = I;
  }
  Workers.reserve(ThreadCount - 1);
  for (unsigned I = 1; I < ThreadCount; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

BatchPool::~BatchPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Shutdown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void BatchPool::runJob(Job &J, Scratch &S) {
  for (;;) {
    size_t Begin = J.Next.fetch_add(ChunkSize, std::memory_order_relaxed);
    if (Begin >= J.Count)
      return;
    size_t End = Begin + ChunkSize < J.Count ? Begin + ChunkSize : J.Count;
    (*J.Fn)(Begin, End, S);
  }
}

void BatchPool::workerMain(unsigned WorkerIndex) {
  uint64_t SeenGeneration = 0;
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WakeWorkers.wait(Lock, [&] {
      return Shutdown || Generation != SeenGeneration;
    });
    if (Shutdown)
      return;
    SeenGeneration = Generation;
    Job &J = *Current;
    Lock.unlock();
    runJob(J, *Scratches[WorkerIndex]);
    Lock.lock();
    if (--Running == 0)
      JobDone.notify_one();
  }
}

void BatchPool::dispatch(Job &J) {
  if (ThreadCount == 1 || J.Count <= ChunkSize) {
    // Inline: a pool wake-up costs more than a small batch.
    runJob(J, *Scratches[0]);
  } else {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Current = &J;
      ++Generation;
      Running = ThreadCount - 1;
    }
    WakeWorkers.notify_all();
    runJob(J, *Scratches[0]);
    std::unique_lock<std::mutex> Lock(Mutex);
    JobDone.wait(Lock, [&] { return Running == 0; });
    Current = nullptr;
  }

  // Workers are quiescent again (blocked on WakeWorkers), so their stats
  // and observability shards can be drained without contention.
  for (std::unique_ptr<Scratch> &S : Scratches) {
    Stats.merge(S->takeStats());
    if (obs::enabled())
      S->obsState().drainInto(Registry, Spans, &Exemplars);
  }
}

void BatchPool::parallelFor(
    size_t Count,
    const std::function<void(size_t, size_t, Scratch &)> &Fn) {
  Job J;
  J.Count = Count;
  J.Fn = &Fn;
  dispatch(J);
}

void BatchPool::runBatch(
    size_t Count,
    const std::function<void(size_t, size_t, Scratch &)> &Fn) {
  // All batch timing goes through the prof clock (the same timebase the
  // obs spans and the steady-clock counter fallback use).
  const prof::StopWatch Timer;
  Job J;
  J.Count = Count;
  J.Fn = &Fn;
  dispatch(J);
  const uint64_t DurNs = Timer.elapsedNanos();

  ++Stats.Batches;
  Stats.BatchValues += Count;
  Stats.BatchNanos += DurNs;

  if (obs::enabled() && obs::config().Trace) {
    // One enclosing span per batch on the caller's track; the sampled
    // per-conversion spans drained from the workers nest underneath it.
    Spans.push_back(obs::SpanEvent{"batch", Timer.startNanos(), DurNs,
                                   /*Tid=*/0, Count});
  }
}

namespace dragon4::engine {

template <typename T>
void BatchEngine<T>::convert(std::span<const T> Values, StringTable &Out,
                             const PrintOptions &Options) {
  Out.reset(Values.size(), shortestSlotSize<T>(Options.Base));
  const T *Data = Values.data();
  const size_t Stride = Out.strideBytes();
  auto Fn = [Data, Stride, &Out, &Options](size_t Begin, size_t End,
                                           Scratch &S) {
    for (size_t I = Begin; I < End; ++I)
      Out.setLength(I, format(Data[I], Out.slot(I), Stride, Options, S));
  };
  runBatch(Values.size(), Fn);
}

template class BatchEngine<Binary16>;
template class BatchEngine<float>;
template class BatchEngine<double>;
template class BatchEngine<long double>;
template class BatchEngine<Binary128>;

} // namespace dragon4::engine

void AnyBatch::convert(std::span<const AnyValue> Values, StringTable &Out,
                       const PrintOptions &Options) {
  Out.reset(Values.size(), slotSize(Options.Base));
  const AnyValue *Data = Values.data();
  const size_t Stride = Out.strideBytes();
  auto Fn = [Data, Stride, &Out, &Options](size_t Begin, size_t End,
                                           Scratch &S) {
    for (size_t I = Begin; I < End; ++I) {
      const AnyValue &V = Data[I];
      char *Slot = Out.slot(I);
      size_t Length = 0;
      switch (V.Id) {
      case FormatId::Binary16:
        Length = format(V.as<Binary16>(), Slot, Stride, Options, S);
        break;
      case FormatId::Binary32:
        Length = format(V.as<float>(), Slot, Stride, Options, S);
        break;
      case FormatId::Binary64:
        Length = format(V.as<double>(), Slot, Stride, Options, S);
        break;
      case FormatId::Extended80:
        Length = format(V.as<long double>(), Slot, Stride, Options, S);
        break;
      case FormatId::Binary128:
        Length = format(V.as<Binary128>(), Slot, Stride, Options, S);
        break;
      }
      Out.setLength(I, Length);
    }
  };
  runBatch(Values.size(), Fn);
}
