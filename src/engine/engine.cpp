//===- engine/engine.cpp - Zero-allocation conversion engine ----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-value engine layer.  The conversion core is untouched: this
/// file routes it through reusable storage (Scratch's arena and digit
/// buffers) and re-renders the resulting digits straight into the caller's
/// buffer, replicating format/render.cpp symbol for symbol so
/// engine::format(v) == toShortest(v) holds byte for byte.
///
//===----------------------------------------------------------------------===//

#include "engine/engine.h"

#include "core/fixed_format.h"
#include "core/free_format.h"
#include "fastpath/grisu.h"
#include "format/render.h"
#include "obs/trace.h"
#include "prof/phase.h"
#include "support/checks.h"

#include <bit>
#include <span>

using namespace dragon4;
using namespace dragon4::engine;

namespace dragon4::engine {

/// Engine-internal accessor for Scratch's private storage (befriended by
/// Scratch; keeps the reusable buffers out of the public surface).
struct ScratchAccess {
  static EngineStats &stats(Scratch &S) { return S.Stats; }
  static std::vector<uint8_t> &fastDigits(Scratch &S) { return S.FastDigits; }
  static DigitLoopResult &loop(Scratch &S) { return S.Loop; }
};

} // namespace dragon4::engine

namespace {

/// Bounded buffer writer with snprintf-like overflow behaviour: put()
/// drops bytes past the capacity but keeps counting, so Pos ends at the
/// full required length.
struct BufWriter {
  char *Buf;
  size_t Cap;
  size_t Pos = 0;

  void put(char C) {
    if (Pos < Cap)
      Buf[Pos] = C;
    ++Pos;
  }
  void fill(size_t Count, char C) {
    for (size_t I = 0; I < Count; ++I)
      put(C);
  }
  void literal(const char *Text) {
    for (; *Text; ++Text)
      put(*Text);
  }
};

char digitChar(uint8_t Value, bool Uppercase) {
  static const char Lower[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  static const char Upper[] = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return Uppercase ? Upper[Value] : Lower[Value];
}

/// Symbol for output position \p Index: a digit, or the mark character
/// past the digits (mirrors render.cpp's appendPosition).
void putPosition(BufWriter &W, std::span<const uint8_t> Digits, int Index,
                 const RenderOptions &Options) {
  if (Index < static_cast<int>(Digits.size())) {
    W.put(digitChar(Digits[static_cast<size_t>(Index)],
                    Options.UppercaseDigits));
    return;
  }
  W.put(Options.MarkChar);
}

/// Decimal exponent with an explicit sign -- the buffer equivalent of
/// snprintf("%+d", Exponent).
void putExponent(BufWriter &W, int Exponent) {
  W.put(Exponent < 0 ? '-' : '+');
  unsigned Magnitude = Exponent < 0 ? 0u - static_cast<unsigned>(Exponent)
                                    : static_cast<unsigned>(Exponent);
  char Reversed[12];
  int Count = 0;
  do {
    Reversed[Count++] = static_cast<char>('0' + Magnitude % 10);
    Magnitude /= 10;
  } while (Magnitude != 0);
  while (Count > 0)
    W.put(Reversed[--Count]);
}

/// Buffer twin of renderPositional.
void putPositional(BufWriter &W, std::span<const uint8_t> Digits, int K,
                   int TrailingMarks, bool Negative,
                   const RenderOptions &Options) {
  const int Width = static_cast<int>(Digits.size()) + TrailingMarks;
  if (Negative)
    W.put('-');

  if (K <= 0) {
    // Pure fraction: 0.000ddd...
    W.literal("0.");
    W.fill(static_cast<size_t>(-K), '0');
    for (int I = 0; I < Width; ++I)
      putPosition(W, Digits, I, Options);
    return;
  }

  // Integer part: positions K-1 down to 0, zero-padded if the conversion
  // stopped left of the radix point.
  int Index = 0;
  for (int Place = K - 1; Place >= 0; --Place, ++Index) {
    if (Index < Width)
      putPosition(W, Digits, Index, Options);
    else
      W.put('0');
  }
  if (Index >= Width)
    return; // Nothing after the point.
  W.put('.');
  for (; Index < Width; ++Index)
    putPosition(W, Digits, Index, Options);
}

/// Buffer twin of renderScientific.
void putScientific(BufWriter &W, std::span<const uint8_t> Digits, int K,
                   int TrailingMarks, bool Negative,
                   const RenderOptions &Options) {
  const int Width = static_cast<int>(Digits.size()) + TrailingMarks;
  D4_ASSERT(Width > 0, "cannot render an empty digit string");
  if (Negative)
    W.put('-');
  putPosition(W, Digits, 0, Options);
  if (Width > 1) {
    W.put('.');
    for (int I = 1; I < Width; ++I)
      putPosition(W, Digits, I, Options);
  }
  W.put(Options.ExponentMarker);
  putExponent(W, K - 1);
}

/// Buffer twin of renderAuto.
void putAuto(BufWriter &W, std::span<const uint8_t> Digits, int K,
             int TrailingMarks, bool Negative, const RenderOptions &Options) {
  if (K > Options.PositionalMinK && K <= Options.PositionalMaxK)
    putPositional(W, Digits, K, TrailingMarks, Negative, Options);
  else
    putScientific(W, Digits, K, TrailingMarks, Negative, Options);
}

RenderOptions renderOptionsFrom(const PrintOptions &Options) {
  RenderOptions Render;
  Render.Base = Options.Base;
  Render.ExponentMarker = Options.ExponentMarker;
  Render.MarkChar = Options.Marks == MarkStyle::Hash ? '#' : '0';
  Render.UppercaseDigits = Options.UppercaseDigits;
  return Render;
}

FreeFormatOptions freeOptionsFrom(const PrintOptions &Options) {
  FreeFormatOptions Free;
  Free.Base = Options.Base;
  Free.Boundaries = Options.Boundaries;
  Free.Ties = Options.Ties;
  Free.Scaling = Options.Scaling;
  return Free;
}

FixedFormatOptions fixedOptionsFrom(const PrintOptions &Options) {
  FixedFormatOptions Fixed;
  Fixed.Base = Options.Base;
  Fixed.Boundaries = Options.Boundaries;
  Fixed.Ties = Options.Ties;
  return Fixed;
}

/// The Grisu fast path models the conservative reader (boundaries
/// excluded) with round-up ties.  That equals the requested semantics
/// exactly when the options ask for Conservative, or for NearestEven on a
/// value with an odd mantissa -- an odd mantissa can never sit on an
/// inclusive boundary, so NearestEven and Conservative flags coincide.
bool fastPathEligible(const PrintOptions &Options, uint64_t F) {
  if (Options.Base != 10 || Options.Ties != TieBreak::RoundUp)
    return false;
  if (Options.Boundaries == BoundaryMode::Conservative)
    return true;
  return Options.Boundaries == BoundaryMode::NearestEven && (F & 1) != 0;
}

void recordSlowDigits(EngineStats &Stats, size_t NumDigits) {
  constexpr size_t Last = EngineStats::DigitBuckets - 1;
  size_t Bucket = NumDigits < Last ? NumDigits : Last;
  ++Stats.SlowDigitLength[Bucket];
}

/// Closes out one call: counts truncation and returns the full length.
size_t finish(const BufWriter &W, EngineStats &Stats) {
  if (W.Pos > W.Cap)
    ++Stats.Truncated;
  return W.Pos;
}

/// Writes NaN / infinity / zero, or returns false for finite non-zero
/// values.  \p writeZero emits the format-specific zero text (sign already
/// written).
template <typename WriteZero>
bool putSpecial(BufWriter &W, double Value, EngineStats &Stats,
                WriteZero writeZero) {
  switch (classify(Value)) {
  case FpClass::NaN:
    W.literal("nan");
    break;
  case FpClass::Infinity:
    W.literal(signBit(Value) ? "-inf" : "inf");
    break;
  case FpClass::Zero:
    if (signBit(Value))
      W.put('-');
    writeZero();
    break;
  case FpClass::Normal:
  case FpClass::Subnormal:
    return false;
  }
  ++Stats.Specials;
  return true;
}

} // namespace

size_t dragon4::engine::format(double Value, char *Buffer, size_t BufferSize,
                               const PrintOptions &Options, Scratch &S) {
  EngineStats &Stats = ScratchAccess::stats(S);
  BufWriter W{Buffer, BufferSize};

#if DRAGON4_OBS_ENABLED
  // Sampling decision up front: one branch when sampling is off.  When this
  // conversion is not sampled the previous active trace (if any -- tests
  // and the verify harness install their own) is left in place.
  obs::ObsState &Obs = S.obsState();
  const bool Sampled = Obs.tick();
  uint64_t StartNs = 0;
  if (Sampled) {
    Obs.Current.reset();
    StartNs = obs::nowNanos();
  }
  obs::ActiveTraceScope TraceScope(Sampled ? &Obs.Current
                                           : obs::activeTrace());
  // Phase attribution rides the same sampling decision: sampled
  // conversions install this Scratch's collector; unsampled ones leave
  // whatever is installed (tests profile explicitly) in place.
  prof::PhaseScope ProfScope(Sampled ? &Obs.Phases
                                     : prof::activePhaseCollector());
  obs::Path PathKind = obs::Path::Unknown;
  auto ObsEpilogue = [&](size_t Len) {
    if (Sampled)
      Obs.finishConversion(Obs.Current, PathKind,
                           std::bit_cast<uint64_t>(Value), /*BitsHi=*/0,
                           StartNs, obs::nowNanos() - StartNs,
                           /*Truncated=*/Len > BufferSize,
                           /*Mismatch=*/false);
    return Len;
  };
#else
  auto ObsEpilogue = [](size_t Len) { return Len; };
#endif
  D4_PROF_SPAN(Total);

  using Traits = IeeeTraits<double>;
  Decomposed D;
  bool Negative = false;
  bool Eligible = false;
  {
    D4_PROF_SPAN(Decompose);
    if (putSpecial(W, Value, Stats, [&W] { W.put('0'); })) {
#if DRAGON4_OBS_ENABLED
      PathKind = obs::Path::Special;
#endif
      return ObsEpilogue(finish(W, Stats));
    }
    D = decompose(Value);
    Negative = signBit(Value);
    Eligible = fastPathEligible(Options, D.F);
  }

  // All BigInt limbs below come from the Scratch arena; the scope rewinds
  // it on every exit path.
  ConversionScope Scope(S);

  std::span<const uint8_t> Digits;
  int K = 0;
  // The FastPath phase span lives inside grisuShortestInto itself.
  const bool FastOk =
      Eligible && grisuShortestInto(D.F, D.E, Traits::Precision,
                                    Traits::MinExponent,
                                    ScratchAccess::fastDigits(S), K);
  if (FastOk) {
    ++Stats.FastPathHits;
    Digits = ScratchAccess::fastDigits(S);
#if DRAGON4_OBS_ENABLED
    PathKind = obs::Path::FastPath;
    if (auto *T = obs::activeTrace()) {
      // The fast path bypasses the digit loop's trace point.
      T->DigitsEmitted = static_cast<uint32_t>(Digits.size());
      T->FinalK = K;
    }
#endif
  } else {
    if (Eligible) {
      ++Stats.FastPathFails;
#if DRAGON4_OBS_ENABLED
      PathKind = obs::Path::SlowFallback;
      if (auto *T = obs::activeTrace())
        T->FastFail = 1; // Attempted but uncertified.
#endif
    } else {
      ++Stats.SlowPathDirect;
#if DRAGON4_OBS_ENABLED
      PathKind = obs::Path::SlowDirect;
      if (auto *T = obs::activeTrace())
        T->FastFail = 2; // Ineligible for the fast path.
#endif
    }
    DigitLoopResult &Loop = ScratchAccess::loop(S);
    K = freeFormatDigitsInto(D.F, D.E, Traits::Precision, Traits::MinExponent,
                             freeOptionsFrom(Options), Loop);
    Digits = Loop.Digits;
    recordSlowDigits(Stats, Digits.size());
  }
  ++Stats.Conversions;

  {
    D4_PROF_SPAN(Render);
    putAuto(W, Digits, K, /*TrailingMarks=*/0, Negative,
            renderOptionsFrom(Options));
  }
  S.syncArenaStats();
  return ObsEpilogue(finish(W, Stats));
}

size_t dragon4::engine::formatFixed(double Value, int FractionDigits,
                                    char *Buffer, size_t BufferSize,
                                    const PrintOptions &Options, Scratch &S) {
  D4_ASSERT(FractionDigits >= 0, "negative fraction-digit count");
  EngineStats &Stats = ScratchAccess::stats(S);
  BufWriter W{Buffer, BufferSize};

#if DRAGON4_OBS_ENABLED
  obs::ObsState &Obs = S.obsState();
  const bool Sampled = Obs.tick();
  uint64_t StartNs = 0;
  if (Sampled) {
    Obs.Current.reset();
    StartNs = obs::nowNanos();
  }
  obs::ActiveTraceScope TraceScope(Sampled ? &Obs.Current
                                           : obs::activeTrace());
  prof::PhaseScope ProfScope(Sampled ? &Obs.Phases
                                     : prof::activePhaseCollector());
  obs::Path PathKind = obs::Path::Fixed;
  auto ObsEpilogue = [&](size_t Len) {
    if (Sampled)
      Obs.finishConversion(Obs.Current, PathKind,
                           std::bit_cast<uint64_t>(Value), /*BitsHi=*/0,
                           StartNs, obs::nowNanos() - StartNs,
                           /*Truncated=*/Len > BufferSize,
                           /*Mismatch=*/false);
    return Len;
  };
#else
  auto ObsEpilogue = [](size_t Len) { return Len; };
#endif
  D4_PROF_SPAN(Total);

  if (putSpecial(W, Value, Stats, [&] {
        W.put('0');
        if (FractionDigits > 0) {
          W.put('.');
          W.fill(static_cast<size_t>(FractionDigits), '0');
        }
      })) {
#if DRAGON4_OBS_ENABLED
    PathKind = obs::Path::Special;
#endif
    return ObsEpilogue(finish(W, Stats));
  }

  ConversionScope Scope(S);
  // The fixed core's termination logic consumes the loop state in ways the
  // shortest path does not; its small DigitString is the one remaining
  // allocation on this path (the BigInt limbs still come from the arena).
  DigitString Digits =
      fixedDigitsAbsolute(Value, -FractionDigits, fixedOptionsFrom(Options));
  ++Stats.Conversions;
  ++Stats.SlowPathDirect;
  recordSlowDigits(Stats, Digits.Digits.size());

  {
    D4_PROF_SPAN(Render);
    putPositional(W, Digits.Digits, Digits.K, Digits.TrailingMarks,
                  signBit(Value), renderOptionsFrom(Options));
  }
  S.syncArenaStats();
  return ObsEpilogue(finish(W, Stats));
}

size_t dragon4::engine::shortestSlotSize(unsigned Base) {
  D4_ASSERT(Base >= 2 && Base <= 36, "base out of range");
  // Worst cases (sign + widest positional window or scientific form):
  // base 10 tops out at 25 bytes ("-d.ddddddddddddddddde-324"); low bases
  // carry up to 53 significant digits and 4-digit exponents.
  if (Base >= 10)
    return 32;
  if (Base >= 3)
    return 48;
  return 64;
}
