//===- engine/engine.cpp - Zero-allocation conversion engine ----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-value engine layer, one template over all five formats and
/// every output sink.  The conversion core is untouched: this file routes
/// it through reusable storage (Scratch's arena and digit buffers) and
/// renders the resulting digits through the same render_core templates
/// that back format/render.cpp, so engine::format(v) == toShortest(v)
/// holds byte for byte for every instantiation.  formatInto is the one
/// writer-generic body; format() (BufferSink), the StringTable batch path
/// (format() per slot), and RecordStream::push (StreamSink) are its
/// instantiations.
///
//===----------------------------------------------------------------------===//

#include "engine/engine.h"

#include "core/fixed_format.h"
#include "core/free_format.h"
#include "fastpath/grisu.h"
#include "fastpath/ryu.h"
#include "format/render_core.h"
#include "obs/trace.h"
#include "prof/phase.h"
#include "support/checks.h"

#include <span>
#include <type_traits>

using namespace dragon4;
using namespace dragon4::engine;

namespace dragon4::engine {

/// Engine-internal accessor for Scratch's private storage (befriended by
/// Scratch; keeps the reusable buffers out of the public surface).
struct ScratchAccess {
  static EngineStats &stats(Scratch &S) { return S.Stats; }
  static std::vector<uint8_t> &fastDigits(Scratch &S) { return S.FastDigits; }
  static DigitLoopResult &loop(Scratch &S) { return S.Loop; }
  static DigitString &fixedDigits(Scratch &S) { return S.FixedDigits; }
};

} // namespace dragon4::engine

namespace {

RenderOptions renderOptionsFrom(const PrintOptions &Options) {
  RenderOptions Render;
  Render.Base = Options.Base;
  Render.ExponentMarker = Options.ExponentMarker;
  Render.MarkChar = Options.Marks == MarkStyle::Hash ? '#' : '0';
  Render.UppercaseDigits = Options.UppercaseDigits;
  return Render;
}

FreeFormatOptions freeOptionsFrom(const PrintOptions &Options) {
  FreeFormatOptions Free;
  Free.Base = Options.Base;
  Free.Boundaries = Options.Boundaries;
  Free.Ties = Options.Ties;
  Free.Scaling = Options.Scaling;
  return Free;
}

FixedFormatOptions fixedOptionsFrom(const PrintOptions &Options) {
  FixedFormatOptions Fixed;
  Fixed.Base = Options.Base;
  Fixed.Boundaries = Options.Boundaries;
  Fixed.Ties = Options.Ties;
  return Fixed;
}

/// The Grisu fast path models the conservative reader (boundaries
/// excluded) with round-up ties.  That equals the requested semantics
/// exactly when the options ask for Conservative, or for NearestEven on a
/// value with an odd mantissa -- an odd mantissa can never sit on an
/// inclusive boundary, so NearestEven and Conservative flags coincide.
bool fastPathEligible(const PrintOptions &Options, bool OddMantissa) {
  if (Options.Base != 10 || Options.Ties != TieBreak::RoundUp)
    return false;
  if (Options.Boundaries == BoundaryMode::Conservative)
    return true;
  return Options.Boundaries == BoundaryMode::NearestEven && OddMantissa;
}

void recordSlowDigits(EngineStats &Stats, size_t NumDigits) {
  constexpr size_t Last = EngineStats::DigitBuckets - 1;
  size_t Bucket = NumDigits < Last ? NumDigits : Last;
  ++Stats.SlowDigitLength[Bucket];
}

/// Writes NaN / infinity / zero, or returns false for finite non-zero
/// values.  \p writeZero emits the format-specific zero text (sign already
/// written).
template <typename T, Sink W, typename WriteZero>
bool putSpecial(W &Out, T Value, EngineStats &Stats, WriteZero writeZero) {
  switch (classify(Value)) {
  case FpClass::NaN:
    Out.literal("nan");
    break;
  case FpClass::Infinity:
    Out.literal(signBit(Value) ? "-inf" : "inf");
    break;
  case FpClass::Zero:
    if (signBit(Value))
      Out.put('-');
    writeZero();
    break;
  case FpClass::Normal:
  case FpClass::Subnormal:
    return false;
  }
  ++Stats.Specials;
  return true;
}

} // namespace

template <typename T, typename W>
size_t dragon4::engine::formatInto(T Value, const PrintOptions &Options,
                                   Scratch &S, W &Out) {
  using Traits = IeeeTraits<T>;
  using Format = FormatTraits<T>;
  EngineStats &Stats = ScratchAccess::stats(S);
  // A StreamSink arrives mid-stream; everything below reports lengths
  // relative to this call's first byte.
  const size_t Start = Out.written();
  // Closes out one call: counts truncation (bounded sinks only -- an
  // unbounded sink never overflows) and returns this call's length.
  auto Finish = [&]() -> size_t {
    if (sinkOverflowed(Out))
      ++Stats.Truncated;
    return Out.written() - Start;
  };

#if DRAGON4_OBS_ENABLED
  // Sampling decision up front: one branch when sampling is off.  When this
  // conversion is not sampled the previous active trace (if any -- tests
  // and the verify harness install their own) is left in place.
  obs::ObsState &Obs = S.obsState();
  const bool Sampled = Obs.tick();
  uint64_t StartNs = 0;
  if (Sampled) {
    Obs.Current.reset();
    // Stamp the active options so a tail-exemplar capture can name the
    // exact configuration that was slow.
    Obs.Current.noteOptions(
        Options.Base,
        obs::exemplar::packOptionsMode(
            static_cast<unsigned>(Options.Boundaries),
            static_cast<unsigned>(Options.Ties)));
    StartNs = obs::nowNanos();
  }
  obs::ActiveTraceScope TraceScope(Sampled ? &Obs.Current
                                           : obs::activeTrace());
  // Phase attribution rides the same sampling decision: sampled
  // conversions install this Scratch's collector; unsampled ones leave
  // whatever is installed (tests profile explicitly) in place.
  prof::PhaseScope ProfScope(Sampled ? &Obs.Phases
                                     : prof::activePhaseCollector());
  obs::Path PathKind = obs::Path::Unknown;
  auto ObsEpilogue = [&](size_t Len) {
    if (Sampled) {
      uint64_t BitsLo, BitsHi;
      Format::encodingBits(Value, BitsLo, BitsHi);
      Obs.finishConversion(Obs.Current, PathKind, Format::Id, BitsLo, BitsHi,
                           StartNs,
                           obs::nowNanos() - StartNs,
                           /*Truncated=*/sinkOverflowed(Out),
                           /*Mismatch=*/false);
    }
    return Len;
  };
#else
  auto ObsEpilogue = [](size_t Len) { return Len; };
#endif
  D4_PROF_SPAN(Total);

  bool Negative = false;
  {
    D4_PROF_SPAN(Decompose);
    if (putSpecial(Out, Value, Stats, [&Out] { Out.put('0'); })) {
#if DRAGON4_OBS_ENABLED
      PathKind = obs::Path::Special;
#endif
      return ObsEpilogue(Finish());
    }
    Negative = signBit(Value);
  }

  // All BigInt limbs below come from the Scratch arena; the scope rewinds
  // it on every exit path.  Wide mantissas (DecomposedBig's BigInt) live
  // inside the scope so their limbs are arena-backed too -- D is declared
  // after Scope and therefore destroyed before the arena rewinds.
  ConversionScope Scope(S);

  using DecompT =
      std::conditional_t<Format::WideMantissa, DecomposedBig, Decomposed>;
  DecompT D;
  bool OddMantissa = false;
  {
    D4_PROF_SPAN(Decompose);
    if constexpr (Format::WideMantissa) {
      D = decomposeBig(Value);
      OddMantissa = D.F.testBit(0);
    } else {
      D = decompose(Value);
      OddMantissa = (D.F & 1) != 0;
    }
  }
  const bool OptionsAllowFast = fastPathEligible(Options, OddMantissa);

  std::span<const uint8_t> Digits;
  int K = 0;
  // The fallback ladder: Ryu -> Grisu3 -> exact loop.  Ryu is the front
  // line for every certified narrow format (binary16/32/64) and any
  // symmetric reader model; its only failures are defensive range checks,
  // counted as RyuFallbacks.  The RyuPath/FastPath phase spans live
  // inside the converters themselves.
  bool RyuOk = false;
  bool RyuTried = false;
  if constexpr (!Format::WideMantissa && Format::RyuCertified) {
    bool AcceptBounds = false;
    if (ryuEligible(Options.Base, Options.Boundaries, !OddMantissa,
                    AcceptBounds)) {
      RyuTried = true;
      RyuOk = ryuShortestInto(D.F, D.E, Traits::Precision,
                              Traits::MinExponent, AcceptBounds, Options.Ties,
                              ScratchAccess::fastDigits(S), K);
    }
  }
  if (RyuTried && !RyuOk)
    ++Stats.RyuFallbacks;
  // Only Grisu-certified formats (binary32/64) may enter the Grisu rung;
  // the rest are counted as format-ineligible below rather than silently
  // special-cased.
  bool FastOk = false;
  if constexpr (Format::FastPathCertified) {
    if (!RyuOk && OptionsAllowFast)
      FastOk = grisuShortestInto(D.F, D.E, Traits::Precision,
                                 Traits::MinExponent,
                                 ScratchAccess::fastDigits(S), K);
  }
  if (RyuOk) {
    ++Stats.RyuHits;
    Digits = ScratchAccess::fastDigits(S);
#if DRAGON4_OBS_ENABLED
    PathKind = obs::Path::Ryu;
    if (auto *Trace = obs::activeTrace()) {
      // The fast path bypasses the digit loop's trace point.
      Trace->DigitsEmitted = static_cast<uint32_t>(Digits.size());
      Trace->FinalK = K;
    }
#endif
  } else if (FastOk) {
    ++Stats.FastPathHits;
    Digits = ScratchAccess::fastDigits(S);
#if DRAGON4_OBS_ENABLED
    PathKind = obs::Path::FastPath;
    if (auto *Trace = obs::activeTrace()) {
      // The fast path bypasses the digit loop's trace point.
      Trace->DigitsEmitted = static_cast<uint32_t>(Digits.size());
      Trace->FinalK = K;
    }
#endif
  } else {
    if (Format::FastPathCertified && OptionsAllowFast) {
      ++Stats.FastPathFails;
#if DRAGON4_OBS_ENABLED
      PathKind = obs::Path::SlowFallback;
      if (auto *Trace = obs::activeTrace())
        Trace->FastFail = 1; // Attempted but uncertified.
#endif
    } else {
      ++Stats.SlowPathDirect;
      // The format-ineligible dimension is option-independent: for an
      // uncertified format no option setting could reach the fast path,
      // so every slow-direct conversion is counted.
      if (!Format::FastPathCertified)
        ++Stats.FastPathIneligibleFormat;
#if DRAGON4_OBS_ENABLED
      PathKind = obs::Path::SlowDirect;
      if (auto *Trace = obs::activeTrace())
        Trace->FastFail = 2; // Ineligible for the fast path.
#endif
    }
    DigitLoopResult &Loop = ScratchAccess::loop(S);
    if constexpr (Format::WideMantissa)
      K = freeFormatDigitsBigInto(D.F, D.E, Traits::Precision,
                                  Traits::MinExponent,
                                  freeOptionsFrom(Options), Loop);
    else
      K = freeFormatDigitsInto(D.F, D.E, Traits::Precision,
                               Traits::MinExponent, freeOptionsFrom(Options),
                               Loop);
    Digits = Loop.Digits;
    recordSlowDigits(Stats, Digits.size());
  }
  ++Stats.Conversions;
  ++Stats.FormatConversions[static_cast<int>(Format::Id)];

  {
    D4_PROF_SPAN(Render);
    render_detail::renderAutoInto(Out, Digits, K, /*TrailingMarks=*/0,
                                  Negative, renderOptionsFrom(Options));
  }
  S.syncArenaStats();
  return ObsEpilogue(Finish());
}

template <typename T>
size_t dragon4::engine::format(T Value, char *Buffer, size_t BufferSize,
                               const PrintOptions &Options, Scratch &S) {
  BufferSink Out(Buffer, BufferSize);
  return formatInto(Value, Options, S, Out);
}

template <typename T>
size_t dragon4::engine::formatFixed(T Value, int FractionDigits, char *Buffer,
                                    size_t BufferSize,
                                    const PrintOptions &Options, Scratch &S) {
  D4_ASSERT(FractionDigits >= 0, "negative fraction-digit count");
  using Format = FormatTraits<T>;
  EngineStats &Stats = ScratchAccess::stats(S);
  BufferSink Out(Buffer, BufferSize);
  auto Finish = [&]() -> size_t {
    if (Out.overflowed())
      ++Stats.Truncated;
    return Out.required();
  };

#if DRAGON4_OBS_ENABLED
  obs::ObsState &Obs = S.obsState();
  const bool Sampled = Obs.tick();
  uint64_t StartNs = 0;
  if (Sampled) {
    Obs.Current.reset();
    // Stamp the active options so a tail-exemplar capture can name the
    // exact configuration that was slow.
    Obs.Current.noteOptions(
        Options.Base,
        obs::exemplar::packOptionsMode(
            static_cast<unsigned>(Options.Boundaries),
            static_cast<unsigned>(Options.Ties)));
    StartNs = obs::nowNanos();
  }
  obs::ActiveTraceScope TraceScope(Sampled ? &Obs.Current
                                           : obs::activeTrace());
  prof::PhaseScope ProfScope(Sampled ? &Obs.Phases
                                     : prof::activePhaseCollector());
  obs::Path PathKind = obs::Path::Fixed;
  auto ObsEpilogue = [&](size_t Len) {
    if (Sampled) {
      uint64_t BitsLo, BitsHi;
      Format::encodingBits(Value, BitsLo, BitsHi);
      Obs.finishConversion(Obs.Current, PathKind, Format::Id, BitsLo, BitsHi,
                           StartNs,
                           obs::nowNanos() - StartNs,
                           /*Truncated=*/Out.overflowed(),
                           /*Mismatch=*/false);
    }
    return Len;
  };
#else
  auto ObsEpilogue = [](size_t Len) { return Len; };
#endif
  D4_PROF_SPAN(Total);

  if (putSpecial(Out, Value, Stats, [&] {
        Out.put('0');
        if (FractionDigits > 0) {
          Out.put('.');
          Out.fill(static_cast<size_t>(FractionDigits), '0');
        }
      })) {
#if DRAGON4_OBS_ENABLED
    PathKind = obs::Path::Special;
#endif
    return ObsEpilogue(Finish());
  }

  ConversionScope Scope(S);
  // Scratch-resident loop state and positional result: warm calls reuse
  // both digit buffers, so the fixed path is allocation-free like the
  // shortest path (the BigInt limbs come from the arena).
  DigitString &Digits = ScratchAccess::fixedDigits(S);
  fixedDigitsAbsoluteInto(Value, -FractionDigits, fixedOptionsFrom(Options),
                          ScratchAccess::loop(S), Digits);
  ++Stats.Conversions;
  ++Stats.FormatConversions[static_cast<int>(Format::Id)];
  ++Stats.SlowPathDirect;
  recordSlowDigits(Stats, Digits.Digits.size());

  {
    D4_PROF_SPAN(Render);
    render_detail::renderPositionalInto(Out, Digits.Digits, Digits.K,
                                        Digits.TrailingMarks, signBit(Value),
                                        renderOptionsFrom(Options));
  }
  S.syncArenaStats();
  return ObsEpilogue(Finish());
}

namespace dragon4::engine {

template size_t formatInto<Binary16, BufferSink>(Binary16,
                                                 const PrintOptions &,
                                                 Scratch &, BufferSink &);
template size_t formatInto<float, BufferSink>(float, const PrintOptions &,
                                              Scratch &, BufferSink &);
template size_t formatInto<double, BufferSink>(double, const PrintOptions &,
                                               Scratch &, BufferSink &);
template size_t formatInto<long double, BufferSink>(long double,
                                                    const PrintOptions &,
                                                    Scratch &, BufferSink &);
template size_t formatInto<Binary128, BufferSink>(Binary128,
                                                  const PrintOptions &,
                                                  Scratch &, BufferSink &);
template size_t formatInto<Binary16, StreamSink>(Binary16,
                                                 const PrintOptions &,
                                                 Scratch &, StreamSink &);
template size_t formatInto<float, StreamSink>(float, const PrintOptions &,
                                              Scratch &, StreamSink &);
template size_t formatInto<double, StreamSink>(double, const PrintOptions &,
                                               Scratch &, StreamSink &);
template size_t formatInto<long double, StreamSink>(long double,
                                                    const PrintOptions &,
                                                    Scratch &, StreamSink &);
template size_t formatInto<Binary128, StreamSink>(Binary128,
                                                  const PrintOptions &,
                                                  Scratch &, StreamSink &);

template size_t format<Binary16>(Binary16, char *, size_t,
                                 const PrintOptions &, Scratch &);
template size_t format<float>(float, char *, size_t, const PrintOptions &,
                              Scratch &);
template size_t format<double>(double, char *, size_t, const PrintOptions &,
                               Scratch &);
template size_t format<long double>(long double, char *, size_t,
                                    const PrintOptions &, Scratch &);
template size_t format<Binary128>(Binary128, char *, size_t,
                                  const PrintOptions &, Scratch &);
template size_t formatFixed<Binary16>(Binary16, int, char *, size_t,
                                      const PrintOptions &, Scratch &);
template size_t formatFixed<float>(float, int, char *, size_t,
                                   const PrintOptions &, Scratch &);
template size_t formatFixed<double>(double, int, char *, size_t,
                                    const PrintOptions &, Scratch &);
template size_t formatFixed<long double>(long double, int, char *, size_t,
                                         const PrintOptions &, Scratch &);
template size_t formatFixed<Binary128>(Binary128, int, char *, size_t,
                                       const PrintOptions &, Scratch &);

} // namespace dragon4::engine
