//===- engine/stats.h - Engine counters --------------------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counters block the conversion engine maintains: fast-path hit and
/// fallback counts, a digit-length histogram for conversions that took the
/// slow (BigInt) path, arena sizing, and batch timing.  Counters are plain
/// (non-atomic) -- each Scratch owns its own block and the batch layer
/// merges per-worker blocks after the workers have joined, so there is
/// never concurrent mutation of one block.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_ENGINE_STATS_H
#define DRAGON4_ENGINE_STATS_H

#include "fp/format_id.h"

#include <cstdint>
#include <cstdio>

namespace dragon4::obs {
class Registry;
}

namespace dragon4::engine {

/// Counters for engine conversions.  All counts are cumulative since
/// construction (or the last reset()).
struct EngineStats {
  /// Histogram buckets for slow-path significant-digit counts; the last
  /// bucket collects everything at or beyond DigitBuckets - 1 digits.
  static constexpr int DigitBuckets = 26;

  uint64_t Conversions = 0;    ///< Finite non-zero values converted.
  uint64_t Specials = 0;       ///< NaN / infinity / zero renderings.
  uint64_t RyuHits = 0;        ///< Ryu produced the result (front line).
  uint64_t RyuFallbacks = 0;   ///< Ryu eligible but out of certified range.
  uint64_t FastPathHits = 0;   ///< Grisu certified the result.
  uint64_t FastPathFails = 0;  ///< Grisu attempted but could not certify.
  uint64_t SlowPathDirect = 0; ///< Fast path not eligible (base/options/fmt).
  uint64_t Truncated = 0;      ///< Outputs that did not fit the buffer.

  /// Conversions per format (indexed by FormatId); sums to Conversions.
  uint64_t FormatConversions[NumFormatIds] = {};

  /// Subset of SlowPathDirect whose format has no certified cached-power
  /// table (binary16/extended80/binary128 today), so no option setting
  /// could have reached the fast path.  The honest counterpart of a Grisu
  /// table that only covers binary32/64.
  uint64_t FastPathIneligibleFormat = 0;

  /// Digit-count histogram of conversions that ran the exact BigInt loop.
  uint64_t SlowDigitLength[DigitBuckets] = {};

  uint64_t ArenaHighWaterBytes = 0; ///< Max live arena bytes ever observed.
  uint64_t ArenaBlockAllocs = 0;    ///< Arena growth events (heap blocks).

  uint64_t Batches = 0;    ///< BatchEngine::convert calls.
  uint64_t BatchValues = 0; ///< Values across all batches.
  uint64_t BatchNanos = 0; ///< Wall-clock ns spent inside batches.

  /// Verdict counters maintained by the verification harness (src/verify/):
  /// oracle checks executed through this Scratch and how many mismatched.
  uint64_t VerifyChecked = 0;
  uint64_t VerifyMismatches = 0;

  /// Outcome counters maintained by the fast parser (src/parse/): calls
  /// the Eisel-Lemire product decided (specials included), calls that
  /// fell back to the exact bignum reader, and rejected (malformed)
  /// inputs.  Hits + Fallbacks + Rejected == parseFloat calls.
  uint64_t FastParseHits = 0;
  uint64_t FastParseFallbacks = 0;
  uint64_t FastParseRejected = 0;

  /// Conversions that ran the exact loop (fallbacks plus ineligibles).
  uint64_t slowPathRuns() const { return FastPathFails + SlowPathDirect; }

  /// Adds \p RHS into this block.  High-water marks take the max; counts
  /// add.
  void merge(const EngineStats &RHS) {
    Conversions += RHS.Conversions;
    Specials += RHS.Specials;
    RyuHits += RHS.RyuHits;
    RyuFallbacks += RHS.RyuFallbacks;
    FastPathHits += RHS.FastPathHits;
    FastPathFails += RHS.FastPathFails;
    SlowPathDirect += RHS.SlowPathDirect;
    Truncated += RHS.Truncated;
    for (int I = 0; I < NumFormatIds; ++I)
      FormatConversions[I] += RHS.FormatConversions[I];
    FastPathIneligibleFormat += RHS.FastPathIneligibleFormat;
    for (int I = 0; I < DigitBuckets; ++I)
      SlowDigitLength[I] += RHS.SlowDigitLength[I];
    if (RHS.ArenaHighWaterBytes > ArenaHighWaterBytes)
      ArenaHighWaterBytes = RHS.ArenaHighWaterBytes;
    ArenaBlockAllocs += RHS.ArenaBlockAllocs;
    Batches += RHS.Batches;
    BatchValues += RHS.BatchValues;
    BatchNanos += RHS.BatchNanos;
    VerifyChecked += RHS.VerifyChecked;
    VerifyMismatches += RHS.VerifyMismatches;
    FastParseHits += RHS.FastParseHits;
    FastParseFallbacks += RHS.FastParseFallbacks;
    FastParseRejected += RHS.FastParseRejected;
  }

  void reset() { *this = EngineStats(); }

  /// Human-readable dump (tools/soak and the batch benchmark).  A thin
  /// view over obs::makeSnapshot, so the eyeball rendering and the
  /// machine-readable exports always agree; batch timing is reported as
  /// derived values/s and mean ns/value.  When \p Reg is non-null the
  /// sampled observability metrics are printed alongside the exact ones.
  void print(std::FILE *Out, const obs::Registry *Reg = nullptr) const;
};

} // namespace dragon4::engine

#endif // DRAGON4_ENGINE_STATS_H
