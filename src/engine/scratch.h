//===- engine/scratch.h - Per-thread conversion workspace --------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's reusable workspace: a limb arena for every BigInt the
/// conversion core touches, the digit-loop result whose digit storage is
/// recycled across calls, a digit buffer for the Grisu fast path, and the
/// per-thread counters block.  One Scratch belongs to one thread at a time;
/// engine::format installs its arena for the duration of a conversion and
/// rewinds it afterwards, so after a warm-up call conversions perform zero
/// heap allocations on the slow (BigInt) path.
///
/// Thread-safety contract: a Scratch must not be shared between threads
/// concurrently.  BatchEngine owns one Scratch per worker; single-threaded
/// callers create one and keep it alive across calls (creating a fresh
/// Scratch per call works but forfeits the zero-allocation property).
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_ENGINE_SCRATCH_H
#define DRAGON4_ENGINE_SCRATCH_H

#include "bigint/limb_arena.h"
#include "core/digit_loop.h"
#include "core/digits.h"
#include "engine/stats.h"
#include "obs/trace.h"

#include <cstdint>
#include <vector>

namespace dragon4::engine {

/// Reusable per-thread conversion state.
class Scratch {
public:
  /// \p ArenaBytes sizes the arena's first block; the default comfortably
  /// holds the state of any double conversion, so warm-up normally costs a
  /// single block allocation.
  explicit Scratch(size_t ArenaBytes = 1 << 16) : Arena(ArenaBytes) {}

  Scratch(const Scratch &) = delete;
  Scratch &operator=(const Scratch &) = delete;

  /// Counters accumulated by conversions through this Scratch.
  const EngineStats &stats() const { return Stats; }

  /// Mutable counters block for sibling subsystems (the verify harness's
  /// parse oracle, parse::parseFloat) that charge their outcomes through
  /// this Scratch so they ride the normal per-worker merge path.
  EngineStats &counters() { return Stats; }

  /// This Scratch's observability shard: sampled-metric registry, flight
  /// recorder, span buffer.  Same ownership contract as the Scratch itself
  /// (single thread at a time); the batch layer drains it after workers
  /// join, alongside takeStats().
  obs::ObsState &obsState() { return Obs; }
  const obs::ObsState &obsState() const { return Obs; }

  /// Records one verification verdict (an oracle check run with this
  /// Scratch).  The verification harness calls this so per-worker verdict
  /// counts travel through the same merge path as every other counter.
  void noteVerifyVerdict(bool Ok) {
    ++Stats.VerifyChecked;
    if (!Ok)
      ++Stats.VerifyMismatches;
  }

  /// Returns the accumulated counters and zeroes them (the batch layer
  /// drains workers this way so nothing is counted twice).
  EngineStats takeStats() {
    syncArenaStats();
    BlockAllocsDrained = Arena.blockAllocs();
    EngineStats Out = Stats;
    Stats.reset();
    return Out;
  }

  /// Refreshes the arena counters inside stats() (they are sampled, not
  /// incrementally maintained).  Block allocations already handed out by
  /// takeStats() are excluded, so repeated drains never double-count.
  void syncArenaStats() {
    if (Arena.highWaterBytes() > Stats.ArenaHighWaterBytes)
      Stats.ArenaHighWaterBytes = Arena.highWaterBytes();
    Stats.ArenaBlockAllocs = Arena.blockAllocs() - BlockAllocsDrained;
  }

private:
  friend class ConversionScope;
  friend struct ScratchAccess;

  LimbArena Arena;               ///< Backing store for all conversion BigInts.
  DigitLoopResult Loop;          ///< Slow-path loop state, storage recycled.
  std::vector<uint8_t> FastDigits; ///< Grisu digit buffer, recycled.
  DigitString FixedDigits;       ///< Fixed-path positional result, recycled.
  EngineStats Stats;
  obs::ObsState Obs;               ///< Sampled-metrics shard + flight ring.
  uint64_t BlockAllocsDrained = 0; ///< Arena blocks already reported.
};

/// RAII for one conversion: installs the Scratch's arena on entry, rewinds
/// it on exit.  Internal to the engine implementation, exposed for the
/// allocation tests.
class ConversionScope {
public:
  explicit ConversionScope(Scratch &S) : S(S), Hook(&S.Arena) {}
  ~ConversionScope() {
    // The loop result may hold arena-backed BigInts; forget them before the
    // storage is rewound so nothing dangles.
    S.Loop.R = BigInt();
    S.Loop.MPlus = BigInt();
    S.Loop.S = BigInt();
    S.Arena.reset();
  }

private:
  Scratch &S;
  LimbArenaScope Hook;
};

} // namespace dragon4::engine

#endif // DRAGON4_ENGINE_SCRATCH_H
